package workloads

import "repro/internal/sim"

// Dedup models PARSEC's dedup kernel: a compression pipeline whose defining
// property is enormous heap churn. The paper calls dedup out three times:
// it allocates/frees about 14 GB over the run (vs ~1.7 GB average); its
// memory-overhead factor is ~1.0 at every granularity because the
// *application's* peak (≈2.7 GB at startup) dwarfs the detector's, which
// peaks later; and the dynamic detector is 1.78× faster than byte despite
// equal same-epoch percentages, purely from creating ~Locs-fold fewer
// clocks for the single-epoch buffers. Valgrind DRD and Inspector XE both
// died with out-of-memory on it (Table 6). The model reproduces each:
//
//   - a large startup arena is allocated, touched sparsely, and freed
//     before the pipeline starts (early application peak, factor ≈ 1.0);
//   - every chunk flows through fragment → compress → write stages; each
//     stage mallocs a buffer, fills it once (a single-epoch Init-state
//     node under dynamic granularity), and frees it downstream — the
//     clock-allocation churn dynamic granularity eliminates;
//   - two genuine races on the global dedup hash-table statistics.
func Dedup() Spec {
	return Spec{
		Name:        "dedup",
		Threads:     4,
		Races:       2,
		Description: "compression pipeline with massive single-epoch heap churn",
		Build: func(scale int) sim.Program {
			return sim.Program{Name: "dedup", Main: func(m *sim.Thread) {
				chunks := 160 * scale
				const bufWords = 512 // 2 KiB buffers
				const (
					siteArena = 700 + iota
					siteFrag
					siteCompressR
					siteCompressW
					siteOut
					siteStats
					siteHashTab
				)
				// Startup arena: the application's own memory peak (the
				// paper's dedup holds ~2.7 GB at startup). The first 512 KiB
				// are written through — harmless for the FastTrack shadow
				// (dynamic granularity folds it into per-block nodes, and it
				// is freed right after), but the per-footprint shadow cells
				// of an Inspector-style tool blow straight through a
				// realistic memory budget, which is how the paper's OOM row
				// reproduces.
				arena := m.Malloc(8 << 20)
				m.At(siteArena)
				m.WriteBlock(arena, 8, (512<<10)/8)
				m.Free(arena)

				stats := m.Malloc(8)   // racy: chunk counter
				dupFlag := m.Malloc(8) // racy: duplicate-found flag
				htLock := m.NewLock()
				ht := m.Malloc(1024 * 4)

				q1 := newQueue(m, 4)
				q2 := newQueue(m, 4)

				frag := m.Go(func(t *sim.Thread) {
					for c := 0; c < chunks; c++ {
						buf := t.Malloc(bufWords * 4)
						t.At(siteFrag)
						t.WriteBlock(buf, 4, bufWords) // single-epoch fill
						t.At(siteStats)                // unprotected: race
						t.Read(stats, 4)
						t.Write(stats, 4)
						q1.put(t, buf)
					}
					q1.close(t)
				})
				compress := m.Go(func(t *sim.Thread) {
					for {
						buf, ok := q1.get(t)
						if !ok {
							break
						}
						out := t.Malloc(bufWords * 4)
						t.At(siteCompressR)
						t.ReadBlock(buf, 4, bufWords)
						t.At(siteCompressW)
						t.WriteBlock(out, 4, bufWords)
						t.Free(buf)
						t.At(siteStats)    // unprotected read of the flag the
						t.Read(dupFlag, 4) // writer stage sets: race
						t.Lock(htLock)
						t.At(siteHashTab)
						t.Read(ht+uint64(out%1024)*4, 4)
						t.Write(ht+uint64(out%1024)*4, 4)
						t.Unlock(htLock)
						q2.put(t, out)
					}
					q2.close(t)
				})
				writer := m.Go(func(t *sim.Thread) {
					for {
						out, ok := q2.get(t)
						if !ok {
							break
						}
						t.At(siteOut)
						t.ReadBlock(out, 4, bufWords)
						t.At(siteStats)  // unprotected: races with frag's
						t.Read(stats, 4) // writes and compress's reads
						t.Write(dupFlag, 4)
						t.Free(out)
					}
				})
				joinAll(m, []*sim.Thread{frag, compress, writer})
				m.Free(stats)
				m.Free(dupFlag)
				m.Free(ht)
			}}
		},
	}
}
