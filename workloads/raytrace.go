package workloads

import (
	"repro/internal/event"
	"repro/internal/sim"
)

// Raytrace models PARSEC's real-time raytracer: a read-mostly scene
// traversed in data-dependent (effectively random) order by every worker,
// plus per-worker framebuffer tiles. Properties the model reproduces:
//
//   - accesses are word-sized and word-aligned, so word granularity
//     changes nothing (Table 1: byte ≈ word for raytrace);
//   - scene reads arrive in random order from many threads, so
//     neighbouring locations rarely carry equal clocks at their
//     second-epoch access — dynamic granularity finds little to share and
//     buys neither time nor memory (the paper singles raytrace out for
//     exactly this);
//   - the scene is guarded by a reader-writer lock: every ray traversal
//     holds the read lock, and a worker occasionally write-locks to apply
//     a scene update (a dynamic scene), exercising the rwlock
//     happens-before rules;
//   - two genuine application races (an unprotected ray counter and a
//     shutdown flag) plus two races attributed to the pthread module,
//     which the dynamic detector suppresses but a DRD-style tool reports
//     (Table 6's raytrace note).
func Raytrace() Spec {
	const workers = 4
	return Spec{
		Name:        "raytrace",
		Threads:     workers + 1,
		Races:       2,
		Description: "random-order read-mostly scene traversal with private tiles",
		Build: func(scale int) sim.Program {
			return sim.Program{Name: "raytrace", Main: func(m *sim.Thread) {
				sceneWords := 3072 * scale
				raysPerWorker := 4000 * scale
				const (
					siteScene = 400 + iota
					siteTile
					siteCounter
					siteFlag
					siteAccum
				)
				scene := m.Malloc(uint64(sceneWords) * 4)
				// Tile size deliberately misaligned with shadow blocks
				// (Table 5's no-Init-state false alarms at tile seams).
				const tileWords = 1000
				fb := m.Malloc(uint64(workers) * tileWords * 4)
				counter := m.Malloc(4) // racy ray counter
				flag := m.Malloc(4)    // racy shutdown flag
				pthreadGuts := m.Malloc(8)
				statsLock := m.NewLock()
				stats := m.Malloc(16)
				sceneLock := m.NewRWLock()

				m.At(siteScene)
				m.WriteBlock(scene, 4, sceneWords)
				// Clear the framebuffer in one sweep (initialized together,
				// then written tile-by-tile by separate workers).
				m.At(siteTile)
				m.WriteBlock(fb, 4, workers*tileWords)

				var hs []*sim.Thread
				for w := 0; w < workers; w++ {
					w := w
					hs = append(hs, m.Go(func(t *sim.Thread) {
						rng := t.Rand()
						tile := fb + uint64(w)*tileWords*4
						for r := 0; r < raysPerWorker; r++ {
							// The ray itself lives on the stack; its
							// accesses are filtered as non-shared.
							t.Write(t.Local(16), 8)
							// Data-dependent traversal under the scene's
							// read lock: a few random scene nodes per ray.
							t.RLock(sceneLock)
							t.At(siteScene)
							for d := 0; d < 3; d++ {
								idx := rng.Intn(sceneWords)
								t.Read(scene+uint64(idx)*4, 4)
							}
							t.RUnlock(sceneLock)
							if r%512 == 0 {
								// Occasional scene update (dynamic scene):
								// exclusive access via the write lock.
								t.Lock(sceneLock)
								t.At(siteScene)
								t.Write(scene+uint64(rng.Intn(sceneWords))*4, 4)
								t.Unlock(sceneLock)
							}
							t.Read(t.Local(16), 8)
							t.At(siteTile)
							t.Write(tile+uint64(r%tileWords)*4, 4)
							if r%64 == 0 {
								t.At(siteCounter) // unprotected: race
								t.Read(counter, 4)
								t.Write(counter, 4)
								t.Lock(statsLock)
								t.At(siteAccum)
								t.Read(stats, 8)
								t.Write(stats, 8)
								t.Unlock(statsLock)
							}
						}
						t.At(siteFlag) // unprotected: race
						t.Write(flag, 4)
						// Accesses attributed to the pthread library
						// (thread teardown bookkeeping): racy, but hidden
						// by the dynamic detector's suppression rules.
						t.AtModule(event.ModulePthread, 77)
						t.Read(pthreadGuts, 8)
						t.Write(pthreadGuts, 8)
					}))
				}
				joinAll(m, hs)
				m.Free(scene)
				m.Free(fb)
				m.Free(counter)
				m.Free(flag)
				m.Free(pthreadGuts)
				m.Free(stats)
			}}
		},
	}
}
