package workloads

import "repro/internal/sim"

// Hmmsearch models HMMER's profile-HMM sequence search: workers repeatedly
// score sequences against a small shared model table. Properties the model
// reproduces:
//
//   - a tiny shared footprint (the paper measures only 367 vector clocks
//     at byte granularity — the model table plus a few globals) with a
//     very high same-epoch percentage, because the model table is re-read
//     on every iteration within an epoch;
//   - lock-protected result aggregation;
//   - exactly one genuine race: an unprotected "best score" word, the
//     single race every tool in the paper's comparison agreed on.
func Hmmsearch() Spec {
	const workers = 2
	return Spec{
		Name:        "hmmsearch",
		Threads:     workers + 1,
		Races:       1,
		Description: "HMM scoring over a small shared model table",
		Build: func(scale int) sim.Program {
			return sim.Program{Name: "hmmsearch", Main: func(m *sim.Thread) {
				seqsPerWorker := 450 * scale
				const modelWords = 80
				const (
					siteModel = 1100 + iota
					siteScore
					siteResult
					siteBest
				)
				model := m.Malloc(modelWords * 4)
				results := m.Malloc(64 * 4)
				best := m.Malloc(4) // the racy best-score word
				resLock := m.NewLock()

				m.At(siteModel)
				m.WriteBlock(model, 4, modelWords)

				var hs []*sim.Thread
				for w := 0; w < workers; w++ {
					w := w
					hs = append(hs, m.Go(func(t *sim.Thread) {
						score := t.Malloc(modelWords * 4) // private DP row
						for s := 0; s < seqsPerWorker; s++ {
							t.At(siteScore)
							for i := 0; i < modelWords; i++ {
								t.Read(model+uint64(i)*4, 4)
								t.Write(score+uint64(i)*4, 4)
							}
							if s%16 == 0 {
								t.Lock(resLock)
								t.At(siteResult)
								t.Read(results+uint64(w)*4, 4)
								t.Write(results+uint64(w)*4, 4)
								t.Unlock(resLock)
							}
							if s%64 == 0 {
								t.At(siteBest) // unprotected: the one race
								t.Read(best, 4)
								t.Write(best, 4)
							}
						}
						t.Free(score)
					}))
				}
				joinAll(m, hs)
				m.Free(model)
				m.Free(results)
				m.Free(best)
			}}
		},
	}
}
