package workloads

import "repro/internal/sim"

// Pipedag models a three-stage pipeline DAG with dedicated lanes: 24
// producers each feed their own buffered channel, 24 transformers consume
// their lane and forward over per-lane unbuffered channels, and one merger
// selects across every lane. Properties the model reproduces:
//
//   - the full Go-native sync surface in one program: buffered per-lane
//     handoff, unbuffered rendezvous (send/recv/ack), and a wide
//     select-based merge, all on the structured clock fast path;
//   - lane-local knowledge: each transformer only ever observes its own
//     producer's chain, so spoke clocks stay near-constant-size while the
//     merger alone pays for fan-in knowledge — the shape the task-tree
//     encoding is built for;
//   - two deliberate races far apart in the DAG: a "progress" word the
//     first two producers update unprotected against each other, and a
//     "tail" word transformer 0 writes that the merger reads without any
//     ordering edge — each isolated in its own shadow block so every
//     granularity reports the same set.
func Pipedag() Spec {
	const lanes = 24
	return Spec{
		Name:        "pipedag",
		Threads:     2*lanes + 2, // producers + transformers + merger + main
		Races:       2,
		Description: "three-stage pipeline DAG over dedicated lanes with two seeded races",
		Build: func(scale int) sim.Program {
			return sim.Program{Name: "pipedag", Main: func(m *sim.Thread) {
				perLane := 40 * scale
				const tabWords = 32
				const (
					siteTab = 12200 + iota
					siteProduce
					siteTransform
					siteMerge
					siteProg
					siteTail
				)
				tab := m.Malloc(tabWords * 4)
				out := m.Malloc(tabWords * 4)
				prog := m.Malloc(384) // racy word at +160, block-isolated
				tail := m.Malloc(384) // racy word at +160, block-isolated

				m.At(siteTab)
				m.WriteBlock(tab, 4, tabWords)

				var ch1, ch2 [lanes]sim.ChanID
				for l := 0; l < lanes; l++ {
					ch1[l] = m.NewChan(2)
					ch2[l] = m.NewChan(0)
				}

				var hs []*sim.Thread
				for l := 0; l < lanes; l++ {
					l := l
					hs = append(hs, m.Go(func(t *sim.Thread) {
						scratch := t.Malloc(tabWords * 4)
						for i := 0; i < perLane; i++ {
							t.At(siteProduce)
							for k := 0; k < tabWords; k++ {
								t.Read(tab+uint64(k)*4, 4)
								t.Write(scratch+uint64(k)*4, 4)
							}
							if l < 2 && i%20 == 0 {
								t.At(siteProg) // producers race with each other here
								t.Read(prog+160, 4)
								t.Write(prog+160, 4)
							}
							t.Send(ch1[l], uint64(i))
						}
						t.Free(scratch)
					}))
				}
				for l := 0; l < lanes; l++ {
					l := l
					hs = append(hs, m.Go(func(t *sim.Thread) {
						scratch := t.Malloc(tabWords * 4)
						for i := 0; i < perLane; i++ {
							v := t.Recv(ch1[l])
							t.At(siteTransform)
							for k := 0; k < tabWords; k++ {
								t.Read(tab+uint64(k)*4, 4)
								t.Write(scratch+uint64(k)*4, 4)
							}
							if l == 0 && i%15 == 0 {
								t.At(siteTail) // read concurrently by the merger
								t.Write(tail+160, 4)
							}
							t.Send(ch2[l], v)
						}
						t.Free(scratch)
					}))
				}
				hs = append(hs, m.Go(func(t *sim.Thread) {
					total := lanes * perLane
					for i := 0; i < total; i++ {
						_, v := t.Select(ch2[:]...)
						t.At(siteMerge)
						t.Read(tab+(v%tabWords)*4, 4)
						t.Write(out+(v%tabWords)*4, 4)
						if i%80 == 0 {
							t.At(siteTail)
							t.Read(tail+160, 4) // races with transformer 0's writes
						}
					}
				}))
				joinAll(m, hs)
				m.Free(tab)
				m.Free(out)
				m.Free(prog)
				m.Free(tail)
			}}
		},
	}
}
