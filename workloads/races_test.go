package workloads_test

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/sim"
	"repro/workloads"
)

// expectedRaces lists the reports each benchmark must produce per
// granularity [byte, word, dynamic]. These encode the paper's precision
// findings: word granularity masks x264's byte races together and invents
// false alarms on ffmpeg; dynamic granularity reports a few extra races on
// x264 (locations sharing a clock with a racy one) and false alarms on
// streamcluster; everything else agrees across granularities.
var expectedRaces = map[string][3]int{
	"facesim":       {2, 2, 2},
	"ferret":        {3, 2, 3},
	"fluidanimate":  {4, 4, 4},
	"raytrace":      {2, 2, 2},
	"x264":          {72, 63, 76},
	"canneal":       {2, 2, 2},
	"dedup":         {2, 2, 2},
	"streamcluster": {3, 3, 5},
	"ffmpeg":        {1, 4, 1},
	"pbzip2":        {0, 0, 0},
	"hmmsearch":     {1, 1, 1},
	// The Go-native families keep their racy words block-isolated, so
	// every granularity agrees; workerpool is the channel/WaitGroup
	// false-positive pin.
	"fanin":      {1, 1, 1},
	"workerpool": {0, 0, 0},
	"pipedag":    {2, 2, 2},
}

func TestRaceCountsPerGranularity(t *testing.T) {
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			want, ok := expectedRaces[spec.Name]
			if !ok {
				t.Fatalf("no expectation for %s", spec.Name)
			}
			for gi, g := range []detector.Granularity{detector.Byte, detector.Word, detector.Dynamic} {
				d := detector.New(detector.Config{Granularity: g})
				sim.Run(spec.Program(), d, sim.Options{Seed: 42})
				if got := len(d.Races()); got != want[gi] {
					t.Errorf("%s at %v granularity: got %d races, want %d", spec.Name, g, got, want[gi])
					for _, r := range d.Races() {
						t.Logf("  %v", r)
					}
				}
			}
		})
	}
}

// The byte-granularity count is the ground truth the Spec advertises.
func TestSpecRacesMatchByteGranularity(t *testing.T) {
	for _, spec := range workloads.All() {
		d := detector.New(detector.Config{Granularity: detector.Byte})
		sim.Run(spec.Program(), d, sim.Options{Seed: 42})
		if got := len(d.Races()); got != spec.Races {
			t.Errorf("%s: Spec.Races=%d but byte granularity found %d", spec.Name, spec.Races, got)
		}
	}
}
