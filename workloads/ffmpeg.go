package workloads

import "repro/internal/sim"

// FFmpeg models the multimedia transcoder the paper adds to PARSEC: a
// demuxer feeding two decoder worker threads. Properties the model
// reproduces:
//
//   - frame data contains sub-word (2-byte) samples, so word granularity
//     genuinely shrinks the shadow state (Table 3: ffmpeg's vector count
//     drops ~2.7× byte → word) and dynamic granularity shrinks it further;
//   - a shared codec-context struct packs byte fields protected by
//     *different* locks into the same words; word granularity masks those
//     distinct locations together and reports false alarms (Table 1's
//     note: "more data races from ffmpeg by the word detector ... are
//     false alarms"), while byte and dynamic granularity keep them apart;
//   - exactly one genuine race: the two workers update a status word
//     without protection — the paper manually confirmed this one ("a data
//     race by the two worker threads accessing a shared variable without
//     protection"), which DRD missed in its run.
func FFmpeg() Spec {
	return Spec{
		Name:        "ffmpeg",
		Threads:     3,
		Races:       1,
		Description: "demuxer + two decoders; per-field locks inside shared words",
		Build: func(scale int) sim.Program {
			return sim.Program{Name: "ffmpeg", Main: func(m *sim.Thread) {
				packets := 260 * scale
				const frameHalves = 192 // 2-byte samples per frame
				const (
					siteDemux = 900 + iota
					siteDecode
					siteFieldA
					siteFieldB
					siteStatus
				)
				// ctx packs three byte-field pairs, one pair per word; the
				// even byte of each pair is guarded by lockA, the odd byte
				// by lockB. It is initialized in one sweep by the main
				// thread — the paper's "initialized together, protected
				// separately afterwards" pattern.
				ctx := m.Malloc(12)
				for i := 0; i < 12; i++ {
					m.Write(ctx+uint64(i), 1)
				}
				lockA := m.NewLock()
				lockB := m.NewLock()
				status := m.Malloc(4) // the one genuine race

				q := newQueue(m, 6)

				demux := func(t *sim.Thread) {
					for p := 0; p < packets; p++ {
						pkt := t.Malloc(frameHalves * 2)
						t.At(siteDemux)
						t.WriteBlock(pkt, 2, frameHalves)
						q.put(t, pkt)
					}
					q.close(t)
				}
				decoder := func(t *sim.Thread) {
					// Decoders reuse a pooled frame buffer across packets,
					// as FFmpeg's frame pools do: after the first two
					// packets the buffer's locations settle into Shared
					// clock nodes, so each later packet's sweep costs one
					// clock update per node instead of per sample.
					out := t.Malloc(frameHalves * 2)
					for {
						pkt, ok := q.get(t)
						if !ok {
							break
						}
						t.At(siteDecode)
						t.ReadBlock(pkt, 2, frameHalves)
						t.WriteBlock(out, 2, frameHalves)
						t.ReadBlock(out, 2, frameHalves)
						// Per-field locking: correct at byte granularity,
						// false alarms at word granularity.
						t.Lock(lockA)
						t.At(siteFieldA)
						for w := 0; w < 3; w++ {
							t.Write(ctx+uint64(w)*4, 1)
						}
						t.Unlock(lockA)
						t.Lock(lockB)
						t.At(siteFieldB)
						for w := 0; w < 3; w++ {
							t.Write(ctx+uint64(w)*4+1, 1)
						}
						t.Unlock(lockB)
						// The genuine race: unprotected status update.
						t.At(siteStatus)
						t.Read(status, 4)
						t.Write(status, 4)
						t.Free(pkt)
					}
					t.Free(out)
				}
				d1 := m.Go(decoder)
				d2 := m.Go(decoder)
				demux(m)
				joinAll(m, []*sim.Thread{d1, d2})
				m.Free(ctx)
				m.Free(status)
			}}
		},
	}
}
