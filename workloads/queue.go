package workloads

import (
	"repro/internal/event"
	"repro/internal/sim"
)

// queue is a bounded producer/consumer queue built from a mutex and two
// condition variables — the pthread idiom the pipeline benchmarks (ferret,
// dedup, pbzip2, x264) use. Besides providing real blocking semantics, each
// operation reads and writes the queue's simulated header words (head,
// tail, count) under the lock, so the queues themselves contribute
// lock-protected shared accesses to the event stream, as they do in the
// original programs.
type queue struct {
	lock     event.LockID
	notEmpty int
	notFull  int
	capacity int

	hdr    uint64 // simulated address of {head, tail, count} words
	buf    []uint64
	closed bool
}

const (
	qSitePut  = 9000
	qSiteGet  = 9001
	qSiteDone = 9002
)

// newQueue creates a queue with the given capacity. The creating thread
// allocates the simulated header.
func newQueue(t *sim.Thread, capacity int) *queue {
	return &queue{
		lock:     t.NewLock(),
		notEmpty: t.NewCond(),
		notFull:  t.NewCond(),
		capacity: capacity,
		hdr:      t.Malloc(12),
	}
}

// touch performs the header accesses a real ring buffer would.
func (q *queue) touch(t *sim.Thread, site uint32) {
	t.At(site)
	t.Read(q.hdr+8, 4)  // count
	t.Write(q.hdr, 4)   // head or tail
	t.Write(q.hdr+8, 4) // count
}

// put enqueues v, blocking while the queue is full.
func (q *queue) put(t *sim.Thread, v uint64) {
	t.Lock(q.lock)
	for len(q.buf) >= q.capacity {
		t.Wait(q.notFull, q.lock)
	}
	q.buf = append(q.buf, v)
	q.touch(t, qSitePut)
	t.Signal(q.notEmpty)
	t.Unlock(q.lock)
}

// get dequeues one value; ok is false once the queue is closed and drained.
func (q *queue) get(t *sim.Thread) (v uint64, ok bool) {
	t.Lock(q.lock)
	for len(q.buf) == 0 && !q.closed {
		t.Wait(q.notEmpty, q.lock)
	}
	if len(q.buf) == 0 {
		t.Unlock(q.lock)
		return 0, false
	}
	v = q.buf[0]
	q.buf = q.buf[1:]
	q.touch(t, qSiteGet)
	t.Signal(q.notFull)
	t.Unlock(q.lock)
	return v, true
}

// close marks the queue closed and wakes all consumers.
func (q *queue) close(t *sim.Thread) {
	t.Lock(q.lock)
	q.closed = true
	t.At(qSiteDone)
	t.Write(q.hdr+8, 4)
	t.Broadcast(q.notEmpty)
	t.Unlock(q.lock)
}
