package workloads

import "repro/internal/sim"

// Facesim models the PARSEC face-simulation benchmark: an iterative physics
// solver over a particle mesh. The properties the model reproduces:
//
//   - all data accesses are 8-byte (double) loads/stores, so word
//     granularity buys nothing over byte granularity (Table 1: facesim's
//     slowdown and memory are unchanged byte → word);
//   - the mesh is initialized in one sweep by the main thread, then
//     partitioned across workers that walk their partitions sequentially
//     every iteration, separated by barriers — neighbouring elements keep
//     carrying the same clock, so dynamic granularity coalesces each
//     partition into a handful of shared clocks (Table 3: vectors drop
//     ~6×) and raises the same-epoch percentage (Table 4);
//   - per-iteration stencil reads of neighbouring elements create repeated
//     same-epoch accesses even at byte granularity;
//   - two genuine races: an unprotected global residual accumulator and an
//     unprotected convergence flag, both written by every worker.
func Facesim() Spec {
	const workers = 4
	return Spec{
		Name:        "facesim",
		Threads:     workers + 1,
		Races:       2,
		Description: "barrier-phased stencil solver over a particle mesh (8B elements)",
		Build: func(scale int) sim.Program {
			return sim.Program{Name: "facesim", Main: func(m *sim.Thread) {
				// The particle count is deliberately not a multiple of
				// workers×(block size): partition boundaries fall inside
				// shadow blocks, which is what exposes the no-Init-state
				// false alarms of Table 5.
				n := 6144*scale + 6
				iters := 6
				const (
					siteInit = 100 + iota
					siteReadSelf
					siteReadNbr
					siteWriteForce
					siteWriteMesh
					siteResidual
					siteFlag
				)
				mesh := m.Malloc(uint64(n) * 8)
				force := m.Malloc(uint64(n) * 8)
				residual := m.Malloc(8) // racy accumulator
				flag := m.Malloc(8)     // racy convergence flag

				// Whole-mesh initialization by main before workers exist.
				m.At(siteInit)
				m.WriteBlock(mesh, 8, n)
				m.WriteBlock(force, 8, n)

				bar := m.NewBarrier(workers + 1)
				part := n / workers
				var hs []*sim.Thread
				for w := 0; w < workers; w++ {
					w := w
					hs = append(hs, m.Go(func(t *sim.Thread) {
						lo := w * part
						hi := lo + part
						for it := 0; it < iters; it++ {
							for i := lo; i < hi; i++ {
								t.At(siteReadSelf)
								t.Read(mesh+uint64(i)*8, 8)
								if i+1 < hi {
									// Stencil read of the neighbour: a
									// same-epoch re-read at any granularity.
									t.At(siteReadNbr)
									t.Read(mesh+uint64(i+1)*8, 8)
								}
								t.At(siteWriteForce)
								t.Write(force+uint64(i)*8, 8)
								t.At(siteWriteMesh)
								t.Write(mesh+uint64(i)*8, 8)
							}
							// Unprotected global accumulator: data race.
							t.At(siteResidual)
							t.Read(residual, 8)
							t.Write(residual, 8)
							t.Barrier(bar)
						}
						// Unprotected convergence flag: data race.
						t.At(siteFlag)
						t.Write(flag, 8)
					}))
				}
				for it := 0; it < iters; it++ {
					m.Barrier(bar)
				}
				joinAll(m, hs)
				m.Free(mesh)
				m.Free(force)
				m.Free(residual)
				m.Free(flag)
			}}
		},
	}
}
