package workloads

import "repro/internal/sim"

// Canneal models PARSEC's simulated-annealing netlist router: workers pick
// random element pairs and swap them. Properties the model reproduces:
//
//   - all accesses are aligned 4-byte words, so byte and word granularity
//     create identical shadow state (Table 1/3: canneal's numbers are the
//     same for byte and word);
//   - elements are visited in random order across epochs, so neighbouring
//     locations almost never carry equal clocks at the second-epoch
//     decision — dynamic granularity shares little and, as the paper notes
//     for canneal, improves neither time nor memory;
//   - swaps are lock-protected except for one deliberately unprotected
//     element pair, read and written by every worker: one race location
//     under the first-race-per-location policy (the second element's
//     report lands on a distinct address, giving two raced addresses; the
//     paper does not disclose canneal's count, so the model seeds a small
//     nonzero one).
func Canneal() Spec {
	const workers = 4
	return Spec{
		Name:        "canneal",
		Threads:     workers + 1,
		Races:       2,
		Description: "random lock-protected element swaps, one unprotected pair",
		Build: func(scale int) sim.Program {
			return sim.Program{Name: "canneal", Main: func(m *sim.Thread) {
				elems := 4096 * scale
				swapsPerWorker := 9000 * scale
				const (
					siteInit = 600 + iota
					siteSwap
					siteHot
				)
				arr := m.Malloc(uint64(elems) * 4)
				lock := m.NewLock()
				hot := m.Malloc(8) // the unprotected pair: two words

				m.At(siteInit)
				m.WriteBlock(arr, 4, elems)

				var hs []*sim.Thread
				for w := 0; w < workers; w++ {
					hs = append(hs, m.Go(func(t *sim.Thread) {
						rng := t.Rand()
						for s := 0; s < swapsPerWorker; s++ {
							i := rng.Intn(elems)
							j := rng.Intn(elems)
							t.Lock(lock)
							t.At(siteSwap)
							t.Read(arr+uint64(i)*4, 4)
							t.Read(arr+uint64(j)*4, 4)
							t.Write(arr+uint64(i)*4, 4)
							t.Write(arr+uint64(j)*4, 4)
							t.Unlock(lock)
							if s%512 == 0 {
								// The annealing temperature pair, updated
								// without the lock: races.
								t.At(siteHot)
								t.Read(hot, 4)
								t.Write(hot, 4)
								t.Write(hot+4, 4)
							}
						}
					}))
				}
				joinAll(m, hs)
				m.Free(arr)
				m.Free(hot)
			}}
		},
	}
}
