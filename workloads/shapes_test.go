package workloads_test

import (
	"testing"

	"repro/race"
	"repro/workloads"
)

// report caches one run per (benchmark, granularity) across the tests in
// this file.
var shapeCache = map[string]race.Report{}

func report(t *testing.T, name string, g race.Granularity) race.Report {
	t.Helper()
	key := name + g.String()
	if r, ok := shapeCache[key]; ok {
		return r
	}
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	r := race.Run(spec.Program(), race.Options{Granularity: g, Seed: 42})
	shapeCache[key] = r
	return r
}

// Every workload's thread count matches its spec, and every workload
// produces a substantial event stream.
func TestWorkloadBasics(t *testing.T) {
	for _, spec := range workloads.All() {
		rep := report(t, spec.Name, race.Dynamic)
		if rep.Run.Threads != spec.Threads {
			t.Errorf("%s: %d threads, spec says %d", spec.Name, rep.Run.Threads, spec.Threads)
		}
		if rep.Run.Accesses < 50_000 {
			t.Errorf("%s: only %d accesses", spec.Name, rep.Run.Accesses)
		}
	}
}

// Scale must scale the access volume roughly linearly.
func TestScaleGrowsWork(t *testing.T) {
	spec, _ := workloads.ByName("canneal")
	s1, _ := race.Baseline(spec.Build(1), 1)
	s3, _ := race.Baseline(spec.Build(3), 1)
	ratio := float64(s3.Accesses) / float64(s1.Accesses)
	if ratio < 2 || ratio > 4.5 {
		t.Errorf("scale 3 grew accesses by %.2f×", ratio)
	}
}

// Word-sized benchmarks: byte and word granularity must produce identical
// shadow statistics (Table 1's "word buys nothing" rows).
func TestWordEqualsByteOnWordBenchmarks(t *testing.T) {
	for _, name := range []string{"facesim", "fluidanimate", "canneal", "streamcluster", "hmmsearch"} {
		b := report(t, name, race.Byte).Detector
		w := report(t, name, race.Word).Detector
		if b.MaxVectorClocks != w.MaxVectorClocks {
			t.Errorf("%s: byte %d vs word %d clocks", name, b.MaxVectorClocks, w.MaxVectorClocks)
		}
	}
}

// Sub-word benchmarks: word granularity genuinely shrinks the shadow
// (ferret's byte flags, ffmpeg's 2-byte samples).
func TestWordShrinksSubwordBenchmarks(t *testing.T) {
	for _, name := range []string{"ferret", "ffmpeg"} {
		b := report(t, name, race.Byte).Detector
		w := report(t, name, race.Word).Detector
		if w.MaxVectorClocks >= b.MaxVectorClocks {
			t.Errorf("%s: word did not shrink clocks (%d vs %d)",
				name, w.MaxVectorClocks, b.MaxVectorClocks)
		}
	}
}

// Dynamic granularity's clock reduction per benchmark (Table 3's shape).
func TestDynamicClockReduction(t *testing.T) {
	atLeast := map[string]float64{
		"facesim":       5,  // partitioned sweeps coalesce hard
		"streamcluster": 10, // likewise
		"dedup":         10, // single-epoch buffers
		"pbzip2":        10,
		"ffmpeg":        10, // pooled frame buffers
		"canneal":       1,  // random access: no benefit (the paper's point)
	}
	for name, factor := range atLeast {
		b := report(t, name, race.Byte).Detector
		d := report(t, name, race.Dynamic).Detector
		got := float64(b.MaxVectorClocks) / float64(d.MaxVectorClocks)
		if got < factor {
			t.Errorf("%s: clock reduction %.1f×, want ≥ %.0f×", name, got, factor)
		}
	}
	// canneal specifically must NOT benefit much.
	b := report(t, "canneal", race.Byte).Detector
	d := report(t, "canneal", race.Dynamic).Detector
	if float64(b.MaxVectorClocks)/float64(d.MaxVectorClocks) > 1.5 {
		t.Error("canneal should see almost no sharing")
	}
}

// pbzip2 isolates the allocation effect: same-epoch rates identical at
// byte and dynamic granularity while the sharing count is large.
func TestPbzip2AllocationIsolation(t *testing.T) {
	b := report(t, "pbzip2", race.Byte).Detector
	d := report(t, "pbzip2", race.Dynamic).Detector
	if b.SameEpochPct() != d.SameEpochPct() {
		t.Errorf("same-epoch rates differ: %.1f vs %.1f", b.SameEpochPct(), d.SameEpochPct())
	}
	if d.AvgSharing < 20 || d.AvgSharing > 33 {
		t.Errorf("avg sharing %.1f, want near the 32-location block ceiling", d.AvgSharing)
	}
	if d.NodeAllocs*5 > b.NodeAllocs {
		t.Errorf("clock allocations: dynamic %d vs byte %d (want ≥5× fewer)",
			d.NodeAllocs, b.NodeAllocs)
	}
}

// facesim and streamcluster: dynamic granularity lifts the same-epoch rate
// substantially (Table 4's mechanism).
func TestSameEpochLift(t *testing.T) {
	for _, name := range []string{"facesim", "fluidanimate", "streamcluster"} {
		b := report(t, name, race.Byte).Detector
		d := report(t, name, race.Dynamic).Detector
		if d.SameEpochPct() < b.SameEpochPct()+20 {
			t.Errorf("%s: same-epoch %.0f%% → %.0f%%, want a ≥20-point lift",
				name, b.SameEpochPct(), d.SameEpochPct())
		}
	}
}

// dedup out-allocates every other benchmark by a wide margin (the paper's
// 14 GB vs a 1.7 GB suite average), and its memory-overhead factor is the
// smallest of the suite.
func TestDedupChurnAndOverhead(t *testing.T) {
	rep := report(t, "dedup", race.Dynamic)
	for _, spec := range workloads.All() {
		if spec.Name == "dedup" {
			continue
		}
		other := report(t, spec.Name, race.Dynamic)
		if rep.Run.AllocBytes < 3*other.Run.AllocBytes {
			t.Errorf("dedup churn %d not ≥3× %s's %d",
				rep.Run.AllocBytes, spec.Name, other.Run.AllocBytes)
		}
	}
	dedupFactor := 1 + float64(rep.Detector.TotalPeakBytes)/float64(rep.Run.PeakHeapBytes)
	for _, other := range []string{"facesim", "ferret", "pbzip2"} {
		o := report(t, other, race.Dynamic)
		f := 1 + float64(o.Detector.TotalPeakBytes)/float64(o.Run.PeakHeapBytes)
		if f < dedupFactor {
			t.Errorf("%s overhead factor %.2f below dedup's %.2f", other, f, dedupFactor)
		}
	}
}

// raytrace's pthread-module races are suppressed by the FastTrack detector
// but visible to a DRD-style tool (the paper's raytrace note).
func TestRaytracePthreadSuppression(t *testing.T) {
	ft := report(t, "raytrace", race.Dynamic)
	if ft.Suppressed == 0 {
		t.Error("raytrace should have suppressed pthread races")
	}
	spec, _ := workloads.ByName("raytrace")
	drd := race.Run(spec.Program(), race.Options{Tool: race.DRD, Seed: 42})
	if len(drd.Races) <= len(ft.Races) {
		t.Errorf("DRD should report the extra pthread race: %d vs %d",
			len(drd.Races), len(ft.Races))
	}
}

// hmmsearch's single race is found by every tool (the paper's agreement).
func TestHmmsearchAllToolsAgree(t *testing.T) {
	spec, _ := workloads.ByName("hmmsearch")
	for _, tool := range []race.Tool{race.FastTrack, race.DJITPlus, race.DRD, race.InspectorXE, race.Eraser, race.MultiRace} {
		rep := race.Run(spec.Program(), race.Options{Tool: tool, Granularity: race.Dynamic, Seed: 42})
		// Tools count differently (per byte, per word, per site pair);
		// normalize to distinct word locations.
		locs := map[uint64]bool{}
		for _, r := range rep.Races {
			locs[r.Addr&^3] = true
		}
		if len(locs) != 1 {
			t.Errorf("%v flagged %d locations on hmmsearch, want 1", tool, len(locs))
		}
	}
}
