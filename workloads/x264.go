package workloads

import "repro/internal/sim"

// X264 models PARSEC's H.264 encoder: pipelined frame workers sharing
// per-macroblock status bytes. x264 is the paper's precision showcase
// (the race-count discussion around Table 1), and the model reproduces all
// three effects:
//
//   - a region of twelve adjacent *byte* status flags raced by an
//     unsynchronized worker: byte granularity reports each byte, while
//     word granularity masks each group of four into one report (the
//     paper's 1132 vs 993);
//   - four padding bytes written only by worker 0 but adjacent to the racy
//     flags: under dynamic granularity they share a clock with the flags,
//     inherit worker 1's clock through a legitimate shared update, and
//     produce four extra reports — the paper found exactly this ("4 write
//     locations which were sharing a vector clock with one location having
//     a data race", 1136 vs 1132);
//   - sixty standalone word-sized racy locations reported identically at
//     every granularity, keeping the ratios between the three counts
//     moderate, as in the paper.
//
// Expected reports: byte 72, word 63, dynamic 76.
//
// The false-positive choreography needs cross-thread ordering *without*
// happens-before edges; spinWait provides it by burning scheduler turns
// instead of synchronizing.
func X264() Spec {
	const workers = 4
	return Spec{
		Name:        "x264",
		Threads:     workers + 1,
		Races:       72, // 12 racy flag bytes + 60 standalone words
		Description: "frame pipeline with racy per-macroblock byte flags",
		Build: func(scale int) sim.Program {
			return sim.Program{Name: "x264", Main: func(m *sim.Thread) {
				framesPerWorker := 55 * scale
				const frameWords = 256
				const (
					sitePad = 500 + iota
					siteFlagW0
					siteFlagW1
					siteFlagW2
					siteStandalone
					siteFrame
					siteRef
				)
				// status: bytes 0..3 pad (worker 0 only), 4..15 racy flags.
				status := m.Malloc(16)
				standalone := m.Malloc(60 * 16)
				saAddr := func(i int) uint64 { return standalone + uint64(i)*16 }
				refLock := m.NewLock()
				ref := m.Malloc(frameWords * 4)
				epochCut := m.NewLock() // only delimits worker 0's epochs
				handoff := m.NewLock()  // carries the one-way w0 → w1 edge
				m.At(siteRef)
				m.WriteBlock(ref, 4, frameWords)

				stage := 0 // Go-level choreography; not simulated memory

				encode := func(t *sim.Thread) {
					for f := 0; f < framesPerWorker; f++ {
						fr := t.Malloc(frameWords * 4)
						t.At(siteFrame)
						t.WriteBlock(fr, 4, frameWords)
						t.Lock(refLock)
						t.ReadBlock(ref, 4, 16)
						t.Unlock(refLock)
						t.ReadBlock(fr, 4, frameWords)
						t.Free(fr)
					}
				}
				sweepStatus := func(t *sim.Thread, lo, hi int, site uint32) {
					t.At(site)
					for i := lo; i < hi; i++ {
						t.Write(status+uint64(i), 1)
					}
				}

				var hs []*sim.Thread
				// Worker 0: owns the pads; builds the shared clock node.
				hs = append(hs, m.Go(func(t *sim.Thread) {
					t.Lock(epochCut)
					sweepStatus(t, 0, 4, sitePad) // first epoch: pads+flags
					sweepStatus(t, 4, 16, siteFlagW0)
					t.Unlock(epochCut) // epoch boundary
					// Second epoch: the final sharing decision folds pads
					// and flags into one Shared clock.
					sweepStatus(t, 0, 4, sitePad)
					sweepStatus(t, 4, 16, siteFlagW0)
					t.Lock(handoff)
					t.Unlock(handoff) // publishes w0's clock for w1
					stage = 1
					spinWait(t, func() bool { return stage >= 2 })
					// Unaware of w1's ordered update: under dynamic
					// granularity the pads inherited w1's clock through
					// the shared node — four false races. At byte/word
					// granularity the pads are private to w0: no report.
					sweepStatus(t, 0, 4, sitePad)
					stage = 3
					encode(t)
				}))
				// Worker 1: properly synchronized flag update (no race
				// with w0), which contaminates the shared node's clock.
				hs = append(hs, m.Go(func(t *sim.Thread) {
					spinWait(t, func() bool { return stage >= 1 })
					t.Lock(handoff)
					t.Unlock(handoff) // one-way edge: w0 → w1
					sweepStatus(t, 4, 16, siteFlagW1)
					stage = 2
					encode(t)
				}))
				// Worker 2: unsynchronized flag writes — the real races —
				// plus half of the standalone racy words.
				hs = append(hs, m.Go(func(t *sim.Thread) {
					spinWait(t, func() bool { return stage >= 3 })
					sweepStatus(t, 4, 16, siteFlagW2)
					t.At(siteStandalone)
					for i := 0; i < 60; i++ {
						t.Write(saAddr(i), 4)
					}
					encode(t)
				}))
				// Worker 3: the other unsynchronized standalone writer.
				hs = append(hs, m.Go(func(t *sim.Thread) {
					t.At(siteStandalone)
					for i := 0; i < 60; i++ {
						t.Write(saAddr(i), 4)
					}
					encode(t)
				}))
				joinAll(m, hs)
				m.Free(status)
				m.Free(standalone)
				m.Free(ref)
			}}
		},
	}
}
