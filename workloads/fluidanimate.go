package workloads

import (
	"repro/internal/event"
	"repro/internal/sim"
)

// Fluidanimate models PARSEC's smoothed-particle hydrodynamics solver: a
// spatial grid of cells updated by workers that lock pairs of neighbouring
// cells (in address order) around each density/force exchange. Properties
// the model reproduces:
//
//   - all accesses are 4-byte words, so word granularity is no better than
//     byte (Table 1: identical slowdown/memory byte vs word);
//   - a cell's four words are always touched together in one epoch, so
//     dynamic granularity folds each cell into one clock (Table 3:
//     vector count drops ~2.4×);
//   - an extremely high lock-operation rate (two lock/unlock pairs per
//     cell update, one mutex per cell) — the segment churn that made
//     Valgrind DRD run past 24 hours on this benchmark (Table 6);
//   - four genuine races: the original fluidanimate omits locking on
//     border cells, modelled here as four boundary cells updated without
//     their locks.
func Fluidanimate() Spec {
	const workers = 4
	return Spec{
		Name:        "fluidanimate",
		Threads:     workers + 1,
		Races:       4,
		Description: "grid solver with per-cell locks and unlocked border cells",
		Build: func(scale int) sim.Program {
			return sim.Program{Name: "fluidanimate", Main: func(m *sim.Thread) {
				cells := 2048 * scale
				iters := 3
				const cellWords = 4
				// Cells are padded structs (as in the original, where a
				// cell carries more state than the four exchanged words):
				// the 8-byte pad keeps distinct cells from ever sharing a
				// clock node, while the four words inside a cell do share.
				const cellStride = cellWords*4 + 8
				const (
					siteInit = 300 + iota
					siteSelf
					siteNbr
					siteBorder
				)
				grid := m.Malloc(uint64(cells) * cellStride)
				locks := make([]event.LockID, cells)
				for i := range locks {
					locks[i] = m.NewLock()
				}
				cellAddr := func(i int) uint64 { return grid + uint64(i)*cellStride }

				m.At(siteInit)
				for i := 0; i < cells; i++ {
					m.WriteBlock(cellAddr(i), 4, cellWords)
				}

				// The four border cells are additionally updated without
				// locking by every worker (the ghost-cell exchange the
				// original omits locks on): four races.
				borders := []int{0, cells / 3, 2 * cells / 3, cells - 1}

				bar := m.NewBarrier(workers + 1)
				part := cells / workers
				var hs []*sim.Thread
				for w := 0; w < workers; w++ {
					w := w
					hs = append(hs, m.Go(func(t *sim.Thread) {
						lo := w * part
						hi := lo + part
						for it := 0; it < iters; it++ {
							for i := lo; i < hi; i++ {
								j := i + 1
								if j >= cells {
									j = 0
								}
								a, b := i, j
								if a > b {
									a, b = b, a
								}
								t.Lock(locks[a])
								if b != a {
									t.Lock(locks[b])
								}
								t.At(siteSelf)
								// Exchange: all four words of both cells.
								t.ReadBlock(cellAddr(i), 4, cellWords)
								t.WriteBlock(cellAddr(i), 4, cellWords)
								t.At(siteNbr)
								t.ReadBlock(cellAddr(j), 4, cellWords)
								t.WriteBlock(cellAddr(j), 4, cellWords)
								if b != a {
									t.Unlock(locks[b])
								}
								t.Unlock(locks[a])
							}
							// Ghost-cell exchange without locks: races on
							// the four border cells.
							for _, bc := range borders {
								t.At(siteBorder)
								t.Read(cellAddr(bc), 4)
								t.Write(cellAddr(bc), 4)
							}
							t.Barrier(bar)
						}
					}))
				}
				for it := 0; it < iters; it++ {
					m.Barrier(bar)
				}
				joinAll(m, hs)
				m.Free(grid)
			}}
		},
	}
}
