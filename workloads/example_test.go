package workloads_test

import (
	"fmt"

	"repro/race"
	"repro/workloads"
)

// Running one of the paper's benchmarks under the paper's detector.
func Example() {
	spec, err := workloads.ByName("ffmpeg")
	if err != nil {
		panic(err)
	}
	rep := race.Run(spec.Program(), race.Options{
		Granularity: race.Dynamic,
		Seed:        42,
	})
	fmt.Printf("%s: %d race(s) at dynamic granularity\n", spec.Name, len(rep.Races))

	// The same program at word granularity shows the masking false alarms
	// the paper describes.
	rep = race.Run(spec.Program(), race.Options{Granularity: race.Word, Seed: 42})
	fmt.Printf("%s: %d race(s) at word granularity\n", spec.Name, len(rep.Races))
	// Output:
	// ffmpeg: 1 race(s) at dynamic granularity
	// ffmpeg: 4 race(s) at word granularity
}
