package workloads

import "repro/internal/sim"

// Ferret models PARSEC's content-based similarity search: a four-stage
// pipeline (load → extract → index → rank) connected by bounded queues.
// Properties the model reproduces:
//
//   - pipeline items are heap structs mixing byte-sized flags with 4-byte
//     feature words; the per-stage byte flags give word granularity
//     something to merge (Table 3: ferret's vector count drops noticeably
//     byte → word), and whole-struct streaming gives dynamic granularity
//     much more (Table 1/3: dynamic beats word);
//   - every item is written by one stage and read by the next, with the
//     queues' lock/cond handoffs providing the happens-before edges;
//   - three genuine races: two adjacent unprotected byte fields of a
//     global configuration struct (merged into one report under word
//     granularity) and an unprotected word counter.
func Ferret() Spec {
	const (
		flagBytes = 4  // per-item stage flags, 1 byte per stage
		vecWords  = 24 // per-item feature vector of 4-byte words
	)
	return Spec{
		Name:        "ferret",
		Threads:     5,
		Races:       3,
		Description: "4-stage similarity-search pipeline over mixed byte/word items",
		Build: func(scale int) sim.Program {
			return sim.Program{Name: "ferret", Main: func(m *sim.Thread) {
				items := 900 * scale
				const (
					siteLoadFlag = 200 + iota
					siteLoadVec
					siteExtract
					siteIndexRead
					siteRank
					siteCfgA
					siteCfgB
					siteCounter
					siteTable
				)
				itemSize := uint64(flagBytes + 4*vecWords)
				cfg := m.Malloc(8)     // bytes 0 and 1 raced by two stages
				counter := m.Malloc(8) // raced word counter
				tableLock := m.NewLock()
				table := m.Malloc(256 * 4) // index table, read under lock

				q1 := newQueue(m, 8)
				q2 := newQueue(m, 8)
				q3 := newQueue(m, 8)

				load := m.Go(func(t *sim.Thread) {
					for i := 0; i < items; i++ {
						it := t.Malloc(itemSize)
						t.At(siteLoadFlag)
						t.Write(it, 1) // flags[0]
						t.At(siteLoadVec)
						t.WriteBlock(it+flagBytes, 4, vecWords)
						t.At(siteCfgA) // unprotected byte, also written by rank: race
						t.Write(cfg, 1)
						t.At(siteCounter) // unprotected counter, also in rank: race
						t.Read(counter, 4)
						t.Write(counter, 4)
						q1.put(t, it)
					}
					q1.close(t)
				})
				extract := m.Go(func(t *sim.Thread) {
					for {
						it, ok := q1.get(t)
						if !ok {
							break
						}
						t.At(siteExtract)
						// Stage-local accumulator lives on the stack: the
						// detectors' non-shared filter drops these.
						t.Read(t.Local(0), 8)
						t.Write(t.Local(0), 8)
						t.Write(it+1, 1) // flags[1]
						// Feature extraction iterates over the vector:
						// repeated same-epoch passes, as in the original.
						t.ReadBlock(it+flagBytes, 4, vecWords)
						t.ReadBlock(it+flagBytes, 4, vecWords)
						t.WriteBlock(it+flagBytes, 4, vecWords)
						t.ReadBlock(it+flagBytes, 4, vecWords)
						t.At(siteCfgB) // unprotected byte, also written by rank: race
						t.Write(cfg+1, 1)
						q2.put(t, it)
					}
					q2.close(t)
				})
				index := m.Go(func(t *sim.Thread) {
					for {
						it, ok := q2.get(t)
						if !ok {
							break
						}
						t.Write(it+2, 1) // flags[2]
						t.At(siteIndexRead)
						t.ReadBlock(it+flagBytes, 4, vecWords)
						t.ReadBlock(it+flagBytes, 4, vecWords)
						t.Lock(tableLock)
						t.At(siteTable)
						t.Read(table+uint64(it%64)*4, 4)
						t.Write(table+uint64(it%64)*4, 4)
						t.Unlock(tableLock)
						q3.put(t, it)
					}
					q3.close(t)
				})
				rank := m.Go(func(t *sim.Thread) {
					for {
						it, ok := q3.get(t)
						if !ok {
							break
						}
						t.At(siteRank)
						t.Write(it+3, 1) // flags[3]
						t.ReadBlock(it+flagBytes, 4, vecWords)
						t.ReadBlock(it+flagBytes, 4, vecWords)
						// Rank re-writes both config bytes with no backward
						// happens-before edge to load/extract: two byte races
						// that word granularity merges into one.
						t.At(siteCfgA)
						t.Write(cfg, 1)
						t.At(siteCfgB)
						t.Write(cfg+1, 1)
						t.At(siteCounter)
						t.Read(counter, 4)
						t.Write(counter, 4)
						t.Free(it)
					}
				})
				joinAll(m, []*sim.Thread{load, extract, index, rank})
				m.Free(cfg)
				m.Free(counter)
				m.Free(table)
			}}
		},
	}
}
