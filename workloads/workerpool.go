package workloads

import "repro/internal/sim"

// Workerpool models the canonical Go worker-pool: the main thread hands
// job indices to a fixed pool over a buffered channel, each worker owns
// the output region its job index names, and completion is a WaitGroup.
// The workload is deliberately race-free — it is the suite's false-positive
// pin for the Go-native synchronization model:
//
//   - job-region ownership transfers main→worker purely by the channel
//     handoff (send of index j happens-before the recv that starts
//     writing region j);
//   - the main thread reads back every output word after WGWait, which is
//     safe only if each WGDone→WGWait edge absorbs the worker's writes;
//   - a miscounted channel pairing or a lost WaitGroup publication shows
//     up as reported races, so the expected count is exactly zero.
func Workerpool() Spec {
	const workers = 32
	return Spec{
		Name:        "workerpool",
		Threads:     workers + 1,
		Races:       0,
		Description: "race-free worker pool: channel job handoff, WaitGroup completion",
		Build: func(scale int) sim.Program {
			return sim.Program{Name: "workerpool", Main: func(m *sim.Thread) {
				jobsN := 128 * scale
				const jobWords = 64
				const passes = 3
				const sentinel = uint64(1) << 40
				const (
					siteInit = 12100 + iota
					siteJob
					siteSum
				)
				input := m.Malloc(jobWords * 4)
				output := m.Malloc(uint64(jobsN) * jobWords * 4)

				m.At(siteInit)
				m.WriteBlock(input, 4, jobWords)

				jobs := m.NewChan(workers)
				wg := m.NewWaitGroup()
				m.WGAdd(wg, workers)
				var hs []*sim.Thread
				for w := 0; w < workers; w++ {
					hs = append(hs, m.Go(func(t *sim.Thread) {
						for {
							j := t.Recv(jobs)
							if j == sentinel {
								break
							}
							region := output + j*jobWords*4
							t.At(siteJob)
							for p := 0; p < passes; p++ {
								for i := 0; i < jobWords; i++ {
									t.Read(input+uint64(i)*4, 4)
									t.Write(region+uint64(i)*4, 4)
								}
							}
						}
						t.WGDone(wg)
					}))
				}
				for j := 0; j < jobsN; j++ {
					m.Send(jobs, uint64(j))
				}
				for w := 0; w < workers; w++ {
					m.Send(jobs, sentinel)
				}
				m.WGWait(wg)
				// Safe only through the WGDone→WGWait edges.
				m.At(siteSum)
				m.ReadBlock(output, 4, jobsN*jobWords)
				joinAll(m, hs)
				m.Free(input)
				m.Free(output)
			}}
		},
	}
}
