// Package workloads provides the benchmark programs of the paper's
// evaluation (Section V) as virtual programs for the execution engine: the
// eight PARSEC-2.1 benchmarks (facesim, ferret, fluidanimate, raytrace,
// x264, canneal, dedup, streamcluster) plus FFmpeg, pbzip2 and hmmsearch,
// and three Go-native synchronization families (fanin, workerpool,
// pipedag) that exercise channels, select and WaitGroups — the sync
// surface the structure-aware clock layer accelerates.
//
// The originals cannot be run under a Go detector (no dynamic binary
// instrumentation), so each workload is a synthetic model that reproduces
// the benchmark's *sharing structure* — the properties the evaluation
// depends on: which access sizes dominate, whether neighbouring locations
// are accessed together, how data is initialized, how much heap churns,
// how threads synchronize, and which deliberate races exist. DESIGN.md
// documents this substitution; each workload's file comments state the
// behaviours it is modelled to reproduce.
//
// Every workload is deterministic for a given seed and scale. Scale 1 is
// the default used by the table harness; property tests and quick checks
// run smaller scales.
package workloads

import (
	"fmt"

	"repro/internal/sim"
)

// Spec describes one benchmark workload.
type Spec struct {
	// Name is the benchmark name as the paper's tables print it.
	Name string
	// Threads is the number of threads the program runs (including main),
	// the "# of threads" column of Table 1.
	Threads int
	// Description summarizes the modelled sharing structure.
	Description string
	// Races is the number of genuine data races seeded in the workload
	// (the expected byte-granularity report count).
	Races int
	// Build constructs the program at the given scale (≥ 1).
	Build func(scale int) sim.Program
}

// Program returns the workload's program at scale 1.
func (s Spec) Program() sim.Program { return s.Build(1) }

// All returns every benchmark workload in the paper's table order.
func All() []Spec {
	return []Spec{
		Facesim(),
		Ferret(),
		Fluidanimate(),
		Raytrace(),
		X264(),
		Canneal(),
		Dedup(),
		Streamcluster(),
		FFmpeg(),
		Pbzip2(),
		Hmmsearch(),
		Fanin(),
		Workerpool(),
		Pipedag(),
	}
}

// ByName returns the workload with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Names returns every benchmark name in table order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// joinAll joins every worker handle.
func joinAll(t *sim.Thread, hs []*sim.Thread) {
	for _, h := range hs {
		t.Join(h)
	}
}

// spinWait busy-waits (yielding the scheduler) until cond holds. Unlike a
// lock or condition variable it creates *no* happens-before edge, which the
// race-choreography workloads (x264, streamcluster, ffmpeg) rely on to
// order operations across threads while keeping them logically concurrent.
func spinWait(t *sim.Thread, cond func() bool) {
	for !cond() {
		t.Yield()
	}
}
