package workloads

import "repro/internal/sim"

// Fanin models a Go-style fan-in server at realistic service parallelism:
// 64 request workers score requests against a shared read-only config table
// and stream completion tokens over one buffered channel to the main
// thread, which aggregates per-worker totals. Properties the model
// reproduces:
//
//   - channel-only synchronization (no mutex), so the structure-aware
//     clock layer keeps every thread on the compact representation — and
//     at this thread count the task-tree encoding's near-constant
//     per-thread footprint beats the O(threads) general vectors that the
//     hub's queued publications keep cloning;
//   - a high same-epoch rate from the config table re-read every request
//     within an epoch, with aggregation ordered purely by send→recv
//     happens-before edges (a false positive here means a broken channel
//     clock edge);
//   - exactly one deliberately racy word: a "hot request id" that the
//     first two workers update unprotected, the known true race.
func Fanin() Spec {
	const workers = 64
	return Spec{
		Name:        "fanin",
		Threads:     workers + 1,
		Races:       1,
		Description: "channel fan-in server with one unprotected hot word",
		Build: func(scale int) sim.Program {
			return sim.Program{Name: "fanin", Main: func(m *sim.Thread) {
				requests := 30 * scale
				const cfgWords = 48
				const (
					siteCfg = 12000 + iota
					siteScore
					siteHot
					siteAgg
				)
				cfg := m.Malloc(cfgWords * 4)
				agg := m.Malloc(workers * 8)
				hot := m.Malloc(384) // single racy word at +160, block-isolated

				m.At(siteCfg)
				m.WriteBlock(cfg, 4, cfgWords)

				results := m.NewChan(8)
				var hs []*sim.Thread
				for w := 0; w < workers; w++ {
					w := w
					hs = append(hs, m.Go(func(t *sim.Thread) {
						scratch := t.Malloc(cfgWords * 4)
						for r := 0; r < requests; r++ {
							t.At(siteScore)
							for i := 0; i < cfgWords; i++ {
								t.Read(cfg+uint64(i)*4, 4)
								t.Write(scratch+uint64(i)*4, 4)
							}
							if w < 2 && r%16 == 0 {
								t.At(siteHot) // unprotected: the deliberate race
								t.Read(hot+160, 4)
								t.Write(hot+160, 4)
							}
							t.Send(results, uint64(w))
						}
						t.Free(scratch)
					}))
				}
				for i := 0; i < workers*requests; i++ {
					v := m.Recv(results)
					m.At(siteAgg)
					m.Read(agg+v*8, 4)
					m.Write(agg+v*8, 4)
				}
				joinAll(m, hs)
				m.Free(cfg)
				m.Free(agg)
				m.Free(hot)
			}}
		},
	}
}
