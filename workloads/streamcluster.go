package workloads

import "repro/internal/sim"

// Streamcluster models PARSEC's online clustering kernel: barrier-phased
// passes over a points array with a small shared center table. Properties
// the model reproduces:
//
//   - all accesses are aligned words, so byte and word granularity behave
//     identically (Table 1);
//   - each worker sweeps its partition every phase, so dynamic granularity
//     coalesces partitions into few clocks and sharply raises the
//     same-epoch percentage (Table 4: 51% → 97%);
//   - three genuine races on unprotected global counters;
//   - two *false alarms specific to dynamic granularity* (Table 1 reports
//     more races for streamcluster under dynamic; the paper verified they
//     are false): pairs of adjacent center entries end up sharing a clock,
//     one entry is then updated with proper lock ordering by another
//     thread (contaminating the shared clock), and the first thread's next
//     write to *its own* entry looks racy.
func Streamcluster() Spec {
	const workers = 4
	return Spec{
		Name:        "streamcluster",
		Threads:     workers + 1,
		Races:       3,
		Description: "barrier-phased partition sweeps; shared-clock false-alarm pairs",
		Build: func(scale int) sim.Program {
			return sim.Program{Name: "streamcluster", Main: func(m *sim.Thread) {
				// Not a multiple of workers×(block size): partition
				// boundaries land inside shadow blocks (Table 5's
				// no-Init-state false alarms).
				points := 4096*scale + 4
				phases := 5
				const (
					siteInit = 800 + iota
					sitePoint
					siteAssign
					siteCenterA
					siteCenterB
					siteCost // three sites: siteCost, siteCost+1, siteCost+2
				)
				pts := m.Malloc(uint64(points) * 4)
				assign := m.Malloc(uint64(points) * 4)
				costs := m.Malloc(3 * 4) // three racy counters
				// Two word pairs, 16 bytes apart so the pairs themselves
				// never share a node with each other.
				centers := m.Malloc(32)
				pairOff := []uint64{0, 24}
				handA := m.NewLock()
				epochCut := m.NewLock()

				m.At(siteInit)
				m.WriteBlock(pts, 4, points)
				// The assignment array is zeroed in one sweep, then written
				// partition-by-partition by separate workers.
				m.WriteBlock(assign, 4, points)

				stage := 0
				bar := m.NewBarrier(workers + 1)
				part := points / workers

				var hs []*sim.Thread
				for w := 0; w < workers; w++ {
					w := w
					hs = append(hs, m.Go(func(t *sim.Thread) {
						if w == 0 {
							// Build two shared center-pair nodes: write both
							// words of each pair in two successive epochs.
							writePairs := func() {
								t.At(siteCenterA)
								for _, off := range pairOff {
									t.Write(centers+off, 4)
									t.Write(centers+off+4, 4)
								}
							}
							t.Lock(epochCut)
							writePairs()
							t.Unlock(epochCut) // epoch boundary
							writePairs()       // final decision: Shared
							t.Lock(handA)
							t.Unlock(handA) // publish w0's clock
							stage = 1
							spinWait(t, func() bool { return stage >= 2 })
							// w1 contaminated the shared clocks; these
							// writes to w0's own words are now reported
							// under dynamic granularity: 2 false alarms.
							t.At(siteCenterA)
							t.Write(centers+pairOff[0], 4)
							t.Write(centers+pairOff[1], 4)
							stage = 3
						}
						if w == 1 {
							spinWait(t, func() bool { return stage >= 1 })
							t.Lock(handA)
							t.Unlock(handA) // one-way edge w0 → w1
							t.At(siteCenterB)
							// Properly ordered updates of the pairs' second
							// words: no race, but the shared nodes' clocks
							// become w1's.
							t.Write(centers+pairOff[0]+4, 4)
							t.Write(centers+pairOff[1]+4, 4)
							stage = 2
						}
						lo := w * part
						hi := lo + part
						for ph := 0; ph < phases; ph++ {
							for i := lo; i < hi; i++ {
								t.At(sitePoint)
								t.Read(pts+uint64(i)*4, 4)
								t.Read(pts+uint64(i)*4, 4) // distance recompute
								t.At(siteAssign)
								t.Write(assign+uint64(i)*4, 4)
							}
							// Unprotected cost counters: three races, each
							// at its own code site (so per-site tools also
							// report three).
							for c := 0; c < 3; c++ {
								t.At(siteCost + uint32(c))
								t.Read(costs+uint64(c)*4, 4)
								t.Write(costs+uint64(c)*4, 4)
							}
							t.Barrier(bar)
						}
					}))
				}
				for ph := 0; ph < phases; ph++ {
					m.Barrier(bar)
				}
				joinAll(m, hs)
				m.Free(pts)
				m.Free(assign)
				m.Free(costs)
				m.Free(centers)
			}}
		},
	}
}
