package workloads

import "repro/internal/sim"

// Pbzip2 models the parallel bzip2 compressor: a producer reads the input
// into heap blocks, worker threads compress them into fresh output blocks,
// and a writer drains the results. The paper uses pbzip2 to isolate the
// *allocation* benefit of dynamic granularity: its same-epoch percentage is
// identical under byte and dynamic granularity (97%), yet dynamic is 1.6×
// faster, because each block's locations share one clock (average sharing
// count ≈ 33, Table 3) and clock allocation/deletion drops accordingly.
// Properties the model reproduces:
//
//   - every block is filled once in a single epoch (producer), read in a
//     single epoch (worker), and freed — classic Init-state sharing;
//   - each stage passes over its block twice in the same epoch (fill +
//     checksum, decompress-scan + emit), so the same-epoch percentage is
//     already high at byte granularity and dynamic granularity cannot
//     raise it much further;
//   - no data races (the paper reports none for pbzip2).
func Pbzip2() Spec {
	const workers = 3
	return Spec{
		Name:        "pbzip2",
		Threads:     workers + 2,
		Races:       0,
		Description: "block compressor: single-epoch blocks, two passes per stage",
		Build: func(scale int) sim.Program {
			return sim.Program{Name: "pbzip2", Main: func(m *sim.Thread) {
				blocks := 110 * scale
				const blockWords = 640 // 2.5 KiB blocks
				const (
					siteFill = 1000 + iota
					siteChecksum
					siteScan
					siteEmit
					siteDrain
				)
				inq := newQueue(m, 4)
				outq := newQueue(m, 4)

				var hs []*sim.Thread
				for w := 0; w < workers; w++ {
					hs = append(hs, m.Go(func(t *sim.Thread) {
						for {
							blk, ok := inq.get(t)
							if !ok {
								break
							}
							// Two read passes in one epoch.
							t.At(siteScan)
							t.ReadBlock(blk, 4, blockWords)
							t.ReadBlock(blk, 4, blockWords)
							out := t.Malloc(blockWords * 4)
							t.At(siteEmit)
							t.WriteBlock(out, 4, blockWords)
							t.Free(blk)
							outq.put(t, out)
						}
					}))
				}
				writer := m.Go(func(t *sim.Thread) {
					for {
						out, ok := outq.get(t)
						if !ok {
							break
						}
						t.At(siteDrain)
						t.ReadBlock(out, 4, blockWords)
						t.Free(out)
					}
				})

				// Producer (main): fill and checksum each block in one epoch.
				for b := 0; b < blocks; b++ {
					blk := m.Malloc(blockWords * 4)
					m.At(siteFill)
					m.WriteBlock(blk, 4, blockWords)
					m.At(siteChecksum)
					m.ReadBlock(blk, 4, blockWords)
					inq.put(m, blk)
				}
				inq.close(m)
				joinAll(m, hs)
				outq.close(m)
				m.Join(writer)
			}}
		},
	}
}
