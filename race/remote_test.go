package race

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/server"
	"repro/workloads"
)

// startDetectd starts a loopback racedetectd for the duration of the test.
func startDetectd(t *testing.T, opts server.Options) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil && err != server.ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	})
	return l.Addr().String()
}

// TestRemoteEquivalence is the acceptance gate for the remote detection
// service: for every workload and every granularity, streaming to a
// loopback racedetectd must reproduce the in-process race set and access
// statistics exactly.
func TestRemoteEquivalence(t *testing.T) {
	addr := startDetectd(t, server.Options{})
	grans := []Granularity{Byte, Word, Dynamic}
	for _, spec := range workloads.All() {
		for _, g := range grans {
			local := Run(spec.Program(), Options{Granularity: g, Seed: 42})
			remote, err := RunE(spec.Program(), Options{
				Granularity: g, Seed: 42, Workers: 2, Remote: addr,
			})
			if err != nil {
				t.Fatalf("%s/%s: remote run: %v", spec.Name, g, err)
			}

			if local.Run.Accesses != remote.Run.Accesses {
				t.Errorf("%s/%s: Run.Accesses %d (local) vs %d (remote)",
					spec.Name, g, local.Run.Accesses, remote.Run.Accesses)
			}
			if local.Detector.Accesses != remote.Detector.Accesses {
				t.Errorf("%s/%s: Detector.Accesses %d (local) vs %d (remote)",
					spec.Name, g, local.Detector.Accesses, remote.Detector.Accesses)
			}
			if local.Detector.SameEpoch != remote.Detector.SameEpoch {
				t.Errorf("%s/%s: Detector.SameEpoch %d (local) vs %d (remote)",
					spec.Name, g, local.Detector.SameEpoch, remote.Detector.SameEpoch)
			}
			want, got := sortRaces(local.Races), sortRaces(remote.Races)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: race sets differ\nlocal (%d): %v\nremote (%d): %v",
					spec.Name, g, len(want), want, len(got), got)
			}
		}
	}
}

// TestRemoteSyncMode checks the strict-ordering fallback produces the same
// report as the default asynchronous stream.
func TestRemoteSyncMode(t *testing.T) {
	addr := startDetectd(t, server.Options{})
	spec, err := workloads.ByName("pbzip2")
	if err != nil {
		t.Fatal(err)
	}
	local := Run(spec.Program(), Options{Granularity: Dynamic, Seed: 42})
	remote, err := RunE(spec.Program(), Options{
		Granularity: Dynamic, Seed: 42, Workers: 2,
		Remote: addr, RemoteSync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, got := sortRaces(local.Races), sortRaces(remote.Races)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("sync-mode race set differs:\nlocal (%d): %v\nremote (%d): %v",
			len(want), want, len(got), got)
	}
	if local.Detector.Accesses != remote.Detector.Accesses {
		t.Fatalf("Detector.Accesses %d (local) vs %d (remote sync)",
			local.Detector.Accesses, remote.Detector.Accesses)
	}
}

// TestRemoteConnectionRefused checks a dead address surfaces as an error
// from RunE, not a panic or a hang.
func TestRemoteConnectionRefused(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	spec, err := workloads.ByName("pbzip2")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunE(spec.Program(), Options{Remote: addr})
	if err == nil {
		t.Fatal("RunE to a dead address succeeded")
	}
}
