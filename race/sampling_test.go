package race

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/workloads"
)

// TestSamplingEquivalenceFullBudget is the 100%-budget pin: with Budget 1
// the sampling lane must be byte-identical to no sampler at all — same
// race set and same detector access count — across every workload, every
// granularity and all three topologies (in-process serial, remote
// loopback, two-member cluster). The sampler short-circuits into pure
// pass-through at 1000‰, so any divergence here means the lane perturbs
// the stream it claims to merely observe.
func TestSamplingEquivalenceFullBudget(t *testing.T) {
	remote := startDetectd(t, server.Options{})
	cluster := []string{startDetectd(t, server.Options{}), startDetectd(t, server.Options{})}
	for _, spec := range workloads.All() {
		for _, g := range []Granularity{Byte, Word, Dynamic} {
			base := Run(spec.Program(), Options{Granularity: g, Seed: 42})
			want := sortRaces(base.Races)
			topologies := []struct {
				name string
				opts Options
			}{
				{"serial", Options{Granularity: g, Seed: 42, Budget: 1}},
				{"remote", Options{Granularity: g, Seed: 42, Budget: 1, Workers: 2, Remote: remote}},
				{"cluster", Options{Granularity: g, Seed: 42, Budget: 1, Workers: 2, Cluster: cluster}},
			}
			for _, topo := range topologies {
				rep, err := RunE(spec.Program(), topo.opts)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", spec.Name, g, topo.name, err)
				}
				if got := sortRaces(rep.Races); !reflect.DeepEqual(want, got) {
					t.Errorf("%s/%s/%s: race set differs at 100%% budget\nwant (%d): %v\ngot (%d): %v",
						spec.Name, g, topo.name, len(want), want, len(got), got)
				}
				if base.Detector.Accesses != rep.Detector.Accesses {
					t.Errorf("%s/%s/%s: Detector.Accesses %d vs %d at 100%% budget",
						spec.Name, g, topo.name, base.Detector.Accesses, rep.Detector.Accesses)
				}
				if rep.Detector.SampledSkipped != 0 {
					t.Errorf("%s/%s/%s: pass-through skipped %d accesses",
						spec.Name, g, topo.name, rep.Detector.SampledSkipped)
				}
			}
		}
	}
}

// TestSamplingBudgetStats reconciles the three coverage surfaces of a
// budgeted run: the report's Stats, the sampling_* telemetry counters and
// the detector_sampled_fraction gauge must tell the same story, and on an
// iterating workload (canneal amortizes its cold start) the achieved
// fraction lands within the budget plus cold-burst slack.
func TestSamplingBudgetStats(t *testing.T) {
	spec, err := workloads.ByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	rep := Run(spec.Program(), Options{
		Granularity: Dynamic, Seed: 42, Budget: 0.05, Telemetry: reg,
	})
	st := rep.Detector
	if st.SampledForwarded == 0 || st.SampledSkipped == 0 {
		t.Fatalf("budgeted run did not sample: forwarded=%d skipped=%d",
			st.SampledForwarded, st.SampledSkipped)
	}
	if got := reg.CounterValue("sampling_forwarded_total"); got != st.SampledForwarded {
		t.Errorf("sampling_forwarded_total %d, Stats.SampledForwarded %d", got, st.SampledForwarded)
	}
	if got := reg.CounterValue("sampling_skipped_total"); got != st.SampledSkipped {
		t.Errorf("sampling_skipped_total %d, Stats.SampledSkipped %d", got, st.SampledSkipped)
	}
	if gauge := reg.GaugeValue("detector_sampled_fraction"); math.Abs(gauge-st.SampledFraction()) > 1e-9 {
		t.Errorf("detector_sampled_fraction gauge %.6f, Stats fraction %.6f",
			gauge, st.SampledFraction())
	}
	if f := st.SampledFraction(); f > 0.055 {
		t.Errorf("achieved fraction %.4f exceeds the 5%% budget + cold-burst slack", f)
	} else if f < 0.005 {
		t.Errorf("achieved fraction %.4f collapsed far below the 5%% budget", f)
	}
}

// TestSamplingNeverInventsRacesEndToEnd drives the budgeted lane through
// the remote topology (sampler → wire client → server pipeline) and
// checks every reported race is in the exhaustive set: sampling may only
// shrink the report, never add to it, because the synchronization
// skeleton is forwarded verbatim.
func TestSamplingNeverInventsRacesEndToEnd(t *testing.T) {
	addr := startDetectd(t, server.Options{})
	for _, name := range []string{"x264", "pipedag"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		base := Run(spec.Program(), Options{Granularity: Dynamic, Seed: 42})
		full := map[Race]bool{}
		for _, r := range base.Races {
			full[r] = true
		}
		rep, err := RunE(spec.Program(), Options{
			Granularity: Dynamic, Seed: 42, Budget: 0.05, Workers: 2, Remote: addr,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Races {
			if !full[r] {
				t.Errorf("%s: budgeted remote run invented a race: %+v", name, r)
			}
		}
		if rep.Detector.SampledForwarded == 0 {
			t.Errorf("%s: remote budgeted run forwarded nothing", name)
		}
	}
}

// TestServerSheddingCounted runs against a loopback server with the shed
// watermark forced to trip and checks dropped records are visible on both
// sides: the session report's ShedRecords and the server's
// sampling_shed_total counter agree, and nothing disappears silently.
func TestServerSheddingCounted(t *testing.T) {
	reg := telemetry.New()
	// Any nonzero queue occupancy latches the shedder, and every site is
	// sheddable after a single access: maximal pressure behaviour.
	addr := startDetectd(t, server.Options{
		ShedHighWater: 1e-12, ShedHotSite: 1, Telemetry: reg,
	})
	spec, err := workloads.ByName("pbzip2")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunE(spec.Program(), Options{
		Granularity: Dynamic, Seed: 42, Workers: 1, Remote: addr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detector.ShedRecords == 0 {
		t.Skip("loopback pipeline drained faster than the wire; no pressure to shed")
	}
	if got := reg.CounterValue("sampling_shed_total"); got != rep.Detector.ShedRecords {
		t.Errorf("sampling_shed_total %d, report ShedRecords %d", got, rep.Detector.ShedRecords)
	}
}
