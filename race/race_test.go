package race_test

import (
	"strings"
	"testing"
	"time"

	"repro/race"
	"repro/workloads"
)

func racyProgram() race.Program {
	return race.Program{Name: "racy", Main: func(t *race.Thread) {
		a := t.Go(func(w *race.Thread) { w.Write(0x1000, 4) })
		b := t.Go(func(w *race.Thread) { w.Write(0x1000, 4) })
		t.Join(a)
		t.Join(b)
	}}
}

func cleanProgram() race.Program {
	return race.Program{Name: "clean", Main: func(t *race.Thread) {
		mu := t.NewLock()
		a := t.Go(func(w *race.Thread) { w.WithLock(mu, func() { w.Write(0x1000, 4) }) })
		b := t.Go(func(w *race.Thread) { w.WithLock(mu, func() { w.Write(0x1000, 4) }) })
		t.Join(a)
		t.Join(b)
	}}
}

// Every tool must find the obvious race and accept the clean program.
func TestAllToolsAgreeOnObviousCases(t *testing.T) {
	tools := []race.Tool{race.FastTrack, race.DJITPlus, race.DRD, race.InspectorXE, race.Eraser}
	for _, tool := range tools {
		rep := race.Run(racyProgram(), race.Options{Tool: tool, Granularity: race.Dynamic, Seed: 1})
		if len(rep.Races) == 0 {
			t.Errorf("%v missed the obvious race", tool)
		}
		rep = race.Run(cleanProgram(), race.Options{Tool: tool, Granularity: race.Dynamic, Seed: 1})
		if len(rep.Races) != 0 {
			t.Errorf("%v false-alarmed on the locked program: %v", tool, rep.Races)
		}
	}
}

func TestReportCarriesRunAndDetectorStats(t *testing.T) {
	rep := race.Run(racyProgram(), race.Options{Granularity: race.Dynamic, Seed: 1})
	if rep.Program != "racy" || rep.Tool != race.FastTrack || rep.Granularity != race.Dynamic {
		t.Errorf("identity fields: %+v", rep)
	}
	if rep.Run.Threads != 3 || rep.Run.Accesses != 2 {
		t.Errorf("run stats: %+v", rep.Run)
	}
	if rep.Detector.Accesses != 2 {
		t.Errorf("detector stats: %+v", rep.Detector)
	}
	if rep.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
}

func TestDeterministicReports(t *testing.T) {
	spec, err := workloads.ByName("ferret")
	if err != nil {
		t.Fatal(err)
	}
	a := race.Run(spec.Program(), race.Options{Granularity: race.Dynamic, Seed: 4})
	b := race.Run(spec.Program(), race.Options{Granularity: race.Dynamic, Seed: 4})
	if len(a.Races) != len(b.Races) {
		t.Fatalf("race counts differ: %d vs %d", len(a.Races), len(b.Races))
	}
	for i := range a.Races {
		if a.Races[i] != b.Races[i] {
			t.Errorf("report %d differs", i)
		}
	}
}

func TestTimeoutMarksReport(t *testing.T) {
	endless := race.Program{Name: "endless", Main: func(t *race.Thread) {
		for i := 0; i < 1_000_000_000; i++ {
			t.Write(0x10, 4)
			t.Read(0x10, 4)
		}
	}}
	rep := race.Run(endless, race.Options{Granularity: race.Byte, Timeout: 20 * time.Millisecond})
	if !rep.TimedOut {
		t.Error("timeout not reported")
	}
}

func TestMemLimitMarksOOM(t *testing.T) {
	big := race.Program{Name: "big", Main: func(t *race.Thread) {
		for i := uint64(0); i < 20000; i++ {
			t.Write(0x10000+i*8, 8)
		}
	}}
	rep := race.Run(big, race.Options{Tool: race.InspectorXE, MemLimitBytes: 64 << 10})
	if !rep.OOM {
		t.Error("OOM not reported")
	}
}

func TestBaseline(t *testing.T) {
	st, d := race.Baseline(racyProgram(), 1)
	if st.Accesses != 2 || d <= 0 {
		t.Errorf("baseline: %+v %v", st, d)
	}
}

func TestSameEpochPct(t *testing.T) {
	var s race.Stats
	if s.SameEpochPct() != 0 {
		t.Error("empty stats divide by zero")
	}
	s.Accesses, s.SameEpoch = 200, 50
	if got := s.SameEpochPct(); got != 25 {
		t.Errorf("pct = %v", got)
	}
}

func TestToolAndRaceStrings(t *testing.T) {
	for tool, want := range map[race.Tool]string{
		race.FastTrack: "fasttrack", race.DJITPlus: "djit+", race.DRD: "drd",
		race.InspectorXE: "inspector", race.Eraser: "eraser",
	} {
		if tool.String() != want {
			t.Errorf("%v", tool)
		}
	}
	rep := race.Run(racyProgram(), race.Options{Seed: 1})
	if len(rep.Races) == 0 {
		t.Fatal("no race")
	}
	s := rep.Races[0].String()
	if !strings.Contains(s, "race at") || !strings.Contains(s, "thread") {
		t.Errorf("race string: %q", s)
	}
}

// The same workload analyzed by FastTrack and DJIT+ must flag the same
// number of locations at byte granularity for single-word races.
func TestFastTrackMatchesDJITOnWorkload(t *testing.T) {
	spec, err := workloads.ByName("hmmsearch")
	if err != nil {
		t.Fatal(err)
	}
	ft := race.Run(spec.Program(), race.Options{Tool: race.FastTrack, Granularity: race.Byte, Seed: 42})
	dj := race.Run(spec.Program(), race.Options{Tool: race.DJITPlus, Seed: 42})
	ftAddrs := map[uint64]bool{}
	for _, r := range ft.Races {
		ftAddrs[r.Addr&^3] = true
	}
	djAddrs := map[uint64]bool{}
	for _, r := range dj.Races {
		djAddrs[r.Addr&^3] = true
	}
	if len(ftAddrs) != len(djAddrs) {
		t.Errorf("FastTrack flagged %v, DJIT+ flagged %v", ftAddrs, djAddrs)
	}
}
