package race

import (
	"reflect"
	"testing"

	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/workloads"
)

// TestElideEquivalence is the front-line elision pin: with Elide on, the
// verdict must be byte-identical to the unelided run — same race set on
// every workload, every granularity and all three topologies (in-process
// serial, remote loopback, two-member cluster) — and the accounting must
// reconcile exactly: every shared access either reached the detector or
// was counted as elided, so Accesses(base) == Accesses(elided) + Elided.
// Any drift here means the elider dropped an access that was not a true
// same-epoch repeat, i.e. it is no longer lossless.
func TestElideEquivalence(t *testing.T) {
	remote := startDetectd(t, server.Options{})
	cluster := []string{startDetectd(t, server.Options{}), startDetectd(t, server.Options{})}
	specs := workloads.All()
	grans := []Granularity{Byte, Word, Dynamic}
	if raceDetectorOn {
		specs = specs[:4]
		grans = []Granularity{Dynamic}
	}
	var totalElided uint64
	for _, spec := range specs {
		for _, g := range grans {
			base := Run(spec.Program(), Options{Granularity: g, Seed: 42})
			want := sortRaces(base.Races)
			topologies := []struct {
				name string
				opts Options
			}{
				{"serial", Options{Granularity: g, Seed: 42, Elide: true}},
				{"remote", Options{Granularity: g, Seed: 42, Elide: true, Workers: 2, Remote: remote}},
				{"cluster", Options{Granularity: g, Seed: 42, Elide: true, Workers: 2, Cluster: cluster}},
			}
			for _, topo := range topologies {
				rep, err := RunE(spec.Program(), topo.opts)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", spec.Name, g, topo.name, err)
				}
				if got := sortRaces(rep.Races); !reflect.DeepEqual(want, got) {
					t.Errorf("%s/%s/%s: race set differs with -elide\nwant (%d): %v\ngot (%d): %v",
						spec.Name, g, topo.name, len(want), want, len(got), got)
				}
				// Sync-dense workloads (fanin, pipedag) flush the elider
				// before any repeat survives; elision firing is asserted
				// across the whole matrix below, not per combination.
				totalElided += rep.Detector.Elided
				if got := rep.Detector.Accesses + rep.Detector.Elided; got != base.Detector.Accesses {
					t.Errorf("%s/%s/%s: accounting drift: forwarded %d + elided %d = %d, want %d shared accesses",
						spec.Name, g, topo.name, rep.Detector.Accesses, rep.Detector.Elided,
						got, base.Detector.Accesses)
				}
				if base.Run.Accesses != rep.Run.Accesses {
					t.Errorf("%s/%s/%s: Run.Accesses %d vs %d — elision must not perturb the program",
						spec.Name, g, topo.name, base.Run.Accesses, rep.Run.Accesses)
				}
			}
		}
	}
	if totalElided == 0 {
		t.Error("elider never fired on any workload/granularity/topology")
	}
}

// TestElideSamplingComposition stacks both front ends — elider outermost,
// then the budgeted sampler — and reconciles the three tallies against
// the simulator's own access count: every access event is elided,
// forwarded or skipped, exactly once. The sync skeleton passes both
// stages verbatim (the elider flushes on it, the sampler forwards it),
// so the composed run may shrink the race report but never add to it.
func TestElideSamplingComposition(t *testing.T) {
	spec, err := workloads.ByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	base := Run(spec.Program(), Options{Granularity: Dynamic, Seed: 42})
	full := map[Race]bool{}
	for _, r := range base.Races {
		full[r] = true
	}
	reg := telemetry.New()
	rep := Run(spec.Program(), Options{
		Granularity: Dynamic, Seed: 42, Elide: true, Budget: 0.05, Telemetry: reg,
	})
	st := rep.Detector
	if st.Elided == 0 {
		t.Fatal("composed run elided nothing")
	}
	if st.SampledForwarded == 0 || st.SampledSkipped == 0 {
		t.Fatalf("composed run did not sample: forwarded=%d skipped=%d",
			st.SampledForwarded, st.SampledSkipped)
	}
	// Exact conservation: the simulator delivered Run.Accesses access
	// events; the elider swallowed st.Elided of them and the sampler
	// triaged every survivor into forwarded or skipped.
	if got := st.Elided + st.SampledForwarded + st.SampledSkipped; got != rep.Run.Accesses {
		t.Errorf("access conservation broken: elided %d + forwarded %d + skipped %d = %d, want %d",
			st.Elided, st.SampledForwarded, st.SampledSkipped, got, rep.Run.Accesses)
	}
	if got := reg.CounterValue("detector_elided_total"); got != st.Elided {
		t.Errorf("detector_elided_total %d, Stats.Elided %d", got, st.Elided)
	}
	if got := reg.CounterValue("sampling_forwarded_total"); got != st.SampledForwarded {
		t.Errorf("sampling_forwarded_total %d, Stats.SampledForwarded %d", got, st.SampledForwarded)
	}
	if got := reg.CounterValue("sampling_skipped_total"); got != st.SampledSkipped {
		t.Errorf("sampling_skipped_total %d, Stats.SampledSkipped %d", got, st.SampledSkipped)
	}
	for _, r := range rep.Races {
		if !full[r] {
			t.Errorf("composed run invented a race: %+v", r)
		}
	}
}
