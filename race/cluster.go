package race

import (
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/wire"
)

// ClusterMigration schedules a single hash-slot migration during a
// Cluster run (see internal/cluster.Migration): Slot (-1 picks a live
// one), To (the target server address), AfterEvents (the trigger).
type ClusterMigration = cluster.Migration

// MemberError is the typed failure of one cluster member, carrying the
// member's address and its last acknowledged batch sequence.
type MemberError = cluster.MemberError

// checkEndpoint validates one host:port address; it returns the reason
// the address is invalid, or "" when it is well-formed. Shared by the
// Remote and Cluster validation paths, so a bad address is a typed
// *OptionsError at Validate time instead of a dial failure mid-run.
func checkEndpoint(addr string) string {
	if strings.TrimSpace(addr) == "" {
		return "empty address"
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "not a host:port address: " + err.Error()
	}
	if host == "" {
		return fmt.Sprintf("empty host in %q", addr)
	}
	if port == "" {
		return fmt.Sprintf("empty port in %q", addr)
	}
	return ""
}

// runCluster streams the program's events across a sharded racedetectd
// fleet and fills the report from the merged end-of-session reports — the
// fleet-scale sibling of runRemote. Granularity, workers and the detector
// knobs are negotiated with every member; the merged report is
// deterministic (canonical race order, router-exact access counts), so a
// cluster run is byte-comparable with an in-process one.
func runCluster(p Program, opts Options) (Report, error) {
	rep := Report{Program: p.Name, Tool: opts.Tool, Granularity: opts.Granularity}
	endDial := opts.Tracer.Span("dial", map[string]any{"cluster": strings.Join(opts.Cluster, ",")})
	ctrl := opts.samplingController()
	clOpts := cluster.Options{
		Members:     opts.Cluster,
		Sync:        opts.RemoteSync,
		Telemetry:   opts.Telemetry,
		Codec:       opts.wireCodec(),
		Migration:   opts.ClusterMigration,
		TraceSample: opts.TraceSample,
		Tracer:      opts.Tracer,
		NewBatchPolicy: func() *event.BatchPolicy {
			return opts.batchPolicy() // nil unless adaptive; one policy per member
		},
		Hello: wire.Hello{
			Granularity:      uint8(opts.Granularity),
			Workers:          opts.Workers,
			NoInitState:      opts.NoInitState,
			NoInitSharing:    opts.NoInitSharing,
			WriteGuidedReads: opts.WriteGuidedReads,
			ReadReset:        opts.ReadReset,
			ReshareInterval:  opts.ReshareInterval,
			Clock:            uint8(opts.Clock),
			Provenance:       opts.Provenance,
		},
	}
	if ctrl != nil {
		// One controller absorbs the whole fleet's back-pressure signals
		// (it is mutex-guarded); the sampler it steers fronts the fan-out
		// sink, so shedding rate responds to the slowest member.
		clOpts.Backpressure = ctrl
	}
	cl, err := cluster.Dial(clOpts)
	endDial()
	if err != nil {
		return rep, err
	}
	var sink event.Sink = cl
	var smp *sampling.Detector
	if opts.Budget > 0 {
		smp = sampling.New(sink, opts.samplerOptions())
		if ctrl != nil {
			ctrl.Bind(smp)
		}
		sink = smp
	}
	var el *event.Elider
	if opts.Elide {
		// Outermost: repeats never reach the fan-out sink, so no member
		// pays serialization for them.
		el = event.NewElider(sink, event.EliderOptions{Telemetry: opts.Telemetry})
		sink = el
	}
	start := time.Now()
	endExec := opts.Tracer.Span("execute", map[string]any{"program": p.Name})
	rep.Run = sim.Run(p, sink, opts.engineOptions())
	endExec()
	endReport := opts.Tracer.Span("report")
	wrep, err := cl.Close()
	endReport()
	rep.Elapsed = time.Since(start)
	rep.TimedOut = rep.Run.TimedOut
	if err != nil {
		return rep, err
	}
	fillFastTrack(&rep, wrep.DetectorStats(), wrep.DetectorRaces(), wrep.DetectorProvs())
	rep.Detector.ShedRecords = wrep.Stats.ShedRecords
	if smp != nil {
		rep.Detector.SampledForwarded, rep.Detector.SampledSkipped = smp.Counts()
	}
	if el != nil {
		rep.Detector.Elided = el.Elided()
	}
	return rep, nil
}
