package race

import (
	"reflect"
	"testing"

	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/workloads"
)

// goNative lists the workloads built on the Go-native sync surface — the
// ones whose threads stay on the compact representation end to end.
var goNative = []string{"fanin", "workerpool", "pipedag"}

// TestClockEquivalenceSerial is the verdict-preservation gate for the
// structure-aware clock layer: for every workload and granularity, compact
// clocks must report exactly the general-mode race set — demotions and all.
func TestClockEquivalenceSerial(t *testing.T) {
	for _, spec := range workloads.All() {
		for _, g := range []Granularity{Byte, Word, Dynamic} {
			gen := Run(spec.Program(), Options{Granularity: g, Seed: 42})
			cmp := Run(spec.Program(), Options{Granularity: g, Seed: 42, Clock: ClockCompact})
			if gen.Detector.Accesses != cmp.Detector.Accesses {
				t.Errorf("%s/%s: accesses %d (general) vs %d (compact)",
					spec.Name, g, gen.Detector.Accesses, cmp.Detector.Accesses)
			}
			// Full reports, not sets: serial detection order must match too.
			if !reflect.DeepEqual(gen.Races, cmp.Races) {
				t.Errorf("%s/%s: race reports differ\ngeneral (%d): %v\ncompact (%d): %v",
					spec.Name, g, len(gen.Races), gen.Races, len(cmp.Races), cmp.Races)
			}
		}
	}
}

// TestClockEquivalenceParallel extends the gate across the sharded
// pipeline for the Go-native workloads: the broadcast sync stream must
// rebuild identical compact clock replicas on every shard.
func TestClockEquivalenceParallel(t *testing.T) {
	for _, name := range goNative {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range []Granularity{Byte, Word, Dynamic} {
			gen := Run(spec.Program(), Options{Granularity: g, Seed: 42})
			par := Run(spec.Program(), Options{Granularity: g, Seed: 42, Clock: ClockCompact, Workers: 4})
			if !reflect.DeepEqual(sortRaces(gen.Races), sortRaces(par.Races)) {
				t.Errorf("%s/%s: compact workers=4 race set differs from general serial", name, g)
			}
		}
	}
}

// TestClockEquivalenceRemote closes the loop over the wire: a compact-mode
// remote session must negotiate the clock mode through Hello and report
// the general serial race set.
func TestClockEquivalenceRemote(t *testing.T) {
	addr := startDetectd(t, server.Options{})
	for _, name := range goNative {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		gen := Run(spec.Program(), Options{Granularity: Dynamic, Seed: 42})
		rem, err := RunE(spec.Program(), Options{
			Granularity: Dynamic, Seed: 42, Clock: ClockCompact,
			Workers: 2, Remote: addr,
		})
		if err != nil {
			t.Fatalf("%s: remote run: %v", name, err)
		}
		if !reflect.DeepEqual(sortRaces(gen.Races), sortRaces(rem.Races)) {
			t.Errorf("%s: compact remote race set differs from general serial", name)
		}
		if name == "workerpool" && rem.Detector.ClockStructuredThreads == 0 {
			t.Errorf("workerpool remote: no structured threads reported over the wire")
		}
	}
}

// TestClockDemotionMidRun pins the demotion path: a program whose threads
// run a long structured (fork/channel) prefix and then take mutexes must
// demote mid-run and still produce a report identical to general mode —
// including the races seeded on both sides of the demotion point.
func TestClockDemotionMidRun(t *testing.T) {
	prog := Program{Name: "demote-mid-run", Main: func(m *Thread) {
		const words = 32
		shared := m.Malloc(words * 4)
		early := m.Malloc(384) // racy word at +160 during the structured prefix
		late := m.Malloc(384)  // racy word at +160 after demotion
		lock := m.NewLock()
		ch := m.NewChan(2)

		var hs []*Thread
		for w := 0; w < 4; w++ {
			w := w
			hs = append(hs, m.Go(func(t *Thread) {
				scratch := t.Malloc(words * 4)
				// Structured prefix: channel-paced scoring rounds.
				for r := 0; r < 40; r++ {
					t.At(100)
					for i := 0; i < words; i++ {
						t.Read(shared+uint64(i)*4, 4)
						t.Write(scratch+uint64(i)*4, 4)
					}
					if w < 2 && r%20 == 0 {
						t.At(101) // pre-demotion race
						t.Read(early+160, 4)
						t.Write(early+160, 4)
					}
					t.Send(ch, uint64(w))
				}
				// Unstructured suffix: the first Lock demotes this thread.
				for r := 0; r < 20; r++ {
					t.Lock(lock)
					t.At(102)
					t.Read(shared, 4)
					t.Write(shared, 4)
					t.Unlock(lock)
					if w >= 2 && r%10 == 0 {
						t.At(103) // post-demotion race
						t.Read(late+160, 4)
						t.Write(late+160, 4)
					}
				}
				t.Free(scratch)
			}))
		}
		for i := 0; i < 4*40; i++ {
			m.Recv(ch)
		}
		for _, h := range hs {
			m.Join(h)
		}
	}}

	for _, g := range []Granularity{Byte, Word, Dynamic} {
		gen := Run(prog, Options{Granularity: g, Seed: 42})
		cmp := Run(prog, Options{Granularity: g, Seed: 42, Clock: ClockCompact})
		if !reflect.DeepEqual(gen.Races, cmp.Races) {
			t.Errorf("%s: demotion run reports differ\ngeneral (%d): %v\ncompact (%d): %v",
				g, len(gen.Races), gen.Races, len(cmp.Races), cmp.Races)
		}
		if len(gen.Races) < 2 {
			t.Errorf("%s: want races on both sides of the demotion point, got %d", g, len(gen.Races))
		}
		if cmp.Detector.ClockDemotions == 0 {
			t.Errorf("%s: compact run recorded no demotions", g)
		}
		if gen.Detector.ClockDemotions != 0 || gen.Detector.ClockStructuredThreads != 0 {
			t.Errorf("%s: general run reported clock-layer stats", g)
		}
	}
}

// TestClockCompactStaysStructured pins the other side: on the Go-native
// workloads no thread ever demotes, and the compact thread-clock footprint
// stays below the general one.
func TestClockCompactStaysStructured(t *testing.T) {
	for _, name := range goNative {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		gen := Run(spec.Program(), Options{Granularity: Dynamic, Seed: 42})
		cmp := Run(spec.Program(), Options{Granularity: Dynamic, Seed: 42, Clock: ClockCompact})
		if cmp.Detector.ClockDemotions != 0 {
			t.Errorf("%s: %d demotions on a purely structured workload", name, cmp.Detector.ClockDemotions)
		}
		if int(cmp.Detector.ClockStructuredThreads) != spec.Threads {
			t.Errorf("%s: %d structured threads, want %d", name, cmp.Detector.ClockStructuredThreads, spec.Threads)
		}
		if cmp.Detector.ClockCompactPeakBytes <= 0 {
			t.Errorf("%s: compact peak bytes not accounted", name)
		}
		if gen.Detector.ClockGeneralPeakBytes <= 0 {
			t.Errorf("%s: general clock peak bytes not accounted", name)
		}
		if cmp.Detector.ClockCompactPeakBytes >= gen.Detector.ClockGeneralPeakBytes {
			t.Errorf("%s: compact peak %dB not below general peak %dB",
				name, cmp.Detector.ClockCompactPeakBytes, gen.Detector.ClockGeneralPeakBytes)
		}
	}
}

// TestClockOptionValidation covers the new Options surface.
func TestClockOptionValidation(t *testing.T) {
	if err := (Options{Clock: 9}).Validate(); err == nil {
		t.Error("unknown clock mode accepted")
	}
	if err := (Options{Tool: Eraser, Clock: ClockCompact}).Validate(); err == nil {
		t.Error("compact clocks accepted for a non-fasttrack tool")
	}
	if err := (Options{Clock: ClockCompact}).Validate(); err != nil {
		t.Errorf("compact fasttrack rejected: %v", err)
	}
}

// TestClockTelemetryReconciliation checks the clock instrument family
// against the Stats snapshot on a demoting compact run.
func TestClockTelemetryReconciliation(t *testing.T) {
	reg := telemetry.New()
	spec, err := workloads.ByName("dedup")
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(spec.Program(), Options{
		Granularity: Dynamic, Seed: 42, Clock: ClockCompact, Telemetry: reg,
	})
	if got := reg.CounterValue("clock_demotions_total"); got != rep.Detector.ClockDemotions {
		t.Errorf("clock_demotions_total=%d, Stats.ClockDemotions=%d", got, rep.Detector.ClockDemotions)
	}
	if got := reg.GaugeValue("clock_structured_threads"); got != float64(rep.Detector.ClockStructuredThreads) {
		t.Errorf("clock_structured_threads=%v, Stats=%d", got, rep.Detector.ClockStructuredThreads)
	}
}
