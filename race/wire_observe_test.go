package race

import (
	"testing"

	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/workloads"
)

// codecPayloadBytes returns the wire_payload_bytes_total series for one
// codec label (0 when the series was never registered).
func codecPayloadBytes(reg *telemetry.Registry, codec string) uint64 {
	var v uint64
	reg.Each(func(m telemetry.Metric) {
		if m.Name == "wire_payload_bytes_total" && m.Labels["codec"] == codec {
			v = uint64(m.Value)
		}
	})
	return v
}

// TestWireTelemetryReconciliation pins the wire byte accounting the same
// way TestTelemetryReconciliation pins the detector counters: on a
// forced-v1 remote run every streamed record costs exactly wire.RecSize
// payload bytes, so raw bytes, v1 payload bytes, and events x 37 must all
// agree to the byte; on a default (columnar) run the v2 payload must beat
// the packed baseline by the >=4x the issue promises, and the live
// compression-ratio gauge must say so too.
func TestWireTelemetryReconciliation(t *testing.T) {
	addr := startDetectd(t, server.Options{})
	spec, err := workloads.ByName("pbzip2")
	if err != nil {
		t.Fatal(err)
	}

	run := func(codec string) *telemetry.Registry {
		reg := telemetry.New()
		if _, err := RunE(spec.Program(), Options{
			Granularity: Dynamic, Seed: 42, Workers: 2,
			Remote: addr, Codec: codec, Telemetry: reg,
		}); err != nil {
			t.Fatalf("codec %q: %v", codec, err)
		}
		return reg
	}

	// Forced v1: the stream is the packed baseline, so the accounting is
	// exact, not approximate.
	reg := run("v1")
	events := reg.CounterValue("client_events_total")
	raw := reg.CounterValue("wire_raw_bytes_total")
	if events == 0 {
		t.Fatal("v1 run streamed no events")
	}
	if want := events * wire.RecSize; raw != want {
		t.Errorf("wire_raw_bytes_total = %d, want events x %d = %d", raw, wire.RecSize, want)
	}
	if v1 := codecPayloadBytes(reg, "v1"); v1 != raw {
		t.Errorf("v1 payload bytes = %d, want raw %d (packed batches carry records verbatim)", v1, raw)
	}
	if v2 := codecPayloadBytes(reg, "v2"); v2 != 0 {
		t.Errorf("v2 payload bytes = %d on a forced-v1 session", v2)
	}
	if ratio := reg.GaugeValue("wire_compression_ratio"); ratio != 1 {
		t.Errorf("wire_compression_ratio = %v on a forced-v1 session, want 1", ratio)
	}

	// Default negotiation grants columnar; the >=4x bytes-per-record win is
	// the tentpole's acceptance bar, asserted here on live counters.
	reg = run("")
	events = reg.CounterValue("client_events_total")
	raw = reg.CounterValue("wire_raw_bytes_total")
	v2 := codecPayloadBytes(reg, "v2")
	if events == 0 || raw != events*wire.RecSize {
		t.Fatalf("columnar run accounting broken: events=%d raw=%d", events, raw)
	}
	if v2 == 0 {
		t.Fatal("columnar run recorded no v2 payload bytes")
	}
	if v1 := codecPayloadBytes(reg, "v1"); v1 != 0 {
		t.Errorf("v1 payload bytes = %d on a columnar session", v1)
	}
	if v2*4 > raw {
		t.Errorf("columnar payload %d bytes for %d raw: less than 4x compression (%.2f B/event)",
			v2, raw, float64(v2)/float64(events))
	}
	if ratio := reg.GaugeValue("wire_compression_ratio"); ratio < 4 {
		t.Errorf("wire_compression_ratio = %.2f, want >= 4", ratio)
	}
}

// TestRingTelemetry checks the ring dispatch registers its occupancy and
// park instrumentation and the adaptive policy exports a live batch
// target, on an ordinary local sharded run.
func TestRingTelemetry(t *testing.T) {
	spec, err := workloads.ByName("ffmpeg")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	if _, err := RunE(spec.Program(), Options{
		Granularity: Dynamic, Seed: 42, Workers: 2,
		BatchPolicy: "adaptive", Telemetry: reg,
	}); err != nil {
		t.Fatal(err)
	}
	families := map[string]bool{}
	parkSides := map[string]bool{}
	reg.Each(func(m telemetry.Metric) {
		families[m.Name] = true
		if m.Name == "pipeline_ring_parks_total" {
			parkSides[m.Labels["side"]] = true
		}
	})
	for _, want := range []string{
		"pipeline_ring_parks_total",
		"pipeline_ring_occupancy",
		"pipeline_batch_target",
	} {
		if !families[want] {
			t.Errorf("ring run did not register %s", want)
		}
	}
	for _, side := range []string{"producer", "consumer"} {
		if !parkSides[side] {
			t.Errorf("pipeline_ring_parks_total missing side=%q series", side)
		}
	}
	if target := reg.GaugeValue("pipeline_batch_target"); target < 64 || target > 2048 {
		t.Errorf("pipeline_batch_target = %v, want within [64, 2048]", target)
	}
}
