package race

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/workloads"
)

// TestTelemetryReconciliation pins the instrumentation contract: every
// telemetry counter is bumped at exactly the site that bumps the
// corresponding Stats field, so on a serial run (Workers=0, one detector,
// no merging) the registry's sums equal the report's detector statistics
// across the whole 11-workload suite.
func TestTelemetryReconciliation(t *testing.T) {
	for _, s := range workloads.All() {
		t.Run(s.Name, func(t *testing.T) {
			reg := telemetry.New()
			rep, err := RunE(s.Program(), Options{
				Granularity: Dynamic,
				Seed:        42,
				Telemetry:   reg,
			})
			if err != nil {
				t.Fatal(err)
			}
			d := rep.Detector
			checks := []struct {
				metric string
				want   uint64
			}{
				{"detector_accesses_total", d.Accesses},
				{"detector_same_epoch_hits_total", d.SameEpoch},
				{"detector_loc_creations_total", d.LocCreations},
				{"detector_sharing_comparisons_total", d.SharingComparisons},
				{"detector_races_total", uint64(len(rep.Races))},
				{"detector_races_suppressed_total", rep.Suppressed},
				// Plane-labeled families sum across both shadow planes.
				{"shadow_node_allocs_total", d.NodeAllocs},
				{"shadow_node_recycles_total", d.NodeRecycles},
				{"shadow_node_merges_total", d.Merges},
				{"shadow_node_splits_total", d.Splits},
			}
			for _, c := range checks {
				if got := reg.CounterValue(c.metric); got != c.want {
					t.Errorf("%s = %d, want %d (Stats reconciliation)", c.metric, got, c.want)
				}
			}
			// The state machine and sharing-decision families have no
			// single Stats twin, but they must be active on any workload
			// that allocates shadow state, and every location that reached
			// a sharing verdict did so through exactly one first-epoch
			// decision path.
			if reg.CounterValue("detector_state_transitions_total") == 0 && d.NodeAllocs > 0 {
				t.Error("state-transition counters silent on a run that allocated shadow nodes")
			}
			if d.Merges > 0 && reg.CounterValue("detector_sharing_decisions_total") == 0 {
				t.Error("sharing-decision counters silent on a run that merged clock nodes")
			}
		})
	}
}

// TestTelemetryShardedMatchesSerial checks the pipeline shares one atomic
// instrument set across shards: the summed counters of a sharded run
// equal the serial run's for the same program and seed.
func TestTelemetryShardedMatchesSerial(t *testing.T) {
	s, err := workloads.ByName("pbzip2")
	if err != nil {
		t.Fatal(err)
	}
	values := func(workers int) map[string]uint64 {
		reg := telemetry.New()
		if _, err := RunE(s.Program(), Options{
			Granularity: Dynamic, Seed: 42, Workers: workers, Telemetry: reg,
		}); err != nil {
			t.Fatal(err)
		}
		out := map[string]uint64{}
		for _, m := range []string{
			"detector_accesses_total",
			"detector_loc_creations_total",
			"detector_races_total",
		} {
			out[m] = reg.CounterValue(m)
		}
		return out
	}
	serial, sharded := values(0), values(3)
	for m, want := range serial {
		if got := sharded[m]; got != want {
			t.Errorf("sharded %s = %d, want %d (serial)", m, got, want)
		}
	}
}

// TestMetricsEndpoint runs a sharded detection with a live -metrics-addr
// endpoint and asserts the exposition carries every family the issue
// promises: state transitions, sharing decisions, per-shard event
// counters, the queue-depth gauge, and the batch latency histogram.
func TestMetricsEndpoint(t *testing.T) {
	s, err := workloads.ByName("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Granularity: Dynamic,
		Seed:        42,
		Workers:     2,
		MetricsAddr: "127.0.0.1:0",
	}
	obs, err := startObservability(&opts)
	if err != nil {
		t.Fatal(err)
	}
	defer obs.stop()
	if opts.Telemetry == nil {
		t.Fatal("startObservability did not install a registry for MetricsAddr")
	}
	runLocal(s.Program(), opts)

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", obs.ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	text := string(body)
	for _, family := range []string{
		"detector_accesses_total",
		"detector_state_transitions_total",
		"detector_sharing_decisions_total",
		`pipeline_shard_events_total{shard="0"}`,
		`pipeline_shard_events_total{shard="1"}`,
		"pipeline_queue_depth",
		"pipeline_batch_apply_ns_bucket",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}

	// The JSON document serves the same registry.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/vars", obs.ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	vars, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(vars, []byte("detector_accesses_total")) {
		t.Error("/debug/vars missing detector_accesses_total")
	}
}

// TestStatsProgress runs with a short StatsInterval and a captured writer
// and checks the periodic progress line carries the live counters.
func TestStatsProgress(t *testing.T) {
	s, err := workloads.ByName("ffmpeg")
	if err != nil {
		t.Fatal(err)
	}
	var buf syncBuffer
	_, err = RunE(s.Program(), Options{
		Granularity:   Dynamic,
		Seed:          42,
		StatsInterval: time.Millisecond,
		StatsWriter:   &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "progress t=") || !strings.Contains(out, "accesses=") {
		t.Fatalf("no progress lines captured:\n%s", out)
	}
}

// TestProgressLine pins the progress report's rendering against a
// hand-populated registry.
func TestProgressLine(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("detector_accesses_total", "").Add(1000)
	reg.Counter("detector_same_epoch_hits_total", "").Add(400)
	reg.Counter("detector_races_total", "").Add(2)
	o := &observer{reg: reg}
	line := o.progressLine(1500 * time.Millisecond)
	want := "progress t=1.5s accesses=1000 same_epoch=400 races=2"
	if line != want {
		t.Fatalf("progressLine = %q, want %q", line, want)
	}
	reg.Counter("client_events_total", "").Add(7)
	reg.Counter("client_batches_total", "").Add(3)
	if line := o.progressLine(time.Second); !strings.Contains(line, "streamed=7 batches=3") {
		t.Fatalf("streamed fields missing: %q", line)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the progress goroutine
// writes while the test's main goroutine eventually reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
