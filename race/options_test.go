package race

import (
	"errors"
	"testing"
	"time"
)

// TestOptionsValidate pins the option validation table: each invalid
// combination must yield a *OptionsError naming the offending field, and
// every valid combination must pass.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name  string
		opts  Options
		field string // "" = valid
	}{
		{"zero-value", Options{}, ""},
		{"fasttrack-dynamic-workers", Options{Granularity: Dynamic, Workers: 8}, ""},
		{"eraser", Options{Tool: Eraser}, ""},
		{"multirace", Options{Tool: MultiRace}, ""},
		{"remote-fasttrack", Options{Remote: "localhost:7474"}, ""},
		{"remote-sync", Options{Remote: "localhost:7474", RemoteSync: true}, ""},
		{"limits", Options{MemLimitBytes: 1 << 30, Timeout: time.Second, Quantum: 100}, ""},
		{"stats-interval", Options{StatsInterval: time.Second}, ""},
		{"metrics-addr", Options{MetricsAddr: "127.0.0.1:0", Workers: 2}, ""},
		{"metrics-addr-remote-async", Options{MetricsAddr: "127.0.0.1:0", Remote: "localhost:7474"}, ""},
		{"cluster", Options{Cluster: []string{"localhost:7474", "localhost:7475"}}, ""},
		{"cluster-single", Options{Cluster: []string{"127.0.0.1:7474"}}, ""},
		{"cluster-sync", Options{Cluster: []string{"localhost:7474"}, RemoteSync: true}, ""},
		{"cluster-codec", Options{Cluster: []string{"localhost:7474"}, Codec: "v1"}, ""},
		{"cluster-migration", Options{
			Cluster:          []string{"localhost:7474", "localhost:7475"},
			ClusterMigration: &ClusterMigration{Slot: -1, To: "localhost:7476", AfterEvents: 100},
		}, ""},

		{"unknown-tool", Options{Tool: MultiRace + 1}, "Tool"},
		{"unknown-tool-big", Options{Tool: 200}, "Tool"},
		{"unknown-granularity", Options{Granularity: Dynamic + 1}, "Granularity"},
		{"negative-workers", Options{Workers: -1}, "Workers"},
		{"negative-quantum", Options{Quantum: -5}, "Quantum"},
		{"negative-timeout", Options{Timeout: -time.Second}, "Timeout"},
		{"negative-memlimit", Options{MemLimitBytes: -1}, "MemLimitBytes"},
		{"remote-wrong-tool", Options{Tool: DRD, Remote: "localhost:7474"}, "Remote"},
		{"remote-empty-ish", Options{Remote: "   "}, "Remote"},
		{"remote-no-port", Options{Remote: "localhost"}, "Remote"},
		{"remote-empty-host", Options{Remote: ":7474"}, "Remote"},
		{"cluster-and-remote", Options{Remote: "localhost:7474", Cluster: []string{"localhost:7475"}}, "Cluster"},
		{"cluster-wrong-tool", Options{Tool: Eraser, Cluster: []string{"localhost:7474"}}, "Cluster"},
		{"cluster-empty-member", Options{Cluster: []string{"localhost:7474", ""}}, "Cluster"},
		{"cluster-blank-member", Options{Cluster: []string{"localhost:7474", "  "}}, "Cluster"},
		{"cluster-no-port-member", Options{Cluster: []string{"localhost"}}, "Cluster"},
		{"cluster-duplicate-member", Options{Cluster: []string{"localhost:7474", "localhost:7474"}}, "Cluster"},
		{"migration-without-cluster", Options{
			ClusterMigration: &ClusterMigration{To: "localhost:7476"},
		}, "ClusterMigration"},
		{"migration-bad-target", Options{
			Cluster:          []string{"localhost:7474"},
			ClusterMigration: &ClusterMigration{To: "nowhere"},
		}, "ClusterMigration"},
		{"migration-bad-slot", Options{
			Cluster:          []string{"localhost:7474"},
			ClusterMigration: &ClusterMigration{Slot: 64, To: "localhost:7476"},
		}, "ClusterMigration"},
		{"sync-without-remote", Options{RemoteSync: true}, "RemoteSync"},
		{"negative-stats-interval", Options{StatsInterval: -time.Second}, "StatsInterval"},
		{"metrics-addr-with-sync", Options{
			MetricsAddr: "127.0.0.1:0", Remote: "localhost:7474", RemoteSync: true,
		}, "MetricsAddr"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("valid options rejected: %v", err)
				}
				return
			}
			var oe *OptionsError
			if !errors.As(err, &oe) {
				t.Fatalf("want *OptionsError, got %v", err)
			}
			if oe.Field != tc.field {
				t.Fatalf("flagged field %q, want %q (err: %v)", oe.Field, tc.field, err)
			}
			if oe.Error() == "" || oe.Reason == "" {
				t.Fatalf("empty error detail: %+v", oe)
			}
		})
	}
}

// TestRunEInvalidOptions checks RunE rejects bad options before running
// anything, and Run panics with the same typed error.
func TestRunEInvalidOptions(t *testing.T) {
	bad := Options{Workers: -3}
	prog := Program{Name: "noop", Main: func(*Thread) {}}
	if _, err := RunE(prog, bad); err == nil {
		t.Fatal("RunE accepted negative Workers")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not panic on invalid options")
		}
		if _, ok := r.(*OptionsError); !ok {
			t.Fatalf("Run panicked with %T, want *OptionsError", r)
		}
	}()
	Run(prog, bad)
}
