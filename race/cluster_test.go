package race

import (
	"reflect"
	"testing"

	"repro/internal/server"
	"repro/workloads"
)

// TestClusterEquivalence is the acceptance gate for the sharded detection
// cluster: for every workload and every granularity, fanning the stream
// out across N ∈ {1, 2, 4} racedetectd members must reproduce the
// in-process race set byte-identically, plus the exact access statistics.
// The four servers are started once; the member lists are prefixes.
func TestClusterEquivalence(t *testing.T) {
	servers := make([]string, 4)
	for i := range servers {
		servers[i] = startDetectd(t, server.Options{})
	}
	grans := []Granularity{Byte, Word, Dynamic}
	specs := workloads.All()
	if raceDetectorOn {
		// ~15× slower per run under the race detector; a trimmed matrix
		// still drives every concurrency path (fan-out, broadcast, flush,
		// merge) while the full 14×3×{1,2,4} verdict matrix runs in the
		// uninstrumented pass.
		specs = specs[:4]
		grans = []Granularity{Dynamic}
	}
	for _, spec := range specs {
		for _, g := range grans {
			local := Run(spec.Program(), Options{Granularity: g, Seed: 42})
			want := sortRaces(local.Races)
			for _, n := range []int{1, 2, 4} {
				clustered, err := RunE(spec.Program(), Options{
					Granularity: g, Seed: 42, Workers: 2, Cluster: servers[:n],
				})
				if err != nil {
					t.Fatalf("%s/%s/n=%d: cluster run: %v", spec.Name, g, n, err)
				}
				if local.Run.Accesses != clustered.Run.Accesses {
					t.Errorf("%s/%s/n=%d: Run.Accesses %d (local) vs %d (cluster)",
						spec.Name, g, n, local.Run.Accesses, clustered.Run.Accesses)
				}
				if local.Detector.Accesses != clustered.Detector.Accesses {
					t.Errorf("%s/%s/n=%d: Detector.Accesses %d (local) vs %d (cluster)",
						spec.Name, g, n, local.Detector.Accesses, clustered.Detector.Accesses)
				}
				if local.Detector.SameEpoch != clustered.Detector.SameEpoch {
					t.Errorf("%s/%s/n=%d: Detector.SameEpoch %d (local) vs %d (cluster)",
						spec.Name, g, n, local.Detector.SameEpoch, clustered.Detector.SameEpoch)
				}
				got := sortRaces(clustered.Races)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s/%s/n=%d: race sets differ\nlocal (%d): %v\ncluster (%d): %v",
						spec.Name, g, n, len(want), want, len(got), got)
				}
			}
		}
	}
}

// TestClusterMigrationMidStream pins the rebalance path: a slot moved to
// a third server mid-stream must not lose or duplicate any verdict — the
// race set stays byte-identical to the in-process run. (Stats like
// SameEpoch are inflated by the journal replay on the new member, so only
// verdicts are asserted here.)
func TestClusterMigrationMidStream(t *testing.T) {
	addrs := []string{
		startDetectd(t, server.Options{}),
		startDetectd(t, server.Options{}),
	}
	target := startDetectd(t, server.Options{})
	grans := []Granularity{Byte, Dynamic}
	for _, name := range []string{"canneal", "pipedag"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range grans {
			local := Run(spec.Program(), Options{Granularity: g, Seed: 42})
			migrated, err := RunE(spec.Program(), Options{
				Granularity: g, Seed: 42, Workers: 2, Cluster: addrs,
				ClusterMigration: &ClusterMigration{
					Slot: -1, To: target, AfterEvents: local.Run.Events / 2,
				},
			})
			if err != nil {
				t.Fatalf("%s/%s: migrated cluster run: %v", name, g, err)
			}
			want, got := sortRaces(local.Races), sortRaces(migrated.Races)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: race sets differ after migration\nlocal (%d): %v\nmigrated (%d): %v",
					name, g, len(want), want, len(got), got)
			}
		}
	}
}

// TestClusterMemberRefused checks a dead member surfaces as a typed
// *MemberError from RunE, naming the member.
func TestClusterMemberRefused(t *testing.T) {
	alive := startDetectd(t, server.Options{})
	spec, err := workloads.ByName("pbzip2")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunE(spec.Program(), Options{Cluster: []string{alive, "127.0.0.1:1"}})
	me, ok := err.(*MemberError)
	if !ok {
		t.Fatalf("RunE error = %v (%T), want *MemberError", err, err)
	}
	if me.Addr != "127.0.0.1:1" {
		t.Errorf("MemberError.Addr = %q, want the dead member", me.Addr)
	}
}
