package race

import (
	"reflect"
	"testing"

	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/workloads"
)

// checkProvenance asserts the acceptance contract on one report: every
// race carries a provenance record naming both accesses and the failed
// epoch/clock comparison.
func checkProvenance(t *testing.T, name string, rep Report) {
	t.Helper()
	if len(rep.Provenance) != len(rep.Races) {
		t.Errorf("%s: %d provenance records for %d races", name, len(rep.Provenance), len(rep.Races))
		return
	}
	for i, r := range rep.Races {
		p := rep.Provenance[i]
		if p.Kind == "" {
			t.Errorf("%s: race %d (%v) has no provenance", name, i, r)
			continue
		}
		if p.Kind != r.Kind {
			t.Errorf("%s: race %d kind %q vs provenance kind %q", name, i, r.Kind, p.Kind)
		}
		if p.Current.Tid != uint32(r.Tid) || p.Current.PC != uint64(r.PC) {
			t.Errorf("%s: race %d current access T%d@%#x, provenance T%d@%#x",
				name, i, r.Tid, r.PC, p.Current.Tid, p.Current.PC)
		}
		if p.Previous.Tid != uint32(r.OtherTid) || p.Previous.PC != uint64(r.OtherPC) {
			t.Errorf("%s: race %d previous access T%d@%#x, provenance T%d@%#x",
				name, i, r.OtherTid, r.OtherPC, p.Previous.Tid, p.Previous.PC)
		}
		// The verdict condition itself: the earlier epoch was not ordered
		// before the current thread's view.
		if p.Comparison.Plane == "" || p.Comparison.PrevClock <= p.Comparison.Observed {
			t.Errorf("%s: race %d comparison not a failed happens-before check: %+v",
				name, i, p.Comparison)
		}
	}
}

// assertSameVerdicts checks that two reports reach identical race sets —
// the "provenance never changes verdicts" half of the acceptance gate.
func assertSameVerdicts(t *testing.T, name string, base, withProv Report) {
	t.Helper()
	if !reflect.DeepEqual(sortRaces(base.Races), sortRaces(withProv.Races)) {
		t.Errorf("%s: provenance changed the race set\nwithout (%d): %v\nwith (%d): %v",
			name, len(base.Races), base.Races, len(withProv.Races), withProv.Races)
	}
	if base.Detector.Accesses != withProv.Detector.Accesses ||
		base.Detector.SameEpoch != withProv.Detector.SameEpoch {
		t.Errorf("%s: provenance changed detector statistics: %d/%d vs %d/%d accesses/same-epoch",
			name, base.Detector.Accesses, base.Detector.SameEpoch,
			withProv.Detector.Accesses, withProv.Detector.SameEpoch)
	}
}

// TestProvenanceLocal covers the in-process paths (serial and sharded
// pipeline): enabling provenance explains every race and changes no
// verdict, across every workload and granularity.
func TestProvenanceLocal(t *testing.T) {
	for _, spec := range workloads.All() {
		for _, g := range []Granularity{Byte, Word, Dynamic} {
			for _, workers := range []int{0, 2} {
				base := Run(spec.Program(), Options{Granularity: g, Seed: 42, Workers: workers})
				prov := Run(spec.Program(), Options{Granularity: g, Seed: 42, Workers: workers, Provenance: true})
				name := spec.Name + "/" + g.String()
				if workers > 0 {
					name += "/pipeline"
				}
				assertSameVerdicts(t, name, base, prov)
				checkProvenance(t, name, prov)
			}
		}
	}
}

// TestProvenanceEquivalenceRemote is the remote half of the acceptance
// gate: with -provenance and full trace sampling, a loopback racedetectd
// run explains every race in the workload suite while reproducing the
// untraced verdicts exactly.
func TestProvenanceEquivalenceRemote(t *testing.T) {
	addr := startDetectd(t, server.Options{})
	tracer := telemetry.NewTracer()
	for _, spec := range workloads.All() {
		for _, g := range []Granularity{Byte, Word, Dynamic} {
			base, err := RunE(spec.Program(), Options{
				Granularity: g, Seed: 42, Workers: 2, Remote: addr,
			})
			if err != nil {
				t.Fatalf("%s/%s: untraced run: %v", spec.Name, g, err)
			}
			prov, err := RunE(spec.Program(), Options{
				Granularity: g, Seed: 42, Workers: 2, Remote: addr,
				Provenance: true, TraceSample: 1, Tracer: tracer,
			})
			if err != nil {
				t.Fatalf("%s/%s: provenance run: %v", spec.Name, g, err)
			}
			name := spec.Name + "/" + g.String() + "/remote"
			assertSameVerdicts(t, name, base, prov)
			checkProvenance(t, name, prov)
		}
	}
	// Full sampling must have produced client root spans with trace IDs.
	spans := tracer.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded at trace-sample 1")
	}
	for _, s := range spans {
		if s.Trace == 0 || s.Span == 0 {
			t.Fatalf("span %q missing IDs: %+v", s.Name, s)
		}
	}
}

// TestProvenanceEquivalenceCluster runs the same gate across a 4-member
// fleet: provenance records survive the fan-out, the per-member reports
// and wire.MergeReports, and still explain every race.
func TestProvenanceEquivalenceCluster(t *testing.T) {
	const n = 4
	members := make([]string, n)
	for i := range members {
		members[i] = startDetectd(t, server.Options{})
	}
	for _, spec := range workloads.All() {
		for _, g := range []Granularity{Byte, Word, Dynamic} {
			base := Run(spec.Program(), Options{Granularity: g, Seed: 42})
			prov, err := RunE(spec.Program(), Options{
				Granularity: g, Seed: 42, Cluster: members,
				Provenance: true, TraceSample: 1,
			})
			if err != nil {
				t.Fatalf("%s/%s: cluster run: %v", spec.Name, g, err)
			}
			name := spec.Name + "/" + g.String() + "/cluster"
			assertSameVerdicts(t, name, base, prov)
			checkProvenance(t, name, prov)
		}
	}
}

// TestProvenanceRefusedByServer pins the interop grant: a server started
// with NoProvenance refuses the client's request, the run still succeeds,
// and the report simply carries no provenance — absent-means-off.
func TestProvenanceRefusedByServer(t *testing.T) {
	addr := startDetectd(t, server.Options{NoProvenance: true, NoTrace: true})
	spec, err := workloads.ByName("pbzip2")
	if err != nil {
		t.Fatal(err)
	}
	local := Run(spec.Program(), Options{Granularity: Dynamic, Seed: 42})
	rep, err := RunE(spec.Program(), Options{
		Granularity: Dynamic, Seed: 42, Workers: 2, Remote: addr,
		Provenance: true, TraceSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameVerdicts(t, "refused", local, rep)
	if len(rep.Provenance) != 0 {
		t.Fatalf("server refused provenance but report carries %d records", len(rep.Provenance))
	}
}

// TestProvenanceValidate pins the option errors.
func TestProvenanceValidate(t *testing.T) {
	if err := (Options{Tool: Eraser, Provenance: true}).Validate(); err == nil {
		t.Error("Provenance with Eraser: want error")
	}
	if err := (Options{TraceSample: 1.5}).Validate(); err == nil {
		t.Error("TraceSample 1.5: want error")
	}
	if err := (Options{TraceSample: -0.1}).Validate(); err == nil {
		t.Error("TraceSample -0.1: want error")
	}
	if err := (Options{Provenance: true, TraceSample: 1}).Validate(); err != nil {
		t.Errorf("valid provenance+trace options rejected: %v", err)
	}
}
