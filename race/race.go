// Package race is the public API of the reproduction: it runs a virtual
// multithreaded program (built with the engine API re-exported here) under
// one of five data race detectors and returns a unified report with the
// detected races, timing, and the detector's memory breakdown.
//
// The detectors are the systems the paper builds or measures:
//
//	FastTrack  — the paper's detector: FastTrack with byte, word, or
//	             dynamic granularity (Sections II–IV).
//	DJITPlus   — the DJIT+ reference algorithm (Section II.B), precision-
//	             equivalent to FastTrack; used as the oracle.
//	DRD        — a RecPlay/DRD-style segment detector (Valgrind DRD's
//	             algorithm family, Table 6).
//	InspectorXE — a hybrid lockset+happens-before detector standing in for
//	             Intel Inspector XE (Table 6).
//	Eraser     — the classic LockSet algorithm (related work).
//
// A minimal use:
//
//	prog := race.Program{Name: "demo", Main: func(t *race.Thread) {
//	    w := t.Go(func(w *race.Thread) { w.Write(0x1000, 4) })
//	    t.Write(0x1000, 4) // races with the child
//	    t.Join(w)
//	}}
//	rep := race.Run(prog, race.Options{Granularity: race.Dynamic})
//	for _, r := range rep.Races {
//	    fmt.Println(r)
//	}
package race

import (
	"fmt"
	"io"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/detector"
	"repro/internal/djit"
	"repro/internal/event"
	"repro/internal/hybrid"
	"repro/internal/lockset"
	"repro/internal/multirace"
	"repro/internal/pipeline"
	"repro/internal/sampling"
	"repro/internal/segment"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Program, Thread and RunStats re-export the execution-engine API so
// callers can build and run analyzed programs without importing internal
// packages.
type (
	// Program is a virtual multithreaded program (see sim.Program).
	Program = sim.Program
	// Thread is the handle a program's thread bodies receive.
	Thread = sim.Thread
	// RunStats summarizes the analyzed program's own execution.
	RunStats = sim.Stats
	// EngineOptions configure the execution engine directly.
	EngineOptions = sim.Options
	// Module tags the origin of a code site (application, libc, ld,
	// pthread) for suppression rules.
	Module = event.Module
	// Sink is the raw instrumentation-event consumer interface.
	Sink = event.Sink
)

// Module tags, re-exported.
const (
	ModuleApp     = event.ModuleApp
	ModuleLibc    = event.ModuleLibc
	ModuleLd      = event.ModuleLd
	ModulePthread = event.ModulePthread
)

// Granularity selects the FastTrack detection unit.
type Granularity = detector.Granularity

// Detection granularities, re-exported from the detector.
const (
	Byte    = detector.Byte
	Word    = detector.Word
	Dynamic = detector.Dynamic
)

// Clock selects the FastTrack thread-clock representation.
type Clock = detector.ClockMode

// Clock modes, re-exported from the detector. ClockCompact enables the
// structure-aware task-tree clock layer: threads whose synchronization
// stays series–parallel (fork/join, channels, WaitGroups) carry compact
// snapshot-chain clocks with O(1) structured joins, and a thread falls
// back to a general vector clock on its first unstructured edge (mutex,
// rwlock, barrier). The modes are verdict-identical.
const (
	ClockGeneral = detector.ClockGeneral
	ClockCompact = detector.ClockCompact
)

// ChanID and WGID re-export the engine's channel and WaitGroup handles.
type (
	ChanID = event.ChanID
	WGID   = event.WGID
)

// Tool selects the detection algorithm.
type Tool uint8

const (
	// FastTrack is the paper's detector (choose a Granularity).
	FastTrack Tool = iota
	// DJITPlus is the DJIT+ reference detector (byte granularity, full
	// vector clocks; the precision oracle).
	DJITPlus
	// DRD is the segment-based detector standing in for Valgrind DRD.
	DRD
	// InspectorXE is the hybrid detector standing in for Intel Inspector.
	InspectorXE
	// Eraser is the LockSet algorithm.
	Eraser
	// MultiRace combines LockSet as a sound prefilter with DJIT+-style
	// happens-before confirmation (related work [19]).
	MultiRace
)

func (t Tool) String() string {
	switch t {
	case FastTrack:
		return "fasttrack"
	case DJITPlus:
		return "djit+"
	case DRD:
		return "drd"
	case InspectorXE:
		return "inspector"
	case Eraser:
		return "eraser"
	case MultiRace:
		return "multirace"
	default:
		return "?"
	}
}

// Options configure a detection run.
type Options struct {
	// Tool selects the algorithm (default FastTrack).
	Tool Tool
	// Granularity applies to FastTrack (default Byte).
	Granularity Granularity
	// Clock selects FastTrack's thread-clock representation (default
	// ClockGeneral; ClockCompact is verdict-identical and cheaper on
	// structured fork/join/channel/WaitGroup synchronization).
	Clock Clock
	// Seed drives the deterministic scheduler (same seed → same report).
	Seed int64
	// Quantum is the scheduler quantum in events (0 = default).
	Quantum int
	// MaxEvents aborts the run (via engine panic) after this many events;
	// 0 = unlimited. Guards against runaway workloads.
	MaxEvents uint64

	// Workers enables the sharded parallel detection pipeline: events are
	// batched and routed to this many detection workers by shadow-block
	// number. 0 runs the detector serially on the execution thread,
	// preserving the exact serial memory accounting; 1 moves detection to a
	// single background worker (useful for overlap measurement). Workers
	// applies to FastTrack only; the other tools always run serially.
	Workers int

	// NoInitState and NoInitSharing are the Table 5 state-machine
	// ablations; WriteGuidedReads and ReshareInterval are the Section VII
	// future-work extensions. All apply to FastTrack with Dynamic
	// granularity.
	NoInitState      bool
	NoInitSharing    bool
	WriteGuidedReads bool
	ReshareInterval  uint8
	// ReadReset enables FastTrack's write-exclusive read reset (reclaims
	// inflated read vectors once a write dominates them).
	ReadReset bool

	// MemLimitBytes aborts DRD/InspectorXE runs that exceed this accounted
	// footprint (the paper's out-of-memory exits on dedup). 0 = unlimited.
	MemLimitBytes int64
	// Timeout abandons the run after this wall time (the paper's ">24
	// hours" rows). 0 = unlimited.
	Timeout time.Duration

	// Remote streams the event stream to a racedetectd detection service at
	// this TCP address instead of detecting in-process. Granularity, Workers
	// and the FastTrack ablation knobs above are negotiated with the server;
	// FastTrack is the only tool with a remote implementation. Empty =
	// in-process detection.
	Remote string
	// Cluster streams the event stream to a horizontally sharded fleet of
	// racedetectd servers: access events are partitioned across the
	// members by shadow-block id (through internal/cluster's hash-slot
	// ring) and sync events are broadcast, so each member detects a
	// disjoint slice of the address space and the per-member reports are
	// merged into one at close. Mutually exclusive with Remote; FastTrack
	// only. Each entry is a host:port address; empty/duplicate entries are
	// rejected by Validate.
	Cluster []string
	// ClusterMigration, when non-nil, schedules a single hash-slot
	// migration mid-stream (drain-to-watermark on the owner, journal
	// replay into a fresh session on the target) — the rebalance path,
	// exposed for tests and drills.
	ClusterMigration *ClusterMigration
	// RemoteSync selects the client's strict-ordering fallback: each event
	// batch is written and acknowledged before the producer continues,
	// instead of streaming asynchronously behind a bounded window. Applies
	// to Remote and Cluster sessions.
	RemoteSync bool
	// Codec picks the batch codec ceiling a Remote session may negotiate:
	// "" or "auto" requests the best both sides speak (currently the v2
	// delta-varint columnar format), "v1" forces the original packed
	// records, "v2" requests columnar explicitly. The server may always
	// grant less; detection results are identical either way.
	Codec string
	// Dispatch selects the router→worker transport of the local sharded
	// pipeline (Workers > 0): "" or "ring" for the lock-free SPSC ring,
	// "chan" for the buffered-channel baseline (benchmark comparisons).
	Dispatch string
	// BatchPolicy selects transport batch sizing: "" or "fixed" ships
	// full event.DefaultBatchSize batches; "adaptive" sizes batches from
	// observed back-pressure (worker-queue occupancy locally; outbox
	// occupancy and ack RTT on the Remote path). Purely a
	// latency/throughput trade — reports are identical.
	BatchPolicy string

	// Budget enables the always-on sampling lane: a fraction in (0, 1]
	// of the detection work the run may spend. A LiteRace-style
	// cold-region sampler (internal/sampling) fronts the detector in
	// every topology — serial, pipeline, Remote and Cluster — forwarding
	// every synchronization event (happens-before stays exact; sampling
	// can only miss races, never invent them) and sampling memory
	// accesses so the run-wide forwarded fraction converges on the
	// budget. On transports with back-pressure signals (pipeline worker
	// queues, remote ack RTTs) a feedback controller additionally sheds
	// rate under pressure and recovers toward the budget when it clears.
	// Budget 1 is a byte-identical pass-through; 0 disables the lane
	// entirely. FastTrack only. Stats reports the achieved fraction
	// (SampledForwarded / SampledSkipped), and telemetry exposes it as
	// detector_sampled_fraction.
	Budget float64

	// Elide enables the front-line same-epoch filter: a per-thread
	// direct-mapped cache of recently checked (granule, op) pairs fronting
	// the transport, flushed on every synchronization, heap or Go-native
	// event of the thread (internal/event.Elider). An access whose exact
	// (addr, size) was already forwarded this epoch with a covering op is
	// provably fated for the detector's same-epoch bitmap fast path, so it
	// is dropped at the source — before serialization on Remote/Cluster
	// runs, before routing on local ones. Lossless: verdicts are
	// byte-identical with the filter on or off. Every elided access is
	// counted (Stats.Elided, detector_elided_total), so
	// Accesses + Elided equals the unfiltered access count exactly.
	// FastTrack only. Composes with Budget: the filter runs outermost, so
	// the sampler only sees accesses that survived elision.
	Elide bool

	// Provenance attaches an explanation record to every reported race:
	// both conflicting accesses, the failing epoch/clock comparison, the
	// granularity-plane state history, and the last few synchronization
	// edges the detector applied before the report. FastTrack only; works
	// in-process, Remote and Cluster (the record rides the wire report).
	// Verdicts are byte-identical with or without it.
	Provenance bool
	// TraceSample samples event batches into a distributed trace at this
	// rate (0 = off, 1 = every batch): sampled batches carry trace/span IDs
	// across the wire, the server and its shard pipeline attach child
	// spans, and ack-RTT/dispatch/apply histograms record the trace ID of
	// tail-latency observations as exemplars. Effective on Remote and
	// Cluster runs (in-process runs have no wire batches to trace); spans
	// land in Tracer when set, and in the server's /debug/spans always.
	TraceSample float64

	// Telemetry, when non-nil, receives the run's live metrics: detector
	// state transitions and sharing decisions, pipeline per-shard counters
	// and queue depth, client wire counters. Nil disables instrumentation
	// at near-zero cost (one predictable branch per site). Use
	// NewTelemetry to obtain a registry without importing internal
	// packages. MetricsAddr and StatsInterval install one automatically.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records phase spans (execute, drain, collect,
	// dial, report) for a Chrome trace_event JSON dump (NewTracer,
	// Tracer.WriteJSON). Nil disables tracing.
	Tracer *telemetry.Tracer
	// MetricsAddr serves the run's telemetry over HTTP (/metrics
	// Prometheus text, /debug/vars JSON, /debug/pprof/*) on this address
	// for the duration of the run. Empty = no endpoint. Incompatible with
	// RemoteSync (the synchronous client blocks the producer; a live
	// endpoint would mostly show an idle detector — reject rather than
	// mislead).
	MetricsAddr string
	// StatsInterval prints a one-line progress report (accesses,
	// same-epoch hits, races, queue depth) to StatsWriter every interval.
	// 0 disables; negative is rejected by Validate.
	StatsInterval time.Duration
	// StatsWriter receives the progress lines; nil means os.Stderr.
	StatsWriter io.Writer
}

// OptionsError reports an invalid Options field. It is the (typed) error
// returned by Validate and RunE, and the panic value of Run, so callers
// can distinguish misconfiguration from transport or engine failures.
type OptionsError struct {
	Field  string // the Options field that is invalid
	Reason string
}

func (e *OptionsError) Error() string {
	return fmt.Sprintf("race: invalid Options.%s: %s", e.Field, e.Reason)
}

// Validate checks the option combination before any detector state is
// built. It returns a *OptionsError describing the first problem found,
// or nil. Run and RunE call it; it is exported so front-ends (flag
// parsing, config files) can reject bad configurations early.
func (o Options) Validate() error {
	if o.Tool > MultiRace {
		return &OptionsError{"Tool", fmt.Sprintf("unknown tool %d", o.Tool)}
	}
	if o.Granularity > Dynamic {
		return &OptionsError{"Granularity", fmt.Sprintf("unknown granularity %d", o.Granularity)}
	}
	if o.Clock > ClockCompact {
		return &OptionsError{"Clock", fmt.Sprintf("unknown clock mode %d", o.Clock)}
	}
	if o.Clock != ClockGeneral && o.Tool != FastTrack {
		return &OptionsError{"Clock", fmt.Sprintf("compact clocks apply to the fasttrack tool only, not %v", o.Tool)}
	}
	if o.Workers < 0 {
		return &OptionsError{"Workers", fmt.Sprintf("negative worker count %d", o.Workers)}
	}
	if o.Quantum < 0 {
		return &OptionsError{"Quantum", fmt.Sprintf("negative scheduler quantum %d", o.Quantum)}
	}
	if o.Timeout < 0 {
		return &OptionsError{"Timeout", fmt.Sprintf("negative timeout %v", o.Timeout)}
	}
	if o.MemLimitBytes < 0 {
		return &OptionsError{"MemLimitBytes", fmt.Sprintf("negative memory limit %d", o.MemLimitBytes)}
	}
	if o.Remote != "" {
		if o.Tool != FastTrack {
			return &OptionsError{"Remote", fmt.Sprintf("remote detection supports the fasttrack tool only, not %v", o.Tool)}
		}
		if reason := checkEndpoint(o.Remote); reason != "" {
			return &OptionsError{"Remote", reason}
		}
	}
	if len(o.Cluster) > 0 {
		if o.Remote != "" {
			return &OptionsError{"Cluster", "mutually exclusive with Remote (a cluster session manages its own member connections)"}
		}
		if o.Tool != FastTrack {
			return &OptionsError{"Cluster", fmt.Sprintf("cluster detection supports the fasttrack tool only, not %v", o.Tool)}
		}
		seen := make(map[string]bool, len(o.Cluster))
		for i, addr := range o.Cluster {
			if reason := checkEndpoint(addr); reason != "" {
				return &OptionsError{"Cluster", fmt.Sprintf("member %d: %s", i, reason)}
			}
			if seen[addr] {
				return &OptionsError{"Cluster", fmt.Sprintf("duplicate member %q", addr)}
			}
			seen[addr] = true
		}
	}
	if o.ClusterMigration != nil {
		if len(o.Cluster) == 0 {
			return &OptionsError{"ClusterMigration", "requires Cluster to be set"}
		}
		if reason := checkEndpoint(o.ClusterMigration.To); reason != "" {
			return &OptionsError{"ClusterMigration", fmt.Sprintf("target: %s", reason)}
		}
		if o.ClusterMigration.Slot < -1 || o.ClusterMigration.Slot >= cluster.Slots {
			return &OptionsError{"ClusterMigration", fmt.Sprintf("slot %d out of range [0,%d) (or -1 for auto)", o.ClusterMigration.Slot, cluster.Slots)}
		}
	}
	if o.RemoteSync && o.Remote == "" && len(o.Cluster) == 0 {
		return &OptionsError{"RemoteSync", "requires Remote or Cluster to be set"}
	}
	switch o.Codec {
	case "", "auto", "v1", "v2":
	default:
		return &OptionsError{"Codec", fmt.Sprintf("unknown codec %q (want auto, v1 or v2)", o.Codec)}
	}
	if o.Codec != "" && o.Codec != "auto" && o.Remote == "" && len(o.Cluster) == 0 {
		return &OptionsError{"Codec", "requires Remote or Cluster to be set (in-process detection has no wire codec)"}
	}
	switch o.Dispatch {
	case "", "ring", "chan":
	default:
		return &OptionsError{"Dispatch", fmt.Sprintf("unknown dispatch %q (want ring or chan)", o.Dispatch)}
	}
	switch o.BatchPolicy {
	case "", "fixed", "adaptive":
	default:
		return &OptionsError{"BatchPolicy", fmt.Sprintf("unknown batch policy %q (want fixed or adaptive)", o.BatchPolicy)}
	}
	if o.Budget < 0 || o.Budget > 1 {
		return &OptionsError{"Budget", fmt.Sprintf("sampling budget %v outside (0,1] (0 disables)", o.Budget)}
	}
	if o.Budget > 0 && o.Tool != FastTrack {
		return &OptionsError{"Budget", fmt.Sprintf("the sampling lane applies to the fasttrack tool only, not %v", o.Tool)}
	}
	if o.Elide && o.Tool != FastTrack {
		return &OptionsError{"Elide", fmt.Sprintf("same-epoch elision applies to the fasttrack tool only, not %v", o.Tool)}
	}
	if o.Provenance && o.Tool != FastTrack {
		return &OptionsError{"Provenance", fmt.Sprintf("race provenance applies to the fasttrack tool only, not %v", o.Tool)}
	}
	if o.TraceSample < 0 || o.TraceSample > 1 {
		return &OptionsError{"TraceSample", fmt.Sprintf("sampling rate %v outside [0,1]", o.TraceSample)}
	}
	if o.StatsInterval < 0 {
		return &OptionsError{"StatsInterval", fmt.Sprintf("negative interval %v", o.StatsInterval)}
	}
	if o.MetricsAddr != "" && o.RemoteSync {
		return &OptionsError{"MetricsAddr", "incompatible with RemoteSync (synchronous streaming leaves no live detector to observe)"}
	}
	return nil
}

// Race is one reported data race in unified form.
type Race struct {
	// Kind is "write-write", "read-write" or "write-read" ("lockset" for
	// Eraser warnings, which carry no happens-before direction).
	Kind string
	// Addr and Size give the location (Size 0 when not tracked).
	Addr uint64
	Size uint32
	// Tid/PC identify the access completing the race; OtherTid/OtherPC the
	// earlier conflicting access where the tool records it.
	Tid      int32
	PC       uint32
	OtherTid int32
	OtherPC  uint32
}

func (r Race) String() string {
	return fmt.Sprintf("%s race at %#x (%dB): thread %d@pc%#x vs thread %d@pc%#x",
		r.Kind, r.Addr, r.Size, r.Tid, r.PC, r.OtherTid, r.OtherPC)
}

// Provenance is one race's explanation record (Options.Provenance): both
// conflicting accesses, the failing happens-before comparison, the
// granularity-plane state transitions and the recent sync edges. Its
// String method renders a multi-line human-readable explanation.
type Provenance = detector.Provenance

// Stats carries the detector-side measurements the evaluation tables use.
type Stats struct {
	// Accesses and SameEpoch feed Table 4 (percentage of accesses the
	// per-thread bitmaps filtered).
	Accesses  uint64
	SameEpoch uint64

	// Memory components (Table 2); for DRD/InspectorXE only TotalPeakBytes
	// is populated.
	HashPeakBytes   int64
	VCPeakBytes     int64
	BitmapPeakBytes int64
	TotalPeakBytes  int64

	// MaxVectorClocks and AvgSharing feed Table 3.
	MaxVectorClocks int64
	AvgSharing      float64

	// Sharing mechanics (ablation benches).
	NodeAllocs, LocCreations uint64
	Merges, Splits           uint64
	SharingComparisons       uint64

	// Memory-layer effectiveness (the BENCH_mem.json lane): NodeRecycles
	// counts shadow-node creations served from the per-plane freelists
	// instead of the Go heap; VCPoolHits/VCPoolMisses count vector-clock
	// backing-array requests served from / missed by the size-classed
	// clock pool; VCInterns counts read vectors deduplicated through the
	// intern table. All zero for detectors without the pooled memory layer.
	NodeRecycles             uint64
	VCPoolHits, VCPoolMisses uint64
	VCInterns                uint64

	// Structure-aware clock layer (Options.Clock == ClockCompact):
	// threads still holding compact task-tree clocks at the end of the
	// run, one-way demotions to the general representation, and the peak
	// byte footprints of the two representations' thread-clock state.
	ClockStructuredThreads uint64
	ClockDemotions         uint64
	ClockCompactBytes      int64
	ClockCompactPeakBytes  int64
	ClockGeneralBytes      int64
	ClockGeneralPeakBytes  int64

	// Sampling lane (Options.Budget): accesses the sampler forwarded to
	// the detector vs dropped, and access records the remote server shed
	// under queue pressure before they reached its pipeline. All zero on
	// unsampled runs and on the 100%-budget pass-through lane.
	SampledForwarded uint64
	SampledSkipped   uint64
	ShedRecords      uint64

	// Elided counts accesses the front-line filter (Options.Elide) dropped
	// at the source as exact same-epoch repeats. Zero on unfiltered runs;
	// Accesses + Elided is the unfiltered access count.
	Elided uint64
}

// SampledFraction returns the fraction of observed accesses that reached
// the detector (1 on unsampled runs — nothing was dropped).
func (s Stats) SampledFraction() float64 {
	total := s.SampledForwarded + s.SampledSkipped
	if total == 0 {
		return 1
	}
	return float64(s.SampledForwarded) / float64(total)
}

// SameEpochPct returns the same-epoch percentage (Table 4).
func (s Stats) SameEpochPct() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 100 * float64(s.SameEpoch) / float64(s.Accesses)
}

// Report is the result of one detection run.
type Report struct {
	Program     string
	Tool        Tool
	Granularity Granularity

	// Races are the reported races in detection order; Suppressed counts
	// races hidden by module suppression rules.
	Races      []Race
	Suppressed uint64

	// Provenance, when Options.Provenance was set on a FastTrack run,
	// carries one explanation record per race, parallel to Races (empty
	// otherwise; a zero record marks a race whose provenance was lost,
	// e.g. reported by a server without the feature).
	Provenance []Provenance

	// Elapsed is the wall time of the instrumented run; compare with a
	// Baseline run of the same program/seed for the slowdown factor.
	Elapsed time.Duration

	// Run summarizes the analyzed program's own execution (base memory,
	// threads, heap churn).
	Run RunStats

	// Detector carries the detector-side statistics.
	Detector Stats

	// OOM and TimedOut mark runs that did not complete (Table 6's dedup,
	// fluidanimate and ffmpeg rows for the comparison tools).
	OOM      bool
	TimedOut bool
}

// engineOptions maps the engine-facing subset of Options onto sim.Options.
// Every sim.Options field must be produced here — TestEngineOptionsMapping
// pins the field set so a new engine knob cannot silently fail to reach the
// engine (the bug this method replaced: Timeout and MaxEvents were dropped).
func (o Options) engineOptions() sim.Options {
	so := sim.Options{Seed: o.Seed, Quantum: o.Quantum, MaxEvents: o.MaxEvents}
	if o.Timeout > 0 {
		so.Deadline = time.Now().Add(o.Timeout)
	}
	return so
}

// wireCodec maps the Options.Codec string onto the wire codec ceiling the
// client requests (0 = best available).
func (o Options) wireCodec() int {
	switch o.Codec {
	case "v1":
		return wire.CodecPacked
	case "v2":
		return wire.CodecColumnar
	}
	return 0 // auto: the client requests wire.CodecMax
}

// batchPolicy returns a fresh adaptive policy when requested, else nil
// (fixed-size batches).
func (o Options) batchPolicy() *event.BatchPolicy {
	if o.BatchPolicy == "adaptive" {
		return new(event.BatchPolicy)
	}
	return nil
}

// samplerOptions maps Budget onto the sampling front end's configuration.
func (o Options) samplerOptions() sampling.Options {
	return sampling.Options{
		RatePermille: uint32(o.Budget*1000 + 0.5),
		Telemetry:    o.Telemetry,
	}
}

// samplingController returns the feedback controller for this run, or
// nil: only budgeted lanes below 100% have a rate worth steering, and
// only transports with back-pressure signals (pipeline worker queues,
// remote/cluster ack RTTs and outbox occupancy) can steer it. A serial
// local run keeps the rate statically at the budget, which keeps the
// bench lanes deterministic.
func (o Options) samplingController() *sampling.Controller {
	if o.Budget <= 0 || o.Budget >= 1 {
		return nil
	}
	if o.Workers <= 0 && o.Remote == "" && len(o.Cluster) == 0 {
		return nil
	}
	return sampling.NewController(o.Budget)
}

// fillFastTrack maps FastTrack detector output into the unified report; the
// serial detector and the sharded pipeline share it, so both modes populate
// the report identically. provs, when non-empty, is the provenance slice
// parallel to races (Options.Provenance) and is copied through verbatim.
func fillFastTrack(r *Report, st detector.Stats, races []detector.Race, provs []detector.Provenance) {
	r.Detector = Stats{
		Accesses:           st.Accesses,
		SameEpoch:          st.SameEpoch,
		HashPeakBytes:      st.HashPeakBytes,
		VCPeakBytes:        st.VCPeakBytes,
		BitmapPeakBytes:    st.BitmapPeakBytes,
		TotalPeakBytes:     st.TotalPeakBytes,
		MaxVectorClocks:    st.Plane.NodesPeak,
		AvgSharing:         st.Plane.AvgSharing(),
		NodeAllocs:         st.Plane.NodeAllocs,
		LocCreations:       st.Plane.LocCreations,
		Merges:             st.Plane.Merges,
		Splits:             st.Plane.Splits,
		SharingComparisons: st.SharingComparisons,
		NodeRecycles:       st.Plane.NodeRecycles,
		VCPoolHits:         st.VCPoolHits,
		VCPoolMisses:       st.VCPoolMisses,
		VCInterns:          st.VCInterns,

		ClockStructuredThreads: st.ClockStructuredThreads,
		ClockDemotions:         st.ClockDemotions,
		ClockCompactBytes:      st.ClockCompactBytes,
		ClockCompactPeakBytes:  st.ClockCompactPeakBytes,
		ClockGeneralBytes:      st.ClockGeneralBytes,
		ClockGeneralPeakBytes:  st.ClockGeneralPeakBytes,
	}
	r.Suppressed = st.Suppressed
	for _, x := range races {
		r.Races = append(r.Races, Race{
			Kind: x.Kind.String(), Addr: x.Addr, Size: x.Size,
			Tid: int32(x.Tid), PC: uint32(x.PC),
			OtherTid: int32(x.PrevTid), OtherPC: uint32(x.PrevPC),
		})
	}
	if len(provs) > 0 {
		r.Provenance = append(r.Provenance, provs...)
	}
}

// Run executes p under the configured detector and returns the report.
// It panics with a *OptionsError on invalid options and with a transport
// error when a Remote run fails; RunE is the error-returning form.
func Run(p Program, opts Options) Report {
	rep, err := RunE(p, opts)
	if err != nil {
		panic(err)
	}
	return rep
}

// RunE is Run with an error return: invalid options yield a
// *OptionsError, and remote-detection transport failures (connection
// refused and not recovered, server-side rejection) are reported instead
// of panicking.
func RunE(p Program, opts Options) (Report, error) {
	if err := opts.Validate(); err != nil {
		return Report{}, err
	}
	obs, err := startObservability(&opts)
	if err != nil {
		return Report{}, err
	}
	defer obs.stop()
	if opts.Remote != "" {
		return runRemote(p, opts)
	}
	if len(opts.Cluster) > 0 {
		return runCluster(p, opts)
	}
	return runLocal(p, opts), nil
}

// runRemote streams the program's events to a racedetectd and fills the
// report from the service's end-of-session reply. The timed window covers
// the instrumented run plus the flush-and-report exchange, mirroring the
// local pipeline mode where drain time is part of Elapsed.
func runRemote(p Program, opts Options) (Report, error) {
	rep := Report{Program: p.Name, Tool: opts.Tool, Granularity: opts.Granularity}
	endDial := opts.Tracer.Span("dial", map[string]any{"addr": opts.Remote})
	ctrl := opts.samplingController()
	clOpts := client.Options{
		Addr:        opts.Remote,
		Sync:        opts.RemoteSync,
		Telemetry:   opts.Telemetry,
		Codec:       opts.wireCodec(),
		BatchPolicy: opts.batchPolicy(),
		TraceSample: opts.TraceSample,
		Tracer:      opts.Tracer,
		Hello: wire.Hello{
			Granularity:      uint8(opts.Granularity),
			Workers:          opts.Workers,
			NoInitState:      opts.NoInitState,
			NoInitSharing:    opts.NoInitSharing,
			WriteGuidedReads: opts.WriteGuidedReads,
			ReadReset:        opts.ReadReset,
			ReshareInterval:  opts.ReshareInterval,
			Clock:            uint8(opts.Clock),
			Provenance:       opts.Provenance,
		},
	}
	if ctrl != nil {
		clOpts.Backpressure = ctrl
	}
	cl, err := client.Dial(clOpts)
	endDial()
	if err != nil {
		return rep, err
	}
	var sink event.Sink = cl
	var smp *sampling.Detector
	if opts.Budget > 0 {
		smp = sampling.New(sink, opts.samplerOptions())
		if ctrl != nil {
			ctrl.Bind(smp)
		}
		sink = smp
	}
	var el *event.Elider
	if opts.Elide {
		// Outermost: repeats are dropped before serialization, so the wire
		// never carries them.
		el = event.NewElider(sink, event.EliderOptions{Telemetry: opts.Telemetry})
		sink = el
	}
	start := time.Now()
	endExec := opts.Tracer.Span("execute", map[string]any{"program": p.Name})
	rep.Run = sim.Run(p, sink, opts.engineOptions())
	endExec()
	endReport := opts.Tracer.Span("report")
	wrep, err := cl.Close()
	endReport()
	rep.Elapsed = time.Since(start)
	rep.TimedOut = rep.Run.TimedOut
	if err != nil {
		return rep, err
	}
	fillFastTrack(&rep, wrep.DetectorStats(), wrep.DetectorRaces(), wrep.DetectorProvs())
	rep.Detector.ShedRecords = wrep.Stats.ShedRecords
	if smp != nil {
		rep.Detector.SampledForwarded, rep.Detector.SampledSkipped = smp.Counts()
	}
	if el != nil {
		rep.Detector.Elided = el.Elided()
	}
	return rep, nil
}

// runLocal executes p under an in-process detector.
func runLocal(p Program, opts Options) Report {
	simOpts := opts.engineOptions()
	rep := Report{Program: p.Name, Tool: opts.Tool, Granularity: opts.Granularity}

	var sink event.Sink
	var collect func(*Report)
	var drain func() // runs inside the timed window, before collect
	switch opts.Tool {
	case FastTrack:
		cfg := detector.Config{
			Granularity:      opts.Granularity,
			NoInitState:      opts.NoInitState,
			NoInitSharing:    opts.NoInitSharing,
			WriteGuidedReads: opts.WriteGuidedReads,
			ReshareInterval:  opts.ReshareInterval,
			ReadReset:        opts.ReadReset,
			Clock:            opts.Clock,
			Provenance:       opts.Provenance,
		}
		ctrl := opts.samplingController()
		if opts.Workers > 0 {
			plOpts := pipeline.Options{
				Workers:     opts.Workers,
				Detector:    cfg,
				Telemetry:   opts.Telemetry,
				Dispatch:    opts.Dispatch,
				BatchPolicy: opts.batchPolicy(),
				Tracer:      opts.Tracer,
			}
			if ctrl != nil {
				plOpts.Backpressure = ctrl
			}
			pl := pipeline.New(plOpts)
			sink = pl
			var res pipeline.Result
			drain = func() { res = pl.Wait() }
			collect = func(r *Report) { fillFastTrack(r, res.Stats, res.Races, res.Provenance) }
		} else {
			if opts.Telemetry != nil {
				cfg.Metrics = detector.NewMetrics(opts.Telemetry)
			}
			d := detector.New(cfg)
			sink = d
			collect = func(r *Report) { fillFastTrack(r, d.Stats(), d.Races(), d.Provs()) }
		}
		if opts.Budget > 0 {
			smp := sampling.New(sink, opts.samplerOptions())
			if ctrl != nil {
				ctrl.Bind(smp)
			}
			sink = smp
			inner := collect
			collect = func(r *Report) {
				inner(r)
				r.Detector.SampledForwarded, r.Detector.SampledSkipped = smp.Counts()
			}
		}
		if opts.Elide {
			// Outermost: the filter sees the raw stream, so the sampler
			// (and the transport) only pay for accesses that survived.
			el := event.NewElider(sink, event.EliderOptions{Telemetry: opts.Telemetry})
			sink = el
			inner := collect
			collect = func(r *Report) {
				inner(r)
				r.Detector.Elided = el.Elided()
			}
		}
	case DJITPlus:
		d := djit.New(djit.Options{Granule: 1})
		sink = d
		collect = func(r *Report) {
			for _, x := range d.Races() {
				r.Races = append(r.Races, Race{
					Kind: x.Kind.String(), Addr: x.Addr, Size: 1,
					Tid: int32(x.Tid), OtherTid: int32(x.Other),
				})
			}
		}
	case DRD:
		d := segment.New(segment.Options{MemLimitBytes: opts.MemLimitBytes})
		sink = d
		collect = func(r *Report) {
			r.OOM = d.OOM()
			r.Detector.TotalPeakBytes = d.PeakBytes()
			for _, x := range d.Races() {
				r.Races = append(r.Races, Race{
					Kind: x.Kind.String(), Addr: x.Addr, Size: segment.Granule,
					Tid: int32(x.Tid), PC: uint32(x.PC), OtherTid: int32(x.Other),
				})
			}
		}
	case InspectorXE:
		d := hybrid.New(hybrid.Options{MemLimitBytes: opts.MemLimitBytes})
		sink = d
		collect = func(r *Report) {
			r.OOM = d.OOM()
			r.Detector.TotalPeakBytes = d.PeakBytes()
			for _, x := range d.Races() {
				r.Races = append(r.Races, Race{
					Kind: x.Kind.String(), Addr: x.Addr, Size: 1,
					Tid: int32(x.Tid), PC: uint32(x.PC),
					OtherTid: int32(x.Other), OtherPC: uint32(x.OtherPC),
				})
			}
		}
	case Eraser:
		d := lockset.New(lockset.Options{})
		sink = d
		collect = func(r *Report) {
			for _, x := range d.Races() {
				r.Races = append(r.Races, Race{
					Kind: "lockset", Addr: x.Addr, Size: 4,
					Tid: int32(x.Tid), PC: uint32(x.PC),
				})
			}
		}
	case MultiRace:
		d := multirace.New(multirace.Options{})
		sink = d
		collect = func(r *Report) {
			r.Detector.SharingComparisons = d.ChecksRun
			for _, x := range d.Races() {
				r.Races = append(r.Races, Race{
					Kind: x.Kind.String(), Addr: x.Addr, Size: multirace.Granule,
					Tid: int32(x.Tid), PC: uint32(x.PC), OtherTid: int32(x.Other),
				})
			}
		}
	default:
		panic(fmt.Sprintf("race: unknown tool %d", opts.Tool))
	}

	start := time.Now()
	endExec := opts.Tracer.Span("execute", map[string]any{"program": p.Name, "tool": opts.Tool.String()})
	rep.Run = sim.Run(p, sink, simOpts)
	endExec()
	if drain != nil {
		endDrain := opts.Tracer.Span("drain")
		drain() // the timed window includes draining the detection workers
		endDrain()
	}
	rep.Elapsed = time.Since(start)
	rep.TimedOut = rep.Run.TimedOut
	endCollect := opts.Tracer.Span("collect")
	collect(&rep)
	endCollect()
	return rep
}

// Baseline runs p uninstrumented (a no-op sink) and returns the program's
// own statistics and wall time — the denominators of Table 1's slowdown
// and memory-overhead factors.
func Baseline(p Program, seed int64) (RunStats, time.Duration) {
	start := time.Now()
	st := sim.Run(p, event.Nop{}, sim.Options{Seed: seed})
	return st, time.Since(start)
}
