package race

import (
	"reflect"
	"testing"

	"repro/internal/server"
	"repro/workloads"
)

// assertSameReport compares the fields the acceptance gate cares about:
// access statistics and the exact race set.
func assertSameReport(t *testing.T, name string, local, other Report) {
	t.Helper()
	if local.Run.Accesses != other.Run.Accesses {
		t.Errorf("%s: Run.Accesses %d vs %d", name, local.Run.Accesses, other.Run.Accesses)
	}
	if local.Detector.Accesses != other.Detector.Accesses {
		t.Errorf("%s: Detector.Accesses %d vs %d", name, local.Detector.Accesses, other.Detector.Accesses)
	}
	if local.Detector.SameEpoch != other.Detector.SameEpoch {
		t.Errorf("%s: Detector.SameEpoch %d vs %d", name, local.Detector.SameEpoch, other.Detector.SameEpoch)
	}
	want, got := sortRaces(local.Races), sortRaces(other.Races)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: race sets differ\nlocal (%d): %v\nother (%d): %v",
			name, len(want), want, len(got), got)
	}
}

// TestRemoteEquivalenceForcedV1 re-runs the remote acceptance gate with
// the codec pinned to the packed v1 format: negotiating down to the
// original record array must change bytes on the wire and nothing else.
func TestRemoteEquivalenceForcedV1(t *testing.T) {
	addr := startDetectd(t, server.Options{})
	for _, spec := range workloads.All() {
		for _, g := range []Granularity{Byte, Word, Dynamic} {
			local := Run(spec.Program(), Options{Granularity: g, Seed: 42})
			remote, err := RunE(spec.Program(), Options{
				Granularity: g, Seed: 42, Workers: 2,
				Remote: addr, Codec: "v1",
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.Name, g, err)
			}
			assertSameReport(t, spec.Name+"/"+g.String(), local, remote)
		}
	}
}

// TestRemoteEquivalenceAdaptiveBatching checks the adaptive batch policy
// changes only batch boundaries, never the decoded stream: a remote run
// with adaptive sizing reproduces the local report across granularities.
func TestRemoteEquivalenceAdaptiveBatching(t *testing.T) {
	addr := startDetectd(t, server.Options{})
	spec, err := workloads.ByName("pbzip2")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []Granularity{Byte, Word, Dynamic} {
		local := Run(spec.Program(), Options{Granularity: g, Seed: 42})
		remote, err := RunE(spec.Program(), Options{
			Granularity: g, Seed: 42, Workers: 2,
			Remote: addr, BatchPolicy: "adaptive",
		})
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		assertSameReport(t, "adaptive/"+g.String(), local, remote)
	}
}

// TestParallelEquivalenceChanDispatch cross-checks the ring dispatch
// against the channel baseline: both transports must reproduce the serial
// report, with and without adaptive batching.
func TestParallelEquivalenceChanDispatch(t *testing.T) {
	for _, name := range []string{"pbzip2", "streamcluster"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		serial := Run(spec.Program(), Options{Granularity: Dynamic, Seed: 42})
		for _, opts := range []Options{
			{Granularity: Dynamic, Seed: 42, Workers: 3, Dispatch: "chan"},
			{Granularity: Dynamic, Seed: 42, Workers: 3, Dispatch: "chan", BatchPolicy: "adaptive"},
			{Granularity: Dynamic, Seed: 42, Workers: 3, Dispatch: "ring", BatchPolicy: "adaptive"},
		} {
			sharded, err := RunE(spec.Program(), opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSameReport(t, name+"/"+opts.Dispatch, serial, sharded)
		}
	}
}
