//go:build race

package race

// raceDetectorOn trims the heaviest equivalence matrices when the test
// binary runs under the Go race detector: the concurrency surface is the
// same on a subset, and the full verdict matrix runs in the regular
// (uninstrumented) test pass.
const raceDetectorOn = true
