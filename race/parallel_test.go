package race

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/workloads"
)

// sortRaces normalizes a race list for set comparison: serial detection
// order and the pipeline's sequence-merged order may differ, but the sets
// must be identical.
func sortRaces(rs []Race) []Race {
	out := append([]Race(nil), rs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Addr != b.Addr:
			return a.Addr < b.Addr
		case a.Kind != b.Kind:
			return a.Kind < b.Kind
		case a.Tid != b.Tid:
			return a.Tid < b.Tid
		case a.OtherTid != b.OtherTid:
			return a.OtherTid < b.OtherTid
		case a.PC != b.PC:
			return a.PC < b.PC
		case a.OtherPC != b.OtherPC:
			return a.OtherPC < b.OtherPC
		default:
			return a.Size < b.Size
		}
	})
	return out
}

// TestParallelEquivalence is the acceptance gate for the sharded pipeline:
// for every workload and every granularity, Workers: 4 must report exactly
// the serial race set and the same access count.
func TestParallelEquivalence(t *testing.T) {
	grans := []Granularity{Byte, Word, Dynamic}
	for _, spec := range workloads.All() {
		for _, g := range grans {
			serial := Run(spec.Program(), Options{Granularity: g, Seed: 42})
			par := Run(spec.Program(), Options{Granularity: g, Seed: 42, Workers: 4})

			if serial.Run.Accesses != par.Run.Accesses {
				t.Errorf("%s/%s: Run.Accesses %d (serial) vs %d (workers=4)",
					spec.Name, g, serial.Run.Accesses, par.Run.Accesses)
			}
			if serial.Detector.Accesses != par.Detector.Accesses {
				t.Errorf("%s/%s: Detector.Accesses %d (serial) vs %d (workers=4)",
					spec.Name, g, serial.Detector.Accesses, par.Detector.Accesses)
			}
			want, got := sortRaces(serial.Races), sortRaces(par.Races)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: race sets differ\nserial (%d): %v\nworkers=4 (%d): %v",
					spec.Name, g, len(want), want, len(got), got)
			}
		}
	}
}

// TestParallelDeterministic checks that repeated parallel runs with the same
// seed produce byte-identical reports including race order — the merge is
// deterministic regardless of worker goroutine scheduling.
func TestParallelDeterministic(t *testing.T) {
	spec, err := workloads.ByName("pbzip2")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Granularity: Dynamic, Seed: 3, Workers: 4}
	a := Run(spec.Program(), opts)
	for i := 0; i < 3; i++ {
		b := Run(spec.Program(), opts)
		if !reflect.DeepEqual(a.Races, b.Races) {
			t.Fatalf("run %d: parallel race order differs between identical runs", i)
		}
	}
}

// TestEngineOptionsMapping pins the Options→sim.Options mapping. It fails in
// two ways: if a populated engine-facing option does not reach sim.Options
// (the regression this test was written against — Timeout and MaxEvents were
// silently dropped), and if sim.Options grows a field this mapping does not
// know about.
func TestEngineOptionsMapping(t *testing.T) {
	o := Options{
		Seed:      17,
		Quantum:   9,
		MaxEvents: 12345,
		Timeout:   time.Minute,
	}
	before := time.Now()
	so := o.engineOptions()

	if so.Seed != o.Seed {
		t.Errorf("Seed not mapped: %d", so.Seed)
	}
	if so.Quantum != o.Quantum {
		t.Errorf("Quantum not mapped: %d", so.Quantum)
	}
	if so.MaxEvents != o.MaxEvents {
		t.Errorf("MaxEvents not mapped: %d", so.MaxEvents)
	}
	if so.Deadline.Before(before.Add(o.Timeout)) || so.Deadline.After(time.Now().Add(o.Timeout)) {
		t.Errorf("Deadline not derived from Timeout: %v", so.Deadline)
	}
	// Zero Timeout must leave the Deadline unset (unlimited).
	if z := (Options{}).engineOptions(); !z.Deadline.IsZero() {
		t.Errorf("zero Timeout produced Deadline %v", z.Deadline)
	}

	// Exhaustiveness: every sim.Options field must be one this test checks.
	// A new engine knob has to be added both to the mapping and here.
	known := map[string]bool{"Seed": true, "Quantum": true, "MaxEvents": true, "Deadline": true}
	rt := reflect.TypeOf(sim.Options{})
	for i := 0; i < rt.NumField(); i++ {
		if !known[rt.Field(i).Name] {
			t.Errorf("sim.Options has field %q unknown to Options.engineOptions; extend the mapping and this test", rt.Field(i).Name)
		}
	}
}

// TestMaxEventsReachesEngine verifies the full path: a Run with MaxEvents
// set must abort the engine (panic) when the workload exceeds the budget.
func TestMaxEventsReachesEngine(t *testing.T) {
	spec, err := workloads.ByName("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MaxEvents did not reach the engine: no abort")
		}
	}()
	Run(spec.Program(), Options{Seed: 1, MaxEvents: 10})
}

// TestWorkersIgnoredForSerialTools checks non-FastTrack tools run serially
// and still work when Workers is set.
func TestWorkersIgnoredForSerialTools(t *testing.T) {
	spec, err := workloads.ByName("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(spec.Program(), Options{Tool: DJITPlus, Seed: 42, Workers: 4})
	ser := Run(spec.Program(), Options{Tool: DJITPlus, Seed: 42})
	if !reflect.DeepEqual(sortRaces(rep.Races), sortRaces(ser.Races)) {
		t.Fatal("Workers changed a serial tool's report")
	}
}
