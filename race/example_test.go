package race_test

import (
	"fmt"

	"repro/race"
)

// The canonical use: build a program against the engine API, run it under
// FastTrack with dynamic granularity, print the races.
func Example() {
	prog := race.Program{Name: "example", Main: func(t *race.Thread) {
		w := t.Go(func(w *race.Thread) {
			w.At(1)
			w.Write(0x1000, 4)
		})
		t.At(2)
		t.Write(0x1000, 4) // concurrent with the child's write
		t.Join(w)
	}}
	rep := race.Run(prog, race.Options{Granularity: race.Dynamic, Seed: 1})
	fmt.Printf("%d race(s)\n", len(rep.Races))
	fmt.Println(rep.Races[0].Kind)
	// Output:
	// 1 race(s)
	// write-write
}

// Comparing granularities on one program: adjacent byte fields protected
// by different locks are safe at byte and dynamic granularity but masked
// together — and falsely reported — at word granularity.
func Example_granularities() {
	build := func() race.Program {
		return race.Program{Name: "fields", Main: func(t *race.Thread) {
			la, lb := t.NewLock(), t.NewLock()
			w := t.Go(func(w *race.Thread) {
				w.WithLock(lb, func() { w.Write(0x2001, 1) })
			})
			t.WithLock(la, func() { t.Write(0x2000, 1) })
			t.Join(w)
		}}
	}
	for _, g := range []race.Granularity{race.Byte, race.Word, race.Dynamic} {
		rep := race.Run(build(), race.Options{Granularity: g, Seed: 1})
		fmt.Printf("%v: %d\n", g, len(rep.Races))
	}
	// Output:
	// byte: 0
	// word: 1
	// dynamic: 0
}

// Running the same program under a comparison tool.
func ExampleRun_tools() {
	prog := race.Program{Name: "tools", Main: func(t *race.Thread) {
		t.Write(0x3000, 4)
		w := t.Go(func(w *race.Thread) {
			w.Write(0x3000, 4) // ordered by the fork: not a race
		})
		t.Join(w)
	}}
	hb := race.Run(prog, race.Options{Tool: race.DRD, Seed: 1})
	ls := race.Run(prog, race.Options{Tool: race.Eraser, Seed: 1})
	fmt.Printf("happens-before tool: %d, lockset tool: %d\n", len(hb.Races), len(ls.Races))
	// Output:
	// happens-before tool: 0, lockset tool: 1
}
