//go:build !race

package race

// raceDetectorOn reports whether the test binary runs under the Go race
// detector; see racedetector_on_test.go.
const raceDetectorOn = false
