package race

import (
	"fmt"
	"sort"
	"strings"
)

// Group is a set of race reports that share the same pair of code sites —
// the classification unit DRD and Inspector XE present to users ("execution
// context"), letting one buggy line that races at many addresses show up
// as one finding.
type Group struct {
	// PC and OtherPC are the two code sites (order-normalized).
	PC, OtherPC uint32
	// Kinds lists the distinct race kinds observed for this pair.
	Kinds []string
	// Addrs lists the distinct racing addresses, ascending.
	Addrs []uint64
	// Count is the number of raw reports in the group.
	Count int
}

func (g Group) String() string {
	return fmt.Sprintf("sites %#x/%#x: %d report(s) at %d address(es) [%s]",
		g.PC, g.OtherPC, g.Count, len(g.Addrs), strings.Join(g.Kinds, ", "))
}

// Summary classifies a report's races the way the commercial tools do.
type Summary struct {
	// Groups are the site-pair groups, largest first.
	Groups []Group
	// ByKind counts raw reports per race kind.
	ByKind map[string]int
}

// Summarize groups the report's races by code-site pair and tallies kinds.
func Summarize(rep Report) Summary {
	type key struct{ a, b uint32 }
	groups := map[key]*Group{}
	byKind := map[string]int{}
	for _, r := range rep.Races {
		a, b := r.PC, r.OtherPC
		if a > b {
			a, b = b, a
		}
		k := key{a, b}
		g := groups[k]
		if g == nil {
			g = &Group{PC: a, OtherPC: b}
			groups[k] = g
		}
		g.Count++
		if !contains(g.Kinds, r.Kind) {
			g.Kinds = append(g.Kinds, r.Kind)
		}
		if len(g.Addrs) == 0 || g.Addrs[len(g.Addrs)-1] != r.Addr {
			g.Addrs = append(g.Addrs, r.Addr)
		}
		byKind[r.Kind]++
	}
	s := Summary{ByKind: byKind}
	for _, g := range groups {
		sort.Slice(g.Addrs, func(i, j int) bool { return g.Addrs[i] < g.Addrs[j] })
		g.Addrs = dedupAddrs(g.Addrs)
		sort.Strings(g.Kinds)
		s.Groups = append(s.Groups, *g)
	}
	sort.Slice(s.Groups, func(i, j int) bool {
		if s.Groups[i].Count != s.Groups[j].Count {
			return s.Groups[i].Count > s.Groups[j].Count
		}
		if s.Groups[i].PC != s.Groups[j].PC {
			return s.Groups[i].PC < s.Groups[j].PC
		}
		return s.Groups[i].OtherPC < s.Groups[j].OtherPC
	})
	return s
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func dedupAddrs(xs []uint64) []uint64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
