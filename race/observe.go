// Run observability: the wiring between race.Options and the telemetry
// layer — a metrics HTTP endpoint served for the duration of a run
// (Options.MetricsAddr), a periodic one-line progress report
// (Options.StatsInterval), and the phase tracer (Options.Tracer). All of
// it is opt-in; a zero Options runs with no telemetry and no overhead
// beyond one nil check per instrumented site.
package race

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/telemetry"
)

// NewTelemetry returns an empty metric registry to pass as
// Options.Telemetry — a convenience so front-ends need not import
// internal/telemetry.
func NewTelemetry() *telemetry.Registry { return telemetry.New() }

// NewTracer returns a phase tracer to pass as Options.Tracer.
func NewTracer() *telemetry.Tracer { return telemetry.NewTracer() }

// observer owns a run's observability side-cars: the metrics listener and
// the progress ticker goroutine. stop is idempotent enough for the single
// deferred call RunE makes.
type observer struct {
	reg  *telemetry.Registry
	ln   net.Listener
	quit chan struct{}
	done chan struct{}
}

// startObservability prepares the run's registry and starts the side-cars
// requested by opts. It may upgrade opts.Telemetry from nil to a fresh
// registry when an endpoint or progress report needs one.
func startObservability(opts *Options) (*observer, error) {
	o := &observer{}
	if opts.Telemetry == nil && (opts.MetricsAddr != "" || opts.StatsInterval > 0) {
		opts.Telemetry = telemetry.New()
	}
	o.reg = opts.Telemetry
	if opts.MetricsAddr != "" {
		ln, err := net.Listen("tcp", opts.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("race: metrics endpoint: %w", err)
		}
		o.ln = ln
		srv := &http.Server{Handler: o.reg.Handler()}
		go srv.Serve(ln)
	}
	if opts.StatsInterval > 0 {
		w := opts.StatsWriter
		if w == nil {
			w = os.Stderr
		}
		o.quit = make(chan struct{})
		o.done = make(chan struct{})
		go o.progress(w, opts.StatsInterval)
	}
	return o, nil
}

// progress prints one line per interval with the run's live counters, read
// straight from the registry (the same numbers /metrics serves).
func (o *observer) progress(w io.Writer, interval time.Duration) {
	defer close(o.done)
	start := time.Now()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-o.quit:
			return
		case <-t.C:
			fmt.Fprintln(w, o.progressLine(time.Since(start)))
		}
	}
}

// progressLine renders the one-line progress report. Split out for tests.
func (o *observer) progressLine(elapsed time.Duration) string {
	r := o.reg
	accesses := r.CounterValue("detector_accesses_total")
	same := r.CounterValue("detector_same_epoch_hits_total")
	races := r.CounterValue("detector_races_total")
	line := fmt.Sprintf("progress t=%.1fs accesses=%d same_epoch=%d races=%d",
		elapsed.Seconds(), accesses, same, races)
	if q := r.GaugeValue("pipeline_queue_depth"); q > 0 {
		line += fmt.Sprintf(" queue=%d", int64(q))
	}
	if ev := r.CounterValue("client_events_total"); ev > 0 {
		line += fmt.Sprintf(" streamed=%d batches=%d", ev, r.CounterValue("client_batches_total"))
	}
	return line
}

// stop tears the side-cars down: the progress goroutine is joined and the
// metrics listener closed (the endpoint lives only as long as the run).
func (o *observer) stop() {
	if o.quit != nil {
		close(o.quit)
		<-o.done
	}
	if o.ln != nil {
		o.ln.Close()
	}
}
