package race_test

import (
	"strings"
	"testing"

	"repro/race"
	"repro/workloads"
)

func TestSummarizeGroupsBySitePair(t *testing.T) {
	rep := race.Report{Races: []race.Race{
		{Kind: "write-write", Addr: 0x100, PC: 10, OtherPC: 20},
		{Kind: "write-write", Addr: 0x104, PC: 20, OtherPC: 10}, // same pair, swapped
		{Kind: "write-read", Addr: 0x200, PC: 30, OtherPC: 40},
		{Kind: "write-write", Addr: 0x104, PC: 10, OtherPC: 20}, // duplicate addr
	}}
	s := race.Summarize(rep)
	if len(s.Groups) != 2 {
		t.Fatalf("groups = %d", len(s.Groups))
	}
	g := s.Groups[0] // largest first
	if g.PC != 10 || g.OtherPC != 20 || g.Count != 3 {
		t.Errorf("group = %+v", g)
	}
	if len(g.Addrs) != 2 || g.Addrs[0] != 0x100 || g.Addrs[1] != 0x104 {
		t.Errorf("addrs = %#x", g.Addrs)
	}
	if s.ByKind["write-write"] != 3 || s.ByKind["write-read"] != 1 {
		t.Errorf("byKind = %v", s.ByKind)
	}
	if !strings.Contains(g.String(), "3 report(s)") {
		t.Errorf("string = %q", g.String())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := race.Summarize(race.Report{})
	if len(s.Groups) != 0 || len(s.ByKind) != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

// x264's 60 standalone races come from one site pair: the summary view
// collapses them into a single group the way Inspector XE's report does.
func TestSummarizeX264(t *testing.T) {
	spec, err := workloads.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	rep := race.Run(spec.Program(), race.Options{Granularity: race.Byte, Seed: 42})
	s := race.Summarize(rep)
	if len(rep.Races) != 72 {
		t.Fatalf("raw reports = %d", len(rep.Races))
	}
	if len(s.Groups) >= len(rep.Races)/2 {
		t.Errorf("summary barely grouped: %d groups for %d reports",
			len(s.Groups), len(rep.Races))
	}
	if s.Groups[0].Count < 50 {
		t.Errorf("the standalone-race group should dominate: %+v", s.Groups[0])
	}
}
