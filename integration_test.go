package repro_test

import (
	"testing"

	"repro/race"
	"repro/workloads"
)

// TestEveryWorkloadUnderEveryTool is the grand smoke matrix: all fourteen
// benchmarks under all six detectors complete, report deterministic
// counts, and respect per-tool soundness expectations.
func TestEveryWorkloadUnderEveryTool(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run is several seconds")
	}
	tools := []race.Tool{
		race.FastTrack, race.DJITPlus, race.DRD,
		race.InspectorXE, race.Eraser, race.MultiRace,
	}
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, tool := range tools {
				rep := race.Run(spec.Program(), race.Options{
					Tool: tool, Granularity: race.Dynamic, Seed: 42,
				})
				if rep.TimedOut || rep.OOM {
					t.Errorf("%v did not finish", tool)
					continue
				}
				if rep.Run.Accesses == 0 {
					t.Errorf("%v saw no accesses", tool)
				}
				// Happens-before tools on race-free pbzip2 must stay silent.
				if spec.Name == "pbzip2" && tool != race.Eraser && len(rep.Races) != 0 {
					t.Errorf("%v false-alarmed on pbzip2: %v", tool, rep.Races)
				}
				// Every tool finds something on benchmarks with real races
				// (except that word-masking etc. never applies here since
				// each workload's races include ≥1 word-aligned conflict).
				if spec.Races > 0 && tool != race.Eraser && len(rep.Races) == 0 {
					t.Errorf("%v found nothing on %s (want ≥1)", tool, spec.Name)
				}
			}
		})
	}
}

// TestGranularityMatrixDeterminism: two full sweeps of the suite at every
// granularity must agree byte-for-byte in their race reports.
func TestGranularityMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run is several seconds")
	}
	sweep := func() map[string][]race.Race {
		out := map[string][]race.Race{}
		for _, spec := range workloads.All() {
			for _, g := range []race.Granularity{race.Byte, race.Word, race.Dynamic} {
				rep := race.Run(spec.Program(), race.Options{Granularity: g, Seed: 7})
				out[spec.Name+g.String()] = rep.Races
			}
		}
		return out
	}
	a, b := sweep(), sweep()
	for k, ra := range a {
		rb := b[k]
		if len(ra) != len(rb) {
			t.Fatalf("%s: %d vs %d races", k, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Errorf("%s report %d differs", k, i)
			}
		}
	}
}
