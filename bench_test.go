// Benchmarks regenerating the paper's evaluation, one benchmark function
// per table and figure. Each reports the table's key quantities through
// b.ReportMetric, so `go test -bench=. -benchmem` prints the reproduction
// numbers next to the timing. cmd/benchtables renders the same data in the
// paper's full layout over all fourteen workloads; the benches run a
// representative subset per iteration to stay inside normal bench budgets
// (use -bench-workloads=all to sweep everything).
package repro_test

import (
	"bytes"
	"flag"
	"fmt"
	"testing"

	"repro/internal/event"
	"repro/internal/tables"
	"repro/internal/vc"
	"repro/internal/wire"
	"repro/race"
	"repro/workloads"
)

var benchWorkloads = flag.String("bench-workloads", "subset",
	`workload set for table benches: "subset" or "all"`)

// benchSet returns the workloads a table bench sweeps.
func benchSet() []workloads.Spec {
	if *benchWorkloads == "all" {
		return workloads.All()
	}
	var out []workloads.Spec
	for _, name := range []string{"hmmsearch", "ffmpeg", "pbzip2", "streamcluster"} {
		s, err := workloads.ByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

func runAll(b *testing.B, specs []workloads.Spec, opts race.Options) (accesses uint64, reps []race.Report) {
	for _, s := range specs {
		rep := race.Run(s.Program(), opts)
		accesses += rep.Run.Accesses
		reps = append(reps, rep)
	}
	return accesses, reps
}

// BenchmarkTable1 regenerates Table 1's core comparison: FastTrack at
// byte, word and dynamic granularity over the benchmark suite. The
// reported metrics are the per-granularity race totals; the ns/op ratios
// between the sub-benchmarks are the slowdown relationships of Table 1.
func BenchmarkTable1(b *testing.B) {
	for _, g := range []race.Granularity{race.Byte, race.Word, race.Dynamic} {
		b.Run(g.String(), func(b *testing.B) {
			var accesses uint64
			races := 0
			for i := 0; i < b.N; i++ {
				n, reps := runAll(b, benchSet(), race.Options{Granularity: g, Seed: 42})
				accesses = n
				races = 0
				for _, r := range reps {
					races += len(r.Races)
				}
			}
			b.ReportMetric(float64(accesses)/float64(b.Elapsed().Nanoseconds())*float64(b.N)*1e3, "Maccesses/s")
			b.ReportMetric(float64(races), "races")
		})
	}
}

// BenchmarkTable2 regenerates Table 2's memory components per granularity.
func BenchmarkTable2(b *testing.B) {
	for _, g := range []race.Granularity{race.Byte, race.Word, race.Dynamic} {
		b.Run(g.String(), func(b *testing.B) {
			var hash, vcb, bitmap, total int64
			for i := 0; i < b.N; i++ {
				hash, vcb, bitmap, total = 0, 0, 0, 0
				_, reps := runAll(b, benchSet(), race.Options{Granularity: g, Seed: 42})
				for _, r := range reps {
					hash += r.Detector.HashPeakBytes
					vcb += r.Detector.VCPeakBytes
					bitmap += r.Detector.BitmapPeakBytes
					total += r.Detector.TotalPeakBytes
				}
			}
			b.ReportMetric(float64(hash)/1024, "hashKB")
			b.ReportMetric(float64(vcb)/1024, "vcKB")
			b.ReportMetric(float64(bitmap)/1024, "bitmapKB")
			b.ReportMetric(float64(total)/1024, "totalKB")
		})
	}
}

// BenchmarkTable3 regenerates Table 3: peak vector-clock counts and the
// average sharing under dynamic granularity.
func BenchmarkTable3(b *testing.B) {
	for _, g := range []race.Granularity{race.Byte, race.Dynamic} {
		b.Run(g.String(), func(b *testing.B) {
			var clocks int64
			sharing := 0.0
			for i := 0; i < b.N; i++ {
				clocks, sharing = 0, 0
				_, reps := runAll(b, benchSet(), race.Options{Granularity: g, Seed: 42})
				for _, r := range reps {
					clocks += r.Detector.MaxVectorClocks
					sharing += r.Detector.AvgSharing
				}
				sharing /= float64(len(reps))
			}
			b.ReportMetric(float64(clocks), "peakVCs")
			b.ReportMetric(sharing, "avgSharing")
		})
	}
}

// BenchmarkTable4 regenerates Table 4: the same-epoch access percentage
// that explains the granularity speedups.
func BenchmarkTable4(b *testing.B) {
	for _, g := range []race.Granularity{race.Byte, race.Word, race.Dynamic} {
		b.Run(g.String(), func(b *testing.B) {
			pct := 0.0
			for i := 0; i < b.N; i++ {
				var acc, same uint64
				_, reps := runAll(b, benchSet(), race.Options{Granularity: g, Seed: 42})
				for _, r := range reps {
					acc += r.Detector.Accesses
					same += r.Detector.SameEpoch
				}
				pct = 100 * float64(same) / float64(acc)
			}
			b.ReportMetric(pct, "sameEpoch%")
		})
	}
}

// BenchmarkTable5 regenerates Table 5's state-machine ablations: peak
// clock nodes without/with first-epoch sharing and races without/with the
// Init state.
func BenchmarkTable5(b *testing.B) {
	variants := []struct {
		name string
		opts race.Options
	}{
		{"full", race.Options{Granularity: race.Dynamic, Seed: 42}},
		{"no-init-sharing", race.Options{Granularity: race.Dynamic, NoInitSharing: true, Seed: 42}},
		{"no-init-state", race.Options{Granularity: race.Dynamic, NoInitState: true, Seed: 42}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var totalMem int64
			races := 0
			for i := 0; i < b.N; i++ {
				totalMem, races = 0, 0
				_, reps := runAll(b, benchSet(), v.opts)
				for _, r := range reps {
					totalMem += r.Detector.TotalPeakBytes
					races += len(r.Races)
				}
			}
			b.ReportMetric(float64(totalMem)/1024, "memKB")
			b.ReportMetric(float64(races), "races")
		})
	}
}

// BenchmarkTable6 regenerates Table 6: the tool comparison (DRD-style
// segments, Inspector-style hybrid, FastTrack with dynamic granularity).
func BenchmarkTable6(b *testing.B) {
	toolSet := []struct {
		name string
		opts race.Options
	}{
		{"drd", race.Options{Tool: race.DRD, Seed: 42}},
		{"inspector", race.Options{Tool: race.InspectorXE, Seed: 42}},
		{"fasttrack-dynamic", race.Options{Tool: race.FastTrack, Granularity: race.Dynamic, Seed: 42}},
	}
	for _, tl := range toolSet {
		b.Run(tl.name, func(b *testing.B) {
			races := 0
			var mem int64
			for i := 0; i < b.N; i++ {
				races, mem = 0, 0
				_, reps := runAll(b, benchSet(), tl.opts)
				for _, r := range reps {
					races += len(r.Races)
					mem += r.Detector.TotalPeakBytes
				}
			}
			b.ReportMetric(float64(races), "races")
			b.ReportMetric(float64(mem)/1024, "memKB")
		})
	}
}

// BenchmarkFigure1 measures the DJIT+ example trace of Figure 1.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := tables.Figure1(); len(out) == 0 {
			b.Fatal("empty demo")
		}
	}
}

// BenchmarkFigure2 measures the Figure 2 state-machine walkthrough.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := tables.Figure2(); len(out) == 0 {
			b.Fatal("empty demo")
		}
	}
}

// BenchmarkFigure3ReadPath measures the memoryRead instrumentation path of
// Figure 3 in isolation: one million same-epoch reads (the fast path) and
// distinct-location reads (the slow path) per granularity.
func BenchmarkFigure3ReadPath(b *testing.B) {
	for _, g := range []race.Granularity{race.Byte, race.Dynamic} {
		b.Run(g.String()+"/same-epoch", func(b *testing.B) {
			prog := race.Program{Name: "hot", Main: func(t *race.Thread) {
				for i := 0; i < b.N; i++ {
					t.Read(0x1000, 4)
				}
			}}
			race.Run(prog, race.Options{Granularity: g})
		})
		b.Run(g.String()+"/fresh-locations", func(b *testing.B) {
			prog := race.Program{Name: "cold", Main: func(t *race.Thread) {
				for i := 0; i < b.N; i++ {
					t.Read(0x1000+uint64(i)*4, 4)
				}
			}}
			race.Run(prog, race.Options{Granularity: g})
		})
	}
}

// BenchmarkFigure4Indexing measures the shadow indexing structure through
// the public API: a word-heavy sweep (sparse entries) versus a byte-access
// sweep (expanded entries).
func BenchmarkFigure4Indexing(b *testing.B) {
	b.Run("word-aligned", func(b *testing.B) {
		prog := race.Program{Name: "words", Main: func(t *race.Thread) {
			for i := 0; i < b.N; i++ {
				t.Write(0x1000+uint64(i%4096)*4, 4)
			}
		}}
		race.Run(prog, race.Options{Granularity: race.Byte})
	})
	b.Run("byte-unaligned", func(b *testing.B) {
		prog := race.Program{Name: "bytes", Main: func(t *race.Thread) {
			for i := 0; i < b.N; i++ {
				t.Write(0x1000+uint64(i%4096)*4+1, 1)
			}
		}}
		race.Run(prog, race.Options{Granularity: race.Byte})
	})
}

// pipelineBaseline records the serial (Workers=0) throughput of the last
// BenchmarkPipeline sweep so the parallel sub-benchmarks can report their
// speedup relative to it. Sub-benchmarks run in declaration order, so the
// baseline is always populated first.
var pipelineBaseline float64

// BenchmarkPipeline sweeps the sharded detection pipeline's worker count
// over the benchmark suite at dynamic granularity. Workers=0 is the serial
// detector (the baseline); each sub-benchmark reports absolute event
// throughput (Mevents/s) and its speedup over the serial run. Parallel
// speedup requires GOMAXPROCS ≥ workers+1 (the execution engine itself
// occupies one core); on a single-core runner the sweep degenerates to
// measuring transport overhead, which is itself a useful number.
func BenchmarkPipeline(b *testing.B) {
	for _, workers := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				events = 0
				for _, s := range benchSet() {
					rep := race.Run(s.Program(), race.Options{
						Granularity: race.Dynamic, Seed: 42, Workers: workers,
					})
					events += rep.Run.Events
				}
			}
			perSec := float64(events) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(perSec/1e6, "Mevents/s")
			if workers == 0 {
				pipelineBaseline = perSec
			} else if pipelineBaseline > 0 {
				b.ReportMetric(perSec/pipelineBaseline, "speedup")
			}
		})
	}
}

// telemetryBaseline records the disabled-telemetry throughput per worker
// count of the last BenchmarkTelemetryOverhead sweep so the enabled
// sub-benchmarks can report the relative overhead. Sub-benchmarks run in
// declaration order, so "disabled" always populates its entry before the
// matching "enabled" reads it.
var telemetryBaseline = map[int]float64{}

// BenchmarkTelemetryOverhead measures the cost of the telemetry layer in
// both of its states over the benchmark suite at dynamic granularity:
//
//	disabled — Options.Telemetry nil, the default. Every instrumented
//	           site still executes its nil-receiver counter call, so this
//	           sub-benchmark IS the regression guard for the "disabled is
//	           free" contract: its throughput must stay within a few
//	           percent of the pre-instrumentation BenchmarkPipeline.
//	enabled  — a live registry attached; counters, gauges and latency
//	           histograms all record.
//
// Workers=0 puts every increment on the execution thread's critical
// path; workers=2 additionally exercises the per-shard counters, the
// queue-depth gauge and the batch latency histograms.
func BenchmarkTelemetryOverhead(b *testing.B) {
	for _, workers := range []int{0, 2} {
		for _, enabled := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d/disabled", workers)
			if enabled {
				name = fmt.Sprintf("workers=%d/enabled", workers)
			}
			b.Run(name, func(b *testing.B) {
				var events uint64
				for i := 0; i < b.N; i++ {
					events = 0
					opts := race.Options{Granularity: race.Dynamic, Seed: 42, Workers: workers}
					if enabled {
						opts.Telemetry = race.NewTelemetry()
					}
					for _, s := range benchSet() {
						rep := race.Run(s.Program(), opts)
						events += rep.Run.Events
					}
				}
				perSec := float64(events) * float64(b.N) / b.Elapsed().Seconds()
				b.ReportMetric(perSec/1e6, "Mevents/s")
				if !enabled {
					telemetryBaseline[workers] = perSec
				} else if base := telemetryBaseline[workers]; base > 0 {
					b.ReportMetric(100*(base-perSec)/base, "overhead%")
				}
			})
		}
	}
}

// BenchmarkWriteGuidedReads is the ablation bench for the Section VII
// future-work extension implemented here.
func BenchmarkWriteGuidedReads(b *testing.B) {
	for _, guided := range []bool{false, true} {
		name := "plain"
		if guided {
			name = "guided"
		}
		b.Run(name, func(b *testing.B) {
			var comparisons uint64
			for i := 0; i < b.N; i++ {
				comparisons = 0
				_, reps := runAll(b, benchSet(), race.Options{
					Granularity: race.Dynamic, WriteGuidedReads: guided, Seed: 42,
				})
				for _, r := range reps {
					comparisons += r.Detector.SharingComparisons
				}
			}
			b.ReportMetric(float64(comparisons), "comparisons")
		})
	}
}

// BenchmarkWireEncodeDecode measures the remote-detection wire codec: how
// fast an event batch is framed (AppendBatchFrame) and decoded back into a
// pooled batch (ReadFrame + DecodeBatch). The encode and decode halves are
// measured separately because they run on different machines in a real
// deployment (client vs racedetectd); both report events/s and MB/s.
func BenchmarkWireEncodeDecode(b *testing.B) {
	for _, n := range []int{64, event.DefaultBatchSize, 8192} {
		batch := &event.Batch{Recs: make([]event.Rec, n)}
		for i := range batch.Recs {
			op := event.OpRead
			if i%3 == 0 {
				op = event.OpWrite
			}
			batch.Recs[i] = event.Rec{
				Op: op, Tid: vc.TID(i % 8), Addr: 0x10000 + uint64(i*8),
				Size: 4, PC: event.PC(i), Seq: uint64(i),
			}
		}
		frame := wire.AppendBatchFrame(nil, wire.Header{Session: 1}, batch)

		b.Run(fmt.Sprintf("encode/recs=%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(frame)))
			buf := make([]byte, 0, len(frame))
			for i := 0; i < b.N; i++ {
				buf = wire.AppendBatchFrame(buf[:0], wire.Header{Session: 1}, batch)
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
		})
		b.Run(fmt.Sprintf("decode/recs=%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(frame)))
			rd := bytes.NewReader(frame)
			for i := 0; i < b.N; i++ {
				rd.Reset(frame)
				_, payload, err := wire.NewReader(rd, 0).ReadFrame()
				if err != nil {
					b.Fatal(err)
				}
				got, err := wire.DecodeBatch(payload)
				if err != nil {
					b.Fatal(err)
				}
				event.PutBatch(got)
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
		})
	}
}
