// Command racedetect runs one benchmark workload under a chosen detector
// and prints the detected races and run statistics — the command-line
// face of the library, comparable to invoking the paper's PIN tool on one
// program.
//
// Usage:
//
//	racedetect -list
//	racedetect -bench ffmpeg
//	racedetect -bench x264 -tool fasttrack -granularity word -v
//	racedetect -bench ferret -workers 4   # sharded parallel detection
//	racedetect -bench dedup -tool drd -mem-limit-mb 48
//	racedetect -bench raytrace -sample   # LiteRace-style sampling front end (legacy)
//	racedetect -bench facesim -budget 5%   # always-on mode: 5% sampling budget
//	racedetect -bench histogram -elide   # drop exact in-epoch repeats at the source (lossless)
//	racedetect -bench x264 -remote localhost:7474   # stream to racedetectd
//	racedetect -bench x264 -remote localhost:7474 -codec v1   # force packed frames
//	racedetect -bench canneal -cluster host1:7474,host2:7474   # sharded detection cluster
//	racedetect -bench ferret -workers 4 -dispatch chan -batch-policy adaptive
//	racedetect -bench ffmpeg -workers 4 -metrics-addr :7070 -stats-interval 1s
//	racedetect -bench ferret -trace-out ferret-trace.json   # phase trace
//	racedetect -bench dedup -memprofile dedup.pprof -memstats  # allocation forensics
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/detector"
	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/race"
	"repro/workloads"
)

// memReport writes the heap profile (if path is non-empty) and prints a
// one-line allocator summary (if stats). Shared by racedetect and
// tracereplay via copy: the two commands keep no common package.
func memReport(path string, stats bool) {
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "racedetect:", err)
			os.Exit(1)
		}
		runtime.GC() // flush recent allocations into the profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "racedetect:", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote heap profile to %s (inspect with: go tool pprof %s)\n", path, path)
	}
	if stats {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		fmt.Fprintf(os.Stderr,
			"memstats    %d allocs, %.2f MB total, %.2f MB heap peak, %d GC cycles, %.2fms total pause\n",
			m.Mallocs, float64(m.TotalAlloc)/(1<<20), float64(m.HeapSys)/(1<<20),
			m.NumGC, float64(m.PauseTotalNs)/1e6)
	}
}

func main() {
	var (
		list    = flag.Bool("list", false, "list available benchmarks")
		bench   = flag.String("bench", "", "benchmark to run (see -list)")
		tool    = flag.String("tool", "fasttrack", "fasttrack | djit | drd | inspector | eraser")
		gran    = flag.String("granularity", "dynamic", "byte | word | dynamic (fasttrack only)")
		clock   = flag.String("clock", "general", "general | compact (fasttrack only): thread-clock representation")
		scale   = flag.Int("scale", 1, "workload scale factor")
		seed    = flag.Int64("seed", 42, "scheduler seed")
		memMB   = flag.Int64("mem-limit-mb", 0, "memory budget for drd/inspector (0 = unlimited)")
		timeout = flag.Duration("timeout", 0, "wall-time budget (0 = unlimited)")
		verbose = flag.Bool("v", false, "print each race report")
		sample  = flag.Bool("sample", false, "wrap FastTrack in a LiteRace-style sampler (legacy; see -budget)")
		budget  = flag.String("budget", "",
			"always-on sampling budget as a percentage or fraction (e.g. 5% or 0.05; 100% is a byte-identical pass-through): sample accesses down to this share of detection work, adapting to back-pressure on -workers/-remote/-cluster runs (fasttrack only)")
		elide = flag.Bool("elide", false,
			"front-line same-epoch elision: drop exact in-epoch repeat accesses at the source, before transport (lossless — verdicts are byte-identical; fasttrack only)")
		workers = flag.Int("workers", 0,
			"sharded detection workers for fasttrack (0 = serial); needs GOMAXPROCS > workers for speedup")
		remote = flag.String("remote", "",
			"stream events to a racedetectd at this address instead of detecting in-process (fasttrack only)")
		clusterList = flag.String("cluster", "",
			"comma-separated racedetectd addresses: shard accesses across the fleet and merge their reports (fasttrack only)")
		remoteSync = flag.Bool("remote-sync", false,
			"with -remote: strict-ordering synchronous streaming (each batch acknowledged before the next)")
		codec = flag.String("codec", "auto",
			"with -remote: batch codec ceiling to negotiate (auto | v1 packed | v2 columnar)")
		batchPolicy = flag.String("batch-policy", "fixed",
			"transport batch sizing: fixed | adaptive (size batches from observed back-pressure)")
		dispatch = flag.String("dispatch", "ring",
			"with -workers: router-to-worker transport (ring = lock-free SPSC | chan = channel baseline)")
		statsInterval = flag.Duration("stats-interval", 0,
			"print a one-line progress report to stderr every interval (0 disables)")
		metricsAddr = flag.String("metrics-addr", "",
			"serve live run telemetry over HTTP on this address (/metrics, /debug/vars, /debug/pprof)")
		traceOut = flag.String("trace-out", "",
			"write a Chrome trace_event JSON phase trace to this file")
		provenance = flag.Bool("provenance", false,
			"attach an explanation record to every race (both accesses, failed clock comparison, state path, recent sync edges); print with -v")
		traceSample = flag.Float64("trace-sample", 0,
			"with -remote/-cluster: distributed-trace sampling rate in [0,1] (0 disables)")
		spanOut = flag.String("span-out", "",
			"write the distributed span records as JSON to this file (implies a tracer)")
		memprofile = flag.String("memprofile", "",
			"write a heap (allocs) profile to this file on exit")
		memstats = flag.Bool("memstats", false,
			"print a one-line allocator summary to stderr on exit")
	)
	flag.Parse()

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "NAME\tTHREADS\tRACES\tDESCRIPTION")
		for _, s := range workloads.All() {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", s.Name, s.Threads, s.Races, s.Description)
		}
		tw.Flush()
		return
	}
	spec, err := workloads.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr, "use -list to see available benchmarks")
		os.Exit(2)
	}

	opts := race.Options{
		Seed: *seed, Timeout: *timeout, MemLimitBytes: *memMB << 20,
		Workers: *workers, Remote: *remote, RemoteSync: *remoteSync,
		StatsInterval: *statsInterval, MetricsAddr: *metricsAddr,
		Dispatch: *dispatch, BatchPolicy: *batchPolicy,
		Provenance: *provenance, TraceSample: *traceSample,
		Elide: *elide,
	}
	if *budget != "" {
		b, err := parseBudget(*budget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -budget %q: %v\n", *budget, err)
			os.Exit(2)
		}
		opts.Budget = b
	}
	if *clusterList != "" {
		opts.Cluster = strings.Split(*clusterList, ",")
	}
	if *remote != "" || *clusterList != "" || *codec != "auto" {
		opts.Codec = *codec // Validate rejects a forced codec without -remote/-cluster
	}
	if *traceOut != "" || *spanOut != "" {
		opts.Tracer = race.NewTracer()
	}
	switch *tool {
	case "fasttrack":
		opts.Tool = race.FastTrack
	case "djit":
		opts.Tool = race.DJITPlus
	case "drd":
		opts.Tool = race.DRD
	case "inspector":
		opts.Tool = race.InspectorXE
	case "eraser":
		opts.Tool = race.Eraser
	default:
		fmt.Fprintf(os.Stderr, "unknown tool %q\n", *tool)
		os.Exit(2)
	}
	switch *gran {
	case "byte":
		opts.Granularity = race.Byte
	case "word":
		opts.Granularity = race.Word
	case "dynamic":
		opts.Granularity = race.Dynamic
	default:
		fmt.Fprintf(os.Stderr, "unknown granularity %q\n", *gran)
		os.Exit(2)
	}
	switch *clock {
	case "general":
		opts.Clock = race.ClockGeneral
	case "compact":
		opts.Clock = race.ClockCompact
	default:
		fmt.Fprintf(os.Stderr, "unknown clock mode %q\n", *clock)
		os.Exit(2)
	}

	prog := spec.Build(*scale)
	endBase := opts.Tracer.Span("baseline")
	baseStats, baseTime := race.Baseline(prog, *seed)
	endBase()
	if *sample {
		runSampled(prog, spec, *seed, baseTime)
		memReport(*memprofile, *memstats)
		return
	}
	rep, err := race.RunE(prog, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "racedetect:", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, opts.Tracer); err != nil {
			fmt.Fprintln(os.Stderr, "racedetect:", err)
			os.Exit(1)
		}
	}
	if *spanOut != "" {
		if err := writeSpans(*spanOut, opts.Tracer); err != nil {
			fmt.Fprintln(os.Stderr, "racedetect:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("benchmark   %s (scale %d, %d threads)\n", spec.Name, *scale, rep.Run.Threads)
	fmt.Printf("tool        %v", rep.Tool)
	if rep.Tool == race.FastTrack {
		fmt.Printf(" (%v granularity)", rep.Granularity)
		if *workers > 0 {
			fmt.Printf(", %d detection workers", *workers)
		}
		if *remote != "" {
			fmt.Printf(", remote %s", *remote)
		}
		if len(opts.Cluster) > 0 {
			fmt.Printf(", cluster of %d (%s)", len(opts.Cluster), *clusterList)
		}
	}
	fmt.Println()
	fmt.Printf("accesses    %d shared accesses, %d heap ops\n",
		rep.Run.Accesses, rep.Run.Mallocs+rep.Run.Frees)
	fmt.Printf("base        %v, %.2f MB peak heap\n",
		baseTime.Round(time.Microsecond), float64(baseStats.PeakHeapBytes)/(1<<20))
	fmt.Printf("instrumented %v (slowdown %.2fx)\n",
		rep.Elapsed.Round(time.Microsecond), float64(rep.Elapsed)/float64(baseTime))
	if rep.Tool == race.FastTrack {
		d := rep.Detector
		fmt.Printf("memory      hash %.2f MB + clocks %.2f MB + bitmaps %.2f MB = %.2f MB peak\n",
			mb(d.HashPeakBytes), mb(d.VCPeakBytes), mb(d.BitmapPeakBytes), mb(d.TotalPeakBytes))
		fmt.Printf("clocks      %d peak vector clocks, avg sharing %.1f, same-epoch %.0f%%\n",
			d.MaxVectorClocks, d.AvgSharing, d.SameEpochPct())
		if opts.Clock == race.ClockCompact {
			fmt.Printf("clock mode  compact: %d structured threads, %d demotions, %.1f KB peak compact vs %.1f KB general thread clocks\n",
				d.ClockStructuredThreads, d.ClockDemotions,
				float64(d.ClockCompactPeakBytes)/1024, float64(d.ClockGeneralPeakBytes)/1024)
		}
	} else if rep.Detector.TotalPeakBytes > 0 {
		fmt.Printf("memory      %.2f MB peak\n", mb(rep.Detector.TotalPeakBytes))
	}
	switch {
	case rep.OOM:
		fmt.Println("result      ABORTED: out of memory budget")
	case rep.TimedOut:
		fmt.Println("result      ABORTED: wall-time budget exceeded")
	}
	if opts.Budget > 0 {
		d := rep.Detector
		fmt.Printf("sampling    budget %.1f%%, sampled fraction %.2f%% (%d forwarded / %d skipped, %d shed by server)\n",
			100*opts.Budget, 100*d.SampledFraction(),
			d.SampledForwarded, d.SampledSkipped, d.ShedRecords)
	}
	if opts.Elide {
		d := rep.Detector
		total := d.Accesses + d.Elided
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(d.Elided) / float64(total)
		}
		fmt.Printf("elision     %d of %d accesses elided at the source (%.2f%%)\n",
			d.Elided, total, pct)
	}
	fmt.Printf("races       %d reported (%d suppressed by module rules)\n",
		len(rep.Races), rep.Suppressed)
	if *provenance {
		explained := 0
		for _, p := range rep.Provenance {
			if p.Kind != "" {
				explained++
			}
		}
		fmt.Printf("provenance  %d/%d races explained\n", explained, len(rep.Races))
	}
	if *verbose {
		for i, x := range rep.Races {
			fmt.Printf("  %v\n", x)
			if i < len(rep.Provenance) && rep.Provenance[i].Kind != "" {
				for _, line := range strings.Split(strings.TrimRight(rep.Provenance[i].String(), "\n"), "\n") {
					fmt.Printf("    %s\n", line)
				}
			}
		}
	}
	memReport(*memprofile, *memstats)
}

// runSampled runs the benchmark under a LiteRace-style sampling wrapper
// around byte-granularity FastTrack and reports the coverage trade-off.
func runSampled(prog race.Program, spec workloads.Spec, seed int64, baseTime time.Duration) {
	under := detector.New(detector.Config{Granularity: detector.Byte})
	s := sampling.New(under, sampling.Options{})
	start := time.Now()
	sim.Run(prog, s, sim.Options{Seed: seed})
	elapsed := time.Since(start)
	forwarded, skipped := s.Counts()
	fmt.Printf("sampling    LiteRace-style, effective rate %.2f%% (%d forwarded / %d skipped)\n",
		100*s.Rate(), forwarded, skipped)
	fmt.Printf("instrumented %v (slowdown %.2fx)\n",
		elapsed.Round(time.Microsecond), float64(elapsed)/float64(baseTime))
	fmt.Printf("races       %d of %d genuine races found at this rate\n",
		len(under.Races()), spec.Races)
	for _, r := range under.Races() {
		fmt.Printf("  %v\n", r)
	}
}

// writeTrace dumps the run's phase trace as Chrome trace_event JSON
// (open in chrome://tracing, Perfetto, or speedscope).
func writeTrace(path string, tr *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSpans dumps the run's distributed span records as a JSON span file
// (read back with `racectl spans`).
func writeSpans(path string, tr *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteSpansJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseBudget parses a sampling budget given as a percentage ("5%") or a
// fraction ("0.05"). Shared by racedetect and tracereplay via copy.
func parseBudget(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if p, ok := strings.CutSuffix(s, "%"); ok {
		v, err := strconv.ParseFloat(p, 64)
		return v / 100, err
	}
	return strconv.ParseFloat(s, 64)
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
