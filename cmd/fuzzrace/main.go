// Command fuzzrace generates random multithreaded programs and
// cross-checks the detectors against each other — the standalone face of
// the internal/progfuzz property harness. It reports any seed where:
//
//   - a happens-before detector reports a race on a race-free program;
//   - a detector reports a race at a non-racy variable;
//   - FastTrack (byte) and DJIT+ disagree on which variables race;
//   - dynamic granularity disagrees with byte granularity on spaced
//     variables.
//
// Usage:
//
//	fuzzrace -n 200
//	fuzzrace -n 50 -threads 6 -racy 4 -ops 500 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/detector"
	"repro/internal/djit"
	"repro/internal/progfuzz"
	"repro/internal/segment"
	"repro/internal/sim"
)

func main() {
	var (
		n       = flag.Int("n", 100, "number of random programs per mode")
		threads = flag.Int("threads", 4, "worker threads per program")
		locked  = flag.Int("locked", 6, "lock-protected variables")
		private = flag.Int("private", 3, "thread-private variables per thread")
		racy    = flag.Int("racy", 3, "racy variables (racy mode)")
		ops     = flag.Int("ops", 300, "accesses per thread")
		verbose = flag.Bool("v", false, "print every seed's outcome")
	)
	flag.Parse()

	failures := 0
	report := func(seed int64, f string, args ...any) {
		failures++
		fmt.Printf("seed %d: %s\n", seed, fmt.Sprintf(f, args...))
	}

	for seed := int64(0); seed < int64(*n); seed++ {
		base := progfuzz.Config{
			Threads: *threads, LockedVars: *locked, PrivateVars: *private,
			OpsPerThread: *ops, Barriers: seed%2 == 0, Seed: seed,
		}

		// Mode 1: race-free programs — silence expected everywhere.
		prog, _ := progfuzz.Generate(base)
		for _, g := range []detector.Granularity{detector.Byte, detector.Dynamic} {
			d := detector.New(detector.Config{Granularity: g})
			sim.Run(prog, d, sim.Options{Seed: seed})
			if len(d.Races()) != 0 {
				report(seed, "false alarm at %v granularity: %v", g, d.Races()[0])
			}
		}
		sg := segment.New(segment.Options{})
		sim.Run(prog, sg, sim.Options{Seed: seed})
		if len(sg.Races()) != 0 {
			report(seed, "segment detector false alarm: %+v", sg.Races()[0])
		}

		// Mode 2: racy programs — agreement expected.
		cfg := base
		cfg.RacyVars = *racy
		prog, lay := progfuzz.Generate(cfg)
		isRacy := map[uint64]bool{}
		for _, a := range lay.RacyAddrs {
			isRacy[a] = true
		}
		varsOf := func(addrs []uint64) map[uint64]bool {
			m := map[uint64]bool{}
			for _, a := range addrs {
				m[a&^(progfuzz.VarSpacing-1)] = true
			}
			return m
		}

		ft := detector.New(detector.Config{Granularity: detector.Byte})
		sim.Run(prog, ft, sim.Options{Seed: seed})
		var ftAddrs []uint64
		for _, r := range ft.Races() {
			ftAddrs = append(ftAddrs, r.Addr)
		}
		dyn := detector.New(detector.Config{Granularity: detector.Dynamic})
		sim.Run(prog, dyn, sim.Options{Seed: seed})
		var dynAddrs []uint64
		for _, r := range dyn.Races() {
			dynAddrs = append(dynAddrs, r.Addr)
		}
		dj := djit.New(djit.Options{Granule: 4})
		sim.Run(prog, dj, sim.Options{Seed: seed})
		var djAddrs []uint64
		for _, r := range dj.Races() {
			djAddrs = append(djAddrs, r.Addr)
		}

		ftv, dynv, djv := varsOf(ftAddrs), varsOf(dynAddrs), varsOf(djAddrs)
		for v := range ftv {
			if !isRacy[v] {
				report(seed, "fasttrack flagged non-racy %#x", v)
			}
			if !djv[v] {
				report(seed, "fasttrack flagged %#x, djit+ did not", v)
			}
			if !dynv[v] {
				report(seed, "byte flagged %#x, dynamic did not", v)
			}
		}
		for v := range djv {
			if !ftv[v] {
				report(seed, "djit+ flagged %#x, fasttrack did not", v)
			}
		}
		for v := range dynv {
			if !ftv[v] {
				report(seed, "dynamic flagged %#x, byte did not", v)
			}
		}

		if *verbose {
			fmt.Printf("seed %4d: %d racy vars, %d flagged — ok\n",
				seed, len(lay.RacyAddrs), len(ftv))
		}
	}

	if failures > 0 {
		fmt.Printf("%d disagreement(s) across %d seeds\n", failures, *n)
		os.Exit(1)
	}
	fmt.Printf("all detectors agree across %d seeds × 2 modes\n", *n)
}
