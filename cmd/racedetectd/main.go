// Command racedetectd is the remote detection service: a long-lived TCP
// server that accepts wire-protocol event streams from instrumented
// producers (race.Options.Remote, racedetect -remote, tracereplay
// -remote), runs one sharded detection pipeline per session, and returns
// each session's race report when the producer closes its stream.
//
// An HTTP sidecar exposes /healthz, /metrics (Prometheus text format:
// sessions, batches, events, queue depth, races found, plus every live
// session's session-labeled pipeline and detector series), /sessions (JSON
// introspection of live sessions), and /debug/vars (expvar-style JSON).
//
// Usage:
//
//	racedetectd                              # listen on :7474, sidecar on :7475
//	racedetectd -listen :9000 -http :9001
//	racedetectd -max-sessions 128 -workers-per-session 8 -read-timeout 1m
//	racedetectd -http ""                     # disable the sidecar
//
// SIGINT/SIGTERM drain gracefully: the listener closes, live sessions are
// given -drain-timeout to finish, then connections are force-closed (and
// their pipelines reclaimed) before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// version reports the binary's module version from the embedded build
// info, or "devel" for a plain `go build` of a dirty tree.
func version() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

func main() {
	var (
		listen      = flag.String("listen", ":7474", "TCP address for the wire protocol")
		httpAddr    = flag.String("http", ":7475", `HTTP sidecar address for /healthz and /metrics ("" disables)`)
		maxSessions = flag.Int("max-sessions", 64, "maximum concurrently open sessions")
		maxFrameKB  = flag.Int("max-frame-kb", 1024, "maximum frame payload in KiB")
		readTimeout = flag.Duration("read-timeout", 30*time.Second, "per-frame read deadline")
		window      = flag.Int("window", 64, "maximum granted in-flight batch window per session")
		workersPer  = flag.Int("workers-per-session", 4, "detection shard cap per session")
		maxCodec    = flag.String("max-codec", "v2", "highest batch codec to grant (v1 packed | v2 columnar)")
		linger      = flag.Duration("session-linger", 10*time.Second, "how long a disconnected session stays resumable")
		drainT      = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
		quiet       = flag.Bool("q", false, "suppress per-session log lines")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "racedetectd: ", log.LstdFlags)
	codecCeiling, ok := map[string]int{"v1": wire.CodecPacked, "v2": wire.CodecColumnar}[*maxCodec]
	if !ok {
		logger.Fatalf("unknown -max-codec %q (want v1 or v2)", *maxCodec)
	}
	opts := server.Options{
		MaxSessions:   *maxSessions,
		MaxFrameBytes: uint32(*maxFrameKB) << 10,
		ReadTimeout:   *readTimeout,
		Window:        *window,
		MaxWorkers:    *workersPer,
		MaxCodec:      codecCeiling,
		SessionLinger: *linger,
	}
	if !*quiet {
		opts.Logf = logger.Printf
	}
	srv := server.New(opts)

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatal(err)
	}
	// One structured startup line: everything an operator needs to know
	// about this instance's configuration, in key=value form.
	logger.Printf("start listen=%s http=%q version=%s go=%s pid=%d max_sessions=%d workers_per_session=%d "+
		"max_frame_kb=%d window=%d max_codec=%s read_timeout=%v session_linger=%v drain_timeout=%v",
		l.Addr(), *httpAddr, version(), runtime.Version(), os.Getpid(),
		*maxSessions, *workersPer, *maxFrameKB, *window, *maxCodec, *readTimeout, *linger, *drainT)

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.HTTPHandler()}
		go func() {
			logger.Printf("sidecar on %s (/healthz, /metrics, /sessions, /debug/vars)", *httpAddr)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("sidecar: %v", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Printf("%v: draining (budget %v)", s, *drainT)
	case err := <-serveErr:
		if err != nil && err != server.ErrServerClosed {
			logger.Fatal(err)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	if httpSrv != nil {
		httpSrv.Shutdown(context.Background())
	}
	if drainErr != nil {
		logger.Printf("forced close after drain budget: %v", drainErr)
		fmt.Fprintln(os.Stderr, "racedetectd: unclean drain")
		os.Exit(1)
	}
	logger.Printf("clean drain, bye")
}
