// Command racedetectd is the remote detection service: a long-lived TCP
// server that accepts wire-protocol event streams from instrumented
// producers (race.Options.Remote, racedetect -remote, tracereplay
// -remote), runs one sharded detection pipeline per session, and returns
// each session's race report when the producer closes its stream.
//
// An HTTP sidecar exposes /healthz, /metrics (Prometheus text format:
// sessions, batches, events, queue depth, races found, plus every live
// session's session-labeled pipeline and detector series), /sessions (JSON
// introspection of live sessions), and /debug/vars (expvar-style JSON).
//
// Usage:
//
//	racedetectd                              # listen on :7474, sidecar on :7475
//	racedetectd -listen :9000 -http :9001
//	racedetectd -max-sessions 128 -workers-per-session 8 -read-timeout 1m
//	racedetectd -http ""                     # disable the sidecar
//
// SIGINT/SIGTERM drain gracefully: the listener closes, live sessions are
// given -drain-timeout to finish, then connections are force-closed (and
// their pipelines reclaimed) before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

func main() {
	var (
		listen      = flag.String("listen", ":7474", "TCP address for the wire protocol")
		httpAddr    = flag.String("http", ":7475", `HTTP sidecar address for /healthz and /metrics ("" disables)`)
		maxSessions = flag.Int("max-sessions", 64, "maximum concurrently open sessions")
		maxFrameKB  = flag.Int("max-frame-kb", 1024, "maximum frame payload in KiB")
		readTimeout = flag.Duration("read-timeout", 30*time.Second, "per-frame read deadline")
		window      = flag.Int("window", 64, "maximum granted in-flight batch window per session")
		workersPer  = flag.Int("workers-per-session", 4, "detection shard cap per session")
		maxCodec    = flag.String("max-codec", "v2", "highest batch codec to grant (v1 packed | v2 columnar)")
		linger      = flag.Duration("session-linger", 10*time.Second, "how long a disconnected session stays resumable")
		drainT      = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
		quiet       = flag.Bool("q", false, "suppress per-session log lines")
		logFormat   = flag.String("log-format", "text", "structured log output: text | json")
		traceSample = flag.Float64("trace-sample", 1,
			"distributed-tracing grant: 0 refuses every session's Hello.Trace (clients pick the actual sampling rate)")
		shedHigh = flag.Float64("shed-high", 0,
			"load shedding: start dropping hot-site access records when a session's worker-queue occupancy reaches this fraction (0 disables; sync is never shed)")
		shedLow = flag.Float64("shed-low", 0,
			"load shedding: stop once occupancy falls below this fraction (default half of -shed-high)")
		shedHot = flag.Uint("shed-hot-site", 64,
			"load shedding: accesses a code site must show before its records become sheddable")
		provGrant = flag.Bool("provenance", true,
			"grant race-provenance flight recorders to sessions that request them (-provenance=false refuses)")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "racedetectd: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	codecCeiling, ok := map[string]int{"v1": wire.CodecPacked, "v2": wire.CodecColumnar}[*maxCodec]
	if !ok {
		fatal("unknown -max-codec (want v1 or v2)", "max_codec", *maxCodec)
	}
	opts := server.Options{
		MaxSessions:   *maxSessions,
		MaxFrameBytes: uint32(*maxFrameKB) << 10,
		ReadTimeout:   *readTimeout,
		Window:        *window,
		MaxWorkers:    *workersPer,
		MaxCodec:      codecCeiling,
		SessionLinger: *linger,
		NoTrace:       *traceSample <= 0,
		NoProvenance:  !*provGrant,
		ShedHighWater: *shedHigh,
		ShedLowWater:  *shedLow,
		ShedHotSite:   uint32(*shedHot),
	}
	if !*quiet {
		opts.Logger = logger
	}
	srv := server.New(opts)

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("listen failed", "addr", *listen, "err", err)
	}
	// One structured startup record: everything an operator needs to know
	// about this instance's configuration.
	logger.Info("start",
		"listen", l.Addr().String(), "http", *httpAddr,
		"version", telemetry.BuildVersion(), "go", runtime.Version(), "pid", os.Getpid(),
		"max_sessions", *maxSessions, "workers_per_session", *workersPer,
		"max_frame_kb", *maxFrameKB, "window", *window, "max_codec", *maxCodec,
		"read_timeout", *readTimeout, "session_linger", *linger, "drain_timeout", *drainT,
		"trace", !opts.NoTrace, "provenance", !opts.NoProvenance)

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.HTTPHandler()}
		go func() {
			logger.Info("sidecar up", "addr", *httpAddr,
				"endpoints", "/healthz /metrics /sessions /debug/vars /debug/provenance /debug/spans")
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Warn("sidecar failed", "err", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("draining", "signal", s.String(), "budget", *drainT)
	case err := <-serveErr:
		if err != nil && err != server.ErrServerClosed {
			fatal("serve failed", "err", err)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	if httpSrv != nil {
		httpSrv.Shutdown(context.Background())
	}
	if drainErr != nil {
		logger.Error("forced close after drain budget", "err", drainErr)
		fmt.Fprintln(os.Stderr, "racedetectd: unclean drain")
		os.Exit(1)
	}
	logger.Info("clean drain, bye")
}
