// Command tracereplay records a benchmark's instrumentation event stream
// to a compact binary trace and replays traces into any detector — the
// record/replay workflow of RecPlay (Section VI related work), useful for
// analyzing one execution under many detector configurations without
// re-running the program.
//
// Usage:
//
//	tracereplay -record -bench ferret -out ferret.trace
//	tracereplay -replay ferret.trace -tool fasttrack -granularity dynamic
//	tracereplay -replay ferret.trace -tool drd
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/detector"
	"repro/internal/segment"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/workloads"
)

func main() {
	var (
		record = flag.Bool("record", false, "record a benchmark trace")
		replay = flag.String("replay", "", "trace file to replay")
		bench  = flag.String("bench", "", "benchmark to record (see racedetect -list)")
		out    = flag.String("out", "out.trace", "output trace file")
		scale  = flag.Int("scale", 1, "workload scale when recording")
		seed   = flag.Int64("seed", 42, "scheduler seed when recording")
		tool   = flag.String("tool", "fasttrack", "replay tool: fasttrack | drd")
		gran   = flag.String("granularity", "dynamic", "byte | word | dynamic")
		v      = flag.Bool("v", false, "print each race")
	)
	flag.Parse()

	switch {
	case *record:
		spec, err := workloads.ByName(*bench)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		rec := trace.NewRecorder(f)
		st := sim.Run(spec.Build(*scale), rec, sim.Options{Seed: *seed})
		if err := rec.Close(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		info, _ := os.Stat(*out)
		fmt.Printf("recorded %d events (%d accesses) to %s (%d bytes, %.2f B/event)\n",
			rec.Events(), st.Accesses, *out, info.Size(),
			float64(info.Size())/float64(rec.Events()))

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		start := time.Now()
		switch *tool {
		case "fasttrack":
			g := map[string]detector.Granularity{
				"byte": detector.Byte, "word": detector.Word, "dynamic": detector.Dynamic,
			}[*gran]
			d := detector.New(detector.Config{Granularity: g})
			if err := trace.Replay(f, d); err != nil {
				fatal(err)
			}
			st := d.Stats()
			fmt.Printf("fasttrack/%s over %d accesses in %v: %d races, %d peak clocks, %.2f MB peak\n",
				*gran, st.Accesses, time.Since(start).Round(time.Microsecond),
				len(d.Races()), st.Plane.NodesPeak, float64(st.TotalPeakBytes)/(1<<20))
			if *v {
				for _, r := range d.Races() {
					fmt.Printf("  %v\n", r)
				}
			}
		case "drd":
			d := segment.New(segment.Options{})
			if err := trace.Replay(f, d); err != nil {
				fatal(err)
			}
			fmt.Printf("drd replay in %v: %d races, %.2f MB peak\n",
				time.Since(start).Round(time.Microsecond),
				len(d.Races()), float64(d.PeakBytes())/(1<<20))
		default:
			fatal(fmt.Errorf("unknown replay tool %q", *tool))
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracereplay:", err)
	os.Exit(1)
}
