// Command tracereplay records a benchmark's instrumentation event stream
// to a compact binary trace and replays traces into any detector — the
// record/replay workflow of RecPlay (Section VI related work), useful for
// analyzing one execution under many detector configurations without
// re-running the program.
//
// Usage:
//
//	tracereplay -record -bench ferret -out ferret.trace
//	tracereplay -replay ferret.trace -tool fasttrack -granularity dynamic
//	tracereplay -replay ferret.trace -tool drd
//	tracereplay -replay ferret.trace -remote localhost:7474
//
// With -remote the recorded stream is not detected in-process: it is
// streamed to a racedetectd detection service and the server's report is
// printed, so one recorded execution can be analyzed on a different
// machine (or by a long-lived service) without re-running the program.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/detector"
	"repro/internal/segment"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/workloads"
)

func main() {
	var (
		record = flag.Bool("record", false, "record a benchmark trace")
		replay = flag.String("replay", "", "trace file to replay")
		bench  = flag.String("bench", "", "benchmark to record (see racedetect -list)")
		out    = flag.String("out", "out.trace", "output trace file")
		scale  = flag.Int("scale", 1, "workload scale when recording")
		seed   = flag.Int64("seed", 42, "scheduler seed when recording")
		tool   = flag.String("tool", "fasttrack", "replay tool: fasttrack | drd")
		gran   = flag.String("granularity", "dynamic", "byte | word | dynamic")
		v      = flag.Bool("v", false, "print each race")
		remote = flag.String("remote", "",
			"replay into a racedetectd at this address instead of an in-process detector")
		workers = flag.Int("workers", 0,
			"with -remote: detection workers to request from the server (0 = server default)")
	)
	flag.Parse()

	switch {
	case *record:
		spec, err := workloads.ByName(*bench)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		rec := trace.NewRecorder(f)
		st := sim.Run(spec.Build(*scale), rec, sim.Options{Seed: *seed})
		if err := rec.Close(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		info, _ := os.Stat(*out)
		fmt.Printf("recorded %d events (%d accesses) to %s (%d bytes, %.2f B/event)\n",
			rec.Events(), st.Accesses, *out, info.Size(),
			float64(info.Size())/float64(rec.Events()))

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		start := time.Now()
		if *remote != "" {
			replayRemote(f, *remote, *gran, *workers, *v, start)
			return
		}
		switch *tool {
		case "fasttrack":
			g := map[string]detector.Granularity{
				"byte": detector.Byte, "word": detector.Word, "dynamic": detector.Dynamic,
			}[*gran]
			d := detector.New(detector.Config{Granularity: g})
			if err := trace.Replay(f, d); err != nil {
				fatal(err)
			}
			st := d.Stats()
			fmt.Printf("fasttrack/%s over %d accesses in %v: %d races, %d peak clocks, %.2f MB peak\n",
				*gran, st.Accesses, time.Since(start).Round(time.Microsecond),
				len(d.Races()), st.Plane.NodesPeak, float64(st.TotalPeakBytes)/(1<<20))
			if *v {
				for _, r := range d.Races() {
					fmt.Printf("  %v\n", r)
				}
			}
		case "drd":
			d := segment.New(segment.Options{})
			if err := trace.Replay(f, d); err != nil {
				fatal(err)
			}
			fmt.Printf("drd replay in %v: %d races, %.2f MB peak\n",
				time.Since(start).Round(time.Microsecond),
				len(d.Races()), float64(d.PeakBytes())/(1<<20))
		default:
			fatal(fmt.Errorf("unknown replay tool %q", *tool))
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// replayRemote streams a recorded trace to a racedetectd and prints the
// service's report.
func replayRemote(f *os.File, addr, gran string, workers int, verbose bool, start time.Time) {
	g, ok := map[string]detector.Granularity{
		"byte": detector.Byte, "word": detector.Word, "dynamic": detector.Dynamic,
	}[gran]
	if !ok {
		fatal(fmt.Errorf("unknown granularity %q", gran))
	}
	cl, err := client.Dial(client.Options{
		Addr:  addr,
		Hello: wire.Hello{Granularity: uint8(g), Workers: workers},
	})
	if err != nil {
		fatal(err)
	}
	if err := trace.Replay(f, cl); err != nil {
		fatal(err)
	}
	rep, err := cl.Close()
	if err != nil {
		fatal(err)
	}
	st := cl.Stats()
	fmt.Printf("remote fasttrack/%s over %d accesses in %v: %d races, %d peak clocks, %.2f MB peak\n",
		gran, rep.Stats.Accesses, time.Since(start).Round(time.Microsecond),
		len(rep.Races), rep.Stats.NodesPeak, float64(rep.Stats.TotalPeakBytes)/(1<<20))
	fmt.Printf("transport   %d batches, %d events to %s\n", st.Batches, st.Events, addr)
	if verbose {
		for _, r := range rep.DetectorRaces() {
			fmt.Printf("  %v\n", r)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracereplay:", err)
	os.Exit(1)
}
