// Command tracereplay records a benchmark's instrumentation event stream
// to a compact binary trace and replays traces into any detector — the
// record/replay workflow of RecPlay (Section VI related work), useful for
// analyzing one execution under many detector configurations without
// re-running the program.
//
// Usage:
//
//	tracereplay -record -bench ferret -out ferret.trace
//	tracereplay -replay ferret.trace -tool fasttrack -granularity dynamic
//	tracereplay -replay ferret.trace -tool drd
//	tracereplay -replay ferret.trace -remote localhost:7474
//	tracereplay -replay ferret.trace -budget 5%          # budgeted sampling lane
//	tracereplay -replay ferret.trace -elide              # lossless same-epoch elision
//	tracereplay -replay ferret.trace -cluster host1:7474,host2:7474
//	tracereplay -replay ferret.trace -metrics-addr :7070 -stats-interval 1s
//	tracereplay -record -bench ferret -out ferret.trace -trace-out phases.json
//	tracereplay -replay ferret.trace -memprofile replay.pprof -memstats
//
// With -remote the recorded stream is not detected in-process: it is
// streamed to a racedetectd detection service and the server's report is
// printed, so one recorded execution can be analyzed on a different
// machine (or by a long-lived service) without re-running the program.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/sampling"
	"repro/internal/segment"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/workloads"
)

func main() {
	var (
		record = flag.Bool("record", false, "record a benchmark trace")
		replay = flag.String("replay", "", "trace file to replay")
		bench  = flag.String("bench", "", "benchmark to record (see racedetect -list)")
		out    = flag.String("out", "out.trace", "output trace file")
		scale  = flag.Int("scale", 1, "workload scale when recording")
		seed   = flag.Int64("seed", 42, "scheduler seed when recording")
		tool   = flag.String("tool", "fasttrack", "replay tool: fasttrack | drd")
		gran   = flag.String("granularity", "dynamic", "byte | word | dynamic")
		v      = flag.Bool("v", false, "print each race")
		remote = flag.String("remote", "",
			"replay into a racedetectd at this address instead of an in-process detector")
		clusterList = flag.String("cluster", "",
			"comma-separated racedetectd addresses: replay sharded across the fleet and merge their reports")
		workers = flag.Int("workers", 0,
			"with -remote: detection workers to request from the server (0 = server default)")
		codec = flag.String("codec", "auto",
			"with -remote: batch codec ceiling to negotiate (auto | v1 packed | v2 columnar)")
		batchPolicy = flag.String("batch-policy", "fixed",
			"with -remote: transport batch sizing (fixed | adaptive)")
		statsInterval = flag.Duration("stats-interval", 0,
			"print a one-line progress report to stderr every interval (0 disables)")
		metricsAddr = flag.String("metrics-addr", "",
			"serve live replay telemetry over HTTP on this address (/metrics, /debug/vars, /debug/pprof)")
		traceOut = flag.String("trace-out", "",
			"write a Chrome trace_event JSON phase trace to this file")
		provenance = flag.Bool("provenance", false,
			"attach an explanation record to every race (fasttrack replays; works in-process, -remote and -cluster)")
		traceSample = flag.Float64("trace-sample", 0,
			"with -remote/-cluster: distributed-trace sampling rate in [0,1] (0 disables)")
		spanOut = flag.String("span-out", "",
			"write the distributed span records as JSON to this file (implies a tracer)")
		memprofile = flag.String("memprofile", "",
			"write a heap (allocs) profile to this file on exit")
		memstats = flag.Bool("memstats", false,
			"print a one-line allocator summary to stderr on exit")
		budget = flag.String("budget", "",
			`replay through the budgeted sampling lane at this access budget ("5%" or 0.05; fasttrack replays only)`)
		elide = flag.Bool("elide", false,
			"front-line same-epoch elision: drop exact in-epoch repeat accesses before detection/transport (lossless; fasttrack replays only)")
	)
	flag.Parse()
	budgetFrac := 0.0
	if *budget != "" {
		b, err := parseBudget(*budget)
		if err != nil || b < 0 || b > 1 {
			fatal(fmt.Errorf("bad -budget %q (want a percentage like 5%% or a fraction in (0,1])", *budget))
		}
		budgetFrac = b
	}
	defer memReport(*memprofile, *memstats)

	obs, err := startObs(*metricsAddr, *statsInterval)
	if err != nil {
		fatal(err)
	}
	defer obs.stop()
	var tracer *telemetry.Tracer
	if *traceOut != "" || *spanOut != "" {
		tracer = telemetry.NewTracer()
	}
	if *traceOut != "" {
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			if err := tracer.WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	if *spanOut != "" {
		defer func() {
			f, err := os.Create(*spanOut)
			if err != nil {
				fatal(err)
			}
			if err := tracer.WriteSpansJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	switch {
	case *record:
		spec, err := workloads.ByName(*bench)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		rec := trace.NewRecorder(f)
		endRecord := tracer.Span("record", map[string]any{"bench": spec.Name})
		st := sim.Run(spec.Build(*scale), rec, sim.Options{Seed: *seed})
		endRecord()
		if err := rec.Close(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		info, _ := os.Stat(*out)
		fmt.Printf("recorded %d events (%d accesses) to %s (%d bytes, %.2f B/event)\n",
			rec.Events(), st.Accesses, *out, info.Size(),
			float64(info.Size())/float64(rec.Events()))

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		start := time.Now()
		knobs := streamKnobs{prov: *provenance, traceSample: *traceSample, tracer: tracer, budget: budgetFrac, elide: *elide}
		if *clusterList != "" {
			endReplay := tracer.Span("replay-cluster", map[string]any{"cluster": *clusterList})
			replayCluster(f, strings.Split(*clusterList, ","), *gran, *codec, *batchPolicy, *workers, *v, start, obs.reg, knobs)
			endReplay()
			return
		}
		if *remote != "" {
			endReplay := tracer.Span("replay-remote", map[string]any{"addr": *remote})
			replayRemote(f, *remote, *gran, *codec, *batchPolicy, *workers, *v, start, obs.reg, knobs)
			endReplay()
			return
		}
		switch *tool {
		case "fasttrack":
			g := map[string]detector.Granularity{
				"byte": detector.Byte, "word": detector.Word, "dynamic": detector.Dynamic,
			}[*gran]
			cfg := detector.Config{Granularity: g, Provenance: *provenance}
			if obs.reg != nil {
				cfg.Metrics = detector.NewMetrics(obs.reg)
			}
			d := detector.New(cfg)
			// The budgeted lane wraps the detector: same trace, a fraction of
			// the accesses, the full synchronization skeleton.
			var sink event.Sink = d
			var smp *sampling.Detector
			if budgetFrac > 0 && budgetFrac < 1 {
				smp = sampling.New(d, sampling.Options{
					RatePermille: uint32(budgetFrac*1000 + 0.5),
					Telemetry:    obs.reg,
				})
				sink = smp
			}
			var el *event.Elider
			if *elide {
				el = event.NewElider(sink, event.EliderOptions{Telemetry: obs.reg})
				sink = el
			}
			endReplay := tracer.Span("replay", map[string]any{"tool": "fasttrack", "granularity": *gran})
			err := trace.Replay(f, sink)
			endReplay()
			if err != nil {
				fatal(err)
			}
			st := d.Stats()
			fmt.Printf("fasttrack/%s over %d accesses in %v: %d races, %d peak clocks, %.2f MB peak\n",
				*gran, st.Accesses, time.Since(start).Round(time.Microsecond),
				len(d.Races()), st.Plane.NodesPeak, float64(st.TotalPeakBytes)/(1<<20))
			if smp != nil {
				printSamplingSummary(budgetFrac, smp)
			}
			if el != nil {
				printElideSummary(el, st.Accesses)
			}
			if *provenance {
				printProvSummary(d.Provs(), len(d.Races()))
			}
			if *v {
				printRaces(d.Races(), d.Provs())
			}
		case "drd":
			if budgetFrac > 0 && budgetFrac < 1 {
				fatal(fmt.Errorf("-budget requires -tool fasttrack (drd's segment reuse assumes the full stream)"))
			}
			if *elide {
				fatal(fmt.Errorf("-elide requires -tool fasttrack (the elision proof holds for the epoch-bitmap fast path only)"))
			}
			d := segment.New(segment.Options{})
			endReplay := tracer.Span("replay", map[string]any{"tool": "drd"})
			err := trace.Replay(f, d)
			endReplay()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("drd replay in %v: %d races, %.2f MB peak\n",
				time.Since(start).Round(time.Microsecond),
				len(d.Races()), float64(d.PeakBytes())/(1<<20))
		default:
			fatal(fmt.Errorf("unknown replay tool %q", *tool))
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// parseStreamOpts maps the shared -granularity/-codec/-batch-policy flag
// values for the remote and cluster replay paths, exiting on bad input.
func parseStreamOpts(gran, codec, batchPolicy string) (detector.Granularity, int, *event.BatchPolicy) {
	g, ok := map[string]detector.Granularity{
		"byte": detector.Byte, "word": detector.Word, "dynamic": detector.Dynamic,
	}[gran]
	if !ok {
		fatal(fmt.Errorf("unknown granularity %q", gran))
	}
	reqCodec, ok := map[string]int{
		"auto": 0, "": 0, "v1": wire.CodecPacked, "v2": wire.CodecColumnar,
	}[codec]
	if !ok {
		fatal(fmt.Errorf("unknown codec %q (want auto, v1 or v2)", codec))
	}
	var policy *event.BatchPolicy
	switch batchPolicy {
	case "adaptive":
		policy = new(event.BatchPolicy)
	case "", "fixed":
	default:
		fatal(fmt.Errorf("unknown batch policy %q (want fixed or adaptive)", batchPolicy))
	}
	return g, reqCodec, policy
}

// streamKnobs bundles the observability knobs the remote and cluster
// replay paths share: provenance negotiation, distributed-trace sampling,
// and the span/trace recorder.
type streamKnobs struct {
	prov        bool
	traceSample float64
	tracer      *telemetry.Tracer
	budget      float64 // sampling budget in (0,1); 0 or 1 disables the lane
	elide       bool    // front-line same-epoch elision before the transport
}

// elideLane wraps a transport sink in the front-line same-epoch filter
// when -elide is set; returns the sink unchanged (and nil) otherwise.
func elideLane(sink event.Sink, on bool, reg *telemetry.Registry) (event.Sink, *event.Elider) {
	if !on {
		return sink, nil
	}
	el := event.NewElider(sink, event.EliderOptions{Telemetry: reg})
	return el, el
}

// printElideSummary prints the front-line filter's one-line outcome.
// detected is the access count that reached detection (Stats.Accesses).
func printElideSummary(el *event.Elider, detected uint64) {
	elided := el.Elided()
	total := detected + elided
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(elided) / float64(total)
	}
	fmt.Printf("elision     %d of %d accesses elided at the source (%.2f%%)\n", elided, total, pct)
}

// samplingController builds the feedback controller for a budgeted
// remote/cluster replay, or nil when the budget is off (0) or exhaustive
// (1). Created before the transport dials so the transport can feed it
// back-pressure signals; bound to the sampler by samplingLane after.
func samplingController(budget float64) *sampling.Controller {
	if budget <= 0 || budget >= 1 {
		return nil
	}
	return sampling.NewController(budget)
}

// samplingLane wraps a transport sink in the budgeted sampler and binds
// the controller (when one was created) so back-pressure steers the
// rate. Returns the sink unchanged when the budget is off or exhaustive.
func samplingLane(sink event.Sink, budget float64, ctrl *sampling.Controller, reg *telemetry.Registry) (event.Sink, *sampling.Detector) {
	if budget <= 0 || budget >= 1 {
		return sink, nil
	}
	smp := sampling.New(sink, sampling.Options{
		RatePermille: uint32(budget*1000 + 0.5),
		Telemetry:    reg,
	})
	if ctrl != nil {
		ctrl.Bind(smp)
	}
	return smp, smp
}

// printSamplingSummary prints the budgeted lane's one-line outcome.
func printSamplingSummary(budget float64, smp *sampling.Detector) {
	forwarded, skipped := smp.Counts()
	fmt.Printf("sampling    budget %.1f%%, sampled fraction %.2f%% (%d forwarded / %d skipped)\n",
		100*budget, 100*smp.Rate(), forwarded, skipped)
}

// printProvSummary prints the explained-race tally front-ends and CI grep.
func printProvSummary(provs []detector.Provenance, races int) {
	explained := 0
	for _, p := range provs {
		if p.Kind != "" {
			explained++
		}
	}
	fmt.Printf("provenance  %d/%d races explained\n", explained, races)
}

// printRaces prints each race (and, when present, its indented
// provenance explanation).
func printRaces(races []detector.Race, provs []detector.Provenance) {
	for i, r := range races {
		fmt.Printf("  %v\n", r)
		if i < len(provs) && provs[i].Kind != "" {
			for _, line := range strings.Split(strings.TrimRight(provs[i].String(), "\n"), "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
	}
}

// replayRemote streams a recorded trace to a racedetectd and prints the
// service's report. reg, when non-nil, receives the client's wire metrics
// (client_batches_total, client_encode_ns, …) for the -metrics-addr page.
func replayRemote(f *os.File, addr, gran, codec, batchPolicy string, workers int, verbose bool, start time.Time, reg *telemetry.Registry, knobs streamKnobs) {
	g, reqCodec, policy := parseStreamOpts(gran, codec, batchPolicy)
	ctrl := samplingController(knobs.budget)
	clOpts := client.Options{
		Addr:        addr,
		Telemetry:   reg,
		Codec:       reqCodec,
		BatchPolicy: policy,
		TraceSample: knobs.traceSample,
		Tracer:      knobs.tracer,
		Hello:       wire.Hello{Granularity: uint8(g), Workers: workers, Provenance: knobs.prov},
	}
	if ctrl != nil {
		clOpts.Backpressure = ctrl
	}
	cl, err := client.Dial(clOpts)
	if err != nil {
		fatal(err)
	}
	sink, smp := samplingLane(event.Sink(cl), knobs.budget, ctrl, reg)
	sink, el := elideLane(sink, knobs.elide, reg)
	if err := trace.Replay(f, sink); err != nil {
		fatal(err)
	}
	rep, err := cl.Close()
	if err != nil {
		fatal(err)
	}
	st := cl.Stats()
	fmt.Printf("remote fasttrack/%s over %d accesses in %v: %d races, %d peak clocks, %.2f MB peak\n",
		gran, rep.Stats.Accesses, time.Since(start).Round(time.Microsecond),
		len(rep.Races), rep.Stats.NodesPeak, float64(rep.Stats.TotalPeakBytes)/(1<<20))
	fmt.Printf("transport   %d batches, %d events, %d payload bytes to %s (codec %s)\n",
		st.Batches, st.Events, st.PayloadBytes, addr, wire.CodecName(cl.Codec()))
	if smp != nil {
		printSamplingSummary(knobs.budget, smp)
	}
	if el != nil {
		printElideSummary(el, rep.Stats.Accesses)
	}
	if knobs.prov {
		printProvSummary(rep.DetectorProvs(), len(rep.Races))
	}
	if verbose {
		printRaces(rep.DetectorRaces(), rep.DetectorProvs())
	}
}

// replayCluster shards a recorded trace across a racedetectd fleet and
// prints the merged report — the fleet-scale sibling of replayRemote.
// Per-member batch policies are independent, so an adaptive policy tunes
// each member's batches to that member's observed back-pressure.
func replayCluster(f *os.File, members []string, gran, codec, batchPolicy string, workers int, verbose bool, start time.Time, reg *telemetry.Registry, knobs streamKnobs) {
	g, reqCodec, policy := parseStreamOpts(gran, codec, batchPolicy)
	ctrl := samplingController(knobs.budget)
	sOpts := cluster.Options{
		Members:     members,
		Telemetry:   reg,
		Codec:       reqCodec,
		TraceSample: knobs.traceSample,
		Tracer:      knobs.tracer,
		NewBatchPolicy: func() *event.BatchPolicy {
			if policy == nil {
				return nil
			}
			return new(event.BatchPolicy)
		},
		Hello: wire.Hello{Granularity: uint8(g), Workers: workers, Provenance: knobs.prov},
	}
	if ctrl != nil {
		// One controller absorbs every member's signals: any overloaded
		// member throttles the shared sampler.
		sOpts.Backpressure = ctrl
	}
	cl, err := cluster.Dial(sOpts)
	if err != nil {
		fatal(err)
	}
	sink, smp := samplingLane(event.Sink(cl), knobs.budget, ctrl, reg)
	sink, el := elideLane(sink, knobs.elide, reg)
	if err := trace.Replay(f, sink); err != nil {
		fatal(err)
	}
	rep, err := cl.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cluster fasttrack/%s over %d accesses in %v: %d races, %d peak clocks, %.2f MB peak across %d members\n",
		gran, rep.Stats.Accesses, time.Since(start).Round(time.Microsecond),
		len(rep.Races), rep.Stats.NodesPeak, float64(rep.Stats.TotalPeakBytes)/(1<<20),
		len(members))
	if smp != nil {
		printSamplingSummary(knobs.budget, smp)
	}
	if el != nil {
		printElideSummary(el, rep.Stats.Accesses)
	}
	if knobs.prov {
		printProvSummary(rep.DetectorProvs(), len(rep.Races))
	}
	if verbose {
		printRaces(rep.DetectorRaces(), rep.DetectorProvs())
	}
}

// obs owns tracereplay's optional telemetry side-cars: a metric registry
// served over HTTP (-metrics-addr) and a periodic one-line progress report
// to stderr (-stats-interval). When neither flag is set the registry stays
// nil and the replay paths run uninstrumented.
type obs struct {
	reg  *telemetry.Registry
	ln   net.Listener
	quit chan struct{}
	done chan struct{}
}

// startObs creates the registry and starts the side-cars the flags asked
// for. With both flags unset it returns an inert obs (reg == nil).
func startObs(addr string, interval time.Duration) (*obs, error) {
	o := &obs{}
	if addr == "" && interval <= 0 {
		return o, nil
	}
	o.reg = telemetry.New()
	if addr != "" {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("metrics endpoint: %w", err)
		}
		o.ln = ln
		go (&http.Server{Handler: o.reg.Handler()}).Serve(ln)
	}
	if interval > 0 {
		o.quit = make(chan struct{})
		o.done = make(chan struct{})
		go func() {
			defer close(o.done)
			start := time.Now()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-o.quit:
					return
				case <-t.C:
					fmt.Fprintf(os.Stderr, "progress t=%.1fs accesses=%d races=%d streamed=%d\n",
						time.Since(start).Seconds(),
						o.reg.CounterValue("detector_accesses_total"),
						o.reg.CounterValue("detector_races_total"),
						o.reg.CounterValue("client_events_total"))
				}
			}
		}()
	}
	return o, nil
}

// stop joins the progress goroutine and closes the metrics listener.
func (o *obs) stop() {
	if o.quit != nil {
		close(o.quit)
		<-o.done
	}
	if o.ln != nil {
		o.ln.Close()
	}
}

// memReport writes the heap profile (if path is non-empty) and prints a
// one-line allocator summary (if stats). Shared by racedetect and
// tracereplay via copy: the two commands keep no common package.
func memReport(path string, stats bool) {
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // flush recent allocations into the profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "tracereplay:", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote heap profile to %s (inspect with: go tool pprof %s)\n", path, path)
	}
	if stats {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		fmt.Fprintf(os.Stderr,
			"memstats    %d allocs, %.2f MB total, %.2f MB heap peak, %d GC cycles, %.2fms total pause\n",
			m.Mallocs, float64(m.TotalAlloc)/(1<<20), float64(m.HeapSys)/(1<<20),
			m.NumGC, float64(m.PauseTotalNs)/1e6)
	}
}

// parseBudget parses a sampling budget given as a percentage ("5%") or a
// fraction ("0.05"). Shared by racedetect and tracereplay via copy.
func parseBudget(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if p, ok := strings.CutSuffix(s, "%"); ok {
		v, err := strconv.ParseFloat(p, 64)
		return v / 100, err
	}
	return strconv.ParseFloat(s, 64)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracereplay:", err)
	os.Exit(1)
}
