// Command benchtables regenerates the paper's evaluation tables (1–6) and
// figure demonstrations from live runs of the fourteen benchmark workloads.
//
// Usage:
//
//	benchtables                 # all tables
//	benchtables -table 1        # one table
//	benchtables -figure 4       # one figure demo
//	benchtables -bench ferret,dedup -scale 2 -seed 7
//	benchtables -pipeline-json BENCH_pipeline.json   # worker-sweep bench
//	benchtables -wire-json BENCH_wire.json           # remote-service bench
//	benchtables -obs-json BENCH_obs.json             # telemetry overhead bench
//	benchtables -mem-json BENCH_mem.json             # memory lane (allocs/op, shadow bytes)
//	benchtables -clock-json BENCH_clock.json         # structure-aware clock lane (ns/event, peak clock bytes)
//	benchtables -cluster-json BENCH_cluster.json     # sharded-cluster scaling lane (N=1/2/4 members)
//	benchtables -sampling-json BENCH_sampling.json   # budgeted-sampling lane (races-found-vs-rate curve)
//	benchtables -hotpath-json BENCH_hotpath.json     # columnar hot-path lane (elide × apply matrix)
//
// Every number is measured in-process; nothing is replayed from files. See
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/tables"
)

func main() {
	var (
		table   = flag.Int("table", 0, "render only this table (1-7); 0 = all")
		asJSON  = flag.Bool("json", false, "emit every table as JSON")
		figure  = flag.Int("figure", 0, "render only this figure demo (1, 2 or 4)")
		scale   = flag.Int("scale", 1, "workload scale factor")
		seed    = flag.Int64("seed", 42, "scheduler seed")
		runs    = flag.Int("runs", 3, "timing runs per configuration (median)")
		bench   = flag.String("bench", "", "comma-separated benchmark subset")
		memMB   = flag.Int64("comparator-mem-mb", 0, "comparator memory budget in MB (0 = default)")
		timeout = flag.Duration("comparator-timeout", 30*time.Second, "comparator wall-time budget")

		pipelineJSON = flag.String("pipeline-json", "",
			"write the sharded-pipeline worker-sweep bench to this file (e.g. BENCH_pipeline.json)")
		pipelineWorkers = flag.String("pipeline-workers", "",
			"comma-separated worker counts for -pipeline-json (default 0,1,2,4,8)")

		wireJSON = flag.String("wire-json", "",
			"write the wire codec + loopback remote-overhead bench to this file (e.g. BENCH_wire.json)")
		wireBatches = flag.String("wire-batches", "",
			"comma-separated batch sizes for -wire-json's codec rows (default 64,2048,8192)")

		obsJSON = flag.String("obs-json", "",
			"write the telemetry overhead bench to this file (e.g. BENCH_obs.json)")
		obsWorkers = flag.String("obs-workers", "",
			"comma-separated worker counts for -obs-json (default 0,2)")

		memJSON = flag.String("mem-json", "",
			"write the memory lane (shadow bytes, live nodes, allocs/op, GC pauses per workload × granularity) to this file (e.g. BENCH_mem.json)")

		clockJSON = flag.String("clock-json", "",
			"write the structure-aware clock lane (general vs compact ns/event and peak clock bytes per Go-native workload) to this file (e.g. BENCH_clock.json)")

		clusterJSON = flag.String("cluster-json", "",
			"write the detection-cluster scaling lane (events/s and p50 fan-out latency at 1/2/4 loopback members) to this file (e.g. BENCH_cluster.json)")
		clusterMembers = flag.String("cluster-members", "",
			"comma-separated member counts for -cluster-json (default 1,2,4)")

		samplingJSON = flag.String("sampling-json", "",
			"write the budgeted-sampling lane (races-found-vs-rate curve per workload × budget) to this file (e.g. BENCH_sampling.json)")
		samplingBudgets = flag.String("sampling-budgets", "",
			"comma-separated budget fractions for -sampling-json (default 1,0.5,0.2,0.1,0.05,0.02,0.01)")

		hotpathJSON = flag.String("hotpath-json", "",
			"write the columnar hot-path lane (ns/event and wire bytes, elide on/off × record/columnar apply) to this file (e.g. BENCH_hotpath.json)")
		hotpathBench = flag.String("hotpath-bench", "",
			"comma-separated workloads for -hotpath-json (default streamcluster,pbzip2,x264,canneal,fanin)")
	)
	flag.Parse()

	if *figure != 0 {
		switch *figure {
		case 1:
			fmt.Println("Figure 1. An example execution of DJIT+")
			fmt.Print(tables.Figure1())
		case 2:
			fmt.Println("Figure 2. Vector clock state machine (observable evidence)")
			fmt.Print(tables.Figure2())
		case 4:
			fmt.Println("Figure 4. Indexing structure: m/4 -> m expansion")
			fmt.Print(tables.Figure4())
		default:
			fmt.Fprintf(os.Stderr, "no demo for figure %d (figure 3 is the implemented read path itself)\n", *figure)
			os.Exit(2)
		}
		return
	}

	cfg := tables.Config{
		Scale:             *scale,
		Seed:              *seed,
		TimingRuns:        *runs,
		ComparatorTimeout: *timeout,
	}
	if *memMB > 0 {
		cfg.ComparatorMemLimit = *memMB << 20
	}
	if *bench != "" {
		cfg.Benchmarks = strings.Split(*bench, ",")
	}
	r := tables.NewRunner(cfg)

	if *pipelineJSON != "" {
		var sweep []int
		if *pipelineWorkers != "" {
			for _, tok := range strings.Split(*pipelineWorkers, ",") {
				var w int
				if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%d", &w); err != nil || w < 0 {
					fmt.Fprintf(os.Stderr, "bad -pipeline-workers entry %q\n", tok)
					os.Exit(2)
				}
				sweep = append(sweep, w)
			}
		}
		f, err := os.Create(*pipelineJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = r.WritePipelineJSON(f, sweep)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *pipelineJSON)
		return
	}

	if *memJSON != "" {
		f, err := os.Create(*memJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = r.WriteMemJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *memJSON)
		return
	}

	if *clockJSON != "" {
		f, err := os.Create(*clockJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = r.WriteClockJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *clockJSON)
		return
	}

	if *clusterJSON != "" {
		var counts []int
		if *clusterMembers != "" {
			for _, tok := range strings.Split(*clusterMembers, ",") {
				var n int
				if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%d", &n); err != nil || n <= 0 {
					fmt.Fprintf(os.Stderr, "bad -cluster-members entry %q\n", tok)
					os.Exit(2)
				}
				counts = append(counts, n)
			}
		}
		f, err := os.Create(*clusterJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = r.WriteClusterJSON(f, counts)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *clusterJSON)
		return
	}

	if *samplingJSON != "" {
		var budgets []float64
		if *samplingBudgets != "" {
			for _, tok := range strings.Split(*samplingBudgets, ",") {
				var b float64
				if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%g", &b); err != nil || b <= 0 || b > 1 {
					fmt.Fprintf(os.Stderr, "bad -sampling-budgets entry %q (want a fraction in (0,1])\n", tok)
					os.Exit(2)
				}
				budgets = append(budgets, b)
			}
		}
		f, err := os.Create(*samplingJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = r.WriteSamplingJSON(f, budgets)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *samplingJSON)
		return
	}

	if *hotpathJSON != "" {
		var names []string
		if *hotpathBench != "" {
			names = strings.Split(*hotpathBench, ",")
		}
		f, err := os.Create(*hotpathJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = r.WriteHotpathJSON(f, names)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *hotpathJSON)
		return
	}

	if *obsJSON != "" {
		var sweep []int
		if *obsWorkers != "" {
			for _, tok := range strings.Split(*obsWorkers, ",") {
				var w int
				if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%d", &w); err != nil || w < 0 {
					fmt.Fprintf(os.Stderr, "bad -obs-workers entry %q\n", tok)
					os.Exit(2)
				}
				sweep = append(sweep, w)
			}
		}
		f, err := os.Create(*obsJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = r.WriteObsJSON(f, sweep)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *obsJSON)
		return
	}

	if *wireJSON != "" {
		var sizes []int
		if *wireBatches != "" {
			for _, tok := range strings.Split(*wireBatches, ",") {
				var n int
				if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%d", &n); err != nil || n <= 0 {
					fmt.Fprintf(os.Stderr, "bad -wire-batches entry %q\n", tok)
					os.Exit(2)
				}
				sizes = append(sizes, n)
			}
		}
		f, err := os.Create(*wireJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = r.WriteWireJSON(f, sizes)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *wireJSON)
		return
	}

	if *asJSON {
		if err := r.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	render := map[int]func(){
		1: func() { r.RenderTable1(os.Stdout) },
		2: func() { r.RenderTable2(os.Stdout) },
		3: func() { r.RenderTable3(os.Stdout) },
		4: func() { r.RenderTable4(os.Stdout) },
		5: func() { r.RenderTable5(os.Stdout) },
		6: func() { r.RenderTable6(os.Stdout) },
		7: func() { r.RenderTable7(os.Stdout) },
	}
	if *table != 0 {
		f, ok := render[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown table %d\n", *table)
			os.Exit(2)
		}
		f()
		return
	}
	for i := 1; i <= 7; i++ {
		render[i]()
	}
}
