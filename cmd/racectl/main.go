// Command racectl is the operator console for a racedetectd deployment:
// it inspects live servers over the HTTP sidecar and renders the
// observability artifacts (span files, provenance dumps) the detection
// commands produce.
//
// Usage:
//
//	racectl sessions -addr localhost:7475          # live sessions of one server
//	racectl slots -members host1:7474,host2:7474   # hash-slot layout of a fleet
//	racectl slots -members host1:7474,host2:7474 -addr-of 0x7f001234
//	racectl spans -in spans.json                   # render a span tree
//	racectl spans -addr localhost:7475             # ... straight from /debug/spans
//	racectl spans -in client.json -in server.json  # join spans across processes
//	racectl provenance -addr localhost:7475        # recent explained races
//	racectl provenance -in provenance.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/cluster"
	"repro/internal/fasttrack"
	"repro/internal/server"
	"repro/internal/shadow"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "sessions":
		err = cmdSessions(os.Args[2:])
	case "slots":
		err = cmdSlots(os.Args[2:])
	case "spans":
		err = cmdSpans(os.Args[2:])
	case "provenance":
		err = cmdProvenance(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "racectl: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "racectl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `racectl inspects racedetectd deployments and their observability artifacts.

commands:
  sessions    list one server's live sessions (GET /sessions)
  slots       show a fleet's hash-slot layout, or the owner of one address
  spans       render span JSON files (or /debug/spans) as a trace tree
  provenance  print recently explained races (GET /debug/provenance or a file)

run "racectl <command> -h" for each command's flags.
`)
}

// fetchJSON GETs a sidecar endpoint and decodes the JSON body into v.
func fetchJSON(addr, path string, v any) error {
	url := "http://" + addr + path
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// ---- sessions ----

func cmdSessions(args []string) error {
	fs := flag.NewFlagSet("racectl sessions", flag.ExitOnError)
	addr := fs.String("addr", "localhost:7475", "racedetectd HTTP sidecar address")
	fs.Parse(args)

	var page struct {
		Draining bool                 `json:"draining"`
		Sessions []server.SessionInfo `json:"sessions"`
	}
	if err := fetchJSON(*addr, "/sessions", &page); err != nil {
		return err
	}
	if page.Draining {
		fmt.Println("server is draining")
	}
	if len(page.Sessions) == 0 {
		fmt.Println("no live sessions")
		return nil
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tSTATE\tGRAN\tWORKERS\tBATCHES\tEVENTS\tQUEUE\tAGE\tTRACED\tPROV")
	for _, s := range page.Sessions {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%d\t%d\t%d\t%.1fs\t%v\t%v\n",
			s.ID, s.State, s.Granularity, s.Workers, s.Batches, s.Events,
			s.QueueDepth, s.AgeSeconds, s.Traced, s.Provenance)
	}
	return tw.Flush()
}

// ---- slots ----

func cmdSlots(args []string) error {
	fs := flag.NewFlagSet("racectl slots", flag.ExitOnError)
	members := fs.String("members", "", "comma-separated member addresses (fleet order matters)")
	addrOf := fs.String("addr-of", "", "print the slot and owner of this memory address (hex or decimal)")
	fs.Parse(args)
	if *members == "" {
		return fmt.Errorf("slots: -members is required (routing is a pure function of the member list)")
	}
	list := strings.Split(*members, ",")
	ring := cluster.NewRing(len(list))

	if *addrOf != "" {
		a, err := strconv.ParseUint(strings.TrimPrefix(*addrOf, "0x"), 16, 64)
		if err != nil {
			if a, err = strconv.ParseUint(*addrOf, 10, 64); err != nil {
				return fmt.Errorf("slots: bad -addr-of %q", *addrOf)
			}
		}
		block := a >> shadow.BlockShift
		slot := ring.Slot(block)
		owner := ring.OwnerOfSlot(slot)
		fmt.Printf("addr %#x -> shadow block %#x -> slot %d -> member %d (%s)\n",
			a, block, slot, owner, list[owner])
		return nil
	}

	counts := ring.Counts(len(list))
	perOwner := make([][]int, len(list))
	for s := 0; s < cluster.Slots; s++ {
		m := ring.OwnerOfSlot(s)
		perOwner[m] = append(perOwner[m], s)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "MEMBER\tADDR\tSLOTS\tSLOT IDS")
	for m, addr := range list {
		ids := make([]string, len(perOwner[m]))
		for i, s := range perOwner[m] {
			ids[i] = strconv.Itoa(s)
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%s\n", m, addr, counts[m], strings.Join(ids, " "))
	}
	return tw.Flush()
}

// ---- spans ----

func cmdSpans(args []string) error {
	fs := flag.NewFlagSet("racectl spans", flag.ExitOnError)
	var ins multiFlag
	fs.Var(&ins, "in", "span JSON file (repeatable; files from different processes are joined)")
	addr := fs.String("addr", "", "fetch /debug/spans from this racedetectd HTTP sidecar too")
	traceFilter := fs.String("trace", "", "show only this trace ID (16-digit hex)")
	fs.Parse(args)

	var spans []telemetry.SpanRecord
	for _, path := range ins {
		var f telemetry.SpanFile
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		spans = append(spans, f.Spans...)
	}
	if *addr != "" {
		var f telemetry.SpanFile
		if err := fetchJSON(*addr, "/debug/spans", &f); err != nil {
			return err
		}
		spans = append(spans, f.Spans...)
	}
	if len(ins) == 0 && *addr == "" {
		return fmt.Errorf("spans: need -in file(s) or -addr")
	}
	if *traceFilter != "" {
		want, err := strconv.ParseUint(strings.TrimPrefix(*traceFilter, "0x"), 16, 64)
		if err != nil {
			return fmt.Errorf("spans: bad -trace %q", *traceFilter)
		}
		kept := spans[:0]
		for _, s := range spans {
			if s.Trace == want {
				kept = append(kept, s)
			}
		}
		spans = kept
	}
	if len(spans) == 0 {
		fmt.Println("no spans")
		return nil
	}
	printSpanTrees(spans)
	return nil
}

// multiFlag collects repeated -in values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// printSpanTrees groups spans by trace, links children to parents, and
// prints one indented tree per trace in start order.
func printSpanTrees(spans []telemetry.SpanRecord) {
	byTrace := map[uint64][]telemetry.SpanRecord{}
	var order []uint64
	for _, s := range spans {
		if _, ok := byTrace[s.Trace]; !ok {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	sort.Slice(order, func(i, j int) bool {
		return minStart(byTrace[order[i]]) < minStart(byTrace[order[j]])
	})
	for _, tr := range order {
		group := byTrace[tr]
		sort.Slice(group, func(i, j int) bool { return group[i].Start < group[j].Start })
		fmt.Printf("trace %016x (%d spans)\n", tr, len(group))
		children := map[uint64][]telemetry.SpanRecord{}
		known := map[uint64]bool{}
		for _, s := range group {
			known[s.Span] = true
		}
		var roots []telemetry.SpanRecord
		for _, s := range group {
			// A span whose parent is absent from the joined set is shown as
			// a root: partial files stay renderable.
			if s.Parent != 0 && known[s.Parent] {
				children[s.Parent] = append(children[s.Parent], s)
			} else {
				roots = append(roots, s)
			}
		}
		var walk func(s telemetry.SpanRecord, depth int)
		walk = func(s telemetry.SpanRecord, depth int) {
			fmt.Printf("  %s%-16s %-12s %8s  %s\n",
				strings.Repeat("  ", depth), s.Name, "["+s.Process+"]",
				time.Duration(s.Dur).Round(time.Microsecond), formatArgs(s.Args))
			for _, c := range children[s.Span] {
				walk(c, depth+1)
			}
		}
		for _, r := range roots {
			walk(r, 0)
		}
	}
}

// minStart returns the earliest start among a trace's spans.
func minStart(spans []telemetry.SpanRecord) int64 {
	m := spans[0].Start
	for _, s := range spans[1:] {
		if s.Start < m {
			m = s.Start
		}
	}
	return m
}

// formatArgs renders span args as deterministic "k=v" pairs.
func formatArgs(args map[string]any) string {
	if len(args) == 0 {
		return ""
	}
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, args[k])
	}
	return strings.Join(parts, " ")
}

// ---- provenance ----

func cmdProvenance(args []string) error {
	fs := flag.NewFlagSet("racectl provenance", flag.ExitOnError)
	addr := fs.String("addr", "", "racedetectd HTTP sidecar address (GET /debug/provenance)")
	in := fs.String("in", "", "read a /debug/provenance JSON dump from this file instead")
	fs.Parse(args)
	if (*addr == "") == (*in == "") {
		return fmt.Errorf("provenance: need exactly one of -addr or -in")
	}
	var page struct {
		Races []server.SessionRace `json:"races"`
	}
	if *in != "" {
		data, err := os.ReadFile(*in)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &page); err != nil {
			return fmt.Errorf("%s: %w", *in, err)
		}
	} else if err := fetchJSON(*addr, "/debug/provenance", &page); err != nil {
		return err
	}
	if len(page.Races) == 0 {
		fmt.Println("no recorded races")
		return nil
	}
	for _, sr := range page.Races {
		printSessionRace(sr)
	}
	explained := 0
	for _, sr := range page.Races {
		if sr.Race.Prov != nil && sr.Race.Prov.Kind != "" {
			explained++
		}
	}
	fmt.Printf("provenance  %d/%d races explained\n", explained, len(page.Races))
	return nil
}

func printSessionRace(sr server.SessionRace) {
	r := sr.Race
	fmt.Printf("session %d: %s race at %#x (%dB): thread %d@pc%#x vs thread %d@pc%#x\n",
		sr.Session, raceKind(r), r.Addr, r.Size, r.Tid, r.PC, r.PrevTid, r.PrevPC)
	if r.Prov != nil && r.Prov.Kind != "" {
		for _, line := range strings.Split(strings.TrimRight(r.Prov.String(), "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
}

// raceKind renders a wire race's kind label: the provenance record's
// (when present) or the decoded wire kind byte.
func raceKind(r wire.ReportRace) string {
	if r.Prov != nil && r.Prov.Kind != "" {
		return r.Prov.Kind
	}
	return fasttrack.RaceKind(r.Kind).String()
}
