// Package repro is a from-scratch Go reproduction of "Efficient Data Race
// Detection for C/C++ Programs Using Dynamic Granularity" (Song & Lee,
// IPPS 2014): FastTrack-style happens-before race detection whose
// detection unit starts at byte granularity and grows dynamically by
// sharing one vector clock among neighbouring memory locations, governed
// by the paper's Init/Shared/Private/Race state machine.
//
// The public API lives in the race package (detectors and reports) and the
// workloads package (the eleven benchmark programs of the paper's
// evaluation plus three Go-native synchronization families). The execution substrate that replaces the paper's Intel PIN
// instrumentation, the shadow-memory structures, and every detector
// implementation live under internal/; see DESIGN.md for the system
// inventory and EXPERIMENTS.md for the paper-vs-measured record of every
// table and figure.
//
// Quick start:
//
//	go run ./examples/quickstart      # detect a race with the public API
//	go run ./cmd/racedetect -list     # the benchmark suite
//	go run ./cmd/benchtables          # regenerate Tables 1-6
//	go test ./... && go test -bench=. # the full test and bench suite
package repro
