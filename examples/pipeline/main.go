// Pipeline demonstrates dynamic granularity on an allocation-heavy
// producer/consumer pipeline (the dedup/pbzip2 pattern): buffers are
// allocated, filled in a single epoch, handed across threads, and freed.
//
//	go run ./examples/pipeline
//
// For this pattern the same-epoch rate is identical at every granularity —
// the speedup of dynamic granularity comes purely from creating one shared
// clock per buffer instead of one per location, which is the effect the
// paper isolates with pbzip2 (Section V.A).
package main

import (
	"fmt"

	"repro/race"
)

func buildProgram() race.Program {
	const (
		blocks     = 64
		blockWords = 1024
	)
	return race.Program{Name: "pipeline", Main: func(t *race.Thread) {
		type q struct {
			lock     int // index into locks
			notEmpty int
		}
		lock := t.NewLock()
		notEmpty := t.NewCond()
		var fifo []uint64
		closed := false

		consumer := t.Go(func(c *race.Thread) {
			for {
				c.Lock(lock)
				for len(fifo) == 0 && !closed {
					c.Wait(notEmpty, lock)
				}
				if len(fifo) == 0 {
					c.Unlock(lock)
					return
				}
				blk := fifo[0]
				fifo = fifo[1:]
				c.Unlock(lock)

				c.At(2)
				c.ReadBlock(blk, 4, blockWords) // scan
				c.ReadBlock(blk, 4, blockWords) // checksum, same epoch
				c.Free(blk)
			}
		})

		for b := 0; b < blocks; b++ {
			blk := t.Malloc(blockWords * 4)
			t.At(1)
			t.WriteBlock(blk, 4, blockWords) // single-epoch fill
			t.Lock(lock)
			fifo = append(fifo, blk)
			t.Signal(notEmpty)
			t.Unlock(lock)
		}
		t.Lock(lock)
		closed = true
		t.Broadcast(notEmpty)
		t.Unlock(lock)
		t.Join(consumer)
		_ = q{}
	}}
}

func main() {
	for _, g := range []race.Granularity{race.Byte, race.Word, race.Dynamic} {
		rep := race.Run(buildProgram(), race.Options{Granularity: g, Seed: 3})
		fmt.Printf("%-8v granularity: %6d clock allocs, %6d peak VCs, avg sharing %5.1f, same-epoch %2.0f%%, %v\n",
			g, rep.Detector.NodeAllocs, rep.Detector.MaxVectorClocks,
			rep.Detector.AvgSharing, rep.Detector.SameEpochPct(),
			rep.Elapsed.Round(1000))
		if len(rep.Races) != 0 {
			panic("pipeline is race-free; got " + fmt.Sprint(rep.Races))
		}
	}
}
