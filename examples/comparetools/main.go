// Comparetools runs one benchmark workload under all five detectors —
// FastTrack (dynamic granularity), DJIT+, the DRD-style segment detector,
// the Inspector-style hybrid, and Eraser's LockSet — and prints a Table
// 6-style comparison, including Eraser's characteristic false alarms on
// fork/join- and barrier-ordered accesses.
//
//	go run ./examples/comparetools [benchmark]
package main

import (
	"fmt"
	"os"

	"repro/race"
	"repro/workloads"
)

func main() {
	name := "ferret"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, err := workloads.ByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prog := spec.Program()
	_, baseTime := race.Baseline(prog, 42)

	fmt.Printf("benchmark %s: %d genuine races seeded; base run %v\n\n",
		spec.Name, spec.Races, baseTime.Round(1000))
	fmt.Printf("%-22s %8s %10s %10s\n", "tool", "races", "slowdown", "peak mem")

	tools := []struct {
		label string
		opts  race.Options
	}{
		{"fasttrack/dynamic", race.Options{Tool: race.FastTrack, Granularity: race.Dynamic}},
		{"fasttrack/byte", race.Options{Tool: race.FastTrack, Granularity: race.Byte}},
		{"djit+", race.Options{Tool: race.DJITPlus}},
		{"drd (segments)", race.Options{Tool: race.DRD}},
		{"inspector (hybrid)", race.Options{Tool: race.InspectorXE}},
		{"eraser (lockset)", race.Options{Tool: race.Eraser}},
		{"multirace (combined)", race.Options{Tool: race.MultiRace}},
	}
	for _, tl := range tools {
		tl.opts.Seed = 42
		rep := race.Run(prog, tl.opts)
		mem := "-"
		if rep.Detector.TotalPeakBytes > 0 {
			mem = fmt.Sprintf("%.2f MB", float64(rep.Detector.TotalPeakBytes)/(1<<20))
		}
		fmt.Printf("%-22s %8d %9.2fx %10s\n",
			tl.label, len(rep.Races),
			float64(rep.Elapsed)/float64(baseTime), mem)
	}
	fmt.Println("\nEraser reports lock-discipline violations, so fork/join- and")
	fmt.Println("barrier-ordered accesses count as warnings: its excess over the")
	fmt.Println("happens-before tools is exactly the false-alarm problem the")
	fmt.Println("paper's introduction describes.")
}
