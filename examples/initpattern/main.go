// Initpattern demonstrates the Figure 2 state machine on the paper's
// motivating access pattern: a data structure initialized in its entirety,
// then partitioned among threads that protect their own slices.
//
//	go run ./examples/initpattern
//
// It runs the same program under four detector configurations and prints
// how the state-machine design choices play out:
//
//   - dynamic granularity folds the initialization sweep into a handful of
//     temporarily shared clocks (massive allocation savings);
//   - disabling first-epoch sharing (Table 5's ablation) keeps the Init
//     state but allocates a clock per location during initialization;
//   - disabling the Init state entirely makes the first-access sharing
//     decision final — and floods the run with false alarms, because the
//     partitions that were initialized together are later written by
//     different threads;
//   - byte granularity is the precise-but-expensive baseline.
package main

import (
	"fmt"

	"repro/race"
)

func buildProgram() race.Program {
	const (
		workers = 4
		n       = 4096 // 8-byte elements
		base    = 0x10000
	)
	return race.Program{Name: "initpattern", Main: func(t *race.Thread) {
		t.At(1)
		// Initialize the whole array in one sweep (one epoch).
		t.WriteBlock(base, 8, n)

		// Partition boundaries deliberately fall inside shadow blocks.
		part := n/workers + 1
		var hs []*race.Thread
		for w := 0; w < workers; w++ {
			w := w
			hs = append(hs, t.Go(func(u *race.Thread) {
				lo := w * part
				hi := lo + part
				if hi > n {
					hi = n
				}
				for iter := 0; iter < 4; iter++ {
					for i := lo; i < hi; i++ {
						u.At(2)
						u.Read(base+uint64(i)*8, 8)
						u.Write(base+uint64(i)*8, 8)
					}
					u.Yield()
				}
			}))
		}
		for _, h := range hs {
			t.Join(h)
		}
	}}
}

func main() {
	configs := []struct {
		name string
		opts race.Options
	}{
		{"dynamic (full state machine)", race.Options{Granularity: race.Dynamic}},
		{"dynamic, no sharing at Init", race.Options{Granularity: race.Dynamic, NoInitSharing: true}},
		{"dynamic, no Init state", race.Options{Granularity: race.Dynamic, NoInitState: true}},
		{"byte granularity", race.Options{Granularity: race.Byte}},
	}
	fmt.Printf("%-32s %10s %12s %10s %8s\n",
		"configuration", "races", "clock allocs", "peak VCs", "mem KB")
	for _, c := range configs {
		c.opts.Seed = 7
		rep := race.Run(buildProgram(), c.opts)
		fmt.Printf("%-32s %10d %12d %10d %8d\n",
			c.name, len(rep.Races), rep.Detector.NodeAllocs,
			rep.Detector.MaxVectorClocks, rep.Detector.TotalPeakBytes/1024)
	}
	fmt.Println("\nThe program is race-free: every \"race\" above is a false alarm")
	fmt.Println("caused by making the sharing decision during initialization.")
}
