// Quickstart: build a small multithreaded program with the public API, run
// it under FastTrack with dynamic granularity, and print the data races it
// finds.
//
//	go run ./examples/quickstart
//
// The program has two bugs a happens-before detector catches and one
// red herring it correctly ignores:
//
//   - `counter` is incremented by both workers without a lock (a race);
//   - `done` is written by a worker and read by main without ordering
//     (a race);
//   - `table` is accessed by both workers but always under `mu` (no race,
//     and no false alarm — unlike a lockset tool, FastTrack also accepts
//     the fork/join ordering of `setup`).
package main

import (
	"fmt"

	"repro/race"
)

func main() {
	const (
		setup   = 0x1000 // written by main before the workers exist
		table   = 0x2000 // lock-protected shared table
		counter = 0x3000 // unprotected counter: race
		done    = 0x3008 // unprotected flag: race
	)

	prog := race.Program{Name: "quickstart", Main: func(t *race.Thread) {
		t.At(1)
		t.Write(setup, 8) // safe: happens-before the forks

		mu := t.NewLock()
		worker := func(w *race.Thread) {
			w.At(2)
			w.Read(setup, 8) // safe: ordered by fork
			for i := 0; i < 100; i++ {
				w.Lock(mu)
				w.At(3)
				w.Read(table, 8)
				w.Write(table, 8) // safe: consistently locked
				w.Unlock(mu)

				w.At(4)
				w.Read(counter, 8)
				w.Write(counter, 8) // RACE: no lock
			}
			w.At(5)
			w.Write(done, 8) // RACE: main reads this without ordering
		}
		a := t.Go(worker)
		b := t.Go(worker)

		t.At(6)
		t.Read(done, 8) // unordered peek at the flag

		t.Join(a)
		t.Join(b)
	}}

	rep := race.Run(prog, race.Options{
		Tool:        race.FastTrack,
		Granularity: race.Dynamic,
		Seed:        1,
	})

	fmt.Printf("analyzed %d shared accesses from %d threads\n",
		rep.Run.Accesses, rep.Run.Threads)
	fmt.Printf("detector: %v (%v granularity), %v elapsed\n",
		rep.Tool, rep.Granularity, rep.Elapsed.Round(1000))
	fmt.Printf("found %d races:\n", len(rep.Races))
	for _, r := range rep.Races {
		fmt.Printf("  %v\n", r)
	}
	if len(rep.Races) != 2 {
		panic("expected exactly the two seeded races")
	}
}
