package server_test

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/workloads"
)

// startServer starts a server on a loopback listener and returns it with
// its address. The server is shut down at test cleanup.
func startServer(t *testing.T, opts server.Options) (*server.Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil && err != server.ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, l.Addr().String()
}

func sortDetRaces(rs []detector.Race) []detector.Race {
	out := append([]detector.Race(nil), rs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.PC < b.PC
	})
	return out
}

// TestEndToEndWorkload streams a real workload through the wire protocol
// and checks the remote report matches the in-process serial detector.
func TestEndToEndWorkload(t *testing.T) {
	srv, addr := startServer(t, server.Options{})
	spec, err := workloads.ByName("streamcluster")
	if err != nil {
		t.Fatal(err)
	}

	// In-process reference.
	ref := detector.New(detector.Config{Granularity: detector.Dynamic})
	sim.Run(spec.Program(), ref, sim.Options{Seed: 42})

	cl, err := client.Dial(client.Options{
		Addr:  addr,
		Hello: wire.Hello{Granularity: uint8(detector.Dynamic), Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(spec.Program(), cl, sim.Options{Seed: 42})
	rep, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}

	want := sortDetRaces(ref.Races())
	got := sortDetRaces(rep.DetectorRaces())
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("race sets differ:\nin-process (%d): %v\nremote (%d): %v",
			len(want), want, len(got), got)
	}
	if rep.Stats.Accesses != ref.Stats().Accesses {
		t.Fatalf("Accesses: in-process %d, remote %d", ref.Stats().Accesses, rep.Stats.Accesses)
	}
	m := srv.Metrics()
	if m.SessionsTotal != 1 || m.SessionsActive != 0 || m.EventsTotal == 0 {
		t.Fatalf("unexpected metrics after clean session: %+v", m)
	}
	if m.RacesTotal != int64(len(want)) {
		t.Fatalf("races metric %d, want %d", m.RacesTotal, len(want))
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDisconnectMidStreamNoLeak is the acceptance check for abandoned
// sessions: a client that vanishes mid-stream must leave no session and no
// goroutines behind once the linger expires.
func TestDisconnectMidStreamNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, addr := startServer(t, server.Options{SessionLinger: 30 * time.Millisecond})

	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		hello, _ := wire.MarshalControl(wire.Hello{Version: wire.Version, Granularity: uint8(detector.Dynamic), Workers: 4})
		frame := wire.AppendFrame(nil, wire.Header{Type: wire.TypeHello}, hello)
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		if _, _, err := wire.NewReader(conn, 0).ReadFrame(); err != nil {
			t.Fatal(err)
		}
		// Stream a couple of batches, then vanish without Close.
		b := event.GetBatch()
		for j := 0; j < 100; j++ {
			b.Append(event.Rec{Op: event.OpWrite, Tid: 0, Addr: uint64(0x1000 + j), Size: 4, Seq: uint64(j + 1)})
		}
		for seq := uint64(1); seq <= 2; seq++ {
			frame = wire.AppendBatchFrame(frame[:0], wire.Header{Seq: seq}, b)
			if _, err := conn.Write(frame); err != nil {
				t.Fatal(err)
			}
		}
		event.PutBatch(b)
		conn.Close()
	}

	waitFor(t, "sessions to be aborted", 5*time.Second, func() bool { return srv.SessionCount() == 0 })
	m := srv.Metrics()
	if m.SessionsAborted != 3 {
		t.Fatalf("SessionsAborted = %d, want 3", m.SessionsAborted)
	}
	// All pipeline workers and handlers must be gone (allow scheduler
	// wind-down time).
	waitFor(t, "goroutines to drain", 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+2 // the Serve accept loop + slack
	})
}

// TestGracefulDrain checks Shutdown: completed sessions drain cleanly; a
// hung client is force-closed when the context expires and its session is
// reclaimed.
func TestGracefulDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{SessionLinger: 10 * time.Millisecond})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	// One clean session.
	cl, err := client.Dial(client.Options{Addr: l.Addr().String(),
		Hello: wire.Hello{Granularity: uint8(detector.Byte), Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	cl.Write(0, 0x1000, 4, 0)
	if _, err := cl.Close(); err != nil {
		t.Fatal(err)
	}

	// One hung client holding a session open.
	hung, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer hung.Close()
	hello, _ := wire.MarshalControl(wire.Hello{Version: wire.Version, Granularity: uint8(detector.Byte), Workers: 1})
	if _, err := hung.Write(wire.AppendFrame(nil, wire.Header{Type: wire.TypeHello}, hello)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wire.NewReader(hung, 0).ReadFrame(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded (hung client forced)", err)
	}
	if err := <-serveDone; err != server.ErrServerClosed {
		t.Fatalf("Serve = %v, want ErrServerClosed", err)
	}
	waitFor(t, "sessions reclaimed after forced drain", 5*time.Second,
		func() bool { return srv.SessionCount() == 0 })
	waitFor(t, "goroutines to drain", 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+1
	})

	// A draining server refuses new connections.
	if _, err := client.Dial(client.Options{Addr: l.Addr().String(), MaxAttempts: 1,
		Hello: wire.Hello{Granularity: uint8(detector.Byte)}}); err == nil {
		t.Fatal("Dial succeeded against a drained server")
	}
}

// TestSessionLimit checks the MaxSessions cap produces a typed remote
// error.
func TestSessionLimit(t *testing.T) {
	_, addr := startServer(t, server.Options{MaxSessions: 1})
	first, err := client.Dial(client.Options{Addr: addr,
		Hello: wire.Hello{Granularity: uint8(detector.Byte)}})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()

	_, err = client.Dial(client.Options{Addr: addr, MaxAttempts: 2,
		BackoffBase: time.Millisecond,
		Hello:       wire.Hello{Granularity: uint8(detector.Byte)}})
	if err == nil || !strings.Contains(err.Error(), wire.CodeSessionLimit) {
		t.Fatalf("second session error = %v, want %s", err, wire.CodeSessionLimit)
	}
}

// TestRejectsBadHello checks option validation happens at the boundary.
func TestRejectsBadHello(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	cases := []wire.Hello{
		{Version: 99, Granularity: uint8(detector.Byte)}, // bad version
		{Version: wire.Version, Granularity: 77},         // unknown granularity
		{Version: wire.Version, Granularity: uint8(detector.Byte), Workers: -2},
		{Version: wire.Version, Resume: 424242, Granularity: uint8(detector.Byte)}, // unknown session
	}
	for i, hello := range cases {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := wire.MarshalControl(hello)
		if _, err := conn.Write(wire.AppendFrame(nil, wire.Header{Type: wire.TypeHello}, payload)); err != nil {
			t.Fatal(err)
		}
		h, body, err := wire.NewReader(conn, 0).ReadFrame()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if h.Type != wire.TypeError {
			t.Fatalf("case %d: got %v, want error frame", i, h.Type)
		}
		var ep wire.ErrorPayload
		if err := wire.UnmarshalControl(body, &ep); err != nil {
			t.Fatal(err)
		}
		if ep.Code == "" {
			t.Fatalf("case %d: empty error code", i)
		}
		conn.Close()
	}
}

// TestRejectsGarbageFrames checks the framing limits: bad magic and
// oversized frames are refused and counted, and never crash the server.
func TestRejectsGarbageFrames(t *testing.T) {
	srv, addr := startServer(t, server.Options{MaxFrameBytes: 1024})

	// Garbage bytes.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\nHost: wrong-protocol\r\n\r\n"))
	io.Copy(io.Discard, conn) // server replies with an error frame and closes
	conn.Close()

	// Oversized declared length.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	huge := wire.AppendFrame(nil, wire.Header{Type: wire.TypeHello}, make([]byte, 4096))
	conn2.Write(huge)
	io.Copy(io.Discard, conn2)
	conn2.Close()

	waitFor(t, "rejected frames to be counted", 5*time.Second, func() bool {
		return srv.Metrics().FramesRejected >= 2
	})
}

// TestHTTPSidecar checks /healthz and /metrics.
func TestHTTPSidecar(t *testing.T) {
	srv, addr := startServer(t, server.Options{})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Complete one session so the counters move.
	cl, err := client.Dial(client.Options{Addr: addr,
		Hello: wire.Hello{Granularity: uint8(detector.Dynamic)}})
	if err != nil {
		t.Fatal(err)
	}
	cl.Write(0, 0x1000, 4, 0)
	if _, err := cl.Close(); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"racedetectd_sessions_total 1",
		"racedetectd_events_total 1",
		"racedetectd_queue_depth",
		"racedetectd_draining 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestReportRedelivery pins the closed-report retention path: a client
// whose connection dies after the server processed Close (but before the
// report was read) can resume the session id and retry the Close, and the
// server re-delivers the identical retained report.
func TestReportRedelivery(t *testing.T) {
	srv, addr := startServer(t, server.Options{SessionLinger: 5 * time.Second})

	// Session 1: hello, one batch, Close — then read the report normally.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hello, _ := wire.MarshalControl(wire.Hello{Version: wire.Version, Granularity: uint8(detector.Dynamic), Workers: 1})
	if _, err := conn.Write(wire.AppendFrame(nil, wire.Header{Type: wire.TypeHello}, hello)); err != nil {
		t.Fatal(err)
	}
	rd := wire.NewReader(conn, 0)
	h, payload, err := rd.ReadFrame()
	if err != nil || h.Type != wire.TypeHelloAck {
		t.Fatalf("handshake: %v %v", h.Type, err)
	}
	var ack wire.HelloAck
	if err := wire.UnmarshalControl(payload, &ack); err != nil {
		t.Fatal(err)
	}
	b := &event.Batch{}
	b.Append(event.Rec{Op: event.OpWrite, Tid: 0, Addr: 0x1000, Size: 4, Seq: 1})
	b.Append(event.Rec{Op: event.OpWrite, Tid: 1, Addr: 0x1000, Size: 4, Seq: 2})
	if _, err := conn.Write(wire.AppendBatchFrame(nil, wire.Header{Session: ack.SessionID, Seq: 1}, b)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire.AppendFrame(nil, wire.Header{Type: wire.TypeClose, Session: ack.SessionID, Seq: 1}, nil)); err != nil {
		t.Fatal(err)
	}
	var first wire.Report
	for {
		h, payload, err = rd.ReadFrame()
		if err != nil {
			t.Fatalf("reading report: %v", err)
		}
		if h.Type == wire.TypeReport {
			if err := wire.UnmarshalControl(payload, &first); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	conn.Close()

	// The session is gone but its report is retained; a resume must
	// succeed and a retried Close must re-deliver the same report.
	waitFor(t, "session retired", time.Second, func() bool { return srv.SessionCount() == 0 })
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	resume, _ := wire.MarshalControl(wire.Hello{Version: wire.Version, Resume: ack.SessionID,
		Granularity: uint8(detector.Dynamic), Workers: 1})
	if _, err := conn2.Write(wire.AppendFrame(nil, wire.Header{Type: wire.TypeHello}, resume)); err != nil {
		t.Fatal(err)
	}
	rd2 := wire.NewReader(conn2, 0)
	h, payload, err = rd2.ReadFrame()
	if err != nil || h.Type != wire.TypeHelloAck {
		t.Fatalf("resume handshake: %v %v (%s)", h.Type, err, payload)
	}
	var rack wire.HelloAck
	if err := wire.UnmarshalControl(payload, &rack); err != nil {
		t.Fatal(err)
	}
	if rack.SessionID != ack.SessionID || rack.ResumeSeq != 1 {
		t.Fatalf("resume ack: %+v", rack)
	}
	if _, err := conn2.Write(wire.AppendFrame(nil, wire.Header{Type: wire.TypeClose, Session: ack.SessionID, Seq: 1}, nil)); err != nil {
		t.Fatal(err)
	}
	h, payload, err = rd2.ReadFrame()
	if err != nil || h.Type != wire.TypeReport {
		t.Fatalf("re-delivery: %v %v", h.Type, err)
	}
	var second wire.Report
	if err := wire.UnmarshalControl(payload, &second); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("re-delivered report differs:\nfirst  %+v\nsecond %+v", first, second)
	}
	if len(second.Races) != 1 {
		t.Fatalf("expected the seeded write-write race, got %+v", second.Races)
	}

	// Once re-delivered, the retained report is dropped: a third resume
	// must be refused with no-session.
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	if _, err := conn3.Write(wire.AppendFrame(nil, wire.Header{Type: wire.TypeHello}, resume)); err != nil {
		t.Fatal(err)
	}
	h, payload, err = wire.NewReader(conn3, 0).ReadFrame()
	if err != nil || h.Type != wire.TypeError {
		t.Fatalf("third resume: %v %v", h.Type, err)
	}
	var ep wire.ErrorPayload
	if err := wire.UnmarshalControl(payload, &ep); err != nil {
		t.Fatal(err)
	}
	if ep.Code != wire.CodeNoSession {
		t.Fatalf("third resume code %q, want %q", ep.Code, wire.CodeNoSession)
	}
}

// TestConcurrentScrape is the -race acceptance test for the consistent
// metrics snapshot: several scraper goroutines hammer /metrics, /healthz
// and /sessions while real client sessions stream workloads. The race
// detector catches unsynchronized counter access; the assertions catch
// snapshots that violate the lifecycle invariants the single-critical-
// section Metrics() guarantees.
func TestConcurrentScrape(t *testing.T) {
	srv, addr := startServer(t, server.Options{})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	spec, err := workloads.ByName("pbzip2")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/healthz", "/sessions", "/debug/vars"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}
	// Snapshot invariants under load: active ≤ total, aborted ≤ total,
	// and the monotone counters never run backwards.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev server.MetricsSnapshot
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := srv.Metrics()
			if m.SessionsActive > m.SessionsTotal {
				t.Errorf("snapshot violates active ≤ total: %+v", m)
				return
			}
			if m.SessionsAborted > m.SessionsTotal {
				t.Errorf("snapshot violates aborted ≤ total: %+v", m)
				return
			}
			if m.EventsTotal < prev.EventsTotal || m.SessionsTotal < prev.SessionsTotal {
				t.Errorf("monotone counter ran backwards: %+v after %+v", m, prev)
				return
			}
			prev = m
		}
	}()

	const sessions = 4
	var clients sync.WaitGroup
	for i := 0; i < sessions; i++ {
		clients.Add(1)
		go func(seed int64) {
			defer clients.Done()
			cl, err := client.Dial(client.Options{
				Addr:  addr,
				Hello: wire.Hello{Granularity: uint8(detector.Dynamic), Workers: 2},
			})
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			sim.Run(spec.Program(), cl, sim.Options{Seed: seed})
			if _, err := cl.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}(int64(i + 1))
	}
	clients.Wait()
	close(stop)
	wg.Wait()

	m := srv.Metrics()
	if m.SessionsTotal != sessions || m.SessionsActive != 0 {
		t.Fatalf("after %d clean sessions: %+v", sessions, m)
	}
	if m.EventsTotal == 0 || m.BatchesTotal == 0 {
		t.Fatalf("no traffic recorded: %+v", m)
	}
}
