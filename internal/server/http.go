// HTTP sidecar: liveness, metrics and session introspection for
// racedetectd. /metrics is the registry's Prometheus text exposition (the
// racedetectd_* families plus every live session's session-labeled
// pipeline/detector series), /sessions is a JSON listing of live sessions,
// and /debug/vars is the registry's expvar-style JSON document — all
// dependency-free, served by internal/telemetry.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/detector"
	"repro/internal/wire"
)

// SessionRace is one reported race retained for /debug/provenance: the
// wire-shaped race (with its provenance record, when the session
// negotiated Hello.Provenance) tagged with the session that reported it.
type SessionRace struct {
	Session uint64          `json:"session"`
	Race    wire.ReportRace `json:"race"`
}

// MetricsSnapshot is a point-in-time view of the server's counters. It is
// captured in one pass under the server lock (see Metrics).
type MetricsSnapshot struct {
	SessionsActive  int64 // open sessions (attached + lingering)
	SessionsTotal   int64 // sessions ever opened
	SessionsAborted int64 // sessions dropped without a Close
	BatchesTotal    int64 // batch frames applied
	EventsTotal     int64 // event records applied
	RacesTotal      int64 // races in completed sessions' reports
	BytesReadTotal  int64 // wire bytes ingested (headers + payloads)
	FramesRejected  int64 // frames refused (magic/CRC/size/protocol)
	QueueDepth      int64 // batches queued to detection workers right now
	UptimeSeconds   float64
	Draining        bool
}

// Metrics returns a consistent snapshot of the server counters and gauges:
// everything is captured in a single critical section on the server lock.
// Because the session lifecycle counters are also incremented under that
// lock, invariants like SessionsActive ≤ SessionsTotal and
// SessionsAborted ≤ SessionsTotal hold in every snapshot — the old
// mixed atomic-then-mutex path could observe states violating them.
// (Batch/event/byte counters advance without the lock; they are monotone,
// so a snapshot only ever under-reports in-flight work.)
func (s *Server) Metrics() MetricsSnapshot {
	s.mu.Lock()
	m := MetricsSnapshot{
		SessionsActive:  int64(len(s.sessions)),
		SessionsTotal:   int64(s.met.sessionsTotal.Load()),
		SessionsAborted: int64(s.met.sessionsAborted.Load()),
		BatchesTotal:    int64(s.met.batchesTotal.Load()),
		EventsTotal:     int64(s.met.eventsTotal.Load()),
		RacesTotal:      int64(s.met.racesTotal.Load()),
		BytesReadTotal:  int64(s.met.bytesRead.Load()),
		FramesRejected:  int64(s.met.framesRejected.Load()),
		UptimeSeconds:   time.Since(s.startTime).Seconds(),
		Draining:        s.draining,
	}
	for _, sess := range s.sessions {
		if sess.pl != nil {
			m.QueueDepth += int64(sess.pl.QueueDepth())
		}
	}
	s.mu.Unlock()
	return m
}

// SessionInfo is one live session's introspection record (the /sessions
// page).
type SessionInfo struct {
	ID          uint64  `json:"id"`
	State       string  `json:"state"` // "attached" or "lingering"
	Granularity string  `json:"granularity"`
	Workers     int     `json:"workers"`
	Window      int     `json:"window"`
	Batches     uint64  `json:"batches"`
	Events      uint64  `json:"events"`
	QueueDepth  int     `json:"queue_depth"`
	AgeSeconds  float64 `json:"age_seconds"`
	Traced      bool    `json:"traced,omitempty"`
	Provenance  bool    `json:"provenance,omitempty"`
}

// Sessions returns the live sessions' introspection records, sorted by id.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	out := make([]SessionInfo, 0, len(s.sessions))
	now := time.Now()
	for _, sess := range s.sessions {
		info := SessionInfo{
			ID:          sess.id,
			State:       "lingering",
			Granularity: detector.Granularity(sess.hello.Granularity).String(),
			Window:      sess.window,
			Batches:     sess.seqApplied.Load(),
			Events:      sess.eventsApplied.Load(),
			AgeSeconds:  now.Sub(sess.opened).Seconds(),
			Traced:      sess.traced,
			Provenance:  sess.prov,
		}
		if sess.attached {
			info.State = "attached"
		}
		if sess.pl != nil {
			info.Workers = sess.pl.Workers()
			info.QueueDepth = sess.pl.QueueDepth()
		}
		out = append(out, info)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// HTTPHandler returns the sidecar handler:
//
//	/healthz            liveness (503 while draining)
//	/metrics            Prometheus text exposition of the server registry
//	/sessions           JSON list of live sessions
//	/debug/vars         expvar-style JSON snapshot of the registry
//	/debug/provenance   JSON ring of recently reported races + provenance
//	/debug/spans        span-JSON dump of the server's tracer
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Draining bool          `json:"draining"`
			Sessions []SessionInfo `json:"sessions"`
		}{Draining: s.Metrics().Draining, Sessions: s.Sessions()})
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		s.reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/provenance", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Races []SessionRace `json:"races"`
		}{Races: s.RecentRaces()})
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		s.tracer.WriteSpansJSON(w)
	})
	return mux
}
