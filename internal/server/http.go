// HTTP sidecar: liveness and metrics for racedetectd. The metrics page is
// Prometheus text exposition format (counters suffixed _total, gauges
// bare), so a standard scraper can graph sessions, batch/event throughput,
// queue depths and races found without any extra dependency.
package server

import (
	"fmt"
	"net/http"
	"time"
)

// MetricsSnapshot is a point-in-time view of the server's counters.
type MetricsSnapshot struct {
	SessionsActive  int64 // open sessions (attached + lingering)
	SessionsTotal   int64 // sessions ever opened
	SessionsAborted int64 // sessions dropped without a Close
	BatchesTotal    int64 // batch frames applied
	EventsTotal     int64 // event records applied
	RacesTotal      int64 // races in completed sessions' reports
	BytesReadTotal  int64 // wire bytes ingested (headers + payloads)
	FramesRejected  int64 // frames refused (magic/CRC/size/protocol)
	QueueDepth      int64 // batches queued to detection workers right now
	UptimeSeconds   float64
	Draining        bool
}

// Metrics returns a snapshot of the server counters and gauges.
func (s *Server) Metrics() MetricsSnapshot {
	m := MetricsSnapshot{
		SessionsTotal:   s.sessionsTotal.Load(),
		SessionsAborted: s.sessionsAborted.Load(),
		BatchesTotal:    s.batchesTotal.Load(),
		EventsTotal:     s.eventsTotal.Load(),
		RacesTotal:      s.racesTotal.Load(),
		BytesReadTotal:  s.bytesRead.Load(),
		FramesRejected:  s.framesRejected.Load(),
		UptimeSeconds:   time.Since(s.startTime).Seconds(),
	}
	s.mu.Lock()
	m.SessionsActive = int64(len(s.sessions))
	m.Draining = s.draining
	for _, sess := range s.sessions {
		m.QueueDepth += int64(sess.pl.QueueDepth())
	}
	s.mu.Unlock()
	return m
}

// HTTPHandler returns the sidecar handler serving /healthz and /metrics.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		m := s.Metrics()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b int64
		if m.Draining {
			b = 1
		}
		writeMetric(w, "racedetectd_sessions_active", "gauge", "Open detection sessions (attached or lingering).", float64(m.SessionsActive))
		writeMetric(w, "racedetectd_sessions_total", "counter", "Sessions ever opened.", float64(m.SessionsTotal))
		writeMetric(w, "racedetectd_sessions_aborted_total", "counter", "Sessions dropped without a clean Close.", float64(m.SessionsAborted))
		writeMetric(w, "racedetectd_batches_total", "counter", "Batch frames applied to detection pipelines.", float64(m.BatchesTotal))
		writeMetric(w, "racedetectd_events_total", "counter", "Event records applied to detection pipelines.", float64(m.EventsTotal))
		writeMetric(w, "racedetectd_races_total", "counter", "Races reported by completed sessions.", float64(m.RacesTotal))
		writeMetric(w, "racedetectd_bytes_read_total", "counter", "Wire bytes ingested (headers and payloads).", float64(m.BytesReadTotal))
		writeMetric(w, "racedetectd_frames_rejected_total", "counter", "Frames refused (bad magic, CRC, size, or protocol).", float64(m.FramesRejected))
		writeMetric(w, "racedetectd_queue_depth", "gauge", "Batches queued to detection workers across sessions.", float64(m.QueueDepth))
		writeMetric(w, "racedetectd_draining", "gauge", "1 while the server is shutting down.", float64(b))
		writeMetric(w, "racedetectd_uptime_seconds", "gauge", "Seconds since the server started.", m.UptimeSeconds)
	})
	return mux
}

func writeMetric(w http.ResponseWriter, name, kind, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, kind, name, v)
}
