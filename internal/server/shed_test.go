package server

import (
	"testing"

	"repro/internal/event"
	"repro/internal/pipeline"
)

// shedSession builds a minimal session around a real (idle) pipeline so
// shedRecords can read its occupancy.
func shedSession(t *testing.T) *session {
	t.Helper()
	pl := pipeline.New(pipeline.Options{Workers: 1})
	t.Cleanup(func() { pl.Wait() })
	return &session{pl: pl}
}

// Sync and heap records must survive shedding unconditionally: dropping a
// happens-before edge would corrupt every clock downstream and let the
// detector invent races. Only hot-site read/write records are sheddable.
func TestShedNeverDropsSync(t *testing.T) {
	// Negative watermarks force the latch on (occupancy 0 >= -2) and keep
	// it on (0 < -1 is false), isolating the compaction logic.
	srv := &Server{opts: Options{ShedHighWater: -2, ShedLowWater: -1, ShedHotSite: 2}}
	sess := shedSession(t)
	b := &event.Batch{}
	syncOps := []event.Op{
		event.OpAcquire, event.OpRelease, event.OpFork, event.OpJoin,
		event.OpBarrierArrive, event.OpMalloc, event.OpFree,
		event.OpChanSend, event.OpChanRecv, event.OpWGAdd, event.OpWGWait,
	}
	for i := 0; i < 10; i++ {
		b.Recs = append(b.Recs, event.Rec{Op: event.OpWrite, PC: 7, Addr: uint64(i)})
		b.Recs = append(b.Recs, event.Rec{Op: syncOps[i%len(syncOps)], Aux: 1})
	}
	shed := srv.shedRecords(sess, b)
	if shed != 8 {
		t.Fatalf("shed %d records, want 8 (site 7 keeps its first 2 accesses)", shed)
	}
	syncKept, accKept := 0, 0
	for _, r := range b.Recs {
		if r.Op == event.OpRead || r.Op == event.OpWrite {
			accKept++
		} else {
			syncKept++
		}
	}
	if syncKept != 10 {
		t.Errorf("sync records shed: %d/10 survived", syncKept)
	}
	if accKept != 2 {
		t.Errorf("kept %d accesses at the hot site, want ShedHotSite = 2", accKept)
	}
	if sess.shed != 0 {
		t.Errorf("shedRecords must not touch sess.shed (dispatch tallies it): %d", sess.shed)
	}
}

// Below the high watermark nothing is shed, however hot the sites: the
// shedder is a pressure valve, not a sampler.
func TestShedIdleQueuesDropNothing(t *testing.T) {
	srv := &Server{opts: Options{ShedHighWater: 0.5, ShedLowWater: 0.25, ShedHotSite: 1}}
	sess := shedSession(t)
	b := &event.Batch{}
	for i := 0; i < 100; i++ {
		b.Recs = append(b.Recs, event.Rec{Op: event.OpWrite, PC: 3, Addr: 0x100})
	}
	if shed := srv.shedRecords(sess, b); shed != 0 {
		t.Fatalf("idle pipeline shed %d records", shed)
	}
	if len(b.Recs) != 100 {
		t.Fatalf("batch compacted while not shedding: %d/100", len(b.Recs))
	}
	if sess.shedding {
		t.Fatal("latch set with occupancy 0 below the high watermark")
	}
}

// The latch releases when occupancy falls below the low watermark: the
// same batch shape stops being shed once pressure clears.
func TestShedLatchReleases(t *testing.T) {
	srv := &Server{opts: Options{ShedHighWater: -1, ShedLowWater: 0.5, ShedHotSite: 1}}
	sess := shedSession(t)
	b := &event.Batch{}
	for i := 0; i < 10; i++ {
		b.Recs = append(b.Recs, event.Rec{Op: event.OpWrite, PC: 9, Addr: 0x40})
	}
	if shed := srv.shedRecords(sess, b); shed != 9 {
		t.Fatalf("latched shedder dropped %d, want 9", shed)
	}
	if !sess.shedding {
		t.Fatal("latch not set at occupancy >= high watermark")
	}
	// Raise the high watermark out of reach: occupancy 0 is now below the
	// low watermark, so the next batch unlatches and keeps everything.
	srv.opts.ShedHighWater = 2
	b2 := &event.Batch{}
	for i := 0; i < 10; i++ {
		b2.Recs = append(b2.Recs, event.Rec{Op: event.OpWrite, PC: 9, Addr: 0x40})
	}
	if shed := srv.shedRecords(sess, b2); shed != 0 {
		t.Fatalf("unlatched shedder dropped %d", shed)
	}
	if sess.shedding {
		t.Fatal("latch did not release below the low watermark")
	}
}
