package server_test

import (
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/workloads"
)

// handshake dials addr, sends hello, and returns the connection, a frame
// reader on it, and the decoded HelloAck. The connection is closed at
// test cleanup.
func handshake(t *testing.T, addr string, hello wire.Hello) (net.Conn, *wire.Reader, wire.HelloAck) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	payload, err := wire.MarshalControl(hello)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire.AppendFrame(nil, wire.Header{Type: wire.TypeHello}, payload)); err != nil {
		t.Fatal(err)
	}
	rd := wire.NewReader(conn, 0)
	h, body, err := rd.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != wire.TypeHelloAck {
		t.Fatalf("handshake reply %v (%s)", h.Type, body)
	}
	var ack wire.HelloAck
	if err := wire.UnmarshalControl(body, &ack); err != nil {
		t.Fatal(err)
	}
	return conn, rd, ack
}

// TestCodecNegotiationMatrix pins the granted codec for every pairing of
// client ceiling (0 = pre-codec client whose Hello has no codec field at
// all, thanks to omitempty) and server ceiling: the grant is the minimum
// of the two, with absence meaning v1.
func TestCodecNegotiationMatrix(t *testing.T) {
	servers := map[int]string{}
	for _, max := range []int{wire.CodecPacked, wire.CodecColumnar} {
		_, addr := startServer(t, server.Options{MaxCodec: max})
		servers[max] = addr
	}
	cases := []struct {
		client, server, want int
	}{
		{0, wire.CodecColumnar, wire.CodecPacked}, // old client, new server
		{wire.CodecPacked, wire.CodecColumnar, wire.CodecPacked},
		{wire.CodecColumnar, wire.CodecColumnar, wire.CodecColumnar},
		{0, wire.CodecPacked, wire.CodecPacked},
		{wire.CodecColumnar, wire.CodecPacked, wire.CodecPacked}, // new client, old server
		{99, wire.CodecColumnar, wire.CodecColumnar},             // future client is capped
	}
	for _, c := range cases {
		_, _, ack := handshake(t, servers[c.server], wire.Hello{
			Version: wire.Version, Granularity: uint8(detector.Dynamic),
			Workers: 1, Codec: c.client,
		})
		if ack.Codec != c.want {
			t.Errorf("client ceiling %d x server ceiling %d: granted %d, want %d",
				c.client, c.server, ack.Codec, c.want)
		}
	}
}

// TestOldClientNewServer emulates a pre-codec client byte for byte: its
// Hello carries no codec field, it streams packed v1 batch frames with
// wire.AppendBatchFrame, and it ignores the codec field of the ack. A
// current server must grant v1, decode the packed frames, and return the
// right report.
func TestOldClientNewServer(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	conn, rd, ack := handshake(t, addr, wire.Hello{
		Version: wire.Version, Granularity: uint8(detector.Dynamic), Workers: 1,
	})
	if ack.Codec != wire.CodecPacked {
		t.Fatalf("granted codec %d to a pre-codec hello, want %d", ack.Codec, wire.CodecPacked)
	}

	b := &event.Batch{}
	b.Append(event.Rec{Op: event.OpWrite, Tid: 0, Addr: 0x2000, Size: 4, Seq: 1})
	b.Append(event.Rec{Op: event.OpWrite, Tid: 1, Addr: 0x2000, Size: 4, Seq: 2})
	if _, err := conn.Write(wire.AppendBatchFrame(nil, wire.Header{Session: ack.SessionID, Seq: 1}, b)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire.AppendFrame(nil, wire.Header{Type: wire.TypeClose, Session: ack.SessionID, Seq: 1}, nil)); err != nil {
		t.Fatal(err)
	}
	var rep wire.Report
	for {
		h, payload, err := rd.ReadFrame()
		if err != nil {
			t.Fatalf("reading report: %v", err)
		}
		if h.Type == wire.TypeError {
			t.Fatalf("server error: %s", payload)
		}
		if h.Type == wire.TypeReport {
			if err := wire.UnmarshalControl(payload, &rep); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if rep.Events != 2 || len(rep.Races) != 1 {
		t.Fatalf("old-client session report: events=%d races=%v", rep.Events, rep.Races)
	}
}

// TestNewClientOldServer runs a current client against a server capped at
// the packed codec (the stand-in for a pre-codec server deployment): the
// client must settle on v1 and the full workload report must still match
// the in-process reference.
func TestNewClientOldServer(t *testing.T) {
	_, addr := startServer(t, server.Options{MaxCodec: wire.CodecPacked})
	spec, err := workloads.ByName("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	ref := detector.New(detector.Config{Granularity: detector.Dynamic})
	sim.Run(spec.Program(), ref, sim.Options{Seed: 42})

	cl, err := client.Dial(client.Options{
		Addr:  addr,
		Hello: wire.Hello{Granularity: uint8(detector.Dynamic), Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Codec() != wire.CodecPacked {
		t.Fatalf("client settled on codec %d against a v1-only server, want %d",
			cl.Codec(), wire.CodecPacked)
	}
	sim.Run(spec.Program(), cl, sim.Options{Seed: 42})
	rep, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := sortDetRaces(ref.Races())
	got := sortDetRaces(rep.DetectorRaces())
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("race sets differ:\nin-process (%d): %v\nremote v1 (%d): %v",
			len(want), want, len(got), got)
	}
	if rep.Stats.Accesses != ref.Stats().Accesses {
		t.Fatalf("Accesses: in-process %d, remote %d", ref.Stats().Accesses, rep.Stats.Accesses)
	}
}

// TestResumeKeepsSessionCodec pins the resume invariant: the codec is
// fixed when the session opens, and a resume handshake is granted exactly
// the stored codec no matter what the reconnecting hello asks for.
func TestResumeKeepsSessionCodec(t *testing.T) {
	srv, addr := startServer(t, server.Options{SessionLinger: 5 * time.Second})
	conn, _, ack := handshake(t, addr, wire.Hello{
		Version: wire.Version, Granularity: uint8(detector.Dynamic),
		Workers: 1, Codec: wire.CodecColumnar,
	})
	if ack.Codec != wire.CodecColumnar {
		t.Fatalf("granted %d, want columnar", ack.Codec)
	}
	b := &event.Batch{}
	b.Append(event.Rec{Op: event.OpWrite, Tid: 0, Addr: 0x3000, Size: 4, Seq: 1})
	b.Append(event.Rec{Op: event.OpWrite, Tid: 1, Addr: 0x3000, Size: 4, Seq: 2})
	if _, err := conn.Write(wire.AppendBatchFrameCodec(nil,
		wire.Header{Session: ack.SessionID, Seq: 1}, b, wire.CodecColumnar)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "batch to be applied", 5*time.Second, func() bool {
		return srv.Metrics().EventsTotal >= 2
	})
	conn.Close() // vanish mid-stream; the session lingers

	// A resume that races the old connection's teardown is refused with the
	// retryable busy code, exactly as a reconnecting client would see.
	var (
		conn2 net.Conn
		rd2   *wire.Reader
		rack  wire.HelloAck
	)
	resume := wire.Hello{
		Version: wire.Version, Resume: ack.SessionID,
		Granularity: uint8(detector.Dynamic), Workers: 1, Codec: wire.CodecColumnar,
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := wire.MarshalControl(resume)
		if _, err := c.Write(wire.AppendFrame(nil, wire.Header{Type: wire.TypeHello}, payload)); err != nil {
			t.Fatal(err)
		}
		rd := wire.NewReader(c, 0)
		h, body, err := rd.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if h.Type == wire.TypeError {
			var ep wire.ErrorPayload
			if err := wire.UnmarshalControl(body, &ep); err != nil {
				t.Fatal(err)
			}
			c.Close()
			if ep.Code != wire.CodeBusy || time.Now().After(deadline) {
				t.Fatalf("resume refused: %+v", ep)
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if h.Type != wire.TypeHelloAck {
			t.Fatalf("resume reply %v", h.Type)
		}
		if err := wire.UnmarshalControl(body, &rack); err != nil {
			t.Fatal(err)
		}
		conn2, rd2 = c, rd
		t.Cleanup(func() { c.Close() })
		break
	}
	if rack.SessionID != ack.SessionID || rack.Codec != wire.CodecColumnar {
		t.Fatalf("resume ack %+v, want session %d codec %d", rack, ack.SessionID, wire.CodecColumnar)
	}
	if rack.ResumeSeq != 1 {
		t.Fatalf("resume seq %d, want 1", rack.ResumeSeq)
	}
	if _, err := conn2.Write(wire.AppendFrame(nil,
		wire.Header{Type: wire.TypeClose, Session: ack.SessionID, Seq: 1}, nil)); err != nil {
		t.Fatal(err)
	}
	for {
		h, payload, err := rd2.ReadFrame()
		if err != nil {
			t.Fatalf("reading report: %v", err)
		}
		if h.Type == wire.TypeReport {
			var rep wire.Report
			if err := wire.UnmarshalControl(payload, &rep); err != nil {
				t.Fatal(err)
			}
			if rep.Events != 2 || len(rep.Races) != 1 {
				t.Fatalf("resumed session report: events=%d races=%v", rep.Events, rep.Races)
			}
			return
		}
	}
}
