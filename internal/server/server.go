// Package server implements racedetectd's ingest tier: a TCP server that
// owns one sharded detection pipeline per client session, fed by the wire
// protocol (internal/wire). It is the service face of the detector — the
// happens-before analysis runs here, off the critical path of the traced
// program, the way SmartTrack- and RV-Predict-style tools decouple
// instrumentation from analysis.
//
// # Session model
//
// One Hello frame opens (or resumes) a session; a session owns one
// pipeline.Pipeline configured from the negotiated granularity and shard
// count. Batch frames are decoded into pooled batches and replayed into
// the pipeline in sequence order; the server acknowledges applied batch
// sequences on a negotiated cadence, which gives the client a bounded
// in-flight window (backpressure: if the detection workers fall behind,
// acks slow, the window fills, and the producer blocks instead of
// ballooning server memory). Close drains the pipeline and returns the
// merged race report.
//
// A connection drop without Close detaches the session; it lingers for
// Options.SessionLinger so the client can reconnect and resume (replaying
// only unacknowledged batches — the sequence numbers dedup the overlap),
// after which it is aborted and its worker goroutines reclaimed.
//
// # Limits
//
// Per-connection read deadlines, a frame-size ceiling, and a session cap
// bound the damage of slow, bloated, or excessive clients. Shutdown stops
// accepting, aborts lingering sessions, and waits for live sessions to
// finish until the context expires, then force-closes — the SIGTERM drain
// path of cmd/racedetectd.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Options configure a Server. The zero value is usable: every field has a
// production-lean default.
type Options struct {
	// MaxSessions caps concurrently open sessions (default 64).
	MaxSessions int
	// MaxFrameBytes caps one frame's payload (default wire.DefaultMaxFrameBytes).
	MaxFrameBytes uint32
	// ReadTimeout is the per-frame read deadline (default 30s). A client
	// that stalls longer is treated as disconnected.
	ReadTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default 10s).
	WriteTimeout time.Duration
	// Window caps the granted in-flight batch window (default 64).
	Window int
	// AckEvery caps the acknowledgement cadence in batches (default 8; the
	// granted cadence never exceeds half the granted window).
	AckEvery int
	// MaxWorkers caps the per-session detection shard count a Hello may
	// request (default 4; requests of 0 get 1).
	MaxWorkers int
	// MaxCodec caps the batch codec this server grants (default
	// wire.CodecMax). Setting wire.CodecPacked pins every session to the
	// v1 packed format — operationally a downgrade switch, and in tests a
	// stand-in for a pre-columnar server build.
	MaxCodec int
	// SessionLinger keeps a detached session resumable after its
	// connection drops before aborting it (default 10s).
	SessionLinger time.Duration
	// Logf, when non-nil, receives one line per session lifecycle event
	// (legacy printf sink; superseded by Logger when both are set).
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives structured session lifecycle records
	// with typed fields (session id, granularity, codec, ...). When nil,
	// records are rendered onto Logf; when both are nil, logging is off.
	Logger *slog.Logger
	// Telemetry, when non-nil, is the registry the server's racedetectd_*
	// families and per-session (session-labeled) pipeline/detector families
	// are registered on. Nil makes the server create its own registry, so
	// the HTTP sidecar always has metrics to serve.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, receives server dispatch and shard apply spans
	// for traced batches, and backs the /debug/spans endpoint. Nil makes
	// the server create a bounded tracer of its own (so traced sessions
	// always have a span sink without unbounded growth).
	Tracer *telemetry.Tracer
	// NoTrace refuses Hello.Trace: sessions are never granted distributed
	// tracing and the server never sees span-context prefixes. The zero
	// value grants tracing to clients that ask — absent-means-untraced
	// keeps old clients unaffected either way.
	NoTrace bool
	// NoProvenance refuses Hello.Provenance: detectors run without the
	// race-provenance flight recorder regardless of what clients request.
	NoProvenance bool
	// ShedHighWater enables load shedding: once a session's pipeline
	// queue occupancy (mean occupied fraction of its worker queues, in
	// [0,1]) reaches this watermark, the server drops memory-access
	// records from hot code sites before they reach the pipeline, until
	// occupancy falls back below ShedLowWater. Hot-site accesses carry
	// the lowest marginal detection value (their first bursts were
	// analyzed; unseen races hide in the cold tail), so they are shed
	// first — and synchronization and heap records are never shed, so
	// happens-before stays exact. Shed records are counted, not silent:
	// sampling_shed_total and the session report's shed_records field.
	// 0 disables shedding.
	ShedHighWater float64
	// ShedLowWater is the occupancy at which shedding stops (default
	// half of ShedHighWater).
	ShedLowWater float64
	// ShedHotSite is how many accesses a code site must have shown this
	// session before its records become sheddable (default 64) — the
	// shedder's notion of "hot".
	ShedHotSite uint32
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	if o.MaxFrameBytes == 0 {
		o.MaxFrameBytes = wire.DefaultMaxFrameBytes
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 30 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.AckEvery <= 0 {
		o.AckEvery = 8
	}
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = 4
	}
	if o.SessionLinger <= 0 {
		o.SessionLinger = 10 * time.Second
	}
	if o.MaxCodec <= 0 || o.MaxCodec > wire.CodecMax {
		o.MaxCodec = wire.CodecMax
	}
	if o.ShedHighWater > 0 {
		if o.ShedLowWater <= 0 || o.ShedLowWater > o.ShedHighWater {
			o.ShedLowWater = o.ShedHighWater / 2
		}
		if o.ShedHotSite == 0 {
			o.ShedHotSite = 64
		}
	}
	return o
}

// session is one client detection session. Its pipeline is fed only by
// the connection that currently owns it; ownership hand-off (detach on
// disconnect, attach on resume) is guarded by the server mutex.
type session struct {
	id       uint64
	hello    wire.Hello
	pl       *pipeline.Pipeline
	window   int
	ackEvery int
	codec    int  // granted batch codec; every Batch frame decodes with it
	traced   bool // granted Hello.Trace: span-context batch prefixes accepted
	prov     bool // granted Hello.Provenance: detectors carry flight recorders
	opened   time.Time

	// lastSeq is the highest batch sequence applied; lastAcked the highest
	// acknowledged. Only the owning connection touches them.
	lastSeq   uint64
	lastAcked uint64

	// seqApplied/eventsApplied mirror lastSeq and the applied record count
	// as atomics, so introspection (/sessions) can read them while the
	// owning connection streams.
	seqApplied    atomic.Uint64
	eventsApplied atomic.Uint64

	attached bool        // guarded by Server.mu
	conn     net.Conn    // owning connection while attached; guarded by Server.mu
	linger   *time.Timer // guarded by Server.mu

	// closedFrame is set on a session resumed from the closed-report
	// cache: the detection work is done and only the encoded Report frame
	// remains to re-deliver. Such a session has no pipeline.
	closedFrame []byte

	// Load shedding (Options.ShedHighWater): heat counts each code
	// site's accesses this session, shedding latches between the
	// watermarks, and shed tallies dropped records for the session
	// report. Only the owning connection touches them.
	heat     map[event.PC]uint32
	shedding bool
	shed     uint64
}

// closedReport retains a closed session's encoded Report frame for
// SessionLinger, so a client whose connection died between the server
// writing the report and reading it can resume and retry its Close —
// without this window the report would be lost exactly once.
type closedReport struct {
	lastSeq  uint64
	window   int
	ackEvery int
	codec    int
	frame    []byte
	timer    *time.Timer
}

// serverMetrics are the registry-backed racedetectd_* counters. Session
// lifecycle counters (sessionsTotal, sessionsAborted) are incremented while
// holding Server.mu, so any snapshot taken under the same lock observes a
// state where the counter invariants against the session map hold (the old
// mixed atomic/mutex snapshot could see, e.g., an active session its total
// had not counted yet).
type serverMetrics struct {
	sessionsTotal   *telemetry.Counter
	sessionsAborted *telemetry.Counter
	batchesTotal    *telemetry.Counter
	eventsTotal     *telemetry.Counter
	racesTotal      *telemetry.Counter
	bytesRead       *telemetry.Counter
	framesRejected  *telemetry.Counter
	shedRecords     *telemetry.Counter
}

// Server accepts wire-protocol connections and runs detection sessions.
type Server struct {
	opts   Options
	reg    *telemetry.Registry
	met    serverMetrics
	tracer *telemetry.Tracer
	log    *slog.Logger

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	sessions  map[uint64]*session
	closed    map[uint64]*closedReport
	nextID    uint64
	draining  bool
	wg        sync.WaitGroup

	// provMu guards provRecent, the bounded ring of recently reported
	// races (with their provenance) served by /debug/provenance.
	provMu     sync.Mutex
	provRecent []SessionRace

	startTime time.Time
}

// New returns a server with opts (zero-value fields defaulted).
func New(opts Options) *Server {
	s := &Server{
		opts:      opts.withDefaults(),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		sessions:  make(map[uint64]*session),
		closed:    make(map[uint64]*closedReport),
		startTime: time.Now(),
	}
	s.reg = s.opts.Telemetry
	if s.reg == nil {
		s.reg = telemetry.New()
	}
	telemetry.RegisterProcessMetrics(s.reg)
	s.tracer = s.opts.Tracer
	if s.tracer == nil {
		s.tracer = telemetry.NewBoundedTracer(4096)
	}
	s.log = s.opts.Logger
	if s.log == nil {
		s.log = telemetry.NewLogfLogger(s.opts.Logf)
	}
	s.met = serverMetrics{
		sessionsTotal:   s.reg.Counter("racedetectd_sessions_total", "Sessions ever opened."),
		sessionsAborted: s.reg.Counter("racedetectd_sessions_aborted_total", "Sessions dropped without a clean Close."),
		batchesTotal:    s.reg.Counter("racedetectd_batches_total", "Batch frames applied to detection pipelines."),
		eventsTotal:     s.reg.Counter("racedetectd_events_total", "Event records applied to detection pipelines."),
		racesTotal:      s.reg.Counter("racedetectd_races_total", "Races reported by completed sessions."),
		bytesRead:       s.reg.Counter("racedetectd_bytes_read_total", "Wire bytes ingested (headers and payloads)."),
		framesRejected:  s.reg.Counter("racedetectd_frames_rejected_total", "Frames refused (bad magic, CRC, size, or protocol)."),
		shedRecords:     s.reg.Counter("sampling_shed_total", "Access records shed under queue pressure before reaching a pipeline (sync is never shed)."),
	}
	s.reg.GaugeFunc("racedetectd_sessions_active", "Open detection sessions (attached or lingering).",
		func() float64 { return float64(s.SessionCount()) })
	s.reg.GaugeFunc("racedetectd_queue_depth", "Batches queued to detection workers across sessions.",
		func() float64 { return float64(s.queueDepth()) })
	s.reg.GaugeFunc("racedetectd_draining", "1 while the server is shutting down.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.draining {
			return 1
		}
		return 0
	})
	s.reg.GaugeFunc("racedetectd_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.startTime).Seconds() })
	return s
}

// Registry returns the server's metric registry (never nil) — the same
// registry the HTTP sidecar exposes.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// shedRecords implements the session's load shedder: it latches the
// shedding state between the occupancy watermarks, tracks per-site heat,
// and — while shedding — compacts b.Recs in place, dropping read/write
// records from sites hotter than ShedHotSite. Synchronization and heap
// records always survive (dropping a sync edge would corrupt the
// happens-before relation and invent races; dropping an access only
// risks missing one), and every site keeps its first ShedHotSite
// accesses, so the cold tail — where unseen races live — keeps full
// coverage. Returns the number of records dropped.
func (s *Server) shedRecords(sess *session, b *event.Batch) int {
	occ := sess.pl.Occupancy()
	if sess.shedding {
		if occ < s.opts.ShedLowWater {
			sess.shedding = false
		}
	} else if occ >= s.opts.ShedHighWater {
		sess.shedding = true
	}
	if sess.heat == nil {
		sess.heat = make(map[event.PC]uint32)
	}
	kept := b.Recs[:0]
	shed := 0
	for i := range b.Recs {
		r := b.Recs[i]
		if r.Op != event.OpRead && r.Op != event.OpWrite {
			kept = append(kept, r)
			continue
		}
		h := sess.heat[r.PC] + 1
		sess.heat[r.PC] = h
		if sess.shedding && h > s.opts.ShedHotSite {
			shed++
			continue
		}
		kept = append(kept, r)
	}
	b.Recs = kept
	return shed
}

// queueDepth sums the live sessions' pipeline queues.
func (s *Server) queueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	depth := 0
	for _, sess := range s.sessions {
		if sess.pl != nil {
			depth += sess.pl.QueueDepth()
		}
	}
	return depth
}

// Tracer returns the server's span sink (never nil) — the same tracer the
// /debug/spans endpoint exposes.
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// ErrServerClosed is returned by Serve after Shutdown closes the listener.
var ErrServerClosed = errors.New("server: closed")

// ListenAndServe listens on addr (TCP) and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve accepts connections from l until l is closed (by Shutdown or the
// caller). Each connection runs its own handler goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Shutdown drains the server: it stops accepting, aborts lingering
// detached sessions, and waits for active connections to finish until ctx
// expires, after which remaining connections are force-closed (their
// sessions are aborted cleanly — pipelines drained, goroutines reclaimed).
// Returns nil on a clean drain, ctx.Err() when force-close was needed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	// Abort sessions nobody is attached to; nothing will resume them now.
	var detached []*session
	for _, sess := range s.sessions {
		if !sess.attached {
			detached = append(detached, sess)
		}
	}
	s.mu.Unlock()
	for _, sess := range detached {
		s.abortSession(sess)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// ---- connection handling ----

// protoErr is a session-fatal protocol violation reported to the client.
type protoErr struct {
	code string
	msg  string
}

func (e *protoErr) Error() string { return fmt.Sprintf("%s: %s", e.code, e.msg) }

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	var sess *session
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		if sess != nil {
			s.detachSession(sess)
		}
	}()

	rd := wire.NewReader(conn, s.opts.MaxFrameBytes)
	var scratch []byte
	var prevBytes int64
	for {
		conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		h, payload, err := rd.ReadFrame()
		if cur := int64(rd.PayloadBytes()) + int64(rd.Frames())*wire.HeaderSize; cur != prevBytes {
			s.met.bytesRead.Add(uint64(cur - prevBytes))
			prevBytes = cur
		}
		if err != nil {
			if errors.Is(err, wire.ErrBadMagic) || errors.Is(err, wire.ErrCRC) || errors.Is(err, wire.ErrTooLarge) {
				s.met.framesRejected.Inc()
				scratch = s.writeError(conn, scratch, wire.CodeProtocol, err.Error())
			}
			return
		}
		sess, scratch, err = s.dispatch(conn, sess, h, payload, scratch)
		if err != nil {
			var pe *protoErr
			if errors.As(err, &pe) {
				s.met.framesRejected.Inc()
				scratch = s.writeError(conn, scratch, pe.code, pe.msg)
			}
			return
		}
		if sess == nil && h.Type == wire.TypeClose {
			return // clean end of session
		}
	}
}

// dispatch handles one decoded frame. It returns the (possibly changed)
// session; a *protoErr error is reported to the client before the
// connection closes.
func (s *Server) dispatch(conn net.Conn, sess *session, h wire.Header, payload []byte, scratch []byte) (*session, []byte, error) {
	out := scratch
	switch h.Type {
	case wire.TypeHello:
		if sess != nil {
			return sess, out, &protoErr{wire.CodeProtocol, "duplicate hello"}
		}
		var hello wire.Hello
		if err := wire.UnmarshalControl(payload, &hello); err != nil {
			return nil, out, &protoErr{wire.CodeProtocol, err.Error()}
		}
		newSess, ack, err := s.openSession(hello, conn)
		if err != nil {
			return nil, out, err
		}
		out = out[:0]
		out, merr := wire.AppendControlFrame(out, wire.Header{Type: wire.TypeHelloAck, Session: newSess.id}, ack)
		if merr != nil {
			s.detachSession(newSess)
			return nil, out, merr
		}
		if werr := s.writeFrame(conn, out); werr != nil {
			s.detachSession(newSess)
			return nil, out, werr
		}
		if newSess.closedFrame != nil {
			s.log.Info("session resumed after close; report pending re-delivery",
				"session", newSess.id)
		} else {
			verb := "session opened"
			if hello.Resume != 0 {
				verb = "session resumed"
			}
			s.log.Info(verb,
				"session", newSess.id,
				"granularity", detector.Granularity(hello.Granularity).String(),
				"workers", newSess.pl.Workers(),
				"window", newSess.window,
				"codec", wire.CodecName(newSess.codec),
				"resume_seq", ack.ResumeSeq,
				"trace", newSess.traced,
				"provenance", newSess.prov)
		}
		return newSess, out, nil

	case wire.TypeBatch:
		if sess == nil {
			return nil, out, &protoErr{wire.CodeNoSession, "batch before hello"}
		}
		if h.Seq <= sess.lastSeq {
			// Duplicate from a resume replay; acknowledge so the client's
			// window frees up, but do not re-apply.
			out = out[:0]
			out = wire.AppendFrame(out, wire.Header{Type: wire.TypeAck, Session: sess.id, Seq: sess.lastSeq}, nil)
			sess.lastAcked = sess.lastSeq
			return sess, out, s.writeFrame(conn, out)
		}
		if sess.closedFrame != nil {
			// Resumed after a clean close: every real batch was already
			// applied (the dedup branch above covers replays), so a new
			// sequence number cannot be legitimate.
			return sess, out, &protoErr{wire.CodeProtocol,
				fmt.Sprintf("batch %d after session close", h.Seq)}
		}
		if h.Seq != sess.lastSeq+1 {
			return sess, out, &protoErr{wire.CodeProtocol,
				fmt.Sprintf("batch sequence gap: got %d, want %d", h.Seq, sess.lastSeq+1)}
		}
		trace, clientSpan, recs, terr := wire.SplitTracePrefix(h, payload)
		if terr != nil {
			return sess, out, &protoErr{wire.CodeProtocol, terr.Error()}
		}
		var n int
		if sess.codec == wire.CodecColumnar && s.opts.ShedHighWater <= 0 {
			// Columnar hot path: the v2 payload decodes straight into a
			// structure-of-arrays batch and flows column-wise into the
			// pipeline — no per-record Rec materialization between the wire
			// and the detection workers. Shedding sessions stay on the
			// record path because shedRecords compacts row-major batches.
			c, err := wire.DecodeColumnarCols(recs)
			if err != nil {
				return sess, out, &protoErr{wire.CodeProtocol, err.Error()}
			}
			n = c.Len()
			if trace != 0 {
				dispatchSpan := telemetry.NewTraceID()
				start := time.Now()
				sess.pl.SetTrace(trace, dispatchSpan)
				sess.pl.ApplyCols(c)
				sess.pl.SetTrace(0, 0)
				s.tracer.RecordSpan(telemetry.SpanRecord{
					Trace: trace, Span: dispatchSpan, Parent: clientSpan,
					Name: "server.dispatch", Process: "racedetectd",
					Dur:  time.Since(start).Nanoseconds(),
					Args: map[string]any{"session": sess.id, "seq": h.Seq, "recs": n},
				})
			} else {
				sess.pl.ApplyCols(c)
			}
			event.PutCols(c)
		} else {
			b, err := wire.DecodeBatchCodec(recs, sess.codec)
			if err != nil {
				return sess, out, &protoErr{wire.CodeProtocol, err.Error()}
			}
			if s.opts.ShedHighWater > 0 {
				if shed := s.shedRecords(sess, b); shed > 0 {
					sess.shed += uint64(shed)
					s.met.shedRecords.Add(uint64(shed))
				}
			}
			n = len(b.Recs)
			if trace != 0 {
				// Continue the client's trace: a server.dispatch span parented
				// under the client.batch root, with the pipeline stamping the
				// shipped shard batches so apply spans nest beneath it.
				dispatchSpan := telemetry.NewTraceID()
				start := time.Now()
				sess.pl.SetTrace(trace, dispatchSpan)
				b.Apply(sess.pl)
				sess.pl.SetTrace(0, 0)
				s.tracer.RecordSpan(telemetry.SpanRecord{
					Trace: trace, Span: dispatchSpan, Parent: clientSpan,
					Name: "server.dispatch", Process: "racedetectd",
					Dur:  time.Since(start).Nanoseconds(),
					Args: map[string]any{"session": sess.id, "seq": h.Seq, "recs": n},
				})
			} else {
				b.Apply(sess.pl)
			}
			event.PutBatch(b)
		}
		sess.lastSeq = h.Seq
		sess.seqApplied.Store(h.Seq)
		sess.eventsApplied.Add(uint64(n))
		s.met.batchesTotal.Inc()
		s.met.eventsTotal.Add(uint64(n))
		if sess.lastSeq-sess.lastAcked >= uint64(sess.ackEvery) {
			out = out[:0]
			out = wire.AppendFrame(out, wire.Header{Type: wire.TypeAck, Session: sess.id, Seq: sess.lastSeq}, nil)
			sess.lastAcked = sess.lastSeq
			return sess, out, s.writeFrame(conn, out)
		}
		return sess, out, nil

	case wire.TypeFlush:
		if sess == nil {
			return nil, out, &protoErr{wire.CodeNoSession, "flush before hello"}
		}
		out = out[:0]
		out = wire.AppendFrame(out, wire.Header{Type: wire.TypeFlushAck, Session: sess.id, Seq: sess.lastSeq}, nil)
		sess.lastAcked = sess.lastSeq
		return sess, out, s.writeFrame(conn, out)

	case wire.TypeClose:
		if sess == nil {
			return nil, out, &protoErr{wire.CodeNoSession, "close before hello"}
		}
		if sess.closedFrame != nil {
			// Re-deliver the retained report to a client that lost its
			// connection after the original Close was processed.
			if werr := s.writeFrame(conn, sess.closedFrame); werr != nil {
				return sess, out, werr
			}
			s.dropClosed(sess.id)
			s.log.Info("session report re-delivered", "session", sess.id)
			return nil, out, nil
		}
		res := sess.pl.Wait() // idempotent: a retried Close reuses the merged result
		rep := wire.FromResult(res)
		rep.LastSeq = sess.lastSeq // drain watermark for cluster merge
		rep.Stats.ShedRecords = sess.shed
		out = out[:0]
		out, merr := wire.AppendControlFrame(out, wire.Header{Type: wire.TypeReport, Session: sess.id, Seq: sess.lastSeq}, rep)
		if merr != nil {
			return nil, out, merr
		}
		if werr := s.writeFrame(conn, out); werr != nil {
			// The client never saw the report; keep the session so a
			// reconnect can resume and retry the Close.
			return sess, out, werr
		}
		s.met.racesTotal.Add(uint64(len(rep.Races)))
		s.recordRaces(sess.id, rep.Races)
		s.retireSession(sess, out)
		s.log.Info("session closed",
			"session", sess.id, "batches", sess.lastSeq,
			"events", res.Events, "races", len(rep.Races))
		return nil, out, nil

	default:
		return sess, out, &protoErr{wire.CodeProtocol, fmt.Sprintf("unexpected frame %v", h.Type)}
	}
}

func (s *Server) writeFrame(conn net.Conn, frame []byte) error {
	conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	_, err := conn.Write(frame)
	return err
}

func (s *Server) writeError(conn net.Conn, scratch []byte, code, msg string) []byte {
	out := scratch[:0]
	out, err := wire.AppendControlFrame(out, wire.Header{Type: wire.TypeError}, wire.ErrorPayload{Code: code, Message: msg})
	if err == nil {
		s.writeFrame(conn, out)
	}
	return out
}

// ---- session lifecycle ----

// openSession validates a Hello and creates a new session or resumes a
// detached one.
func (s *Server) openSession(hello wire.Hello, conn net.Conn) (*session, wire.HelloAck, error) {
	var ack wire.HelloAck
	if hello.Version != wire.Version {
		return nil, ack, &protoErr{wire.CodeBadVersion,
			fmt.Sprintf("protocol version %d, want %d", hello.Version, wire.Version)}
	}
	if g := detector.Granularity(hello.Granularity); g != detector.Byte && g != detector.Word && g != detector.Dynamic {
		return nil, ack, &protoErr{wire.CodeBadOptions, fmt.Sprintf("unknown granularity %d", hello.Granularity)}
	}
	if hello.Workers < 0 {
		return nil, ack, &protoErr{wire.CodeBadOptions, fmt.Sprintf("negative workers %d", hello.Workers)}
	}
	if m := detector.ClockMode(hello.Clock); m != detector.ClockGeneral && m != detector.ClockCompact {
		return nil, ack, &protoErr{wire.CodeBadOptions, fmt.Sprintf("unknown clock mode %d", hello.Clock)}
	}
	// Negotiate the batch codec: the client's ceiling capped by this
	// server's (absent field → the original packed format, so pre-codec
	// peers interoperate transparently).
	codec := wire.NegotiateCodec(hello.Codec)
	if codec > s.opts.MaxCodec {
		codec = s.opts.MaxCodec
	}
	// Trace and provenance grants follow the codec's interop rule: the
	// client asks, the server grants unless operationally disabled, and
	// absence on either side means off.
	traced := hello.Trace && !s.opts.NoTrace
	prov := hello.Provenance && !s.opts.NoProvenance

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ack, &protoErr{wire.CodeDraining, "server is draining"}
	}

	if hello.Resume != 0 {
		sess, ok := s.sessions[hello.Resume]
		if !ok {
			if cr, ok := s.closed[hello.Resume]; ok {
				// The session closed cleanly but the client may not have
				// received the report; hand back a pipeline-less session
				// that can only re-deliver the retained report frame.
				sess := &session{
					id: hello.Resume, window: cr.window, ackEvery: cr.ackEvery,
					codec: cr.codec, lastSeq: cr.lastSeq, lastAcked: cr.lastSeq,
					closedFrame: cr.frame, attached: true,
				}
				ack = wire.HelloAck{SessionID: sess.id, Window: cr.window,
					AckEvery: cr.ackEvery, ResumeSeq: cr.lastSeq, Codec: cr.codec}
				return sess, ack, nil
			}
			return nil, ack, &protoErr{wire.CodeNoSession,
				fmt.Sprintf("session %d not resumable (expired or never existed)", hello.Resume)}
		}
		if sess.attached {
			// The resume raced the old connection's teardown (the client
			// noticed the drop before we did). Close the stale connection
			// so its handler detaches promptly, and tell the client to
			// retry — CodeBusy is transient, not permanent.
			if sess.conn != nil {
				sess.conn.Close()
			}
			return nil, ack, &protoErr{wire.CodeBusy,
				fmt.Sprintf("session %d still attached to its previous connection; retry", hello.Resume)}
		}
		if sess.linger != nil {
			sess.linger.Stop()
			sess.linger = nil
		}
		sess.attached = true
		sess.conn = conn
		// A resumed session keeps the codec negotiated at open: the
		// retained unacked frames the client will replay are encoded in
		// it, so renegotiating mid-session could misinterpret them.
		ack = wire.HelloAck{SessionID: sess.id, Window: sess.window, AckEvery: sess.ackEvery,
			ResumeSeq: sess.lastSeq, Codec: sess.codec, Trace: sess.traced}
		return sess, ack, nil
	}

	if len(s.sessions) >= s.opts.MaxSessions {
		return nil, ack, &protoErr{wire.CodeSessionLimit,
			fmt.Sprintf("session limit %d reached", s.opts.MaxSessions)}
	}
	workers := hello.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > s.opts.MaxWorkers {
		workers = s.opts.MaxWorkers
	}
	window := hello.Window
	if window <= 0 || window > s.opts.Window {
		window = s.opts.Window
	}
	ackEvery := s.opts.AckEvery
	if ackEvery > window/2 {
		ackEvery = window / 2
	}
	if ackEvery < 1 {
		ackEvery = 1
	}
	var tracer *telemetry.Tracer
	if traced {
		tracer = s.tracer
	}
	s.nextID++
	sess := &session{
		id:    s.nextID,
		hello: hello,
		pl: pipeline.New(pipeline.Options{
			Workers: workers,
			Tracer:  tracer,
			Detector: detector.Config{
				Granularity:      detector.Granularity(hello.Granularity),
				NoInitState:      hello.NoInitState,
				NoInitSharing:    hello.NoInitSharing,
				WriteGuidedReads: hello.WriteGuidedReads,
				ReadReset:        hello.ReadReset,
				ReshareInterval:  hello.ReshareInterval,
				Clock:            detector.ClockMode(hello.Clock),
				Provenance:       prov,
			},
			// Per-session labeled view: the session's pipeline/detector
			// families appear on /metrics as session="<id>" series and are
			// pruned when the session retires or aborts (the cardinality
			// valve for a long-lived server).
			Telemetry: s.reg.With(telemetry.Labels{"session": fmt.Sprint(s.nextID)}),
		}),
		window:   window,
		ackEvery: ackEvery,
		codec:    codec,
		traced:   traced,
		prov:     prov,
		opened:   time.Now(),
		attached: true,
		conn:     conn,
	}
	s.sessions[sess.id] = sess
	s.met.sessionsTotal.Inc()
	ack = wire.HelloAck{SessionID: sess.id, Window: window, AckEvery: ackEvery, Codec: codec, Trace: traced}
	return sess, ack, nil
}

// maxRecentRaces bounds the /debug/provenance ring.
const maxRecentRaces = 1024

// recordRaces retains a closed session's reported races (with provenance,
// when the session negotiated it) for /debug/provenance.
func (s *Server) recordRaces(session uint64, races []wire.ReportRace) {
	if len(races) == 0 {
		return
	}
	s.provMu.Lock()
	for _, r := range races {
		s.provRecent = append(s.provRecent, SessionRace{Session: session, Race: r})
	}
	if n := len(s.provRecent); n > maxRecentRaces {
		s.provRecent = append(s.provRecent[:0], s.provRecent[n-maxRecentRaces:]...)
	}
	s.provMu.Unlock()
}

// RecentRaces returns the most recently reported races (newest last), the
// data behind /debug/provenance.
func (s *Server) RecentRaces() []SessionRace {
	s.provMu.Lock()
	defer s.provMu.Unlock()
	return append([]SessionRace(nil), s.provRecent...)
}

// pruneSessionSeries drops the session-labeled metric series of a finished
// session, bounding the exposition's cardinality over the server's life.
func (s *Server) pruneSessionSeries(id uint64) {
	label := fmt.Sprint(id)
	s.reg.Prune(func(_ string, l telemetry.Labels) bool {
		v, ok := l["session"]
		return !ok || v != label
	})
}

// detachSession is called when a connection drops without Close: the
// session lingers for resume, then is aborted.
func (s *Server) detachSession(sess *session) {
	s.mu.Lock()
	if _, live := s.sessions[sess.id]; !live {
		s.mu.Unlock()
		return // already closed by a Close frame
	}
	sess.attached = false
	sess.conn = nil
	if s.draining {
		s.mu.Unlock()
		s.abortSession(sess)
		return
	}
	sess.linger = time.AfterFunc(s.opts.SessionLinger, func() { s.abortSession(sess) })
	s.mu.Unlock()
	s.log.Info("session detached; lingering for resume",
		"session", sess.id, "linger", s.opts.SessionLinger)
}

// abortSession discards a session that will never complete: the pipeline
// is drained so its worker goroutines exit, and the partial result is
// dropped.
func (s *Server) abortSession(sess *session) {
	s.mu.Lock()
	if _, live := s.sessions[sess.id]; !live || sess.attached {
		// Already closed, or resumed between the linger firing and now.
		s.mu.Unlock()
		return
	}
	delete(s.sessions, sess.id)
	// Counted under the lock so snapshots never see the session both gone
	// from the map and missing from the aborted total.
	s.met.sessionsAborted.Inc()
	s.mu.Unlock()
	sess.pl.Wait()
	s.pruneSessionSeries(sess.id)
	s.log.Warn("session aborted; client never closed",
		"session", sess.id, "batches", sess.seqApplied.Load(),
		"events", sess.eventsApplied.Load())
}

// retireSession removes a cleanly closed session and retains its encoded
// Report frame for SessionLinger. TCP write success does not mean the
// client read the report — if the connection dies in that window, the
// client resumes the session id and retries its Close against the
// retained frame instead of losing the report forever.
func (s *Server) retireSession(sess *session, reportFrame []byte) {
	cr := &closedReport{
		lastSeq:  sess.lastSeq,
		window:   sess.window,
		ackEvery: sess.ackEvery,
		codec:    sess.codec,
		frame:    append([]byte(nil), reportFrame...),
	}
	s.mu.Lock()
	delete(s.sessions, sess.id)
	if sess.linger != nil {
		sess.linger.Stop()
		sess.linger = nil
	}
	cr.timer = time.AfterFunc(s.opts.SessionLinger, func() { s.dropClosed(sess.id) })
	s.closed[sess.id] = cr
	s.mu.Unlock()
	s.pruneSessionSeries(sess.id)
}

// dropClosed discards a retained closed-session report.
func (s *Server) dropClosed(id uint64) {
	s.mu.Lock()
	if cr, ok := s.closed[id]; ok {
		cr.timer.Stop()
		delete(s.closed, id)
	}
	s.mu.Unlock()
}

// SessionCount returns the number of open sessions (attached or
// lingering).
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}
