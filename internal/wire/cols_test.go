package wire

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/event"
)

// TestColsDecodeMatchesRecordDecode pins the two v2 decoders to each
// other: the columnar-into-Cols decoder must produce exactly the records
// the record-major decoder does, for every payload shape the encoder emits.
func TestColsDecodeMatchesRecordDecode(t *testing.T) {
	cases := map[string][]event.Rec{
		"empty":  nil,
		"single": {{Op: event.OpWrite, Tid: 3, Addr: 0xdeadbeef, Size: 4, PC: 17, Seq: 1}},
		"stream": streamRecs(2048),
		"extremes": {
			{Op: event.OpMalloc, Tid: -1, Addr: math.MaxUint64, Aux: math.MaxUint64, Seq: math.MaxUint64},
			{Op: event.OpFree, Tid: math.MaxInt32, Addr: 0, Aux: 0, Seq: 0},
			{Op: event.OpRead, Tid: math.MinInt32, Addr: 1, Size: math.MaxUint32, PC: math.MaxUint32, Seq: 9},
		},
	}
	for name, recs := range cases {
		t.Run(name, func(t *testing.T) {
			payload := AppendColumnar(nil, recs)
			c, err := DecodeColumnarCols(payload)
			if err != nil {
				t.Fatalf("cols decode: %v", err)
			}
			defer event.PutCols(c)
			if c.Len() != len(recs) {
				t.Fatalf("decoded %d records, want %d", c.Len(), len(recs))
			}
			for i, want := range recs {
				if got := c.Rec(i); got != want {
					t.Fatalf("record %d = %+v, want %+v", i, got, want)
				}
			}
		})
	}
}

// TestAppendColumnarColsByteIdentical checks the column-major encoder is a
// byte-exact twin of the record-major one: the wire format has a single
// canonical encoding regardless of which in-memory layout produced it.
func TestAppendColumnarColsByteIdentical(t *testing.T) {
	recs := streamRecs(2048)
	c := &event.Cols{}
	for _, r := range recs {
		c.Append(r)
	}
	want := AppendColumnar(nil, recs)
	got := AppendColumnarCols(nil, c)
	if !bytes.Equal(want, got) {
		t.Fatalf("encodings differ: %d vs %d bytes", len(want), len(got))
	}
}

// TestColsDecodeRejectsMalformedAndRewinds drives the cols decoder over
// the same corruption classes as the record decoder's test, with a
// pre-seeded batch: every failure must rewind to the entry length so a
// pooled Cols is never recycled with partial records in it.
func TestColsDecodeRejectsMalformedAndRewinds(t *testing.T) {
	recs := streamRecs(32)
	payload := AppendColumnar(nil, recs)
	sentinel := event.Rec{Op: event.OpWrite, Tid: 9, Addr: 0x999, Size: 1, Seq: 99}
	check := func(t *testing.T, bad []byte) {
		t.Helper()
		c := &event.Cols{}
		c.Append(sentinel)
		if err := DecodeColumnarColsInto(bad, c); err == nil {
			t.Fatal("malformed payload accepted")
		}
		if c.Len() != 1 || c.Rec(0) != sentinel {
			t.Fatalf("failed decode did not rewind: len %d", c.Len())
		}
	}
	t.Run("truncations", func(t *testing.T) {
		for cut := 0; cut < len(payload); cut++ {
			check(t, payload[:cut])
		}
	})
	t.Run("trailing-bytes", func(t *testing.T) {
		check(t, append(append([]byte{}, payload...), 0))
	})
	t.Run("lying-count", func(t *testing.T) {
		check(t, appendUvarint(nil, 1<<40))
	})
	t.Run("count-mismatch", func(t *testing.T) {
		// Claim 7 records over the column sections of 32: the op run
		// lengths no longer cover the count.
		check(t, append(appendUvarint(nil, 7), payload[1:]...))
	})
	t.Run("bad-op", func(t *testing.T) {
		bad := AppendColumnar(nil, recs[:1])
		bad[1] = byte(MaxOp) + 1
		check(t, bad)
	})
	t.Run("run-overflow", func(t *testing.T) {
		check(t, []byte{1, byte(event.OpRead), 2})
	})
	t.Run("size-overflow", func(t *testing.T) {
		r := []event.Rec{{Op: event.OpRead, Tid: 1, Addr: 8, Size: 4, Seq: 1}}
		good := AppendColumnar(nil, r)
		// Re-encode by hand with a 2^40 size.
		bad := appendUvarint(nil, 1)
		bad = append(bad, byte(event.OpRead))
		bad = appendUvarint(bad, 1)         // op run
		bad = appendUvarint(bad, zigzag(1)) // tid
		bad = appendUvarint(bad, 1)         // tid run
		bad = appendUvarint(bad, zigzag(8)) // addr delta
		bad = appendUvarint(bad, 1<<40)     // size: overflows uint32
		bad = appendUvarint(bad, zigzag(0)) // pc delta
		bad = appendUvarint(bad, zigzag(0)) // aux delta
		bad = appendUvarint(bad, zigzag(1)) // seq delta
		if len(bad) <= len(good) {
			t.Fatal("hand-built payload suspiciously short")
		}
		check(t, bad)
	})
}

// TestDecodeErrorPathsReturnPooledBatches is the pool-leak regression:
// the pooled decode entry points (DecodeBatch, DecodeBatchCodec,
// DecodeColumnarCols) take a batch from the pool on every call and must
// return it on every error exit. An injected stream of truncated and
// corrupt payloads must leave gets == puts — a leak here slowly bleeds
// the server's batch pool under a misbehaving client.
func TestDecodeErrorPathsReturnPooledBatches(t *testing.T) {
	recs := streamRecs(64)
	columnar := AppendColumnar(nil, recs)
	packed := make([]byte, RecSize*len(recs))
	for i := range recs {
		PutRec(packed[i*RecSize:], &recs[i])
	}
	badOp := append([]byte{}, packed...)
	badOp[0] = byte(MaxOp) + 1 // first field of the first packed record

	bg0, bp0, cg0, cp0 := event.PoolCounts()
	for cut := 0; cut < len(columnar); cut += 7 {
		if _, err := DecodeColumnarCols(columnar[:cut]); err == nil {
			t.Fatalf("truncated columnar payload (%d bytes) accepted", cut)
		}
		if _, err := DecodeBatchCodec(columnar[:cut], CodecColumnar); err == nil {
			t.Fatalf("truncated columnar payload (%d bytes) accepted by DecodeBatchCodec", cut)
		}
	}
	if _, err := DecodeBatch(packed[:len(packed)-1]); err == nil {
		t.Fatal("ragged packed payload accepted")
	}
	if _, err := DecodeBatch(badOp); err == nil {
		t.Fatal("packed payload with unknown op accepted")
	}
	if _, err := DecodeBatchCodec(badOp, CodecPacked); err == nil {
		t.Fatal("packed payload with unknown op accepted by DecodeBatchCodec")
	}
	bg1, bp1, cg1, cp1 := event.PoolCounts()
	if bg1-bg0 != bp1-bp0 {
		t.Errorf("batch pool leak: %d gets vs %d puts across error paths", bg1-bg0, bp1-bp0)
	}
	if cg1-cg0 != cp1-cp0 {
		t.Errorf("cols pool leak: %d gets vs %d puts across error paths", cg1-cg0, cp1-cp0)
	}

	// Successful decodes balance too once the caller returns the batch.
	b, err := DecodeBatchCodec(columnar, CodecColumnar)
	if err != nil {
		t.Fatal(err)
	}
	event.PutBatch(b)
	c, err := DecodeColumnarCols(columnar)
	if err != nil {
		t.Fatal(err)
	}
	event.PutCols(c)
	bg2, bp2, cg2, cp2 := event.PoolCounts()
	if bg2-bg0 != bp2-bp0 || cg2-cg0 != cp2-cp0 {
		t.Errorf("pool imbalance after successful decodes: batch %d/%d cols %d/%d",
			bg2-bg0, bp2-bp0, cg2-cg0, cp2-cp0)
	}
}

// TestColsDecodeZeroAlloc pins the ingest hot path: decoding a full
// columnar payload into a warm pooled Cols allocates nothing.
func TestColsDecodeZeroAlloc(t *testing.T) {
	payload := AppendColumnar(nil, streamRecs(event.DefaultBatchSize))
	c := event.GetCols()
	defer event.PutCols(c)
	if err := DecodeColumnarColsInto(payload, c); err != nil { // warm capacity
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(50, func() {
		c.Reset()
		if err := DecodeColumnarColsInto(payload, c); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("cols decode allocates %.1f per batch, want 0", avg)
	}
}
