// Columnar decode into a structure-of-arrays batch (event.Cols): the v2
// payload is already column-major on the wire, so decoding into columns
// is a straight transpose-free pass — each column section streams into
// one contiguous slice instead of striding across 64-byte Rec structs.
// This is the ingest half of the columnar hot path: the server hands the
// decoded Cols to pipeline.ApplyCols, which routes over the addr column
// and ships column segments to the detection workers.
package wire

import (
	"fmt"
	"slices"

	"repro/internal/event"
	"repro/internal/vc"
)

// DecodeColumnarColsInto decodes a columnar (codec v2) payload into c,
// appending to its columns. The payload must parse exactly — the same
// contract as DecodeColumnarInto — and on any error c is rewound to its
// length at entry.
func DecodeColumnarColsInto(payload []byte, c *event.Cols) error {
	r := colReader{p: payload}
	n64, err := r.uvarint()
	if err != nil {
		return err
	}
	if n64 > uint64(len(payload)) {
		// Same bound as DecodeColumnarInto: ≥5 payload bytes per record, so
		// a larger count is a lie and would only inflate the allocation.
		return fmt.Errorf("%w: record count %d exceeds payload length %d", errColumnar, n64, len(payload))
	}
	n := int(n64)
	if n == 0 {
		if r.off != len(payload) {
			return fmt.Errorf("%w: %d trailing bytes", errColumnar, len(payload)-r.off)
		}
		return nil
	}
	base := c.Len()
	c.Ops = slices.Grow(c.Ops, n)[:base+n]
	c.Tids = slices.Grow(c.Tids, n)[:base+n]
	c.Sizes = slices.Grow(c.Sizes, n)[:base+n]
	c.PCs = slices.Grow(c.PCs, n)[:base+n]
	c.Addrs = slices.Grow(c.Addrs, n)[:base+n]
	c.Auxs = slices.Grow(c.Auxs, n)[:base+n]
	c.Seqs = slices.Grow(c.Seqs, n)[:base+n]
	fail := func(err error) error {
		c.Truncate(base)
		return err
	}
	// ops: run length.
	ops := c.Ops[base:]
	for i := 0; i < n; {
		if r.off >= len(r.p) {
			return fail(fmt.Errorf("%w: truncated op column", errColumnar))
		}
		op := event.Op(r.p[r.off])
		r.off++
		if op > MaxOp {
			return fail(fmt.Errorf("%w: unknown op %d", errColumnar, op))
		}
		run, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		if run == 0 || run > uint64(n-i) {
			return fail(fmt.Errorf("%w: op run %d overflows %d remaining records", errColumnar, run, n-i))
		}
		for j := 0; j < int(run); j++ {
			ops[i+j] = op
		}
		i += int(run)
	}
	// tids: run length.
	tids := c.Tids[base:]
	for i := 0; i < n; {
		tv, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		tid := vc.TID(unzigzag(tv))
		run, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		if run == 0 || run > uint64(n-i) {
			return fail(fmt.Errorf("%w: tid run %d overflows %d remaining records", errColumnar, run, n-i))
		}
		for j := 0; j < int(run); j++ {
			tids[i+j] = tid
		}
		i += int(run)
	}
	// addrs: zigzag delta.
	addrs := c.Addrs[base:]
	var prev uint64
	for i := 0; i < n; i++ {
		d, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		prev += uint64(unzigzag(d))
		addrs[i] = prev
	}
	// sizes.
	sizes := c.Sizes[base:]
	for i := 0; i < n; i++ {
		s, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		if s > 0xffffffff {
			return fail(fmt.Errorf("%w: size %d overflows uint32", errColumnar, s))
		}
		sizes[i] = uint32(s)
	}
	// pcs: zigzag delta.
	pcs := c.PCs[base:]
	prev = 0
	for i := 0; i < n; i++ {
		d, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		prev += uint64(unzigzag(d))
		if prev > 0xffffffff {
			return fail(fmt.Errorf("%w: pc %d overflows uint32", errColumnar, prev))
		}
		pcs[i] = event.PC(prev)
	}
	// aux: zigzag delta.
	auxs := c.Auxs[base:]
	prev = 0
	for i := 0; i < n; i++ {
		d, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		prev += uint64(unzigzag(d))
		auxs[i] = prev
	}
	// seqs: zigzag delta.
	seqs := c.Seqs[base:]
	prev = 0
	for i := 0; i < n; i++ {
		d, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		prev += uint64(unzigzag(d))
		seqs[i] = prev
	}
	if r.off != len(payload) {
		return fail(fmt.Errorf("%w: %d trailing bytes", errColumnar, len(payload)-r.off))
	}
	return nil
}

// DecodeColumnarCols decodes a columnar payload into a pooled columnar
// batch; the caller returns it with event.PutCols. On error the pooled
// batch is returned to its pool here — decode failures never leak.
func DecodeColumnarCols(payload []byte) (*event.Cols, error) {
	c := event.GetCols()
	if err := DecodeColumnarColsInto(payload, c); err != nil {
		event.PutCols(c)
		return nil, err
	}
	return c, nil
}

// AppendColumnarCols appends the columnar encoding of c to dst — the
// column-major twin of AppendColumnar, encoding straight from the column
// slices. The two encoders produce byte-identical payloads for the same
// records.
func AppendColumnarCols(dst []byte, c *event.Cols) []byte {
	n := c.Len()
	dst = appendUvarint(dst, uint64(n))
	if n == 0 {
		return dst
	}
	// ops: run length.
	for i := 0; i < n; {
		op := c.Ops[i]
		j := i + 1
		for j < n && c.Ops[j] == op {
			j++
		}
		dst = append(dst, byte(op))
		dst = appendUvarint(dst, uint64(j-i))
		i = j
	}
	// tids: run length.
	for i := 0; i < n; {
		tid := c.Tids[i]
		j := i + 1
		for j < n && c.Tids[j] == tid {
			j++
		}
		dst = appendUvarint(dst, zigzag(int64(tid)))
		dst = appendUvarint(dst, uint64(j-i))
		i = j
	}
	// addrs: zigzag delta.
	var prev uint64
	for _, a := range c.Addrs {
		dst = appendUvarint(dst, zigzag(int64(a-prev)))
		prev = a
	}
	// sizes: plain varint.
	for _, s := range c.Sizes {
		dst = appendUvarint(dst, uint64(s))
	}
	// pcs: zigzag delta.
	prev = 0
	for _, p := range c.PCs {
		dst = appendUvarint(dst, zigzag(int64(uint64(p)-prev)))
		prev = uint64(p)
	}
	// aux: zigzag delta.
	prev = 0
	for _, a := range c.Auxs {
		dst = appendUvarint(dst, zigzag(int64(a-prev)))
		prev = a
	}
	// seqs: zigzag delta.
	prev = 0
	for _, s := range c.Seqs {
		dst = appendUvarint(dst, zigzag(int64(s-prev)))
		prev = s
	}
	return dst
}
