package wire

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/event"
	"repro/internal/vc"
)

// syncRecs is one record of each Go-native sync op, using the Rec field
// conventions event.Encoder emits (channel id / WaitGroup id in Aux,
// capacity / add-delta in Size).
func syncRecs() []event.Rec {
	return []event.Rec{
		{Op: event.OpChanSend, Tid: 1, Aux: 3, Size: 0, Seq: 1},
		{Op: event.OpChanRecv, Tid: 2, Aux: 3, Size: 0, Seq: 2},
		{Op: event.OpChanAck, Tid: 1, Aux: 3, Size: 0, Seq: 3},
		{Op: event.OpChanSend, Tid: 2, Aux: 7, Size: 16, Seq: 4},
		{Op: event.OpChanRecv, Tid: 1, Aux: 7, Size: 16, Seq: 5},
		{Op: event.OpWGAdd, Tid: 0, Aux: 2, Size: 4, Seq: 6},
		{Op: event.OpWGDone, Tid: 3, Aux: 2, Seq: 7},
		{Op: event.OpWGWait, Tid: 0, Aux: 2, Seq: 8},
	}
}

// TestSyncOpsRoundTripBothCodecs pins that the Go-native sync ops survive
// both batch codecs and that the two codecs agree record-for-record.
func TestSyncOpsRoundTripBothCodecs(t *testing.T) {
	recs := syncRecs()
	b := &event.Batch{Recs: recs}

	v1, err := DecodeBatchCodec(AppendBatchFrameCodec(nil, Header{Seq: 1}, b, CodecPacked)[HeaderSize:], CodecPacked)
	if err != nil {
		t.Fatalf("packed decode: %v", err)
	}
	defer event.PutBatch(v1)
	v2, err := DecodeBatchCodec(AppendBatchFrameCodec(nil, Header{Seq: 1}, b, CodecColumnar)[HeaderSize:], CodecColumnar)
	if err != nil {
		t.Fatalf("columnar decode: %v", err)
	}
	defer event.PutBatch(v2)
	if !reflect.DeepEqual(v1.Recs, recs) {
		t.Fatal("packed round trip of sync ops mismatch")
	}
	if !reflect.DeepEqual(v2.Recs, recs) {
		t.Fatal("columnar round trip of sync ops mismatch")
	}
	if !reflect.DeepEqual(v1.Recs, v2.Recs) {
		t.Fatal("codecs disagree on sync ops")
	}
}

// TestSyncOpsAboveOldCeiling pins the compatibility story for pre-clock
// peers: every Go-native sync op is numerically above OpFree, the previous
// MaxOp, so an old decoder's `op > MaxOp` check rejects frames carrying
// them instead of misapplying records.
func TestSyncOpsAboveOldCeiling(t *testing.T) {
	const oldMaxOp = event.OpFree
	for _, op := range []event.Op{
		event.OpChanSend, event.OpChanRecv, event.OpChanAck,
		event.OpWGAdd, event.OpWGDone, event.OpWGWait,
	} {
		if op <= oldMaxOp {
			t.Errorf("op %v (%d) is not above the pre-clock ceiling %d — old decoders would misapply it", op, op, oldMaxOp)
		}
	}
	if MaxOp != event.OpWGWait {
		t.Errorf("MaxOp = %d, want OpWGWait (%d)", MaxOp, event.OpWGWait)
	}
	// And the current decoder still rejects the next op beyond the new
	// ceiling, in both codecs.
	payload := make([]byte, RecSize)
	payload[0] = byte(MaxOp) + 1
	if _, err := DecodeBatch(payload); err == nil {
		t.Fatal("packed decoder accepted op beyond MaxOp")
	}
	bad := AppendColumnar(nil, []event.Rec{{Op: event.OpChanSend}})
	bad[1] = byte(MaxOp) + 1
	var cb event.Batch
	if err := DecodeColumnarInto(bad, &cb); err == nil {
		t.Fatal("columnar decoder accepted op beyond MaxOp")
	}
}

// TestEncoderSyncConventions drives the event.Encoder GoSink surface and
// checks the on-wire field conventions end to end: encode → frame → decode
// → ApplyRec replays the same sync calls into a counter.
func TestEncoderSyncConventions(t *testing.T) {
	var frames [][]byte
	enc := event.Encoder{Flush: func(b *event.Batch) {
		frames = append(frames, AppendBatchFrame(nil, Header{Seq: uint64(len(frames) + 1)}, b))
		event.PutBatch(b)
	}}
	var want event.Counter
	drive := func(s event.Sink) {
		event.DispatchChanSend(s, 1, 5, 0)
		event.DispatchChanRecv(s, 2, 5, 0)
		event.DispatchChanAck(s, 1, 5, 0)
		event.DispatchChanSend(s, 2, 9, 8)
		event.DispatchChanRecv(s, 3, 9, 8)
		event.DispatchWGAdd(s, 0, 1, 3)
		event.DispatchWGDone(s, vc.TID(2), 1)
		event.DispatchWGWait(s, 0, 1)
	}
	drive(event.Tee{&want, &enc})
	enc.Close()

	var got event.Counter
	for _, f := range frames {
		_, payload, err := NewReader(bytes.NewReader(f), 0).ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		b, err := DecodeBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		b.Apply(&got)
		event.PutBatch(b)
	}
	if got != want {
		t.Fatalf("replayed sync stream differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestHelloClockRoundTrip pins the clock-mode negotiation field.
func TestHelloClockRoundTrip(t *testing.T) {
	hello := Hello{Version: Version, Granularity: 2, Workers: 2, Window: 8, Clock: 1}
	frame, err := AppendControlFrame(nil, Header{Type: TypeHello}, hello)
	if err != nil {
		t.Fatal(err)
	}
	_, payload, err := NewReader(bytes.NewReader(frame), 0).ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	var got Hello
	if err := UnmarshalControl(payload, &got); err != nil {
		t.Fatal(err)
	}
	if got != hello {
		t.Fatalf("hello clock round trip: got %+v want %+v", got, hello)
	}
	// Absent field must decode to 0 (general mode) for pre-clock clients.
	var old Hello
	if err := UnmarshalControl([]byte(`{"version":1,"granularity":2}`), &old); err != nil {
		t.Fatal(err)
	}
	if old.Clock != 0 {
		t.Fatalf("pre-clock hello decoded Clock=%d, want 0", old.Clock)
	}
}
