// Report merging for multi-server sessions. A cluster coordinator fans
// one event stream out across N racedetectd members (access events
// partitioned by shadow-block id, sync events broadcast), so each member
// produces a Report covering a disjoint slice of the address space. Merge
// folds those into the single deterministic Report an in-process run
// would have produced — the same role pipeline's shard merge plays inside
// one server, lifted to the fleet.
package wire

import "sort"

// MergeReports merges per-member reports from one logical session into a
// single deterministic Report. It is associative and commutative on
// disjoint shards: races are concatenated and canonically ordered (no
// member's sequence space survives the merge — per-member seq spaces are
// incomparable), integer statistics are summed exactly, and AvgSharing is
// the NodesPeak-weighted mean.
//
// Two sums deserve a note. Events and the sync-driven stats (and every
// Clock* byte figure) count each broadcast sync event once per member, so
// the merged values exceed the in-process figures by design; a coordinator
// that tracked the pre-fan-out stream overrides Accesses/NonShared/Events
// with its own router counts. LastSeq sums the members' drain watermarks,
// giving the total number of batch frames the cluster applied.
//
// MergeReports of zero reports is a zero Report; of one report, a copy
// with its races re-sorted into canonical order.
func MergeReports(reports ...Report) Report {
	var out Report
	n := 0
	for _, r := range reports {
		n += len(r.Races)
	}
	out.Races = make([]ReportRace, 0, n)
	for _, r := range reports {
		out.Races = append(out.Races, r.Races...)
		out.Events += r.Events
		out.LastSeq += r.LastSeq
		out.Stats = mergeStats(out.Stats, r.Stats)
	}
	SortRaces(out.Races)
	return out
}

// Merge returns the merge of r with others. Equivalent to
// MergeReports(append([]Report{r}, others...)...).
func (r Report) Merge(others ...Report) Report {
	all := make([]Report, 0, 1+len(others))
	all = append(all, r)
	all = append(all, others...)
	return MergeReports(all...)
}

// SortRaces orders races canonically: by address, kind, racing thread,
// PC, then previous-access thread/PC and size. The ordering depends only
// on race identity — never on which member (or shard, or arrival order)
// reported it — so any partition of the stream converges to the same
// byte-identical race list.
func SortRaces(rs []ReportRace) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.PrevTid != b.PrevTid {
			return a.PrevTid < b.PrevTid
		}
		if a.PrevPC != b.PrevPC {
			return a.PrevPC < b.PrevPC
		}
		return a.Size < b.Size
	})
}

func mergeStats(a, b ReportStats) ReportStats {
	// AvgSharing is a mean over shadow nodes; weight each member's
	// contribution by its node population so the merged figure matches
	// what a single detector over the union would report.
	wa, wb := float64(a.NodesPeak), float64(b.NodesPeak)
	if w := wa + wb; w > 0 {
		a.AvgSharing = (a.AvgSharing*wa + b.AvgSharing*wb) / w
	} else if b.AvgSharing > a.AvgSharing {
		a.AvgSharing = b.AvgSharing
	}

	a.Accesses += b.Accesses
	a.SameEpoch += b.SameEpoch
	a.NonShared += b.NonShared
	a.HashPeakBytes += b.HashPeakBytes
	a.VCPeakBytes += b.VCPeakBytes
	a.BitmapPeakBytes += b.BitmapPeakBytes
	a.TotalPeakBytes += b.TotalPeakBytes
	a.Races += b.Races
	a.Suppressed += b.Suppressed
	a.SharingComparisons += b.SharingComparisons
	a.NodesPeak += b.NodesPeak
	a.NodeAllocs += b.NodeAllocs
	a.LocCreations += b.LocCreations
	a.Merges += b.Merges
	a.Splits += b.Splits
	a.ClockStructuredThreads += b.ClockStructuredThreads
	a.ClockDemotions += b.ClockDemotions
	a.ClockCompactBytes += b.ClockCompactBytes
	a.ClockCompactPeakBytes += b.ClockCompactPeakBytes
	a.ClockGeneralBytes += b.ClockGeneralBytes
	a.ClockGeneralPeakBytes += b.ClockGeneralPeakBytes
	a.ShedRecords += b.ShedRecords
	a.Elided += b.Elided
	return a
}
