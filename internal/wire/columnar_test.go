package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/event"
	"repro/internal/vc"
)

// streamRecs builds a batch with the locality shape of a real event
// stream: threads run in scheduler-quantum-long runs, addresses walk in
// small strides, PCs repeat from a small site set, seqs increment by one.
func streamRecs(n int) []event.Rec {
	recs := make([]event.Rec, n)
	addr := uint64(0x10000)
	for i := range recs {
		tid := vc.TID(i / 64 % 4) // quantum of 64 events per thread
		op := event.OpRead
		if i%4 == 0 {
			op = event.OpWrite
		}
		addr += uint64(8 * (i%3 + 1)) // stride-predictable
		recs[i] = event.Rec{
			Op: op, Tid: tid, Addr: addr, Size: 8,
			PC:  event.MakePC(event.ModuleApp, uint32(i%7)),
			Seq: uint64(i + 1),
		}
	}
	return recs
}

func TestColumnarRoundTrip(t *testing.T) {
	cases := map[string][]event.Rec{
		"empty":  nil,
		"single": {{Op: event.OpWrite, Tid: 3, Addr: 0xdeadbeef, Size: 4, PC: 17, Seq: 1}},
		"stream": streamRecs(2048),
		"extremes": {
			{Op: event.OpMalloc, Tid: -1, Addr: math.MaxUint64, Aux: math.MaxUint64, Seq: math.MaxUint64},
			{Op: event.OpFree, Tid: math.MaxInt32, Addr: 0, Aux: 0, Seq: 0},
			{Op: event.OpRead, Tid: math.MinInt32, Addr: 1, Size: math.MaxUint32, PC: math.MaxUint32, Seq: 9},
		},
	}
	for name, recs := range cases {
		t.Run(name, func(t *testing.T) {
			payload := AppendColumnar(nil, recs)
			var got event.Batch
			if err := DecodeColumnarInto(payload, &got); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(got.Recs) != len(recs) {
				t.Fatalf("decoded %d records, want %d", len(got.Recs), len(recs))
			}
			if len(recs) > 0 && !reflect.DeepEqual(got.Recs, recs) {
				t.Fatalf("round trip mismatch")
			}
		})
	}
}

func TestColumnarFrameRoundTrip(t *testing.T) {
	b := &event.Batch{Recs: streamRecs(500)}
	frame := AppendBatchFrameCodec(nil, Header{Session: 42, Seq: 9}, b, CodecColumnar)
	h, payload, err := NewReader(bytes.NewReader(frame), 0).ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TypeBatch || h.Session != 42 || h.Seq != 9 {
		t.Fatalf("header mangled: %+v", h)
	}
	got, err := DecodeBatchCodec(payload, CodecColumnar)
	if err != nil {
		t.Fatal(err)
	}
	defer event.PutBatch(got)
	if !reflect.DeepEqual(got.Recs, b.Recs) {
		t.Fatal("frame round trip mismatch")
	}
}

// TestPackedCodecUnchanged pins that CodecPacked through the codec-aware
// entry points is byte-identical to the original v1 framing — the
// compatibility contract a forced-v1 session depends on.
func TestPackedCodecUnchanged(t *testing.T) {
	b := &event.Batch{Recs: streamRecs(100)}
	h := Header{Session: 7, Seq: 3}
	v1 := AppendBatchFrame(nil, h, b)
	viaCodec := AppendBatchFrameCodec(nil, h, b, CodecPacked)
	if !bytes.Equal(v1, viaCodec) {
		t.Fatal("AppendBatchFrameCodec(CodecPacked) is not byte-identical to AppendBatchFrame")
	}
	got, err := DecodeBatchCodec(v1[HeaderSize:], CodecPacked)
	if err != nil {
		t.Fatal(err)
	}
	defer event.PutBatch(got)
	if !reflect.DeepEqual(got.Recs, b.Recs) {
		t.Fatal("packed decode mismatch")
	}
}

func TestNegotiateCodec(t *testing.T) {
	cases := []struct{ req, want int }{
		{0, CodecPacked},   // pre-codec peer
		{-3, CodecPacked},  // nonsense
		{1, CodecPacked},   // forced v1
		{2, CodecColumnar}, // current
		{99, CodecMax},     // future peer: capped at what this build speaks
	}
	for _, c := range cases {
		if got := NegotiateCodec(c.req); got != c.want {
			t.Errorf("NegotiateCodec(%d) = %d, want %d", c.req, got, c.want)
		}
	}
	if CodecName(CodecPacked) != "v1" || CodecName(CodecColumnar) != "v2" {
		t.Error("codec names drifted from the v1/v2 labels metrics and flags use")
	}
}

// TestColumnarRejectsMalformed drives the decoder over targeted
// corruptions; none may decode, and none may panic.
func TestColumnarRejectsMalformed(t *testing.T) {
	recs := streamRecs(32)
	payload := AppendColumnar(nil, recs)

	t.Run("truncations", func(t *testing.T) {
		for cut := 0; cut < len(payload); cut++ {
			var b event.Batch
			if err := DecodeColumnarInto(payload[:cut], &b); err == nil {
				t.Fatalf("truncation at %d of %d accepted", cut, len(payload))
			}
			if len(b.Recs) != 0 {
				t.Fatalf("failed decode left %d partial records", len(b.Recs))
			}
		}
	})
	t.Run("trailing-bytes", func(t *testing.T) {
		var b event.Batch
		if err := DecodeColumnarInto(append(append([]byte{}, payload...), 0), &b); err == nil {
			t.Fatal("trailing byte accepted")
		}
	})
	t.Run("lying-count", func(t *testing.T) {
		var b event.Batch
		// Claim 2^40 records in a short payload: must be rejected before
		// any allocation is sized from the count.
		lie := appendUvarint(nil, 1<<40)
		if err := DecodeColumnarInto(lie, &b); err == nil {
			t.Fatal("absurd record count accepted")
		}
	})
	t.Run("bad-op", func(t *testing.T) {
		bad := AppendColumnar(nil, recs[:1])
		// Payload: count varint (1 byte) then the op byte.
		bad[1] = byte(MaxOp) + 1
		var b event.Batch
		if err := DecodeColumnarInto(bad, &b); err == nil {
			t.Fatal("unknown op accepted")
		}
	})
	t.Run("run-overflow", func(t *testing.T) {
		// count=1, op run claims 2 records.
		bad := []byte{1, byte(event.OpRead), 2}
		var b event.Batch
		if err := DecodeColumnarInto(bad, &b); err == nil {
			t.Fatal("op run past record count accepted")
		}
	})
}

// TestColumnarZeroAlloc pins the codec's steady-state allocation budget:
// with reused buffers and pooled batches, encode and decode of a full
// batch allocate nothing.
func TestColumnarZeroAlloc(t *testing.T) {
	recs := streamRecs(event.DefaultBatchSize)
	src := &event.Batch{Recs: recs}
	buf := AppendBatchFrameCodec(nil, Header{Session: 1}, src, CodecColumnar)
	payload := append([]byte(nil), buf[HeaderSize:]...)
	dst := event.GetBatch()
	defer event.PutBatch(dst)

	if got := testing.AllocsPerRun(50, func() {
		buf = AppendBatchFrameCodec(buf[:0], Header{Session: 1}, src, CodecColumnar)
	}); got != 0 {
		t.Errorf("columnar encode: %v allocs/run, want 0", got)
	}
	if got := testing.AllocsPerRun(50, func() {
		dst.Recs = dst.Recs[:0]
		if err := DecodeColumnarInto(payload, dst); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("columnar decode: %v allocs/run, want 0", got)
	}
}

// MaxColumnarBytesPerRecord is the committed regression threshold for the
// columnar codec on a locality-typical stream (CI fails if the encoding
// regresses above it). The packed codec costs a fixed 37 bytes per
// record; the columnar codec's budget is ≤ 7 — comfortably past the ≥4×
// reduction this transport promises, with headroom over the ~4.5 B/record
// the current encoder achieves so byte-level tweaks don't flake the gate.
const MaxColumnarBytesPerRecord = 7.0

func TestColumnarBytesPerRecordThreshold(t *testing.T) {
	recs := streamRecs(event.DefaultBatchSize)
	payload := AppendColumnar(nil, recs)
	got := float64(len(payload)) / float64(len(recs))
	t.Logf("columnar: %.2f bytes/record (packed: %d)", got, RecSize)
	if got > MaxColumnarBytesPerRecord {
		t.Fatalf("columnar codec regressed to %.2f bytes/record on the locality stream, budget %.1f",
			got, MaxColumnarBytesPerRecord)
	}
	if ratio := float64(RecSize) / got; ratio < 4 {
		t.Fatalf("compression vs packed is %.1fx, want >= 4x", ratio)
	}
}
