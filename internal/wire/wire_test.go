package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/event"
	"repro/internal/vc"
)

// randRecs builds a deterministic pseudo-random record batch.
func randRecs(n int, seed int64) []event.Rec {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]event.Rec, n)
	for i := range recs {
		recs[i] = event.Rec{
			Op:   event.Op(rng.Intn(int(MaxOp) + 1)),
			Tid:  vc.TID(rng.Int31()),
			Addr: rng.Uint64(),
			Aux:  rng.Uint64(),
			Seq:  rng.Uint64(),
			Size: rng.Uint32(),
			PC:   event.PC(rng.Uint32()),
		}
	}
	return recs
}

func TestRecRoundTrip(t *testing.T) {
	for _, r := range randRecs(100, 1) {
		var buf [RecSize]byte
		PutRec(buf[:], &r)
		var got event.Rec
		GetRec(buf[:], &got)
		if got != r {
			t.Fatalf("record round trip: got %+v want %+v", got, r)
		}
	}
}

func TestBatchFrameRoundTrip(t *testing.T) {
	b := &event.Batch{Recs: randRecs(striped, 2)}
	h := Header{Session: 7, Seq: 42, Shard: 3}
	frame := AppendBatchFrame(nil, h, b)
	if len(frame) != HeaderSize+len(b.Recs)*RecSize {
		t.Fatalf("frame length %d", len(frame))
	}
	rd := NewReader(bytes.NewReader(frame), 0)
	gh, payload, err := rd.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if gh.Type != TypeBatch || gh.Session != 7 || gh.Seq != 42 || gh.Shard != 3 {
		t.Fatalf("header round trip: %+v", gh)
	}
	got, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	defer event.PutBatch(got)
	if !reflect.DeepEqual(got.Recs, b.Recs) {
		t.Fatal("decoded batch differs from encoded batch")
	}
	// The stream must end on a clean frame boundary.
	if _, _, err := rd.ReadFrame(); err != io.EOF {
		t.Fatalf("want io.EOF at end of stream, got %v", err)
	}
}

const striped = 257 // a batch size that exercises non-power-of-two paths

func TestControlFrameRoundTrip(t *testing.T) {
	hello := Hello{
		Version: Version, Granularity: 2, Workers: 4, Window: 16,
		NoInitState: true, ReshareInterval: 9,
	}
	frame, err := AppendControlFrame(nil, Header{Type: TypeHello}, hello)
	if err != nil {
		t.Fatal(err)
	}
	h, payload, err := NewReader(bytes.NewReader(frame), 0).ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TypeHello {
		t.Fatalf("type %v", h.Type)
	}
	var got Hello
	if err := UnmarshalControl(payload, &got); err != nil {
		t.Fatal(err)
	}
	if got != hello {
		t.Fatalf("hello round trip: got %+v want %+v", got, hello)
	}
}

func TestReaderRejectsCorruption(t *testing.T) {
	b := &event.Batch{Recs: randRecs(8, 3)}
	frame := AppendBatchFrame(nil, Header{Seq: 1}, b)

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[0] ^= 0xff
		_, _, err := NewReader(bytes.NewReader(bad), 0).ReadFrame()
		if !errors.Is(err, ErrBadMagic) {
			t.Fatalf("want ErrBadMagic, got %v", err)
		}
	})
	t.Run("payload-corruption", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[HeaderSize+5] ^= 0x01
		_, _, err := NewReader(bytes.NewReader(bad), 0).ReadFrame()
		if !errors.Is(err, ErrCRC) {
			t.Fatalf("want ErrCRC, got %v", err)
		}
	})
	t.Run("truncated-header", func(t *testing.T) {
		_, _, err := NewReader(bytes.NewReader(frame[:HeaderSize-3]), 0).ReadFrame()
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("want ErrUnexpectedEOF, got %v", err)
		}
	})
	t.Run("truncated-payload", func(t *testing.T) {
		_, _, err := NewReader(bytes.NewReader(frame[:len(frame)-10]), 0).ReadFrame()
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("want ErrUnexpectedEOF, got %v", err)
		}
	})
	t.Run("oversized", func(t *testing.T) {
		_, _, err := NewReader(bytes.NewReader(frame), uint32(len(b.Recs)*RecSize-1)).ReadFrame()
		if !errors.Is(err, ErrTooLarge) {
			t.Fatalf("want ErrTooLarge, got %v", err)
		}
	})
	t.Run("ragged-batch-payload", func(t *testing.T) {
		// A CRC-valid frame whose payload is not a whole number of records.
		ragged := AppendFrame(nil, Header{Type: TypeBatch, Seq: 1}, make([]byte, RecSize+1))
		_, payload, err := NewReader(bytes.NewReader(ragged), 0).ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeBatch(payload); err == nil {
			t.Fatal("ragged payload accepted")
		}
	})
	t.Run("unknown-op", func(t *testing.T) {
		payload := make([]byte, RecSize)
		payload[0] = byte(MaxOp) + 1
		framed := AppendFrame(nil, Header{Type: TypeBatch, Seq: 1}, payload)
		_, p, err := NewReader(bytes.NewReader(framed), 0).ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeBatch(p); err == nil {
			t.Fatal("unknown op accepted")
		}
	})
}

func TestReportConversionRoundTrip(t *testing.T) {
	rep := Report{
		Events: 1234,
		Races: []ReportRace{
			{Kind: 1, Addr: 0x1000, Size: 4, Tid: 2, PC: 0x33, PrevTid: 1, PrevPC: 0x44},
			{Kind: 3, Addr: 0x2000, Size: 1, Tid: 5, PC: 0x55, PrevTid: 0, PrevPC: 0x66},
		},
	}
	rep.Stats = ReportStats{
		Accesses: 10, SameEpoch: 5, NonShared: 2, TotalPeakBytes: 4096,
		Races: 2, NodesPeak: 7, AvgSharing: 3.5, Merges: 4, Splits: 1,
	}
	races := rep.DetectorRaces()
	st := rep.DetectorStats()
	if len(races) != 2 || races[0].Addr != 0x1000 || races[1].Kind != 3 {
		t.Fatalf("races conversion: %+v", races)
	}
	if st.Accesses != 10 || st.Plane.NodesPeak != 7 || st.Plane.AvgSharing() != 3.5 {
		t.Fatalf("stats conversion: %+v", st)
	}
	// JSON transit must preserve everything.
	payload, err := MarshalControl(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := UnmarshalControl(payload, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("report JSON round trip:\ngot  %+v\nwant %+v", got, rep)
	}
}

// TestEncoderToWire checks the full client-side encode path: Sink calls →
// Encoder batches → frames → decode → replay equals the original stream.
func TestEncoderToWire(t *testing.T) {
	var frames [][]byte
	var seq uint64
	enc := event.Encoder{Flush: func(b *event.Batch) {
		seq++
		frames = append(frames, AppendBatchFrame(nil, Header{Seq: seq}, b))
		event.PutBatch(b)
	}}
	var want event.Counter
	drive := func(s event.Sink) {
		for i := 0; i < 5000; i++ {
			tid := vc.TID(i % 3)
			s.Write(tid, uint64(0x1000+i), 4, event.MakePC(event.ModuleApp, uint32(i)))
			if i%7 == 0 {
				s.Acquire(tid, event.LockID(i%5))
				s.Read(tid, uint64(0x1000+i), 2, 0)
				s.Release(tid, event.LockID(i%5))
			}
		}
	}
	drive(event.Tee{&want, &enc})
	enc.Close()
	if len(frames) < 2 {
		t.Fatalf("expected multiple frames, got %d", len(frames))
	}

	var got event.Counter
	for _, f := range frames {
		_, payload, err := NewReader(bytes.NewReader(f), 0).ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		b, err := DecodeBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		b.Apply(&got)
		event.PutBatch(b)
	}
	if got != want {
		t.Fatalf("replayed stream differs:\ngot  %+v\nwant %+v", got, want)
	}
}
