package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/event"
	"repro/internal/vc"
)

// recsFromBytes deterministically derives a record batch from fuzz input:
// every 20-byte chunk becomes one record with a valid op. This gives the
// round-trip side of the fuzz target structured inputs without needing a
// custom corpus format.
func recsFromBytes(data []byte) []event.Rec {
	var recs []event.Rec
	for len(data) >= 20 {
		c := data[:20]
		data = data[20:]
		recs = append(recs, event.Rec{
			Op:  event.Op(c[0] % uint8(MaxOp+1)),
			Tid: vc.TID(binary.LittleEndian.Uint16(c[1:])),
			Size: uint32(binary.LittleEndian.Uint16(c[3:5])) |
				uint32(c[5])<<16, // exercise >16-bit sizes too
			PC:   event.PC(binary.LittleEndian.Uint16(c[6:8])),
			Addr: binary.LittleEndian.Uint64(c[8:16]),
			Aux:  uint64(binary.LittleEndian.Uint16(c[16:18])),
			Seq:  uint64(binary.LittleEndian.Uint16(c[18:20])),
		})
	}
	return recs
}

// FuzzWireRoundTrip asserts three properties over arbitrary input:
//
//  1. Round trip: a batch derived from the input encodes to a frame that
//     decodes back to exactly the same records, and truncating or
//     corrupting any byte of the frame is rejected (never mis-decoded).
//  2. Columnar round trip: the same batch through the delta-varint
//     columnar codec (codec v2) is also the identity, including for the
//     arbitrary field extremes the input derives — the wraparound delta
//     arithmetic must hold for any record, not just realistic streams.
//  3. Robustness: feeding the raw input directly to the frame reader and
//     both batch decoders never panics and never over-allocates past the
//     frame limit, whatever the bytes say.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA5}, 64))
	seed := AppendBatchFrame(nil, Header{Session: 1, Seq: 1},
		&event.Batch{Recs: []event.Rec{{Op: event.OpWrite, Addr: 0x1000, Size: 4, Seq: 1}}})
	f.Add(seed)
	f.Add(AppendBatchFrameCodec(nil, Header{Session: 2, Seq: 2},
		&event.Batch{Recs: []event.Rec{{Op: event.OpRead, Addr: 0x2000, Size: 8, Seq: 1}}},
		CodecColumnar))
	// Go-native sync ops in both codecs, so the corpus reaches the top of
	// the op range from the start.
	f.Add(AppendBatchFrame(nil, Header{Session: 3, Seq: 1}, &event.Batch{Recs: []event.Rec{
		{Op: event.OpChanSend, Tid: 1, Aux: 4, Seq: 1},
		{Op: event.OpChanRecv, Tid: 2, Aux: 4, Seq: 2},
		{Op: event.OpChanAck, Tid: 1, Aux: 4, Seq: 3},
	}}))
	f.Add(AppendBatchFrameCodec(nil, Header{Session: 4, Seq: 1}, &event.Batch{Recs: []event.Rec{
		{Op: event.OpWGAdd, Tid: 0, Aux: 1, Size: 2, Seq: 1},
		{Op: event.OpWGDone, Tid: 1, Aux: 1, Seq: 2},
		{Op: event.OpWGWait, Tid: 0, Aux: 1, Seq: 3},
	}}, CodecColumnar))
	// Columnar-decoder edge seeds: a payload truncated mid-column, an
	// oversized count prefix, and a count that disagrees with the column
	// sections — the mutation engine starts at the cols decoder's error
	// edges instead of having to find them.
	colSeed := AppendColumnar(nil, []event.Rec{
		{Op: event.OpRead, Tid: 1, Addr: 0x1000, Size: 8, PC: 3, Seq: 1},
		{Op: event.OpWrite, Tid: 1, Addr: 0x1008, Size: 8, PC: 3, Seq: 2},
	})
	f.Add(colSeed[:len(colSeed)/2])                      // truncated column section
	f.Add(appendUvarint(nil, 1<<40))                     // count prefix exceeds payload
	f.Add(append(appendUvarint(nil, 7), colSeed[1:]...)) // count vs column-section mismatch
	f.Add(append(append([]byte{}, colSeed...), 0, 0, 0)) // oversized: trailing bytes

	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: encode→frame→decode is the identity.
		recs := recsFromBytes(data)
		b := &event.Batch{Recs: recs}
		frame := AppendBatchFrame(nil, Header{Session: 99, Seq: 7}, b)
		h, payload, err := NewReader(bytes.NewReader(frame), 0).ReadFrame()
		if err != nil {
			t.Fatalf("own frame rejected: %v", err)
		}
		if h.Type != TypeBatch || h.Session != 99 || h.Seq != 7 {
			t.Fatalf("header mangled: %+v", h)
		}
		got, err := DecodeBatch(payload)
		if err != nil {
			t.Fatalf("own payload rejected: %v", err)
		}
		if len(got.Recs) != len(recs) || (len(recs) > 0 && !reflect.DeepEqual(got.Recs, recs)) {
			t.Fatalf("round trip mismatch: %d vs %d recs", len(got.Recs), len(recs))
		}
		event.PutBatch(got)

		// Truncations must never decode successfully.
		if len(frame) > 0 {
			cut := len(frame) - 1 - int(uint(len(data))%uint(len(frame)))
			if _, _, err := NewReader(bytes.NewReader(frame[:cut]), 0).ReadFrame(); err == nil {
				t.Fatalf("truncated frame (%d of %d bytes) accepted", cut, len(frame))
			}
		}
		// Single-byte corruption must be rejected (magic, CRC, or length
		// check — never a silent mis-decode into different records).
		if len(data) > 0 && len(frame) > 0 {
			pos := int(uint(data[0])) % len(frame)
			mut := append([]byte(nil), frame...)
			mut[pos] ^= 1 + data[len(data)-1]%255
			mh, mp, err := NewReader(bytes.NewReader(mut), uint32(len(frame))).ReadFrame()
			if err == nil {
				// The flipped byte must have been in the header's
				// non-integrity-checked fields (type/flags/shard/
				// session/seq) — the payload itself is CRC-protected.
				if mb, derr := DecodeBatch(mp); derr == nil {
					if len(mb.Recs) != len(recs) ||
						(len(recs) > 0 && !reflect.DeepEqual(mb.Recs, recs)) {
						t.Fatalf("corruption at byte %d silently changed the decoded records", pos)
					}
					event.PutBatch(mb)
				}
				_ = mh
			}
		}

		// Property 2: the columnar codec is also the identity, for the same
		// arbitrary records, and its frames survive the frame layer.
		cframe := AppendBatchFrameCodec(nil, Header{Session: 99, Seq: 7}, b, CodecColumnar)
		ch, cpayload, err := NewReader(bytes.NewReader(cframe), 0).ReadFrame()
		if err != nil {
			t.Fatalf("own columnar frame rejected: %v", err)
		}
		if ch.Type != TypeBatch || ch.Session != 99 || ch.Seq != 7 {
			t.Fatalf("columnar header mangled: %+v", ch)
		}
		cgot, err := DecodeBatchCodec(cpayload, CodecColumnar)
		if err != nil {
			t.Fatalf("own columnar payload rejected: %v", err)
		}
		if len(cgot.Recs) != len(recs) || (len(recs) > 0 && !reflect.DeepEqual(cgot.Recs, recs)) {
			t.Fatalf("columnar round trip mismatch: %d vs %d recs", len(cgot.Recs), len(recs))
		}
		event.PutBatch(cgot)
		// Truncated columnar payloads must never decode.
		if len(cpayload) > 0 {
			cut := int(uint(len(data)) % uint(len(cpayload)))
			var tb event.Batch
			if err := DecodeColumnarInto(cpayload[:cut], &tb); err == nil && len(recs) > 0 {
				t.Fatalf("truncated columnar payload (%d of %d bytes) accepted", cut, len(cpayload))
			}
		}

		// Property 2b: the columnar Cols decoder and encoder are exact
		// twins of the record-major ones — byte-identical encoding, and
		// identical accept/reject + records on arbitrary payload bytes.
		cols := event.GetCols()
		for i := range recs {
			cols.Append(recs[i])
		}
		if !bytes.Equal(AppendColumnarCols(nil, cols), AppendColumnar(nil, recs)) {
			t.Fatal("AppendColumnarCols diverged from AppendColumnar")
		}
		event.PutCols(cols)
		var drb event.Batch
		recErr := DecodeColumnarInto(data, &drb)
		dc := event.GetCols()
		colsErr := DecodeColumnarColsInto(data, dc)
		if (recErr == nil) != (colsErr == nil) {
			t.Fatalf("decoder strictness diverged: record %v, cols %v", recErr, colsErr)
		}
		if recErr == nil {
			if dc.Len() != len(drb.Recs) {
				t.Fatalf("cols decoded %d records, record decoder %d", dc.Len(), len(drb.Recs))
			}
			for i := range drb.Recs {
				if dc.Rec(i) != drb.Recs[i] {
					t.Fatalf("record %d decoded differently: %+v vs %+v", i, dc.Rec(i), drb.Recs[i])
				}
			}
		} else if dc.Len() != 0 {
			t.Fatalf("failed cols decode left %d partial records", dc.Len())
		}
		event.PutCols(dc)

		// Property 3: arbitrary bytes never panic the reader/decoders.
		rd := NewReader(bytes.NewReader(data), 4096)
		for {
			_, p, err := rd.ReadFrame()
			if err != nil {
				break
			}
			if bb, err := DecodeBatch(p); err == nil {
				event.PutBatch(bb)
			}
			if bb, err := DecodeBatchCodec(p, CodecColumnar); err == nil {
				event.PutBatch(bb)
			}
		}
		var rb event.Batch
		_ = DecodeColumnarInto(data, &rb) // arbitrary bytes as a columnar payload
	})
}
