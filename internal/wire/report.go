// Report conversions between the wire schema and the in-process detector
// types. The wire schema mirrors detector.Race/detector.Stats with stable
// JSON field names instead of marshaling the internal structs directly, so
// a detector-side refactor cannot silently change the protocol.
package wire

import (
	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/fasttrack"
	"repro/internal/pipeline"
	"repro/internal/vc"
)

// FromResult converts a merged pipeline result into the wire report.
func FromResult(res pipeline.Result) Report {
	out := Report{Events: res.Events}
	out.Races = make([]ReportRace, 0, len(res.Races))
	for i, x := range res.Races {
		rr := ReportRace{
			Kind:    uint8(x.Kind),
			Addr:    x.Addr,
			Size:    x.Size,
			Tid:     int32(x.Tid),
			PC:      uint32(x.PC),
			PrevTid: int32(x.PrevTid),
			PrevPC:  uint32(x.PrevPC),
		}
		if i < len(res.Provenance) {
			p := res.Provenance[i]
			rr.Prov = &p
		}
		out.Races = append(out.Races, rr)
	}
	st := res.Stats
	out.Stats = ReportStats{
		Accesses:           st.Accesses,
		SameEpoch:          st.SameEpoch,
		NonShared:          st.NonShared,
		HashPeakBytes:      st.HashPeakBytes,
		VCPeakBytes:        st.VCPeakBytes,
		BitmapPeakBytes:    st.BitmapPeakBytes,
		TotalPeakBytes:     st.TotalPeakBytes,
		Races:              st.Races,
		Suppressed:         st.Suppressed,
		SharingComparisons: st.SharingComparisons,
		NodesPeak:          st.Plane.NodesPeak,
		AvgSharing:         st.Plane.AvgSharing(),
		NodeAllocs:         st.Plane.NodeAllocs,
		LocCreations:       st.Plane.LocCreations,
		Merges:             st.Plane.Merges,
		Splits:             st.Plane.Splits,

		ClockStructuredThreads: st.ClockStructuredThreads,
		ClockDemotions:         st.ClockDemotions,
		ClockCompactBytes:      st.ClockCompactBytes,
		ClockCompactPeakBytes:  st.ClockCompactPeakBytes,
		ClockGeneralBytes:      st.ClockGeneralBytes,
		ClockGeneralPeakBytes:  st.ClockGeneralPeakBytes,
	}
	return out
}

// DetectorRaces reconstructs the detector-typed race list, so a remote
// report flows through the same race.Report filling code as a local run.
func (r Report) DetectorRaces() []detector.Race {
	out := make([]detector.Race, 0, len(r.Races))
	for _, x := range r.Races {
		out = append(out, detector.Race{
			Kind:    fasttrack.RaceKind(x.Kind),
			Addr:    x.Addr,
			Size:    x.Size,
			Tid:     vc.TID(x.Tid),
			PC:      event.PC(x.PC),
			PrevTid: vc.TID(x.PrevTid),
			PrevPC:  event.PC(x.PrevPC),
		})
	}
	return out
}

// DetectorProvs reconstructs the provenance list, index-aligned with
// DetectorRaces. Nil when no race carries provenance (pre-provenance
// server, or a session that did not negotiate it); races whose provenance
// was lost (e.g. merged in from an older member) get a zero record.
func (r Report) DetectorProvs() []detector.Provenance {
	any := false
	for _, x := range r.Races {
		if x.Prov != nil {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	out := make([]detector.Provenance, len(r.Races))
	for i, x := range r.Races {
		if x.Prov != nil {
			out[i] = *x.Prov
		}
	}
	return out
}

// DetectorStats reconstructs the detector-typed statistics. Only the
// fields the unified race.Report consumes are populated (the wire report
// is a summary, not a full dyngran.Stats replica); AvgSharing round-trips
// exactly because dyngran's ≥1 clamp is idempotent.
func (r Report) DetectorStats() detector.Stats {
	s := r.Stats
	var st detector.Stats
	st.Accesses = s.Accesses
	st.SameEpoch = s.SameEpoch
	st.NonShared = s.NonShared
	st.HashPeakBytes = s.HashPeakBytes
	st.VCPeakBytes = s.VCPeakBytes
	st.BitmapPeakBytes = s.BitmapPeakBytes
	st.TotalPeakBytes = s.TotalPeakBytes
	st.Races = s.Races
	st.Suppressed = s.Suppressed
	st.SharingComparisons = s.SharingComparisons
	st.Plane.NodesPeak = s.NodesPeak
	st.Plane.AvgSharingAtPeak = s.AvgSharing
	st.Plane.NodeAllocs = s.NodeAllocs
	st.Plane.LocCreations = s.LocCreations
	st.Plane.Merges = s.Merges
	st.Plane.Splits = s.Splits
	st.ClockStructuredThreads = s.ClockStructuredThreads
	st.ClockDemotions = s.ClockDemotions
	st.ClockCompactBytes = s.ClockCompactBytes
	st.ClockCompactPeakBytes = s.ClockCompactPeakBytes
	st.ClockGeneralBytes = s.ClockGeneralBytes
	st.ClockGeneralPeakBytes = s.ClockGeneralPeakBytes
	return st
}
