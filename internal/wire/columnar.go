// Columnar codec (wire codec 2): a delta-varint, column-transposed
// encoding of event batches that exploits the same locality the paper's
// dynamic granularity exploits for clock sharing. Consecutive events of a
// real execution overwhelmingly share their thread (the scheduler runs one
// thread for a whole quantum), repeat a small set of code sites, and walk
// addresses in small strides — so transposing a batch into per-field
// columns turns most fields into runs and tiny deltas:
//
//	column  encoding
//	ops     run length: (op byte, varint run)*        — quantum-long runs
//	tids    run length: (zigzag varint tid, varint run)*
//	addrs   per record: zigzag varint delta vs previous record
//	sizes   per record: varint
//	pcs     per record: zigzag varint delta vs previous record
//	aux     per record: zigzag varint delta vs previous record
//	seqs    per record: zigzag varint delta vs previous record
//
// The payload opens with a varint record count; columns follow in the
// order above and must consume the payload exactly. A typical access
// record costs 4–6 bytes against the packed codec's fixed 37 (ops and
// tids amortize to fractions of a byte, the addr delta is 1–2 bytes, and
// constant sizes / repeated PCs / zero aux / +1 seq are one byte each).
//
// Codec choice is a property of the session, not the frame: Hello/HelloAck
// negotiate it once (see Hello.Codec) and every Batch frame of the session
// uses the granted codec. Keeping the frame header codec-free means a
// corrupted header byte can never switch the decoder onto the wrong
// format — the CRC already guards the payload, and the session state
// guards its interpretation.
//
// Deltas are computed in uint64 with wraparound, so every field value is
// representable and encode∘decode is the identity for arbitrary records,
// not just well-formed streams (FuzzWireRoundTrip pins this).
package wire

import (
	"errors"
	"fmt"

	"repro/internal/event"
	"repro/internal/vc"
)

// Codec identifiers negotiated in Hello/HelloAck. CodecPacked is the
// protocol's original fixed 37-byte record array; CodecColumnar is the
// delta-varint columnar format. Peers that predate negotiation send no
// codec field, which NegotiateCodec maps to CodecPacked — old client ×
// new server and new client × old server both fall back transparently.
const (
	CodecPacked   = 1
	CodecColumnar = 2

	// CodecMax is the highest codec this build speaks.
	CodecMax = CodecColumnar
)

// CodecName returns the stable label used in metrics and flags ("v1",
// "v2").
func CodecName(codec int) string {
	switch codec {
	case CodecPacked:
		return "v1"
	case CodecColumnar:
		return "v2"
	default:
		return fmt.Sprintf("codec(%d)", codec)
	}
}

// NegotiateCodec maps a peer's requested codec ceiling onto the codec this
// build grants: the minimum of the two ceilings, with 0 (a peer that never
// heard of codecs) meaning the original packed format.
func NegotiateCodec(requested int) int {
	if requested <= 0 {
		return CodecPacked
	}
	if requested > CodecMax {
		return CodecMax
	}
	return requested
}

// errColumnar is the base decode error; call sites wrap it with position
// detail (the error path is cold, the happy path allocates nothing).
var errColumnar = errors.New("wire: malformed columnar payload")

// zigzag maps a signed delta onto an unsigned varint-friendly value
// (0,-1,1,-2 → 0,1,2,3).
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendUvarint appends v in LEB128. The single-byte case — the vast
// majority of column values — is branched first.
func appendUvarint(dst []byte, v uint64) []byte {
	if v < 0x80 {
		return append(dst, byte(v))
	}
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// AppendColumnar appends the columnar encoding of recs to dst and returns
// the extended slice. It allocates only when dst must grow, so a caller
// that reuses its buffer encodes with zero steady-state allocations.
func AppendColumnar(dst []byte, recs []event.Rec) []byte {
	n := len(recs)
	dst = appendUvarint(dst, uint64(n))
	if n == 0 {
		return dst
	}
	// ops: run length.
	for i := 0; i < n; {
		op := recs[i].Op
		j := i + 1
		for j < n && recs[j].Op == op {
			j++
		}
		dst = append(dst, byte(op))
		dst = appendUvarint(dst, uint64(j-i))
		i = j
	}
	// tids: run length.
	for i := 0; i < n; {
		tid := recs[i].Tid
		j := i + 1
		for j < n && recs[j].Tid == tid {
			j++
		}
		dst = appendUvarint(dst, zigzag(int64(tid)))
		dst = appendUvarint(dst, uint64(j-i))
		i = j
	}
	// addrs: zigzag delta.
	var prev uint64
	for i := range recs {
		a := recs[i].Addr
		dst = appendUvarint(dst, zigzag(int64(a-prev)))
		prev = a
	}
	// sizes: plain varint.
	for i := range recs {
		dst = appendUvarint(dst, uint64(recs[i].Size))
	}
	// pcs: zigzag delta.
	prev = 0
	for i := range recs {
		p := uint64(recs[i].PC)
		dst = appendUvarint(dst, zigzag(int64(p-prev)))
		prev = p
	}
	// aux: zigzag delta.
	prev = 0
	for i := range recs {
		a := recs[i].Aux
		dst = appendUvarint(dst, zigzag(int64(a-prev)))
		prev = a
	}
	// seqs: zigzag delta.
	prev = 0
	for i := range recs {
		s := recs[i].Seq
		dst = appendUvarint(dst, zigzag(int64(s-prev)))
		prev = s
	}
	return dst
}

// colReader is a bounds-checked cursor over a columnar payload.
type colReader struct {
	p   []byte
	off int
}

// uvarint reads one LEB128 value, rejecting truncation and >64-bit
// encodings.
func (r *colReader) uvarint() (uint64, error) {
	p, off := r.p, r.off
	if off < len(p) && p[off] < 0x80 { // single-byte fast path
		r.off = off + 1
		return uint64(p[off]), nil
	}
	var v uint64
	var shift uint
	for off < len(p) {
		b := p[off]
		off++
		if shift == 63 && b > 1 {
			return 0, fmt.Errorf("%w: varint overflows 64 bits at offset %d", errColumnar, r.off)
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			r.off = off
			return v, nil
		}
		shift += 7
		if shift > 63 {
			return 0, fmt.Errorf("%w: varint too long at offset %d", errColumnar, r.off)
		}
	}
	return 0, fmt.Errorf("%w: truncated varint at offset %d", errColumnar, r.off)
}

// DecodeColumnarInto decodes a columnar payload into b (appending to
// b.Recs). The payload must parse exactly: every column must cover every
// record, op codes must be valid, and no bytes may trail the last column.
func DecodeColumnarInto(payload []byte, b *event.Batch) error {
	r := colReader{p: payload}
	n64, err := r.uvarint()
	if err != nil {
		return err
	}
	if n64 > uint64(len(payload)) {
		// Every record costs at least 5 payload bytes (one per per-record
		// column), so a count beyond the payload length is a lie; rejecting
		// it here bounds the batch allocation by the frame size.
		return fmt.Errorf("%w: record count %d exceeds payload length %d", errColumnar, n64, len(payload))
	}
	n := int(n64)
	if n == 0 {
		if r.off != len(payload) {
			return fmt.Errorf("%w: %d trailing bytes", errColumnar, len(payload)-r.off)
		}
		return nil
	}
	base := len(b.Recs)
	if need := base + n; cap(b.Recs) < need {
		grown := make([]event.Rec, base, need)
		copy(grown, b.Recs)
		b.Recs = grown
	}
	recs := b.Recs[base : base+n]
	fail := func(err error) error {
		b.Recs = b.Recs[:base]
		return err
	}
	// ops: run length.
	for i := 0; i < n; {
		if r.off >= len(r.p) {
			return fail(fmt.Errorf("%w: truncated op column", errColumnar))
		}
		op := event.Op(r.p[r.off])
		r.off++
		if op > MaxOp {
			return fail(fmt.Errorf("%w: unknown op %d", errColumnar, op))
		}
		run, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		if run == 0 || run > uint64(n-i) {
			return fail(fmt.Errorf("%w: op run %d overflows %d remaining records", errColumnar, run, n-i))
		}
		for j := 0; j < int(run); j++ {
			recs[i+j].Op = op
		}
		i += int(run)
	}
	// tids: run length.
	for i := 0; i < n; {
		tv, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		tid := vc.TID(unzigzag(tv))
		run, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		if run == 0 || run > uint64(n-i) {
			return fail(fmt.Errorf("%w: tid run %d overflows %d remaining records", errColumnar, run, n-i))
		}
		for j := 0; j < int(run); j++ {
			recs[i+j].Tid = tid
		}
		i += int(run)
	}
	// addrs: zigzag delta.
	var prev uint64
	for i := 0; i < n; i++ {
		d, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		prev += uint64(unzigzag(d))
		recs[i].Addr = prev
	}
	// sizes.
	for i := 0; i < n; i++ {
		s, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		if s > 0xffffffff {
			return fail(fmt.Errorf("%w: size %d overflows uint32", errColumnar, s))
		}
		recs[i].Size = uint32(s)
	}
	// pcs: zigzag delta.
	prev = 0
	for i := 0; i < n; i++ {
		d, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		prev += uint64(unzigzag(d))
		if prev > 0xffffffff {
			return fail(fmt.Errorf("%w: pc %d overflows uint32", errColumnar, prev))
		}
		recs[i].PC = event.PC(prev)
	}
	// aux: zigzag delta.
	prev = 0
	for i := 0; i < n; i++ {
		d, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		prev += uint64(unzigzag(d))
		recs[i].Aux = prev
	}
	// seqs: zigzag delta.
	prev = 0
	for i := 0; i < n; i++ {
		d, err := r.uvarint()
		if err != nil {
			return fail(err)
		}
		prev += uint64(unzigzag(d))
		recs[i].Seq = prev
	}
	if r.off != len(payload) {
		return fail(fmt.Errorf("%w: %d trailing bytes", errColumnar, len(payload)-r.off))
	}
	b.Recs = b.Recs[:base+n]
	return nil
}

// AppendBatchFrameCodec encodes b's records as a Batch frame in the given
// session codec. CodecPacked reproduces AppendBatchFrame byte for byte.
func AppendBatchFrameCodec(dst []byte, h Header, b *event.Batch, codec int) []byte {
	if codec != CodecColumnar {
		return AppendBatchFrame(dst, h, b)
	}
	h.Type = TypeBatch
	off := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	dst = AppendColumnar(dst, b.Recs)
	payload := dst[off+HeaderSize:]
	putHeader(dst[off:], h, uint32(len(payload)), checksum(payload))
	return dst
}

// DecodeBatchCodecInto decodes a Batch payload in the session's codec.
func DecodeBatchCodecInto(payload []byte, b *event.Batch, codec int) error {
	if codec == CodecColumnar {
		return DecodeColumnarInto(payload, b)
	}
	return DecodeBatchInto(payload, b)
}

// DecodeBatchCodec decodes a Batch payload in the session's codec into a
// pooled batch; the caller returns it with event.PutBatch.
func DecodeBatchCodec(payload []byte, codec int) (*event.Batch, error) {
	b := event.GetBatch()
	if err := DecodeBatchCodecInto(payload, b, codec); err != nil {
		event.PutBatch(b)
		return nil, err
	}
	return b, nil
}
