package wire

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func randomReport(rng *rand.Rand, shard uint64) Report {
	var r Report
	nr := rng.Intn(6)
	for i := 0; i < nr; i++ {
		// Addresses are tagged with the shard so shard race sets are
		// disjoint, as they are for a real address-space partition.
		r.Races = append(r.Races, ReportRace{
			Kind:    uint8(rng.Intn(4)),
			Addr:    shard<<32 | uint64(rng.Intn(1<<16)),
			Size:    uint32(1 << uint(rng.Intn(4))),
			Tid:     int32(rng.Intn(8)),
			PC:      uint32(rng.Intn(1 << 12)),
			PrevTid: int32(rng.Intn(8)),
			PrevPC:  uint32(rng.Intn(1 << 12)),
		})
	}
	r.Events = uint64(rng.Intn(1 << 20))
	r.LastSeq = uint64(rng.Intn(1 << 10))
	r.Stats = ReportStats{
		Accesses:           uint64(rng.Intn(1 << 20)),
		SameEpoch:          uint64(rng.Intn(1 << 20)),
		NonShared:          uint64(rng.Intn(1 << 16)),
		HashPeakBytes:      int64(rng.Intn(1 << 20)),
		VCPeakBytes:        int64(rng.Intn(1 << 20)),
		BitmapPeakBytes:    int64(rng.Intn(1 << 16)),
		TotalPeakBytes:     int64(rng.Intn(1 << 21)),
		Races:              uint64(nr),
		Suppressed:         uint64(rng.Intn(1 << 8)),
		SharingComparisons: uint64(rng.Intn(1 << 16)),
		NodesPeak:          int64(rng.Intn(1 << 12)),
		AvgSharing:         1 + rng.Float64()*3,
		NodeAllocs:         uint64(rng.Intn(1 << 16)),
		LocCreations:       uint64(rng.Intn(1 << 16)),
		Merges:             uint64(rng.Intn(1 << 12)),
		Splits:             uint64(rng.Intn(1 << 12)),

		ClockStructuredThreads: uint64(rng.Intn(64)),
		ClockDemotions:         uint64(rng.Intn(64)),
		ClockCompactBytes:      int64(rng.Intn(1 << 16)),
		ClockCompactPeakBytes:  int64(rng.Intn(1 << 16)),
		ClockGeneralBytes:      int64(rng.Intn(1 << 16)),
		ClockGeneralPeakBytes:  int64(rng.Intn(1 << 16)),
	}
	return r
}

// reportsEqual compares reports with a tolerance on the one float field.
func reportsEqual(t *testing.T, a, b Report) bool {
	t.Helper()
	as, bs := a.Stats, b.Stats
	if math.Abs(as.AvgSharing-bs.AvgSharing) > 1e-9 {
		return false
	}
	as.AvgSharing, bs.AvgSharing = 0, 0
	a.Stats, b.Stats = as, bs
	if len(a.Races) == 0 {
		a.Races = nil
	}
	if len(b.Races) == 0 {
		b.Races = nil
	}
	return reflect.DeepEqual(a, b)
}

func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := randomReport(rng, 1)
		b := randomReport(rng, 2)
		ab := MergeReports(a, b)
		ba := MergeReports(b, a)
		if !reportsEqual(t, ab, ba) {
			t.Fatalf("trial %d: merge not commutative\nab=%+v\nba=%+v", trial, ab, ba)
		}
	}
}

func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a := randomReport(rng, 1)
		b := randomReport(rng, 2)
		c := randomReport(rng, 3)
		left := MergeReports(MergeReports(a, b), c)
		right := MergeReports(a, MergeReports(b, c))
		flat := MergeReports(a, b, c)
		if !reportsEqual(t, left, right) {
			t.Fatalf("trial %d: (a·b)·c != a·(b·c)\nleft=%+v\nright=%+v", trial, left, right)
		}
		if !reportsEqual(t, left, flat) {
			t.Fatalf("trial %d: nested merge != flat merge", trial)
		}
	}
}

func TestMergeStatsSumsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	reports := make([]Report, 5)
	for i := range reports {
		reports[i] = randomReport(rng, uint64(i+1))
	}
	m := MergeReports(reports...)

	sum := func(f func(ReportStats) uint64) (s uint64) {
		for _, r := range reports {
			s += f(r.Stats)
		}
		return
	}
	sumI := func(f func(ReportStats) int64) (s int64) {
		for _, r := range reports {
			s += f(r.Stats)
		}
		return
	}

	intChecks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"Accesses", m.Stats.Accesses, sum(func(s ReportStats) uint64 { return s.Accesses })},
		{"SameEpoch", m.Stats.SameEpoch, sum(func(s ReportStats) uint64 { return s.SameEpoch })},
		{"NonShared", m.Stats.NonShared, sum(func(s ReportStats) uint64 { return s.NonShared })},
		{"Races", m.Stats.Races, sum(func(s ReportStats) uint64 { return s.Races })},
		{"Suppressed", m.Stats.Suppressed, sum(func(s ReportStats) uint64 { return s.Suppressed })},
		{"SharingComparisons", m.Stats.SharingComparisons, sum(func(s ReportStats) uint64 { return s.SharingComparisons })},
		{"NodeAllocs", m.Stats.NodeAllocs, sum(func(s ReportStats) uint64 { return s.NodeAllocs })},
		{"LocCreations", m.Stats.LocCreations, sum(func(s ReportStats) uint64 { return s.LocCreations })},
		{"Merges", m.Stats.Merges, sum(func(s ReportStats) uint64 { return s.Merges })},
		{"Splits", m.Stats.Splits, sum(func(s ReportStats) uint64 { return s.Splits })},
		{"ClockStructuredThreads", m.Stats.ClockStructuredThreads, sum(func(s ReportStats) uint64 { return s.ClockStructuredThreads })},
		{"ClockDemotions", m.Stats.ClockDemotions, sum(func(s ReportStats) uint64 { return s.ClockDemotions })},
	}
	for _, c := range intChecks {
		if c.got != c.want {
			t.Errorf("%s: got %d want %d", c.name, c.got, c.want)
		}
	}
	byteChecks := []struct {
		name string
		got  int64
		want int64
	}{
		{"HashPeakBytes", m.Stats.HashPeakBytes, sumI(func(s ReportStats) int64 { return s.HashPeakBytes })},
		{"VCPeakBytes", m.Stats.VCPeakBytes, sumI(func(s ReportStats) int64 { return s.VCPeakBytes })},
		{"BitmapPeakBytes", m.Stats.BitmapPeakBytes, sumI(func(s ReportStats) int64 { return s.BitmapPeakBytes })},
		{"TotalPeakBytes", m.Stats.TotalPeakBytes, sumI(func(s ReportStats) int64 { return s.TotalPeakBytes })},
		{"NodesPeak", m.Stats.NodesPeak, sumI(func(s ReportStats) int64 { return s.NodesPeak })},
		{"ClockCompactBytes", m.Stats.ClockCompactBytes, sumI(func(s ReportStats) int64 { return s.ClockCompactBytes })},
		{"ClockCompactPeakBytes", m.Stats.ClockCompactPeakBytes, sumI(func(s ReportStats) int64 { return s.ClockCompactPeakBytes })},
		{"ClockGeneralBytes", m.Stats.ClockGeneralBytes, sumI(func(s ReportStats) int64 { return s.ClockGeneralBytes })},
		{"ClockGeneralPeakBytes", m.Stats.ClockGeneralPeakBytes, sumI(func(s ReportStats) int64 { return s.ClockGeneralPeakBytes })},
	}
	for _, c := range byteChecks {
		if c.got != c.want {
			t.Errorf("%s: got %d want %d", c.name, c.got, c.want)
		}
	}

	var events, lastSeq uint64
	for _, r := range reports {
		events += r.Events
		lastSeq += r.LastSeq
	}
	if m.Events != events {
		t.Errorf("Events: got %d want %d", m.Events, events)
	}
	if m.LastSeq != lastSeq {
		t.Errorf("LastSeq: got %d want %d", m.LastSeq, lastSeq)
	}
	if got := len(m.Races); uint64(got) != m.Stats.Races {
		t.Errorf("race list length %d != summed Stats.Races %d", got, m.Stats.Races)
	}
}

func TestMergeAvgSharingWeighted(t *testing.T) {
	a := Report{Stats: ReportStats{NodesPeak: 100, AvgSharing: 2.0}}
	b := Report{Stats: ReportStats{NodesPeak: 300, AvgSharing: 4.0}}
	m := MergeReports(a, b)
	want := (2.0*100 + 4.0*300) / 400
	if math.Abs(m.Stats.AvgSharing-want) > 1e-12 {
		t.Fatalf("AvgSharing: got %v want %v", m.Stats.AvgSharing, want)
	}
	// Zero-node members contribute nothing; the other side's figure wins.
	z := MergeReports(Report{}, b)
	if z.Stats.AvgSharing != 4.0 {
		t.Fatalf("zero-weight merge: got %v want 4.0", z.Stats.AvgSharing)
	}
}

func TestMergeRaceOrderCanonical(t *testing.T) {
	// The same races arriving in any member assignment and any order must
	// produce a byte-identical merged list.
	races := []ReportRace{
		{Kind: 1, Addr: 0x2000, Tid: 3, PC: 40},
		{Kind: 0, Addr: 0x1000, Tid: 1, PC: 10},
		{Kind: 2, Addr: 0x1000, Tid: 1, PC: 10},
		{Kind: 0, Addr: 0x1000, Tid: 2, PC: 30},
		{Kind: 0, Addr: 0x1000, Tid: 1, PC: 20},
	}
	split1 := MergeReports(Report{Races: races[:2]}, Report{Races: races[2:]})
	split2 := MergeReports(Report{Races: races[3:]}, Report{Races: races[:3]})
	one := MergeReports(Report{Races: append([]ReportRace(nil), races...)})
	if !reflect.DeepEqual(split1.Races, split2.Races) || !reflect.DeepEqual(split1.Races, one.Races) {
		t.Fatalf("merge order not canonical:\n%v\n%v\n%v", split1.Races, split2.Races, one.Races)
	}
	for i := 1; i < len(one.Races); i++ {
		a, b := one.Races[i-1], one.Races[i]
		less := a.Addr < b.Addr ||
			(a.Addr == b.Addr && (a.Kind < b.Kind ||
				(a.Kind == b.Kind && (a.Tid < b.Tid ||
					(a.Tid == b.Tid && a.PC < b.PC)))))
		if !less {
			t.Fatalf("races not in canonical order at %d: %v then %v", i, a, b)
		}
	}
}

func TestMergeZeroAndIdentity(t *testing.T) {
	var zero Report
	m := MergeReports()
	if !reportsEqual(t, m, zero) {
		t.Fatalf("empty merge: got %+v", m)
	}
	rng := rand.New(rand.NewSource(3))
	r := randomReport(rng, 1)
	id := r.Merge(Report{})
	want := MergeReports(r)
	if !reportsEqual(t, id, want) {
		t.Fatalf("zero report is not the merge identity:\ngot  %+v\nwant %+v", id, want)
	}
}
