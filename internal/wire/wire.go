// Package wire is the network framing of the detection event stream: a
// versioned, length-prefixed binary encoding of event.Batch plus the
// session control frames (Hello/HelloAck negotiation, Ack windowing,
// Flush, Close/Report) that let an instrumented producer stream its
// events to a remote racedetectd and retrieve the race report when the
// run ends.
//
// # Frame layout
//
// Every frame is a fixed 32-byte header followed by a payload:
//
//	offset  size  field
//	0       4     magic "RDw1" (protocol version is part of the magic)
//	4       1     frame type (Hello, Batch, Ack, ...)
//	5       1     flags (reserved, must be 0)
//	6       2     shard hint (little-endian uint16; 0 = unsharded stream)
//	8       8     session id
//	16      8     sequence number (meaning depends on frame type)
//	24      4     payload length
//	28      4     CRC-32C (Castagnoli) of the payload
//	32      ...   payload
//
// Batch payloads carry event records in the session's negotiated codec:
// the original packed array of 37-byte records (CodecPacked) or the
// columnar delta-varint format (CodecColumnar, see columnar.go). Control
// payloads are JSON, which keeps negotiation extensible without burning
// protocol versions — the codec itself is negotiated through the
// Hello/HelloAck JSON exchange. The shard hint lets a
// multi-process ingest tier route frames to shard queues without decoding
// the payload; the reference client always streams the full event stream
// of one execution and sets it to 0.
//
// # Sequence numbers and windowing
//
// Batch frames carry a per-session, strictly increasing batch sequence
// number starting at 1. The server acknowledges progress with Ack frames
// whose sequence is the highest batch applied; the client keeps at most a
// negotiated window of unacknowledged batches in flight, which bounds both
// client resend memory and server ingest queues (backpressure). A batch
// whose sequence is not lastApplied+1 is either a duplicate from a resume
// replay (seq <= lastApplied: acknowledged and dropped) or a protocol
// error (a gap).
//
// Decoding is allocation-recycled: Reader reuses one payload buffer, and
// DecodeBatch fills batches from event's sync.Pool, so a server ingesting
// a steady stream allocates nothing per frame.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/vc"
)

// Magic identifies protocol version 1 frames ("RDw1" little-endian).
const Magic uint32 = 0x31774452

// Version is the protocol version negotiated in Hello frames. It is
// carried redundantly with the magic so a future magic-compatible revision
// can still refuse clients by version.
const Version = 1

// HeaderSize is the fixed frame-header length in bytes.
const HeaderSize = 32

// RecSize is the packed on-wire size of one event record.
const RecSize = 37

// DefaultMaxFrameBytes bounds the payload length a Reader accepts. One
// full event.Batch is DefaultBatchSize*RecSize ≈ 76 KiB; 1 MiB leaves
// generous headroom for report payloads while keeping a malicious length
// prefix from ballooning server memory.
const DefaultMaxFrameBytes = 1 << 20

// Type enumerates the frame types.
type Type uint8

// Frame types. Client→server: Hello, Batch, Flush, Close. Server→client:
// HelloAck, Ack, FlushAck, Report, Error.
const (
	TypeHello Type = 1 + iota
	TypeHelloAck
	TypeBatch
	TypeAck
	TypeFlush
	TypeFlushAck
	TypeClose
	TypeReport
	TypeError
)

func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeHelloAck:
		return "hello-ack"
	case TypeBatch:
		return "batch"
	case TypeAck:
		return "ack"
	case TypeFlush:
		return "flush"
	case TypeFlushAck:
		return "flush-ack"
	case TypeClose:
		return "close"
	case TypeReport:
		return "report"
	case TypeError:
		return "error"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Header is the decoded fixed frame header (CRC and length are handled by
// the codec and not exposed).
type Header struct {
	Type    Type
	Flags   uint8
	Shard   uint16
	Session uint64
	Seq     uint64
}

// Framing errors. Reader returns ErrBadMagic/ErrTooLarge/ErrCRC for frames
// that must not be processed; io errors (including io.ErrUnexpectedEOF for
// truncation) pass through unchanged.
var (
	ErrBadMagic = errors.New("wire: bad frame magic")
	ErrTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrCRC      = errors.New("wire: payload CRC mismatch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksum is the payload CRC-32C every frame carries.
func checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// AppendFrame appends one framed payload to dst and returns the extended
// slice. The payload may be nil (control frames without a body).
func AppendFrame(dst []byte, h Header, payload []byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	putHeader(dst[off:], h, uint32(len(payload)), crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

func putHeader(b []byte, h Header, length, crc uint32) {
	binary.LittleEndian.PutUint32(b[0:], Magic)
	b[4] = byte(h.Type)
	b[5] = h.Flags
	binary.LittleEndian.PutUint16(b[6:], h.Shard)
	binary.LittleEndian.PutUint64(b[8:], h.Session)
	binary.LittleEndian.PutUint64(b[16:], h.Seq)
	binary.LittleEndian.PutUint32(b[24:], length)
	binary.LittleEndian.PutUint32(b[28:], crc)
}

// AppendBatchFrame encodes b's records as a Batch frame appended to dst.
// The frame's sequence number is h.Seq (the caller's batch counter); the
// records' own Seq fields ride along inside the payload so a decoded batch
// is bit-identical to the encoded one.
func AppendBatchFrame(dst []byte, h Header, b *event.Batch) []byte {
	h.Type = TypeBatch
	off := len(dst)
	n := len(b.Recs) * RecSize
	dst = append(dst, make([]byte, HeaderSize+n)...)
	payload := dst[off+HeaderSize:]
	for i := range b.Recs {
		PutRec(payload[i*RecSize:], &b.Recs[i])
	}
	putHeader(dst[off:], h, uint32(n), crc32.Checksum(payload[:n], castagnoli))
	return dst
}

// PutRec packs one record into b (little-endian, RecSize bytes):
//
//	0   Op    uint8
//	1   Tid   int32
//	5   Size  uint32
//	9   PC    uint32
//	13  Addr  uint64
//	21  Aux   uint64
//	29  Seq   uint64
func PutRec(b []byte, r *event.Rec) {
	_ = b[RecSize-1]
	b[0] = byte(r.Op)
	binary.LittleEndian.PutUint32(b[1:], uint32(r.Tid))
	binary.LittleEndian.PutUint32(b[5:], r.Size)
	binary.LittleEndian.PutUint32(b[9:], uint32(r.PC))
	binary.LittleEndian.PutUint64(b[13:], r.Addr)
	binary.LittleEndian.PutUint64(b[21:], r.Aux)
	binary.LittleEndian.PutUint64(b[29:], r.Seq)
}

// GetRec unpacks one record from b (the inverse of PutRec).
func GetRec(b []byte, r *event.Rec) {
	_ = b[RecSize-1]
	r.Op = event.Op(b[0])
	r.Tid = vc.TID(binary.LittleEndian.Uint32(b[1:]))
	r.Size = binary.LittleEndian.Uint32(b[5:])
	r.PC = event.PC(binary.LittleEndian.Uint32(b[9:]))
	r.Addr = binary.LittleEndian.Uint64(b[13:])
	r.Aux = binary.LittleEndian.Uint64(b[21:])
	r.Seq = binary.LittleEndian.Uint64(b[29:])
}

// MaxOp is the highest valid operation code; DecodeBatchInto rejects
// records beyond it so corrupted frames cannot smuggle unknown ops into a
// detector dispatch. Raised from OpFree when the Go-native sync ops
// (channel send/recv/ack, WaitGroup add/done/wait) joined the stream; an
// old decoder rejects frames carrying them rather than misapplying.
const MaxOp = event.OpWGWait

// DecodeBatchInto decodes a Batch payload into b (appending to b.Recs).
// The payload must be a whole number of records with valid op codes. On
// any error b is rewound to its length at entry — like the columnar
// decoder, a failed decode never leaves partial records behind for a
// caller that recycles b through the batch pool.
func DecodeBatchInto(payload []byte, b *event.Batch) error {
	if len(payload)%RecSize != 0 {
		return fmt.Errorf("wire: batch payload length %d is not a multiple of %d", len(payload), RecSize)
	}
	base := len(b.Recs)
	n := len(payload) / RecSize
	for i := 0; i < n; i++ {
		var r event.Rec
		GetRec(payload[i*RecSize:], &r)
		if r.Op > MaxOp {
			b.Recs = b.Recs[:base]
			return fmt.Errorf("wire: record %d has unknown op %d", i, r.Op)
		}
		b.Recs = append(b.Recs, r)
	}
	return nil
}

// DecodeBatch decodes a Batch payload into a pooled batch. The caller owns
// the batch and should return it with event.PutBatch.
func DecodeBatch(payload []byte) (*event.Batch, error) {
	b := event.GetBatch()
	if err := DecodeBatchInto(payload, b); err != nil {
		event.PutBatch(b)
		return nil, err
	}
	return b, nil
}

// Reader decodes frames from a byte stream, reusing one payload buffer
// across calls (the returned payload is valid only until the next
// ReadFrame).
type Reader struct {
	r        io.Reader
	max      uint32
	head     [HeaderSize]byte
	payload  []byte
	nFrames  uint64
	nPayload uint64
}

// NewReader wraps r with the given payload size limit (0 selects
// DefaultMaxFrameBytes).
func NewReader(r io.Reader, maxFrameBytes uint32) *Reader {
	if maxFrameBytes == 0 {
		maxFrameBytes = DefaultMaxFrameBytes
	}
	return &Reader{r: r, max: maxFrameBytes}
}

// Frames returns the number of frames decoded; PayloadBytes the payload
// bytes consumed. Servers export both as metrics.
func (rd *Reader) Frames() uint64 { return rd.nFrames }

// PayloadBytes returns the total payload bytes decoded.
func (rd *Reader) PayloadBytes() uint64 { return rd.nPayload }

// ReadFrame reads and validates one frame. It returns io.EOF only on a
// clean boundary (no bytes of a new frame read); a frame truncated mid-way
// returns io.ErrUnexpectedEOF.
func (rd *Reader) ReadFrame() (Header, []byte, error) {
	var h Header
	if _, err := io.ReadFull(rd.r, rd.head[:]); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			// io.ReadFull returns EOF only when zero bytes were read.
			return h, nil, err
		}
		return h, nil, err
	}
	if binary.LittleEndian.Uint32(rd.head[0:]) != Magic {
		return h, nil, ErrBadMagic
	}
	h.Type = Type(rd.head[4])
	h.Flags = rd.head[5]
	h.Shard = binary.LittleEndian.Uint16(rd.head[6:])
	h.Session = binary.LittleEndian.Uint64(rd.head[8:])
	h.Seq = binary.LittleEndian.Uint64(rd.head[16:])
	length := binary.LittleEndian.Uint32(rd.head[24:])
	crc := binary.LittleEndian.Uint32(rd.head[28:])
	if length > rd.max {
		return h, nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, length, rd.max)
	}
	if cap(rd.payload) < int(length) {
		rd.payload = make([]byte, length)
	}
	payload := rd.payload[:length]
	if _, err := io.ReadFull(rd.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return h, nil, err
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return h, nil, ErrCRC
	}
	rd.nFrames++
	rd.nPayload += uint64(length)
	return h, payload, nil
}

// ---- control payloads ----

// Hello is the client's opening negotiation. Granularity and the detector
// knobs mirror detector.Config; Workers requests the server-side shard
// count (0 lets the server choose). Resume names an existing session to
// re-attach to after a connection drop; the server replies with the last
// batch sequence it applied so the client can replay only unacknowledged
// batches.
type Hello struct {
	Version int    `json:"version"`
	Resume  uint64 `json:"resume,omitempty"`
	// Codec is the highest batch codec the client speaks (CodecPacked,
	// CodecColumnar). Absent (0) from pre-codec clients, which the server
	// maps to CodecPacked — see NegotiateCodec.
	Codec            int   `json:"codec,omitempty"`
	Granularity      uint8 `json:"granularity"`
	Workers          int   `json:"workers"`
	Window           int   `json:"window"`
	NoInitState      bool  `json:"no_init_state,omitempty"`
	NoInitSharing    bool  `json:"no_init_sharing,omitempty"`
	WriteGuidedReads bool  `json:"write_guided_reads,omitempty"`
	ReadReset        bool  `json:"read_reset,omitempty"`
	ReshareInterval  uint8 `json:"reshare_interval,omitempty"`
	// Clock selects the thread-clock representation (detector.ClockMode):
	// 0 general vector clocks, 1 compact task-tree clocks with demotion.
	// Absent (0) from pre-clock clients, preserving general-mode behavior.
	Clock uint8 `json:"clock,omitempty"`
	// Trace asks the server to accept FlagTraced batch frames carrying a
	// span-context payload prefix (see trace.go). Absent (false) from
	// pre-trace clients; the client only emits traced frames after the
	// server echoes the grant in HelloAck.Trace.
	Trace bool `json:"trace,omitempty"`
	// Provenance asks the server to run its detectors with the race
	// provenance flight recorder, so every ReportRace in the end-of-session
	// report carries a Prov record. Absent (false) from pre-provenance
	// clients; a pre-provenance server ignores the field and reports races
	// without provenance — the client must treat missing Prov as "server
	// too old", not an error.
	Provenance bool `json:"provenance,omitempty"`
}

// HelloAck is the server's negotiation reply. Window is the granted
// in-flight batch window (≤ the requested one); AckEvery is the server's
// acknowledgement cadence (always ≤ Window/2, or 1, so the window cannot
// wedge); ResumeSeq is the last applied batch sequence (0 for a fresh
// session).
type HelloAck struct {
	SessionID uint64 `json:"session_id"`
	Window    int    `json:"window"`
	AckEvery  int    `json:"ack_every"`
	ResumeSeq uint64 `json:"resume_seq"`
	// Codec is the granted batch codec: min(client ceiling, server
	// ceiling). Absent (0) from pre-codec servers, which the client maps
	// to CodecPacked. Every Batch frame of the session uses this codec.
	Codec int `json:"codec,omitempty"`
	// Trace grants the client's Hello.Trace request. Absent (false) from
	// pre-trace servers, so a new client talking to an old server simply
	// never sends traced frames — the same absent-means-v1 interop rule as
	// Codec.
	Trace bool `json:"trace,omitempty"`
}

// Report is the server's end-of-session payload: the merged pipeline
// result in the same shape race.Run consumes in-process, so a remote run
// fills the unified race.Report identically to a local one.
type Report struct {
	Races  []ReportRace `json:"races"`
	Stats  ReportStats  `json:"stats"`
	Events uint64       `json:"events"`
	// LastSeq is the highest batch sequence the server applied before
	// producing this report. A cluster coordinator uses it as the
	// per-member drain watermark when it merges reports; merged reports
	// carry the sum (total batch frames across members). Absent (0) from
	// pre-cluster servers.
	LastSeq uint64 `json:"last_seq,omitempty"`
}

// ReportRace mirrors detector.Race field-for-field with stable JSON names,
// so the wire schema does not silently drift when the detector grows.
type ReportRace struct {
	Kind    uint8  `json:"kind"`
	Addr    uint64 `json:"addr"`
	Size    uint32 `json:"size"`
	Tid     int32  `json:"tid"`
	PC      uint32 `json:"pc"`
	PrevTid int32  `json:"prev_tid"`
	PrevPC  uint32 `json:"prev_pc"`
	// Prov is the race's provenance record, present only for sessions that
	// negotiated Hello.Provenance. It rides value copies (MergeReports,
	// SortRaces, migration filtering) untouched — the identity fields above
	// alone define race ordering and equality.
	Prov *detector.Provenance `json:"prov,omitempty"`
}

// ReportStats carries the detector statistics a remote client needs to
// fill race.Report.Detector (the Table 2/3/4 columns).
type ReportStats struct {
	Accesses           uint64  `json:"accesses"`
	SameEpoch          uint64  `json:"same_epoch"`
	NonShared          uint64  `json:"non_shared"`
	HashPeakBytes      int64   `json:"hash_peak_bytes"`
	VCPeakBytes        int64   `json:"vc_peak_bytes"`
	BitmapPeakBytes    int64   `json:"bitmap_peak_bytes"`
	TotalPeakBytes     int64   `json:"total_peak_bytes"`
	Races              uint64  `json:"races"`
	Suppressed         uint64  `json:"suppressed"`
	SharingComparisons uint64  `json:"sharing_comparisons"`
	NodesPeak          int64   `json:"nodes_peak"`
	AvgSharing         float64 `json:"avg_sharing"`
	NodeAllocs         uint64  `json:"node_allocs"`
	LocCreations       uint64  `json:"loc_creations"`
	Merges             uint64  `json:"merges"`
	Splits             uint64  `json:"splits"`
	// Structure-aware clock layer (zero unless the session negotiated
	// compact clocks).
	ClockStructuredThreads uint64 `json:"clock_structured_threads,omitempty"`
	ClockDemotions         uint64 `json:"clock_demotions,omitempty"`
	ClockCompactBytes      int64  `json:"clock_compact_bytes,omitempty"`
	ClockCompactPeakBytes  int64  `json:"clock_compact_peak_bytes,omitempty"`
	ClockGeneralBytes      int64  `json:"clock_general_bytes,omitempty"`
	ClockGeneralPeakBytes  int64  `json:"clock_general_peak_bytes,omitempty"`
	// ShedRecords counts access records the server dropped under queue
	// pressure before they reached its pipeline (load shedding; sync is
	// never shed). Absent means the server has no shedding — old servers
	// interoperate.
	ShedRecords uint64 `json:"shed_records,omitempty"`
	// Elided counts accesses the client's front-line filter dropped as
	// exact same-epoch repeats before they ever reached the wire; it is
	// filled in client-side (the server never sees elided events), and
	// rides ReportStats so merged and persisted reports keep coverage
	// reconciliation exact: observed accesses = Accesses + Elided. Absent
	// means no elision — old peers interoperate.
	Elided uint64 `json:"elided,omitempty"`
}

// ErrorPayload is the body of a TypeError frame. Code is a stable,
// machine-matchable identifier; Message is for humans.
type ErrorPayload struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes sent by the server.
const (
	CodeBadVersion   = "bad-version"
	CodeBadOptions   = "bad-options"
	CodeSessionLimit = "session-limit"
	CodeNoSession    = "no-session"
	CodeProtocol     = "protocol"
	CodeDraining     = "draining"
	// CodeBusy rejects a resume that raced the old connection's teardown:
	// the session is still attached, but will detach as soon as the server
	// notices the dead connection (which the rejection accelerates by
	// closing it). Retryable.
	CodeBusy = "busy"
)

// MarshalControl encodes a control payload as JSON.
func MarshalControl(v any) ([]byte, error) { return json.Marshal(v) }

// UnmarshalControl decodes a control payload, rejecting unknown shapes
// loosely (unknown fields are ignored for forward compatibility).
func UnmarshalControl(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("wire: bad control payload: %w", err)
	}
	return nil
}

// AppendControlFrame marshals v and appends it as a frame of type h.Type.
func AppendControlFrame(dst []byte, h Header, v any) ([]byte, error) {
	payload, err := MarshalControl(v)
	if err != nil {
		return dst, err
	}
	return AppendFrame(dst, h, payload), nil
}
