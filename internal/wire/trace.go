// Distributed-trace carriage for Batch frames. A traced batch sets
// FlagTraced in the frame header and prefixes its payload with a fixed
// 16-byte span context (trace id, span id — both little-endian uint64)
// ahead of the codec-encoded records. The interop model mirrors codec
// negotiation: absence means untraced. A pre-trace server never inspects
// the flags byte it documents as "reserved, must be 0", so traced clients
// only emit the prefix after the server granted tracing in HelloAck.Trace;
// a pre-trace client never sets the flag and its batches decode exactly as
// before. Keeping the span context out of the header proper means the
// 32-byte header layout — and every untraced byte stream — is unchanged.
package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/event"
)

// FlagTraced marks a Batch frame whose payload opens with a TracePrefixSize
// span context. Only meaningful on TypeBatch frames of sessions that
// negotiated Hello.Trace/HelloAck.Trace.
const FlagTraced = 0x1

// TracePrefixSize is the traced-batch payload prefix: trace id (8 bytes LE)
// then span id (8 bytes LE).
const TracePrefixSize = 16

// AppendBatchFrameTraced encodes b as a Batch frame in the session codec
// with a span-context payload prefix, setting FlagTraced. A zero trace id
// means "this batch is unsampled": the frame is emitted untraced, byte
// identical to AppendBatchFrameCodec, so per-batch sampling costs nothing
// on the wire for unsampled batches.
func AppendBatchFrameTraced(dst []byte, h Header, b *event.Batch, codec int, trace, span uint64) []byte {
	if trace == 0 {
		return AppendBatchFrameCodec(dst, h, b, codec)
	}
	h.Type = TypeBatch
	h.Flags |= FlagTraced
	off := len(dst)
	dst = append(dst, make([]byte, HeaderSize+TracePrefixSize)...)
	binary.LittleEndian.PutUint64(dst[off+HeaderSize:], trace)
	binary.LittleEndian.PutUint64(dst[off+HeaderSize+8:], span)
	if codec == CodecColumnar {
		dst = AppendColumnar(dst, b.Recs)
	} else {
		n := len(b.Recs) * RecSize
		dst = append(dst, make([]byte, n)...)
		recsOut := dst[len(dst)-n:]
		for i := range b.Recs {
			PutRec(recsOut[i*RecSize:], &b.Recs[i])
		}
	}
	payload := dst[off+HeaderSize:]
	putHeader(dst[off:], h, uint32(len(payload)), checksum(payload))
	return dst
}

// SplitTracePrefix separates a Batch payload into its span context and the
// codec-encoded records. Untraced frames (flag clear) pass through with a
// zero context.
func SplitTracePrefix(h Header, payload []byte) (trace, span uint64, recs []byte, err error) {
	if h.Flags&FlagTraced == 0 {
		return 0, 0, payload, nil
	}
	if len(payload) < TracePrefixSize {
		return 0, 0, nil, fmt.Errorf("wire: traced batch payload %d bytes, need %d-byte span context", len(payload), TracePrefixSize)
	}
	trace = binary.LittleEndian.Uint64(payload)
	span = binary.LittleEndian.Uint64(payload[8:])
	return trace, span, payload[TracePrefixSize:], nil
}
