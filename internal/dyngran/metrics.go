// Telemetry instruments for one shadow plane. Every counter is bumped at
// exactly the site that bumps the corresponding Stats field (where one
// exists), so a run's telemetry reconciles 1:1 against Plane.St — pinned
// by race.TestTelemetryReconciliation. A zero Metrics (all-nil counters)
// is the disabled instrument set: every increment is a nil-receiver no-op,
// keeping the uninstrumented hot path at one predictable branch per site.
package dyngran

import "repro/internal/telemetry"

// Metrics is the per-plane telemetry instrument set. Construct with
// NewMetrics; the zero value is valid and disabled.
type Metrics struct {
	// Node churn (mirrors Stats.NodeAllocs plus the release side the
	// tables never needed). NodeRecycles mirrors Stats.NodeRecycles: the
	// subset of allocations the plane freelist served without touching the
	// Go heap.
	NodeAllocs   *telemetry.Counter
	NodeReleases *telemetry.Counter
	NodeRecycles *telemetry.Counter
	// Merges and Splits mirror Stats.Merges / Stats.Splits.
	Merges *telemetry.Counter
	Splits *telemetry.Counter

	// Figure 2 state-machine transitions: entering Init (node creation),
	// Shared, Private, and Race.
	ToInit    *telemetry.Counter
	ToShared  *telemetry.Counter
	ToPrivate *telemetry.Counter
	ToRace    *telemetry.Counter

	// Sharing decisions: first-epoch (Init-state, including the
	// extend-left fast path) and second-epoch (final), split by verdict.
	FirstShareTaken    *telemetry.Counter
	FirstShareRejected *telemetry.Counter
	ShareTaken         *telemetry.Counter
	ShareRejected      *telemetry.Counter
}

// noopMetrics is the shared disabled instrument set installed by NewPlane,
// so plane code can increment unconditionally.
var noopMetrics = &Metrics{}

// NewMetrics registers the plane instrument family on r with a plane label
// ("read" or "write"). A nil registry yields a valid, disabled Metrics.
func NewMetrics(r *telemetry.Registry, kind Kind) *Metrics {
	plane := "read"
	if kind == WritePlane {
		plane = "write"
	}
	l := telemetry.Labels{"plane": plane}
	m := &Metrics{
		NodeAllocs:   r.Counter("shadow_node_allocs_total", "Shadow clock-node allocations.", l),
		NodeReleases: r.Counter("shadow_node_releases_total", "Shadow clock-node releases.", l),
		NodeRecycles: r.Counter("shadow_node_recycles_total", "Shadow clock-node allocations served by the plane freelist.", l),
		Merges:       r.Counter("shadow_node_merges_total", "Clock-sharing merge events (incl. extend-left).", l),
		Splits:       r.Counter("shadow_node_splits_total", "Clock-sharing split events.", l),
	}
	for _, t := range []struct {
		to string
		c  **telemetry.Counter
	}{
		{"init", &m.ToInit},
		{"shared", &m.ToShared},
		{"private", &m.ToPrivate},
		{"race", &m.ToRace},
	} {
		*t.c = r.Counter("detector_state_transitions_total",
			"Figure 2 state-machine transitions, by destination state.",
			l, telemetry.Labels{"to": t.to})
	}
	for _, t := range []struct {
		epoch, verdict string
		c              **telemetry.Counter
	}{
		{"first", "taken", &m.FirstShareTaken},
		{"first", "rejected", &m.FirstShareRejected},
		{"second", "taken", &m.ShareTaken},
		{"second", "rejected", &m.ShareRejected},
	} {
		*t.c = r.Counter("detector_sharing_decisions_total",
			"Granularity sharing decisions, by epoch and verdict.",
			l, telemetry.Labels{"epoch": t.epoch, "verdict": t.verdict})
	}
	return m
}
