// Package dyngran implements the paper's contribution: dynamic detection
// granularity realized by sharing one vector clock among neighbouring memory
// locations (Section III). A shadow *Node* records the access history of a
// contiguous address range; all shadow slots in the range alias the node.
// Detection starts at byte (access-footprint) granularity and grows as
// neighbouring locations are found to carry the same clock.
//
// Each node carries the vector-clock state machine of Figure 2:
//
//	Init    — the location's first epoch; may be temporarily shared with a
//	          neighbour that is also in Init and has the same clock
//	          (sub-states 1st-Epoch-Shared / 1st-Epoch-Private).
//	Shared  — after the second-epoch access, the location shares its clock
//	          with a neighbour that has the same clock.
//	Private — after the second-epoch access, no neighbour matched.
//	Race    — a data race was found; sharing is dissolved and every
//	          formerly-sharing location gets a private clock.
//
// The sharing decision is made at most twice in a location's lifetime: once
// on first access and once on the second-epoch access. The same Node/Plane
// machinery also backs the fixed byte and word granularities (which simply
// never merge), so all granularities share one code path and one accounting
// scheme.
package dyngran

import (
	"repro/internal/event"
	"repro/internal/fasttrack"
	"repro/internal/shadow"
	"repro/internal/vc"
)

// State is the vector-clock state machine state of Figure 2.
type State uint8

const (
	// Init is the location's first epoch (since its first access).
	Init State = iota
	// Shared means the location shares its clock with neighbours.
	Shared
	// Private means the location owns its clock alone.
	Private
	// Race means a data race was found on the location.
	Race
)

func (s State) String() string {
	switch s {
	case Init:
		return "Init"
	case Shared:
		return "Shared"
	case Private:
		return "Private"
	case Race:
		return "Race"
	default:
		return "?"
	}
}

// Kind selects the access plane a Plane tracks. Read and write locations
// are maintained separately and only like-typed clocks are shared.
type Kind uint8

const (
	ReadPlane Kind = iota
	WritePlane
)

// Node is the shadow record of one location (or of several locations
// sharing a clock). It covers the address range [Lo, Hi).
type Node struct {
	// W is the FastTrack write epoch (write plane).
	W vc.Epoch
	// R is the adaptive read representation (read plane).
	R fasttrack.Read

	// Lo, Hi delimit the covered address range.
	Lo, Hi uint64
	// Locs counts how many first-access locations were folded into this
	// node; the Table 3 "avg sharing count" statistic derives from it.
	Locs int32

	// State is the Figure 2 state.
	State State
	// InitShared distinguishes 1st-Epoch-Shared from 1st-Epoch-Private
	// while State == Init.
	InitShared bool
	// Reported is set once the first race on this location is reported;
	// later races on it are not re-reported (the DJIT+ policy).
	Reported bool

	// Settled counts distinct-epoch accesses since the node entered the
	// Private state; the adaptive-resharing extension (Section VII future
	// work) re-runs the sharing decision when it reaches the configured
	// interval.
	Settled uint8

	// Hist packs the node's state-transition history, 2 bits per state,
	// newest in the low bits; HistLen counts recorded transitions (capped
	// at 16). Maintained by SetState at zero allocation cost so race
	// provenance can replay the Figure 2 path that led to a verdict.
	Hist    uint32
	HistLen uint8

	// PC is the code site of the last recorded access, kept for reports.
	PC event.PC
}

// SetState records a state transition: the new state is pushed onto the
// packed history and becomes current. All state changes go through here
// (or through clone, which copies the history wholesale).
func (n *Node) SetState(s State) {
	n.Hist = n.Hist<<2 | uint32(s)
	if n.HistLen < 16 {
		n.HistLen++
	}
	n.State = s
}

// StateHistory decodes the recorded transitions, oldest first. Allocates;
// meant for the race-report path, not the hot path.
func (n *Node) StateHistory() []State {
	k := int(n.HistLen)
	out := make([]State, k)
	for i := 0; i < k; i++ {
		out[k-1-i] = State(n.Hist >> (2 * uint(i)) & 3)
	}
	return out
}

// Accounting object sizes, mirroring a C implementation the way the paper
// measures ("based on object size"): an epoch-bearing node is two words of
// clock plus range/state metadata.
const nodeBytes = 32

// bytes returns the node's accounted size including an inflated read vector.
func (n *Node) bytes() int64 { return nodeBytes + int64(n.R.Bytes()) }

// Stats aggregates the plane statistics the evaluation tables report.
type Stats struct {
	// NodesCur/NodesPeak track live clock-bearing nodes; NodesPeak is the
	// "Max. # of vector clocks" column of Table 3.
	NodesCur, NodesPeak int64
	// VCBytesCur/VCBytesPeak track clock storage for Table 2's "Vector
	// clock" column.
	VCBytesCur, VCBytesPeak int64
	// NodeAllocs counts node allocations (logical shadow-node creations;
	// the paper's "# of vector clock creations"); LocCreations counts
	// first-access location creations.
	NodeAllocs, LocCreations uint64
	// NodeRecycles counts NodeAllocs that were served from the plane's
	// freelist instead of the Go heap — the allocation-lean hot path's
	// effectiveness measure (NodeRecycles/NodeAllocs is the recycle rate).
	NodeRecycles uint64
	// LiveLocs is the number of locations currently represented by live
	// nodes; AvgSharingAtPeak is LiveLocs/NodesCur sampled whenever the
	// node count peaks — Table 3's "avg sharing count" (how many
	// locations share one vector clock).
	LiveLocs         int64
	AvgSharingAtPeak float64
	// Merges and Splits count sharing events and split events.
	Merges, Splits uint64
	// Races counts reported races (first per location).
	Races uint64
}

// locsDelta adjusts the live-location count.
func (s *Stats) locsDelta(d int64) {
	s.LiveLocs += d
	s.sampleSharing()
}

// sampleSharing refreshes the peak-time sharing ratio.
func (s *Stats) sampleSharing() {
	if s.NodesCur > 0 && s.NodesCur >= s.NodesPeak {
		s.AvgSharingAtPeak = float64(s.LiveLocs) / float64(s.NodesCur)
	}
}

// Plane is one access plane's shadow state: the Figure 4 indexing table
// plus allocation accounting. Nodes are allocated from per-plane arena
// slabs and recycled through a freelist: the split/merge/drop churn of the
// dynamic-granularity state machine reuses node memory instead of reaching
// the Go heap once per node. A plane is single-owner (one detector shard),
// so the freelist needs no synchronization.
type Plane struct {
	Kind Kind
	Tab  *shadow.Table[*Node]
	St   *Stats
	// Met is the plane's telemetry instrument set; never nil (NewPlane
	// installs the disabled set). Replace via SetMetrics to enable.
	Met *Metrics

	// pool serves vector-clock storage for cloned read vectors (may be
	// nil: plain heap allocation).
	pool *vc.Pool
	// free holds released nodes ready for reuse; arena is the tail of the
	// current allocation slab.
	free  []*Node
	arena []Node
	// scratch is DropRange's reusable collection buffer, so steady-state
	// Free events (malloc/free churn) never allocate.
	scratch []*Node
}

// arenaChunk is the slab size for node allocation: one heap allocation
// per 128 nodes instead of one per node.
const arenaChunk = 128

// NewPlane returns an empty plane of the given kind sharing stats st.
func NewPlane(kind Kind, st *Stats) *Plane {
	return &Plane{Kind: kind, Tab: shadow.New[*Node](), St: st, Met: noopMetrics}
}

// SetPool binds the plane's vector-clock storage (cloned read vectors) to
// pool p. Nil restores plain heap allocation.
func (p *Plane) SetPool(pl *vc.Pool) { p.pool = pl }

// alloc returns a zeroed node from the freelist (counted as a recycle) or
// the arena. Arena nodes and freelist nodes are both all-zero: slabs start
// zeroed and release() zeroes before pushing.
func (p *Plane) alloc() *Node {
	if k := len(p.free); k > 0 {
		n := p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		p.St.NodeRecycles++
		p.Met.NodeRecycles.Inc()
		return n
	}
	if len(p.arena) == 0 {
		p.arena = make([]Node, arenaChunk)
	}
	n := &p.arena[0]
	p.arena = p.arena[1:]
	return n
}

// SetMetrics installs the plane's telemetry instruments (nil restores the
// disabled set).
func (p *Plane) SetMetrics(m *Metrics) {
	if m == nil {
		m = noopMetrics
	}
	p.Met = m
}

// SameHistory reports whether two nodes carry the same vector clock in this
// plane's sense — the sharing precondition.
func (p *Plane) SameHistory(a, b *Node) bool {
	if p.Kind == WritePlane {
		return a.W == b.W
	}
	return a.R.Equal(&b.R)
}

// account registers allocation (+) or release (-) of a node's storage,
// including the locations the node represents.
func (p *Plane) account(n *Node, sign int64) {
	p.St.VCBytesCur += sign * n.bytes()
	p.St.NodesCur += sign
	p.St.LiveLocs += sign * int64(n.Locs)
	if sign < 0 {
		p.Met.NodeReleases.Inc()
	}
	if sign > 0 {
		p.St.NodeAllocs++
		p.Met.NodeAllocs.Inc()
		if p.St.NodesCur > p.St.NodesPeak {
			p.St.NodesPeak = p.St.NodesCur
		}
		if p.St.VCBytesCur > p.St.VCBytesPeak {
			p.St.VCBytesPeak = p.St.VCBytesCur
		}
	}
	p.St.sampleSharing()
}

// AccountInflation records that a node's read representation grew by delta
// bytes (epoch → vector inflation).
func (p *Plane) AccountInflation(delta int64) {
	p.St.VCBytesCur += delta
	if p.St.VCBytesCur > p.St.VCBytesPeak {
		p.St.VCBytesPeak = p.St.VCBytesCur
	}
}

// NewNode allocates a node covering [lo, hi), points the range's shadow
// slots at it, and accounts it. The caller fills in the clock afterwards.
func (p *Plane) NewNode(lo, hi uint64, state State) *Node {
	n := p.alloc()
	n.Lo, n.Hi, n.Locs = lo, hi, 1
	n.SetState(state)
	if state == Init {
		p.Met.ToInit.Inc()
	}
	p.account(n, +1)
	p.Tab.SetRange(lo, hi, n)
	return n
}

// clone allocates a copy of n covering [lo, hi) with an independent clock
// (the read vector, if inflated, is shared copy-on-write through the
// plane's pool — either side's next mutation splits off its own array).
func (p *Plane) clone(n *Node, lo, hi uint64, locs int32) *Node {
	c := p.alloc()
	c.W = n.W
	c.R = n.R.CloneIn(p.pool)
	c.Lo, c.Hi = lo, hi
	c.Locs = locs
	c.State = n.State
	c.Hist, c.HistLen = n.Hist, n.HistLen
	c.InitShared = n.InitShared
	c.Reported = n.Reported
	c.PC = n.PC
	p.account(c, +1)
	p.Tab.SetRange(lo, hi, c)
	return c
}

// release drops a node from accounting and recycles it: the inflated read
// vector (if any) returns to its pool, the node is zeroed and pushed onto
// the plane freelist. The caller must already have repointed or cleared
// every shadow slot that referenced n.
func (p *Plane) release(n *Node) {
	p.account(n, -1)
	n.R.Release()
	*n = Node{}
	p.free = append(p.free, n)
}

// hasCells reports whether any shadow slot in [lo, hi) is set.
func (p *Plane) hasCells(lo, hi uint64) bool {
	found := false
	p.Tab.ForRange(lo, hi, func(uint64, *Node) bool {
		found = true
		return false
	})
	return found
}

// Split carves [lo, hi) out of node n (which must cover it) and returns the
// carved node, which owns an independent copy of n's clock. Remainders on
// either side keep sharing (among themselves) with n's original clock and
// state. Split reuses n for one of the resulting pieces to limit churn.
func (p *Plane) Split(n *Node, lo, hi uint64) *Node {
	p.St.Splits++
	p.Met.Splits.Inc()
	if n.Lo == lo && n.Hi == hi {
		return n // nothing to carve
	}
	leftLive := lo > n.Lo && p.hasCells(n.Lo, lo)
	rightLive := hi < n.Hi && p.hasCells(hi, n.Hi)

	remainder := n.Locs - 1
	if remainder < 1 {
		remainder = 1
	}
	setLocs := func(v int32) {
		p.St.locsDelta(int64(v) - int64(n.Locs))
		n.Locs = v
	}
	switch {
	case leftLive && rightLive:
		// n keeps the left, a clone takes the right, a clone takes the middle.
		lshare := remainder / 2
		if lshare < 1 {
			lshare = 1
		}
		rshare := remainder - lshare
		if rshare < 1 {
			rshare = 1
		}
		p.clone(n, hi, n.Hi, rshare)
		mid := p.clone(n, lo, hi, 1)
		n.Hi = lo
		setLocs(lshare)
		return mid
	case leftLive:
		mid := p.clone(n, lo, hi, 1)
		n.Hi = lo
		setLocs(remainder)
		return mid
	case rightLive:
		mid := p.clone(n, lo, hi, 1)
		n.Lo = hi
		setLocs(remainder)
		return mid
	default:
		// No live remainder: n itself becomes the carved node.
		n.Lo, n.Hi = lo, hi
		setLocs(1)
		return n
	}
}

// Merge folds node src into dst (they must be neighbours with the same
// clock): every slot of src repoints to dst and dst's range grows to the
// union. Returns dst.
func (p *Plane) Merge(dst, src *Node) *Node {
	if dst == src {
		return dst
	}
	p.St.Merges++
	p.Met.Merges.Inc()
	p.Tab.SetRange(src.Lo, src.Hi, dst)
	if src.Lo < dst.Lo {
		dst.Lo = src.Lo
	}
	if src.Hi > dst.Hi {
		dst.Hi = src.Hi
	}
	dst.Locs += src.Locs
	p.St.locsDelta(int64(src.Locs))
	p.release(src)
	return dst
}

// neighborSearchDist bounds the "nearest predecessor/successor with a valid
// vector clock" search used for first-epoch sharing. C structs pad by at
// most 7 bytes, so 8 loses no realistic adjacency while staying O(1).
const neighborSearchDist = 8

// canMerge reports whether folding a and b would keep the combined range
// within one indexing block. Sharing is performed through a hash entry's
// indexing array (Figure 4), so a shared clock never spans entries; this
// bounds every range operation at m = 128 addresses and yields the paper's
// ≈32-location sharing ceiling (Table 3's pbzip2 row).
func canMerge(a, b *Node) bool {
	lo, hi := a.Lo, a.Hi
	if b.Lo < lo {
		lo = b.Lo
	}
	if b.Hi > hi {
		hi = b.Hi
	}
	return lo/shadow.BlockSize == (hi-1)/shadow.BlockSize
}

// Neighbors returns the nodes nearest to the left of lo and right of hi
// within the first-epoch search distance (either may be nil).
func (p *Plane) Neighbors(lo, hi uint64) (left, right *Node) {
	if _, n, ok := p.Tab.PrevSet(lo, neighborSearchDist); ok {
		left = n
	}
	if _, n, ok := p.Tab.NextSet(hi, neighborSearchDist); ok {
		right = n
	}
	return left, right
}

// AdjacentNeighbors returns the nodes immediately adjacent to [lo, hi) —
// the second-epoch neighbours at L-size and L+size.
func (p *Plane) AdjacentNeighbors(lo, hi uint64) (left, right *Node) {
	if lo > 0 {
		left = p.Tab.Get(lo - 1)
	}
	right = p.Tab.Get(hi)
	return left, right
}

// TryExtendLeft is the fast path of first-epoch sharing for sequential
// initialization: when a fresh location [lo, hi) directly continues an Init
// node that ends at lo and carries exactly the history the new location
// would get (w for the write plane, r for the read plane), the node is
// extended in place — no allocation, no neighbour search. This is where
// dynamic granularity's "N× fewer vector clock creations" (Section V.A,
// pbzip2) comes from.
func (p *Plane) TryExtendLeft(lo, hi uint64, w vc.Epoch, r *fasttrack.Read) (*Node, bool) {
	if lo == 0 {
		return nil, false
	}
	left := p.Tab.Get(lo - 1)
	if left == nil || left.State != Init || left.Hi != lo {
		return nil, false
	}
	if left.Lo/shadow.BlockSize != (hi-1)/shadow.BlockSize {
		return nil, false
	}
	if p.Kind == WritePlane {
		if left.W != w {
			return nil, false
		}
	} else if left.R.Shared() || r == nil || !left.R.Equal(r) {
		return nil, false
	}
	p.Tab.SetRange(lo, hi, left)
	left.Hi = hi
	left.Locs++
	left.InitShared = true
	p.St.locsDelta(1)
	p.St.Merges++
	p.Met.Merges.Inc()
	p.Met.FirstShareTaken.Inc()
	return left, true
}

// TryFirstEpochShare attempts the temporary Init-state sharing for a fresh
// node n: a neighbour qualifies if it is in Init and has the same clock.
// On success n is folded into the neighbour. Returns the surviving node.
func (p *Plane) TryFirstEpochShare(n *Node) *Node {
	left, right := p.Neighbors(n.Lo, n.Hi)
	merged := n
	shared := false
	if left != nil && left != n && left.State == Init && canMerge(left, n) &&
		p.SameHistory(left, n) {
		merged = p.Merge(left, merged)
		shared = true
	}
	if right != nil && right != merged && right.State == Init && canMerge(merged, right) &&
		p.SameHistory(right, merged) {
		merged = p.Merge(merged, right)
		shared = true
	}
	merged.InitShared = merged.Locs > 1
	if shared {
		p.Met.FirstShareTaken.Inc()
	} else {
		p.Met.FirstShareRejected.Inc()
	}
	return merged
}

// DecideSecondEpoch makes the final sharing decision for node n after its
// second-epoch access updated its clock: share with an adjacent neighbour
// in Shared or Private state that has the same clock, else become Private.
// Returns the surviving node.
func (p *Plane) DecideSecondEpoch(n *Node) *Node {
	left, right := p.AdjacentNeighbors(n.Lo, n.Hi)
	merged := n
	shared := false
	if left != nil && left != n && (left.State == Shared || left.State == Private) &&
		canMerge(left, n) && p.SameHistory(left, n) {
		merged = p.Merge(left, merged)
		shared = true
	}
	if right != nil && right != merged && (right.State == Shared || right.State == Private) &&
		canMerge(merged, right) && p.SameHistory(merged, right) {
		merged = p.Merge(merged, right)
		shared = true
	}
	if shared {
		merged.SetState(Shared)
		p.Met.ShareTaken.Inc()
		p.Met.ToShared.Inc()
	} else {
		merged.SetState(Private)
		p.Met.ShareRejected.Inc()
		p.Met.ToPrivate.Inc()
	}
	merged.InitShared = false
	return merged
}

// SetRace carves [lo, hi) out of n, marks it Race/Reported, and dissolves
// any remaining sharing: formerly-sharing remainders also enter the Race
// state with private clocks (the paper's splitAndSetRace), but stay
// unreported so their own first race can still be reported.
func (p *Plane) SetRace(n *Node, lo, hi uint64) *Node {
	wasShared := n.Locs > 1 || n.Lo != lo || n.Hi != hi
	mid := p.Split(n, lo, hi)
	mid.SetState(Race)
	mid.InitShared = false
	mid.Reported = true
	p.Met.ToRace.Inc()
	if wasShared {
		// Mark the split-off remainders Race as well.
		p.markRaceAround(lo, hi, mid)
	}
	return mid
}

// markRaceAround sets the nodes adjacent to [lo, hi) that resulted from the
// dissolved sharing into the Race state.
func (p *Plane) markRaceAround(lo, hi uint64, mid *Node) {
	if lo > 0 {
		if left := p.Tab.Get(lo - 1); left != nil && left != mid {
			if left.State != Race {
				p.Met.ToRace.Inc()
				left.SetState(Race)
			}
			left.InitShared = false
		}
	}
	if right := p.Tab.Get(hi); right != nil && right != mid {
		if right.State != Race {
			p.Met.ToRace.Inc()
			right.SetState(Race)
		}
		right.InitShared = false
	}
}

// DeflateReads resets the read representation of nodes whose reads are all
// ordered before tc back to the empty epoch — FastTrack's write-exclusive
// optimization: once a write dominates every read of a location, the
// inflated read vector carries no information the write epoch doesn't, so
// its storage can be reclaimed.
func (p *Plane) DeflateReads(lo, hi uint64, tc vc.View) {
	var last *Node
	p.Tab.ForRange(lo, hi, func(_ uint64, n *Node) bool {
		if n == last {
			return true
		}
		last = n
		if n.R.Shared() && n.R.LEQ(tc) {
			p.AccountInflation(-int64(n.R.Bytes()))
			n.R.Release() // vector storage back to its pool
		}
		return true
	})
}

// DropRange discards all shadow state in [lo, hi) — the free() path. Nodes
// fully inside the range are released; nodes straddling a boundary are
// shrunk.
func (p *Plane) DropRange(lo, hi uint64) {
	// Collect each node once. Adjacent-only dedup is not enough: a merge of
	// two pieces around an interior hole leaves a node whose range contains
	// slots owned by a later hole-filling node, so the same node can appear
	// in non-contiguous slot runs — and a double release would push it onto
	// the freelist twice (aliased reuse). The per-block node count is small
	// (≤ 32), so a linear membership scan stays cheap.
	nodes := p.scratch[:0]
	p.Tab.ForRange(lo, hi, func(_ uint64, n *Node) bool {
		for _, m := range nodes {
			if m == n {
				return true
			}
		}
		nodes = append(nodes, n)
		return true
	})
	for _, n := range nodes {
		switch {
		case n.Lo >= lo && n.Hi <= hi:
			p.release(n)
		case n.Lo < lo && n.Hi > hi:
			// Straddles both ends: keep left in n, clone the right tail.
			if p.hasCells(hi, n.Hi) {
				p.clone(n, hi, n.Hi, 1)
			}
			n.Hi = lo
			if !p.hasCells(n.Lo, n.Hi) {
				p.Tab.ClearRange(n.Lo, n.Hi)
				p.release(n)
			}
		case n.Lo < lo:
			n.Hi = lo
			if !p.hasCells(n.Lo, n.Hi) {
				p.Tab.ClearRange(n.Lo, n.Hi)
				p.release(n)
			}
		default: // n.Hi > hi
			n.Lo = hi
			if !p.hasCells(n.Lo, n.Hi) {
				p.Tab.ClearRange(n.Lo, n.Hi)
				p.release(n)
			}
		}
	}
	for i := range nodes {
		nodes[i] = nil // drop references so released nodes aren't pinned
	}
	p.scratch = nodes[:0]
	p.Tab.ClearRange(lo, hi)
}

// AvgSharing returns the average number of locations sharing one clock
// node, sampled when the live node count peaked — Table 3's "Avg. sharing
// count".
func (s *Stats) AvgSharing() float64 {
	if s.AvgSharingAtPeak < 1 {
		return 1
	}
	return s.AvgSharingAtPeak
}
