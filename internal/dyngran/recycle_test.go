// Regression tests for node recycling under the hole-merge aliasing
// pattern. Merge only requires the combined range to fit one indexing
// block, so merging two pieces around an interior hole leaves a node
// whose [Lo,Hi) contains slots it does not own; when a later first access
// fills the hole, the outer node appears in NON-contiguous slot runs.
// DropRange's collection must still release it exactly once — a double
// release pushes the node onto the freelist twice, and the two freelist
// pops then alias the same *Node under two unrelated ranges (observed as
// a shadow-plane invariant violation and an infinite segment walk).
package dyngran

import (
	"testing"

	"repro/internal/vc"
)

// holeMergePlane builds the aliasing precondition: outer covers
// [0x100,0x118) in two slot runs with hole owned by mid.
func holeMergePlane(t *testing.T) (p *Plane, outer, mid *Node) {
	t.Helper()
	p, _ = newWritePlane()
	a := p.NewNode(0x100, 0x108, Init)
	a.W = vc.MakeEpoch(0, 1)
	b := p.NewNode(0x110, 0x118, Init)
	b.W = vc.MakeEpoch(0, 1)
	outer = p.Merge(a, b) // [0x100,0x118) with unowned hole [0x108,0x110)
	mid = p.NewNode(0x108, 0x110, Init)
	mid.W = vc.MakeEpoch(1, 1)
	if outer.Lo != 0x100 || outer.Hi != 0x118 {
		t.Fatalf("outer range [%#x,%#x), want [0x100,0x118)", outer.Lo, outer.Hi)
	}
	if p.Tab.Get(0x10c) != mid || p.Tab.Get(0x104) != outer || p.Tab.Get(0x114) != outer {
		t.Fatal("hole-merge precondition not established")
	}
	return p, outer, mid
}

// TestDropRangeHoleMergeSingleRelease drops the whole aliased range and
// asserts the freelist holds no duplicate, i.e. the outer node was
// collected once despite owning two slot runs.
func TestDropRangeHoleMergeSingleRelease(t *testing.T) {
	p, _, _ := holeMergePlane(t)
	p.DropRange(0x100, 0x118)
	seen := map[*Node]bool{}
	for _, n := range p.free {
		if seen[n] {
			t.Fatalf("node %p pushed onto the freelist twice", n)
		}
		seen[n] = true
	}
	// History: Merge released b (1 header), NewNode(mid) recycled it,
	// DropRange released outer and mid → exactly 2 headers parked.
	if len(p.free) != 2 {
		t.Fatalf("freelist holds %d nodes, want 2", len(p.free))
	}
	if p.St.NodesCur != 0 {
		t.Fatalf("NodesCur after full drop: %d, want 0", p.St.NodesCur)
	}
	// Recycled nodes must come back as distinct, empty headers.
	x := p.NewNode(0x200, 0x208, Init)
	y := p.NewNode(0x210, 0x218, Init)
	if x == y {
		t.Fatal("freelist handed out the same node twice")
	}
	if x.R.V != nil || y.R.V != nil || x.Locs != 1 || y.Locs != 1 {
		t.Fatal("recycled node not reset")
	}
}

// TestDropRangePartialOverHole drops only the first slot run of the
// aliased outer node: the node must survive, shrunk, still owning its
// second run, and the hole-filling node must be released exactly once.
func TestDropRangePartialOverHole(t *testing.T) {
	p, outer, _ := holeMergePlane(t)
	p.DropRange(0x100, 0x110) // first run of outer + all of mid
	if got := p.Tab.Get(0x104); got != nil {
		t.Fatalf("slot 0x104 after drop: %p, want nil", got)
	}
	if got := p.Tab.Get(0x114); got != outer {
		t.Fatalf("slot 0x114 after drop: %p, want surviving outer %p", got, outer)
	}
	if outer.Lo != 0x110 || outer.Hi != 0x118 {
		t.Fatalf("outer shrunk to [%#x,%#x), want [0x110,0x118)", outer.Lo, outer.Hi)
	}
	for _, n := range p.free {
		if n == outer {
			t.Fatal("live node found on the freelist")
		}
	}
}
