package dyngran

import (
	"testing"
	"testing/quick"

	"repro/internal/fasttrack"
	"repro/internal/shadow"
	"repro/internal/vc"
)

func newWritePlane() (*Plane, *Stats) {
	st := &Stats{}
	return NewPlane(WritePlane, st), st
}

func newReadPlane() (*Plane, *Stats) {
	st := &Stats{}
	return NewPlane(ReadPlane, st), st
}

func TestNewNodeCoversRange(t *testing.T) {
	p, st := newWritePlane()
	n := p.NewNode(0x100, 0x108, Init)
	n.W = vc.MakeEpoch(0, 1)
	for a := uint64(0x100); a < 0x108; a++ {
		if p.Tab.Get(a) != n {
			t.Fatalf("slot %#x not set", a)
		}
	}
	if st.NodesCur != 1 || st.NodesPeak != 1 || st.LiveLocs != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSameHistoryPerPlane(t *testing.T) {
	wp, _ := newWritePlane()
	a := &Node{W: vc.MakeEpoch(0, 1)}
	b := &Node{W: vc.MakeEpoch(0, 1)}
	c := &Node{W: vc.MakeEpoch(1, 1)}
	if !wp.SameHistory(a, b) || wp.SameHistory(a, c) {
		t.Error("write-plane history comparison broken")
	}
	rp, _ := newReadPlane()
	d := &Node{R: fasttrack.Read{E: vc.MakeEpoch(0, 2)}}
	e := &Node{R: fasttrack.Read{E: vc.MakeEpoch(0, 2)}}
	f := &Node{R: fasttrack.Read{E: vc.MakeEpoch(1, 2)}}
	if !rp.SameHistory(d, e) || rp.SameHistory(d, f) {
		t.Error("read-plane history comparison broken")
	}
}

func TestFirstEpochShareMergesInitNeighbors(t *testing.T) {
	p, st := newWritePlane()
	e := vc.MakeEpoch(0, 1)
	a := p.NewNode(0x100, 0x104, Init)
	a.W = e
	b := p.NewNode(0x104, 0x108, Init)
	b.W = e
	merged := p.TryFirstEpochShare(b)
	if merged != a {
		t.Fatal("fresh node should fold into its Init predecessor")
	}
	if merged.Lo != 0x100 || merged.Hi != 0x108 || merged.Locs != 2 {
		t.Errorf("merged = [%#x,%#x) locs=%d", merged.Lo, merged.Hi, merged.Locs)
	}
	if !merged.InitShared {
		t.Error("merged node must be 1st-Epoch-Shared")
	}
	if p.Tab.Get(0x105) != merged {
		t.Error("slots not repointed")
	}
	if st.NodesCur != 1 || st.LiveLocs != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFirstEpochShareAcrossSmallGap(t *testing.T) {
	p, _ := newWritePlane()
	e := vc.MakeEpoch(0, 1)
	a := p.NewNode(0x100, 0x104, Init)
	a.W = e
	// 4-byte padding gap, within the search distance.
	b := p.NewNode(0x108, 0x10c, Init)
	b.W = e
	if got := p.TryFirstEpochShare(b); got != a {
		t.Error("nearest predecessor within the search distance must be found")
	}
}

func TestFirstEpochShareRespectsSearchDistance(t *testing.T) {
	p, _ := newWritePlane()
	e := vc.MakeEpoch(0, 1)
	a := p.NewNode(0x100, 0x104, Init)
	a.W = e
	b := p.NewNode(0x110, 0x114, Init) // 12-byte gap: beyond the bound
	b.W = e
	if got := p.TryFirstEpochShare(b); got != b {
		t.Error("neighbours beyond the search distance must not merge")
	}
}

func TestFirstEpochShareRequiresInitAndEqualClock(t *testing.T) {
	p, _ := newWritePlane()
	a := p.NewNode(0x100, 0x104, Private) // already settled
	a.W = vc.MakeEpoch(0, 1)
	b := p.NewNode(0x104, 0x108, Init)
	b.W = vc.MakeEpoch(0, 1)
	if got := p.TryFirstEpochShare(b); got != b {
		t.Error("a non-Init neighbour must not temporarily share")
	}
	c := p.NewNode(0x108, 0x10c, Init)
	c.W = vc.MakeEpoch(0, 2) // different clock
	if got := p.TryFirstEpochShare(c); got != c || c.InitShared {
		t.Error("different clocks must not share")
	}
}

func TestFirstEpochShareNeverCrossesBlocks(t *testing.T) {
	p, _ := newWritePlane()
	e := vc.MakeEpoch(0, 1)
	a := p.NewNode(shadow.BlockSize-4, shadow.BlockSize, Init)
	a.W = e
	b := p.NewNode(shadow.BlockSize, shadow.BlockSize+4, Init)
	b.W = e
	if got := p.TryFirstEpochShare(b); got != b {
		t.Error("sharing must not cross an indexing-block boundary")
	}
}

func TestDecideSecondEpochSharesWithSettledNeighbor(t *testing.T) {
	p, _ := newWritePlane()
	e := vc.MakeEpoch(1, 2)
	a := p.NewNode(0x100, 0x104, Private)
	a.W = e
	b := p.NewNode(0x104, 0x108, Init)
	b.W = e
	got := p.DecideSecondEpoch(b)
	if got != a || got.State != Shared {
		t.Fatalf("expected merge into Shared, got %v state=%v", got, got.State)
	}
	if got.Lo != 0x100 || got.Hi != 0x108 {
		t.Errorf("range [%#x,%#x)", got.Lo, got.Hi)
	}
}

func TestDecideSecondEpochIgnoresInitNeighbors(t *testing.T) {
	p, _ := newWritePlane()
	e := vc.MakeEpoch(1, 2)
	a := p.NewNode(0x100, 0x104, Init) // neighbour still in its first epoch
	a.W = e
	b := p.NewNode(0x104, 0x108, Init)
	b.W = e
	got := p.DecideSecondEpoch(b)
	if got != b || got.State != Private {
		t.Error("Init neighbours are not eligible for the final decision")
	}
}

func TestDecideSecondEpochBothSides(t *testing.T) {
	p, st := newWritePlane()
	e := vc.MakeEpoch(1, 2)
	l := p.NewNode(0x100, 0x104, Shared)
	l.W = e
	r := p.NewNode(0x108, 0x10c, Private)
	r.W = e
	mid := p.NewNode(0x104, 0x108, Init)
	mid.W = e
	got := p.DecideSecondEpoch(mid)
	if got.Lo != 0x100 || got.Hi != 0x10c || got.State != Shared {
		t.Errorf("three-way merge failed: [%#x,%#x) %v", got.Lo, got.Hi, got.State)
	}
	if st.NodesCur != 1 || st.LiveLocs != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSplitMiddle(t *testing.T) {
	p, st := newWritePlane()
	n := p.NewNode(0x100, 0x110, Init)
	n.W = vc.MakeEpoch(0, 1)
	n.Locs = 4
	st.LiveLocs = 4 // simulate four folded locations

	mid := p.Split(n, 0x104, 0x108)
	if mid.Lo != 0x104 || mid.Hi != 0x108 || mid.Locs != 1 {
		t.Errorf("mid = [%#x,%#x) locs=%d", mid.Lo, mid.Hi, mid.Locs)
	}
	if p.Tab.Get(0x100) == mid || p.Tab.Get(0x108) == mid {
		t.Error("side slots must not point at the carved node")
	}
	if p.Tab.Get(0x105) != mid {
		t.Error("carved slots must point at the carved node")
	}
	left := p.Tab.Get(0x100)
	right := p.Tab.Get(0x108)
	if left == nil || right == nil || left == right {
		t.Fatal("both sides must survive as distinct nodes")
	}
	if left.W != n.W || right.W != mid.W {
		t.Error("sides keep the original clock")
	}
	if st.NodesCur != 3 {
		t.Errorf("nodes = %d, want 3", st.NodesCur)
	}
}

func TestSplitAtEdges(t *testing.T) {
	p, _ := newWritePlane()
	n := p.NewNode(0x100, 0x110, Init)
	n.W = vc.MakeEpoch(0, 1)

	// Carving the left edge leaves only a right remainder.
	mid := p.Split(n, 0x100, 0x104)
	if mid.Lo != 0x100 || mid.Hi != 0x104 {
		t.Errorf("mid = [%#x,%#x)", mid.Lo, mid.Hi)
	}
	rest := p.Tab.Get(0x104)
	if rest == nil || rest == mid || rest.Lo != 0x104 || rest.Hi != 0x110 {
		t.Errorf("remainder wrong: %+v", rest)
	}
	// Carving an exact-range node returns it unchanged.
	same := p.Split(rest, 0x104, 0x110)
	if same != rest {
		t.Error("exact split must reuse the node")
	}
}

func TestSetRaceDissolvesSharing(t *testing.T) {
	p, _ := newWritePlane()
	n := p.NewNode(0x100, 0x110, Shared)
	n.W = vc.MakeEpoch(0, 3)
	n.Locs = 4

	mid := p.SetRace(n, 0x104, 0x108)
	if mid.State != Race || !mid.Reported {
		t.Errorf("carved location: state=%v reported=%v", mid.State, mid.Reported)
	}
	left := p.Tab.Get(0x100)
	right := p.Tab.Get(0x108)
	if left.State != Race || right.State != Race {
		t.Error("formerly-sharing locations must enter Race")
	}
	if left.Reported || right.Reported {
		t.Error("neighbours' own first races must stay reportable")
	}
	if left == mid || right == mid || left == right {
		t.Error("sharing must be dissolved into private clocks")
	}
}

func TestSetRaceOnExactPrivateNode(t *testing.T) {
	p, _ := newWritePlane()
	n := p.NewNode(0x200, 0x204, Private)
	n.W = vc.MakeEpoch(0, 1)
	got := p.SetRace(n, 0x200, 0x204)
	if got != n || got.State != Race || !got.Reported {
		t.Error("exact-range race must mark the node itself")
	}
}

func TestDropRangeWhole(t *testing.T) {
	p, st := newWritePlane()
	n := p.NewNode(0x100, 0x120, Init)
	n.W = vc.MakeEpoch(0, 1)
	p.DropRange(0x100, 0x120)
	if st.NodesCur != 0 {
		t.Errorf("nodes = %d", st.NodesCur)
	}
	if p.Tab.Get(0x110) != nil {
		t.Error("slots must be cleared")
	}
}

func TestDropRangePartial(t *testing.T) {
	p, st := newWritePlane()
	n := p.NewNode(0x100, 0x120, Init)
	n.W = vc.MakeEpoch(0, 1)
	// Free the middle: the node straddles both boundaries.
	p.DropRange(0x108, 0x118)
	left := p.Tab.Get(0x100)
	right := p.Tab.Get(0x118)
	if left == nil || right == nil {
		t.Fatal("surviving ranges lost their nodes")
	}
	if left.Hi != 0x108 || right.Lo != 0x118 {
		t.Errorf("ranges: left.Hi=%#x right.Lo=%#x", left.Hi, right.Lo)
	}
	if p.Tab.Get(0x110) != nil {
		t.Error("freed middle must be clear")
	}
	if st.NodesCur != 2 {
		t.Errorf("nodes = %d, want 2", st.NodesCur)
	}
}

func TestTryExtendLeft(t *testing.T) {
	p, st := newWritePlane()
	e := vc.MakeEpoch(0, 1)
	n := p.NewNode(0x100, 0x104, Init)
	n.W = e
	ext, ok := p.TryExtendLeft(0x104, 0x108, e, nil)
	if !ok || ext != n {
		t.Fatal("adjacent same-clock Init node must extend")
	}
	if n.Hi != 0x108 || n.Locs != 2 || !n.InitShared {
		t.Errorf("extended node: hi=%#x locs=%d shared=%v", n.Hi, n.Locs, n.InitShared)
	}
	if st.NodeAllocs != 1 {
		t.Errorf("extension must not allocate: allocs=%d", st.NodeAllocs)
	}
	// Mismatched clock must refuse.
	if _, ok := p.TryExtendLeft(0x108, 0x10c, vc.MakeEpoch(1, 1), nil); ok {
		t.Error("clock mismatch must refuse extension")
	}
	// Non-adjacent must refuse.
	if _, ok := p.TryExtendLeft(0x10c, 0x110, e, nil); ok {
		t.Error("gap must refuse extension")
	}
	// Block boundary must refuse.
	edge := p.NewNode(shadow.BlockSize-4, shadow.BlockSize, Init)
	edge.W = e
	if _, ok := p.TryExtendLeft(shadow.BlockSize, shadow.BlockSize+4, e, nil); ok {
		t.Error("extension must not cross an indexing block")
	}
}

func TestTryExtendLeftReadPlane(t *testing.T) {
	p, _ := newReadPlane()
	e := vc.MakeEpoch(2, 5)
	n := p.NewNode(0x100, 0x104, Init)
	n.R = fasttrack.Read{E: e}
	fresh := fasttrack.Read{E: e}
	if _, ok := p.TryExtendLeft(0x104, 0x108, 0, &fresh); !ok {
		t.Error("read plane extension with equal representation must work")
	}
	other := fasttrack.Read{E: vc.MakeEpoch(0, 5)}
	if _, ok := p.TryExtendLeft(0x108, 0x10c, 0, &other); ok {
		t.Error("different read representation must refuse")
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Init: "Init", Shared: "Shared", Private: "Private", Race: "Race",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

// Property: under arbitrary sequences of plane operations, the structural
// invariants hold: every set slot's node covers that slot's address, and
// the accounted node count equals the number of distinct live nodes.
func TestQuickPlaneInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		p, st := newWritePlane()
		clockOf := func(op uint16) vc.Epoch { return vc.MakeEpoch(vc.TID(op%2), vc.Clock(op%3+1)) }
		for _, op := range ops {
			lo := uint64(op % 200)
			hi := lo + uint64(op%7) + 1
			switch op % 5 {
			case 0, 1: // create + first-epoch share (only on fresh ranges,
				// the detector's actual precondition)
				free := true
				for a := lo; a < hi; a++ {
					if p.Tab.Get(a) != nil {
						free = false
						break
					}
				}
				if free {
					nn := p.NewNode(lo, hi, Init)
					nn.W = clockOf(op)
					p.TryFirstEpochShare(nn)
				}
			case 2: // split + decide
				if n := p.Tab.Get(lo); n != nil && n.Lo <= lo && n.Hi >= hi {
					c := p.Split(n, lo, hi)
					c.W = clockOf(op)
					p.DecideSecondEpoch(c)
				}
			case 3: // race
				if n := p.Tab.Get(lo); n != nil && n.Lo <= lo && n.Hi >= hi {
					p.SetRace(n, lo, hi)
				}
			case 4: // free
				p.DropRange(lo, hi)
			}
		}
		// Invariant 1: slot consistency.
		distinct := map[*Node]bool{}
		okAll := true
		p.Tab.ForRange(0, 256, func(addr uint64, n *Node) bool {
			distinct[n] = true
			if addr < n.Lo || addr >= n.Hi {
				okAll = false
				return false
			}
			return true
		})
		if !okAll {
			return false
		}
		// Invariant 2: node accounting matches live distinct nodes.
		return st.NodesCur == int64(len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
