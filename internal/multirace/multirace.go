// Package multirace implements a MultiRace-style combined detector
// (Pozniansky & Schuster, PPoPP 2003 — the paper's related work [19]):
// Eraser's LockSet algorithm runs as a cheap prefilter in front of DJIT+'s
// happens-before checks.
//
// The observation making the combination sound: while a location's
// candidate lock set C(v) is non-empty, every pair of accesses so far was
// protected by a common lock and is therefore happens-before ordered — no
// race is possible and the vector-clock comparison can be skipped. Only
// once C(v) empties (the locking discipline broke, which includes
// perfectly healthy fork/join- or barrier-synchronized code) does the
// happens-before check run, and only a confirmed happens-before violation
// is reported — LockSet's false alarms are filtered, exactly as the paper
// describes MultiRace doing.
//
// Clock bookkeeping still happens on every access (the history must be
// current when checking starts), so the savings are in comparisons, not
// updates.
package multirace

import (
	"repro/internal/event"
	"repro/internal/fasttrack"
	"repro/internal/lockset"
	"repro/internal/vc"
)

// Granule is the tracked location size.
const Granule = 4

// Race is one confirmed race.
type Race struct {
	Kind  fasttrack.RaceKind
	Addr  uint64
	Tid   vc.TID
	PC    event.PC
	Other vc.TID
}

// Options configure the detector.
type Options struct {
	// Suppress hides races from these modules (nil = libc+ld default).
	Suppress []event.Module
}

// loc is one location's combined state.
type loc struct {
	cand  int  // interned candidate lock set; -1 before the first access
	first bool // still owned by a single thread (Eraser's Exclusive)
	owner vc.TID

	w     vc.Epoch
	wPC   event.PC
	r     fasttrack.Read
	raced bool
}

// Detector is the combined detector; it implements event.Sink.
type Detector struct {
	th   *fasttrack.Threads
	in   *lockset.Interner
	held *lockset.Held
	locs map[uint64]*loc

	races    []Race
	suppress [8]bool

	// ChecksSkipped counts accesses whose happens-before comparison the
	// lockset prefilter proved unnecessary — the speedup MultiRace claims.
	ChecksSkipped uint64
	// ChecksRun counts accesses that needed the full comparison.
	ChecksRun uint64
}

// New returns a MultiRace-style detector.
func New(opt Options) *Detector {
	in := lockset.NewInterner()
	d := &Detector{
		th:   fasttrack.NewThreads(),
		in:   in,
		held: lockset.NewHeld(in),
		locs: make(map[uint64]*loc),
	}
	sup := opt.Suppress
	if sup == nil {
		sup = []event.Module{event.ModuleLibc, event.ModuleLd}
	}
	for _, m := range sup {
		d.suppress[m] = true
	}
	return d
}

// Races returns the confirmed races.
func (d *Detector) Races() []Race { return d.races }

func (d *Detector) loc(a uint64) *loc {
	l := d.locs[a]
	if l == nil {
		l = &loc{cand: -1, first: true, owner: vc.NoTID}
		d.locs[a] = l
	}
	return l
}

// disciplined refines C(v) for an access by tid and reports whether the
// happens-before check can be skipped soundly: either every access so far
// shared a common lock (mutual exclusion orders them all), or the location
// has only ever been touched by one thread (program order). Unlike
// Eraser's Exclusive state, refinement happens on *every* access — the
// single-thread shortcut must not leave C(v) stale, or an unlocked
// exclusive access could hide behind a lock the thread no longer holds.
func (d *Detector) disciplined(l *loc, tid vc.TID) bool {
	cur := d.held.Set(tid)
	if l.cand < 0 {
		l.cand = cur
		l.owner = tid
		return true
	}
	l.cand = d.in.Intersect(l.cand, cur)
	if tid != l.owner {
		l.first = false
	}
	if l.first {
		return true // still single-threaded: ordered by program order
	}
	return !d.in.IsEmpty(l.cand)
}

func (d *Detector) report(kind fasttrack.RaceKind, l *loc, a uint64, tid vc.TID, pc event.PC, other vc.TID) {
	if l.raced {
		return
	}
	l.raced = true
	if d.suppress[pc.Module()] || d.suppress[l.wPC.Module()] {
		return
	}
	d.races = append(d.races, Race{Kind: kind, Addr: a, Tid: tid, PC: pc, Other: other})
}

// Write processes a shared write per granule.
func (d *Detector) Write(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	if event.NonShared(addr) {
		return
	}
	tc := d.th.Clock(tid)
	e := d.th.Epoch(tid)
	for a := addr &^ (Granule - 1); a < addr+uint64(size); a += Granule {
		l := d.loc(a)
		if d.disciplined(l, tid) {
			d.ChecksSkipped++
		} else {
			d.ChecksRun++
			if kind, other := fasttrack.CheckWrite(l.w, &l.r, tc); kind != fasttrack.NoRace {
				d.report(kind, l, a, tid, pc, other)
			}
		}
		l.w = e
		l.wPC = pc
	}
}

// Read processes a shared read per granule.
func (d *Detector) Read(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	if event.NonShared(addr) {
		return
	}
	tc := d.th.Clock(tid)
	e := d.th.Epoch(tid)
	for a := addr &^ (Granule - 1); a < addr+uint64(size); a += Granule {
		l := d.loc(a)
		if d.disciplined(l, tid) {
			d.ChecksSkipped++
		} else {
			d.ChecksRun++
			if kind, other := fasttrack.CheckRead(l.w, tc); kind != fasttrack.NoRace {
				d.report(kind, l, a, tid, pc, other)
			}
		}
		l.r.Update(tid, e, tc)
	}
}

// Acquire, Release maintain both the clocks and the held locksets.
func (d *Detector) Acquire(tid vc.TID, l event.LockID) {
	d.th.Acquire(tid, l)
	d.held.Acquire(tid, l)
}

// Release publishes the thread clock and updates the held set.
func (d *Detector) Release(tid vc.TID, l event.LockID) {
	d.th.Release(tid, l)
	d.held.Release(tid, l)
}

// AcquireShared and ReleaseShared apply the rwlock read-side updates and
// count the read-held lock toward the candidate set.
func (d *Detector) AcquireShared(tid vc.TID, l event.LockID) {
	d.th.AcquireShared(tid, l)
	d.held.Acquire(tid, l)
}

func (d *Detector) ReleaseShared(tid vc.TID, l event.LockID) {
	d.th.ReleaseShared(tid, l)
	d.held.Release(tid, l)
}

// Fork, Join, BarrierArrive and BarrierDepart maintain the clocks.
func (d *Detector) Fork(p, c vc.TID) { d.th.Fork(p, c) }
func (d *Detector) Join(p, c vc.TID) { d.th.Join(p, c) }
func (d *Detector) BarrierArrive(t vc.TID, b event.BarrierID) {
	d.th.BarrierArrive(t, b)
}
func (d *Detector) BarrierDepart(t vc.TID, b event.BarrierID) {
	d.th.BarrierDepart(t, b)
}

// Malloc is a no-op.
func (d *Detector) Malloc(vc.TID, uint64, uint64) {}

// Free discards location state.
func (d *Detector) Free(_ vc.TID, addr uint64, size uint64) {
	for a := addr &^ (Granule - 1); a < addr+size; a += Granule {
		delete(d.locs, a)
	}
}
