package multirace

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/fasttrack"
	"repro/internal/progfuzz"
	"repro/internal/sim"
	"repro/internal/vc"
)

func TestDetectsUnorderedWrites(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x100, 4, 1)
	d.Write(1, 0x100, 4, 2)
	if len(d.Races()) != 1 || d.Races()[0].Kind != fasttrack.WriteWrite {
		t.Fatalf("races = %v", d.Races())
	}
}

// The defining MultiRace behaviour: LockSet's classic false alarm
// (fork/join ordering without locks) is filtered by the happens-before
// confirmation.
func TestFiltersLocksetFalseAlarms(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x200, 4, 1)
	d.Fork(0, 1)
	d.Write(1, 0x200, 4, 2) // lockset empty, but fork-ordered
	if len(d.Races()) != 0 {
		t.Errorf("HB-ordered access reported: %v", d.Races())
	}
	// The prefilter must have run the full check here, not skipped it.
	if d.ChecksRun == 0 {
		t.Error("suspicious access did not reach the happens-before check")
	}
}

// Disciplined locations skip the happens-before comparison entirely.
func TestDisciplinedLocationsSkipChecks(t *testing.T) {
	d := New(Options{})
	for i := 0; i < 10; i++ {
		tid := vc.TID(i % 2)
		d.Acquire(tid, 7)
		d.Write(tid, 0x300, 4, 1)
		d.Release(tid, 7)
	}
	if len(d.Races()) != 0 {
		t.Fatalf("disciplined accesses raced: %v", d.Races())
	}
	if d.ChecksRun != 0 {
		t.Errorf("%d checks ran on a disciplined location", d.ChecksRun)
	}
	if d.ChecksSkipped == 0 {
		t.Error("no checks were skipped")
	}
}

// The unsound-Exclusive pitfall: an owner's unlocked write during the
// "exclusive" phase must still be catchable when another thread races it.
func TestExclusivePhaseDoesNotHideRaces(t *testing.T) {
	d := New(Options{})
	d.Acquire(0, 1)
	d.Write(0, 0x400, 4, 1)
	d.Release(0, 1)
	d.Write(0, 0x400, 4, 1) // owner again, now without the lock
	d.Write(1, 0x400, 4, 2) // unordered other thread: a real race
	if len(d.Races()) != 1 {
		t.Errorf("exclusive-phase refinement hole: %v", d.Races())
	}
}

func TestFirstRacePerLocation(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x500, 4, 1)
	d.Write(1, 0x500, 4, 2)
	d.Write(0, 0x500, 4, 1)
	if len(d.Races()) != 1 {
		t.Errorf("races = %v", d.Races())
	}
}

func TestFreeResets(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x600, 4, 1)
	d.Free(0, 0x600, 4)
	d.Write(1, 0x600, 4, 2)
	if len(d.Races()) != 0 {
		t.Errorf("stale state raced: %v", d.Races())
	}
}

// Equivalence: on fuzzed programs, MultiRace's verdict per variable equals
// FastTrack's at byte granularity (the prefilter is sound and the filter
// is exact).
func TestEquivalentToFastTrackOnFuzzedPrograms(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog, _ := progfuzz.Generate(progfuzz.Config{
			Threads: 4, LockedVars: 5, PrivateVars: 2, RacyVars: 2,
			OpsPerThread: 250, Barriers: seed%2 == 0, Seed: seed,
		})
		mr := New(Options{})
		sim.Run(prog, mr, sim.Options{Seed: seed})
		mrVars := map[uint64]bool{}
		for _, r := range mr.Races() {
			mrVars[r.Addr&^(progfuzz.VarSpacing-1)] = true
		}
		ft := detector.New(detector.Config{Granularity: detector.Byte})
		sim.Run(prog, ft, sim.Options{Seed: seed})
		ftVars := map[uint64]bool{}
		for _, r := range ft.Races() {
			ftVars[r.Addr&^(progfuzz.VarSpacing-1)] = true
		}
		if len(mrVars) != len(ftVars) {
			t.Fatalf("seed %d: multirace %v vs fasttrack %v", seed, mrVars, ftVars)
		}
		for v := range ftVars {
			if !mrVars[v] {
				t.Errorf("seed %d: multirace missed %#x", seed, v)
			}
		}
		if mr.ChecksSkipped == 0 {
			t.Errorf("seed %d: prefilter never skipped", seed)
		}
	}
}
