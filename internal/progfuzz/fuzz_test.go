package progfuzz

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/djit"
	"repro/internal/hybrid"
	"repro/internal/segment"
	"repro/internal/sim"
)

// varBase maps a reported race address to its variable's base address.
func varBase(addr uint64) uint64 { return addr &^ (VarSpacing - 1) }

func raceFreeConfig(seed int64) Config {
	return Config{
		Threads:      4,
		LockedVars:   6,
		PrivateVars:  3,
		RacyVars:     0,
		OpsPerThread: 300,
		Barriers:     seed%2 == 0,
		Seed:         seed,
	}
}

func racyConfig(seed int64) Config {
	c := raceFreeConfig(seed)
	c.RacyVars = 3
	return c
}

// Every sound happens-before detector must stay silent on well-synchronized
// programs — including FastTrack with dynamic granularity, because the
// generated variables are spaced beyond the sharing neighbourhood.
func TestRaceFreeProgramsProduceNoReports(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		prog, _ := Generate(raceFreeConfig(seed))
		for _, g := range []detector.Granularity{detector.Byte, detector.Word, detector.Dynamic} {
			d := detector.New(detector.Config{Granularity: g})
			sim.Run(prog, d, sim.Options{Seed: seed})
			if len(d.Races()) != 0 {
				t.Fatalf("seed %d, %v granularity: false alarms %v", seed, g, d.Races())
			}
		}
		dj := djit.New(djit.Options{Granule: 4})
		sim.Run(prog, dj, sim.Options{Seed: seed})
		if len(dj.Races()) != 0 {
			t.Fatalf("seed %d: DJIT+ false alarms %v", seed, dj.Races())
		}
		sg := segment.New(segment.Options{})
		sim.Run(prog, sg, sim.Options{Seed: seed})
		if len(sg.Races()) != 0 {
			t.Fatalf("seed %d: segment false alarms %v", seed, sg.Races())
		}
		hy := hybrid.New(hybrid.Options{})
		sim.Run(prog, hy, sim.Options{Seed: seed})
		if len(hy.Races()) != 0 {
			t.Fatalf("seed %d: hybrid false alarms %v", seed, hy.Races())
		}
	}
}

// On racy programs, every report must land on a racy variable (no false
// positives) and the racy variables must be found (no blanket misses).
func TestRacyProgramsReportOnlyRacyVars(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		cfg := racyConfig(seed)
		prog, lay := Generate(cfg)
		racy := map[uint64]bool{}
		for _, a := range lay.RacyAddrs {
			racy[a] = true
		}
		for _, g := range []detector.Granularity{detector.Byte, detector.Dynamic} {
			d := detector.New(detector.Config{Granularity: g})
			sim.Run(prog, d, sim.Options{Seed: seed})
			found := map[uint64]bool{}
			for _, r := range d.Races() {
				if !racy[varBase(r.Addr)] {
					t.Fatalf("seed %d, %v: report at non-racy address %#x", seed, g, r.Addr)
				}
				found[varBase(r.Addr)] = true
			}
			if len(found) == 0 {
				t.Fatalf("seed %d, %v: no racy variable detected", seed, g)
			}
		}
	}
}

// FastTrack (byte granularity) and DJIT+ are precision-equivalent: they
// flag exactly the same variables on any execution.
func TestFastTrackEquivalentToDJIT(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		prog, _ := Generate(racyConfig(seed))

		ft := detector.New(detector.Config{Granularity: detector.Byte})
		sim.Run(prog, ft, sim.Options{Seed: seed})
		ftVars := map[uint64]bool{}
		for _, r := range ft.Races() {
			ftVars[varBase(r.Addr)] = true
		}

		dj := djit.New(djit.Options{Granule: 4})
		sim.Run(prog, dj, sim.Options{Seed: seed})
		djVars := map[uint64]bool{}
		for _, r := range dj.Races() {
			djVars[varBase(r.Addr)] = true
		}

		for v := range ftVars {
			if !djVars[v] {
				t.Errorf("seed %d: FastTrack flagged %#x, DJIT+ did not", seed, v)
			}
		}
		for v := range djVars {
			if !ftVars[v] {
				t.Errorf("seed %d: DJIT+ flagged %#x, FastTrack did not", seed, v)
			}
		}
	}
}

// With spaced variables, dynamic granularity cannot share clocks across
// variables, so its verdicts per variable equal byte granularity's.
func TestDynamicEquivalentToByteOnSpacedVars(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		prog, _ := Generate(racyConfig(seed))
		vars := func(g detector.Granularity) map[uint64]bool {
			d := detector.New(detector.Config{Granularity: g})
			sim.Run(prog, d, sim.Options{Seed: seed})
			m := map[uint64]bool{}
			for _, r := range d.Races() {
				m[varBase(r.Addr)] = true
			}
			return m
		}
		byteVars, dynVars := vars(detector.Byte), vars(detector.Dynamic)
		if len(byteVars) != len(dynVars) {
			t.Fatalf("seed %d: byte %v vs dynamic %v", seed, byteVars, dynVars)
		}
		for v := range byteVars {
			if !dynVars[v] {
				t.Fatalf("seed %d: dynamic missed %#x", seed, v)
			}
		}
	}
}

// The segment detector is also happens-before based: its reports must be a
// subset of the racy variables (bounded history may cause misses, never
// inventions).
func TestSegmentSubsetOfRacyVars(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		prog, lay := Generate(racyConfig(seed))
		racy := map[uint64]bool{}
		for _, a := range lay.RacyAddrs {
			racy[a] = true
		}
		sg := segment.New(segment.Options{})
		sim.Run(prog, sg, sim.Options{Seed: seed})
		for _, r := range sg.Races() {
			if !racy[varBase(r.Addr)] {
				t.Fatalf("seed %d: segment report at non-racy %#x", seed, r.Addr)
			}
		}
	}
}
