// Package progfuzz generates random multithreaded programs for
// cross-detector property testing. Programs are built from shared
// variables with declared protection policies:
//
//   - locked variables are always accessed under their dedicated mutex;
//   - private variables are only touched by one thread;
//   - racy variables are accessed by several threads with no protection.
//
// A program generated with RaceFree=true is well-synchronized by
// construction, so every sound happens-before detector must report nothing
// on it; programs with racy variables must produce reports covering those
// variables. Variables are spaced so that no two live in the same
// dynamic-granularity sharing neighbourhood, which makes byte and dynamic
// granularity exactly equivalent on generated programs — the property the
// equivalence tests rely on.
package progfuzz

import (
	"math/rand"

	"repro/internal/event"
	"repro/internal/sim"
)

// Config shapes a generated program.
type Config struct {
	// Threads is the number of worker threads (≥ 1).
	Threads int
	// LockedVars, PrivateVars and RacyVars count the variables of each
	// protection policy.
	LockedVars, PrivateVars, RacyVars int
	// OpsPerThread is the number of accesses each worker performs.
	OpsPerThread int
	// Barriers inserts barrier phases between chunks of work.
	Barriers bool
	// Seed drives generation (independent of the engine's schedule seed).
	Seed int64
}

// VarSpacing separates generated variables so no two can ever share a
// dynamic-granularity clock node (the first-epoch neighbour search spans 8
// bytes; 16 is safely beyond it for 8-byte variables).
const VarSpacing = 32

// Layout describes the generated program's variables for assertions.
type Layout struct {
	// LockedAddrs, PrivateAddrs, RacyAddrs are the base addresses.
	LockedAddrs, PrivateAddrs, RacyAddrs []uint64
}

// base address of the variable area (away from the engine heap).
const base = 0x4000

// Generate builds a random program under cfg and returns it with the
// variable layout.
func Generate(cfg Config) (sim.Program, Layout) {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	var lay Layout
	addr := uint64(base)
	take := func() uint64 {
		a := addr
		addr += VarSpacing
		return a
	}
	for i := 0; i < cfg.LockedVars; i++ {
		lay.LockedAddrs = append(lay.LockedAddrs, take())
	}
	for i := 0; i < cfg.PrivateVars*cfg.Threads; i++ {
		lay.PrivateAddrs = append(lay.PrivateAddrs, take())
	}
	for i := 0; i < cfg.RacyVars; i++ {
		lay.RacyAddrs = append(lay.RacyAddrs, take())
	}

	prog := sim.Program{Name: "fuzz", Main: func(m *sim.Thread) {
		locks := make([]event.LockID, cfg.LockedVars)
		for i := range locks {
			locks[i] = m.NewLock()
		}
		var bar event.BarrierID
		if cfg.Barriers {
			bar = m.NewBarrier(cfg.Threads)
		}

		var hs []*sim.Thread
		for w := 0; w < cfg.Threads; w++ {
			w := w
			hs = append(hs, m.Go(func(t *sim.Thread) {
				rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(w)))
				phase := cfg.OpsPerThread
				if cfg.Barriers {
					phase = cfg.OpsPerThread/4 + 1
				}
				for op := 0; op < cfg.OpsPerThread; op++ {
					if cfg.Barriers && op > 0 && op%phase == 0 {
						t.Barrier(bar)
					}
					t.At(uint32(1000 + w))
					size := uint32(4 << (rng.Intn(2))) // 4 or 8 bytes
					switch pick := rng.Intn(10); {
					case pick < 5 && cfg.LockedVars > 0:
						i := rng.Intn(cfg.LockedVars)
						t.Lock(locks[i])
						if rng.Intn(2) == 0 {
							t.Read(lay.LockedAddrs[i], size)
						}
						t.Write(lay.LockedAddrs[i], size)
						t.Unlock(locks[i])
					case pick < 8 && cfg.PrivateVars > 0:
						i := w*cfg.PrivateVars + rng.Intn(cfg.PrivateVars)
						a := lay.PrivateAddrs[i]
						t.Read(a, size)
						t.Write(a, size)
					case cfg.RacyVars > 0:
						i := rng.Intn(cfg.RacyVars)
						if rng.Intn(2) == 0 {
							t.Read(lay.RacyAddrs[i], size)
						} else {
							t.Write(lay.RacyAddrs[i], size)
						}
					default:
						if cfg.LockedVars > 0 {
							i := rng.Intn(cfg.LockedVars)
							t.Lock(locks[i])
							t.Read(lay.LockedAddrs[i], size)
							t.Unlock(locks[i])
						}
					}
				}
				if cfg.Barriers {
					// Every worker executes the same op indices, so all
					// reach the same number of in-loop barriers; one final
					// barrier keeps the counts aligned at exit.
					t.Barrier(bar)
				}
			}))
		}
		for _, h := range hs {
			m.Join(h)
		}
	}}
	return prog, lay
}
