// Exporters: Prometheus text exposition, an expvar-style JSON document,
// and an http.Handler bundling /metrics, /debug/vars and /debug/pprof —
// the on-demand introspection endpoint behind `racedetect -metrics-addr`
// and the racedetectd sidecar.
package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// formatValue renders a sample value the way Prometheus clients do
// (shortest representation; integers print without a decimal point).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4). Series of one family are grouped
// under a single HELP/TYPE header; histograms expand to cumulative
// _bucket/_sum/_count samples with power-of-two le bounds. Nil-safe (a
// nil registry writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) {
	var lastName string
	for _, m := range r.snapshotAll() {
		if m.Name != lastName {
			if m.Help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", m.Name, strings.ReplaceAll(m.Help, "\n", " "))
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind)
			lastName = m.Name
		}
		labels := renderLabels(sortedPairs(m.Labels))
		if m.Hist == nil {
			fmt.Fprintf(w, "%s%s %s\n", m.Name, labels, formatValue(m.Value))
			continue
		}
		writePrometheusHistogram(w, m.Name, m.Labels, *m.Hist)
	}
}

func sortedPairs(l Labels) []labelPair {
	pairs := make([]labelPair, 0, len(l))
	for k, v := range l {
		pairs = append(pairs, labelPair{k, v})
	}
	sortPairs(pairs)
	return pairs
}

// writePrometheusHistogram expands one histogram series into cumulative
// buckets. Empty tail buckets are elided; le="+Inf" always equals _count.
func writePrometheusHistogram(w io.Writer, name string, l Labels, s HistogramSnapshot) {
	top := 0
	for i, n := range s.Buckets {
		if n > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		pairs := sortedPairs(l)
		pairs = append(pairs, labelPair{"le", strconv.FormatUint(BucketBound(i), 10)})
		sortPairs(pairs)
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(pairs), cum)
	}
	pairs := sortedPairs(l)
	pairs = append(pairs, labelPair{"le", "+Inf"})
	sortPairs(pairs)
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(pairs), s.Count)
	labels := renderLabels(sortedPairs(l))
	fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}

// jsonHistogram is the JSON rendering of one histogram series.
type jsonHistogram struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
	// Buckets maps each non-empty bucket's inclusive upper bound to its
	// (non-cumulative) count.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// JSONSnapshot returns the expvar-style document: a flat map from series
// key ("name" or `name{k="v"}`) to value (number, or histogram object).
// Nil-safe (returns an empty map).
func (r *Registry) JSONSnapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.snapshotAll() {
		key := m.Name + renderLabels(sortedPairs(m.Labels))
		if m.Hist == nil {
			out[key] = m.Value
			continue
		}
		s := *m.Hist
		jh := jsonHistogram{
			Count: s.Count, Sum: s.Sum, Mean: s.Mean(),
			P50: s.Quantile(0.50), P99: s.Quantile(0.99), Max: s.Quantile(1),
			Buckets: map[string]uint64{},
		}
		for i, n := range s.Buckets {
			if n > 0 {
				jh.Buckets[strconv.FormatUint(BucketBound(i), 10)] = n
			}
		}
		out[key] = jh
	}
	return out
}

// WriteJSON writes the expvar-style JSON document (keys sorted, indented).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.JSONSnapshot())
}

// Publish exposes the registry under name in the process-global expvar
// namespace (visible on any /debug/vars endpoint in the process).
// Publishing the same name twice is a no-op — expvar itself panics on
// duplicates, so this wrapper checks first. Nil-safe.
func (r *Registry) Publish(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.JSONSnapshot() }))
}

// Handler returns the introspection endpoint for this registry:
//
//	/metrics        Prometheus text exposition
//	/debug/vars     expvar-style JSON (also at /vars)
//	/debug/pprof/*  the standard Go profiling handlers
//	/               plain-text index of the above
//
// Safe on a nil registry (the metric pages are empty; pprof still works).
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	vars := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	}
	mux.HandleFunc("/debug/vars", vars)
	mux.HandleFunc("/vars", vars)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "telemetry endpoints:")
		for _, p := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
			fmt.Fprintln(w, "  "+p)
		}
	})
	return mux
}

// Names returns the sorted distinct family names currently registered —
// handy for docs and introspection tests.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	seen := map[string]bool{}
	var names []string
	c := r.core
	c.mu.Lock()
	for _, m := range c.ordered {
		if !seen[m.name] {
			seen[m.name] = true
			names = append(names, m.name)
		}
	}
	c.mu.Unlock()
	sort.Strings(names)
	return names
}
