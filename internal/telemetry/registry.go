// Metric registry: named instruments with label sets, shared between the
// code being instrumented (which registers and updates instruments) and
// the exporters (which walk a snapshot). Registration is idempotent — the
// same (name, labels) returns the same instrument — so components can be
// constructed repeatedly (per shard, per session) against one registry.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a registered metric.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindGaugeFunc
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindGaugeFunc:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Labels is one metric's label set (e.g. {"shard": "3"}).
type Labels map[string]string

type labelPair struct{ k, v string }

// metric is one registered instrument.
type metric struct {
	name   string
	help   string
	kind   Kind
	labels []labelPair // sorted by key
	key    string      // name + rendered labels (registry map key)

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// core is the shared state behind one or more Registry views.
type core struct {
	mu      sync.Mutex
	ordered []*metric
	byKey   map[string]*metric
}

// Registry is a view onto a metric store, optionally carrying base labels
// that are attached to every registration made through it (see With). A
// nil *Registry is the disabled registry: every constructor returns nil
// and every export is empty.
type Registry struct {
	core *core
	base []labelPair
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{core: &core{byKey: make(map[string]*metric)}}
}

// With returns a view of the same registry that adds l to the labels of
// every metric registered through it. Base labels compose: r.With(a).With(b)
// carries both. Nil-safe.
func (r *Registry) With(l Labels) *Registry {
	if r == nil {
		return nil
	}
	base := append([]labelPair(nil), r.base...)
	for k, v := range l {
		base = append(base, labelPair{k, v})
	}
	sortPairs(base)
	return &Registry{core: r.core, base: base}
}

func sortPairs(p []labelPair) {
	sort.Slice(p, func(i, j int) bool { return p[i].k < p[j].k })
}

// mergedLabels combines the view's base labels with extra (extra wins on
// key collision), sorted by key.
func (r *Registry) mergedLabels(extra []Labels) []labelPair {
	out := append([]labelPair(nil), r.base...)
	for _, l := range extra {
		for k, v := range l {
			replaced := false
			for i := range out {
				if out[i].k == k {
					out[i].v = v
					replaced = true
					break
				}
			}
			if !replaced {
				out = append(out, labelPair{k, v})
			}
		}
	}
	sortPairs(out)
	return out
}

// renderLabels renders a sorted label set in Prometheus form:
// {k1="v1",k2="v2"} — or "" when empty.
func renderLabels(pairs []labelPair) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register returns the existing metric for (name, labels) or installs m.
func (r *Registry) register(name, help string, kind Kind, extra []Labels, build func(*metric)) *metric {
	pairs := r.mergedLabels(extra)
	key := name + renderLabels(pairs)
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %v (was %v)", key, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: pairs, key: key}
	build(m)
	c.byKey[key] = m
	c.ordered = append(c.ordered, m)
	return m
}

// Counter registers (or retrieves) a counter. Nil-safe: a nil registry
// returns a nil counter, whose methods are no-ops.
func (r *Registry) Counter(name, help string, labels ...Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindCounter, labels, func(m *metric) {
		m.counter = &Counter{}
	}).counter
}

// Gauge registers (or retrieves) a gauge. Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindGauge, labels, func(m *metric) {
		m.gauge = &Gauge{}
	}).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at export
// time — zero hot-path cost for values derivable on demand (queue depths,
// uptimes, ratios). fn must be safe to call concurrently. Nil-safe.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Labels) {
	if r == nil {
		return
	}
	r.register(name, help, KindGaugeFunc, labels, func(m *metric) { m.fn = fn })
}

// Histogram registers (or retrieves) a power-of-two-bucket histogram.
// Nil-safe.
func (r *Registry) Histogram(name, help string, labels ...Labels) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindHistogram, labels, func(m *metric) {
		m.hist = &Histogram{}
	}).hist
}

// Metric is the exported view of one registered instrument, as captured
// by Each / Export.
type Metric struct {
	Name   string
	Help   string
	Kind   Kind
	Labels Labels
	// Value carries the current value for counters, gauges and gauge
	// funcs. Histograms use Hist instead.
	Value float64
	// Hist is the histogram snapshot (histograms only).
	Hist *HistogramSnapshot
}

// snapshotLocked captures m's current value. Caller holds core.mu (the
// instruments themselves are atomic; the lock only pins the metric list).
func (m *metric) snapshot() Metric {
	out := Metric{Name: m.name, Help: m.help, Kind: m.kind, Labels: Labels{}}
	for _, p := range m.labels {
		out.Labels[p.k] = p.v
	}
	switch m.kind {
	case KindCounter:
		out.Value = float64(m.counter.Load())
	case KindGauge:
		out.Value = float64(m.gauge.Load())
	case KindGaugeFunc:
		out.Value = m.fn()
	case KindHistogram:
		s := m.hist.Snapshot()
		out.Hist = &s
	}
	return out
}

// Each calls f once per registered metric with a point-in-time snapshot,
// in registration order grouped by name (all series of one name appear
// consecutively, matching the Prometheus exposition requirement).
// Nil-safe.
func (r *Registry) Each(f func(Metric)) {
	for _, m := range r.snapshotAll() {
		f(m)
	}
}

// snapshotAll captures every metric, grouped by name in first-registration
// order of the name, then by series registration order within the name.
func (r *Registry) snapshotAll() []Metric {
	if r == nil {
		return nil
	}
	c := r.core
	c.mu.Lock()
	ordered := make([]*metric, len(c.ordered))
	copy(ordered, c.ordered)
	c.mu.Unlock()

	nameRank := make(map[string]int)
	for _, m := range ordered {
		if _, ok := nameRank[m.name]; !ok {
			nameRank[m.name] = len(nameRank)
		}
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		return nameRank[ordered[i].name] < nameRank[ordered[j].name]
	})
	out := make([]Metric, 0, len(ordered))
	for _, m := range ordered {
		out = append(out, m.snapshot())
	}
	return out
}

// CounterValue returns the summed value of every counter series named
// name (0 when absent or the registry is nil). The sum-across-labels
// semantics make the helper usable for per-shard and per-session families.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	var total uint64
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.ordered {
		if m.name == name && m.kind == KindCounter {
			total += m.counter.Load()
		}
	}
	return total
}

// GaugeValue returns the summed value of every gauge (or gauge-func)
// series named name.
func (r *Registry) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	var total float64
	c := r.core
	c.mu.Lock()
	series := make([]*metric, 0, 4)
	for _, m := range c.ordered {
		if m.name == name && (m.kind == KindGauge || m.kind == KindGaugeFunc) {
			series = append(series, m)
		}
	}
	c.mu.Unlock() // gauge funcs may take other locks; call them outside ours
	for _, m := range series {
		if m.kind == KindGauge {
			total += float64(m.gauge.Load())
		} else {
			total += m.fn()
		}
	}
	return total
}

// HistogramValue returns the snapshot of the histogram series named name
// with exactly the given labels merged over the view's base labels
// (zero-value snapshot when absent).
func (r *Registry) HistogramValue(name string, labels ...Labels) HistogramSnapshot {
	if r == nil {
		return HistogramSnapshot{}
	}
	key := name + renderLabels(r.mergedLabels(labels))
	c := r.core
	c.mu.Lock()
	m, ok := c.byKey[key]
	c.mu.Unlock()
	if !ok || m.kind != KindHistogram {
		return HistogramSnapshot{}
	}
	return m.hist.Snapshot()
}

// Prune removes every metric for which keep returns false — the
// cardinality valve for per-session label sets: when a session ends, its
// series are dropped so a long-lived server's exposition stays bounded.
// Nil-safe.
func (r *Registry) Prune(keep func(name string, labels Labels) bool) {
	if r == nil {
		return
	}
	// The valve is itself observable: every removed series increments
	// telemetry_pruned_series_total. The counter must be registered before
	// taking the core lock (registration locks it too), and bumped after
	// releasing it (the counter itself may have just been pruned and the
	// next call would re-register under the same lock).
	dropped := r.Counter("telemetry_pruned_series_total",
		"Metric series removed by Registry.Prune (the cardinality valve).")
	c := r.core
	c.mu.Lock()
	var removed uint64
	kept := c.ordered[:0]
	for _, m := range c.ordered {
		l := Labels{}
		for _, p := range m.labels {
			l[p.k] = p.v
		}
		if keep(m.name, l) {
			kept = append(kept, m)
		} else {
			delete(c.byKey, m.key)
			removed++
		}
	}
	c.ordered = kept
	c.mu.Unlock()
	dropped.Add(removed)
}
