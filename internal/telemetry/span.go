// Distributed spans: trace-scoped records that link one logical unit of
// work (an event batch) across processes — client encode/ack, server
// dispatch, pipeline shard apply, cluster merge. Unlike the phase spans of
// tracer.go (which are anonymous intervals on one process's timeline),
// a SpanRecord carries explicit trace/span/parent IDs, so span lists from
// several processes can be joined into one cross-process tree by
// `racectl spans`. Records are held by the same Tracer and mirrored into
// its Chrome trace_event stream, so a single -trace-out file shows both.
//
// IDs are 64-bit and minted with a splitmix64 sequence seeded from the
// process start time: unique within a fleet for any realistic run length,
// with zero reserved as "no ID" (absent-means-untraced, the same interop
// convention the wire codec negotiation uses).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// SpanRecord is one node of a cross-process span tree.
type SpanRecord struct {
	// Trace groups every span of one traced unit of work (one sampled
	// event batch, end to end). Zero means untraced.
	Trace uint64 `json:"trace"`
	// Span identifies this record within the trace.
	Span uint64 `json:"span"`
	// Parent is the span this one was caused by (0 for the root).
	Parent uint64 `json:"parent,omitempty"`
	// Name is the operation ("batch", "server.dispatch", "shard.apply", …).
	Name string `json:"name"`
	// Process names the recording process ("client", "racedetectd",
	// "cluster"), distinguishing rows when span files are joined.
	Process string `json:"process,omitempty"`
	// Start is the span's wall-clock start in Unix nanoseconds — absolute,
	// not tracer-relative, so spans from different processes order.
	Start int64 `json:"start_unix_ns"`
	// Dur is the span's duration in nanoseconds.
	Dur int64 `json:"dur_ns"`
	// Args carries span-scoped details (events, bytes, shard, session …).
	Args map[string]any `json:"args,omitempty"`
}

// SpanFile is the top-level JSON document WriteSpansJSON emits and
// `racectl spans` reads.
type SpanFile struct {
	Spans []SpanRecord `json:"spans"`
}

// traceState seeds the ID sequence from process start so concurrently
// started processes mint disjoint sequences with overwhelming probability.
var (
	traceSeed = uint64(time.Now().UnixNano())
	traceCtr  atomic.Uint64
)

// mix64 is the splitmix64 finalizer — the same mixer the cluster ring uses
// for hash slots.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTraceID mints a fleet-unique non-zero 64-bit ID, usable as either a
// trace or a span ID.
func NewTraceID() uint64 {
	id := mix64(traceSeed + traceCtr.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// Sampled reports whether the unit keyed by key falls inside the sampling
// rate (0 = never, 1 = always). The decision is a deterministic hash of
// key, so re-sent frames and replayed streams sample identically.
func Sampled(key uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return float64(mix64(key))/float64(math.MaxUint64) < rate
}

// RecordSpan appends one span record and mirrors it into the Chrome event
// stream (args carry the IDs in hex). Start defaults to now−Dur when zero.
// Nil-safe and safe for concurrent use.
func (t *Tracer) RecordSpan(rec SpanRecord) {
	if t == nil {
		return
	}
	if rec.Start == 0 {
		rec.Start = time.Now().UnixNano() - rec.Dur
	}
	args := map[string]any{
		"trace": fmt.Sprintf("%016x", rec.Trace),
		"span":  fmt.Sprintf("%016x", rec.Span),
	}
	if rec.Parent != 0 {
		args["parent"] = fmt.Sprintf("%016x", rec.Parent)
	}
	if rec.Process != "" {
		args["process"] = rec.Process
	}
	for k, v := range rec.Args {
		args[k] = v
	}
	t.mu.Lock()
	t.appendSpanLocked(rec)
	t.appendEventLocked(TraceEvent{
		Name: rec.Name, Ph: "X",
		Ts:  (rec.Start - t.start.UnixNano()) / 1e3,
		Dur: rec.Dur / 1e3,
		Pid: 1, Tid: 1,
		Args: args,
	})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded span records in recording order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// WriteSpansJSON writes the JSON span sink document ({"spans": [...]}).
// Nil-safe (writes an empty, still-valid document).
func (t *Tracer) WriteSpansJSON(w io.Writer) error {
	f := SpanFile{Spans: t.Spans()}
	if f.Spans == nil {
		f.Spans = []SpanRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}
