// Package telemetry is the zero-dependency instrumentation core of the
// reproduction: lock-free counters and gauges, power-of-two-bucket
// histograms, a named-metric registry with Prometheus text / JSON / expvar
// export, and a phase tracer that emits Chrome trace_event JSON.
//
// The package is built for hot paths. Every instrument is updated with a
// single atomic operation, and every instrument method is safe on a nil
// receiver (a no-op), so instrumented code points carry exactly one
// predictable branch when telemetry is disabled:
//
//	reg := telemetry.New()            // or nil to disable
//	hits := reg.Counter("hits_total", "Cache hits.")
//	...
//	hits.Inc()                        // atomic add, or no-op when reg == nil
//
// A nil *Registry returns nil instruments from every constructor, and nil
// instruments ignore updates — callers never need a second code path for
// the disabled case. The overhead budget is pinned by
// BenchmarkTelemetryOverhead at the repository root: a nil registry must
// keep the detection pipeline within a few percent of its uninstrumented
// throughput.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 metric. The zero value is
// ready to use; all methods are safe on a nil receiver and safe for
// concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 for a nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 metric. The zero value is ready to use;
// all methods are safe on a nil receiver and safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the value by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of histogram buckets: one per possible
// bit-length of a uint64 value (0..64). Bucket i counts observations v
// with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i, so bucket upper bounds
// are 2^i - 1; bucket 0 holds exactly the zero observations. The layout
// covers the full uint64 range — Observe(0) and Observe(math.MaxUint64)
// both land in real buckets.
const histBuckets = 65

// Histogram is a fixed-shape power-of-two-bucket histogram for latency
// and size distributions. Observations cost one atomic add per bucket and
// one for the running sum; there is no locking and no allocation. The
// zero value is ready to use; all methods are safe on a nil receiver.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64 // wraps modulo 2^64 on extreme inputs, by design
	// exemplars holds the most recent trace ID observed per bucket (see
	// ObserveTraced): the link from a latency bucket — in particular a
	// tail bucket — to one concrete distributed span tree that landed
	// there. Zero means the bucket has no exemplar.
	exemplars [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
}

// ObserveTraced records one value and, when trace is non-zero, stamps it
// as the bucket's exemplar — so a p99 spike in the snapshot names the
// trace ID of a batch that actually took that long. Costs one extra
// atomic store over Observe only for traced observations.
func (h *Histogram) ObserveTraced(v, trace uint64) {
	if h == nil {
		return
	}
	i := bits.Len64(v)
	h.buckets[i].Add(1)
	h.sum.Add(v)
	if trace != 0 {
		h.exemplars[i].Store(trace)
	}
}

// ObserveSince records the elapsed nanoseconds since start — the idiomatic
// latency observation:
//
//	t := time.Now()
//	... work ...
//	hist.ObserveSince(t)
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return // skip the time.Now() call entirely when disabled
	}
	d := time.Since(start)
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// HistogramSnapshot is a consistent-enough point-in-time view of a
// histogram (buckets are loaded individually; a scrape racing observations
// may be off by in-flight updates, never torn).
type HistogramSnapshot struct {
	Count   uint64              // total observations
	Sum     uint64              // sum of observed values (may wrap)
	Buckets [histBuckets]uint64 // per-bucket counts; see BucketBound
	// Exemplars carries each bucket's most recent trace ID (0 = none).
	Exemplars [histBuckets]uint64
}

// BucketBound returns the inclusive upper bound of bucket i
// (2^i - 1; bucket 0 is exactly 0, the last bucket is math.MaxUint64).
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Snapshot returns the current bucket counts (zero value for nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
		s.Exemplars[i] = h.exemplars[i].Load()
	}
	s.Sum = h.sum.Load()
	return s
}

// TailExemplar returns the trace ID stamped on the highest non-empty
// bucket that has one — the exemplar for the distribution's tail — or 0.
func (s HistogramSnapshot) TailExemplar() uint64 {
	for i := histBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] > 0 && s.Exemplars[i] != 0 {
			return s.Exemplars[i]
		}
	}
	return 0
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of the
// observed values: the bucket bound below which at least q of the
// observations fall. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Upper-rank selection: rank floor(q·count)+1, clamped to count. For
	// an even count's median this picks the upper of the two middle
	// observations, matching the histogram's "value ≤ bound" semantics.
	rank := uint64(math.Floor(q*float64(s.Count))) + 1
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(histBuckets - 1)
}

// Mean returns the mean observed value (0 when empty). The mean is exact
// unless the internal sum wrapped.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
