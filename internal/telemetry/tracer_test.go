package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTracerNil: every tracer method must be a no-op on nil.
func TestTracerNil(t *testing.T) {
	var tr *Tracer
	end := tr.Span("phase")
	end()
	tr.Instant("marker", nil)
	tr.CounterSample("c", map[string]any{"v": 1})
	if ev := tr.Events(); ev != nil {
		t.Fatalf("nil tracer recorded %d events", len(ev))
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var f TraceFile
	if err := json.Unmarshal([]byte(sb.String()), &f); err != nil {
		t.Fatalf("nil tracer wrote invalid JSON: %v", err)
	}
	if len(f.TraceEvents) != 0 {
		t.Fatalf("nil tracer JSON has %d events", len(f.TraceEvents))
	}
}

// TestTracerJSONRoundTrip pins the Chrome trace_event well-formedness:
// the emitted document must parse back with encoding/json and carry the
// recorded spans with sane phase codes, ordering and durations.
func TestTracerJSONRoundTrip(t *testing.T) {
	tr := NewTracer()
	end := tr.Span("execute", map[string]any{"workload": "ferret"})
	time.Sleep(2 * time.Millisecond)
	inner := tr.Span("drain")
	inner()
	end()
	tr.Instant("report-ready", nil)
	tr.CounterSample("progress", map[string]any{"events": 128})

	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var f TraceFile
	if err := json.Unmarshal([]byte(sb.String()), &f); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, sb.String())
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(f.TraceEvents))
	}
	byName := map[string]TraceEvent{}
	for _, ev := range f.TraceEvents {
		byName[ev.Name] = ev
		if ev.Pid != 1 || ev.Tid != 1 {
			t.Errorf("event %s pid/tid = %d/%d", ev.Name, ev.Pid, ev.Tid)
		}
	}
	ex := byName["execute"]
	if ex.Ph != "X" || ex.Dur <= 0 {
		t.Fatalf("execute span malformed: %+v", ex)
	}
	if ex.Args["workload"] != "ferret" {
		t.Fatalf("span args lost: %+v", ex.Args)
	}
	dr := byName["drain"]
	if dr.Ts < ex.Ts || dr.Dur > ex.Dur {
		t.Fatalf("nested span not inside parent: parent %+v child %+v", ex, dr)
	}
	if byName["report-ready"].Ph != "i" {
		t.Fatalf("instant ph = %q", byName["report-ready"].Ph)
	}
	if byName["progress"].Ph != "C" {
		t.Fatalf("counter ph = %q", byName["progress"].Ph)
	}
}

// TestTracerConcurrent records spans from several goroutines (run under
// -race to pin the locking).
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tr.Span("s")()
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Events()); n != 400 {
		t.Fatalf("recorded %d events, want 400", n)
	}
}
