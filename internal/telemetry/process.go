// Process-level metrics: build identity, uptime and goroutine count —
// the fleet-operations basics every long-lived detector process (and any
// instrumented run) should expose alongside its domain metrics.
package telemetry

import (
	"runtime"
	"runtime/debug"
	"time"
)

// BuildVersion reports the binary's module version from the embedded
// build info, or "devel" for a plain `go build` of a dirty tree.
func BuildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// RegisterProcessMetrics installs the process instrument family on r:
//
//	detector_build_info{version,go_version}  constant 1 (identity by labels)
//	process_uptime_seconds                   seconds since registration
//	process_goroutines                       live goroutines (export-time)
//
// Registration is idempotent (the registry dedupes by name+labels), so
// calling it from several components against one registry is safe.
// Nil-safe.
func RegisterProcessMetrics(r *Registry) {
	if r == nil {
		return
	}
	start := time.Now()
	r.Gauge("detector_build_info",
		"Build identity: constant 1, with the module and Go versions as labels.",
		Labels{"version": BuildVersion(), "go_version": runtime.Version()}).Set(1)
	r.GaugeFunc("process_uptime_seconds",
		"Seconds since this process registered its metrics.",
		func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc("process_goroutines",
		"Goroutines live in this process, sampled at export time.",
		func() float64 { return float64(runtime.NumGoroutine()) })
}
