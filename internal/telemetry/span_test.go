package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestNewTraceID pins the ID contract: non-zero always, and no collision
// across a realistic burst.
func TestNewTraceID(t *testing.T) {
	seen := make(map[uint64]bool, 10000)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("NewTraceID returned the reserved zero ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %#x after %d mints", id, i)
		}
		seen[id] = true
	}
}

// TestSampled pins the deterministic sampler: same key → same decision,
// rate 0 never samples, rate 1 always does, and a mid rate lands roughly
// where it should over many keys.
func TestSampled(t *testing.T) {
	for key := uint64(1); key < 100; key++ {
		if Sampled(key, 0) {
			t.Fatalf("key %d sampled at rate 0", key)
		}
		if !Sampled(key, 1) {
			t.Fatalf("key %d not sampled at rate 1", key)
		}
		if Sampled(key, 0.5) != Sampled(key, 0.5) {
			t.Fatalf("key %d: non-deterministic decision", key)
		}
	}
	hits := 0
	const n = 10000
	for key := uint64(0); key < n; key++ {
		if Sampled(key, 0.25) {
			hits++
		}
	}
	if hits < n/25/2 || hits > n/2 {
		t.Fatalf("rate 0.25 sampled %d of %d keys", hits, n)
	}
}

// TestRecordSpanRoundTrip checks a recorded span survives the JSON span
// sink and is mirrored into the Chrome event stream.
func TestRecordSpanRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.RecordSpan(SpanRecord{
		Trace: 0xabc, Span: 0xdef, Parent: 0x123,
		Name: "server.dispatch", Process: "racedetectd",
		Dur:  1500,
		Args: map[string]any{"session": 7},
	})
	var buf bytes.Buffer
	if err := tr.WriteSpansJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f SpanFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("span sink is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(f.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(f.Spans))
	}
	s := f.Spans[0]
	if s.Trace != 0xabc || s.Span != 0xdef || s.Parent != 0x123 || s.Name != "server.dispatch" {
		t.Fatalf("round-trip mismatch: %+v", s)
	}
	if s.Start == 0 {
		t.Fatal("Start not defaulted")
	}
	// Mirrored Chrome event with the IDs in args.
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Name != "server.dispatch" {
		t.Fatalf("chrome mirror missing: %+v", evs)
	}
	if evs[0].Args["trace"] != "0000000000000abc" {
		t.Fatalf("chrome mirror args: %+v", evs[0].Args)
	}
}

// TestTracerConcurrentSpanWriters hammers one tracer from many goroutines
// mixing RecordSpan with phase Span/end pairs, then checks nothing was
// lost and both export formats stay valid. Run under -race this also
// proves the locking.
func TestTracerConcurrentSpanWriters(t *testing.T) {
	tr := NewTracer()
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.RecordSpan(SpanRecord{
					Trace: NewTraceID(), Span: NewTraceID(),
					Name: "shard.apply", Process: "pipeline",
					Dur:  int64(i),
					Args: map[string]any{"writer": w},
				})
				end := tr.Span("phase")
				end()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != writers*perWriter {
		t.Fatalf("lost spans: got %d, want %d", got, writers*perWriter)
	}
	var buf bytes.Buffer
	if err := tr.WriteSpansJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f SpanFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("span JSON invalid after concurrent writes: %v", err)
	}
	buf.Reset()
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome trace JSON invalid after concurrent writes")
	}
}

// TestBoundedTracerDropsSpans checks the bounded tracer stays bounded for
// span records too (the server's always-on sink must not grow without
// limit under a firehose of traced batches).
func TestBoundedTracerDropsSpans(t *testing.T) {
	tr := NewBoundedTracer(16)
	for i := 0; i < 100; i++ {
		tr.RecordSpan(SpanRecord{Trace: NewTraceID(), Span: NewTraceID(), Name: "s"})
	}
	if got := len(tr.Spans()); got > 16 {
		t.Fatalf("bounded tracer holds %d spans, limit 16", got)
	}
}

// TestHistogramExemplars pins exemplar recording: ObserveTraced stamps
// the observation's bucket with its trace ID, plain Observe leaves
// exemplars alone, and TailExemplar surfaces the slowest traced bucket.
func TestHistogramExemplars(t *testing.T) {
	r := New()
	h := r.Histogram("test_latency_ns", "test")
	h.Observe(10) // untraced: no exemplar anywhere
	if s := h.Snapshot(); s.TailExemplar() != 0 {
		t.Fatalf("untraced observation produced exemplar %#x", s.TailExemplar())
	}
	h.ObserveTraced(100, 0xaaa)   // mid bucket
	h.ObserveTraced(1<<20, 0xbbb) // tail bucket
	h.ObserveTraced(1<<20, 0)     // zero trace must not overwrite
	s := h.Snapshot()
	if got := s.TailExemplar(); got != 0xbbb {
		t.Fatalf("TailExemplar = %#x, want 0xbbb", got)
	}
	found := 0
	for _, e := range s.Exemplars {
		if e != 0 {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("%d buckets carry exemplars, want 2", found)
	}
	// A later traced observation in the same tail bucket replaces the
	// exemplar — most-recent wins, so operators chase a live trace.
	h.ObserveTraced(1<<20, 0xccc)
	if got := h.Snapshot().TailExemplar(); got != 0xccc {
		t.Fatalf("TailExemplar after update = %#x, want 0xccc", got)
	}
}

// TestLogfLogger pins the slog bridge: records render as "msg key=value"
// lines on the printf sink, warnings carry a level prefix, groups
// flatten with dotted keys, and debug records are dropped.
func TestLogfLogger(t *testing.T) {
	var lines []string
	log := NewLogfLogger(func(format string, args ...any) {
		lines = append(lines, strings.TrimSpace(fmt.Sprintf(format, args...)))
	})
	log.Info("session opened", "session", 7, "codec", "v2")
	log.Warn("member failed", "member", "a:1")
	log.Debug("dropped")
	log.With("member", "b:2").WithGroup("net").Info("dial", "addr", "x")
	want := []string{
		"session opened session=7 codec=v2",
		"warn: member failed member=a:1",
		"dial member=b:2 net.addr=x",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines %q, want %d", len(lines), lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d: %q, want %q", i, lines[i], want[i])
		}
	}
	// Discard logger: every level disabled, nothing panics.
	d := NewDiscardLogger()
	if d.Enabled(nil, 0) {
		t.Error("discard logger claims to be enabled")
	}
	d.Info("ignored")
}
