// Structured-logging adapters. The server, cluster and daemons log through
// log/slog with typed fields (session, member, slot, ...); these helpers
// bridge slog onto the legacy printf-style Logf sinks the packages'
// options (and their tests) already use, and provide an explicit discard
// logger so call sites never need a nil check.
package telemetry

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
)

// NewLogfLogger returns a slog.Logger whose records are rendered as
// logfmt-style lines ("msg key=value ...") into the given printf sink. A
// nil logf yields the discard logger.
func NewLogfLogger(logf func(format string, args ...any)) *slog.Logger {
	if logf == nil {
		return NewDiscardLogger()
	}
	return slog.New(&logfHandler{logf: logf})
}

// NewDiscardLogger returns a logger that drops every record (all levels
// disabled, so argument evaluation is skipped too).
func NewDiscardLogger() *slog.Logger { return slog.New(discardHandler{}) }

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// logfHandler renders slog records into a printf sink. It implements only
// what the detector's components need: attrs and groups become flat
// key=value pairs; levels below Info are dropped (matching the legacy
// sinks' verbosity).
type logfHandler struct {
	logf   func(format string, args ...any)
	prefix string // accumulated group prefix ("grp.")
	attrs  []prefixedAttr
}

// prefixedAttr is a WithAttrs-bound attribute with the group prefix that
// was open when it was added (slog semantics: WithGroup qualifies only
// attrs added after it).
type prefixedAttr struct {
	prefix string
	attr   slog.Attr
}

func (h *logfHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= slog.LevelInfo
}

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	for _, pa := range h.attrs {
		appendAttr(&b, pa.prefix, pa.attr)
	}
	r.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, h.prefix, a)
		return true
	})
	if r.Level >= slog.LevelWarn {
		h.logf("%s: %s", strings.ToLower(r.Level.String()), b.String())
	} else {
		h.logf("%s", b.String())
	}
	return nil
}

func appendAttr(b *strings.Builder, prefix string, a slog.Attr) {
	v := a.Value.Resolve()
	if a.Key == "" && v.Kind() != slog.KindGroup {
		return
	}
	if v.Kind() == slog.KindGroup {
		p := prefix
		if a.Key != "" {
			p = prefix + a.Key + "."
		}
		for _, ga := range v.Group() {
			appendAttr(b, p, ga)
		}
		return
	}
	fmt.Fprintf(b, " %s%s=%v", prefix, a.Key, v.Any())
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	n := &logfHandler{logf: h.logf, prefix: h.prefix}
	n.attrs = append([]prefixedAttr(nil), h.attrs...)
	for _, a := range attrs {
		n.attrs = append(n.attrs, prefixedAttr{prefix: h.prefix, attr: a})
	}
	return n
}

func (h *logfHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	n := &logfHandler{logf: h.logf, prefix: h.prefix + name + ".", attrs: h.attrs}
	return n
}
