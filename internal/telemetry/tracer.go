// Phase tracer: a minimal span recorder that serializes to the Chrome
// trace_event JSON format, so a run's phase breakdown (baseline, execute,
// drain, report …) can be opened directly in chrome://tracing, Perfetto,
// or speedscope. Spans are cheap (one mutex-guarded append per event) and
// every method is safe on a nil *Tracer, mirroring the registry's
// disabled-is-free contract.
package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceEvent is one Chrome trace_event record. Only the fields this
// tracer emits are modeled:
//
//	ph "X" — complete event (span with ts + dur)
//	ph "i" — instant event
//	ph "C" — counter sample (args carry the series values)
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // microseconds since trace start
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the top-level Chrome trace JSON object.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Tracer records phase spans and instants. The zero value is not usable;
// construct with NewTracer. A nil *Tracer ignores every call.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	limit  int // max retained events and spans each; 0 = unbounded
	events []TraceEvent
	spans  []SpanRecord // distributed span records (see span.go)
}

// NewTracer returns a tracer whose timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// NewBoundedTracer returns a tracer that retains at most limit events and
// limit span records, discarding the oldest half on overflow — the
// long-lived-server variant (racedetectd keeps one for /debug/spans
// without growing without bound).
func NewBoundedTracer(limit int) *Tracer {
	if limit < 2 {
		limit = 2
	}
	return &Tracer{start: time.Now(), limit: limit}
}

// appendEventLocked appends under the tracer lock, evicting the oldest
// half when a bounded tracer is full (amortized O(1) per append).
func (t *Tracer) appendEventLocked(e TraceEvent) {
	if t.limit > 0 && len(t.events) >= t.limit {
		n := copy(t.events, t.events[len(t.events)-t.limit/2:])
		t.events = t.events[:n]
	}
	t.events = append(t.events, e)
}

// appendSpanLocked is appendEventLocked for span records.
func (t *Tracer) appendSpanLocked(s SpanRecord) {
	if t.limit > 0 && len(t.spans) >= t.limit {
		n := copy(t.spans, t.spans[len(t.spans)-t.limit/2:])
		t.spans = t.spans[:n]
	}
	t.spans = append(t.spans, s)
}

func (t *Tracer) sinceStart(at time.Time) int64 {
	return at.Sub(t.start).Microseconds()
}

// Span opens a phase span named name and returns the closure that ends
// it; the idiomatic use brackets a phase in one line:
//
//	defer tr.Span("drain")()
//
// Span is nil-safe and concurrency-safe (concurrent spans land on
// separate trace rows only insofar as the viewer stacks overlapping
// events; tid is constant).
func (t *Tracer) Span(name string, args ...map[string]any) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	var a map[string]any
	if len(args) > 0 {
		a = args[0]
	}
	return func() {
		end := time.Now()
		t.mu.Lock()
		t.appendEventLocked(TraceEvent{
			Name: name, Ph: "X",
			Ts:  t.sinceStart(begin),
			Dur: end.Sub(begin).Microseconds(),
			Pid: 1, Tid: 1,
			Args: a,
		})
		t.mu.Unlock()
	}
}

// Instant records a zero-duration marker event.
func (t *Tracer) Instant(name string, args map[string]any) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.appendEventLocked(TraceEvent{
		Name: name, Ph: "i", Ts: t.sinceStart(now), Pid: 1, Tid: 1, Args: args,
	})
	t.mu.Unlock()
}

// CounterSample records a counter event: the viewer renders each key of
// values as a stacked series over time.
func (t *Tracer) CounterSample(name string, values map[string]any) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.appendEventLocked(TraceEvent{
		Name: name, Ph: "C", Ts: t.sinceStart(now), Pid: 1, Tid: 1, Args: values,
	})
	t.mu.Unlock()
}

// Events returns a copy of the recorded events in recording order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// WriteJSON writes the Chrome trace_event document. The output parses
// back with encoding/json into a TraceFile — pinned by the tracer tests.
// Nil-safe (writes an empty, still-valid trace).
func (t *Tracer) WriteJSON(w io.Writer) error {
	f := TraceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
	if f.TraceEvents == nil {
		f.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}
