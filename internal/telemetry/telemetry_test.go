package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety pins the disabled-registry contract: a nil registry
// returns nil instruments and every operation on them is a no-op — the
// instrumented hot paths must never need a second code path.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "")
	r.GaugeFunc("f", "", func() float64 { return 1 })
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	if c.Load() != 0 || g.Load() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	if r.With(Labels{"a": "b"}) != nil {
		t.Fatal("With on nil registry is not nil")
	}
	r.Each(func(Metric) { t.Fatal("nil registry has metrics") })
	if v := r.CounterValue("c_total"); v != 0 {
		t.Fatalf("CounterValue on nil registry = %d", v)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Fatalf("nil registry exposition non-empty: %q", sb.String())
	}
	r.Prune(func(string, Labels) bool { return false })
}

// TestCounterGauge exercises the basic instruments and export formats.
func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("events_total", "Events seen.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("depth", "Queue depth.")
	g.Set(7)
	g.Add(-2)
	r.GaugeFunc("uptime_seconds", "Uptime.", func() float64 { return 1.5 })

	if c.Load() != 42 {
		t.Fatalf("counter = %d, want 42", c.Load())
	}
	if g.Load() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Load())
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"# HELP events_total Events seen.",
		"# TYPE events_total counter",
		"events_total 42",
		"# TYPE depth gauge",
		"depth 5",
		"uptime_seconds 1.5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestRegistrationIdempotent: the same (name, labels) returns the same
// instrument; per-shard label sets get distinct series, and CounterValue
// sums across them.
func TestRegistrationIdempotent(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	s0 := r.Counter("x_total", "", Labels{"shard": "0"})
	s1 := r.Counter("x_total", "", Labels{"shard": "1"})
	if s0 == s1 || s0 == a {
		t.Fatal("labeled series not distinct")
	}
	a.Add(1)
	s0.Add(2)
	s1.Add(3)
	if v := r.CounterValue("x_total"); v != 6 {
		t.Fatalf("CounterValue = %d, want 6", v)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestWithLabels: base labels from With compose and attach to every
// registration, and Prune drops a label's series.
func TestWithLabels(t *testing.T) {
	r := New()
	sess := r.With(Labels{"session": "7"}).With(Labels{"role": "ingest"})
	c := sess.Counter("y_total", "")
	c.Add(9)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `y_total{role="ingest",session="7"} 9`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, sb.String())
	}

	r.Prune(func(_ string, l Labels) bool { return l["session"] != "7" })
	if v := r.CounterValue("y_total"); v != 0 {
		t.Fatalf("pruned series still counted: %d", v)
	}
	// Re-registering after a prune must install a fresh series.
	c2 := sess.Counter("y_total", "")
	c2.Inc()
	if v := r.CounterValue("y_total"); v != 1 {
		t.Fatalf("post-prune re-registration broken: %d", v)
	}
}

// TestHistogramEdges pins the bucketing of the extreme observations: 0
// lands in the dedicated zero bucket, 1 in the next, and math.MaxUint64
// in the final bucket — nothing is dropped at either end of the range.
func TestHistogramEdges(t *testing.T) {
	r := New()
	h := r.Histogram("lat_ns", "")
	h.Observe(0)
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(math.MaxUint64)

	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Buckets[0] != 2 {
		t.Fatalf("zero bucket = %d, want 2", s.Buckets[0])
	}
	if s.Buckets[1] != 1 {
		t.Fatalf("bucket le=1 = %d, want 1", s.Buckets[1])
	}
	if s.Buckets[2] != 2 {
		t.Fatalf("bucket le=3 = %d, want 2 (values 2 and 3)", s.Buckets[2])
	}
	if s.Buckets[64] != 1 {
		t.Fatalf("top bucket = %d, want 1 (MaxUint64)", s.Buckets[64])
	}
	if got := BucketBound(0); got != 0 {
		t.Fatalf("BucketBound(0) = %d", got)
	}
	if got := BucketBound(64); got != math.MaxUint64 {
		t.Fatalf("BucketBound(64) = %d", got)
	}
	// Quantiles are bucket upper bounds: the median of {0,0,1,2,3,Max}
	// falls in the le=3 bucket; the max is MaxUint64.
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d, want 3", q)
	}
	if q := s.Quantile(1); q != math.MaxUint64 {
		t.Fatalf("p100 = %d, want MaxUint64", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %d", q)
	}

	// Prometheus rendering: cumulative buckets ending in +Inf == count.
	var sb strings.Builder
	r.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{le="0"} 2`,
		`lat_ns_bucket{le="1"} 3`,
		`lat_ns_bucket{le="3"} 5`,
		`lat_ns_bucket{le="+Inf"} 6`,
		"lat_ns_count 6",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, text)
		}
	}
}

// TestRegistryConcurrent hammers registration, updates and exports from
// many goroutines; run under -race this pins the registry's thread
// safety (concurrent register/export is exactly what a scrape during
// session churn does to the server registry).
func TestRegistryConcurrent(t *testing.T) {
	r := New()
	const goroutines = 8
	const rounds = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c := r.Counter("conc_total", "", Labels{"g": fmt.Sprint(g % 4)})
				c.Inc()
				r.Histogram("conc_ns", "").Observe(uint64(i))
				if i%10 == 0 {
					r.Prune(func(name string, l Labels) bool {
						return name != "ephemeral_total"
					})
					r.Counter("ephemeral_total", "", Labels{"g": fmt.Sprint(g)}).Inc()
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WritePrometheus(&sb)
			if err := r.WriteJSON(io.Discard); err != nil {
				t.Errorf("WriteJSON: %v", err)
				return
			}
			r.CounterValue("conc_total")
		}
	}()
	wg.Wait()
	<-done
	if v := r.CounterValue("conc_total"); v != goroutines*rounds {
		t.Fatalf("conc_total = %d, want %d", v, goroutines*rounds)
	}
	if s := r.HistogramValue("conc_ns"); s.Count != goroutines*rounds {
		t.Fatalf("conc_ns count = %d, want %d", s.Count, goroutines*rounds)
	}
}

// TestJSONSnapshot checks the expvar-style document round-trips through
// encoding/json and carries histogram summaries.
func TestJSONSnapshot(t *testing.T) {
	r := New()
	r.Counter("a_total", "").Add(3)
	r.Histogram("b_ns", "").Observe(100)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("JSON export does not parse: %v\n%s", err, sb.String())
	}
	if doc["a_total"] != 3.0 {
		t.Fatalf("a_total = %v", doc["a_total"])
	}
	h, ok := doc["b_ns"].(map[string]any)
	if !ok || h["count"] != 1.0 {
		t.Fatalf("b_ns histogram = %v", doc["b_ns"])
	}
}

// TestHandler exercises the bundled HTTP endpoint.
func TestHandler(t *testing.T) {
	r := New()
	r.Counter("served_total", "Requests.").Add(2)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	get := func(path string) string {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if text := get("/metrics"); !strings.Contains(text, "served_total 2") {
		t.Errorf("/metrics missing counter:\n%s", text)
	}
	if text := get("/debug/vars"); !strings.Contains(text, `"served_total": 2`) {
		t.Errorf("/debug/vars missing counter:\n%s", text)
	}
	if text := get("/"); !strings.Contains(text, "/metrics") {
		t.Errorf("index missing endpoints:\n%s", text)
	}
}
