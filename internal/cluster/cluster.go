// Package cluster fans one instrumentation event stream out across a
// fleet of racedetectd servers and merges their verdicts into one report
// — a horizontal scale-out of the same partitioning internal/pipeline
// performs across worker goroutines inside one server.
//
// The partitioning key is the shadow-block id (addr >> shadow.BlockShift),
// the unit the detector's state is keyed on: every access to a block is
// routed to the one member owning it (through the hash-slot ring, see
// ring.go), so each member holds a disjoint slice of the shadow space and
// sees its slice's accesses in stream order. Sync events — locks, fork/
// join, barriers, channels, WaitGroups — are broadcast to every member in
// stream order relative to the accesses routed there, so each member's
// clock replica observes the same happens-before order the program
// produced. That is the whole correctness argument, inherited from the
// in-process pipeline: per-block detection state depends only on that
// block's accesses plus the (replicated) clock state, so the union of
// per-member race sets equals the single-process race set.
//
// Each member connection is an ordinary internal/client session with its
// own sequence space, windowed acks, codec negotiation and resume — the
// coordinator composes N of them without touching the wire protocol.
package cluster

import (
	"fmt"
	"log/slog"
	"time"

	"repro/internal/client"
	"repro/internal/event"
	"repro/internal/shadow"
	"repro/internal/telemetry"
	"repro/internal/vc"
	"repro/internal/wire"
)

// Options configure a cluster session.
type Options struct {
	// Members is the racedetectd address list (host:port each). Routing
	// is deterministic in the list order: the same members in the same
	// order replay a stream identically.
	Members []string
	// Hello carries the detection configuration every member negotiates
	// (granularity, shard count, detector knobs). Version, Resume and
	// Window are managed per connection.
	Hello wire.Hello
	// Window is the requested per-member in-flight batch window.
	Window int
	// Sync selects strict-ordering transport on every member connection.
	Sync bool
	// Codec is the requested batch-codec ceiling, negotiated per member —
	// a mixed-version fleet may grant different codecs to different
	// connections.
	Codec int
	// NewBatchPolicy, when non-nil, is called once per member connection
	// to build its adaptive batch policy. A policy holds single-connection
	// state (RTT and queue observations), so members cannot share one.
	NewBatchPolicy func() *event.BatchPolicy

	// Backpressure, when non-nil, is shared by every member connection:
	// each member client feeds its outbox-occupancy and ack-RTT
	// observations into it. The budgeted sampling lane passes its
	// feedback controller here (sampling.Controller is mutex-guarded, so
	// one controller can absorb the whole fleet's signals).
	Backpressure event.BackpressureObserver
	// DialTimeout bounds one dial attempt per member.
	DialTimeout time.Duration
	// ReportTimeout bounds the per-member report wait at Close.
	ReportTimeout time.Duration
	// Migration, when non-nil, schedules a single slot migration
	// mid-stream (see migrate.go).
	Migration *Migration
	// Logf, when non-nil, receives coordinator diagnostics (legacy printf
	// sink; superseded by Logger when both are set).
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives structured coordinator records with
	// typed fields (member addr, slot counts, merge timings). When nil,
	// records render onto Logf; when both are nil, logging is off.
	Logger *slog.Logger
	// Telemetry, when non-nil, receives the cluster instrument families
	// (cluster_members, cluster_fanout_events_total{member},
	// cluster_broadcast_events_total, cluster_merge_ns) and is shared
	// with every member client, so the transport series (ack RTT,
	// batches, wire bytes) aggregate fleet-wide.
	Telemetry *telemetry.Registry
	// TraceSample is the per-batch distributed-trace sampling rate handed
	// to every member client (0 = tracing off). Each member negotiates the
	// grant with its own server, so a mixed fleet degrades per member.
	TraceSample float64
	// Tracer, when non-nil, receives every member client's root spans plus
	// the coordinator's cluster.merge span at Close.
	Tracer *telemetry.Tracer
}

// MemberError reports a cluster-member failure: which member, and the
// highest batch sequence the member acknowledged before failing — the
// resume watermark an operator (or a future rebalancer) would continue
// from.
type MemberError struct {
	Addr      string
	LastAcked uint64
	Err       error
}

func (e *MemberError) Error() string {
	return fmt.Sprintf("cluster member %s failed (last acked seq %d): %v", e.Addr, e.LastAcked, e.Err)
}

func (e *MemberError) Unwrap() error { return e.Err }

// member is one coordinator-managed server connection.
type member struct {
	addr string
	cl   *client.Client
}

// Sink is the fan-out event.Sink: it implements the full Sink/GoSink
// surface, routing accesses by shadow block and broadcasting sync events.
// Like every Sink it must be driven from a single goroutine; Close may be
// called once after the stream ends.
type Sink struct {
	opts    Options
	ring    *Ring
	members []*member
	met     metrics
	log     *slog.Logger

	// Router-side counts, mirroring pipeline's: one per original event,
	// before splitting/broadcast multiplies them. They override the
	// merged per-member tallies at Close.
	seq       uint64 // events observed (accesses + sync + heap)
	accesses  uint64 // shared accesses (pre-split)
	nonshared uint64 // accesses dropped by the stack filter

	// Migration state (see migrate.go).
	mig       *Migration
	journal   []jrec
	migrated  bool
	movedSlot int // -1 until a migration completed
	movedFrom int
	lastSlot  int // slot of the most recent access piece (auto-pick)

	closed bool
	report *wire.Report
	err    error
}

// Dial connects to every member and negotiates one session per
// connection. On any dial failure the already-opened sessions are closed
// and a *MemberError naming the failed member is returned.
func Dial(opts Options) (*Sink, error) {
	if len(opts.Members) == 0 {
		return nil, fmt.Errorf("cluster: empty member list")
	}
	s := &Sink{
		opts:      opts,
		ring:      NewRing(len(opts.Members)),
		mig:       opts.Migration,
		movedSlot: -1,
		lastSlot:  -1,
	}
	s.met = newMetrics(opts.Telemetry, nil)
	s.log = opts.Logger
	if s.log == nil {
		s.log = telemetry.NewLogfLogger(opts.Logf)
	}
	for _, addr := range opts.Members {
		cl, err := client.Dial(s.clientOptions(addr))
		if err != nil {
			for _, m := range s.members {
				m.cl.Close()
			}
			return nil, &MemberError{Addr: addr, Err: err}
		}
		s.members = append(s.members, &member{addr: addr, cl: cl})
		s.met.addMember(addr)
	}
	s.met.members.Set(int64(len(s.members)))
	s.log.Info("cluster connected",
		"members", len(s.members),
		"slots", fmt.Sprintf("%v", s.ring.Counts(len(s.members))),
		"trace_sample", s.opts.TraceSample)
	return s, nil
}

// logf is the legacy printf sink, still used by migration diagnostics.
func (s *Sink) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// clientOptions builds the per-member transport configuration.
func (s *Sink) clientOptions(addr string) client.Options {
	co := client.Options{
		Addr:          addr,
		Hello:         s.opts.Hello,
		Window:        s.opts.Window,
		Sync:          s.opts.Sync,
		Codec:         s.opts.Codec,
		DialTimeout:   s.opts.DialTimeout,
		ReportTimeout: s.opts.ReportTimeout,
		Logf:          s.opts.Logf,
		Telemetry:     s.opts.Telemetry,
		TraceSample:   s.opts.TraceSample,
		Tracer:        s.opts.Tracer,
		Backpressure:  s.opts.Backpressure,
	}
	if s.opts.NewBatchPolicy != nil {
		co.BatchPolicy = s.opts.NewBatchPolicy()
	}
	return co
}

// Members returns the current member addresses (grows by one after a
// completed migration).
func (s *Sink) Members() []string {
	out := make([]string, len(s.members))
	for i, m := range s.members {
		out[i] = m.addr
	}
	return out
}

// Err returns the first member's fatal transport error as a
// *MemberError, or nil. Events sent after a member failure are dropped by
// that member's client; Close reports the same error.
func (s *Sink) Err() error {
	for _, m := range s.members {
		if err := m.cl.Err(); err != nil {
			return &MemberError{Addr: m.addr, LastAcked: m.cl.LastAcked(), Err: err}
		}
	}
	return nil
}

// ---- routing ----

// access splits one memory access at shadow-block boundaries — exactly
// like pipeline.access — and routes each piece to the member owning its
// block's slot.
func (s *Sink) access(op event.Op, tid vc.TID, addr uint64, size uint32, pc event.PC) {
	s.seq++
	if event.NonShared(addr) {
		s.nonshared++
		s.maybeMigrate()
		return // the serial detector's first-line filter, hoisted to the router
	}
	s.accesses++
	lo, hi := addr, addr+uint64(size)
	for lo < hi {
		end := (lo | (shadow.BlockSize - 1)) + 1
		if end > hi {
			end = hi
		}
		slot := s.ring.Slot(lo >> shadow.BlockShift)
		m := s.ring.OwnerOfSlot(slot)
		r := event.Rec{Op: op, Tid: tid, Addr: lo, Size: uint32(end - lo), PC: pc}
		event.ApplyRec(s.members[m].cl, &r)
		s.met.fanout[m].Inc()
		s.lastSlot = slot
		s.record(int16(slot), r)
		lo = end
	}
	s.maybeMigrate()
}

// syncEvent broadcasts one sync/heap record to every member, in stream
// order relative to each member's accesses.
func (s *Sink) syncEvent(r event.Rec) {
	s.seq++
	for _, m := range s.members {
		event.ApplyRec(m.cl, &r)
	}
	s.met.broadcast.Inc()
	s.record(-1, r)
	s.maybeMigrate()
}

// ---- event.Sink ----

// Read routes a shared read to its blocks' owners.
func (s *Sink) Read(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	s.access(event.OpRead, tid, addr, size, pc)
}

// Write routes a shared write to its blocks' owners.
func (s *Sink) Write(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	s.access(event.OpWrite, tid, addr, size, pc)
}

// Acquire broadcasts a lock acquisition to every clock replica.
func (s *Sink) Acquire(tid vc.TID, l event.LockID) {
	s.syncEvent(event.Rec{Op: event.OpAcquire, Tid: tid, Aux: uint64(l)})
}

// Release broadcasts a lock release.
func (s *Sink) Release(tid vc.TID, l event.LockID) {
	s.syncEvent(event.Rec{Op: event.OpRelease, Tid: tid, Aux: uint64(l)})
}

// AcquireShared broadcasts a rwlock read-lock.
func (s *Sink) AcquireShared(tid vc.TID, l event.LockID) {
	s.syncEvent(event.Rec{Op: event.OpAcquireShared, Tid: tid, Aux: uint64(l)})
}

// ReleaseShared broadcasts a rwlock read-unlock.
func (s *Sink) ReleaseShared(tid vc.TID, l event.LockID) {
	s.syncEvent(event.Rec{Op: event.OpReleaseShared, Tid: tid, Aux: uint64(l)})
}

// Fork broadcasts thread creation.
func (s *Sink) Fork(parent, child vc.TID) {
	s.syncEvent(event.Rec{Op: event.OpFork, Tid: parent, Aux: uint64(child)})
}

// Join broadcasts a thread join.
func (s *Sink) Join(parent, child vc.TID) {
	s.syncEvent(event.Rec{Op: event.OpJoin, Tid: parent, Aux: uint64(child)})
}

// BarrierArrive broadcasts a barrier arrival.
func (s *Sink) BarrierArrive(tid vc.TID, b event.BarrierID) {
	s.syncEvent(event.Rec{Op: event.OpBarrierArrive, Tid: tid, Aux: uint64(b)})
}

// BarrierDepart broadcasts a barrier departure.
func (s *Sink) BarrierDepart(tid vc.TID, b event.BarrierID) {
	s.syncEvent(event.Rec{Op: event.OpBarrierDepart, Tid: tid, Aux: uint64(b)})
}

// Malloc broadcasts heap allocation (kept in stream order on every
// member, like the in-process pipeline).
func (s *Sink) Malloc(tid vc.TID, addr, size uint64) {
	s.syncEvent(event.Rec{Op: event.OpMalloc, Tid: tid, Addr: addr, Aux: size})
}

// Free broadcasts deallocation; each member drops only its own blocks'
// shadow state.
func (s *Sink) Free(tid vc.TID, addr, size uint64) {
	s.syncEvent(event.Rec{Op: event.OpFree, Tid: tid, Addr: addr, Aux: size})
}

// ---- event.GoSink ----

// ChanSend broadcasts a channel send.
func (s *Sink) ChanSend(tid vc.TID, ch event.ChanID, capacity int) {
	s.syncEvent(event.Rec{Op: event.OpChanSend, Tid: tid, Aux: uint64(uint32(ch)), Size: uint32(capacity)})
}

// ChanRecv broadcasts a channel receive.
func (s *Sink) ChanRecv(tid vc.TID, ch event.ChanID, capacity int) {
	s.syncEvent(event.Rec{Op: event.OpChanRecv, Tid: tid, Aux: uint64(uint32(ch)), Size: uint32(capacity)})
}

// ChanAck broadcasts an unbuffered send completion.
func (s *Sink) ChanAck(tid vc.TID, ch event.ChanID, capacity int) {
	s.syncEvent(event.Rec{Op: event.OpChanAck, Tid: tid, Aux: uint64(uint32(ch)), Size: uint32(capacity)})
}

// WGAdd broadcasts a WaitGroup counter increment.
func (s *Sink) WGAdd(tid vc.TID, wg event.WGID, delta int) {
	s.syncEvent(event.Rec{Op: event.OpWGAdd, Tid: tid, Aux: uint64(uint32(wg)), Size: uint32(delta)})
}

// WGDone broadcasts a WaitGroup decrement.
func (s *Sink) WGDone(tid vc.TID, wg event.WGID) {
	s.syncEvent(event.Rec{Op: event.OpWGDone, Tid: tid, Aux: uint64(uint32(wg))})
}

// WGWait broadcasts a WaitGroup wait completion.
func (s *Sink) WGWait(tid vc.TID, wg event.WGID) {
	s.syncEvent(event.Rec{Op: event.OpWGWait, Tid: tid, Aux: uint64(uint32(wg))})
}

// ---- shutdown ----

// Close drains every member (flush-on-close), merges the per-member
// reports into one deterministic Report (wire.MergeReports ordering), and
// overrides the summed access tallies with the router-side counts — one
// per original event, exactly as pipeline.merge does for its shards, so
// the merged report matches a single-process run. On a member failure the
// remaining members are still drained and the first failure is returned
// as a *MemberError carrying the member's last acked sequence.
func (s *Sink) Close() (*wire.Report, error) {
	if s.closed {
		return s.report, s.err
	}
	s.closed = true
	reports := make([]wire.Report, 0, len(s.members))
	var firstErr error
	for i, m := range s.members {
		acked := m.cl.LastAcked()
		rep, err := m.cl.Close()
		if err != nil {
			if a := m.cl.LastAcked(); a > acked {
				acked = a
			}
			me := &MemberError{Addr: m.addr, LastAcked: acked, Err: err}
			s.log.Warn("cluster member failed",
				"member", m.addr, "last_acked", acked, "err", err)
			if firstErr == nil {
				firstErr = me
			}
			continue
		}
		r := *rep
		if s.movedSlot >= 0 && i == s.movedFrom {
			r = s.dropMovedRaces(r)
		}
		reports = append(reports, r)
	}
	if firstErr != nil {
		s.err = firstErr
		return nil, s.err
	}
	start := time.Now()
	merged := wire.MergeReports(reports...)
	// Clock statistics: sync events are broadcast, so every member's clock
	// replica is identical; report one replica's figures (as the pipeline
	// does across its shards) instead of the N-fold sum.
	if len(reports) > 0 {
		r0 := reports[0].Stats
		merged.Stats.ClockStructuredThreads = r0.ClockStructuredThreads
		merged.Stats.ClockDemotions = r0.ClockDemotions
		merged.Stats.ClockCompactBytes = r0.ClockCompactBytes
		merged.Stats.ClockCompactPeakBytes = r0.ClockCompactPeakBytes
		merged.Stats.ClockGeneralBytes = r0.ClockGeneralBytes
		merged.Stats.ClockGeneralPeakBytes = r0.ClockGeneralPeakBytes
	}
	// Router-count overrides: splitting multiplies per-member Accesses
	// (one count per piece) and broadcasting multiplies Events; the
	// coordinator saw each original event exactly once.
	merged.Stats.Accesses = s.accesses
	merged.Stats.NonShared = s.nonshared
	merged.Events = s.seq
	s.met.mergeNS.ObserveSince(start)
	if s.opts.Tracer != nil {
		s.opts.Tracer.RecordSpan(telemetry.SpanRecord{
			Trace:   telemetry.NewTraceID(),
			Span:    telemetry.NewTraceID(),
			Name:    "cluster.merge",
			Process: "cluster",
			Start:   start.UnixNano(),
			Dur:     int64(time.Since(start)),
			Args: map[string]any{
				"members": len(reports),
				"races":   len(merged.Races),
			},
		})
	}
	s.report = &merged
	return s.report, nil
}

// dropMovedRaces removes the old owner's verdicts for the migrated slot:
// the new owner re-derived them (and any later ones) from the journal
// replay, so keeping both would duplicate every pre-migration race in the
// moved slot.
func (s *Sink) dropMovedRaces(r wire.Report) wire.Report {
	kept := make([]wire.ReportRace, 0, len(r.Races))
	for _, x := range r.Races {
		if s.ring.Slot(x.Addr>>shadow.BlockShift) == s.movedSlot {
			continue
		}
		kept = append(kept, x)
	}
	r.Stats.Races -= uint64(len(r.Races) - len(kept))
	r.Races = kept
	return r
}
