package cluster

import (
	"context"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/server"
	"repro/internal/shadow"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// startServer starts a racedetectd on a loopback listener; shut down at
// cleanup (the PR 2 pattern).
func startServer(t *testing.T, opts server.Options) (*server.Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil && err != server.ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, l.Addr().String()
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRingRoundRobinAndMove(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		r := NewRing(n)
		counts := r.Counts(n)
		for m, c := range counts {
			if c < Slots/n || c > Slots/n+1 {
				t.Fatalf("n=%d: member %d owns %d slots, want ~%d", n, m, c, Slots/n)
			}
		}
	}
	r := NewRing(2)
	block := uint64(12345)
	s := r.Slot(block)
	old := r.Owner(block)
	r.Move(s, 7)
	if r.Owner(block) != 7 {
		t.Fatalf("after Move, owner = %d, want 7", r.Owner(block))
	}
	if r.OwnerOfSlot(s) != 7 || old == 7 {
		t.Fatalf("Move did not take effect on slot %d", s)
	}
}

func TestRingSlotDeterministicAndSpread(t *testing.T) {
	r := NewRing(4)
	hit := make(map[int]bool)
	for b := uint64(0); b < 512; b++ {
		s1, s2 := r.Slot(b), r.Slot(b)
		if s1 != s2 {
			t.Fatalf("Slot(%d) not deterministic: %d vs %d", b, s1, s2)
		}
		if s1 < 0 || s1 >= Slots {
			t.Fatalf("Slot(%d) = %d out of range", b, s1)
		}
		hit[s1] = true
	}
	// 512 sequential blocks must not stride into a few slots: the mix
	// function should touch essentially all of them.
	if len(hit) < Slots*3/4 {
		t.Fatalf("512 sequential blocks hit only %d/%d slots", len(hit), Slots)
	}
}

// testOptions is a 2-member cluster configuration against live servers.
func testOptions(t *testing.T, reg *telemetry.Registry, n int) Options {
	t.Helper()
	members := make([]string, n)
	for i := range members {
		_, members[i] = startServer(t, server.Options{})
	}
	return Options{
		Members:   members,
		Hello:     wire.Hello{Workers: 1},
		Telemetry: reg,
	}
}

func TestClusterRouterCountsAndTelemetry(t *testing.T) {
	reg := telemetry.New()
	s, err := Dial(testOptions(t, reg, 2))
	if err != nil {
		t.Fatal(err)
	}
	heap := uint64(1 << 20)
	s.Fork(1, 2)                               // broadcast
	s.Write(1, heap, 4, 10)                    // one piece
	s.Write(2, heap+shadow.BlockSize, 4, 20)   // one piece, another block
	s.Write(1, heap+shadow.BlockSize-2, 4, 30) // straddles a block boundary: 2 pieces
	s.Write(2, event.StackBase+64, 4, 40)      // non-shared, dropped at the router
	s.Join(1, 2)                               // broadcast
	rep, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != 6 {
		t.Errorf("Events = %d, want 6 (router counts originals, not copies)", rep.Events)
	}
	if rep.Stats.Accesses != 3 {
		t.Errorf("Accesses = %d, want 3 (pre-split)", rep.Stats.Accesses)
	}
	if rep.Stats.NonShared != 1 {
		t.Errorf("NonShared = %d, want 1", rep.Stats.NonShared)
	}
	if got := reg.CounterValue("cluster_broadcast_events_total"); got != 2 {
		t.Errorf("broadcast counter = %d, want 2", got)
	}
	if got := reg.CounterValue("cluster_fanout_events_total"); got != 4 {
		t.Errorf("fanout counter (summed over members) = %d, want 4 pieces", got)
	}
	if got := reg.GaugeValue("cluster_members"); got != 2 {
		t.Errorf("members gauge = %v, want 2", got)
	}
	// The merged LastSeq must cover every member's applied batches.
	batches := reg.CounterValue("client_batches_total")
	if rep.LastSeq != batches {
		t.Errorf("merged LastSeq = %d, want %d (total batch frames)", rep.LastSeq, batches)
	}
}

// TestMemberDiesMidStream kills one member's server mid-stream and checks
// the coordinator surfaces a typed *MemberError naming the member and its
// last acked sequence, while still draining the survivors.
func TestMemberDiesMidStream(t *testing.T) {
	_, addr0 := startServer(t, server.Options{})
	srv1, addr1 := startServer(t, server.Options{})
	s, err := Dial(Options{
		Members: []string{addr0, addr1},
		Hello:   wire.Hello{Workers: 1},
		Sync:    true, // per-batch acks, so the watermark advances deterministically
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three full batches of broadcast sync events: every member applies
	// and (sync mode) acks 3 batch frames.
	for i := 0; i < 3*event.DefaultBatchSize/2; i++ {
		s.Acquire(1, 7)
		s.Release(1, 7)
	}
	for _, m := range s.members {
		if got := m.cl.LastAcked(); got != 3 {
			t.Fatalf("member %s acked %d batches before kill, want 3", m.addr, got)
		}
	}
	// Force-kill member 1: expired context closes its connections and
	// listener, so reconnects fail until the client gives up.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srv1.Shutdown(ctx)

	for i := 0; i < event.DefaultBatchSize; i++ {
		s.Acquire(2, 9)
		s.Release(2, 9)
	}
	_, err = s.Close()
	var me *MemberError
	if !errors.As(err, &me) {
		t.Fatalf("Close error = %v (%T), want *MemberError", err, err)
	}
	if me.Addr != addr1 {
		t.Errorf("MemberError.Addr = %s, want %s", me.Addr, addr1)
	}
	if me.LastAcked != 3 {
		t.Errorf("MemberError.LastAcked = %d, want 3", me.LastAcked)
	}
	if me.Unwrap() == nil {
		t.Error("MemberError.Unwrap() = nil, want the transport cause")
	}
}

// TestCoordinatorCloseNoLeak extends the PR 2 leak pattern to the
// coordinator: after Close, no client or coordinator goroutines remain.
func TestCoordinatorCloseNoLeak(t *testing.T) {
	opts := testOptions(t, nil, 2) // servers up before the baseline
	base := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		s, err := Dial(opts)
		if err != nil {
			t.Fatal(err)
		}
		heap := uint64(1 << 21)
		s.Fork(1, 2)
		for i := 0; i < 500; i++ {
			s.Write(1, heap+uint64(i)*8, 8, 1)
			s.Write(2, heap+uint64(i)*8+1<<16, 8, 2)
		}
		s.Join(1, 2)
		if _, err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "goroutines to drain", 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+2
	})
}

// TestMigrationMidStream moves a slot to a third server mid-stream and
// checks membership, routing and the migration counter.
func TestMigrationMidStream(t *testing.T) {
	reg := telemetry.New()
	_, addrA := startServer(t, server.Options{})
	_, addrB := startServer(t, server.Options{})
	_, addrC := startServer(t, server.Options{})
	s, err := Dial(Options{
		Members:   []string{addrA, addrB},
		Hello:     wire.Hello{Workers: 1},
		Telemetry: reg,
		Migration: &Migration{Slot: -1, To: addrC, AfterEvents: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	heap := uint64(1 << 20)
	events := uint64(0)
	s.Fork(1, 2)
	events++
	for i := 0; i < 200; i++ {
		s.Write(1, heap+uint64(i)*shadow.BlockSize, 4, 10)
		s.Write(2, heap+uint64(i)*shadow.BlockSize+8, 4, 20)
		events += 2
		if i == 50 {
			s.Acquire(1, 3)
			s.Release(1, 3)
			events += 2
		}
	}
	s.Join(1, 2)
	events++
	rep, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Members(); len(got) != 3 || got[2] != addrC {
		t.Fatalf("Members() = %v, want third member %s", got, addrC)
	}
	if s.movedSlot < 0 {
		t.Fatal("migration did not run")
	}
	if owner := s.ring.OwnerOfSlot(s.movedSlot); owner != 2 {
		t.Errorf("moved slot %d owned by %d, want 2 (the new member)", s.movedSlot, owner)
	}
	if got := reg.CounterValue("cluster_migrations_total"); got != 1 {
		t.Errorf("migrations counter = %d, want 1", got)
	}
	if got := reg.GaugeValue("cluster_members"); got != 3 {
		t.Errorf("members gauge = %v, want 3", got)
	}
	if rep.Events != events {
		t.Errorf("Events = %d, want %d (router count, replay excluded)", rep.Events, events)
	}
}

// TestMigrationAbortsOnDialFailure checks a dead target cannot hurt the
// session: the ring keeps its owner and the stream completes normally.
func TestMigrationAbortsOnDialFailure(t *testing.T) {
	_, addrA := startServer(t, server.Options{})
	_, addrB := startServer(t, server.Options{})
	s, err := Dial(Options{
		Members:   []string{addrA, addrB},
		Hello:     wire.Hello{Workers: 1},
		Migration: &Migration{Slot: 0, To: "127.0.0.1:1", AfterEvents: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	heap := uint64(1 << 20)
	s.Fork(1, 2)
	for i := 0; i < 40; i++ {
		s.Write(1, heap+uint64(i)*16, 4, 1)
	}
	s.Join(1, 2)
	if _, err := s.Close(); err != nil {
		t.Fatalf("Close after aborted migration: %v", err)
	}
	if len(s.members) != 2 {
		t.Fatalf("aborted migration changed membership: %d members", len(s.members))
	}
	if s.movedSlot != -1 {
		t.Fatalf("aborted migration recorded a move: slot %d", s.movedSlot)
	}
}

func TestDropMovedRaces(t *testing.T) {
	s := &Sink{ring: NewRing(2)}
	// Find two blocks hashing to different slots.
	b1 := uint64(1)
	s.movedSlot = s.ring.Slot(b1)
	s.movedFrom = 0
	var b2 uint64
	for b := uint64(2); ; b++ {
		if s.ring.Slot(b) != s.movedSlot {
			b2 = b
			break
		}
	}
	rep := wire.Report{
		Races: []wire.ReportRace{
			{Addr: b1 << shadow.BlockShift, Tid: 1},
			{Addr: b2 << shadow.BlockShift, Tid: 2},
			{Addr: b1<<shadow.BlockShift + 5, Tid: 3},
		},
		Stats: wire.ReportStats{Races: 3},
	}
	out := s.dropMovedRaces(rep)
	if len(out.Races) != 1 || out.Races[0].Tid != 2 {
		t.Fatalf("dropMovedRaces kept %v, want only the race outside the moved slot", out.Races)
	}
	if out.Stats.Races != 1 {
		t.Fatalf("Stats.Races = %d, want 1", out.Stats.Races)
	}
}

func TestDialFailureIsMemberError(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	_, err := Dial(Options{
		Members: []string{addr, "127.0.0.1:1"},
		Hello:   wire.Hello{Workers: 1},
	})
	var me *MemberError
	if !errors.As(err, &me) {
		t.Fatalf("Dial error = %v (%T), want *MemberError", err, err)
	}
	if me.Addr != "127.0.0.1:1" {
		t.Errorf("MemberError.Addr = %s, want the unreachable member", me.Addr)
	}
}
