// Slot migration: moving one hash slot from its owner to another server
// mid-stream without dropping verdicts.
//
// The detector is stateful — a member's verdicts for a block depend on
// every access to that block plus the whole sync history — so moving a
// slot needs the target to reconstruct that history. The coordinator
// keeps an ordered journal of the stream's sync/heap broadcasts and
// access pieces (tagged with their slot) while a migration is scheduled.
// The move itself is:
//
//  1. Drain-to-watermark: Flush the current owner, blocking until it has
//     acknowledged every batch shipped so far. Its state for the slot is
//     now complete up to the watermark, so every verdict it has already
//     produced for the slot is also derivable from the journal prefix.
//  2. Fresh session on the target: dial it like any member (Hello/
//     HelloAck, its own codec and sequence space — the same resume
//     machinery an interrupted client uses, pointed at a new server).
//  3. Replay: feed the journal through the new session — sync events
//     in full, access pieces filtered to the moved slot — in original
//     stream order, so the target's clock replica and the slot's shadow
//     state converge to exactly the owner's.
//  4. Flip the ring: Move(slot, target) reroutes every future piece.
//     The old owner keeps its other slots and stays in the broadcast set.
//
// At Close the old owner's verdicts for the moved slot are dropped
// (dropMovedRaces): the target re-derived them from the replayed prefix
// and kept extending them, so the union stays exactly the single-process
// race set — no verdict is lost and none is duplicated.
//
// A dial failure aborts the migration harmlessly: the ring is not
// flipped, the owner keeps the slot, and the stream continues.
package cluster

import (
	"repro/internal/client"
	"repro/internal/event"
)

// Migration schedules a single slot move mid-stream.
type Migration struct {
	// Slot is the hash slot to move; -1 picks, at trigger time, the slot
	// of the most recent access piece (guaranteeing the moved slot has
	// traffic, which is what exercises the path).
	Slot int
	// To is the target server address. It may be an existing member (the
	// slot then runs on a second session of that server) or a fresh one.
	To string
	// AfterEvents triggers the migration once the router has observed
	// this many events.
	AfterEvents uint64
}

// jrec is one journaled record: slot < 0 marks a broadcast (sync/heap)
// event, otherwise the access piece's slot.
type jrec struct {
	rec  event.Rec
	slot int16
}

// record appends to the migration journal (no-op unless a migration is
// pending — the journal exists only to seed the migration target; a
// production deployment would source the replay from the durable trace
// store instead of coordinator memory).
func (s *Sink) record(slot int16, r event.Rec) {
	if s.mig == nil || s.migrated {
		return
	}
	s.journal = append(s.journal, jrec{rec: r, slot: slot})
}

// maybeMigrate runs the scheduled migration once the trigger is reached.
func (s *Sink) maybeMigrate() {
	if s.mig == nil || s.migrated || s.seq < s.mig.AfterEvents {
		return
	}
	slot := s.mig.Slot
	if slot < 0 {
		if s.lastSlot < 0 {
			return // no access traffic yet; keep waiting
		}
		slot = s.lastSlot
	}
	s.migrated = true
	from := s.ring.OwnerOfSlot(slot)
	// Drain the owner to its watermark. A flush failure means the member
	// is already lost (its client error is sticky and will surface as a
	// *MemberError at Close); migrating its slot would not rescue the
	// other slots it owns, so abort.
	if err := s.members[from].cl.Flush(); err != nil {
		s.logf("cluster: migration aborted, drain of %s failed: %v", s.members[from].addr, err)
		return
	}
	watermark := s.members[from].cl.LastAcked()
	cl, err := client.Dial(s.clientOptions(s.mig.To))
	if err != nil {
		s.logf("cluster: migration aborted, dial %s failed: %v", s.mig.To, err)
		return
	}
	replayed := 0
	for i := range s.journal {
		j := &s.journal[i]
		if j.slot < 0 || int(j.slot) == slot {
			event.ApplyRec(cl, &j.rec)
			replayed++
		}
	}
	s.members = append(s.members, &member{addr: s.mig.To, cl: cl})
	s.met.addMember(s.mig.To)
	s.met.members.Set(int64(len(s.members)))
	s.ring.Move(slot, len(s.members)-1)
	s.movedSlot, s.movedFrom = slot, from
	s.journal = nil
	s.met.migrations.Inc()
	s.logf("cluster: slot %d migrated %s -> %s at watermark %d (%d of %d journal records replayed)",
		slot, s.members[from].addr, s.mig.To, watermark, replayed, s.seq)
}
