package cluster

import "repro/internal/telemetry"

// metrics is the cluster instrument set; the zero value (all-nil) is the
// disabled set and every update is a no-op, matching the client and
// server conventions.
type metrics struct {
	reg        *telemetry.Registry
	members    *telemetry.Gauge
	broadcast  *telemetry.Counter
	migrations *telemetry.Counter
	mergeNS    *telemetry.Histogram
	// fanout is parallel to Sink.members: one labeled counter per member.
	fanout []*telemetry.Counter
}

func newMetrics(reg *telemetry.Registry, members []string) metrics {
	m := metrics{reg: reg}
	if reg != nil {
		m.members = reg.Gauge("cluster_members", "Members in the detection cluster (grows on migration).")
		m.broadcast = reg.Counter("cluster_broadcast_events_total", "Sync/heap events broadcast to every member.")
		m.migrations = reg.Counter("cluster_migrations_total", "Slot migrations completed.")
		m.mergeNS = reg.Histogram("cluster_merge_ns", "Per-session report merge latency at close.")
	}
	for _, addr := range members {
		m.addMember(addr)
	}
	m.members.Set(int64(len(members)))
	return m
}

// addMember registers the fan-out counter for one more member (no-op
// registry-wise when disabled; the slot keeps the slices parallel).
func (m *metrics) addMember(addr string) {
	var c *telemetry.Counter
	if m.reg != nil {
		c = m.reg.Counter("cluster_fanout_events_total",
			"Access pieces routed to a member, by member address.",
			telemetry.Labels{"member": addr})
	}
	m.fanout = append(m.fanout, c)
}
