// Hash-slot ring: the cluster's ownership map from shadow blocks to
// members. Blocks hash into a fixed number of slots (splitmix64-mixed so
// adjacent blocks spread across the fleet) and each slot is owned by one
// member. The indirection through slots — rather than hashing blocks to
// members directly — is what makes migration a single-word update: moving
// a slot reassigns every block in it atomically, without rehashing the
// address space or touching the other members' traffic.
package cluster

// Slots is the number of hash slots the block space is divided into.
// 64 slots over at most a handful of members keeps the per-member load
// imbalance under a few percent while keeping the ring a single cache
// line of ownership state.
const Slots = 64

// Ring maps shadow-block ids to member indices through hash slots.
type Ring struct {
	owner [Slots]int
}

// NewRing distributes the slots round-robin across n members.
func NewRing(n int) *Ring {
	r := &Ring{}
	for s := range r.owner {
		r.owner[s] = s % n
	}
	return r
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection, so
// sequential block ids (the common case: a program sweeping an array)
// spread uniformly over the slots instead of striding through them.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Slot returns the hash slot owning shadow block b.
func (r *Ring) Slot(b uint64) int { return int(mix64(b) % Slots) }

// Owner returns the member index owning shadow block b.
func (r *Ring) Owner(b uint64) int { return r.owner[r.Slot(b)] }

// OwnerOfSlot returns the member index owning slot s.
func (r *Ring) OwnerOfSlot(s int) int { return r.owner[s] }

// Move reassigns slot s to member m. Routing of every block hashing into
// s switches atomically; all other slots are untouched.
func (r *Ring) Move(s, m int) { r.owner[s] = m }

// Counts returns how many slots each of n members owns.
func (r *Ring) Counts(n int) []int {
	c := make([]int, n)
	for _, m := range r.owner {
		c[m]++
	}
	return c
}
