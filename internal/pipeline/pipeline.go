// Package pipeline is the sharded parallel detection engine: it decouples
// event generation (the execution engine, which is inherently serial) from
// race analysis (which parallelizes by address) so detection runs at the
// throughput of N cores instead of one.
//
// # Architecture
//
// The Pipeline is an event.Sink. The execution thread encodes every
// instrumentation event into fixed-size records (internal/event's batch
// encoding, sync.Pool-recycled) and routes them:
//
//   - Memory accesses go to exactly one worker, selected by shadow block
//     number (addr >> shadow.BlockShift mod Workers). Accesses whose
//     footprint crosses a 128-byte block boundary are split at the
//     boundary, so a shadow block — and therefore any shared clock, which
//     never spans blocks (dyngran.canMerge) — lives on exactly one shard.
//   - Synchronization events (acquire/release, fork/join, barriers) and
//     heap events are sequence-numbered and broadcast to every worker in
//     stream order.
//
// Each worker owns a shard-constructed detector.Detector holding the
// shadow planes and epoch bitmaps of its block subset plus a full replica
// of the per-thread/lock/barrier vector clocks (rebuilt from the broadcast
// sync stream). Every worker therefore observes the identical
// happens-before order, and per-location analysis is the same FastTrack
// computation the serial detector performs — sharding changes where a
// location is analyzed, never how.
//
// # Precision
//
// Per-address shadow state is independent between sync points: the FastTrack
// checks for a location consult only that location's read/write history and
// the accessing thread's clock. Dynamic-granularity sharing is confined to
// one 128-address block by construction (the paper's Figure 4 indexing
// arrays bound sharing at one hash entry), so block-sharded workers make
// exactly the sharing decisions the serial detector makes. The only
// semantic difference is that a single access whose footprint straddles a
// block boundary is analyzed as two block-local accesses; the race/equivalence
// test asserts that the reported race set is identical to serial mode for
// every workload and granularity.
//
// # Determinism
//
// Routing is a pure function of the event stream, and each worker consumes
// its FIFO in order, so results are independent of worker scheduling. Race
// reports are merged by the global sequence number of the event that
// completed the race (ties broken by address), making the merged report
// deterministic for any worker count.
package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/shadow"
	"repro/internal/telemetry"
	"repro/internal/vc"
)

// Options configure a pipeline.
type Options struct {
	// Workers is the number of detection workers (≥ 1).
	Workers int
	// Detector is the FastTrack configuration applied to every worker; the
	// pipeline fills in the Shard/Shards fields.
	Detector detector.Config
	// ChannelDepth is the per-worker batch queue depth (0 = default 8;
	// rounded up to a power of two for ring dispatch). Deeper queues
	// absorb bursts; the queue bounds memory because batches are
	// fixed-size.
	ChannelDepth int
	// Dispatch selects the router→worker transport: "" or "ring" for the
	// lock-free SPSC ring (default), "chan" for the buffered-channel
	// baseline the dispatch benchmarks compare against.
	Dispatch string
	// BatchPolicy, when non-nil, adapts the router's batch flush
	// threshold to worker-queue back-pressure (see event.BatchPolicy):
	// small batches while workers are starved, full batches while they
	// are behind. Nil ships fixed event.DefaultBatchSize batches.
	// Batch sizing never affects results — reports merge by sequence
	// number — only the latency/throughput trade.
	BatchPolicy *event.BatchPolicy
	// Backpressure, when non-nil, receives the same ship-time
	// queue-occupancy observations as BatchPolicy — the hook the budgeted
	// sampling lane's feedback controller (sampling.Controller) plugs
	// into. Independent of BatchPolicy: either, both or neither may be
	// set.
	Backpressure event.BackpressureObserver
	// Telemetry, when non-nil, receives the pipeline instrument families:
	// per-shard applied-event counters (pipeline_shard_events_total), batch
	// dispatch counts and stall/apply latency histograms, a live
	// queue-depth gauge and a shard-imbalance gauge. Nil disables
	// instrumentation with at most one predictable branch per batch.
	// Registration is idempotent, but the gauge funcs bind to the first
	// pipeline registered on a given registry view — give each concurrent
	// pipeline its own labeled view (Registry.With).
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, receives shard-apply spans for traced batches
	// (see SetTrace) and enables trace exemplars on the dispatch-wait and
	// apply-latency histograms. Nil disables span recording entirely.
	Tracer *telemetry.Tracer
}

// Result is the merged outcome of a pipeline run.
type Result struct {
	// Races are the merged race reports ordered by the sequence number of
	// the completing event (the deterministic analogue of serial detection
	// order).
	Races []detector.Race
	// Stats aggregates the per-worker detector statistics. Accesses and
	// NonShared are counted at the router (once per original access);
	// memory components are sums of per-worker peaks, which bounds — and
	// for component peaks slightly overstates — the true simultaneous
	// total.
	Stats detector.Stats
	// Events is the total number of events routed.
	Events uint64
	// Provenance is index-aligned with Races when the detector ran with
	// Config.Provenance (nil otherwise): Provenance[i] explains Races[i].
	Provenance []detector.Provenance
}

// seqRace tags a reported race with its completing event's sequence number
// (and, when the flight recorder is on, its provenance record).
type seqRace struct {
	seq  uint64
	race detector.Race
	prov *detector.Provenance
}

type worker struct {
	q     batchQueue
	det   *detector.Detector
	races []seqRace
	// provOn mirrors Config.Provenance: the worker stamps the router's
	// global sequence number into the flight recorder before each record so
	// provenance seq fields agree across shards.
	provOn bool
	shard  int

	// events counts records applied by this shard; applyNS observes
	// per-batch apply latency. Both are nil (no-op) when telemetry is
	// disabled.
	events  *telemetry.Counter
	applyNS *telemetry.Histogram
	// tracer receives one shard.apply span per traced batch (nil = off).
	tracer *telemetry.Tracer
}

// run drains the worker's batch queue, applying each record to the shard
// detector and tagging any race the record completed with its sequence
// number. It owns det exclusively; the queue's publication ordering (ring
// cursor release/acquire, or the channel hand-off) is the memory fence
// between router and worker.
func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		it, ok := w.q.recv()
		if !ok {
			return
		}
		var trace, span uint64
		var n int
		if it.c != nil {
			trace, span, n = it.c.Trace, it.c.Span, it.c.Len()
		} else {
			trace, span, n = it.b.Trace, it.b.Span, len(it.b.Recs)
		}
		var start time.Time
		if w.applyNS != nil || (w.tracer != nil && trace != 0) {
			start = time.Now()
		}
		w.events.Add(uint64(n))
		if it.c != nil {
			w.applyCols(it.c)
			event.PutCols(it.c)
		} else {
			w.applyRecs(it.b)
			event.PutBatch(it.b)
		}
		if !start.IsZero() {
			elapsed := time.Since(start)
			if elapsed < 0 {
				elapsed = 0
			}
			w.applyNS.ObserveTraced(uint64(elapsed), trace)
			if w.tracer != nil && trace != 0 {
				w.tracer.RecordSpan(telemetry.SpanRecord{
					Trace: trace, Span: telemetry.NewTraceID(), Parent: span,
					Name: "shard.apply", Process: "pipeline", Dur: int64(elapsed),
					Args: map[string]any{"shard": w.shard, "recs": n},
				})
			}
		}
	}
}

// applyRecs replays a row-major batch record-at-a-time.
func (w *worker) applyRecs(b *event.Batch) {
	for i := range b.Recs {
		r := &b.Recs[i]
		if w.provOn {
			w.det.SetEventSeq(r.Seq)
		}
		before := len(w.det.Races())
		event.ApplyRec(w.det, r)
		w.tagRaces(before, r.Seq)
	}
}

// applyCols replays a columnar batch with run-length collapse: each
// maximal run of identical (tid, op, addr, size) accesses costs one full
// detector application plus a RepeatAccess of the remainder. The router
// already filtered non-shared accesses, so every access here is shared.
// A collapsed repeat can never complete a race — the first application
// marked the epoch bitmap, so repeats take the same-epoch fast path —
// which is why checking for new races only after the run's first record
// loses nothing.
func (w *worker) applyCols(c *event.Cols) {
	n := c.Len()
	for i := 0; i < n; {
		op := c.Ops[i]
		runEnd := i + 1
		if op == event.OpRead || op == event.OpWrite {
			tid, addr, size := c.Tids[i], c.Addrs[i], c.Sizes[i]
			for runEnd < n && c.Ops[runEnd] == op && c.Tids[runEnd] == tid &&
				c.Addrs[runEnd] == addr && c.Sizes[runEnd] == size {
				runEnd++
			}
		}
		if w.provOn {
			w.det.SetEventSeq(c.Seqs[i])
		}
		before := len(w.det.Races())
		switch op {
		case event.OpRead:
			w.det.Read(c.Tids[i], c.Addrs[i], c.Sizes[i], c.PCs[i])
		case event.OpWrite:
			w.det.Write(c.Tids[i], c.Addrs[i], c.Sizes[i], c.PCs[i])
		default:
			r := c.Rec(i)
			event.ApplyRec(w.det, &r)
		}
		w.tagRaces(before, c.Seqs[i])
		if k := runEnd - i - 1; k > 0 {
			if w.provOn {
				w.det.SetEventSeq(c.Seqs[runEnd-1])
			}
			w.det.RepeatAccess(uint64(k))
		}
		i = runEnd
	}
}

// tagRaces records any races reported since before, tagged with the
// completing event's sequence number.
func (w *worker) tagRaces(before int, seq uint64) {
	after := w.det.Races()
	if len(after) <= before {
		return
	}
	provs := w.det.Provs()
	for k, rc := range after[before:] {
		sr := seqRace{seq: seq, race: rc}
		if len(provs) == len(after) {
			p := provs[before+k]
			sr.prov = &p
		}
		w.races = append(w.races, sr)
	}
}

// Pipeline routes an instrumentation event stream to sharded detection
// workers. It implements event.Sink; all Sink methods must be called from
// the (single) execution thread. Call Wait after the run to drain the
// workers and obtain the merged Result.
type Pipeline struct {
	workers []*worker
	pending []*event.Batch // per-worker record batch being filled (Sink lane)
	// pendingCols is the per-worker columnar batch being filled (the
	// ApplyCols lane). Pushing to one lane ships the other lane's pending
	// first, so at most one lane has a pending per worker at any time and
	// stream order survives lane interleaving.
	pendingCols []*event.Cols
	policy      *event.BatchPolicy
	obs         event.BackpressureObserver
	wg          sync.WaitGroup

	seq       uint64
	events    uint64
	accesses  uint64
	nonshared uint64

	// batches counts shipped batches; dispatchNS observes the router's
	// blocking time per ship (non-zero when worker queues are full — the
	// back-pressure signal). Nil when telemetry is disabled.
	batches    *telemetry.Counter
	dispatchNS *telemetry.Histogram

	// trace/span are the current upstream span context (see SetTrace):
	// shipped batches are stamped with it so worker apply spans parent
	// correctly, and it exemplifies the dispatch-wait histogram.
	trace uint64
	span  uint64

	done   bool
	result Result
}

// SetTrace sets the span context stamped onto subsequently shipped batches
// (0, 0 clears it). The remote-detection server calls it before replaying
// each traced client batch into the pipeline; local runs may ignore it.
// Must be called from the execution thread, like every Sink method.
func (p *Pipeline) SetTrace(trace, span uint64) { p.trace, p.span = trace, span }

// New starts a pipeline with opts.Workers detection workers.
func New(opts Options) *Pipeline {
	n := opts.Workers
	if n < 1 {
		n = 1
	}
	depth := opts.ChannelDepth
	if depth <= 0 {
		depth = 8
	}
	p := &Pipeline{
		workers:     make([]*worker, n),
		pending:     make([]*event.Batch, n),
		pendingCols: make([]*event.Cols, n),
		policy:      opts.BatchPolicy,
		obs:         opts.Backpressure,
	}
	reg := opts.Telemetry
	var prodParks, consParks *telemetry.Counter
	if reg != nil {
		p.batches = reg.Counter("pipeline_batches_total", "Event batches shipped to workers.")
		p.dispatchNS = reg.Histogram("pipeline_dispatch_wait_ns", "Router blocking time per batch ship (back-pressure).")
		prodParks = reg.Counter("pipeline_ring_parks_total", "Ring park events by side.", telemetry.Labels{"side": "producer"})
		consParks = reg.Counter("pipeline_ring_parks_total", "Ring park events by side.", telemetry.Labels{"side": "consumer"})
	}
	newQueue := func() batchQueue { return newRing(depth, prodParks, consParks) }
	if opts.Dispatch == "chan" {
		newQueue = func() batchQueue { return newChanQueue(depth) }
	}
	cfg := opts.Detector
	if cfg.Metrics == nil && reg != nil {
		// One shared instrument set: all detector instruments are atomic,
		// so sharded increments sum exactly like the serial run's.
		cfg.Metrics = detector.NewMetrics(reg)
	}
	for i := range p.workers {
		wcfg := cfg
		if n > 1 {
			wcfg.Shards, wcfg.Shard = n, i
		}
		w := &worker{
			q:      newQueue(),
			det:    detector.New(wcfg),
			provOn: wcfg.Provenance,
			shard:  i,
			tracer: opts.Tracer,
		}
		if reg != nil {
			shard := telemetry.Labels{"shard": fmt.Sprint(i)}
			w.events = reg.Counter("pipeline_shard_events_total", "Records applied, per detection shard.", shard)
			w.applyNS = reg.Histogram("pipeline_batch_apply_ns", "Per-batch detection apply latency.", shard)
		}
		p.workers[i] = w
		p.wg.Add(1)
		go w.run(&p.wg)
	}
	if reg != nil {
		reg.GaugeFunc("pipeline_queue_depth", "Batches queued to workers, not yet picked up.",
			func() float64 { return float64(p.QueueDepth()) })
		reg.GaugeFunc("pipeline_ring_occupancy", "Mean per-worker queue occupancy as a fraction of capacity (0 = drained, 1 = full).",
			p.ringOccupancy)
		reg.GaugeFunc("pipeline_shard_imbalance", "Max/mean ratio of per-shard applied events (1 = perfectly balanced).",
			p.shardImbalance)
		reg.GaugeFunc("pipeline_batch_target", "Adaptive batch flush threshold in records (DefaultBatchSize when fixed).",
			func() float64 { return float64(p.policy.Target()) })
	}
	return p
}

// ringOccupancy returns the mean occupied fraction of the worker queues —
// the producer-side back-pressure signal, as a gauge.
func (p *Pipeline) ringOccupancy() float64 {
	var frac float64
	for _, w := range p.workers {
		if c := w.q.capacity(); c > 0 {
			frac += float64(w.q.len()) / float64(c)
		}
	}
	return frac / float64(len(p.workers))
}

// shardImbalance returns max/mean of the per-shard applied-event counts
// (0 before any events; 1 means perfect balance). Only meaningful when
// telemetry is enabled — the per-shard counters feed it.
func (p *Pipeline) shardImbalance() float64 {
	var max, sum uint64
	for _, w := range p.workers {
		v := w.events.Load()
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(p.workers))
	return float64(max) / mean
}

// ship sends a full or flushed batch to worker w, observing the router's
// blocking time when instrumented and feeding the adaptive policy the
// queue occupancy it saw at ship time.
func (p *Pipeline) ship(w int, it item) {
	if it.b != nil {
		it.b.Trace, it.b.Span = p.trace, p.span
	} else {
		it.c.Trace, it.c.Span = p.trace, p.span
	}
	q := p.workers[w].q
	if p.policy != nil {
		p.policy.ObserveQueue(q.len(), q.capacity())
	}
	if p.obs != nil {
		p.obs.ObserveQueue(q.len(), q.capacity())
	}
	if p.dispatchNS == nil {
		q.send(it)
		return
	}
	start := time.Now()
	q.send(it)
	elapsed := time.Since(start)
	if elapsed < 0 {
		elapsed = 0
	}
	p.dispatchNS.ObserveTraced(uint64(elapsed), p.trace)
	p.batches.Inc()
}

// Workers returns the worker count.
func (p *Pipeline) Workers() int { return len(p.workers) }

// QueueDepth returns the number of batches currently queued to workers
// (not yet picked up). It is safe to call concurrently with routing; the
// value is a snapshot, exported by the remote-detection server as its
// per-session queue-depth gauge.
func (p *Pipeline) QueueDepth() int {
	depth := 0
	for _, w := range p.workers {
		depth += w.q.len()
	}
	return depth
}

// Occupancy returns the mean occupied fraction of the worker queues in
// [0,1] — the back-pressure watermark the remote-detection server's load
// shedder compares against. Safe to call concurrently with routing.
func (p *Pipeline) Occupancy() float64 { return p.ringOccupancy() }

// push appends a record to worker w's pending batch, shipping the batch
// when it reaches the flush threshold (the adaptive policy's current
// target, or full transport capacity when no policy is set).
func (p *Pipeline) push(w int, r event.Rec) {
	if c := p.pendingCols[w]; c != nil {
		// Lane switch: ship the columnar pending first so the worker
		// observes the stream in routing order.
		p.ship(w, item{c: c})
		p.pendingCols[w] = nil
	}
	b := p.pending[w]
	if b == nil {
		b = event.GetBatch()
		p.pending[w] = b
	}
	b.Append(r)
	if p.policy == nil {
		if b.Full() {
			p.ship(w, item{b: b})
			p.pending[w] = nil
		}
		return
	}
	if len(b.Recs) >= p.policy.Target() {
		p.ship(w, item{b: b})
		p.pending[w] = nil
	}
}

// pushCols appends a record to worker w's pending columnar batch —
// push's twin for the ApplyCols lane.
func (p *Pipeline) pushCols(w int, r event.Rec) {
	if b := p.pending[w]; b != nil {
		p.ship(w, item{b: b})
		p.pending[w] = nil
	}
	c := p.pendingCols[w]
	if c == nil {
		c = event.GetCols()
		p.pendingCols[w] = c
	}
	c.Append(r)
	threshold := event.DefaultBatchSize
	if p.policy != nil {
		threshold = p.policy.Target()
	}
	if c.Len() >= threshold {
		p.ship(w, item{c: c})
		p.pendingCols[w] = nil
	}
}

// access routes one memory access, splitting its footprint at shadow-block
// boundaries so each piece lands on the worker owning its block.
func (p *Pipeline) access(op event.Op, tid vc.TID, addr uint64, size uint32, pc event.PC) {
	p.seq++
	p.events++
	if event.NonShared(addr) {
		p.nonshared++
		return // the serial detector's first-line filter, hoisted to the router
	}
	p.accesses++
	n := uint64(len(p.workers))
	lo, hi := addr, addr+uint64(size)
	for lo < hi {
		end := (lo | (shadow.BlockSize - 1)) + 1
		if end > hi {
			end = hi
		}
		w := int(lo >> shadow.BlockShift % n)
		p.push(w, event.Rec{
			Op: op, Tid: tid, Addr: lo, Size: uint32(end - lo), PC: pc, Seq: p.seq,
		})
		lo = end
	}
}

// broadcast sends one sequence-numbered record to every worker, in stream
// order relative to each worker's accesses.
func (p *Pipeline) broadcast(r event.Rec) {
	p.seq++
	p.events++
	r.Seq = p.seq
	for w := range p.workers {
		p.push(w, r)
	}
}

// ApplyCols implements event.BatchSink: it routes a decoded columnar
// batch straight off its columns — shard selection reads only the addr
// column, and routed segments accumulate in per-worker columnar pendings
// — so v2 wire payloads flow from decode to the detection workers without
// ever materializing per-record event.Rec structs. Routing semantics are
// identical to the Sink methods: accesses split at shadow-block
// boundaries to the owning worker, everything else is broadcast in
// stream order. Must be called from the execution thread; the caller
// keeps ownership of c.
func (p *Pipeline) ApplyCols(c *event.Cols) {
	n := c.Len()
	nw := uint64(len(p.workers))
	for i := 0; i < n; i++ {
		op := c.Ops[i]
		if op != event.OpRead && op != event.OpWrite {
			p.broadcastCols(c, i)
			continue
		}
		p.seq++
		p.events++
		addr := c.Addrs[i]
		if event.NonShared(addr) {
			p.nonshared++
			continue
		}
		p.accesses++
		tid, pc := c.Tids[i], c.PCs[i]
		lo, hi := addr, addr+uint64(c.Sizes[i])
		for lo < hi {
			end := (lo | (shadow.BlockSize - 1)) + 1
			if end > hi {
				end = hi
			}
			w := int(lo >> shadow.BlockShift % nw)
			p.pushCols(w, event.Rec{
				Op: op, Tid: tid, Addr: lo, Size: uint32(end - lo), PC: pc, Seq: p.seq,
			})
			lo = end
		}
	}
}

// broadcastCols re-sequences record i of a columnar batch and pushes it
// to every worker's columnar pending.
func (p *Pipeline) broadcastCols(c *event.Cols, i int) {
	p.seq++
	p.events++
	r := c.Rec(i)
	r.Seq = p.seq
	for w := range p.workers {
		p.pushCols(w, r)
	}
}

// ---- event.Sink ----

// Read routes a shared read to its block's worker.
func (p *Pipeline) Read(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	p.access(event.OpRead, tid, addr, size, pc)
}

// Write routes a shared write to its block's worker.
func (p *Pipeline) Write(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	p.access(event.OpWrite, tid, addr, size, pc)
}

// Acquire broadcasts a lock acquisition to every clock replica.
func (p *Pipeline) Acquire(tid vc.TID, l event.LockID) {
	p.broadcast(event.Rec{Op: event.OpAcquire, Tid: tid, Aux: uint64(l)})
}

// Release broadcasts a lock release (a new epoch for tid on every shard).
func (p *Pipeline) Release(tid vc.TID, l event.LockID) {
	p.broadcast(event.Rec{Op: event.OpRelease, Tid: tid, Aux: uint64(l)})
}

// AcquireShared broadcasts a rwlock read-lock.
func (p *Pipeline) AcquireShared(tid vc.TID, l event.LockID) {
	p.broadcast(event.Rec{Op: event.OpAcquireShared, Tid: tid, Aux: uint64(l)})
}

// ReleaseShared broadcasts a rwlock read-unlock.
func (p *Pipeline) ReleaseShared(tid vc.TID, l event.LockID) {
	p.broadcast(event.Rec{Op: event.OpReleaseShared, Tid: tid, Aux: uint64(l)})
}

// Fork broadcasts thread creation.
func (p *Pipeline) Fork(parent, child vc.TID) {
	p.broadcast(event.Rec{Op: event.OpFork, Tid: parent, Aux: uint64(child)})
}

// Join broadcasts thread join.
func (p *Pipeline) Join(parent, child vc.TID) {
	p.broadcast(event.Rec{Op: event.OpJoin, Tid: parent, Aux: uint64(child)})
}

// BarrierArrive broadcasts a barrier arrival.
func (p *Pipeline) BarrierArrive(tid vc.TID, b event.BarrierID) {
	p.broadcast(event.Rec{Op: event.OpBarrierArrive, Tid: tid, Aux: uint64(b)})
}

// BarrierDepart broadcasts a barrier departure.
func (p *Pipeline) BarrierDepart(tid vc.TID, b event.BarrierID) {
	p.broadcast(event.Rec{Op: event.OpBarrierDepart, Tid: tid, Aux: uint64(b)})
}

// ChanSend broadcasts a channel send (Go-native sync; every clock replica
// pairs sends and receives by per-channel FIFO position, so broadcast
// ordering is exactly what keeps the pairing identical across shards).
func (p *Pipeline) ChanSend(tid vc.TID, ch event.ChanID, capacity int) {
	p.broadcast(event.Rec{Op: event.OpChanSend, Tid: tid, Aux: uint64(uint32(ch)), Size: uint32(capacity)})
}

// ChanRecv broadcasts a channel receive.
func (p *Pipeline) ChanRecv(tid vc.TID, ch event.ChanID, capacity int) {
	p.broadcast(event.Rec{Op: event.OpChanRecv, Tid: tid, Aux: uint64(uint32(ch)), Size: uint32(capacity)})
}

// ChanAck broadcasts an unbuffered send completion.
func (p *Pipeline) ChanAck(tid vc.TID, ch event.ChanID, capacity int) {
	p.broadcast(event.Rec{Op: event.OpChanAck, Tid: tid, Aux: uint64(uint32(ch)), Size: uint32(capacity)})
}

// WGAdd broadcasts a WaitGroup counter increment.
func (p *Pipeline) WGAdd(tid vc.TID, wg event.WGID, delta int) {
	p.broadcast(event.Rec{Op: event.OpWGAdd, Tid: tid, Aux: uint64(uint32(wg)), Size: uint32(delta)})
}

// WGDone broadcasts a WaitGroup decrement (a publication point for tid).
func (p *Pipeline) WGDone(tid vc.TID, wg event.WGID) {
	p.broadcast(event.Rec{Op: event.OpWGDone, Tid: tid, Aux: uint64(uint32(wg))})
}

// WGWait broadcasts a WaitGroup wait completion.
func (p *Pipeline) WGWait(tid vc.TID, wg event.WGID) {
	p.broadcast(event.Rec{Op: event.OpWGWait, Tid: tid, Aux: uint64(uint32(wg))})
}

// Malloc broadcasts heap allocation (a no-op for the detector, but kept in
// stream order so every replica sees the same event sequence).
func (p *Pipeline) Malloc(tid vc.TID, addr uint64, size uint64) {
	p.broadcast(event.Rec{Op: event.OpMalloc, Tid: tid, Addr: addr, Aux: size})
}

// Free broadcasts deallocation; each worker drops only its own blocks'
// shadow state.
func (p *Pipeline) Free(tid vc.TID, addr uint64, size uint64) {
	p.broadcast(event.Rec{Op: event.OpFree, Tid: tid, Addr: addr, Aux: size})
}

// Wait flushes pending batches, waits for every worker to drain, and merges
// the per-worker reports into a deterministic Result. It is idempotent;
// the Pipeline must not receive further events afterwards.
func (p *Pipeline) Wait() Result {
	if p.done {
		return p.result
	}
	p.done = true
	// At most one lane has a pending per worker (push/pushCols cross-ship),
	// so flushing both here cannot reorder the stream.
	for w, b := range p.pending {
		if b != nil && len(b.Recs) > 0 {
			p.ship(w, item{b: b})
		}
		p.pending[w] = nil
	}
	for w, c := range p.pendingCols {
		if c != nil && c.Len() > 0 {
			p.ship(w, item{c: c})
		}
		p.pendingCols[w] = nil
	}
	for _, w := range p.workers {
		w.q.close()
	}
	p.wg.Wait()
	p.result = p.merge()
	return p.result
}

// merge combines worker outcomes: races ordered by completing-event
// sequence, statistics summed, with router-side counts (one per original
// access) replacing the per-shard access tallies.
func (p *Pipeline) merge() Result {
	var tagged []seqRace
	var st detector.Stats
	for i, w := range p.workers {
		tagged = append(tagged, w.races...)
		ws := w.det.Stats()
		if i == 0 {
			// Sync events are broadcast, so every shard's clock replica is
			// identical; take the clock-layer statistics from one shard
			// instead of summing N copies.
			st.ClockStructuredThreads = ws.ClockStructuredThreads
			st.ClockDemotions = ws.ClockDemotions
			st.ClockCompactBytes = ws.ClockCompactBytes
			st.ClockCompactPeakBytes = ws.ClockCompactPeakBytes
			st.ClockGeneralBytes = ws.ClockGeneralBytes
			st.ClockGeneralPeakBytes = ws.ClockGeneralPeakBytes
		}
		st.SameEpoch += ws.SameEpoch
		st.HashPeakBytes += ws.HashPeakBytes
		st.VCPeakBytes += ws.VCPeakBytes
		st.BitmapPeakBytes += ws.BitmapPeakBytes
		st.TotalPeakBytes += ws.TotalPeakBytes
		st.Races += ws.Races
		st.Suppressed += ws.Suppressed
		st.SharingComparisons += ws.SharingComparisons
		st.Plane.NodesCur += ws.Plane.NodesCur
		st.Plane.NodesPeak += ws.Plane.NodesPeak
		st.Plane.VCBytesCur += ws.Plane.VCBytesCur
		st.Plane.VCBytesPeak += ws.Plane.VCBytesPeak
		st.Plane.NodeAllocs += ws.Plane.NodeAllocs
		st.Plane.NodeRecycles += ws.Plane.NodeRecycles
		st.Plane.LocCreations += ws.Plane.LocCreations
		st.VCPoolHits += ws.VCPoolHits
		st.VCPoolMisses += ws.VCPoolMisses
		st.VCInterns += ws.VCInterns
		st.Plane.LiveLocs += ws.Plane.LiveLocs
		st.Plane.Merges += ws.Plane.Merges
		st.Plane.Splits += ws.Plane.Splits
		st.Plane.Races += ws.Plane.Races
		// Sharing ratio: weight each shard's peak-time ratio by its peak
		// node count (the serial statistic is LiveLocs/Nodes at the peak).
		if ws.Plane.NodesPeak > 0 {
			st.Plane.AvgSharingAtPeak += ws.Plane.AvgSharing() * float64(ws.Plane.NodesPeak)
		}
	}
	if st.Plane.NodesPeak > 0 {
		st.Plane.AvgSharingAtPeak /= float64(st.Plane.NodesPeak)
	}
	st.Accesses = p.accesses
	st.NonShared = p.nonshared

	sort.Slice(tagged, func(i, j int) bool {
		if tagged[i].seq != tagged[j].seq {
			return tagged[i].seq < tagged[j].seq
		}
		return tagged[i].race.Addr < tagged[j].race.Addr
	})
	races := make([]detector.Race, len(tagged))
	var provs []detector.Provenance
	for i, t := range tagged {
		races[i] = t.race
		if t.prov != nil {
			if provs == nil {
				provs = make([]detector.Provenance, len(tagged))
			}
			provs[i] = *t.prov
		}
	}
	return Result{Races: races, Stats: st, Events: p.events, Provenance: provs}
}
