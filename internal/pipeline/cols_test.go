package pipeline

import (
	"reflect"
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/sim"
	"repro/workloads"
)

// captureRecs runs prog once and captures its full event stream as records.
func captureRecs(t *testing.T, prog sim.Program, seed int64) []event.Rec {
	t.Helper()
	var recs []event.Rec
	enc := &event.Encoder{Flush: func(b *event.Batch) {
		recs = append(recs, b.Recs...)
		event.PutBatch(b)
	}}
	sim.Run(prog, enc, sim.Options{Seed: seed})
	enc.Close()
	return recs
}

// TestApplyColsMatchesSink feeds one captured event stream into the
// pipeline both ways — record-at-a-time through the Sink interface and in
// columnar batches through ApplyCols — and requires identical results:
// same race set, same access statistics, same event count. The columnar
// ingress (block-split routing over the addr column, run-collapsed worker
// apply) is a performance seam, never a semantic one.
func TestApplyColsMatchesSink(t *testing.T) {
	for _, name := range []string{"streamcluster", "canneal"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		recs := captureRecs(t, spec.Program(), 42)
		for _, g := range []detector.Granularity{detector.Byte, detector.Word, detector.Dynamic} {
			cfg := detector.Config{Granularity: g}

			ref := New(Options{Workers: 3, Detector: cfg})
			for i := range recs {
				event.ApplyRec(ref, &recs[i])
			}
			refRes := ref.Wait()

			col := New(Options{Workers: 3, Detector: cfg})
			for lo := 0; lo < len(recs); lo += 512 {
				hi := lo + 512
				if hi > len(recs) {
					hi = len(recs)
				}
				c := event.GetCols()
				for _, r := range recs[lo:hi] {
					c.Append(r)
				}
				col.ApplyCols(c)
				event.PutCols(c)
			}
			colRes := col.Wait()

			if want, got := normalize(refRes.Races), normalize(colRes.Races); !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: race sets differ\nsink: %v\ncols: %v", name, g, want, got)
			}
			if refRes.Stats.Accesses != colRes.Stats.Accesses ||
				refRes.Stats.SameEpoch != colRes.Stats.SameEpoch ||
				refRes.Stats.NonShared != colRes.Stats.NonShared {
				t.Errorf("%s/%s: stats differ: sink acc=%d same=%d ns=%d, cols acc=%d same=%d ns=%d",
					name, g, refRes.Stats.Accesses, refRes.Stats.SameEpoch, refRes.Stats.NonShared,
					colRes.Stats.Accesses, colRes.Stats.SameEpoch, colRes.Stats.NonShared)
			}
			if refRes.Events != colRes.Events {
				t.Errorf("%s/%s: event counts differ: %d vs %d", name, g, refRes.Events, colRes.Events)
			}
		}
	}
}
