package pipeline

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/shadow"
	"repro/internal/sim"
	"repro/internal/vc"
	"repro/workloads"
)

// normalize sorts races by every field so reports from differently-ordered
// detection (serial stream order vs merged shard order) compare equal.
func normalize(rs []detector.Race) []detector.Race {
	out := append([]detector.Race(nil), rs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Addr != b.Addr:
			return a.Addr < b.Addr
		case a.Kind != b.Kind:
			return a.Kind < b.Kind
		case a.Tid != b.Tid:
			return a.Tid < b.Tid
		case a.PrevTid != b.PrevTid:
			return a.PrevTid < b.PrevTid
		case a.PC != b.PC:
			return a.PC < b.PC
		case a.PrevPC != b.PrevPC:
			return a.PrevPC < b.PrevPC
		default:
			return a.Size < b.Size
		}
	})
	return out
}

// runSerial executes prog against a plain serial detector.
func runSerial(prog sim.Program, cfg detector.Config, seed int64) (*detector.Detector, sim.Stats) {
	d := detector.New(cfg)
	st := sim.Run(prog, d, sim.Options{Seed: seed})
	return d, st
}

// runPipeline executes prog against a pipeline with the given worker count.
func runPipeline(prog sim.Program, cfg detector.Config, workers int, seed int64) (Result, sim.Stats) {
	p := New(Options{Workers: workers, Detector: cfg})
	st := sim.Run(prog, p, sim.Options{Seed: seed})
	return p.Wait(), st
}

// TestPipelineMatchesSerial checks that the sharded pipeline reports the
// same race set and the same access statistics as the serial detector for a
// couple of real workloads at every granularity.
func TestPipelineMatchesSerial(t *testing.T) {
	grans := []detector.Granularity{detector.Byte, detector.Word, detector.Dynamic}
	for _, name := range []string{"streamcluster", "pbzip2"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range grans {
			cfg := detector.Config{Granularity: g}
			sd, sst := runSerial(spec.Program(), cfg, 42)
			res, pst := runPipeline(spec.Program(), cfg, 3, 42)

			if sst.Events != pst.Events {
				t.Fatalf("%s/%s: engine produced different event counts (%d vs %d)",
					name, g, sst.Events, pst.Events)
			}
			want, got := normalize(sd.Races()), normalize(res.Races)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: race sets differ\nserial:   %v\npipeline: %v",
					name, g, want, got)
			}
			if sstats := sd.Stats(); res.Stats.Accesses != sstats.Accesses ||
				res.Stats.NonShared != sstats.NonShared {
				t.Errorf("%s/%s: access accounting differs: pipeline %d/%d, serial %d/%d",
					name, g, res.Stats.Accesses, res.Stats.NonShared,
					sstats.Accesses, sstats.NonShared)
			}
			if res.Stats.Races != uint64(len(res.Races)) {
				t.Errorf("%s/%s: Stats.Races = %d, len(Races) = %d",
					name, g, res.Stats.Races, len(res.Races))
			}
		}
	}
}

// TestWorkerCountIndependence checks that the merged report is identical —
// including order, thanks to the sequence-number merge — for every worker
// count.
func TestWorkerCountIndependence(t *testing.T) {
	spec, err := workloads.ByName("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	cfg := detector.Config{Granularity: detector.Dynamic}
	base, _ := runPipeline(spec.Program(), cfg, 1, 7)
	for _, workers := range []int{2, 3, 5, 8} {
		res, _ := runPipeline(spec.Program(), cfg, workers, 7)
		if !reflect.DeepEqual(normalize(base.Races), normalize(res.Races)) {
			t.Errorf("workers=%d: race set differs from workers=1", workers)
		}
		if base.Events != res.Events {
			t.Errorf("workers=%d: Events = %d, want %d", workers, res.Events, base.Events)
		}
		if base.Stats.Accesses != res.Stats.Accesses {
			t.Errorf("workers=%d: Accesses = %d, want %d",
				workers, res.Stats.Accesses, base.Stats.Accesses)
		}
	}
}

// TestMergeDeterministic runs the same program twice at the same worker
// count and requires byte-identical merged reports, in order — worker
// goroutine scheduling must not leak into the result.
func TestMergeDeterministic(t *testing.T) {
	spec, err := workloads.ByName("pbzip2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := detector.Config{Granularity: detector.Byte}
	a, _ := runPipeline(spec.Program(), cfg, 4, 11)
	for i := 0; i < 3; i++ {
		b, _ := runPipeline(spec.Program(), cfg, 4, 11)
		if !reflect.DeepEqual(a.Races, b.Races) {
			t.Fatalf("run %d: merged race order differs between identical runs", i)
		}
	}
}

// TestWaitIdempotent checks Wait can be called repeatedly and returns the
// cached result.
func TestWaitIdempotent(t *testing.T) {
	spec, err := workloads.ByName("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	p := New(Options{Workers: 2, Detector: detector.Config{Granularity: detector.Byte}})
	sim.Run(spec.Program(), p, sim.Options{Seed: 1})
	a := p.Wait()
	b := p.Wait()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Wait() not idempotent")
	}
}

// TestBlockSplitRouting drives a hand-built program whose racy footprint
// straddles a shadow-block boundary, so the router must split it across two
// workers; both pieces must still be detected and attributed to the same
// access.
func TestBlockSplitRouting(t *testing.T) {
	// The heap allocator decides placement, so build addresses directly via
	// the raw Sink interface instead of a sim program.
	const heap = uint64(1) << 32 // comfortably past the NonShared filter
	base := (heap | (shadow.BlockSize - 1)) - 3
	cfg := detector.Config{Granularity: detector.Byte}

	run := func(s event.Sink) {
		s.Fork(0, 1)
		s.Write(1, base, 8, 1) // child writes [boundary-4, boundary+4)
		s.Write(0, base, 8, 2) // parent writes concurrently (no join): a race
	}

	sd := detector.New(cfg)
	run(sd)
	p := New(Options{Workers: 2, Detector: cfg})
	run(p)
	res := p.Wait()

	if len(sd.Races()) == 0 {
		t.Fatal("serial detector found no race for the straddling write")
	}
	if len(res.Races) == 0 {
		t.Fatal("pipeline found no race for the straddling write")
	}
	// The straddling access is analyzed as two block-local pieces, so the
	// pipeline may report the race once per piece; every report must agree
	// with the serial racer identities.
	want := sd.Races()[0]
	covered := uint64(0)
	for _, r := range res.Races {
		if r.Tid != want.Tid || r.PrevTid != want.PrevTid || r.PC != want.PC {
			t.Fatalf("pipeline race %v disagrees with serial race %v", r, want)
		}
		if r.Addr < base || r.Addr+uint64(r.Size) > base+8 {
			t.Fatalf("pipeline race %v outside accessed footprint [%#x,%#x)", r, base, base+8)
		}
		covered += uint64(r.Size)
	}
	if covered != 8 {
		t.Fatalf("pipeline race pieces cover %d bytes of the 8-byte footprint", covered)
	}
}

// TestShardOwnership checks the router's shard assignment matches the
// detector's Owns predicate for every block.
func TestShardOwnership(t *testing.T) {
	const n = 4
	for b := uint64(0); b < 64; b++ {
		addr := b << shadow.BlockShift
		owner := int(addr >> shadow.BlockShift % n)
		for s := 0; s < n; s++ {
			cfg := detector.Config{Shards: n, Shard: s}
			if got, want := cfg.Owns(addr), s == owner; got != want {
				t.Fatalf("block %d: shard %d Owns = %v, want %v", b, s, got, want)
			}
		}
	}
}

var _ event.Sink = (*Pipeline)(nil)
var _ vc.TID = 0
