// Lock-free SPSC batch rings: the router→worker hand-off of the sharded
// pipeline. The router (single producer) and each detection worker (single
// consumer) exchange *event.Batch through a power-of-two ring indexed by
// two monotonically increasing cursors. The common case — ring neither
// full nor empty — is a slot store plus one atomic cursor store on the
// producer side and the mirror image on the consumer side: no locks, no
// channel send, no goroutine wakeup.
//
// # Memory ordering
//
// Go's sync/atomic operations are sequentially consistent, which gives the
// two orderings the ring needs:
//
//   - Publication: the producer writes buf[tail&mask] before storing
//     tail+1; the consumer loads tail before reading buf[head&mask]. The
//     atomic store/load pair orders the slot write before the slot read
//     (release/acquire), so batch contents are fully visible to the
//     worker — the property the old channel provided implicitly.
//   - Sleep/wake (Dekker): before blocking, a side stores its parked flag
//     and then re-loads the opposing cursor; the opposing side stores its
//     cursor and then loads the flag. Sequential consistency forbids both
//     loads seeing stale values, so a producer can never park in the
//     instant the consumer makes room without one of them noticing.
//
// # Spin-then-park
//
// A blocked side first spins a bounded number of rounds (yielding the
// processor between re-checks) — detection workers usually drain within a
// few microseconds, and spinning avoids the ~1µs park/unpark round trip on
// that path. Past the budget it publishes its parked flag and blocks on a
// one-token wake channel. The waking side claims the flag with a CAS, so
// exactly one token is ever in flight per park; a side that finds its
// condition satisfied after publishing the flag either un-parks itself
// (CAS wins) or absorbs the token the opposing side is committed to
// sending (CAS lost). Parks are counted per side — the
// pipeline_ring_parks_total telemetry separates "router stalls on a slow
// shard" from "worker starved for input".
package pipeline

import (
	"runtime"
	"sync/atomic"

	"repro/internal/event"
	"repro/internal/telemetry"
)

// item is one queued hand-off: exactly one of b (row-major record batch)
// or c (columnar batch) is non-nil. A two-word struct rides the ring as
// safely as the old single pointer — the cursor release/acquire pair
// orders both word writes before the consumer's reads.
type item struct {
	b *event.Batch
	c *event.Cols
}

// batchQueue is the router→worker transport. Exactly one goroutine may
// call send/close (the producer) and one may call recv (the consumer);
// len and capacity are safe from anywhere. recv blocks until a batch is
// available and returns ok=false once the queue is closed and drained.
type batchQueue interface {
	send(it item)
	recv() (item, bool)
	len() int
	capacity() int
	close()
}

// chanQueue is the channel-based baseline transport, kept selectable
// (Options.Dispatch="chan") so the dispatch benchmarks compare the ring
// against the exact pre-ring behavior rather than a reconstruction.
type chanQueue struct{ ch chan item }

func newChanQueue(depth int) *chanQueue {
	return &chanQueue{ch: make(chan item, depth)}
}

func (q *chanQueue) send(it item) { q.ch <- it }
func (q *chanQueue) recv() (item, bool) {
	it, ok := <-q.ch
	return it, ok
}
func (q *chanQueue) len() int      { return len(q.ch) }
func (q *chanQueue) capacity() int { return cap(q.ch) }
func (q *chanQueue) close()        { close(q.ch) }

// spinBudget is the number of yield-and-recheck rounds a blocked side
// performs before parking. Bounded so a stalled peer costs a few
// microseconds of CPU, not a busy core.
const spinBudget = 64

// cachePad separates the producer and consumer cursors (and the cold
// fields) onto distinct cache lines so cursor stores on one side never
// invalidate the line the other side is spinning on (false sharing).
type cachePad [64]byte

// ring is the lock-free single-producer/single-consumer batch queue.
// head and tail are free-running uint64 cursors (they index buf modulo
// its power-of-two length), so full/empty tests are plain subtraction and
// wrap-around needs no special casing: tail-head is the occupancy even
// across uint64 overflow.
type ring struct {
	buf  []item
	mask uint64

	// prodParks/consParks count park events per side (nil-safe no-ops
	// when telemetry is off).
	prodParks *telemetry.Counter
	consParks *telemetry.Counter

	_    cachePad
	tail atomic.Uint64 // next slot the producer fills; owned by send
	_    cachePad
	head atomic.Uint64 // next slot the consumer drains; owned by recv
	_    cachePad

	closed     atomic.Bool
	prodParked atomic.Bool
	consParked atomic.Bool
	prodWake   chan struct{}
	consWake   chan struct{}
}

// newRing returns a ring with capacity depth rounded up to a power of two.
func newRing(depth int, prodParks, consParks *telemetry.Counter) *ring {
	n := 1
	for n < depth {
		n <<= 1
	}
	return &ring{
		buf:       make([]item, n),
		mask:      uint64(n - 1),
		prodParks: prodParks,
		consParks: consParks,
		prodWake:  make(chan struct{}, 1),
		consWake:  make(chan struct{}, 1),
	}
}

func (r *ring) len() int {
	d := r.tail.Load() - r.head.Load()
	if d > uint64(len(r.buf)) { // torn snapshot of two free-running cursors
		return len(r.buf)
	}
	return int(d)
}

func (r *ring) capacity() int { return len(r.buf) }

// wake transfers the one wake token to a parked peer. The CAS claims the
// flag, so of all concurrent wakers (there is at most one, but close and
// send may both run it) exactly one sends, and the channel's single slot
// can never block.
func wake(parked *atomic.Bool, ch chan struct{}) {
	if parked.Load() && parked.CompareAndSwap(true, false) {
		ch <- struct{}{}
	}
}

// send enqueues it, spinning then parking while the ring is full. Producer
// goroutine only.
func (r *ring) send(it item) {
	t := r.tail.Load()
	spins := 0
	for {
		if t-r.head.Load() < uint64(len(r.buf)) {
			r.buf[t&r.mask] = it
			r.tail.Store(t + 1) // publishes the slot write (release)
			wake(&r.consParked, r.consWake)
			return
		}
		if spins < spinBudget {
			spins++
			runtime.Gosched()
			continue
		}
		// Park: publish the flag, then re-check (Dekker with the
		// consumer's head store / flag load).
		r.prodParks.Inc()
		r.prodParked.Store(true)
		if t-r.head.Load() < uint64(len(r.buf)) {
			if r.prodParked.CompareAndSwap(true, false) {
				continue // un-parked ourselves; no token in flight
			}
			<-r.prodWake // consumer claimed the flag; absorb its token
			continue
		}
		<-r.prodWake
		spins = 0
	}
}

// recv dequeues the next batch, spinning then parking while the ring is
// empty; it returns ok=false once the ring is closed and drained.
// Consumer goroutine only.
func (r *ring) recv() (item, bool) {
	h := r.head.Load()
	spins := 0
	for {
		if r.tail.Load() > h { // acquire: slot write visible below
			it := r.buf[h&r.mask]
			r.buf[h&r.mask] = item{} // drop the references; the pool owns them next
			r.head.Store(h + 1)
			wake(&r.prodParked, r.prodWake)
			return it, true
		}
		if r.closed.Load() {
			// closed is stored after the producer's final tail store, so
			// an empty ring here is empty for good.
			if r.tail.Load() > h {
				continue
			}
			return item{}, false
		}
		if spins < spinBudget {
			spins++
			runtime.Gosched()
			continue
		}
		r.consParks.Inc()
		r.consParked.Store(true)
		if r.tail.Load() > h || r.closed.Load() {
			if r.consParked.CompareAndSwap(true, false) {
				continue
			}
			<-r.consWake
			continue
		}
		<-r.consWake
		spins = 0
	}
}

// close marks the ring finished and wakes a parked consumer so it can
// observe the close. Producer goroutine only, after its last send.
func (r *ring) close() {
	r.closed.Store(true)
	wake(&r.consParked, r.consWake)
}
