package pipeline

import (
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/telemetry"
)

// marker builds a one-record batch item tagged with seq, so transfer
// order and identity are checkable on the consumer side.
func marker(seq uint64) item {
	b := event.GetBatch()
	b.Append(event.Rec{Op: event.OpRead, Seq: seq})
	return item{b: b}
}

// TestRingWrapAround pushes far more batches than the ring holds through a
// tiny ring, asserting every batch arrives exactly once, in order, across
// many cursor wrap-arounds.
func TestRingWrapAround(t *testing.T) {
	r := newRing(4, nil, nil)
	if r.capacity() != 4 {
		t.Fatalf("capacity = %d, want 4", r.capacity())
	}
	const n = 50000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= n; i++ {
			r.send(marker(i))
		}
		r.close()
	}()
	var got uint64
	for {
		it, ok := r.recv()
		if !ok {
			break
		}
		got++
		if want := got; it.b.Recs[0].Seq != want {
			t.Fatalf("batch %d carried seq %d (reordered or duplicated)", want, it.b.Recs[0].Seq)
		}
		event.PutBatch(it.b)
	}
	wg.Wait()
	if got != n {
		t.Fatalf("received %d of %d batches", got, n)
	}
	if _, ok := r.recv(); ok {
		t.Fatal("recv after drain on a closed ring returned a batch")
	}
}

// TestRingDepthRounding pins the power-of-two capacity rounding.
func TestRingDepthRounding(t *testing.T) {
	for depth, want := range map[int]int{1: 1, 2: 2, 3: 4, 8: 8, 9: 16, 1000: 1024} {
		if got := newRing(depth, nil, nil).capacity(); got != want {
			t.Errorf("newRing(%d).capacity() = %d, want %d", depth, got, want)
		}
	}
}

// TestRingProducerPark forces the full-ring path: a consumer that sleeps
// before draining guarantees the producer exhausts its spin budget and
// parks, and the park counter proves the slow path ran.
func TestRingProducerPark(t *testing.T) {
	reg := telemetry.New()
	parks := reg.Counter("parks", "", telemetry.Labels{"side": "producer"})
	r := newRing(2, parks, nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond) // let the producer fill and park
		for {
			it, ok := r.recv()
			if !ok {
				return
			}
			event.PutBatch(it.b)
			time.Sleep(time.Millisecond) // keep the ring full a few rounds
		}
	}()
	for i := uint64(1); i <= 16; i++ {
		r.send(marker(i))
	}
	r.close()
	wg.Wait()
	if parks.Load() == 0 {
		t.Fatal("producer never parked against a stalled consumer")
	}
}

// TestRingConsumerPark forces the empty-ring path: a producer that sleeps
// between sends starves the consumer past its spin budget.
func TestRingConsumerPark(t *testing.T) {
	reg := telemetry.New()
	parks := reg.Counter("parks", "", telemetry.Labels{"side": "consumer"})
	r := newRing(8, nil, parks)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= 4; i++ {
			time.Sleep(20 * time.Millisecond)
			r.send(marker(i))
		}
		r.close()
	}()
	var got int
	for {
		it, ok := r.recv()
		if !ok {
			break
		}
		got++
		event.PutBatch(it.b)
	}
	wg.Wait()
	if got != 4 {
		t.Fatalf("received %d of 4 batches", got)
	}
	if parks.Load() == 0 {
		t.Fatal("consumer never parked against a slow producer")
	}
}

// TestRingCloseWhileFull closes a ring at capacity before the consumer
// starts: the consumer must drain every queued batch and then observe the
// close, even from a parked state.
func TestRingCloseWhileFull(t *testing.T) {
	r := newRing(4, nil, nil)
	for i := uint64(1); i <= 4; i++ {
		r.send(marker(i))
	}
	r.close()
	for i := uint64(1); i <= 4; i++ {
		it, ok := r.recv()
		if !ok {
			t.Fatalf("close hid batch %d", i)
		}
		if it.b.Recs[0].Seq != i {
			t.Fatalf("batch %d carried seq %d", i, it.b.Recs[0].Seq)
		}
		event.PutBatch(it.b)
	}
	if _, ok := r.recv(); ok {
		t.Fatal("drained closed ring still produced a batch")
	}
}

// TestRingCloseWakesParkedConsumer parks the consumer on an empty ring and
// then closes it; the consumer must wake and exit rather than hang.
func TestRingCloseWakesParkedConsumer(t *testing.T) {
	r := newRing(4, nil, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := r.recv(); ok {
			t.Error("recv on an empty closed ring returned a batch")
		}
	}()
	time.Sleep(30 * time.Millisecond) // let the consumer park
	r.close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never woke from close")
	}
}

// TestRingStress hammers one ring from concurrent producer and consumer
// goroutines with randomized stalls on both sides — the park/unpark
// protocol's Dekker handshake is what -race (and the 5s timeout) checks.
func TestRingStress(t *testing.T) {
	reg := telemetry.New()
	pp := reg.Counter("parks", "", telemetry.Labels{"side": "producer"})
	cp := reg.Counter("parks", "", telemetry.Labels{"side": "consumer"})
	r := newRing(2, pp, cp)
	const n = 20000
	done := make(chan uint64, 1)
	go func() {
		var got, last uint64
		for {
			it, ok := r.recv()
			if !ok {
				done <- got
				return
			}
			if s := it.b.Recs[0].Seq; s != last+1 {
				t.Errorf("seq %d after %d", s, last)
				done <- got
				return
			} else {
				last = s
			}
			got++
			event.PutBatch(it.b)
			if got%97 == 0 {
				time.Sleep(time.Microsecond) // periodic consumer stall
			}
		}
	}()
	for i := uint64(1); i <= n; i++ {
		r.send(marker(i))
		if i%89 == 0 {
			time.Sleep(time.Microsecond) // periodic producer stall
		}
	}
	r.close()
	select {
	case got := <-done:
		if got != n {
			t.Fatalf("received %d of %d batches", got, n)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("stress run wedged (lost wakeup?)")
	}
	t.Logf("parks: producer=%d consumer=%d", pp.Load(), cp.Load())
}

// TestRingZeroAlloc pins that the ring's steady state allocates nothing:
// the hand-off is a slot store and two atomic cursor updates.
func TestRingZeroAlloc(t *testing.T) {
	r := newRing(8, nil, nil)
	b := event.GetBatch()
	defer event.PutBatch(b)
	it := item{b: b}
	if got := testing.AllocsPerRun(1000, func() {
		r.send(it)
		if _, ok := r.recv(); !ok {
			t.Fatal("recv failed")
		}
	}); got != 0 {
		t.Errorf("ring send+recv: %v allocs/run, want 0", got)
	}
}

// TestChanQueueBaseline keeps the benchmark-baseline transport honest:
// same contract, channel semantics.
func TestChanQueueBaseline(t *testing.T) {
	q := newChanQueue(2)
	if q.capacity() != 2 {
		t.Fatalf("capacity = %d, want 2", q.capacity())
	}
	q.send(marker(1))
	if q.len() != 1 {
		t.Fatalf("len = %d, want 1", q.len())
	}
	q.close()
	it, ok := q.recv()
	if !ok || it.b.Recs[0].Seq != 1 {
		t.Fatal("chan queue lost the queued batch across close")
	}
	event.PutBatch(it.b)
	if _, ok := q.recv(); ok {
		t.Fatal("drained closed chan queue still produced a batch")
	}
}
