// Allocation guard for the worker apply loop: after warm-up, applying a
// batch of records to a shard detector — the exact body of worker.run —
// must not allocate. Batch transport is already pooled (event.GetBatch /
// PutBatch); this pins the detection side of the loop.
package pipeline

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/vc"
)

func TestApplyLoopSteadyStateZeroAlloc(t *testing.T) {
	d := detector.New(detector.Config{Granularity: detector.Dynamic})
	d.Fork(0, 1)

	// One lock-ordered ping-pong cycle over a 256-byte range, as a record
	// batch: the workload shape the router ships to workers.
	var recs []event.Rec
	for _, tid := range []vc.TID{0, 1} {
		recs = append(recs, event.Rec{Op: event.OpAcquire, Tid: tid, Aux: 3})
		for a := uint64(0); a < 256; a += 8 {
			recs = append(recs, event.Rec{Op: event.OpWrite, Tid: tid, Addr: 0x9000 + a, Size: 8, PC: 21})
			recs = append(recs, event.Rec{Op: event.OpRead, Tid: tid, Addr: 0x9000 + a, Size: 8, PC: 22})
		}
		recs = append(recs, event.Rec{Op: event.OpRelease, Tid: tid, Aux: 3})
	}

	apply := func() {
		for i := range recs {
			r := &recs[i]
			before := len(d.Races())
			event.ApplyRec(d, r)
			if after := d.Races(); len(after) > before {
				t.Fatalf("unexpected race at rec %d", i)
			}
		}
	}
	apply() // warm shadow entries, clocks, bitmaps, freelists
	apply()
	if got := testing.AllocsPerRun(20, apply); got != 0 {
		t.Fatalf("apply loop steady state: %v allocs/run, want 0", got)
	}
}
