// Package lockset implements Eraser's LockSet algorithm (Savage et al.,
// TOCS 1997), the classic lock-discipline checker the paper's Section I and
// related work discuss, plus the held-lock bookkeeping that the hybrid
// detector (internal/hybrid) shares.
//
// Every shared location keeps a candidate set C(v) of locks that protected
// every access so far; on each access C(v) is intersected with the locks the
// accessing thread holds. The Eraser state machine (Virgin → Exclusive →
// Shared → Shared-Modified) defers warnings until a location is genuinely
// shared and written; a race is reported when C(v) becomes empty in the
// Shared-Modified state. LockSet flags violations of the locking discipline
// whether or not the racy interleaving occurred, so it over-approximates:
// it may report false alarms (e.g. fork/join or barrier-ordered accesses),
// which is exactly the behaviour the paper contrasts happens-before
// detectors against.
package lockset

import (
	"sort"

	"repro/internal/event"
	"repro/internal/vc"
)

// Held tracks, per thread, the set of locks currently held. Lock sets are
// interned so a set is identified by a small index and intersection results
// are memoized — the standard Eraser implementation trick.
type Held struct {
	interner *Interner
	held     []int // per tid: interned set of locks held
}

// NewHeld returns an empty held-lock tracker using interner i.
func NewHeld(i *Interner) *Held {
	return &Held{interner: i}
}

func (h *Held) ensure(t vc.TID) {
	for int(t) >= len(h.held) {
		h.held = append(h.held, h.interner.Empty())
	}
}

// Acquire records that t now holds l.
func (h *Held) Acquire(t vc.TID, l event.LockID) {
	h.ensure(t)
	h.held[t] = h.interner.Add(h.held[t], l)
}

// Release records that t no longer holds l.
func (h *Held) Release(t vc.TID, l event.LockID) {
	h.ensure(t)
	h.held[t] = h.interner.Remove(h.held[t], l)
}

// Set returns the interned id of t's current lock set.
func (h *Held) Set(t vc.TID) int {
	h.ensure(t)
	return h.held[t]
}

// Interner assigns small dense ids to lock sets and memoizes intersections.
type Interner struct {
	sets  [][]event.LockID // id → sorted locks
	index map[string]int
	inter map[[2]int]int // memoized intersections
}

// NewInterner returns an interner holding only the empty set (id 0).
func NewInterner() *Interner {
	in := &Interner{index: make(map[string]int), inter: make(map[[2]int]int)}
	in.sets = append(in.sets, nil)
	in.index[""] = 0
	return in
}

// Empty returns the id of the empty set.
func (in *Interner) Empty() int { return 0 }

// Locks returns the locks of set id (shared slice; do not mutate).
func (in *Interner) Locks(id int) []event.LockID { return in.sets[id] }

// IsEmpty reports whether set id has no locks.
func (in *Interner) IsEmpty(id int) bool { return len(in.sets[id]) == 0 }

// Bytes returns the accounted size of all interned sets.
func (in *Interner) Bytes() int64 {
	var n int64
	for _, s := range in.sets {
		n += 24 + int64(len(s))*4
	}
	return n
}

func key(s []event.LockID) string {
	b := make([]byte, 0, len(s)*4)
	for _, l := range s {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

func (in *Interner) intern(s []event.LockID) int {
	k := key(s)
	if id, ok := in.index[k]; ok {
		return id
	}
	id := len(in.sets)
	in.sets = append(in.sets, s)
	in.index[k] = id
	return id
}

// Add returns the id of set ∪ {l}.
func (in *Interner) Add(id int, l event.LockID) int {
	s := in.sets[id]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= l })
	if i < len(s) && s[i] == l {
		return id
	}
	ns := make([]event.LockID, 0, len(s)+1)
	ns = append(ns, s[:i]...)
	ns = append(ns, l)
	ns = append(ns, s[i:]...)
	return in.intern(ns)
}

// Remove returns the id of set \ {l}.
func (in *Interner) Remove(id int, l event.LockID) int {
	s := in.sets[id]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= l })
	if i >= len(s) || s[i] != l {
		return id
	}
	ns := make([]event.LockID, 0, len(s)-1)
	ns = append(ns, s[:i]...)
	ns = append(ns, s[i+1:]...)
	return in.intern(ns)
}

// Intersect returns the id of a ∩ b, memoized.
func (in *Interner) Intersect(a, b int) int {
	if a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	k := [2]int{a, b}
	if id, ok := in.inter[k]; ok {
		return id
	}
	sa, sb := in.sets[a], in.sets[b]
	var ns []event.LockID
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] == sb[j]:
			ns = append(ns, sa[i])
			i++
			j++
		case sa[i] < sb[j]:
			i++
		default:
			j++
		}
	}
	id := in.intern(ns)
	in.inter[k] = id
	return id
}

// ---- The Eraser detector ----

// EState is the Eraser per-location state machine.
type EState uint8

const (
	// Virgin: never accessed.
	Virgin EState = iota
	// Exclusive: accessed by one thread only; no checking yet.
	Exclusive
	// SharedRead: read by several threads, never written since sharing;
	// C(v) is refined but empty C(v) is not reported.
	SharedRead
	// SharedModified: shared and written; empty C(v) is a race.
	SharedModified
	// Raced: already reported.
	Raced
)

// Race is one Eraser warning.
type Race struct {
	Addr  uint64
	Tid   vc.TID
	PC    event.PC
	Write bool
}

// Options configure the Eraser detector.
type Options struct {
	// Granule is the tracked location size (power of two; default 4, the
	// word granularity Eraser used).
	Granule uint64
}

// Detector is an Eraser LockSet detector; it implements event.Sink.
type Detector struct {
	opt   Options
	in    *Interner
	held  *Held
	locs  map[uint64]*eloc
	races []Race
}

type eloc struct {
	state EState
	owner vc.TID
	cand  int // interned candidate set
}

// New returns an Eraser detector.
func New(opt Options) *Detector {
	if opt.Granule == 0 {
		opt.Granule = 4
	}
	in := NewInterner()
	return &Detector{
		opt:  opt,
		in:   in,
		held: NewHeld(in),
		locs: make(map[uint64]*eloc),
	}
}

// Races returns all warnings in detection order.
func (d *Detector) Races() []Race { return d.races }

func (d *Detector) access(tid vc.TID, addr uint64, size uint32, pc event.PC, write bool) {
	if event.NonShared(addr) {
		return
	}
	g := d.opt.Granule
	cur := d.held.Set(tid)
	for a := addr &^ (g - 1); a < addr+uint64(size); a += g {
		l := d.locs[a]
		if l == nil {
			l = &eloc{state: Virgin}
			d.locs[a] = l
		}
		switch l.state {
		case Virgin:
			l.state = Exclusive
			l.owner = tid
			l.cand = cur
		case Exclusive:
			if tid == l.owner {
				break // still exclusive; Eraser does not refine C(v) yet
			}
			l.cand = d.in.Intersect(l.cand, cur)
			if write {
				l.state = SharedModified
			} else {
				l.state = SharedRead
			}
			d.check(l, a, tid, pc, write)
		case SharedRead:
			l.cand = d.in.Intersect(l.cand, cur)
			if write {
				l.state = SharedModified
			}
			d.check(l, a, tid, pc, write)
		case SharedModified:
			l.cand = d.in.Intersect(l.cand, cur)
			d.check(l, a, tid, pc, write)
		case Raced:
		}
	}
}

func (d *Detector) check(l *eloc, addr uint64, tid vc.TID, pc event.PC, write bool) {
	if l.state == SharedModified && d.in.IsEmpty(l.cand) {
		l.state = Raced
		d.races = append(d.races, Race{Addr: addr, Tid: tid, PC: pc, Write: write})
	}
}

// Read processes a shared read.
func (d *Detector) Read(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	d.access(tid, addr, size, pc, false)
}

// Write processes a shared write.
func (d *Detector) Write(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	d.access(tid, addr, size, pc, true)
}

// Acquire and Release maintain the held-lock sets; Eraser has no
// happens-before component, so the remaining synchronization events are
// no-ops (which is why it raises false alarms on fork/join programs).
func (d *Detector) Acquire(tid vc.TID, l event.LockID) { d.held.Acquire(tid, l) }
func (d *Detector) Release(tid vc.TID, l event.LockID) { d.held.Release(tid, l) }

// AcquireShared and ReleaseShared treat a read-held rwlock as held (the
// classic Eraser approximation, which can miss read-lock misuse).
func (d *Detector) AcquireShared(tid vc.TID, l event.LockID) { d.held.Acquire(tid, l) }
func (d *Detector) ReleaseShared(tid vc.TID, l event.LockID) { d.held.Release(tid, l) }
func (d *Detector) Fork(vc.TID, vc.TID)                      {}
func (d *Detector) Join(vc.TID, vc.TID)                      {}
func (d *Detector) BarrierArrive(vc.TID, event.BarrierID)    {}
func (d *Detector) BarrierDepart(vc.TID, event.BarrierID)    {}
func (d *Detector) Malloc(vc.TID, uint64, uint64)            {}

// Free discards location state for the freed range.
func (d *Detector) Free(_ vc.TID, addr uint64, size uint64) {
	g := d.opt.Granule
	for a := addr &^ (g - 1); a < addr+size; a += g {
		delete(d.locs, a)
	}
}
