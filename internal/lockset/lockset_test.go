package lockset

import (
	"testing"

	"repro/internal/event"
	"repro/internal/vc"
)

func TestInternerAddRemove(t *testing.T) {
	in := NewInterner()
	s1 := in.Add(in.Empty(), 3)
	s2 := in.Add(s1, 1)
	s3 := in.Add(s2, 3) // duplicate: same set
	if s3 != s2 {
		t.Error("adding an existing lock must return the same id")
	}
	if got := in.Locks(s2); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("locks = %v", got)
	}
	s4 := in.Remove(s2, 1)
	if got := in.Locks(s4); len(got) != 1 || got[0] != 3 {
		t.Errorf("after remove: %v", got)
	}
	if in.Remove(s4, 99) != s4 {
		t.Error("removing an absent lock must be a no-op")
	}
	// Interning: rebuilding the same set yields the same id.
	if in.Add(in.Empty(), 3) != s1 {
		t.Error("sets must be interned")
	}
}

func TestInternerIntersect(t *testing.T) {
	in := NewInterner()
	a := in.Add(in.Add(in.Empty(), 1), 2)
	b := in.Add(in.Add(in.Empty(), 2), 3)
	got := in.Intersect(a, b)
	if locks := in.Locks(got); len(locks) != 1 || locks[0] != 2 {
		t.Errorf("a ∩ b = %v", locks)
	}
	if in.Intersect(a, b) != got {
		t.Error("intersection must be memoized/interned")
	}
	if in.Intersect(a, a) != a {
		t.Error("a ∩ a = a")
	}
	if !in.IsEmpty(in.Intersect(a, in.Empty())) {
		t.Error("a ∩ ∅ = ∅")
	}
	if in.Bytes() <= 0 {
		t.Error("interner accounting")
	}
}

func TestHeldTracksLocks(t *testing.T) {
	in := NewInterner()
	h := NewHeld(in)
	h.Acquire(0, 1)
	h.Acquire(0, 2)
	if got := in.Locks(h.Set(0)); len(got) != 2 {
		t.Errorf("held = %v", got)
	}
	h.Release(0, 1)
	if got := in.Locks(h.Set(0)); len(got) != 1 || got[0] != 2 {
		t.Errorf("held = %v", got)
	}
	if !in.IsEmpty(h.Set(5)) {
		t.Error("unknown thread holds nothing")
	}
}

// Eraser's core behaviour: consistent locking passes, inconsistent locking
// of a shared-modified location warns.
func TestEraserDetectsDiscipline(t *testing.T) {
	d := New(Options{})
	const x = 0x100
	// Thread 0 and 1 always hold lock 1 around x: no warning.
	d.Acquire(0, 1)
	d.Write(0, x, 4, 0)
	d.Release(0, 1)
	d.Acquire(1, 1)
	d.Write(1, x, 4, 0)
	d.Release(1, 1)
	if len(d.Races()) != 0 {
		t.Fatalf("disciplined accesses warned: %v", d.Races())
	}
	// Thread 1 now writes without the lock: candidate set empties.
	d.Write(1, x, 4, 0)
	if len(d.Races()) != 1 {
		t.Fatalf("undisciplined write not warned: %v", d.Races())
	}
	// Only the first warning per location.
	d.Write(0, x, 4, 0)
	if len(d.Races()) != 1 {
		t.Error("warned twice for one location")
	}
}

// The Exclusive state defers checking while a single thread owns the
// location: single-threaded unlocked access never warns.
func TestEraserExclusiveState(t *testing.T) {
	d := New(Options{})
	for i := 0; i < 10; i++ {
		d.Write(0, 0x200, 4, 0)
	}
	if len(d.Races()) != 0 {
		t.Errorf("exclusive accesses warned: %v", d.Races())
	}
}

// Read-only sharing refines C(v) but does not warn (SharedRead state).
func TestEraserSharedReadNoWarning(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x300, 4, 0) // exclusive owner initializes
	d.Read(1, 0x300, 4, 0)  // unlocked read: SharedRead, no warning
	d.Read(2, 0x300, 4, 0)
	if len(d.Races()) != 0 {
		t.Errorf("read-only sharing warned: %v", d.Races())
	}
	// A write moves it to SharedModified with an empty C(v): warn.
	d.Write(1, 0x300, 4, 0)
	if len(d.Races()) != 1 {
		t.Errorf("shared-modified not warned: %v", d.Races())
	}
}

// Eraser's defining weakness: it warns on fork/join-ordered accesses that
// happens-before detectors correctly accept (the false-alarm problem of
// Section I).
func TestEraserFalseAlarmOnForkJoinOrdering(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x400, 4, 0)
	d.Fork(0, 1) // Eraser ignores this
	d.Write(1, 0x400, 4, 0)
	if len(d.Races()) != 1 {
		t.Errorf("expected the classic Eraser false alarm, got %v", d.Races())
	}
}

func TestEraserGranule(t *testing.T) {
	d := New(Options{Granule: 4})
	d.Write(0, 0x500, 8, 0) // covers two word granules
	d.Write(1, 0x500, 8, 0)
	if len(d.Races()) != 2 {
		t.Errorf("got %d warnings, want 2 (one per granule)", len(d.Races()))
	}
}

func TestEraserFree(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x600, 4, 0)
	d.Free(0, 0x600, 4)
	d.Write(1, 0x600, 4, 0) // fresh owner: Exclusive again
	if len(d.Races()) != 0 {
		t.Errorf("stale state after free: %v", d.Races())
	}
}

var _ = vc.TID(0)
var _ = event.LockID(0)
