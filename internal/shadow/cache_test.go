// Regression tests for the one-entry lookup cache (lastKey/lastEnt) under
// entry recycling. Before entry headers were pooled, a stale cache entry
// after remove() was merely a dead pointer the GC kept alive; with
// recycling, the same header is re-issued for a different block, so a
// stale hit would read — or write — the slots of an unrelated block.
// These tests pin the invalidation and the recycled-entry resurrection
// scenario, plus the peak-accounting monotonicity the bench lane reports.
package shadow

import (
	"math/rand"
	"testing"
)

// TestRemoveInvalidatesLookupCache drives the exact resurrection hazard:
// warm the cache on block A, empty block A (remove + recycle), then
// populate block B so the recycled header is re-issued keyed for B. A
// surviving cache entry for A would now alias B's slots.
func TestRemoveInvalidatesLookupCache(t *testing.T) {
	tab := New[*node]()
	a := &node{id: 1}
	tab.SetRange(10, 12, a) // block 0; cache now points at block 0's entry
	if tab.Get(10) != a {
		t.Fatal("warm-up lookup failed")
	}
	tab.ClearRange(0, BlockSize) // empties block 0 → remove + recycle
	if tab.lastEnt != nil {
		t.Fatal("remove() left lastEnt pointing at a recycled entry")
	}
	b := &node{id: 2}
	tab.SetRange(BlockSize+10, BlockSize+12, b) // block 1 reuses the header
	if got := tab.Get(10); got != nil {
		t.Fatalf("block 0 read after recycle: got %+v, want nil (stale cache aliased block 1)", got)
	}
	if got := tab.Get(BlockSize + 10); got != b {
		t.Fatalf("block 1 read: got %+v, want %+v", got, b)
	}
}

// TestClearRangeManyBlocksInvalidatesCache covers the DropRange-shaped
// path: a multi-block clear must not leave the cache pointing at any of
// the removed entries, regardless of which block was cached last.
func TestClearRangeManyBlocksInvalidatesCache(t *testing.T) {
	tab := New[*node]()
	v := &node{id: 3}
	for blk := uint64(0); blk < 8; blk++ {
		tab.SetRange(blk*BlockSize, blk*BlockSize+4, v)
	}
	// Touch each block so the cache lands on every candidate in turn, then
	// clear everything and verify emptiness through the cached path.
	for blk := uint64(0); blk < 8; blk++ {
		if tab.Get(blk*BlockSize) != v {
			t.Fatalf("block %d warm-up failed", blk)
		}
		tab.ClearRange(blk*BlockSize, (blk+1)*BlockSize)
		if got := tab.Get(blk * BlockSize); got != nil {
			t.Fatalf("block %d read after clear: got %+v, want nil", blk, got)
		}
	}
	if tab.Entries() != 0 {
		t.Fatalf("entries after full clear: %d, want 0", tab.Entries())
	}
}

// TestPeakBytesMonotone churns a table through random set/expand/clear
// cycles and asserts the accounting invariants the memory lane reports:
// PeakBytes never decreases, always dominates Bytes, and Bytes returns to
// the empty-table floor when everything is cleared (recycled capacity is
// not counted as live shadow bytes).
func TestPeakBytesMonotone(t *testing.T) {
	tab := New[*node]()
	floor := tab.Bytes()
	rng := rand.New(rand.NewSource(7))
	v := &node{id: 9}
	prevPeak := tab.PeakBytes()
	for i := 0; i < 2000; i++ {
		blk := uint64(rng.Intn(32)) * BlockSize
		switch rng.Intn(3) {
		case 0: // word-aligned fill (sparse entry)
			tab.SetRange(blk, blk+uint64(4+rng.Intn(int(BlockSize)-4))&^3, v)
		case 1: // unaligned fill forces sparse→dense expansion
			lo := blk + uint64(1+rng.Intn(8))
			tab.SetRange(lo, lo+uint64(1+rng.Intn(16)), v)
		case 2:
			tab.ClearRange(blk, blk+BlockSize)
		}
		if p := tab.PeakBytes(); p < prevPeak {
			t.Fatalf("op %d: PeakBytes regressed %d → %d", i, prevPeak, p)
		} else {
			prevPeak = p
		}
		if tab.Bytes() > tab.PeakBytes() {
			t.Fatalf("op %d: Bytes %d exceeds PeakBytes %d", i, tab.Bytes(), tab.PeakBytes())
		}
	}
	tab.ClearRange(0, 32*BlockSize)
	if tab.Bytes() != floor {
		t.Fatalf("Bytes after full clear: %d, want empty-table floor %d", tab.Bytes(), floor)
	}
	if tab.PeakBytes() != prevPeak {
		t.Fatalf("PeakBytes changed on clear: %d → %d", prevPeak, tab.PeakBytes())
	}
}
