// Package shadow implements the vector-clock indexing structure of Figure 4
// in the paper: a separately-chained hash table in which each entry covers a
// block of m = 128 consecutive addresses and holds an indexing array of
// pointers to per-location shadow nodes.
//
// An entry's indexing array starts with m/4 pointers — one per word — since
// the most common access pattern is word access. When an access that is not
// word-aligned begins inside the block, the array is expanded to m pointers
// (one per byte), replicating each word pointer into its four byte slots so
// lookups remain correct.
//
// A shadow node may cover a contiguous range of addresses; every slot in the
// range points at the same node. The table supports the sequential range
// operations the paper calls out — deleting entries on free() and the
// vector-clock sharing process — and accounts its own memory by object size
// for the Table 2 "Hash" column.
package shadow

// BlockSize is m, the number of addresses covered by one hash entry.
const BlockSize = 128

// BlockShift is log2(BlockSize): addr >> BlockShift is the block number an
// address belongs to. The sharded detection pipeline routes accesses to
// workers by block number, so one hash entry (and therefore any shared
// clock, which never spans entries) always lives on exactly one shard.
const BlockShift = 7

const (
	blockShift = BlockShift
	blockMask  = BlockSize - 1

	denseSlots  = BlockSize     // byte-granular indexing array
	sparseSlots = BlockSize / 4 // word-granular indexing array
)

// Accounting object sizes (bytes), chosen to mirror a C implementation the
// way the paper measures overhead ("based on object size").
const (
	entryHeaderBytes = 24 // key + next pointer + mode/count
	bucketSlotBytes  = 8
	slotBytes        = 8
)

// Table maps byte addresses to shadow nodes of type T (a pointer type; the
// zero value of T means "no node"). One Table serves one access plane: the
// detectors keep a read Table and a write Table, because read and write
// locations are maintained separately (paper §III.A).
type Table[T comparable] struct {
	buckets []*entry[T]
	mask    uint64
	entries int

	// One-entry lookup cache: consecutive accesses overwhelmingly hit the
	// same 128-address block, so remembering the last entry resolved turns
	// the common-case lookup into one comparison (no hashing, no chain
	// walk). Entries stay valid across grow (rehashing relinks the same
	// entry objects); only remove must invalidate — which matters doubly
	// now that removed entries are recycled: a stale cache hit would
	// resurrect an entry that may already serve a different block.
	lastKey uint64
	lastEnt *entry[T]

	// memory accounting
	curBytes  int64
	peakBytes int64

	// Recycling: the malloc/free churn of short-lived allocations creates
	// and removes entries at high rate; headers and indexing arrays are
	// reused instead of reallocated. Headers come from arena slabs (one
	// heap allocation per entArenaChunk entries); removed entries push
	// their zeroed slot arrays onto per-granularity freelists.
	freeEnts   []*entry[T]
	freeSparse [][]T
	freeDense  [][]T
	entArena   []entry[T]
}

// entArenaChunk is the entry-header slab size.
const entArenaChunk = 64

type entry[T comparable] struct {
	key   uint64 // block number (addr >> blockShift)
	next  *entry[T]
	dense bool // true once the array holds one slot per byte
	used  int  // number of non-zero slots
	slots []T  // sparseSlots or denseSlots entries
}

// New returns an empty table.
func New[T comparable]() *Table[T] {
	t := &Table[T]{}
	t.init(64)
	return t
}

func (t *Table[T]) init(nbuckets int) {
	t.buckets = make([]*entry[T], nbuckets)
	t.mask = uint64(nbuckets - 1)
	t.account(int64(nbuckets) * bucketSlotBytes)
}

func (t *Table[T]) account(delta int64) {
	t.curBytes += delta
	if t.curBytes > t.peakBytes {
		t.peakBytes = t.curBytes
	}
}

// Bytes returns the current accounted size of the indexing structure.
func (t *Table[T]) Bytes() int64 { return t.curBytes }

// PeakBytes returns the maximum accounted size reached so far.
func (t *Table[T]) PeakBytes() int64 { return t.peakBytes }

// Entries returns the number of live hash entries (blocks with shadow state).
func (t *Table[T]) Entries() int { return t.entries }

func hashBlock(key uint64) uint64 {
	// Fibonacci hashing; the multiplier is 2^64 / φ.
	return key * 0x9e3779b97f4a7c15
}

func (t *Table[T]) find(key uint64) *entry[T] {
	if t.lastEnt != nil && t.lastKey == key {
		return t.lastEnt
	}
	for e := t.buckets[hashBlock(key)>>32&t.mask]; e != nil; e = e.next {
		if e.key == key {
			t.lastKey, t.lastEnt = key, e
			return e
		}
	}
	return nil
}

func (t *Table[T]) findOrCreate(key uint64) *entry[T] {
	if t.lastEnt != nil && t.lastKey == key {
		return t.lastEnt
	}
	idx := hashBlock(key) >> 32 & t.mask
	for e := t.buckets[idx]; e != nil; e = e.next {
		if e.key == key {
			t.lastKey, t.lastEnt = key, e
			return e
		}
	}
	e := t.newEntry(key)
	e.next = t.buckets[idx]
	t.buckets[idx] = e
	t.entries++
	t.account(entryHeaderBytes + sparseSlots*slotBytes)
	if t.entries > len(t.buckets)*4 {
		t.grow()
	}
	t.lastKey, t.lastEnt = key, e
	return e
}

func (t *Table[T]) grow() {
	old := t.buckets
	t.account(-int64(len(old)) * bucketSlotBytes)
	t.init(len(old) * 2)
	for _, e := range old {
		for e != nil {
			next := e.next
			idx := hashBlock(e.key) >> 32 & t.mask
			e.next = t.buckets[idx]
			t.buckets[idx] = e
			e = next
		}
	}
}

// newEntry returns a sparse entry for block key, served from the recycled
// headers/arrays when available. Recycled slot arrays were zeroed when
// their entry was removed, so every array handed out reads as empty.
func (t *Table[T]) newEntry(key uint64) *entry[T] {
	var e *entry[T]
	if k := len(t.freeEnts); k > 0 {
		e = t.freeEnts[k-1]
		t.freeEnts[k-1] = nil
		t.freeEnts = t.freeEnts[:k-1]
	} else {
		if len(t.entArena) == 0 {
			t.entArena = make([]entry[T], entArenaChunk)
		}
		e = &t.entArena[0]
		t.entArena = t.entArena[1:]
	}
	e.key = key
	e.dense = false
	e.used = 0
	if k := len(t.freeSparse); k > 0 {
		e.slots = t.freeSparse[k-1]
		t.freeSparse[k-1] = nil
		t.freeSparse = t.freeSparse[:k-1]
	} else {
		e.slots = make([]T, sparseSlots)
	}
	return e
}

func (t *Table[T]) remove(e *entry[T]) {
	if t.lastEnt == e {
		// Invalidate the one-entry cache: e is about to be recycled and a
		// stale hit would read (or write!) slots of an unrelated block.
		t.lastKey, t.lastEnt = 0, nil
	}
	idx := hashBlock(e.key) >> 32 & t.mask
	p := &t.buckets[idx]
	for *p != nil {
		if *p == e {
			*p = e.next
			t.entries--
			n := sparseSlots
			if e.dense {
				n = denseSlots
			}
			t.account(-int64(entryHeaderBytes + n*slotBytes))
			t.recycle(e)
			return
		}
		p = &(*p).next
	}
}

// recycle zeroes e's slot array (remove fires at used == 0, so this is
// normally a no-op pass — it is kept as a hard guarantee that recycled
// arrays read empty), stashes it on the matching freelist, and parks the
// header for reuse.
func (t *Table[T]) recycle(e *entry[T]) {
	var zero T
	for i := range e.slots {
		e.slots[i] = zero
	}
	if e.dense {
		t.freeDense = append(t.freeDense, e.slots)
	} else {
		t.freeSparse = append(t.freeSparse, e.slots)
	}
	e.slots = nil
	e.next = nil
	t.freeEnts = append(t.freeEnts, e)
}

// expand converts a sparse (word-granular) entry to a dense (byte-granular)
// one, replicating each word pointer into its four byte slots. This is the
// m/4 → m growth in Figure 4.
func (e *entry[T]) expand(t *Table[T]) {
	if e.dense {
		return
	}
	var ns []T
	if k := len(t.freeDense); k > 0 {
		ns = t.freeDense[k-1]
		t.freeDense[k-1] = nil
		t.freeDense = t.freeDense[:k-1]
	} else {
		ns = make([]T, denseSlots)
	}
	var zero T
	for i, v := range e.slots {
		if v != zero {
			ns[4*i], ns[4*i+1], ns[4*i+2], ns[4*i+3] = v, v, v, v
			e.slots[i] = zero // zero the sparse array as we drain it
		}
	}
	t.freeSparse = append(t.freeSparse, e.slots)
	e.used *= 4
	e.slots = ns
	e.dense = true
	t.account((denseSlots - sparseSlots) * slotBytes)
}

// slotIndex returns the index of addr's slot in e, or -1 when the sparse
// array cannot address it without expansion (which never happens for
// word-aligned addresses).
func (e *entry[T]) slotIndex(addr uint64) int {
	off := int(addr & blockMask)
	if e.dense {
		return off
	}
	return off >> 2
}

// Get returns the node whose range covers addr, or the zero T.
func (t *Table[T]) Get(addr uint64) T {
	e := t.find(addr >> blockShift)
	if e == nil {
		var zero T
		return zero
	}
	return e.slots[e.slotIndex(addr)]
}

// aligned reports whether [lo, hi) can be represented by a sparse entry,
// i.e. both bounds are word-aligned.
func aligned(lo, hi uint64) bool { return lo&3 == 0 && hi&3 == 0 }

// SetRange points every slot in [lo, hi) at v, expanding entries to byte
// granularity when the range is not word-aligned. v must be non-zero.
func (t *Table[T]) SetRange(lo, hi uint64, v T) {
	var zero T
	for lo < hi {
		blockEnd := (lo | blockMask) + 1
		end := hi
		if end > blockEnd {
			end = blockEnd
		}
		e := t.findOrCreate(lo >> blockShift)
		if !e.dense && !aligned(lo, end) {
			e.expand(t)
		}
		if e.dense {
			for a := lo; a < end; a++ {
				i := int(a & blockMask)
				if e.slots[i] == zero {
					e.used++
				}
				e.slots[i] = v
			}
		} else {
			for a := lo; a < end; a += 4 {
				i := int(a&blockMask) >> 2
				if e.slots[i] == zero {
					e.used++
				}
				e.slots[i] = v
			}
		}
		lo = end
	}
}

// ClearRange erases every slot in [lo, hi), removing entries that become
// empty (the free() path).
func (t *Table[T]) ClearRange(lo, hi uint64) {
	var zero T
	for lo < hi {
		blockEnd := (lo | blockMask) + 1
		end := hi
		if end > blockEnd {
			end = blockEnd
		}
		if e := t.find(lo >> blockShift); e != nil {
			if !e.dense && !aligned(lo, end) {
				e.expand(t)
			}
			step := uint64(4)
			if e.dense {
				step = 1
			}
			for a := lo; a < end; a += step {
				i := e.slotIndex(a)
				if e.slots[i] != zero {
					e.slots[i] = zero
					e.used--
				}
			}
			if e.used == 0 {
				t.remove(e)
			}
		}
		lo = end
	}
}

// ForRange calls f for every set slot in [lo, hi) in address order, with the
// slot's granule start address and node. A node covering several slots is
// visited once per slot; callers coalesce by pointer identity. f returning
// false stops the walk.
func (t *Table[T]) ForRange(lo, hi uint64, f func(addr uint64, v T) bool) {
	var zero T
	for lo < hi {
		blockEnd := (lo | blockMask) + 1
		end := hi
		if end > blockEnd {
			end = blockEnd
		}
		if e := t.find(lo >> blockShift); e != nil {
			step := uint64(4)
			if e.dense {
				step = 1
			}
			a := lo &^ (step - 1)
			for ; a < end; a += step {
				v := e.slots[e.slotIndex(a)]
				if v != zero && !f(a, v) {
					return
				}
			}
		}
		lo = end
	}
}

// PrevSet scans left from addr-1 for at most maxDist addresses and returns
// the nearest address with a node. It realizes the paper's "nearest
// predecessor that has a valid vector clock" neighbour lookup for
// first-epoch sharing; the bound keeps it O(1) (padding gaps inside C
// structs are at most 7 bytes, so a small bound loses nothing). Each hash
// entry on the path is resolved once and its indexing array scanned
// directly.
func (t *Table[T]) PrevSet(addr uint64, maxDist int) (uint64, T, bool) {
	var zero T
	var e *entry[T]
	var eKey uint64 = ^uint64(0)
	for d := 1; d <= maxDist; d++ {
		a := addr - uint64(d)
		if a > addr { // wrapped below zero
			break
		}
		if key := a >> blockShift; key != eKey {
			e, eKey = t.find(key), key
		}
		if e == nil {
			// Skip the rest of this empty block in one step.
			d += int(a & blockMask)
			continue
		}
		if v := e.slots[e.slotIndex(a)]; v != zero {
			return a, v, true
		}
	}
	return 0, zero, false
}

// NextSet scans right from addr for at most maxDist addresses and returns
// the nearest address with a node (the successor neighbour lookup).
func (t *Table[T]) NextSet(addr uint64, maxDist int) (uint64, T, bool) {
	var zero T
	var e *entry[T]
	var eKey uint64 = ^uint64(0)
	for d := 0; d < maxDist; d++ {
		a := addr + uint64(d)
		if key := a >> blockShift; key != eKey {
			e, eKey = t.find(key), key
		}
		if e == nil {
			d += int(blockMask - a&blockMask)
			continue
		}
		if v := e.slots[e.slotIndex(a)]; v != zero {
			return a, v, true
		}
	}
	return 0, zero, false
}

// EntryDense reports whether the entry covering addr exists and has been
// expanded to byte granularity. Tests of Figure 4 use it.
func (t *Table[T]) EntryDense(addr uint64) (exists, dense bool) {
	e := t.find(addr >> blockShift)
	if e == nil {
		return false, false
	}
	return true, e.dense
}
