package shadow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type node struct{ id int }

func TestGetEmpty(t *testing.T) {
	tab := New[*node]()
	if tab.Get(0x1234) != nil {
		t.Error("empty table must return nil")
	}
}

func TestSetRangeGet(t *testing.T) {
	tab := New[*node]()
	n := &node{1}
	tab.SetRange(0x100, 0x110, n)
	for a := uint64(0x100); a < 0x110; a++ {
		if tab.Get(a) != n {
			t.Fatalf("Get(%#x) missed", a)
		}
	}
	if tab.Get(0xff) != nil || tab.Get(0x110) != nil {
		t.Error("range bounds leaked")
	}
}

// Figure 4: word-aligned ranges keep the sparse m/4 indexing array; an
// unaligned access expands it to m pointers with replication.
func TestFigure4Expansion(t *testing.T) {
	tab := New[*node]()
	n1 := &node{1}
	tab.SetRange(0x1000, 0x1004, n1)
	if exists, dense := tab.EntryDense(0x1000); !exists || dense {
		t.Fatalf("word-aligned range should stay sparse: exists=%v dense=%v", exists, dense)
	}
	sparseBytes := tab.Bytes()

	n2 := &node{2}
	tab.SetRange(0x1005, 0x1006, n2) // byte access
	if _, dense := tab.EntryDense(0x1000); !dense {
		t.Fatal("unaligned access must expand the entry")
	}
	if tab.Bytes() <= sparseBytes {
		t.Error("expansion must grow the accounted size")
	}
	// Replication: the word pointer must still resolve per byte.
	for a := uint64(0x1000); a < 0x1004; a++ {
		if tab.Get(a) != n1 {
			t.Fatalf("replicated lookup failed at %#x", a)
		}
	}
	if tab.Get(0x1005) != n2 {
		t.Error("byte slot lost")
	}
	if tab.Get(0x1004) != nil || tab.Get(0x1006) != nil {
		t.Error("expansion invented slots")
	}
}

func TestClearRangeRemovesEmptyEntries(t *testing.T) {
	tab := New[*node]()
	n := &node{1}
	tab.SetRange(0x200, 0x240, n)
	if tab.Entries() != 1 {
		t.Fatalf("entries = %d, want 1", tab.Entries())
	}
	tab.ClearRange(0x200, 0x240)
	if tab.Entries() != 0 {
		t.Errorf("empty entry not removed: entries=%d", tab.Entries())
	}
	if tab.Get(0x210) != nil {
		t.Error("cleared slot still set")
	}
}

func TestClearRangePartial(t *testing.T) {
	tab := New[*node]()
	n := &node{1}
	tab.SetRange(0x300, 0x320, n)
	tab.ClearRange(0x308, 0x310)
	if tab.Get(0x300) != n || tab.Get(0x31f) != n {
		t.Error("untouched parts must remain")
	}
	if tab.Get(0x308) != nil || tab.Get(0x30f) != nil {
		t.Error("cleared middle must be empty")
	}
}

func TestRangesAcrossBlocks(t *testing.T) {
	tab := New[*node]()
	n := &node{1}
	lo := uint64(BlockSize - 8)
	hi := uint64(BlockSize + 8)
	tab.SetRange(lo, hi, n)
	if tab.Entries() != 2 {
		t.Fatalf("cross-block range must touch 2 entries, got %d", tab.Entries())
	}
	for a := lo; a < hi; a++ {
		if tab.Get(a) != n {
			t.Fatalf("Get(%#x) missed across block boundary", a)
		}
	}
	tab.ClearRange(lo, hi)
	if tab.Entries() != 0 {
		t.Error("both entries should be removed")
	}
}

func TestForRangeVisitsInOrder(t *testing.T) {
	tab := New[*node]()
	a, b := &node{1}, &node{2}
	tab.SetRange(0x100, 0x108, a)
	tab.SetRange(0x10c, 0x110, b)
	var got []uint64
	tab.ForRange(0xf0, 0x120, func(addr uint64, n *node) bool {
		got = append(got, addr)
		return true
	})
	if len(got) == 0 || got[0] != 0x100 {
		t.Fatalf("walk order wrong: %#x", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not ascending: %#x", got)
		}
	}
	// Early stop.
	count := 0
	tab.ForRange(0x100, 0x120, func(uint64, *node) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d slots", count)
	}
}

func TestPrevNextSet(t *testing.T) {
	tab := New[*node]()
	n := &node{1}
	tab.SetRange(0x100, 0x104, n)

	if a, v, ok := tab.PrevSet(0x108, 8); !ok || a != 0x103 || v != n {
		t.Errorf("PrevSet = (%#x, %v, %v)", a, v, ok)
	}
	if _, _, ok := tab.PrevSet(0x110, 8); ok {
		t.Error("PrevSet beyond maxDist must miss")
	}
	if a, v, ok := tab.NextSet(0xfc, 8); !ok || a != 0x100 || v != n {
		t.Errorf("NextSet = (%#x, %v, %v)", a, v, ok)
	}
	if _, _, ok := tab.NextSet(0xf0, 8); ok {
		t.Error("NextSet beyond maxDist must miss")
	}
	// NextSet includes the start address itself.
	if a, _, ok := tab.NextSet(0x102, 4); !ok || a != 0x102 {
		t.Errorf("NextSet at a set address = (%#x, %v)", a, ok)
	}
}

func TestPrevSetAtZero(t *testing.T) {
	tab := New[*node]()
	if _, _, ok := tab.PrevSet(2, 8); ok {
		t.Error("PrevSet near zero must not wrap")
	}
}

func TestPrevNextAcrossBlockBoundary(t *testing.T) {
	tab := New[*node]()
	n := &node{1}
	tab.SetRange(BlockSize-4, BlockSize, n) // last word of block 0
	if a, _, ok := tab.PrevSet(BlockSize+2, 8); !ok || a != BlockSize-1 {
		t.Errorf("PrevSet across boundary = (%#x, %v)", a, ok)
	}
	tab2 := New[*node]()
	tab2.SetRange(BlockSize, BlockSize+4, n) // first word of block 1
	if a, _, ok := tab2.NextSet(BlockSize-4, 8); !ok || a != BlockSize {
		t.Errorf("NextSet across boundary = (%#x, %v)", a, ok)
	}
}

func TestAccountingReleasesOnClear(t *testing.T) {
	tab := New[*node]()
	empty := tab.Bytes()
	n := &node{1}
	for i := 0; i < 64; i++ {
		tab.SetRange(uint64(i)*BlockSize, uint64(i)*BlockSize+8, n)
	}
	grown := tab.Bytes()
	if grown <= empty {
		t.Fatal("accounting did not grow")
	}
	if tab.PeakBytes() < grown {
		t.Fatal("peak below current")
	}
	for i := 0; i < 64; i++ {
		tab.ClearRange(uint64(i)*BlockSize, uint64(i)*BlockSize+8)
	}
	if tab.Bytes() >= grown {
		t.Error("accounting did not shrink after clears")
	}
	if tab.PeakBytes() < grown {
		t.Error("peak must be sticky")
	}
}

func TestHashGrowth(t *testing.T) {
	tab := New[*node]()
	n := &node{1}
	// Far more blocks than the initial bucket count.
	for i := 0; i < 2000; i++ {
		a := uint64(i) * BlockSize
		tab.SetRange(a, a+4, n)
	}
	for i := 0; i < 2000; i++ {
		a := uint64(i) * BlockSize
		if tab.Get(a) != n {
			t.Fatalf("lost slot %d after rehash", i)
		}
	}
	if tab.Entries() != 2000 {
		t.Errorf("entries = %d", tab.Entries())
	}
}

// Model-based property: a sequence of random SetRange/ClearRange operations
// agrees with a plain map reference at every address.
func TestQuickAgainstMapModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := New[*node]()
		ref := map[uint64]*node{}
		const span = 1024
		for op := 0; op < 300; op++ {
			lo := uint64(rng.Intn(span))
			hi := lo + uint64(rng.Intn(16)) + 1
			if rng.Intn(3) == 0 {
				tab.ClearRange(lo, hi)
				for a := lo; a < hi; a++ {
					delete(ref, a)
				}
			} else {
				n := &node{op}
				tab.SetRange(lo, hi, n)
				for a := lo; a < hi; a++ {
					ref[a] = n
				}
			}
		}
		for a := uint64(0); a < span+16; a++ {
			if tab.Get(a) != ref[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The word-granular (sparse) representation is an internal optimization; it
// must never change observable contents when an expansion happens.
func TestQuickExpansionTransparent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := New[*node]()
		ref := map[uint64]*node{}
		// Phase 1: word-aligned ranges only (entry stays sparse).
		for op := 0; op < 50; op++ {
			lo := uint64(rng.Intn(24)) * 4
			hi := lo + uint64(rng.Intn(4)+1)*4
			n := &node{op}
			tab.SetRange(lo, hi, n)
			for a := lo; a < hi; a++ {
				ref[a] = n
			}
		}
		// Phase 2: one byte write triggers expansion.
		n := &node{999}
		tab.SetRange(33, 34, n)
		ref[33] = n
		for a := uint64(0); a < 128; a++ {
			if tab.Get(a) != ref[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
