package shadow

import "testing"

func BenchmarkGetHit(b *testing.B) {
	tab := New[*node]()
	n := &node{1}
	tab.SetRange(0x1000, 0x1100, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tab.Get(0x1000 + uint64(i&0xff))
	}
}

func BenchmarkGetMiss(b *testing.B) {
	tab := New[*node]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tab.Get(uint64(i) * 64)
	}
}

func BenchmarkSetRangeWord(b *testing.B) {
	tab := New[*node]()
	n := &node{1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := uint64(i&0xffff) * 4
		tab.SetRange(a, a+4, n)
	}
}

func BenchmarkSetRangeByte(b *testing.B) {
	tab := New[*node]()
	n := &node{1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := uint64(i&0xffff)*4 + 1
		tab.SetRange(a, a+1, n)
	}
}

func BenchmarkPrevSet(b *testing.B) {
	tab := New[*node]()
	n := &node{1}
	tab.SetRange(0x1000, 0x1004, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = tab.PrevSet(0x1008, 8)
	}
}
