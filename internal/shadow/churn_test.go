package shadow

import (
	"math/rand"
	"testing"
)

// node (the dummy pointer payload) is declared in shadow_test.go.

// model is an oracle: a plain map from address to node pointer.
type model map[uint64]*node

func (m model) setRange(lo, hi uint64, v *node) {
	for a := lo; a < hi; a++ {
		m[a] = v
	}
}

func (m model) clearRange(lo, hi uint64) {
	for a := lo; a < hi; a++ {
		delete(m, a)
	}
}

// checkInvariants asserts the accounting invariants that must hold at every
// point of an interleaved insert/remove/grow history.
func checkInvariants(t *testing.T, tab *Table[*node]) {
	t.Helper()
	if tab.Entries() < 0 {
		t.Fatalf("Entries() went negative: %d", tab.Entries())
	}
	if tab.Bytes() < 0 {
		t.Fatalf("Bytes() went negative: %d", tab.Bytes())
	}
	if tab.PeakBytes() < tab.Bytes() {
		t.Fatalf("PeakBytes() %d < Bytes() %d", tab.PeakBytes(), tab.Bytes())
	}
}

// checkAgainstModel verifies every address the model knows about (and a halo
// around them) through Get.
func checkAgainstModel(t *testing.T, tab *Table[*node], m model, lo, hi uint64) {
	t.Helper()
	for a := lo; a < hi; a++ {
		want := m[a] // nil when absent
		if got := tab.Get(a); got != want {
			t.Fatalf("Get(%#x) = %v, want %v", a, got, want)
		}
	}
}

// TestChurnInterleaved drives interleaved SetRange/ClearRange traffic with
// word-aligned and unaligned ranges (forcing sparse→dense expansion) against
// a map oracle, asserting the accounting invariants after every operation.
// The address space is sized to push the table through several grow()
// rehashes while removals run concurrently with inserts.
func TestChurnInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := New[*node]()
	m := model{}

	const span = uint64(1 << 16) // 512 blocks; >256 entries forces grows
	nodes := make([]*node, 0, 4096)
	for i := 0; i < 6000; i++ {
		lo := rng.Uint64() % span
		length := uint64(1 + rng.Intn(20))
		if rng.Intn(2) == 0 {
			// Word-aligned range: exercises the sparse path.
			lo &^= 3
			length = (length + 3) &^ 3
		}
		hi := lo + length
		switch rng.Intn(3) {
		case 0, 1:
			v := &node{id: i}
			nodes = append(nodes, v)
			tab.SetRange(lo, hi, v)
			m.setRange(lo, hi, v)
		case 2:
			tab.ClearRange(lo, hi)
			m.clearRange(lo, hi)
		}
		checkInvariants(t, tab)
		if i%257 == 0 {
			// Periodic deep check around a random window.
			w := rng.Uint64() % span
			end := w + 512
			if end > span {
				end = span
			}
			checkAgainstModel(t, tab, m, w, end)
		}
	}
	checkAgainstModel(t, tab, m, 0, span)
	_ = nodes

	// Drain everything; the table must return to an empty state without
	// negative counters.
	tab.ClearRange(0, span)
	if tab.Entries() != 0 {
		t.Fatalf("Entries() = %d after full clear, want 0", tab.Entries())
	}
	checkInvariants(t, tab)
	for a := uint64(0); a < span; a += 37 {
		if tab.Get(a) != nil {
			t.Fatalf("Get(%#x) non-nil after full clear", a)
		}
	}
}

// TestChurnRangeNodesAcrossExpansion inserts a range node via the sparse
// (word-aligned) path, forces the covering entry dense with an unaligned
// insert, and checks the pre-existing range still resolves correctly and
// can be removed without accounting drift.
func TestChurnRangeNodesAcrossExpansion(t *testing.T) {
	tab := New[*node]()
	r := &node{id: 1}
	// Word-aligned range node covering 3 words of block 0.
	tab.SetRange(8, 20, r)
	if exists, dense := tab.EntryDense(8); !exists || dense {
		t.Fatalf("entry after aligned insert: exists=%v dense=%v, want sparse", exists, dense)
	}
	before := tab.Bytes()

	// Unaligned single-byte insert into the same block expands the entry.
	b := &node{id: 2}
	tab.SetRange(33, 34, b)
	if _, dense := tab.EntryDense(8); !dense {
		t.Fatal("entry should be dense after unaligned insert")
	}
	if tab.Bytes() <= before {
		t.Fatalf("expansion did not grow accounted bytes: %d -> %d", before, tab.Bytes())
	}
	// The replicated range node must still cover exactly [8, 20).
	for a := uint64(0); a < 64; a++ {
		var want *node
		switch {
		case a >= 8 && a < 20:
			want = r
		case a == 33:
			want = b
		}
		if got := tab.Get(a); got != want {
			t.Fatalf("Get(%#x) = %v, want %v after expansion", a, got, want)
		}
	}

	// Remove the range; the byte node must survive, then removing it empties
	// the entry and releases it.
	tab.ClearRange(8, 20)
	if got := tab.Get(33); got != b {
		t.Fatal("byte node lost when clearing unrelated range")
	}
	tab.ClearRange(33, 34)
	if tab.Entries() != 0 {
		t.Fatalf("Entries() = %d, want 0", tab.Entries())
	}
	if tab.Bytes() < 0 {
		t.Fatalf("Bytes() negative after removals: %d", tab.Bytes())
	}
	checkInvariants(t, tab)
}

// TestChurnLookupsAfterRehash fills enough distinct blocks to force several
// grow() rehashes, then verifies every key still resolves (including through
// the one-entry lookup cache) and that interleaved removals keep lookups
// correct.
func TestChurnLookupsAfterRehash(t *testing.T) {
	tab := New[*node]()
	const blocks = 2000 // well past 64*4, so grow() runs multiple times
	vals := make([]*node, blocks)
	for i := 0; i < blocks; i++ {
		vals[i] = &node{id: i}
		lo := uint64(i) * BlockSize
		tab.SetRange(lo, lo+4, vals[i])
	}
	if tab.Entries() != blocks {
		t.Fatalf("Entries() = %d, want %d", tab.Entries(), blocks)
	}
	for i := 0; i < blocks; i++ {
		lo := uint64(i) * BlockSize
		if got := tab.Get(lo); got != vals[i] {
			t.Fatalf("Get(block %d) = %v, want %v after rehash", i, got, vals[i])
		}
	}
	// Remove every other block; the cache must not serve stale entries.
	for i := 0; i < blocks; i += 2 {
		lo := uint64(i) * BlockSize
		tab.ClearRange(lo, lo+4)
		if got := tab.Get(lo); got != nil {
			t.Fatalf("Get(block %d) = %v after removal, want nil", i, got)
		}
		// Immediately re-query the just-removed block's neighbour, which
		// exercises cache invalidation + refill.
		if i+1 < blocks {
			if got := tab.Get(uint64(i+1) * BlockSize); got != vals[i+1] {
				t.Fatalf("Get(block %d) wrong after neighbour removal", i+1)
			}
		}
	}
	if tab.Entries() != blocks/2 {
		t.Fatalf("Entries() = %d, want %d", tab.Entries(), blocks/2)
	}
	checkInvariants(t, tab)
}

// TestChurnRemoveReinsertSameBlock exercises the remove → reinsert path on
// one block, which must not leak accounting or resurrect dense mode.
func TestChurnRemoveReinsertSameBlock(t *testing.T) {
	tab := New[*node]()
	for round := 0; round < 50; round++ {
		v := &node{id: round}
		// Unaligned insert: entry goes dense immediately.
		tab.SetRange(1, 7, v)
		if got := tab.Get(3); got != v {
			t.Fatalf("round %d: Get = %v, want %v", round, got, v)
		}
		tab.ClearRange(1, 7)
		if tab.Entries() != 0 {
			t.Fatalf("round %d: Entries() = %d, want 0", round, tab.Entries())
		}
		checkInvariants(t, tab)
	}
	// Steady-state churn must not ratchet current bytes upward: after the
	// last clear only the bucket array remains accounted.
	if tab.Bytes() != int64(cap(tab.buckets))*bucketSlotBytes {
		t.Fatalf("Bytes() = %d after churn, want bucket array only (%d)",
			tab.Bytes(), int64(cap(tab.buckets))*bucketSlotBytes)
	}
}
