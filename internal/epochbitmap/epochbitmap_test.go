package epochbitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFirstAccessIsNotSameEpoch(t *testing.T) {
	b := New()
	if b.Read(0x100, 0x104) {
		t.Error("first read cannot be same-epoch")
	}
	if b.Read(0x200, 0x201) {
		t.Error("first read of another address cannot be same-epoch")
	}
}

func TestRepeatIsSameEpoch(t *testing.T) {
	b := New()
	b.Read(0x100, 0x104)
	if !b.Read(0x100, 0x104) {
		t.Error("repeated read must be same-epoch")
	}
	b.Write(0x100, 0x104)
	// The write above was the first write (the read bits don't satisfy it)…
	if !b.Write(0x100, 0x104) {
		t.Error("…but the repeat must be")
	}
}

func TestWriteDoesNotCountAsRead(t *testing.T) {
	b := New()
	if b.Write(0x50, 0x54) {
		t.Error("first write cannot be same-epoch")
	}
	// A read after a write in the same epoch needs no further checking.
	if !b.Read(0x50, 0x54) {
		t.Error("read after write is same-epoch")
	}
}

func TestReadDoesNotSatisfyWrite(t *testing.T) {
	b := New()
	b.Read(0x60, 0x64)
	if b.Write(0x60, 0x64) {
		t.Error("a write after only reads must not be filtered")
	}
}

func TestPartialCoverageIsNotSameEpoch(t *testing.T) {
	b := New()
	b.Read(0x100, 0x104)
	if b.Read(0x102, 0x106) {
		t.Error("partially covered range must not be same-epoch")
	}
	if !b.Read(0x100, 0x106) {
		t.Error("now the union is covered")
	}
}

func TestResetClearsEverything(t *testing.T) {
	b := New()
	b.Read(0x100, 0x108)
	b.Write(0x100, 0x108)
	b.Reset()
	if b.Read(0x100, 0x108) {
		t.Error("reads must be forgotten after Reset")
	}
	b.Reset()
	if b.Write(0x100, 0x108) {
		t.Error("writes must be forgotten after Reset")
	}
}

func TestMarkCoversWithoutTesting(t *testing.T) {
	b := New()
	b.MarkRead(0x1000, 0x1080)
	if !b.Read(0x1010, 0x1018) {
		t.Error("marked range must read as same-epoch")
	}
	if b.Write(0x1010, 0x1018) {
		t.Error("MarkRead must not cover writes")
	}
	b.MarkWrite(0x2000, 0x2080)
	if !b.Write(0x2010, 0x2018) {
		t.Error("marked range must write as same-epoch")
	}
}

func TestCrossChunkRanges(t *testing.T) {
	b := New()
	lo := uint64(chunkAddrs - 8)
	hi := uint64(chunkAddrs + 8)
	if b.Write(lo, hi) {
		t.Error("first cross-chunk write cannot be same-epoch")
	}
	if !b.Write(lo, hi) {
		t.Error("repeat cross-chunk write must be same-epoch")
	}
	if !b.Write(lo+2, hi-2) {
		t.Error("covered sub-range must be same-epoch")
	}
}

func TestAccountingRetainsChunks(t *testing.T) {
	b := New()
	if b.Bytes() != 0 {
		t.Fatal("fresh bitmap accounts nothing")
	}
	b.Read(0, 1)
	one := b.Bytes()
	if one <= 0 {
		t.Fatal("chunk not accounted")
	}
	b.Read(uint64(chunkAddrs*5), uint64(chunkAddrs*5)+1)
	if b.Bytes() != 2*one {
		t.Errorf("two chunks expected: %d vs %d", b.Bytes(), 2*one)
	}
	b.Reset()
	if b.Bytes() != 2*one {
		t.Error("Reset keeps chunk storage (lazy clearing)")
	}
	if b.PeakBytes() != 2*one {
		t.Error("peak tracks retained chunks")
	}
}

// Property: the bitmap agrees with a per-address map model across random
// operations and resets.
func TestQuickAgainstModel(t *testing.T) {
	type state struct{ r, w bool }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New()
		ref := map[uint64]state{}
		for op := 0; op < 400; op++ {
			switch rng.Intn(10) {
			case 0:
				b.Reset()
				ref = map[uint64]state{}
			default:
				lo := uint64(rng.Intn(4096))
				hi := lo + uint64(rng.Intn(8)) + 1
				write := rng.Intn(2) == 0
				var got, want bool
				if write {
					got = b.Write(lo, hi)
					want = true
					for a := lo; a < hi; a++ {
						if !ref[a].w {
							want = false
						}
					}
					for a := lo; a < hi; a++ {
						s := ref[a]
						s.w = true
						ref[a] = s
					}
				} else {
					got = b.Read(lo, hi)
					want = true
					for a := lo; a < hi; a++ {
						if !ref[a].r && !ref[a].w {
							want = false
						}
					}
					for a := lo; a < hi; a++ {
						s := ref[a]
						s.r = true
						ref[a] = s
					}
				}
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
