// Package epochbitmap implements the per-thread same-epoch access filter of
// Section IV.A of the paper. In DJIT+/FastTrack only the first read and the
// first write of a location in an epoch need full analysis; every later
// access in the same epoch can return immediately. Looking a location up in
// the global shadow structure to discover this is expensive, so each thread
// keeps a private bitmap of the addresses it has read and written during the
// current epoch. The bitmap is reset at every lock release (the start of the
// thread's next epoch).
//
// The filter tracks reads and writes separately: a second write in an epoch
// is redundant only if the thread already wrote the location this epoch,
// while a second read is redundant if the thread already read *or wrote* it
// (the earlier write both performed the stronger checks and established the
// thread's access).
//
// Resetting is O(1): chunks carry a generation stamp and are lazily zeroed
// when touched under a newer generation, so per-release cost does not scale
// with the number of addresses touched. Retained chunk storage is accounted
// by object size for the Table 2 "Bitmap" column.
package epochbitmap

const (
	chunkAddrs = 2048 // addresses covered per chunk
	chunkShift = 11
	chunkMask  = chunkAddrs - 1
	chunkWords = chunkAddrs * 2 / 64 // 2 bits per address

	chunkHeaderBytes = 16
	chunkBytes       = chunkHeaderBytes + chunkWords*8
	mapSlotBytes     = 48 // map bucket amortized per live key, accounting estimate
)

type chunk struct {
	gen  uint32
	bits [chunkWords]uint64 // even bit: read, odd bit: write
}

// Bitmap is one thread's same-epoch filter. It is not safe for concurrent
// use; the engine runs one virtual thread at a time so this never arises.
type Bitmap struct {
	chunks map[uint64]*chunk
	gen    uint32

	curBytes  int64
	peakBytes int64
}

// New returns an empty bitmap.
func New() *Bitmap {
	return &Bitmap{chunks: make(map[uint64]*chunk), gen: 1}
}

// Reset starts a new epoch: every address reads as unaccessed afterwards.
func (b *Bitmap) Reset() { b.gen++ }

// Bytes returns the currently retained storage of the bitmap.
func (b *Bitmap) Bytes() int64 { return b.curBytes }

// PeakBytes returns the maximum retained storage reached so far.
func (b *Bitmap) PeakBytes() int64 { return b.peakBytes }

func (b *Bitmap) chunkFor(key uint64) *chunk {
	c := b.chunks[key]
	if c == nil {
		c = &chunk{gen: b.gen}
		b.chunks[key] = c
		b.curBytes += chunkBytes + mapSlotBytes
		if b.curBytes > b.peakBytes {
			b.peakBytes = b.curBytes
		}
		return c
	}
	if c.gen != b.gen {
		c.bits = [chunkWords]uint64{}
		c.gen = b.gen
	}
	return c
}

// laneRep replicates a 2-bit lane pattern across all 32 lanes of a word:
// 0b01 → 0x5555…, 0b10 → 0xAAAA…, 0b11 → all ones.
const laneRep = 0x5555555555555555

// testAndSet visits each address in [lo, hi) and reports whether every
// address already had the required bits. mask selects which of the two bits
// per address must already be present for the access to count as
// same-epoch; set selects which bits to record.
//
// Ranges that fall inside one 64-bit word (≤ 31 addresses, which covers
// every real access footprint) take a branch-free single-word fast path:
// the per-address loop collapses to three masked word operations. This is
// the detector's hottest code — it runs on every shared access — so the
// fast path is what keeps the same-epoch filter effectively free.
func (b *Bitmap) testAndSet(lo, hi uint64, need, set uint64) bool {
	if n := hi - lo; n > 0 && n <= 31 {
		off := (lo & chunkMask) * 2
		if sh := off & 63; sh+2*n <= 64 {
			c := b.chunkFor(lo >> chunkShift)
			w := &c.bits[off>>6]
			rangeMask := (uint64(1)<<(2*n) - 1) << sh
			// A lane (address) counts as covered when ANY of its required
			// bits is present; collapse each lane's two bits onto its low
			// bit and compare against the full lane set.
			x := *w & (need * laneRep) & rangeMask
			lanes := (laneRep << sh) & rangeMask
			all := (x|x>>1)&lanes == lanes
			*w |= (set * laneRep) & rangeMask
			return all
		}
	}
	all := true
	for lo < hi {
		key := lo >> chunkShift
		c := b.chunkFor(key)
		end := (lo | chunkMask) + 1
		if end > hi {
			end = hi
		}
		for a := lo; a < end; a++ {
			off := (a & chunkMask) * 2
			w := &c.bits[off/64]
			sh := off % 64
			if *w>>sh&need == 0 {
				all = false
			}
			*w |= set << sh
		}
		lo = end
	}
	return all
}

const (
	readBit  = 0b01
	writeBit = 0b10
)

// Read records a read of [lo, hi) and reports whether the whole range was
// already covered this epoch (in which case the detector can skip it).
func (b *Bitmap) Read(lo, hi uint64) (sameEpoch bool) {
	return b.testAndSet(lo, hi, readBit|writeBit, readBit)
}

// Write records a write of [lo, hi) and reports whether the whole range was
// already written this epoch.
func (b *Bitmap) Write(lo, hi uint64) (sameEpoch bool) {
	return b.testAndSet(lo, hi, writeBit, writeBit)
}

// MarkRead records [lo, hi) as read without testing. The dynamic-granularity
// detector uses it to cover a whole shared node after one of its locations
// is read, which is how a larger granularity turns multiple accesses into
// same-epoch accesses (Section V.A, "Slowdown").
func (b *Bitmap) MarkRead(lo, hi uint64) { b.testAndSet(lo, hi, 0, readBit) }

// MarkWrite records [lo, hi) as written without testing.
func (b *Bitmap) MarkWrite(lo, hi uint64) { b.testAndSet(lo, hi, 0, writeBit) }
