package epochbitmap

import (
	"math/rand"
	"testing"
)

// refBitmap is a straight-line reference model of the same-epoch filter:
// two per-address bit sets without chunking, generations or word tricks.
type refBitmap struct {
	read, write map[uint64]bool
}

func newRef() *refBitmap {
	return &refBitmap{read: map[uint64]bool{}, write: map[uint64]bool{}}
}

func (r *refBitmap) Reset() {
	r.read, r.write = map[uint64]bool{}, map[uint64]bool{}
}

func (r *refBitmap) Read(lo, hi uint64) bool {
	all := true
	for a := lo; a < hi; a++ {
		if !r.read[a] && !r.write[a] {
			all = false
		}
		r.read[a] = true
	}
	return all
}

func (r *refBitmap) Write(lo, hi uint64) bool {
	all := true
	for a := lo; a < hi; a++ {
		if !r.write[a] {
			all = false
		}
		r.write[a] = true
	}
	return all
}

func (r *refBitmap) MarkRead(lo, hi uint64) {
	for a := lo; a < hi; a++ {
		r.read[a] = true
	}
}

func (r *refBitmap) MarkWrite(lo, hi uint64) {
	for a := lo; a < hi; a++ {
		r.write[a] = true
	}
}

// TestWordFastPathEquivalence drives randomized read/write/mark/reset
// traffic through the bitmap and the reference model in lockstep. Range
// sizes and offsets are chosen to land on both sides of the single-word
// fast-path boundary (≤ 31 addresses within one 64-bit word) and to
// straddle word and chunk boundaries, so both code paths are exercised and
// must agree.
func TestWordFastPathEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := New()
	ref := newRef()
	for i := 0; i < 60000; i++ {
		// Bias offsets toward word (32-address) and chunk (2048-address)
		// boundaries, where the fast path must bail out correctly.
		base := rng.Uint64() % 4096
		switch rng.Intn(4) {
		case 0:
			base = base&^31 + uint64(rng.Intn(40)) // around word boundaries
		case 1:
			base = 2048 - uint64(rng.Intn(24)) // around the chunk boundary
		}
		n := uint64(1 + rng.Intn(40)) // 1..40: crosses the 31-address limit
		lo, hi := base, base+n
		switch rng.Intn(6) {
		case 0, 1:
			got, want := b.Read(lo, hi), ref.Read(lo, hi)
			if got != want {
				t.Fatalf("op %d: Read(%#x,%#x) = %v, ref %v", i, lo, hi, got, want)
			}
		case 2, 3:
			got, want := b.Write(lo, hi), ref.Write(lo, hi)
			if got != want {
				t.Fatalf("op %d: Write(%#x,%#x) = %v, ref %v", i, lo, hi, got, want)
			}
		case 4:
			b.MarkRead(lo, hi)
			ref.MarkRead(lo, hi)
		default:
			if rng.Intn(8) == 0 {
				b.Reset()
				ref.Reset()
			} else {
				b.MarkWrite(lo, hi)
				ref.MarkWrite(lo, hi)
			}
		}
	}
}

// TestFastPathLaneSemantics pins the lane arithmetic at the exact fast-path
// boundaries: single addresses, a full 31-address run at word offset 0/1,
// and a range whose last lane is the word's top lane.
func TestFastPathLaneSemantics(t *testing.T) {
	b := New()
	// 31 addresses starting at a word boundary: fast path (2*31 = 62 bits).
	if b.Write(0, 31) {
		t.Fatal("fresh 31-address write cannot be same-epoch")
	}
	if !b.Write(0, 31) {
		t.Fatal("repeat 31-address write must be same-epoch")
	}
	// One address shy of full coverage is not same-epoch.
	if b.Write(0, 32) {
		t.Fatal("write extending past covered range must not be same-epoch")
	}
	// Read sees the writes as coverage (need = read|write).
	if !b.Read(0, 32) {
		t.Fatal("read of fully written range must be same-epoch")
	}
	// Top lane of a word: addresses 31 (bits 62,63).
	b.Reset()
	if b.Write(31, 32) {
		t.Fatal("fresh top-lane write cannot be same-epoch")
	}
	if !b.Write(31, 32) {
		t.Fatal("repeat top-lane write must be same-epoch")
	}
	if b.Write(30, 31) {
		t.Fatal("neighbouring lane must be unaffected")
	}
	// Reset clears lazily but completely.
	b.Reset()
	if b.Read(31, 32) {
		t.Fatal("read after Reset must not be same-epoch")
	}
}
