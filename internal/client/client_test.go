package client

import (
	"context"
	"errors"
	"net"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/workloads"
)

// startServer starts a racedetectd on a loopback listener; shut down at
// test cleanup.
func startServer(t *testing.T, opts server.Options) (*server.Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil && err != server.ErrServerClosed {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, l.Addr().String()
}

func sortDetRaces(rs []detector.Race) []detector.Race {
	out := append([]detector.Race(nil), rs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.PC < b.PC
	})
	return out
}

// runRemote streams the named workload through a client built from opts
// and returns the remote report plus the in-process reference detector.
func runRemote(t *testing.T, opts Options, name string, g detector.Granularity) (*wire.Report, *detector.Detector, *Client) {
	t.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ref := detector.New(detector.Config{Granularity: g})
	sim.Run(spec.Program(), ref, sim.Options{Seed: 42})

	opts.Hello.Granularity = uint8(g)
	cl, err := Dial(opts)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(spec.Program(), cl, sim.Options{Seed: 42})
	rep, err := cl.Close()
	if err != nil {
		t.Fatalf("Close: %v (client err: %v)", err, cl.Err())
	}
	return rep, ref, cl
}

func checkEquivalent(t *testing.T, rep *wire.Report, ref *detector.Detector) {
	t.Helper()
	want := sortDetRaces(ref.Races())
	got := sortDetRaces(rep.DetectorRaces())
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("race sets differ:\nin-process (%d): %v\nremote (%d): %v",
			len(want), want, len(got), got)
	}
	if rep.Stats.Accesses != ref.Stats().Accesses {
		t.Fatalf("Accesses: in-process %d, remote %d",
			ref.Stats().Accesses, rep.Stats.Accesses)
	}
}

func TestAsyncStreaming(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	rep, ref, cl := runRemote(t,
		Options{Addr: addr, Hello: wire.Hello{Workers: 2}},
		"pbzip2", detector.Dynamic)
	checkEquivalent(t, rep, ref)
	st := cl.Stats()
	if st.Batches == 0 || st.Events == 0 {
		t.Fatalf("no transport activity recorded: %+v", st)
	}
	if st.Reconnects != 0 || st.Resends != 0 {
		t.Fatalf("unexpected reconnects on a healthy link: %+v", st)
	}
}

func TestSyncMode(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	rep, ref, cl := runRemote(t,
		Options{Addr: addr, Sync: true, Hello: wire.Hello{Workers: 2}},
		"pbzip2", detector.Word)
	checkEquivalent(t, rep, ref)
	// Strict ordering keeps exactly one batch in flight: everything the
	// client sent must be acknowledged by the time Close returns.
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.window != 1 {
		t.Fatalf("sync mode negotiated window %d, want 1", cl.window)
	}
	if len(cl.unacked) != 0 || cl.acked != cl.batchSeq {
		t.Fatalf("unacked frames after sync close: %d (acked %d of %d)",
			len(cl.unacked), cl.acked, cl.batchSeq)
	}
}

// TestReconnectResume kills the client's TCP connection mid-stream and
// checks the session resumes: the final report must still match the
// in-process run exactly (no lost or duplicated events).
func TestReconnectResume(t *testing.T) {
	_, addr := startServer(t, server.Options{SessionLinger: 5 * time.Second})
	spec, err := workloads.ByName("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	ref := detector.New(detector.Config{Granularity: detector.Dynamic})
	sim.Run(spec.Program(), ref, sim.Options{Seed: 42})

	cl, err := Dial(Options{
		Addr:        addr,
		Hello:       wire.Hello{Granularity: uint8(detector.Dynamic), Workers: 2},
		BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Sever the link a few times while the stream is in flight.
	stop := make(chan struct{})
	killed := make(chan int, 1)
	go func() {
		n := 0
		for i := 0; i < 3; i++ {
			select {
			case <-stop:
				killed <- n
				return
			case <-time.After(10 * time.Millisecond):
			}
			cl.mu.Lock()
			if cl.conn != nil && !cl.connDead {
				cl.conn.Close() // receiver sees the error and marks it dead
				n++
			}
			cl.mu.Unlock()
		}
		killed <- n
	}()

	sim.Run(spec.Program(), cl, sim.Options{Seed: 42})
	// Stop the killer before Close: a kill that lands after the report is
	// already delivered needs no reconnect, which would make the
	// Reconnects assertion below meaningless.
	close(stop)
	n := <-killed
	rep, err := cl.Close()
	if err != nil {
		t.Fatalf("Close after disconnects: %v", err)
	}
	checkEquivalent(t, rep, ref)

	if n > 0 {
		st := cl.Stats()
		if st.Reconnects == 0 {
			t.Fatalf("connection killed %d time(s) but no reconnects recorded: %+v", n, st)
		}
		t.Logf("killed %d connection(s): %+v", n, st)
	}
}

func TestDialFailureGivesUp(t *testing.T) {
	// An address that refuses connections: listen, then close.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	start := time.Now()
	_, err = Dial(Options{
		Addr:        addr,
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("Dial to a dead address succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("Dial retried far past its budget: %v", time.Since(start))
	}
}

func TestPermanentRejectionIsImmediate(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	_, err := Dial(Options{
		Addr:        addr,
		Hello:       wire.Hello{Granularity: 99},
		BackoffBase: time.Second, // would make retries visible in test time
	})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want *RemoteError, got %v", err)
	}
	if re.Code != wire.CodeBadOptions {
		t.Fatalf("code %q, want %q", re.Code, wire.CodeBadOptions)
	}
}
