// Package client streams an instrumentation event stream to a remote
// racedetectd (internal/server) over the wire protocol. Client implements
// event.Sink, so anything that can drive a detector in-process — the
// execution engine, a recorded trace replay — can instead stream to a
// detection service with one line changed (race.Options.Remote).
//
// # Streaming model
//
// Events are encoded into fixed-size batches on the caller's thread
// (event.Encoder, sync.Pool-recycled) and framed with a per-session batch
// sequence number. In the default asynchronous mode a background sender
// goroutine writes frames while the producer keeps running; the producer
// only blocks when the negotiated in-flight window is full (the server
// acknowledges applied sequences, so a slow detection pipeline
// back-pressures the producer instead of growing unbounded buffers).
// Options.Sync is the strict-ordering fallback: every batch is written on
// the caller's thread and acknowledged before the next is encoded, which
// pins the producer to the server's pace — useful for debugging and for
// producers that must not run ahead of detection.
//
// # Reconnect
//
// Unacknowledged frames are retained until acked. If the connection
// drops, the client redials with exponential backoff and resumes its
// session (Hello.Resume); the server replies with the last applied batch
// sequence, the client replays only the frames past it, and server-side
// sequence dedup makes the overlap harmless. A session the server has
// already expired is a permanent error — the stream cannot be replayed
// from the beginning — and is reported from Close.
//
// Close flushes the partial batch, drains the sender, sends the Close
// frame, and blocks for the server's race report (flush-on-close).
package client

import (
	"errors"
	"fmt"
	"net"
	"time"

	"sync"

	"repro/internal/event"
	"repro/internal/telemetry"
	"repro/internal/vc"
	"repro/internal/wire"
)

// Options configure a client connection.
type Options struct {
	// Addr is the racedetectd TCP address (host:port).
	Addr string
	// Hello carries the detection configuration to negotiate (granularity,
	// shard count, detector knobs). Version, Resume and Window are managed
	// by the client and ignored here.
	Hello wire.Hello
	// Window is the requested in-flight batch window (default 32; the
	// server may grant less).
	Window int
	// Sync selects the strict-ordering fallback: batches are written
	// synchronously on the caller's thread and each is acknowledged before
	// the next send. Default is asynchronous streaming.
	Sync bool
	// Codec is the requested batch-codec ceiling (0 = the best this build
	// speaks, wire.CodecMax). wire.CodecPacked forces the v1 fixed-record
	// format; the server may always grant less (an old server grants v1).
	// The negotiated codec is fixed for the life of the session — resumes
	// re-request it and fail permanently if the server switches.
	Codec int
	// BatchPolicy, when non-nil, adapts the batch flush threshold to
	// transport back-pressure: outbox occupancy at ship time and the
	// server's ack round trip (see event.BatchPolicy). Nil ships fixed
	// event.DefaultBatchSize batches.
	BatchPolicy *event.BatchPolicy

	// Backpressure, when non-nil, receives the same outbox-occupancy and
	// ack-RTT observations as BatchPolicy — the hook the budgeted
	// sampling lane's feedback controller (sampling.Controller) plugs
	// into. Independent of BatchPolicy: either, both or neither may be
	// set.
	Backpressure event.BackpressureObserver
	// DialTimeout bounds one dial attempt (default 5s).
	DialTimeout time.Duration
	// MaxAttempts bounds dial attempts per connect or reconnect
	// (default 5).
	MaxAttempts int
	// BackoffBase/BackoffMax shape the exponential retry backoff
	// (defaults 50ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// ReportTimeout bounds the wait for the final report after Close
	// (default 60s).
	ReportTimeout time.Duration
	// Logf, when non-nil, receives reconnect/resume diagnostics.
	Logf func(format string, args ...any)
	// Telemetry, when non-nil, receives the client transport instrument
	// families: batch/event/reconnect/resend counters (mirroring Stats),
	// a frame-encode latency histogram and an ack round-trip histogram.
	// Nil disables instrumentation.
	Telemetry *telemetry.Registry
	// TraceSample is the per-batch distributed-trace sampling rate in
	// [0, 1] (0 = tracing off). Sampled batches carry a span-context
	// payload prefix (wire.FlagTraced) — but only after the server grants
	// tracing in HelloAck.Trace, so a pre-trace server never sees traced
	// frames. Sampling is deterministic in the batch sequence number.
	TraceSample float64
	// Tracer, when non-nil, receives one client.batch root span per
	// sampled batch, closed when the server's ack arrives (span duration =
	// ack round trip). The same trace ID exemplifies the ack-RTT histogram.
	Tracer *telemetry.Tracer
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.ReportTimeout <= 0 {
		o.ReportTimeout = 60 * time.Second
	}
	if o.Codec <= 0 || o.Codec > wire.CodecMax {
		o.Codec = wire.CodecMax
	}
	return o
}

// Stats counts the client's transport work.
type Stats struct {
	Batches      uint64 // batch frames written (excluding resends)
	Events       uint64 // event records encoded
	PayloadBytes uint64 // batch payload bytes written (post-codec, excluding frame headers and resends)
	Reconnects   uint64 // successful re-dials after a drop
	Resends      uint64 // frames replayed on resume
}

// RemoteError is a server-reported protocol error (an Error frame).
type RemoteError struct {
	Code    string
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("racedetectd: %s: %s", e.Code, e.Message)
}

// permanent reports whether retrying the connection could ever succeed.
func (e *RemoteError) permanent() bool {
	switch e.Code {
	case wire.CodeBadVersion, wire.CodeBadOptions, wire.CodeNoSession, wire.CodeProtocol:
		return true
	}
	return false // session-limit, draining: the operator may free capacity
}

// sentFrame is one encoded batch frame retained until acknowledged.
type sentFrame struct {
	seq    uint64
	data   []byte
	events int
	// trace/span are the frame's sampled span context (0 = unsampled);
	// the root span closes when the ack prunes the frame.
	trace uint64
	span  uint64
	// sentAt is the wall time of the frame's last (re)transmission; the
	// ack round-trip histogram observes now-sentAt when the frame is
	// pruned. Zero when telemetry is disabled.
	sentAt time.Time
	// flush marks a sentinel queued by Flush: no payload, seq is the
	// watermark to drain to. Ordering through the outbox guarantees every
	// batch queued before the sentinel ships before the Flush frame.
	flush bool
}

// clientMetrics is the transport instrument set; the zero value (all-nil
// instruments) is the disabled set and every update is a no-op.
type clientMetrics struct {
	batches    *telemetry.Counter
	events     *telemetry.Counter
	reconnects *telemetry.Counter
	resends    *telemetry.Counter
	encodeNS   *telemetry.Histogram
	ackRTT     *telemetry.Histogram

	// rawBytes counts what the stream would cost as packed records
	// (records × wire.RecSize); payloadV1/payloadV2 count the batch
	// payload bytes actually encoded, by codec. Their quotient is the
	// live wire_compression_ratio gauge.
	rawBytes  *telemetry.Counter
	payloadV1 *telemetry.Counter
	payloadV2 *telemetry.Counter
}

// payload returns the payload-byte counter for codec (nil — a no-op —
// when telemetry is disabled or the codec is unknown).
func (m *clientMetrics) payload(codec int) *telemetry.Counter {
	switch codec {
	case wire.CodecPacked:
		return m.payloadV1
	case wire.CodecColumnar:
		return m.payloadV2
	}
	return nil
}

func newClientMetrics(r *telemetry.Registry) clientMetrics {
	if r == nil {
		return clientMetrics{}
	}
	m := clientMetrics{
		batches:    r.Counter("client_batches_total", "Batch frames written (excluding resends)."),
		events:     r.Counter("client_events_total", "Event records streamed."),
		reconnects: r.Counter("client_reconnects_total", "Successful re-dials after a connection drop."),
		resends:    r.Counter("client_resends_total", "Frames replayed on session resume."),
		encodeNS:   r.Histogram("client_encode_ns", "Per-batch frame encode latency."),
		ackRTT:     r.Histogram("client_ack_rtt_ns", "Send-to-ack round trip per acknowledged frame."),
		rawBytes:   r.Counter("wire_raw_bytes_total", "Batch bytes the stream would cost as packed records (records x 37)."),
		payloadV1:  r.Counter("wire_payload_bytes_total", "Batch payload bytes encoded, by codec.", telemetry.Labels{"codec": "v1"}),
		payloadV2:  r.Counter("wire_payload_bytes_total", "Batch payload bytes encoded, by codec.", telemetry.Labels{"codec": "v2"}),
	}
	raw, v1, v2 := m.rawBytes, m.payloadV1, m.payloadV2
	r.GaugeFunc("wire_compression_ratio", "Raw packed bytes over encoded payload bytes (1 = no compression).",
		func() float64 {
			p := v1.Load() + v2.Load()
			if p == 0 {
				return 0
			}
			return float64(raw.Load()) / float64(p)
		})
	return m
}

// Client is a remote-detection event.Sink. The Sink methods must be
// called from a single goroutine (the standard Sink contract); Close may
// be called once after the stream ends.
type Client struct {
	opts Options
	enc  event.Encoder

	mu       sync.Mutex
	cond     *sync.Cond
	conn     net.Conn
	gen      int // connection generation, bumps on every successful dial
	connDead bool

	sessionID uint64
	window    int
	codec     int  // negotiated batch codec, fixed for the session's life
	traced    bool // server granted HelloAck.Trace and TraceSample > 0
	batchSeq  uint64
	acked     uint64
	unacked   []sentFrame

	err         error
	report      *wire.Report
	reportReady bool

	outbox   chan sentFrame // async mode only
	sendDone chan struct{}

	stats Stats
	met   clientMetrics
}

// Dial connects to a racedetectd and negotiates a session. The returned
// Client is ready to receive events.
func Dial(opts Options) (*Client, error) {
	c := &Client{opts: opts.withDefaults()}
	c.met = newClientMetrics(c.opts.Telemetry)
	if c.opts.Sync {
		// Strict ordering keeps exactly one batch in flight; a window of 1
		// also forces the server's ack cadence to every batch, which the
		// per-batch ack wait depends on.
		c.opts.Window = 1
	}
	c.cond = sync.NewCond(&c.mu)
	c.enc.Flush = c.flushBatch

	c.mu.Lock()
	err := c.connectLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if p := c.opts.BatchPolicy; p != nil {
		c.enc.Target = p.Target()
	}
	if !c.opts.Sync {
		c.outbox = make(chan sentFrame, c.opts.Window)
		c.sendDone = make(chan struct{})
		go c.sender()
	}
	return c, nil
}

func (c *Client) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// SessionID returns the server-assigned session identifier.
func (c *Client) SessionID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessionID
}

// Codec returns the negotiated batch codec (wire.CodecPacked or
// wire.CodecColumnar).
func (c *Client) Codec() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.codec
}

// Traced reports whether the server granted distributed tracing for this
// session (HelloAck.Trace with a non-zero TraceSample).
func (c *Client) Traced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traced
}

// Stats returns a snapshot of the transport counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Err returns the first fatal transport error, if any. Events sent after
// a fatal error are dropped; Close reports the same error.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// ---- connection management ----

// connectLocked dials (with backoff), performs the Hello/HelloAck
// handshake — resuming the existing session when one is open — replays
// unacknowledged frames, and starts the receiver goroutine. Called with
// c.mu held. On permanent failure it sets c.err.
func (c *Client) connectLocked() error {
	if c.err != nil {
		return c.err
	}
	resuming := c.sessionID != 0
	backoff := c.opts.BackoffBase
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > c.opts.BackoffMax {
				backoff = c.opts.BackoffMax
			}
		}
		conn, ack, err := c.handshake()
		if err != nil {
			lastErr = err
			var re *RemoteError
			if errors.As(err, &re) && re.permanent() {
				c.err = err
				c.cond.Broadcast()
				return err
			}
			c.logf("connect attempt %d/%d failed: %v", attempt+1, c.opts.MaxAttempts, err)
			continue
		}
		granted := wire.NegotiateCodec(ack.Codec) // absent field = pre-codec server = v1
		if granted > c.opts.Codec {
			granted = c.opts.Codec // never exceed what we asked for
		}
		if resuming && granted != c.codec {
			// The retained unacked frames are encoded in the session codec;
			// a server that switches mid-session would misdecode the replay.
			conn.Close()
			c.err = fmt.Errorf("client: server switched codec %s -> %s on resume",
				wire.CodecName(c.codec), wire.CodecName(granted))
			c.cond.Broadcast()
			return c.err
		}
		c.codec = granted
		c.traced = ack.Trace && c.opts.TraceSample > 0
		c.conn = conn
		c.connDead = false
		c.gen++
		c.sessionID = ack.SessionID
		c.window = ack.Window
		if ack.ResumeSeq > c.acked {
			c.acked = ack.ResumeSeq
			c.pruneAckedLocked()
		}
		if resuming {
			c.stats.Reconnects++
			c.met.reconnects.Inc()
			c.logf("resumed session %d at seq %d, replaying %d frame(s)",
				ack.SessionID, ack.ResumeSeq, len(c.unacked))
		}
		// Replay everything past the server's resume point.
		for i := range c.unacked {
			sf := &c.unacked[i]
			if err := c.writeLocked(sf.data); err != nil {
				lastErr = err
				c.markDeadLocked()
				break
			}
			if c.trackRTT() {
				sf.sentAt = time.Now() // RTT restarts at the retransmission
			}
			if resuming {
				c.stats.Resends++
				c.met.resends.Inc()
			}
		}
		if c.connDead {
			continue
		}
		go c.receive(conn, c.gen)
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("client: could not connect to %s", c.opts.Addr)
	}
	c.err = fmt.Errorf("client: giving up after %d attempts: %w", c.opts.MaxAttempts, lastErr)
	c.cond.Broadcast()
	return c.err
}

// handshake dials and exchanges Hello/HelloAck on a fresh connection.
func (c *Client) handshake() (net.Conn, wire.HelloAck, error) {
	var ack wire.HelloAck
	conn, err := net.DialTimeout("tcp", c.opts.Addr, c.opts.DialTimeout)
	if err != nil {
		return nil, ack, err
	}
	hello := c.opts.Hello
	hello.Version = wire.Version
	hello.Resume = c.sessionID
	hello.Window = c.opts.Window
	hello.Codec = c.opts.Codec
	hello.Trace = c.opts.TraceSample > 0
	if c.sessionID != 0 {
		hello.Codec = c.codec // resume: re-request the session codec exactly
	}
	frame, err := wire.AppendControlFrame(nil, wire.Header{Type: wire.TypeHello}, hello)
	if err != nil {
		conn.Close()
		return nil, ack, err
	}
	conn.SetDeadline(time.Now().Add(c.opts.DialTimeout))
	if _, err := conn.Write(frame); err != nil {
		conn.Close()
		return nil, ack, err
	}
	rd := wire.NewReader(conn, 0)
	h, payload, err := rd.ReadFrame()
	if err != nil {
		conn.Close()
		return nil, ack, err
	}
	switch h.Type {
	case wire.TypeHelloAck:
		if err := wire.UnmarshalControl(payload, &ack); err != nil {
			conn.Close()
			return nil, ack, err
		}
		conn.SetDeadline(time.Time{})
		return conn, ack, nil
	case wire.TypeError:
		var ep wire.ErrorPayload
		conn.Close()
		if err := wire.UnmarshalControl(payload, &ep); err != nil {
			return nil, ack, err
		}
		return nil, ack, &RemoteError{Code: ep.Code, Message: ep.Message}
	default:
		conn.Close()
		return nil, ack, fmt.Errorf("client: unexpected handshake frame %v", h.Type)
	}
}

func (c *Client) writeLocked(frame []byte) error {
	_, err := c.conn.Write(frame)
	return err
}

func (c *Client) markDeadLocked() {
	c.connDead = true
	if c.conn != nil {
		c.conn.Close()
	}
}

// trackRTT reports whether send times must be stamped: the ack-RTT
// histogram, the adaptive batch policy and root-span durations all
// consume them.
func (c *Client) trackRTT() bool {
	return c.met.ackRTT != nil || c.opts.BatchPolicy != nil ||
		c.opts.Backpressure != nil || (c.traced && c.opts.Tracer != nil)
}

func (c *Client) pruneAckedLocked() {
	i := 0
	for i < len(c.unacked) && c.unacked[i].seq <= c.acked {
		if sf := &c.unacked[i]; !sf.sentAt.IsZero() {
			rtt := time.Since(sf.sentAt)
			c.met.ackRTT.ObserveTraced(uint64(rtt.Nanoseconds()), sf.trace)
			c.opts.BatchPolicy.ObserveRTT(rtt)
			if o := c.opts.Backpressure; o != nil {
				o.ObserveRTT(rtt)
			}
			if sf.trace != 0 && c.opts.Tracer != nil {
				c.opts.Tracer.RecordSpan(telemetry.SpanRecord{
					Trace: sf.trace, Span: sf.span,
					Name: "client.batch", Process: "client", Dur: rtt.Nanoseconds(),
					Args: map[string]any{"seq": sf.seq, "events": sf.events},
				})
			}
		}
		i++
	}
	if i > 0 {
		c.unacked = append(c.unacked[:0], c.unacked[i:]...)
	}
}

// receive is the per-connection reader: it applies acks (freeing the
// window), captures the final report, and marks the connection dead on
// any read error so the send path reconnects.
func (c *Client) receive(conn net.Conn, gen int) {
	rd := wire.NewReader(conn, 0)
	for {
		h, payload, err := rd.ReadFrame()
		c.mu.Lock()
		if c.gen != gen {
			c.mu.Unlock()
			return // superseded by a reconnect
		}
		if err != nil {
			c.markDeadLocked()
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		switch h.Type {
		case wire.TypeAck, wire.TypeFlushAck:
			if h.Seq > c.acked {
				c.acked = h.Seq
				c.pruneAckedLocked()
			}
			c.cond.Broadcast()
		case wire.TypeReport:
			var rep wire.Report
			if err := wire.UnmarshalControl(payload, &rep); err != nil {
				c.err = err
			} else {
				c.report = &rep
				c.reportReady = true
			}
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		case wire.TypeError:
			var ep wire.ErrorPayload
			if err := wire.UnmarshalControl(payload, &ep); err != nil {
				c.err = err
			} else {
				c.err = &RemoteError{Code: ep.Code, Message: ep.Message}
			}
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
	}
}

// ---- send path ----

// flushBatch is the Encoder's Flush hook: it frames the batch in the
// session codec, recycles it, and hands the frame to the sender (async)
// or sends it inline and waits for its ack (sync). It also services the
// adaptive policy: outbox occupancy is observed at ship time, and the
// encoder's next flush threshold is refreshed from the policy target.
func (c *Client) flushBatch(b *event.Batch) {
	n := len(b.Recs)
	c.mu.Lock()
	c.batchSeq++
	seq := c.batchSeq
	session := c.sessionID
	codec := c.codec
	traced := c.traced
	fatal := c.err != nil
	c.mu.Unlock()
	if fatal {
		event.PutBatch(b)
		return // the stream is already lost; drop cheaply
	}
	// Deterministic per-batch sampling: the same batch sequence samples the
	// same way on every run, and an unsampled batch's frame is byte
	// identical to the untraced encoding.
	var trace, span uint64
	if traced && telemetry.Sampled(seq, c.opts.TraceSample) {
		trace, span = telemetry.NewTraceID(), telemetry.NewTraceID()
	}
	var encStart time.Time
	if c.met.encodeNS != nil {
		encStart = time.Now()
	}
	frame := wire.AppendBatchFrameTraced(nil, wire.Header{Session: session, Seq: seq}, b, codec, trace, span)
	if c.met.encodeNS != nil {
		c.met.encodeNS.ObserveSince(encStart)
	}
	event.PutBatch(b)
	c.met.rawBytes.Add(uint64(n) * wire.RecSize)
	c.met.payload(codec).Add(uint64(len(frame) - wire.HeaderSize))
	sf := sentFrame{seq: seq, data: frame, events: n, trace: trace, span: span}
	if c.opts.Sync {
		c.send(sf, true)
		if p := c.opts.BatchPolicy; p != nil {
			c.enc.Target = p.Target() // RTT observations arrived with the ack
		}
		return
	}
	if p := c.opts.BatchPolicy; p != nil {
		// Producer's view of the consumer queue at ship time: an empty
		// outbox means the sender is keeping up (favor latency), a full
		// one means the window or the wire is the bottleneck (favor
		// throughput). The receiver goroutine feeds ack RTTs concurrently;
		// Target is read here, on the event thread, only.
		p.ObserveQueue(len(c.outbox), cap(c.outbox))
		c.enc.Target = p.Target()
	}
	if o := c.opts.Backpressure; o != nil {
		o.ObserveQueue(len(c.outbox), cap(c.outbox))
	}
	c.outbox <- sf // bounded; the sender always drains, even after errors
}

// sender is the async-mode writer goroutine.
func (c *Client) sender() {
	for sf := range c.outbox {
		if sf.flush {
			c.sendFlush(sf.seq)
			continue
		}
		c.send(sf, false)
	}
	close(c.sendDone)
}

// sendFlush writes a Flush frame and blocks until the server acknowledges
// every batch through target. Flush frames are not retained for resume
// (they carry no events), so after any reconnect — which replays the
// retained batches — the flush is re-sent on the fresh connection.
func (c *Client) sendFlush(target uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.err == nil && c.acked < target {
		if c.connDead || c.conn == nil {
			if c.connectLocked() != nil {
				return // fatal: c.err is set and broadcast
			}
			continue
		}
		frame := wire.AppendFrame(nil, wire.Header{
			Type: wire.TypeFlush, Session: c.sessionID, Seq: target,
		}, nil)
		if err := c.writeLocked(frame); err != nil {
			c.markDeadLocked()
			continue
		}
		for c.err == nil && c.acked < target && !c.connDead {
			c.cond.Wait()
		}
	}
}

// send writes one frame, respecting the in-flight window, reconnecting as
// needed; with waitAck it also blocks until the frame is acknowledged
// (strict ordering). Fatal errors are recorded in c.err and the frame is
// dropped.
func (c *Client) send(sf sentFrame, waitAck bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.err == nil {
		if c.connDead || c.conn == nil {
			if c.connectLocked() != nil {
				return
			}
			continue
		}
		if sf.seq-c.acked > uint64(c.window) {
			c.cond.Wait() // window full: wait for acks (or conn death)
			continue
		}
		if err := c.writeLocked(sf.data); err != nil {
			c.markDeadLocked()
			continue
		}
		if c.trackRTT() {
			sf.sentAt = time.Now()
		}
		c.unacked = append(c.unacked, sf)
		c.stats.Batches++
		c.stats.Events += uint64(sf.events)
		c.stats.PayloadBytes += uint64(len(sf.data) - wire.HeaderSize)
		c.met.batches.Inc()
		c.met.events.Add(uint64(sf.events))
		break
	}
	if !waitAck {
		return
	}
	for c.err == nil && c.acked < sf.seq {
		if c.connDead || c.conn == nil {
			if c.connectLocked() != nil {
				return // reconnect replays unacked frames, including sf
			}
			continue
		}
		c.cond.Wait()
	}
}

// ---- event.Sink ----

// Read encodes a shared-memory read.
func (c *Client) Read(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	c.enc.Read(tid, addr, size, pc)
}

// Write encodes a shared-memory write.
func (c *Client) Write(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	c.enc.Write(tid, addr, size, pc)
}

// Acquire encodes a lock acquisition.
func (c *Client) Acquire(tid vc.TID, l event.LockID) { c.enc.Acquire(tid, l) }

// Release encodes a lock release.
func (c *Client) Release(tid vc.TID, l event.LockID) { c.enc.Release(tid, l) }

// AcquireShared encodes a rwlock read-lock.
func (c *Client) AcquireShared(tid vc.TID, l event.LockID) { c.enc.AcquireShared(tid, l) }

// ReleaseShared encodes a rwlock read-unlock.
func (c *Client) ReleaseShared(tid vc.TID, l event.LockID) { c.enc.ReleaseShared(tid, l) }

// Fork encodes thread creation.
func (c *Client) Fork(parent, child vc.TID) { c.enc.Fork(parent, child) }

// Join encodes a thread join.
func (c *Client) Join(parent, child vc.TID) { c.enc.Join(parent, child) }

// BarrierArrive encodes a barrier arrival.
func (c *Client) BarrierArrive(tid vc.TID, b event.BarrierID) { c.enc.BarrierArrive(tid, b) }

// BarrierDepart encodes a barrier departure.
func (c *Client) BarrierDepart(tid vc.TID, b event.BarrierID) { c.enc.BarrierDepart(tid, b) }

// Malloc encodes a heap allocation.
func (c *Client) Malloc(tid vc.TID, addr, size uint64) { c.enc.Malloc(tid, addr, size) }

// Free encodes a heap deallocation.
func (c *Client) Free(tid vc.TID, addr, size uint64) { c.enc.Free(tid, addr, size) }

// ---- event.GoSink ----

// ChanSend encodes a channel send.
func (c *Client) ChanSend(tid vc.TID, ch event.ChanID, capacity int) {
	c.enc.ChanSend(tid, ch, capacity)
}

// ChanRecv encodes a channel receive.
func (c *Client) ChanRecv(tid vc.TID, ch event.ChanID, capacity int) {
	c.enc.ChanRecv(tid, ch, capacity)
}

// ChanAck encodes an unbuffered send completion.
func (c *Client) ChanAck(tid vc.TID, ch event.ChanID, capacity int) {
	c.enc.ChanAck(tid, ch, capacity)
}

// WGAdd encodes a WaitGroup counter increment.
func (c *Client) WGAdd(tid vc.TID, wg event.WGID, delta int) { c.enc.WGAdd(tid, wg, delta) }

// WGDone encodes a WaitGroup decrement.
func (c *Client) WGDone(tid vc.TID, wg event.WGID) { c.enc.WGDone(tid, wg) }

// WGWait encodes a WaitGroup wait completion.
func (c *Client) WGWait(tid vc.TID, wg event.WGID) { c.enc.WGWait(tid, wg) }

// ---- drain ----

// LastAcked returns the highest batch sequence the server has
// acknowledged. After a successful Flush it equals the number of batches
// shipped; a cluster coordinator reports it as the member's watermark
// when the member fails mid-stream.
func (c *Client) LastAcked() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acked
}

// Flush ships any partial batch and blocks until the server has applied
// and acknowledged every event sent so far, then returns the transport
// error state. The client remains usable for further events — Flush is a
// mid-stream drain barrier (migration uses it as the drain-to-watermark
// step), not a shutdown. Must be called from the event thread, like the
// Sink methods.
func (c *Client) Flush() error {
	c.enc.Close() // ship the partial batch; the encoder stays usable
	c.mu.Lock()
	target := c.batchSeq
	c.mu.Unlock()
	if c.opts.Sync || target == 0 {
		// Sync mode acks every batch inline, so the stream is already
		// drained; with no batches shipped there is nothing to wait for.
		return c.Err()
	}
	c.outbox <- sentFrame{seq: target, flush: true}
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.err == nil && c.acked < target {
		c.cond.Wait()
	}
	return c.err
}

// ---- shutdown ----

// Close flushes the partial batch, drains the sender, sends the Close
// frame and waits for the server's race report. It returns the report or
// the first fatal transport error.
func (c *Client) Close() (*wire.Report, error) {
	c.enc.Close() // flush the partial batch through flushBatch
	if !c.opts.Sync {
		close(c.outbox)
		<-c.sendDone
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if c.err != nil {
			break
		}
		if c.connDead || c.conn == nil {
			if c.connectLocked() != nil {
				break
			}
		}
		frame := wire.AppendFrame(nil, wire.Header{
			Type: wire.TypeClose, Session: c.sessionID, Seq: c.batchSeq,
		}, nil)
		if err := c.writeLocked(frame); err != nil {
			c.markDeadLocked()
			continue
		}
		// Bound the report wait: the receiver's blocked read fails at the
		// deadline and marks the connection dead, which wakes us.
		c.conn.SetReadDeadline(time.Now().Add(c.opts.ReportTimeout))
		for c.err == nil && !c.reportReady && !c.connDead {
			c.cond.Wait()
		}
		if c.reportReady {
			c.conn.Close()
			return c.report, nil
		}
		// Connection died before the report arrived; reconnect resumes the
		// session (the server has not seen Close, so it lingers) and
		// retries the Close.
	}
	if c.conn != nil {
		c.conn.Close()
	}
	if c.err == nil {
		c.err = fmt.Errorf("client: no report after %d close attempts", c.opts.MaxAttempts)
	}
	return nil, c.err
}
