package segment

import (
	"testing"

	"repro/internal/event"
	"repro/internal/fasttrack"
)

func TestDetectsUnorderedWrites(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x100, 4, 0)
	d.Write(1, 0x100, 4, 0)
	if len(d.Races()) != 1 {
		t.Fatalf("races = %v", d.Races())
	}
	r := d.Races()[0]
	if r.Kind != fasttrack.WriteWrite || r.Addr != 0x100 {
		t.Errorf("race = %+v", r)
	}
}

func TestAcceptsLockOrdering(t *testing.T) {
	d := New(Options{})
	d.Acquire(0, 1)
	d.Write(0, 0x100, 4, 0)
	d.Release(0, 1)
	d.Acquire(1, 1)
	d.Write(1, 0x100, 4, 0)
	d.Release(1, 1)
	if len(d.Races()) != 0 {
		t.Errorf("lock-ordered writes raced: %v", d.Races())
	}
}

func TestAcceptsForkJoinAndBarrier(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x100, 4, 0)
	d.Fork(0, 1)
	d.Write(1, 0x100, 4, 0)
	d.Join(0, 1)
	d.Write(0, 0x100, 4, 0)
	d.BarrierArrive(0, 1)
	d.BarrierArrive(1, 1)
	d.BarrierDepart(0, 1)
	d.BarrierDepart(1, 1)
	d.Write(1, 0x100, 4, 0)
	if len(d.Races()) != 0 {
		t.Errorf("sync-ordered accesses raced: %v", d.Races())
	}
}

func TestReadReadNoRace(t *testing.T) {
	d := New(Options{})
	d.Read(0, 0x100, 4, 0)
	d.Read(1, 0x100, 4, 0)
	if len(d.Races()) != 0 {
		t.Errorf("read-read raced: %v", d.Races())
	}
}

func TestWriteReadRace(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x100, 4, 0)
	d.Read(1, 0x100, 4, 0)
	if len(d.Races()) != 1 || d.Races()[0].Kind != fasttrack.WriteRead {
		t.Errorf("races = %v", d.Races())
	}
}

func TestRetainedSegmentStillChecked(t *testing.T) {
	// Thread 0's racy write is in a *finished* segment (it synchronized
	// with a third party afterwards); the race with thread 1 must still
	// be found against the retained segment.
	d := New(Options{})
	d.Fork(0, 1) // thread 1 exists (and is concurrent) from here on
	d.Write(0, 0x100, 4, 0)
	d.Acquire(0, 5) // ends the segment; lock 5 is unrelated to thread 1
	d.Release(0, 5)
	d.Write(1, 0x999, 4, 0) // thread 1 becomes live in the detector
	d.Write(1, 0x100, 4, 0)
	if len(d.Races()) != 1 {
		t.Errorf("retained-segment race missed: %v", d.Races())
	}
}

func TestHistoryBoundDropsOldestOnly(t *testing.T) {
	d := New(Options{SegmentHistory: 2})
	d.Fork(0, 1)
	d.Write(1, 0x999, 4, 0) // thread 1 is live and concurrent
	// Build many finished segments for thread 0.
	for i := 0; i < 10; i++ {
		d.Write(0, uint64(0x1000+i*64), 4, 0)
		d.Acquire(0, 5)
		d.Release(0, 5)
	}
	if d.Dropped == 0 {
		t.Error("history bound never triggered")
	}
	// The most recent segment is retained: still detectable.
	d.Write(1, 0x1000+9*64, 4, 0)
	if len(d.Races()) != 1 {
		t.Errorf("recent retained race missed: %v", d.Races())
	}
}

func TestPruneDropsOrderedSegments(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x100, 4, 0)
	d.Release(0, 1) // finished segment, published on lock 1
	peakAfterWrite := d.PeakBytes()
	// Both other threads acquire lock 1: the segment is ordered before
	// everyone and gets pruned at the next segment end.
	d.Acquire(1, 1)
	d.Write(1, 0x200, 4, 0)
	d.Release(1, 1)
	if d.PeakBytes() < peakAfterWrite {
		t.Error("peak must be sticky")
	}
	// No race reported despite the same address being rewritten later.
	d.Acquire(1, 1)
	d.Write(1, 0x100, 4, 0)
	if len(d.Races()) != 0 {
		t.Errorf("ordered access raced: %v", d.Races())
	}
}

func TestFreeGenerationGuard(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x100, 4, 0)
	d.Acquire(0, 5)
	d.Release(0, 5) // retire the segment so it would otherwise match
	d.Free(0, 0x100, 4)
	// A new allocation reuses the address; no relation to the old write.
	d.Write(1, 0x100, 4, 0)
	if len(d.Races()) != 0 {
		t.Errorf("reused address raced with freed allocation: %v", d.Races())
	}
}

func TestFirstRacePerLocation(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x100, 4, 0)
	d.Write(1, 0x100, 4, 0)
	d.Write(0, 0x100, 4, 0)
	d.Write(1, 0x100, 4, 0)
	if len(d.Races()) != 1 {
		t.Errorf("got %d races, want 1", len(d.Races()))
	}
}

func TestMemoryLimitAborts(t *testing.T) {
	d := New(Options{MemLimitBytes: 2048})
	for i := 0; i < 64; i++ {
		// Touch many pages to blow the accounted bitmap budget.
		d.Write(0, uint64(i)<<pageShift, 4, 0)
	}
	if !d.OOM() {
		t.Fatal("memory limit never tripped")
	}
	before := len(d.Races())
	d.Write(1, 0, 4, 0) // post-OOM events are ignored
	if len(d.Races()) != before {
		t.Error("post-OOM analysis must stop")
	}
}

func TestFootprintKeyingKeepsSubwordFieldsApart(t *testing.T) {
	// Two byte fields in the same word, each consistently protected by its
	// own lock: no false alarm (this is what word-granularity masking gets
	// wrong).
	d := New(Options{})
	d.Acquire(0, 1)
	d.Write(0, 0x100, 1, 0)
	d.Release(0, 1)
	d.Acquire(1, 2)
	d.Write(1, 0x101, 1, 0)
	d.Release(1, 2)
	d.Acquire(0, 1)
	d.Write(0, 0x100, 1, 0)
	d.Release(0, 1)
	if len(d.Races()) != 0 {
		t.Errorf("sub-word fields masked together: %v", d.Races())
	}
}

func TestSuppression(t *testing.T) {
	d := New(Options{})
	// Races whose PCs are in libc are suppressed (module in high byte).
	libcPC := uint32(1)<<24 | 7
	d.Write(0, 0x700, 4, pcOf(libcPC))
	d.Write(1, 0x700, 4, pcOf(libcPC))
	if len(d.Races()) != 0 {
		t.Errorf("suppressed race reported: %v", d.Races())
	}
}

// pcOf converts a raw uint32 into an event.PC for tests.
func pcOf(v uint32) event.PC { return event.PC(v) }
