// Package segment implements a segment-based happens-before race detector
// in the style of RecPlay (Ronsse & De Bosschere, TOCS 1999), the algorithm
// behind Valgrind DRD — the first of the two happens-before methods the
// paper describes in Section I: a *segment* is the code between two
// successive synchronization operations; shared accesses are collected in
// per-segment access sets; and two concurrent segments race if one's writes
// intersect the other's reads or writes.
//
// Compared with per-location vector clocks (DJIT+/FastTrack), this method
// stores no clock per location — only per-segment access bitmaps — so it
// uses less memory, but every access must be checked against the access
// sets of all concurrent segments, which costs set operations and makes it
// slower. That trade-off is exactly what Table 6 measures against
// FastTrack with dynamic granularity.
//
// History management follows DRD's spirit: a finished segment is retained
// until it happens-before every live thread (at which point it can never
// race again and is pruned); a per-thread cap bounds the retained history,
// discarding the oldest segment when exceeded (bounded history can miss
// old races but never invents them — unlike merging segments under joined
// clocks, which would make ordered pipeline stages look concurrent).
// Heap reuse is handled with an allocation generation: a segment created
// before an address was freed cannot race with accesses to its
// reincarnation.
//
// Memory accounting models a C implementation the way the paper measures
// (by object size): per segment, a clock, a header, and two bits per word
// in page-granular access bitmaps. An accounted memory limit reproduces
// the out-of-memory exits the paper observed.
package segment

import (
	"repro/internal/event"
	"repro/internal/fasttrack"
	"repro/internal/vc"
)

// Granule is the nominal location size reported for races; internally
// access sets are keyed by footprint start address (byte granularity, as
// DRD's shadow is), so adjacent sub-word fields protected by different
// locks are not masked together.
const Granule = 4

// pageShift/pageBytes define the bitmap pages used for accounting and for
// the allocation-generation table.
const (
	pageShift = 11
	pageBytes = 64 + (1<<pageShift)/Granule/4 // header + 2 bits per word
)

// Race is one reported race.
type Race struct {
	Kind  fasttrack.RaceKind
	Addr  uint64
	Tid   vc.TID
	PC    event.PC
	Other vc.TID
}

// Options configure the detector.
type Options struct {
	// SegmentHistory bounds retained finished segments per thread; the
	// oldest is discarded when exceeded. 0 means the default of 16.
	SegmentHistory int
	// MemLimitBytes aborts analysis when the accounted detector memory
	// exceeds the limit (0 = no limit) — the paper's DRD run on dedup
	// exited with an out-of-memory warning.
	MemLimitBytes int64
	// Suppress hides races from these modules (nil = libc+ld default).
	Suppress []event.Module
}

const (
	rbit = 1
	wbit = 2
)

// seg is one segment: the owner's vector clock during the segment and the
// set of word granules read and written in it.
type seg struct {
	owner vc.TID
	seq   uint64 // creation sequence number (for the free-generation guard)
	clock *vc.VC
	acc   map[uint64]uint8 // word base → r/w bits
	pcs   map[uint64]event.PC
	pages map[uint64]struct{} // touched pages, for bitmap-model accounting
}

func (s *seg) bytes() int64 {
	return 64 + int64(s.clock.Bytes()) + int64(len(s.pages))*pageBytes
}

// Detector is the segment-based detector; it implements event.Sink.
type Detector struct {
	opt Options
	th  *fasttrack.Threads

	current  []*seg   // per tid
	retained [][]*seg // per tid, oldest first

	seq      uint64            // segment/free sequence counter
	freedSeq map[uint64]uint64 // page → last free sequence

	racedLocs map[uint64]bool
	races     []Race
	suppress  [8]bool
	supCount  uint64

	// Dropped counts segments discarded by the history bound.
	Dropped uint64

	curBytes  int64
	peakBytes int64
	oom       bool
}

// New returns a segment-based detector.
func New(opt Options) *Detector {
	if opt.SegmentHistory == 0 {
		opt.SegmentHistory = 16
	}
	d := &Detector{
		opt:       opt,
		th:        fasttrack.NewThreads(),
		freedSeq:  make(map[uint64]uint64),
		racedLocs: make(map[uint64]bool),
	}
	sup := opt.Suppress
	if sup == nil {
		sup = []event.Module{event.ModuleLibc, event.ModuleLd}
	}
	for _, m := range sup {
		d.suppress[m] = true
	}
	return d
}

// Races returns the reported races.
func (d *Detector) Races() []Race { return d.races }

// OOM reports whether the run aborted on the memory limit.
func (d *Detector) OOM() bool { return d.oom }

// PeakBytes returns the peak accounted detector memory.
func (d *Detector) PeakBytes() int64 { return d.peakBytes }

func (d *Detector) account(delta int64) {
	d.curBytes += delta
	if d.curBytes > d.peakBytes {
		d.peakBytes = d.curBytes
	}
	if d.opt.MemLimitBytes > 0 && d.curBytes > d.opt.MemLimitBytes {
		d.oom = true
	}
}

// ensureThread registers t in the per-thread tables. Fork calls it for the
// child immediately: a thread is concurrent with running segments from its
// creation, even before its first access, so prune must see it.
func (d *Detector) ensureThread(t vc.TID) {
	for int(t) >= len(d.current) {
		d.current = append(d.current, nil)
		d.retained = append(d.retained, nil)
	}
}

func (d *Detector) cur(t vc.TID) *seg {
	d.ensureThread(t)
	s := d.current[t]
	if s == nil {
		d.seq++
		s = &seg{
			owner: t,
			seq:   d.seq,
			clock: d.th.Clock(t).Clone(),
			acc:   make(map[uint64]uint8),
			pcs:   make(map[uint64]event.PC),
			pages: make(map[uint64]struct{}),
		}
		d.current[t] = s
		d.account(s.bytes())
	}
	return s
}

// endSegment retires t's current segment (called at every sync operation)
// and enforces the per-thread history bound.
func (d *Detector) endSegment(t vc.TID) {
	if int(t) >= len(d.current) || d.current[t] == nil {
		return
	}
	s := d.current[t]
	d.current[t] = nil
	if len(s.acc) == 0 {
		d.account(-s.bytes())
		return
	}
	d.retained[t] = append(d.retained[t], s)
	if len(d.retained[t]) > d.opt.SegmentHistory {
		old := d.retained[t][0]
		d.account(-old.bytes())
		d.retained[t] = d.retained[t][1:]
		d.Dropped++
	}
	d.prune()
}

// prune drops retained segments that happen before every live thread — they
// can never again be concurrent with a future access.
func (d *Detector) prune() {
	for t := range d.retained {
		kept := d.retained[t][:0]
		for _, s := range d.retained[t] {
			ordered := true
			for u := range d.current {
				if u == t {
					continue
				}
				if !s.clock.LEQ(d.th.Clock(vc.TID(u))) {
					ordered = false
					break
				}
			}
			if ordered {
				d.account(-s.bytes())
			} else {
				kept = append(kept, s)
			}
		}
		d.retained[t] = kept
	}
}

func (d *Detector) access(tid vc.TID, addr uint64, size uint32, pc event.PC, write bool) {
	if d.oom || event.NonShared(addr) { // DRD's default --check-stack-var=no
		return
	}
	s := d.cur(tid)
	tc := d.th.Clock(tid)
	bit := uint8(rbit)
	if write {
		bit = wbit
	}
	a := addr // footprint start keying
	if _, ok := s.acc[a]; !ok {
		page := a >> pageShift
		if _, seen := s.pages[page]; !seen {
			s.pages[page] = struct{}{}
			d.account(pageBytes)
		}
	}
	s.acc[a] |= bit
	s.pcs[a] = pc
	if !d.racedLocs[a] {
		d.checkAgainst(a, tid, tc, pc, write)
	}
	_ = size
}

// checkAgainst compares the access against every concurrent segment of
// other threads: their retained history and their current segments.
func (d *Detector) checkAgainst(a uint64, tid vc.TID, tc *vc.VC, pc event.PC, write bool) {
	freed := d.freedSeq[a>>pageShift]
	for u := range d.current {
		if vc.TID(u) == tid {
			continue
		}
		for _, s := range d.retained[u] {
			if d.hit(s, a, tc, write, freed) {
				d.report(a, tid, pc, s, write)
				return
			}
		}
		if s := d.current[u]; s != nil && d.hit(s, a, tc, write, freed) {
			d.report(a, tid, pc, s, write)
			return
		}
	}
}

// hit reports whether segment s conflicts with the current access of a.
// Segments created before a's page was last freed recorded a previous
// allocation's accesses and cannot conflict.
func (d *Detector) hit(s *seg, a uint64, tc *vc.VC, write bool, freedSeq uint64) bool {
	if s.seq <= freedSeq {
		return false
	}
	bits, ok := s.acc[a]
	if !ok {
		return false
	}
	if !write && bits&wbit == 0 {
		return false // read vs read never races
	}
	// Concurrent iff the segment is not ordered before the accessor. (The
	// other direction cannot occur: s's owner already executed s.)
	return !s.clock.LEQ(tc)
}

func (d *Detector) report(a uint64, tid vc.TID, pc event.PC, s *seg, write bool) {
	d.racedLocs[a] = true
	opc := s.pcs[a]
	if d.suppress[pc.Module()] || d.suppress[opc.Module()] {
		d.supCount++
		return
	}
	kind := fasttrack.WriteRead
	if write {
		if s.acc[a]&wbit != 0 {
			kind = fasttrack.WriteWrite
		} else {
			kind = fasttrack.ReadWrite
		}
	}
	d.races = append(d.races, Race{Kind: kind, Addr: a, Tid: tid, PC: pc, Other: s.owner})
}

// Read processes a shared read.
func (d *Detector) Read(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	d.access(tid, addr, size, pc, false)
}

// Write processes a shared write.
func (d *Detector) Write(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	d.access(tid, addr, size, pc, true)
}

// Acquire ends the current segment and joins the lock clock.
func (d *Detector) Acquire(tid vc.TID, l event.LockID) {
	d.endSegment(tid)
	d.th.Acquire(tid, l)
}

// Release ends the current segment and publishes the thread clock.
func (d *Detector) Release(tid vc.TID, l event.LockID) {
	d.endSegment(tid)
	d.th.Release(tid, l)
}

// AcquireShared ends the segment and applies the read-lock update.
func (d *Detector) AcquireShared(tid vc.TID, l event.LockID) {
	d.endSegment(tid)
	d.th.AcquireShared(tid, l)
}

// ReleaseShared ends the segment and publishes to the reader clock.
func (d *Detector) ReleaseShared(tid vc.TID, l event.LockID) {
	d.endSegment(tid)
	d.th.ReleaseShared(tid, l)
}

// Fork, Join, BarrierArrive, BarrierDepart end segments around the
// corresponding clock updates.
func (d *Detector) Fork(p, c vc.TID) {
	d.endSegment(p)
	d.th.Fork(p, c)
	d.ensureThread(p)
	d.ensureThread(c)
}

// Join ends both threads' segments and absorbs the child's clock.
func (d *Detector) Join(p, c vc.TID) {
	d.endSegment(p)
	d.endSegment(c)
	d.th.Join(p, c)
}

// BarrierArrive ends the segment and contributes to the barrier clock.
func (d *Detector) BarrierArrive(t vc.TID, b event.BarrierID) {
	d.endSegment(t)
	d.th.BarrierArrive(t, b)
}

// BarrierDepart ends the segment and absorbs the barrier clock.
func (d *Detector) BarrierDepart(t vc.TID, b event.BarrierID) {
	d.endSegment(t)
	d.th.BarrierDepart(t, b)
}

// Malloc is a no-op.
func (d *Detector) Malloc(vc.TID, uint64, uint64) {}

// Free bumps the allocation generation of the freed pages so that segments
// from before the free cannot be matched against the address's next
// incarnation.
func (d *Detector) Free(_ vc.TID, addr uint64, size uint64) {
	d.seq++
	for p := addr >> pageShift; p <= (addr+size-1)>>pageShift; p++ {
		d.freedSeq[p] = d.seq
	}
}
