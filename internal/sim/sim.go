// Package sim is the execution substrate that replaces Intel PIN in this
// reproduction. The paper instruments native pthread programs with dynamic
// binary instrumentation and feeds every memory access and synchronization
// operation to the detector; a Go library cannot instrument C/C++ binaries,
// so sim executes *virtual* multithreaded programs and delivers the same
// event stream (reads, writes, lock operations, fork/join, barriers, heap
// management) to an event.Sink.
//
// Programs are ordinary Go functions over a Thread handle. The engine runs
// virtual threads as goroutines but schedules them cooperatively — exactly
// one thread executes at any instant, chosen by a seeded RNG — so every run
// is fully deterministic: the same program and seed produce the same
// interleaving, the same event stream, and therefore the same race reports.
// Happens-before detectors do not depend on the observed interleaving to
// find races (only synchronization induces ordering), so determinism costs
// no detection coverage while making experiments reproducible.
//
// Blocking semantics follow pthreads: mutexes with FIFO waiter queues,
// reader-writer locks with writer preference, counting barriers, condition
// variables whose wait atomically releases and reacquires the mutex, and
// fork/join. A virtual heap allocator provides malloc/free with size-class
// reuse and tracks the analyzed program's peak footprint — the "Base
// memory" column of Table 1.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/event"
	"repro/internal/vc"
)

// Program is a virtual multithreaded program: a name and the body of its
// main thread. The main thread spawns workers through Thread.Go.
type Program struct {
	Name string
	Main func(t *Thread)
}

// Options configure an engine run.
type Options struct {
	// Seed drives every scheduling decision. Runs with equal seeds are
	// identical. The zero seed is used as-is.
	Seed int64
	// Quantum bounds how many events a thread delivers before the scheduler
	// may switch. 0 means the default of 64.
	Quantum int
	// MaxEvents aborts the run (via panic) after this many events; 0 means
	// unlimited. A guard against runaway workloads.
	MaxEvents uint64
	// Deadline, when non-zero, stops scheduling once the wall clock passes
	// it; Stats.TimedOut is set. The harness uses this to emulate the
	// paper's ">24 hours, analysis stopped" outcomes within a benchmark
	// budget. Virtual threads that have not finished are abandoned (their
	// goroutines stay parked until process exit), so a timed-out run's
	// engine is not reusable.
	Deadline time.Time
}

// Stats summarizes one run of a program.
type Stats struct {
	// Events is the total number of events delivered to the sink.
	Events uint64
	// Accesses is the number of Read/Write events delivered.
	Accesses uint64
	// Threads is the total number of threads ever created (including main).
	Threads int
	// PeakHeapBytes is the analyzed program's own maximum live heap — the
	// base memory that detector overhead factors are normalized by.
	PeakHeapBytes uint64
	// AllocBytes is the total number of heap bytes ever allocated (dedup's
	// 14 GB churn column in Section V.A corresponds to this).
	AllocBytes uint64
	// Mallocs and Frees count heap operations.
	Mallocs, Frees uint64
	// TimedOut reports that the run was stopped at Options.Deadline before
	// the program finished.
	TimedOut bool
}

type threadStatus uint8

const (
	statusReady threadStatus = iota
	statusRunning
	statusBlocked
	statusDone
)

// Thread is a handle to one virtual thread, passed to its body. All methods
// must be called from the thread's own body function.
type Thread struct {
	id  vc.TID
	eng *Engine

	resume chan struct{}
	status threadStatus
	budget int

	site event.PC
	rng  *rand.Rand

	body    func(*Thread)
	joiners []*Thread

	// Direct-handoff slot for unbuffered channel receives (see gosync.go):
	// the rendezvousing sender deposits the value and the channel it chose
	// before waking the receiver (which may be parked in a Select over
	// several channels).
	recvDirect bool
	recvChan   event.ChanID
	recvVal    uint64
}

// ID returns the thread's id (main is 0; children are numbered in spawn
// order).
func (t *Thread) ID() vc.TID { return t.id }

// Rand returns the thread's private deterministic RNG, seeded from the
// engine seed and the thread id.
func (t *Thread) Rand() *rand.Rand { return t.rng }

// At sets the synthetic program counter (code-site id, application module)
// attributed to subsequent accesses.
func (t *Thread) At(site uint32) { t.site = event.MakePC(event.ModuleApp, site) }

// AtModule sets a program counter in an explicit module; workloads use it to
// emit accesses attributed to libc/ld, which suppression rules hide.
func (t *Thread) AtModule(m event.Module, site uint32) { t.site = event.MakePC(m, site) }

// Engine executes programs. Create one per run with Run.
type Engine struct {
	sink event.Sink
	rng  *rand.Rand
	opts Options

	threads  []*Thread
	runnable []*Thread
	parked   chan struct{}

	locks    []*lockState
	barriers []*barrierState
	conds    []*condState
	chans    []*chanState
	wgs      []*wgState
	heap     heapAlloc

	events   uint64
	accesses uint64
	fatal    any // panic forwarded from a virtual thread
}

type lockState struct {
	owner   vc.TID // vc.NoTID when free (or when held by readers)
	waiters []*Thread

	// Reader-writer extensions (pthread_rwlock semantics with writer
	// preference). Plain mutexes keep readers == 0 throughout.
	readers  int
	rwaiters []*Thread // blocked readers
}

type barrierState struct {
	parties int
	arrived []*Thread
	// departing counts threads that still owe a Depart event for the
	// completed generation; pending holds threads that reached the next
	// generation early and must wait for the drain, so that all Depart
	// events of generation N are delivered before any Arrive of N+1.
	departing int
	pending   []*Thread
}

type condState struct {
	waiters []*condWaiter
}

type condWaiter struct {
	t *Thread
	l event.LockID
}

// Run executes p against sink and returns run statistics. It panics on
// program errors (deadlock, unlock of unowned mutex, double free), which in
// this codebase indicate workload bugs rather than recoverable conditions.
func Run(p Program, sink event.Sink, opts Options) Stats {
	if opts.Quantum <= 0 {
		opts.Quantum = 64
	}
	e := &Engine{
		sink:   sink,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		opts:   opts,
		parked: make(chan struct{}),
	}
	e.heap.init()

	main := e.newThread(p.Main)
	e.runnable = append(e.runnable, main)
	timedOut := e.schedule(p.Name)

	return Stats{
		TimedOut:      timedOut,
		Events:        e.events,
		Accesses:      e.accesses,
		Threads:       len(e.threads),
		PeakHeapBytes: e.heap.peakBytes,
		AllocBytes:    e.heap.allocBytes,
		Mallocs:       e.heap.mallocs,
		Frees:         e.heap.frees,
	}
}

func (e *Engine) newThread(body func(*Thread)) *Thread {
	t := &Thread{
		id:     vc.TID(len(e.threads)),
		eng:    e,
		resume: make(chan struct{}),
		status: statusReady,
		body:   body,
	}
	t.rng = rand.New(rand.NewSource(e.opts.Seed*1000003 + int64(t.id)))
	e.threads = append(e.threads, t)
	go t.run()
	return t
}

func (t *Thread) run() {
	<-t.resume
	func() {
		// Program errors (double free, bad unlock, event budget) panic on
		// the virtual thread's goroutine; forward them so they surface
		// from Run on the caller's goroutine.
		defer func() {
			if r := recover(); r != nil {
				t.eng.fatal = r
			}
		}()
		t.body(t)
	}()
	e := t.eng
	t.status = statusDone
	for _, j := range t.joiners {
		e.makeRunnable(j)
	}
	t.joiners = nil
	e.parked <- struct{}{}
}

// schedule is the engine main loop: pick a runnable thread, hand it the
// execution token, wait for it to park (yield, block, or finish). It
// returns true when the run was abandoned at the deadline.
func (e *Engine) schedule(name string) bool {
	checkDeadline := !e.opts.Deadline.IsZero()
	for len(e.runnable) > 0 {
		if checkDeadline && time.Now().After(e.opts.Deadline) {
			return true
		}
		i := e.rng.Intn(len(e.runnable))
		t := e.runnable[i]
		e.runnable[i] = e.runnable[len(e.runnable)-1]
		e.runnable = e.runnable[:len(e.runnable)-1]

		t.status = statusRunning
		t.budget = e.opts.Quantum
		t.resume <- struct{}{}
		<-e.parked

		if e.fatal != nil {
			panic(e.fatal)
		}
		if t.status == statusRunning { // quantum expired, still ready
			t.status = statusReady
			e.runnable = append(e.runnable, t)
		}
	}
	for _, t := range e.threads {
		if t.status != statusDone {
			panic(fmt.Sprintf("sim: deadlock in %q: thread %d blocked at exit", name, t.id))
		}
	}
	return false
}

func (e *Engine) makeRunnable(t *Thread) {
	t.status = statusReady
	e.runnable = append(e.runnable, t)
}

// park hands control back to the scheduler and waits to be resumed.
func (t *Thread) park() {
	t.eng.parked <- struct{}{}
	<-t.resume
}

// countEvent accounts one delivered event against the run's event budget
// without a scheduling point.
func (e *Engine) countEvent() {
	e.events++
	if e.opts.MaxEvents > 0 && e.events > e.opts.MaxEvents {
		panic(fmt.Sprintf("sim: event budget %d exceeded", e.opts.MaxEvents))
	}
}

// charge deducts n events from the thread's quantum, yielding to the
// scheduler when it is exhausted. Operations that must emit several events
// without an intervening scheduling point (channel rendezvous) count each
// event as it is emitted and charge once at the end.
func (t *Thread) charge(n int) {
	t.budget -= n
	if t.budget <= 0 {
		// status stays Running; the scheduler re-queues the thread.
		t.park()
		t.budget = t.eng.opts.Quantum
	}
}

// tick charges one event against the thread's quantum, yielding to the
// scheduler when it is exhausted.
func (t *Thread) tick() {
	t.eng.countEvent()
	t.charge(1)
}

// block parks the thread until something (unlock, barrier completion,
// signal, child exit) makes it runnable again.
func (t *Thread) block() {
	t.status = statusBlocked
	t.park()
}

// Yield voluntarily ends the thread's scheduling quantum.
func (t *Thread) Yield() {
	t.park()
	t.budget = t.eng.opts.Quantum
}

// ---- Memory accesses ----

// Read delivers a shared read of size bytes at addr.
func (t *Thread) Read(addr uint64, size uint32) {
	t.eng.accesses++
	t.eng.sink.Read(t.id, addr, size, t.site)
	t.tick()
}

// Write delivers a shared write of size bytes at addr.
func (t *Thread) Write(addr uint64, size uint32) {
	t.eng.accesses++
	t.eng.sink.Write(t.id, addr, size, t.site)
	t.tick()
}

// Local returns the address of a thread-local (stack) slot: per-thread
// storage in the non-shared region that detectors filter out immediately
// (Figure 3's nonsharedread check). Each thread has a 1 MiB stack window.
func (t *Thread) Local(offset uint64) uint64 {
	return event.StackBase + uint64(t.id)<<20 + offset
}

// ReadBlock reads n units of size bytes starting at addr, stride size.
func (t *Thread) ReadBlock(addr uint64, size uint32, n int) {
	for i := 0; i < n; i++ {
		t.Read(addr+uint64(i)*uint64(size), size)
	}
}

// WriteBlock writes n units of size bytes starting at addr, stride size.
func (t *Thread) WriteBlock(addr uint64, size uint32, n int) {
	for i := 0; i < n; i++ {
		t.Write(addr+uint64(i)*uint64(size), size)
	}
}

// ---- Threads ----

// Go spawns a child thread running body and returns its handle for Join.
func (t *Thread) Go(body func(*Thread)) *Thread {
	e := t.eng
	child := e.newThread(body)
	e.sink.Fork(t.id, child.id)
	e.makeRunnable(child)
	t.tick()
	return child
}

// Join blocks until child finishes. The Join event is delivered after the
// child's last event, establishing the child-to-parent happens-before edge.
func (t *Thread) Join(child *Thread) {
	if child.status != statusDone {
		child.joiners = append(child.joiners, t)
		t.block()
	}
	t.eng.sink.Join(t.id, child.id)
	t.tick()
}

// ---- Mutexes ----

// NewLock creates a mutex.
func (t *Thread) NewLock() event.LockID {
	e := t.eng
	e.locks = append(e.locks, &lockState{owner: vc.NoTID})
	return event.LockID(len(e.locks) - 1)
}

// Lock acquires mutex l (or write-locks rwlock l), blocking while it is
// held by a writer or by readers.
func (t *Thread) Lock(l event.LockID) {
	e := t.eng
	ls := e.locks[l]
	if ls.owner != vc.NoTID || ls.readers > 0 {
		ls.waiters = append(ls.waiters, t)
		t.block()
		// Ownership was transferred to us before we were woken.
		if ls.owner != t.id {
			panic("sim: lock handoff failed")
		}
	} else {
		ls.owner = t.id
	}
	e.sink.Acquire(t.id, l)
	t.tick()
}

// Unlock releases mutex l (or write-unlocks rwlock l): a waiting writer is
// preferred; otherwise all blocked readers are admitted.
func (t *Thread) Unlock(l event.LockID) {
	e := t.eng
	ls := e.locks[l]
	if ls.owner != t.id {
		panic(fmt.Sprintf("sim: thread %d unlocking lock %d owned by %d", t.id, l, ls.owner))
	}
	e.sink.Release(t.id, l)
	switch {
	case len(ls.waiters) > 0:
		next := ls.waiters[0]
		ls.waiters = ls.waiters[1:]
		ls.owner = next.id
		e.makeRunnable(next)
	case len(ls.rwaiters) > 0:
		ls.owner = vc.NoTID
		ls.readers += len(ls.rwaiters)
		for _, r := range ls.rwaiters {
			e.makeRunnable(r)
		}
		ls.rwaiters = ls.rwaiters[:0]
	default:
		ls.owner = vc.NoTID
	}
	t.tick()
}

// NewRWLock creates a reader-writer lock. Write-side operations are Lock
// and Unlock; read-side operations are RLock and RUnlock.
func (t *Thread) NewRWLock() event.LockID { return t.NewLock() }

// RLock read-locks rwlock l: readers are admitted together but block while
// a writer holds or awaits the lock (writer preference).
func (t *Thread) RLock(l event.LockID) {
	e := t.eng
	ls := e.locks[l]
	if ls.owner != vc.NoTID || len(ls.waiters) > 0 {
		ls.rwaiters = append(ls.rwaiters, t)
		t.block()
		// The granter incremented the reader count on our behalf.
	} else {
		ls.readers++
	}
	e.sink.AcquireShared(t.id, l)
	t.tick()
}

// RUnlock releases a read lock; the last reader out admits a waiting
// writer.
func (t *Thread) RUnlock(l event.LockID) {
	e := t.eng
	ls := e.locks[l]
	if ls.readers <= 0 {
		panic(fmt.Sprintf("sim: thread %d read-unlocking lock %d with no readers", t.id, l))
	}
	e.sink.ReleaseShared(t.id, l)
	ls.readers--
	if ls.readers == 0 && len(ls.waiters) > 0 {
		next := ls.waiters[0]
		ls.waiters = ls.waiters[1:]
		ls.owner = next.id
		e.makeRunnable(next)
	}
	t.tick()
}

// WithRLock runs f while read-holding l.
func (t *Thread) WithRLock(l event.LockID, f func()) {
	t.RLock(l)
	f()
	t.RUnlock(l)
}

// WithLock runs f while holding l.
func (t *Thread) WithLock(l event.LockID, f func()) {
	t.Lock(l)
	f()
	t.Unlock(l)
}

// ---- Barriers ----

// NewBarrier creates a counting barrier for parties threads.
func (t *Thread) NewBarrier(parties int) event.BarrierID {
	e := t.eng
	e.barriers = append(e.barriers, &barrierState{parties: parties})
	return event.BarrierID(len(e.barriers) - 1)
}

// Barrier blocks until parties threads have arrived at b, then all proceed.
// Arrive is delivered at arrival, Depart after the last arrival, so a
// detector joining clocks at Arrive and absorbing them at Depart sees the
// all-to-all ordering a barrier creates.
func (t *Thread) Barrier(b event.BarrierID) {
	e := t.eng
	bs := e.barriers[b]
	if bs.departing > 0 {
		// The previous generation is still draining its Depart events.
		bs.pending = append(bs.pending, t)
		t.block()
	}
	e.sink.BarrierArrive(t.id, b)
	t.tick()
	if len(bs.arrived)+1 < bs.parties {
		bs.arrived = append(bs.arrived, t)
		t.block()
	} else {
		for _, w := range bs.arrived {
			e.makeRunnable(w)
		}
		bs.arrived = bs.arrived[:0]
		bs.departing = bs.parties
	}
	e.sink.BarrierDepart(t.id, b)
	t.tick()
	bs.departing--
	if bs.departing == 0 {
		for _, w := range bs.pending {
			e.makeRunnable(w)
		}
		bs.pending = bs.pending[:0]
	}
}

// ---- Condition variables ----

// NewCond creates a condition variable.
func (t *Thread) NewCond() int {
	e := t.eng
	e.conds = append(e.conds, &condState{})
	return len(e.conds) - 1
}

// Wait atomically releases l and blocks until signalled, then reacquires l
// before returning — pthread_cond_wait semantics. As in pthreads, the
// happens-before edge to the waker is established by the mutex, not the
// condition variable itself.
func (t *Thread) Wait(c int, l event.LockID) {
	e := t.eng
	cs := e.conds[c]
	e.unlockForWait(t, l)
	cs.waiters = append(cs.waiters, &condWaiter{t: t, l: l})
	t.block()
	t.Lock(l)
}

// unlockForWait releases l on behalf of a waiting thread (shared with
// Unlock, but without charging the caller's quantum mid-wait).
func (e *Engine) unlockForWait(t *Thread, l event.LockID) {
	ls := e.locks[l]
	if ls.owner != t.id {
		panic(fmt.Sprintf("sim: thread %d waiting on lock %d owned by %d", t.id, l, ls.owner))
	}
	e.sink.Release(t.id, l)
	if len(ls.waiters) > 0 {
		next := ls.waiters[0]
		ls.waiters = ls.waiters[1:]
		ls.owner = next.id
		e.makeRunnable(next)
	} else {
		ls.owner = vc.NoTID
	}
}

// Signal wakes one waiter of c, if any.
func (t *Thread) Signal(c int) {
	e := t.eng
	cs := e.conds[c]
	if len(cs.waiters) > 0 {
		w := cs.waiters[0]
		cs.waiters = cs.waiters[1:]
		e.makeRunnable(w.t)
	}
	t.tick()
}

// Broadcast wakes every waiter of c.
func (t *Thread) Broadcast(c int) {
	e := t.eng
	cs := e.conds[c]
	for _, w := range cs.waiters {
		e.makeRunnable(w.t)
	}
	cs.waiters = cs.waiters[:0]
	t.tick()
}

// ---- Heap ----

// Malloc allocates size bytes of virtual heap and returns the address.
func (t *Thread) Malloc(size uint64) uint64 {
	addr := t.eng.heap.alloc(size)
	t.eng.sink.Malloc(t.id, addr, size)
	t.tick()
	return addr
}

// Free releases an allocation made by Malloc.
func (t *Thread) Free(addr uint64) {
	size := t.eng.heap.free(addr)
	t.eng.sink.Free(t.id, addr, size)
	t.tick()
}

// heapAlloc is a bump allocator with exact-size free lists, enough reuse to
// exercise shadow-state cleanup the way a real allocator would.
type heapAlloc struct {
	next      uint64
	freeLists map[uint64][]uint64
	live      map[uint64]uint64

	liveBytes  uint64
	peakBytes  uint64
	allocBytes uint64
	mallocs    uint64
	frees      uint64
}

// heapBase leaves low addresses free so workloads can also use small
// hand-placed "global" addresses without colliding with the heap.
const heapBase = 1 << 20

func (h *heapAlloc) init() {
	h.next = heapBase
	h.freeLists = make(map[uint64][]uint64)
	h.live = make(map[uint64]uint64)
}

func roundSize(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	return (size + 7) &^ 7
}

func (h *heapAlloc) alloc(size uint64) uint64 {
	rs := roundSize(size)
	var addr uint64
	if fl := h.freeLists[rs]; len(fl) > 0 {
		addr = fl[len(fl)-1]
		h.freeLists[rs] = fl[:len(fl)-1]
	} else {
		addr = h.next
		h.next += rs
	}
	h.live[addr] = rs
	h.liveBytes += rs
	h.allocBytes += rs
	h.mallocs++
	if h.liveBytes > h.peakBytes {
		h.peakBytes = h.liveBytes
	}
	return addr
}

func (h *heapAlloc) free(addr uint64) uint64 {
	rs, ok := h.live[addr]
	if !ok {
		panic(fmt.Sprintf("sim: free of unallocated address %#x", addr))
	}
	delete(h.live, addr)
	h.liveBytes -= rs
	h.frees++
	h.freeLists[rs] = append(h.freeLists[rs], addr)
	return rs
}
