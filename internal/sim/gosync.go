// Go-native synchronization for virtual programs: channels (buffered and
// unbuffered, with select), and WaitGroups. Blocking semantics follow the
// Go runtime — FIFO sender/receiver queues, rendezvous on unbuffered
// channels, value handoff from blocked senders on buffer slots freeing —
// and the emitted event stream realizes the Go memory model's edges (see
// event.GoSink).
//
// Two stream invariants matter for the detector's per-channel FIFO clock
// pairing and are maintained here:
//
//  1. A channel state mutation (value enqueue/dequeue) is adjacent to the
//     event announcing it, with no scheduling point in between, so the k-th
//     ChanSend event corresponds to the k-th value entering the channel.
//     Multi-event sequences count each event and charge the quantum once
//     at the end (Engine.countEvent / Thread.charge).
//  2. The engine may emit events on a blocked thread's behalf: the
//     unbuffered rendezvous emits ChanSend/ChanRecv/ChanAck back-to-back
//     whichever side arrived last, and a receiver freeing a buffer slot
//     emits the blocked sender's ChanSend as it moves the value in.
//     Likewise the WGDone that releases waiters emits their WGWait events
//     before waking them, so no later publication can slip in front.
package sim

import (
	"fmt"

	"repro/internal/event"
)

// ChanID and WGID name virtual channels and WaitGroups; aliases of the
// event-stream ids so workload code does not need to import the event
// package.
type (
	ChanID = event.ChanID
	WGID   = event.WGID
)

// chanState is one virtual channel. vals holds buffered values in FIFO
// order; sendq holds blocked senders with their pending values; recvq holds
// blocked receivers (including selectors, which appear in every queue they
// wait on).
type chanState struct {
	capacity int
	vals     []uint64
	sendq    []chanSender
	recvq    []*Thread
}

type chanSender struct {
	t *Thread
	v uint64
}

// claimRecv pops the oldest still-claimable receiver from the queue. A
// selector sits in every queue it waits on and a woken receiver stays
// queued until it runs and deregisters, so entries that are no longer
// blocked — or were already handed a rendezvous value (recvDirect) — must
// be skipped, never woken a second time; the owner removes them when it
// resumes.
func (cs *chanState) claimRecv() *Thread {
	for i, w := range cs.recvq {
		if w.status == statusBlocked && !w.recvDirect {
			cs.recvq = append(cs.recvq[:i], cs.recvq[i+1:]...)
			return w
		}
	}
	return nil
}

// wgState is one virtual WaitGroup.
type wgState struct {
	count   int
	waiters []*Thread
}

// NewChan creates a channel with the given capacity (0 = unbuffered).
func (t *Thread) NewChan(capacity int) event.ChanID {
	if capacity < 0 {
		panic(fmt.Sprintf("sim: negative channel capacity %d", capacity))
	}
	e := t.eng
	e.chans = append(e.chans, &chanState{capacity: capacity})
	return event.ChanID(len(e.chans) - 1)
}

// Send sends v on ch, blocking while the channel is full (or, unbuffered,
// until a receiver arrives).
func (t *Thread) Send(ch event.ChanID, v uint64) {
	e := t.eng
	cs := e.chans[ch]
	if cs.capacity == 0 {
		if r := cs.claimRecv(); r != nil {
			e.rendezvous(t, r, ch, v, t)
			return
		}
		cs.sendq = append(cs.sendq, chanSender{t: t, v: v})
		t.block()
		// The receiver completed the rendezvous on our behalf.
		return
	}
	if len(cs.vals) < cs.capacity {
		e.countEvent()
		event.DispatchChanSend(e.sink, t.id, ch, cs.capacity)
		cs.vals = append(cs.vals, v)
		if r := cs.claimRecv(); r != nil {
			e.makeRunnable(r)
		}
		t.charge(1)
		return
	}
	cs.sendq = append(cs.sendq, chanSender{t: t, v: v})
	t.block()
	// The receiver that freed a slot moved our value in and emitted our
	// ChanSend on our behalf.
}

// Recv receives one value from ch, blocking while it is empty.
func (t *Thread) Recv(ch event.ChanID) uint64 {
	e := t.eng
	cs := e.chans[ch]
	for {
		if v, ok := t.tryRecv(ch); ok {
			return v
		}
		t.recvDirect = false
		cs.recvq = append(cs.recvq, t)
		t.block()
		removeThread(&cs.recvq, t)
		if t.recvDirect {
			// An unbuffered sender rendezvoused with us directly.
			return t.recvVal
		}
		// Woken by a buffered send; the value may have been taken by
		// another receiver in the meantime, so re-check.
	}
}

// Select blocks until one of the channels is receivable, picks uniformly
// (thread RNG) among the ready ones, and receives from it. It returns the
// chosen index and the value. Channels must be distinct.
func (t *Thread) Select(chs ...event.ChanID) (int, uint64) {
	if len(chs) == 0 {
		panic("sim: select over no channels")
	}
	e := t.eng
	for {
		var ready []int
		for i, ch := range chs {
			cs := e.chans[ch]
			if len(cs.vals) > 0 || (cs.capacity == 0 && len(cs.sendq) > 0) {
				ready = append(ready, i)
			}
		}
		if len(ready) > 0 {
			i := ready[t.rng.Intn(len(ready))]
			if v, ok := t.tryRecv(chs[i]); ok {
				return i, v
			}
			continue
		}
		t.recvDirect = false
		for _, ch := range chs {
			cs := e.chans[ch]
			cs.recvq = append(cs.recvq, t)
		}
		t.block()
		for _, ch := range chs {
			removeThread(&e.chans[ch].recvq, t)
		}
		if t.recvDirect {
			for i, ch := range chs {
				if ch == t.recvChan {
					return i, t.recvVal
				}
			}
		}
	}
}

// tryRecv consumes one value from ch if it is immediately receivable.
func (t *Thread) tryRecv(ch event.ChanID) (uint64, bool) {
	e := t.eng
	cs := e.chans[ch]
	if cs.capacity == 0 {
		if len(cs.sendq) == 0 {
			return 0, false
		}
		s := cs.sendq[0]
		cs.sendq = cs.sendq[1:]
		return e.rendezvous(s.t, t, ch, s.v, t), true
	}
	if len(cs.vals) == 0 {
		return 0, false
	}
	v := cs.vals[0]
	cs.vals = cs.vals[1:]
	e.countEvent()
	event.DispatchChanRecv(e.sink, t.id, ch, cs.capacity)
	n := 1
	if len(cs.sendq) > 0 {
		// A slot freed: move the oldest blocked sender's value in,
		// emitting its ChanSend adjacent to the enqueue.
		s := cs.sendq[0]
		cs.sendq = cs.sendq[1:]
		e.countEvent()
		event.DispatchChanSend(e.sink, s.t.id, ch, cs.capacity)
		cs.vals = append(cs.vals, s.v)
		e.makeRunnable(s.t)
		n++
	}
	t.charge(n)
	return v, true
}

// rendezvous completes an unbuffered handoff from sender s to receiver r;
// active is the running side (the one that arrived last) and is charged for
// the three events. ChanSend, ChanRecv, ChanAck are emitted back-to-back —
// the ack realizing the "receive happens before the send completes" edge.
func (e *Engine) rendezvous(s, r *Thread, ch event.ChanID, v uint64, active *Thread) uint64 {
	e.countEvent()
	event.DispatchChanSend(e.sink, s.id, ch, 0)
	e.countEvent()
	event.DispatchChanRecv(e.sink, r.id, ch, 0)
	e.countEvent()
	event.DispatchChanAck(e.sink, s.id, ch, 0)
	if r == active {
		e.makeRunnable(s)
	} else {
		r.recvDirect = true
		r.recvChan = ch
		r.recvVal = v
		e.makeRunnable(r)
	}
	active.charge(3)
	return v
}

// removeThread deletes every occurrence of t from q, preserving order.
func removeThread(q *[]*Thread, t *Thread) {
	out := (*q)[:0]
	for _, w := range *q {
		if w != t {
			out = append(out, w)
		}
	}
	*q = out
}

// NewWaitGroup creates a WaitGroup with counter 0.
func (t *Thread) NewWaitGroup() event.WGID {
	e := t.eng
	e.wgs = append(e.wgs, &wgState{})
	return event.WGID(len(e.wgs) - 1)
}

// WGAdd increases the group's counter by delta (> 0; decrements go through
// WGDone, matching the errgroup-style fork–join usage).
func (t *Thread) WGAdd(wg event.WGID, delta int) {
	if delta <= 0 {
		panic(fmt.Sprintf("sim: WaitGroup add of %d (use WGDone to decrement)", delta))
	}
	e := t.eng
	ws := e.wgs[wg]
	ws.count += delta
	e.countEvent()
	event.DispatchWGAdd(e.sink, t.id, wg, delta)
	t.charge(1)
}

// WGDone decrements the counter; the Done that reaches zero releases every
// waiter, emitting their WGWait events (adjacent to the releasing Done, so
// the waits absorb exactly the publications that happened before them)
// before making them runnable.
func (t *Thread) WGDone(wg event.WGID) {
	e := t.eng
	ws := e.wgs[wg]
	if ws.count <= 0 {
		panic("sim: WaitGroup counter underflow")
	}
	ws.count--
	e.countEvent()
	event.DispatchWGDone(e.sink, t.id, wg)
	n := 1
	if ws.count == 0 {
		for _, w := range ws.waiters {
			e.countEvent()
			event.DispatchWGWait(e.sink, w.id, wg)
			e.makeRunnable(w)
			n++
		}
		ws.waiters = ws.waiters[:0]
	}
	t.charge(n)
}

// WGWait blocks until the group's counter is zero.
func (t *Thread) WGWait(wg event.WGID) {
	e := t.eng
	ws := e.wgs[wg]
	if ws.count > 0 {
		ws.waiters = append(ws.waiters, t)
		t.block()
		// The releasing WGDone emitted our WGWait event.
		return
	}
	e.countEvent()
	event.DispatchWGWait(e.sink, t.id, wg)
	t.charge(1)
}
