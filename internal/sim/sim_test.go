package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/vc"
)

// logSink records a readable trace of every event.
type logSink struct{ events []string }

func (l *logSink) add(f string, args ...any) { l.events = append(l.events, fmt.Sprintf(f, args...)) }

func (l *logSink) Read(t vc.TID, a uint64, s uint32, _ event.PC)  { l.add("r%d:%x/%d", t, a, s) }
func (l *logSink) Write(t vc.TID, a uint64, s uint32, _ event.PC) { l.add("w%d:%x/%d", t, a, s) }
func (l *logSink) Acquire(t vc.TID, m event.LockID)               { l.add("acq%d:%d", t, m) }
func (l *logSink) Release(t vc.TID, m event.LockID)               { l.add("rel%d:%d", t, m) }
func (l *logSink) AcquireShared(t vc.TID, m event.LockID)         { l.add("racq%d:%d", t, m) }
func (l *logSink) ReleaseShared(t vc.TID, m event.LockID)         { l.add("rrel%d:%d", t, m) }
func (l *logSink) Fork(p, c vc.TID)                               { l.add("fork%d->%d", p, c) }
func (l *logSink) Join(p, c vc.TID)                               { l.add("join%d<-%d", p, c) }
func (l *logSink) BarrierArrive(t vc.TID, b event.BarrierID)      { l.add("ba%d:%d", t, b) }
func (l *logSink) BarrierDepart(t vc.TID, b event.BarrierID)      { l.add("bd%d:%d", t, b) }
func (l *logSink) Malloc(t vc.TID, a, s uint64)                   { l.add("m%d:%x/%d", t, a, s) }
func (l *logSink) Free(t vc.TID, a, s uint64)                     { l.add("f%d:%x/%d", t, a, s) }

func (l *logSink) String() string { return strings.Join(l.events, " ") }

func index(l *logSink, ev string) int {
	for i, e := range l.events {
		if e == ev {
			return i
		}
	}
	return -1
}

func TestSingleThreadSequence(t *testing.T) {
	l := &logSink{}
	st := Run(Program{Name: "seq", Main: func(m *Thread) {
		m.Write(0x10, 4)
		m.Read(0x10, 4)
	}}, l, Options{})
	if got := l.String(); got != "w0:10/4 r0:10/4" {
		t.Errorf("trace = %q", got)
	}
	if st.Events != 2 || st.Accesses != 2 || st.Threads != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) string {
		l := &logSink{}
		Run(Program{Name: "det", Main: func(m *Thread) {
			var hs []*Thread
			for i := 0; i < 3; i++ {
				i := i
				hs = append(hs, m.Go(func(w *Thread) {
					for j := 0; j < 30; j++ {
						w.Write(uint64(0x1000+i*64+j), 1)
					}
				}))
			}
			for _, h := range hs {
				m.Join(h)
			}
		}}, l, Options{Seed: seed, Quantum: 7})
		return l.String()
	}
	if run(5) != run(5) {
		t.Error("same seed must replay identically")
	}
	if run(5) == run(6) {
		t.Error("different seeds should interleave differently")
	}
}

func TestMutualExclusionInTrace(t *testing.T) {
	// Between acquire and release of a lock, no other thread's acquire of
	// that lock may appear.
	l := &logSink{}
	Run(Program{Name: "mutex", Main: func(m *Thread) {
		mu := m.NewLock()
		var hs []*Thread
		for i := 0; i < 4; i++ {
			hs = append(hs, m.Go(func(w *Thread) {
				for j := 0; j < 25; j++ {
					w.Lock(mu)
					w.Write(0x99, 1)
					w.Unlock(mu)
				}
			}))
		}
		for _, h := range hs {
			m.Join(h)
		}
	}}, l, Options{Seed: 3, Quantum: 3})

	var holder vc.TID = vc.NoTID
	for _, e := range l.events {
		var tid vc.TID
		var lid int
		if n, _ := fmt.Sscanf(e, "acq%d:%d", &tid, &lid); n == 2 && !strings.HasPrefix(e, "ba") {
			if holder != vc.NoTID {
				t.Fatalf("acquire by %d while %d holds the lock", tid, holder)
			}
			holder = tid
		}
		if n, _ := fmt.Sscanf(e, "rel%d:%d", &tid, &lid); n == 2 {
			if holder != tid {
				t.Fatalf("release by %d but holder is %d", tid, holder)
			}
			holder = vc.NoTID
		}
	}
}

func TestForkBeforeChildEvents(t *testing.T) {
	l := &logSink{}
	Run(Program{Name: "fork", Main: func(m *Thread) {
		c := m.Go(func(w *Thread) { w.Write(0x1, 1) })
		m.Join(c)
	}}, l, Options{Seed: 9})
	if fi, wi := index(l, "fork0->1"), index(l, "w1:1/1"); fi < 0 || wi < 0 || fi > wi {
		t.Errorf("fork must precede the child's first event: %q", l)
	}
}

func TestJoinAfterChildEvents(t *testing.T) {
	l := &logSink{}
	Run(Program{Name: "join", Main: func(m *Thread) {
		c := m.Go(func(w *Thread) {
			for i := 0; i < 100; i++ {
				w.Write(0x1, 1)
			}
		})
		m.Join(c)
		m.Write(0x2, 1)
	}}, l, Options{Seed: 11, Quantum: 5})
	ji := index(l, "join0<-1")
	if ji < 0 {
		t.Fatal("no join event")
	}
	for _, e := range l.events[ji:] {
		if strings.HasPrefix(e, "w1:") {
			t.Fatal("child event after join")
		}
	}
}

func TestBarrierOrdering(t *testing.T) {
	// All arrives precede all departs, generation by generation.
	l := &logSink{}
	Run(Program{Name: "barrier", Main: func(m *Thread) {
		const n = 3
		b := m.NewBarrier(n)
		var hs []*Thread
		for i := 0; i < n-1; i++ {
			hs = append(hs, m.Go(func(w *Thread) {
				for g := 0; g < 4; g++ {
					w.Write(0x5, 1)
					w.Barrier(b)
				}
			}))
		}
		for g := 0; g < 4; g++ {
			m.Write(0x5, 1)
			m.Barrier(b)
		}
		for _, h := range hs {
			m.Join(h)
		}
	}}, l, Options{Seed: 21, Quantum: 2})

	arrived, departed := 0, 0
	for _, e := range l.events {
		switch {
		case strings.HasPrefix(e, "ba"):
			if departed%3 != 0 {
				t.Fatalf("arrive while departs pending: %q", l)
			}
			arrived++
		case strings.HasPrefix(e, "bd"):
			if arrived%3 != 0 {
				t.Fatalf("depart before all arrived: %q", l)
			}
			departed++
		}
	}
	if arrived != 12 || departed != 12 {
		t.Errorf("arrived=%d departed=%d", arrived, departed)
	}
}

func TestCondWaitSignal(t *testing.T) {
	// Classic handoff: consumer waits until producer sets ready.
	done := false
	Run(Program{Name: "cond", Main: func(m *Thread) {
		mu := m.NewLock()
		cv := m.NewCond()
		ready := false
		c := m.Go(func(w *Thread) {
			w.Lock(mu)
			for !ready {
				w.Wait(cv, mu)
			}
			w.Unlock(mu)
			done = true
		})
		m.Lock(mu)
		ready = true
		m.Signal(cv)
		m.Unlock(mu)
		m.Join(c)
	}}, event.Nop{}, Options{Seed: 2})
	if !done {
		t.Error("waiter never resumed")
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	woken := 0
	Run(Program{Name: "bcast", Main: func(m *Thread) {
		mu := m.NewLock()
		cv := m.NewCond()
		go_ := false
		var hs []*Thread
		for i := 0; i < 5; i++ {
			hs = append(hs, m.Go(func(w *Thread) {
				w.Lock(mu)
				for !go_ {
					w.Wait(cv, mu)
				}
				w.Unlock(mu)
				woken++
			}))
		}
		// Let every waiter block first.
		for i := 0; i < 100; i++ {
			m.Yield()
		}
		m.Lock(mu)
		go_ = true
		m.Broadcast(cv)
		m.Unlock(mu)
		for _, h := range hs {
			m.Join(h)
		}
	}}, event.Nop{}, Options{Seed: 4})
	if woken != 5 {
		t.Errorf("woken = %d, want 5", woken)
	}
}

func TestAllocatorReuseAndStats(t *testing.T) {
	var first, second uint64
	st := Run(Program{Name: "alloc", Main: func(m *Thread) {
		first = m.Malloc(100)
		m.Free(first)
		second = m.Malloc(100) // same size class: reused
		big := m.Malloc(1000)
		m.Free(second)
		m.Free(big)
	}}, event.Nop{}, Options{})
	if first != second {
		t.Errorf("allocator should reuse the freed block: %#x vs %#x", first, second)
	}
	if st.Mallocs != 3 || st.Frees != 3 {
		t.Errorf("mallocs=%d frees=%d", st.Mallocs, st.Frees)
	}
	// Peak: 104 (rounded) + 1000 live simultaneously.
	if st.PeakHeapBytes != 104+1000 {
		t.Errorf("peak heap = %d", st.PeakHeapBytes)
	}
	if st.AllocBytes != 104+104+1000 {
		t.Errorf("alloc bytes = %d", st.AllocBytes)
	}
}

func TestFreeUnallocatedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(Program{Name: "badfree", Main: func(m *Thread) {
		m.Free(0xdeadbeef)
	}}, event.Nop{}, Options{})
}

func TestUnlockNotOwnedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(Program{Name: "badunlock", Main: func(m *Thread) {
		l := m.NewLock()
		m.Unlock(l)
	}}, event.Nop{}, Options{})
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected deadlock panic")
		}
	}()
	Run(Program{Name: "deadlock", Main: func(m *Thread) {
		a, b := m.NewLock(), m.NewLock()
		c := m.Go(func(w *Thread) {
			w.Lock(b)
			for i := 0; i < 10; i++ {
				w.Yield()
			}
			w.Lock(a)
		})
		m.Lock(a)
		for i := 0; i < 10; i++ {
			m.Yield()
		}
		m.Lock(b)
		m.Join(c)
	}}, event.Nop{}, Options{Seed: 1})
}

func TestMaxEventsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected event-budget panic")
		}
	}()
	Run(Program{Name: "runaway", Main: func(m *Thread) {
		for {
			m.Write(0x1, 1)
		}
	}}, event.Nop{}, Options{MaxEvents: 1000})
}

func TestDeadlineTimesOut(t *testing.T) {
	st := Run(Program{Name: "slow", Main: func(m *Thread) {
		for i := 0; i < 1_000_000_000; i++ {
			m.Write(0x1, 1)
		}
	}}, event.Nop{}, Options{Deadline: time.Now().Add(20 * time.Millisecond)})
	if !st.TimedOut {
		t.Error("run should have timed out")
	}
}

func TestWithLock(t *testing.T) {
	l := &logSink{}
	Run(Program{Name: "withlock", Main: func(m *Thread) {
		mu := m.NewLock()
		m.WithLock(mu, func() { m.Write(0x7, 1) })
	}}, l, Options{})
	if got := l.String(); got != "acq0:0 w0:7/1 rel0:0" {
		t.Errorf("trace = %q", got)
	}
}

func TestCounterSink(t *testing.T) {
	c := &event.Counter{}
	Run(Program{Name: "count", Main: func(m *Thread) {
		a := m.Malloc(64)
		m.WriteBlock(a, 4, 8)
		m.ReadBlock(a, 8, 4)
		mu := m.NewLock()
		m.Lock(mu)
		m.Unlock(mu)
		m.Free(a)
	}}, c, Options{})
	if c.Writes != 8 || c.Reads != 4 {
		t.Errorf("reads=%d writes=%d", c.Reads, c.Writes)
	}
	if c.WriteBytes != 32 || c.ReadBytes != 32 {
		t.Errorf("bytes r=%d w=%d", c.ReadBytes, c.WriteBytes)
	}
	if c.Acquires != 1 || c.Releases != 1 || c.Mallocs != 1 || c.Frees != 1 {
		t.Errorf("sync counts: %+v", c)
	}
	if c.Accesses() != 12 {
		t.Errorf("accesses = %d", c.Accesses())
	}
	if c.SizeHistogram[4] != 8 || c.SizeHistogram[8] != 4 {
		t.Errorf("histogram = %v", c.SizeHistogram)
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := &event.Counter{}, &event.Counter{}
	Run(Program{Name: "tee", Main: func(m *Thread) {
		m.Write(0x1, 4)
		m.Read(0x1, 4)
	}}, event.Tee{a, b}, Options{})
	if a.Accesses() != 2 || b.Accesses() != 2 {
		t.Errorf("tee delivery: %d / %d", a.Accesses(), b.Accesses())
	}
}

func TestThreadRandDeterministic(t *testing.T) {
	seq := func() []int {
		var out []int
		Run(Program{Name: "rng", Main: func(m *Thread) {
			c := m.Go(func(w *Thread) {
				for i := 0; i < 5; i++ {
					out = append(out, w.Rand().Intn(1000))
				}
			})
			m.Join(c)
		}}, event.Nop{}, Options{Seed: 99})
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("thread RNG must be deterministic per seed")
		}
	}
}
