package sim

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/vc"
)

// Readers may hold the lock together; writers are exclusive against both.
func TestRWLockExclusionInvariants(t *testing.T) {
	l := &logSink{}
	Run(Program{Name: "rw", Main: func(m *Thread) {
		rw := m.NewRWLock()
		var hs []*Thread
		for i := 0; i < 3; i++ {
			hs = append(hs, m.Go(func(w *Thread) {
				for j := 0; j < 20; j++ {
					w.RLock(rw)
					w.Read(0x10, 4)
					w.RUnlock(rw)
				}
			}))
		}
		hs = append(hs, m.Go(func(w *Thread) {
			for j := 0; j < 10; j++ {
				w.Lock(rw)
				w.Write(0x10, 4)
				w.Unlock(rw)
			}
		}))
		for _, h := range hs {
			m.Join(h)
		}
	}}, l, Options{Seed: 8, Quantum: 2})

	readers := 0
	writer := false
	sawConcurrentReaders := false
	for _, e := range l.events {
		switch {
		case strings.HasPrefix(e, "racq"):
			if writer {
				t.Fatalf("read-acquire while writer holds: %q", l)
			}
			readers++
			if readers > 1 {
				sawConcurrentReaders = true
			}
		case strings.HasPrefix(e, "rrel"):
			readers--
		case strings.HasPrefix(e, "acq"):
			if writer || readers > 0 {
				t.Fatalf("write-acquire while lock busy (readers=%d): %q", readers, l)
			}
			writer = true
		case strings.HasPrefix(e, "rel"):
			writer = false
		}
	}
	if !sawConcurrentReaders {
		t.Error("readers never overlapped — the lock is not actually shared")
	}
}

// A blocked writer gets preference over newly arriving readers.
func TestRWLockWriterPreference(t *testing.T) {
	order := []string{}
	Run(Program{Name: "pref", Main: func(m *Thread) {
		rw := m.NewRWLock()
		stage := 0
		r1 := m.Go(func(w *Thread) {
			w.RLock(rw)
			stage = 1
			for stage < 2 { // hold the read lock until the writer queues
				w.Yield()
			}
			for i := 0; i < 5; i++ {
				w.Yield()
			}
			w.RUnlock(rw)
		})
		wr := m.Go(func(w *Thread) {
			for stage < 1 {
				w.Yield()
			}
			stage = 2
			w.Lock(rw) // blocks behind r1
			order = append(order, "writer")
			w.Unlock(rw)
		})
		r2 := m.Go(func(w *Thread) {
			for stage < 2 {
				w.Yield()
			}
			for i := 0; i < 3; i++ {
				w.Yield() // let the writer enqueue first
			}
			w.RLock(rw) // must wait behind the queued writer
			order = append(order, "reader2")
			w.RUnlock(rw)
		})
		m.Join(r1)
		m.Join(wr)
		m.Join(r2)
	}}, event.Nop{}, Options{Seed: 5})
	if len(order) != 2 || order[0] != "writer" {
		t.Errorf("writer preference violated: %v", order)
	}
}

func TestRUnlockWithoutReadersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(Program{Name: "badrunlock", Main: func(m *Thread) {
		rw := m.NewRWLock()
		m.RUnlock(rw)
	}}, event.Nop{}, Options{})
}

func TestWithRLock(t *testing.T) {
	l := &logSink{}
	Run(Program{Name: "withrlock", Main: func(m *Thread) {
		rw := m.NewRWLock()
		m.WithRLock(rw, func() { m.Read(0x7, 1) })
	}}, l, Options{})
	if got := l.String(); got != "racq0:0 r0:7/1 rrel0:0" {
		t.Errorf("trace = %q", got)
	}
	_ = vc.TID(0)
}
