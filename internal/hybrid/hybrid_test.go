package hybrid

import (
	"testing"

	"repro/internal/event"
	"repro/internal/fasttrack"
	"repro/internal/vc"
)

func TestDetectsUnorderedWrites(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x100, 4, 1)
	d.Write(1, 0x100, 4, 2)
	if len(d.Races()) != 1 {
		t.Fatalf("races = %v", d.Races())
	}
	r := d.Races()[0]
	if r.Kind != fasttrack.WriteWrite || r.Addr != 0x100 || r.PC != 2 || r.OtherPC != 1 {
		t.Errorf("race = %+v", r)
	}
}

func TestAcceptsHappensBefore(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x100, 4, 1)
	d.Release(0, 9)
	d.Acquire(1, 9)
	d.Write(1, 0x100, 4, 2)
	d.Fork(1, 2)
	d.Write(2, 0x100, 4, 3)
	if len(d.Races()) != 0 {
		t.Errorf("ordered accesses raced: %v", d.Races())
	}
}

// Inspector XE keys reports on instruction pairs: many locations racing at
// the same two code sites collapse into one report, while the same location
// racing at different site pairs yields several.
func TestInstructionPairKeying(t *testing.T) {
	d := New(Options{})
	// 10 locations, all racing between the same two sites: one report.
	for i := uint64(0); i < 10; i++ {
		d.Write(0, 0x1000+i*8, 4, 7)
		d.Write(1, 0x1000+i*8, 4, 8)
	}
	if len(d.Races()) != 1 {
		t.Fatalf("same site pair must merge: got %d reports", len(d.Races()))
	}
	// The same location racing again from a different site pair: a new
	// report (thread 0 against thread 1's last write at site 8).
	d.Write(0, 0x1000, 4, 9)
	if len(d.Races()) != 2 {
		t.Errorf("distinct site pair must report separately: %d", len(d.Races()))
	}
}

func TestReadRaces(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x200, 4, 1)
	d.Read(1, 0x200, 4, 2)
	if len(d.Races()) != 1 || d.Races()[0].Kind != fasttrack.WriteRead {
		t.Fatalf("write-read: %v", d.Races())
	}
	d2 := New(Options{})
	d2.Read(0, 0x200, 4, 1)
	d2.Write(1, 0x200, 4, 2)
	if len(d2.Races()) != 1 || d2.Races()[0].Kind != fasttrack.ReadWrite {
		t.Errorf("read-write: %v", d2.Races())
	}
}

func TestSuppression(t *testing.T) {
	d := New(Options{})
	libc := event.MakePC(event.ModuleLibc, 5)
	d.Write(0, 0x300, 4, libc)
	d.Write(1, 0x300, 4, libc)
	if len(d.Races()) != 0 {
		t.Errorf("suppressed race reported: %v", d.Races())
	}
}

func TestMemoryLimitAborts(t *testing.T) {
	d := New(Options{MemLimitBytes: 4096})
	for i := uint64(0); i < 200; i++ {
		d.Write(0, 0x1000+i*8, 4, 1)
	}
	if !d.OOM() {
		t.Fatal("memory limit never tripped")
	}
	before := len(d.Races())
	d.Write(1, 0x1000, 4, 2)
	if len(d.Races()) != before {
		t.Error("post-OOM analysis must stop")
	}
}

func TestFreeReleasesShadow(t *testing.T) {
	d := New(Options{})
	d.Write(0, 0x400, 8, 1)
	peak := d.PeakBytes()
	d.Free(0, 0x400, 8)
	d.Write(1, 0x400, 8, 2) // fresh allocation: no race
	if len(d.Races()) != 0 {
		t.Errorf("stale shadow raced: %v", d.Races())
	}
	if d.PeakBytes() < peak {
		t.Error("peak must be sticky")
	}
}

func TestPotentialRaces(t *testing.T) {
	// Lock-discipline violation whose accesses were happens-before ordered
	// in this run (fork ordering, different locks): only reported with
	// PotentialRaces.
	run := func(potential bool) int {
		d := New(Options{PotentialRaces: potential})
		d.Acquire(0, 1)
		d.Write(0, 0x500, 4, 1)
		d.Release(0, 1)
		d.Fork(0, 1) // orders everything below after thread 0's write
		d.Acquire(1, 2)
		d.Write(1, 0x500, 4, 2) // empties C(v), marks the location shared
		d.Release(1, 2)
		d.Acquire(1, 2)
		d.Write(1, 0x500, 4, 2) // discipline still broken: potential race
		d.Release(1, 2)
		return len(d.Races())
	}
	if got := run(false); got != 0 {
		t.Errorf("without PotentialRaces: %d reports", got)
	}
	if got := run(true); got == 0 {
		t.Error("PotentialRaces should flag the discipline violation")
	}
}

func TestLocksetRefinement(t *testing.T) {
	// Consistently locked accesses never trigger even potential races.
	d := New(Options{PotentialRaces: true})
	for i := 0; i < 5; i++ {
		tid := vc.TID(i % 2)
		d.Acquire(tid, 4)
		d.Write(tid, 0x600, 4, 1)
		d.Release(tid, 4)
	}
	if len(d.Races()) != 0 {
		t.Errorf("disciplined accesses flagged: %v", d.Races())
	}
}
