// Package hybrid implements a hybrid lockset + happens-before race detector
// in the tradition of O'Callahan & Choi (PPoPP 2003) and ThreadSanitizer
// v1 — the detector family Intel Inspector XE belongs to. It stands in for
// Inspector XE in the Table 6 comparison, reproducing its observable
// characteristics from the paper:
//
//   - byte-granularity happens-before detection with per-location shadow
//     state larger than FastTrack's (last write epoch, read history, a
//     candidate lockset, and the code sites of prior accesses), hence the
//     markedly higher memory use (~2.8× the dynamic detector);
//   - races are keyed by the *pair of instruction addresses* involved, not
//     by memory location, so one location can produce several reports (one
//     per distinct code-site pair) and many locations racing at the same
//     two instructions collapse into one report — both behaviours the
//     paper notes when counting Inspector XE races;
//   - a lockset is maintained per location, which adds per-access
//     intersection work on top of the vector-clock checks (the extra
//     slowdown over plain FastTrack).
//
// An accounted memory limit emulates the out-of-memory exit the paper saw
// on dedup.
package hybrid

import (
	"repro/internal/event"
	"repro/internal/fasttrack"
	"repro/internal/lockset"
	"repro/internal/vc"
)

// Race is one reported race, identified by the pair of code sites.
type Race struct {
	Kind    fasttrack.RaceKind
	Addr    uint64 // first address observed for this site pair
	Tid     vc.TID
	PC      event.PC
	Other   vc.TID
	OtherPC event.PC
}

// Options configure the detector.
type Options struct {
	// MemLimitBytes aborts analysis when accounted memory exceeds it
	// (0 = unlimited).
	MemLimitBytes int64
	// Suppress hides races from these modules (nil = libc+ld default).
	Suppress []event.Module
	// PotentialRaces additionally reports lock-discipline violations that
	// were happens-before ordered in this execution (Inspector XE's
	// wider "data race" heuristics at higher analysis levels).
	PotentialRaces bool
}

// loc is the per-location shadow record, keyed by access start address
// (byte granularity: a location can be as small as one byte, and staggered
// overlapping accesses are tracked from their start addresses, as the
// commercial tools' shadow indexing does): FastTrack-style history plus
// lockset metadata and prior code sites.
type loc struct {
	w      vc.Epoch
	wPC    event.PC
	r      fasttrack.Read
	rPC    event.PC
	cand   int // interned candidate lockset
	shared bool
}

// locBytes models the C shadow cell: write epoch (8) + write site (4) +
// read epoch (8) + read site (4) + lockset id (4) + flags and index
// overhead — noticeably larger than FastTrack's 32-byte node, which is
// where Inspector XE's ~2.8× memory multiple over the dynamic detector
// comes from.
const locBytes = 80

// Detector is the hybrid detector; it implements event.Sink.
type Detector struct {
	opt  Options
	th   *fasttrack.Threads
	in   *lockset.Interner
	held *lockset.Held

	locs     map[uint64]*loc
	reported map[uint64]bool // key: pc-pair

	races    []Race
	suppress [8]bool
	supCount uint64

	// Report-context collection: Inspector XE builds per-access timelines
	// and call-stack attributions for its GUI reports. The stand-in pays
	// an analogous per-access cost — a timeline ring and per-site
	// counters — which is a real part of that tool's overhead profile.
	timeline [4096]timelineEntry
	tlHead   int
	siteHits map[event.PC]uint64

	curBytes  int64
	peakBytes int64
	oom       bool
}

// New returns a hybrid detector.
func New(opt Options) *Detector {
	in := lockset.NewInterner()
	d := &Detector{
		opt:      opt,
		th:       fasttrack.NewThreads(),
		in:       in,
		held:     lockset.NewHeld(in),
		locs:     make(map[uint64]*loc),
		reported: make(map[uint64]bool),
		siteHits: make(map[event.PC]uint64),
	}
	sup := opt.Suppress
	if sup == nil {
		sup = []event.Module{event.ModuleLibc, event.ModuleLd}
	}
	for _, m := range sup {
		d.suppress[m] = true
	}
	return d
}

// Races returns the reported races (one per code-site pair).
func (d *Detector) Races() []Race { return d.races }

// OOM reports whether the run aborted on the memory limit.
func (d *Detector) OOM() bool { return d.oom }

// PeakBytes returns the peak accounted detector memory.
func (d *Detector) PeakBytes() int64 { return d.peakBytes }

func (d *Detector) account(delta int64) {
	d.curBytes += delta
	if d.curBytes > d.peakBytes {
		d.peakBytes = d.curBytes
	}
	if d.opt.MemLimitBytes > 0 && d.curBytes > d.opt.MemLimitBytes {
		d.oom = true
	}
}

func (d *Detector) loc(a uint64) *loc {
	l := d.locs[a]
	if l == nil {
		l = &loc{cand: -1}
		d.locs[a] = l
		d.account(locBytes)
	}
	return l
}

// timelineEntry is one collected access-context record.
type timelineEntry struct {
	pc   event.PC
	tid  vc.TID
	addr uint64
}

// collect records the access context used for race reports (timeline and
// per-site statistics).
func (d *Detector) collect(tid vc.TID, addr uint64, pc event.PC) {
	d.timeline[d.tlHead] = timelineEntry{pc: pc, tid: tid, addr: addr}
	d.tlHead = (d.tlHead + 1) & (len(d.timeline) - 1)
	d.siteHits[pc]++
}

func pairKey(a, b event.PC) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

func (d *Detector) report(kind fasttrack.RaceKind, a uint64, tid vc.TID, pc event.PC, other vc.TID, opc event.PC) {
	k := pairKey(pc, opc)
	if d.reported[k] {
		return
	}
	d.reported[k] = true
	if d.suppress[pc.Module()] || d.suppress[opc.Module()] {
		d.supCount++
		return
	}
	d.races = append(d.races, Race{Kind: kind, Addr: a, Tid: tid, PC: pc, Other: other, OtherPC: opc})
}

// refine updates the candidate lockset of l for an access under cur,
// reporting whether the lock discipline is (still) respected.
func (d *Detector) refine(l *loc, cur int) bool {
	if l.cand < 0 {
		l.cand = cur
		return true
	}
	l.cand = d.in.Intersect(l.cand, cur)
	return !d.in.IsEmpty(l.cand)
}

// Write processes a shared write. The location is the access footprint,
// keyed by its start address.
func (d *Detector) Write(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	if d.oom || event.NonShared(addr) {
		return
	}
	tc := d.th.Clock(tid)
	e := d.th.Epoch(tid)
	cur := d.held.Set(tid)
	d.collect(tid, addr, pc)
	l := d.loc(addr)
	disciplined := d.refine(l, cur)
	if kind, other := fasttrack.CheckWrite(l.w, &l.r, tc); kind != fasttrack.NoRace {
		opc := l.wPC
		if kind == fasttrack.ReadWrite {
			opc = l.rPC
		}
		d.report(kind, addr, tid, pc, other, opc)
	} else if d.opt.PotentialRaces && !disciplined && l.shared {
		d.report(fasttrack.WriteWrite, addr, tid, pc, l.w.TID(), l.wPC)
	}
	if l.w.TID() != tid && !l.w.IsNone() {
		l.shared = true
	}
	l.w = e
	l.wPC = pc
	_ = size
}

// Read processes a shared read, keyed by the footprint start address.
func (d *Detector) Read(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	if d.oom || event.NonShared(addr) {
		return
	}
	tc := d.th.Clock(tid)
	e := d.th.Epoch(tid)
	cur := d.held.Set(tid)
	d.collect(tid, addr, pc)
	l := d.loc(addr)
	d.refine(l, cur)
	if kind, other := fasttrack.CheckRead(l.w, tc); kind != fasttrack.NoRace {
		d.report(kind, addr, tid, pc, other, l.wPC)
	}
	before := l.r.Bytes()
	l.r.Update(tid, e, tc)
	if delta := l.r.Bytes() - before; delta != 0 {
		d.account(int64(delta))
	}
	l.rPC = pc
	_ = size
}

// Acquire and Release maintain both the vector clocks and the held locksets.
func (d *Detector) Acquire(tid vc.TID, l event.LockID) {
	d.th.Acquire(tid, l)
	d.held.Acquire(tid, l)
}

func (d *Detector) Release(tid vc.TID, l event.LockID) {
	d.th.Release(tid, l)
	d.held.Release(tid, l)
}

// AcquireShared and ReleaseShared apply the rwlock read-side updates; a
// read-held lock also counts toward the candidate lockset (the classic
// lockset approximation for rwlocks).
func (d *Detector) AcquireShared(tid vc.TID, l event.LockID) {
	d.th.AcquireShared(tid, l)
	d.held.Acquire(tid, l)
}

func (d *Detector) ReleaseShared(tid vc.TID, l event.LockID) {
	d.th.ReleaseShared(tid, l)
	d.held.Release(tid, l)
}

// Fork, Join, BarrierArrive, BarrierDepart apply the clock updates.
func (d *Detector) Fork(p, c vc.TID) { d.th.Fork(p, c) }
func (d *Detector) Join(p, c vc.TID) { d.th.Join(p, c) }
func (d *Detector) BarrierArrive(t vc.TID, b event.BarrierID) {
	d.th.BarrierArrive(t, b)
}
func (d *Detector) BarrierDepart(t vc.TID, b event.BarrierID) {
	d.th.BarrierDepart(t, b)
}

// Malloc is a no-op.
func (d *Detector) Malloc(vc.TID, uint64, uint64) {}

// Free discards shadow state of the freed range.
func (d *Detector) Free(_ vc.TID, addr uint64, size uint64) {
	if d.oom {
		return
	}
	for a := addr; a < addr+size; a++ {
		if l, ok := d.locs[a]; ok {
			d.account(-locBytes - int64(l.r.Bytes()))
			delete(d.locs, a)
		}
	}
}
