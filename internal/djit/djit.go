// Package djit implements the DJIT+ happens-before race detector
// (Pozniansky & Schuster, PPoPP 2003) as described in Section II.B of the
// paper: every location keeps a full read vector clock R_x and write vector
// clock W_x; upon the first read of x in an epoch by thread t, a write-read
// race is reported if W_x[u] > T_t[u] for some thread u, and symmetrically
// for writes.
//
// DJIT+ is precision-equivalent to FastTrack, so this detector is the
// reference oracle the property tests compare the FastTrack-based detectors
// against, and it reproduces the Figure 1 example execution. It favours
// clarity over speed: locations live in a plain map at a fixed granularity
// and no epoch representation is used.
package djit

import (
	"repro/internal/event"
	"repro/internal/fasttrack"
	"repro/internal/vc"
)

// Race is one detected race.
type Race struct {
	Kind fasttrack.RaceKind
	Addr uint64
	Tid  vc.TID
	// Other names a thread whose earlier access is unordered with this one.
	Other vc.TID
}

// Options configure the oracle.
type Options struct {
	// Granule is the location size in bytes (power of two); accesses are
	// split into granule-sized locations. 0 means 1 (per byte).
	Granule uint64
	// AllRaces reports every racy access rather than only the first race
	// per location.
	AllRaces bool
}

// Detector is a DJIT+ detector; it implements event.Sink.
type Detector struct {
	opt  Options
	th   *fasttrack.Threads
	locs map[uint64]*location
	out  []Race
}

type location struct {
	r, w  vc.VC
	lastW vc.TID // a writer with the maximal clock seen (for reports)
	raced bool
}

// New returns an empty DJIT+ detector.
func New(opt Options) *Detector {
	if opt.Granule == 0 {
		opt.Granule = 1
	}
	return &Detector{
		opt:  opt,
		th:   fasttrack.NewThreads(),
		locs: make(map[uint64]*location),
	}
}

// Races returns all reported races in detection order.
func (d *Detector) Races() []Race { return d.out }

// RacyAddrs returns the set of location base addresses involved in races.
func (d *Detector) RacyAddrs() map[uint64]bool {
	m := make(map[uint64]bool, len(d.out))
	for _, r := range d.out {
		m[r.Addr] = true
	}
	return m
}

// ThreadClock exposes thread t's current vector clock (Figure 1 tests).
func (d *Detector) ThreadClock(t vc.TID) *vc.VC { return d.th.Clock(t) }

// WriteClock exposes the write vector clock of the location at addr.
func (d *Detector) WriteClock(addr uint64) *vc.VC {
	if l := d.locs[addr&^(d.opt.Granule-1)]; l != nil {
		return &l.w
	}
	return nil
}

func (d *Detector) loc(addr uint64) *location {
	a := addr &^ (d.opt.Granule - 1)
	l := d.locs[a]
	if l == nil {
		l = &location{lastW: vc.NoTID}
		d.locs[a] = l
	}
	return l
}

func (d *Detector) each(addr uint64, size uint32, f func(base uint64, l *location)) {
	g := d.opt.Granule
	for a := addr &^ (g - 1); a < addr+uint64(size); a += g {
		f(a, d.loc(a))
	}
}

// Read applies the DJIT+ read protocol to every granule of the access.
func (d *Detector) Read(tid vc.TID, addr uint64, size uint32, _ event.PC) {
	if event.NonShared(addr) {
		return
	}
	tc := d.th.Clock(tid)
	d.each(addr, size, func(base uint64, l *location) {
		if !l.w.LEQ(tc) {
			d.race(l, fasttrack.WriteRead, base, tid, l.w.AnyGT(tc))
		}
		l.r.Set(tid, tc.Get(tid))
	})
}

// Write applies the DJIT+ write protocol to every granule of the access.
func (d *Detector) Write(tid vc.TID, addr uint64, size uint32, _ event.PC) {
	if event.NonShared(addr) {
		return
	}
	tc := d.th.Clock(tid)
	d.each(addr, size, func(base uint64, l *location) {
		if !l.w.LEQ(tc) {
			d.race(l, fasttrack.WriteWrite, base, tid, l.w.AnyGT(tc))
		} else if !l.r.LEQ(tc) {
			d.race(l, fasttrack.ReadWrite, base, tid, l.r.AnyGT(tc))
		}
		l.w.Set(tid, tc.Get(tid))
		l.lastW = tid
	})
}

func (d *Detector) race(l *location, kind fasttrack.RaceKind, addr uint64, tid, other vc.TID) {
	if l.raced && !d.opt.AllRaces {
		return
	}
	l.raced = true
	d.out = append(d.out, Race{Kind: kind, Addr: addr, Tid: tid, Other: other})
}

// Acquire, Release, Fork, Join, BarrierArrive and BarrierDepart apply the
// standard vector-clock updates.
func (d *Detector) Acquire(tid vc.TID, l event.LockID) { d.th.Acquire(tid, l) }
func (d *Detector) Release(tid vc.TID, l event.LockID) { d.th.Release(tid, l) }

// AcquireShared and ReleaseShared apply the rwlock read-side updates.
func (d *Detector) AcquireShared(tid vc.TID, l event.LockID) { d.th.AcquireShared(tid, l) }
func (d *Detector) ReleaseShared(tid vc.TID, l event.LockID) { d.th.ReleaseShared(tid, l) }
func (d *Detector) Fork(p, c vc.TID)                         { d.th.Fork(p, c) }
func (d *Detector) Join(p, c vc.TID)                         { d.th.Join(p, c) }
func (d *Detector) BarrierArrive(t vc.TID, b event.BarrierID) {
	d.th.BarrierArrive(t, b)
}
func (d *Detector) BarrierDepart(t vc.TID, b event.BarrierID) {
	d.th.BarrierDepart(t, b)
}

// Malloc is a no-op.
func (d *Detector) Malloc(vc.TID, uint64, uint64) {}

// Free discards shadow state for the freed range.
func (d *Detector) Free(_ vc.TID, addr uint64, size uint64) {
	g := d.opt.Granule
	for a := addr &^ (g - 1); a < addr+size; a += g {
		delete(d.locs, a)
	}
}
