package djit

import (
	"testing"

	"repro/internal/fasttrack"
	"repro/internal/vc"
)

const (
	t0 = vc.TID(0)
	t1 = vc.TID(1)
	x  = uint64(0x100)
	s  = 0 // lock id
)

// TestFigure1Example replays the paper's Figure 1 scenario: a write ordered
// through lock s is accepted; a write not ordered by any synchronization is
// a write-write race, detected because W_x[u] > T_t[u].
func TestFigure1Example(t *testing.T) {
	d := New(Options{Granule: 4})

	d.Write(t1, x, 4, 0) // T1 writes x at its epoch 1
	d.Acquire(t1, s)
	d.Release(t1, s) // publishes T1's time on s

	d.Acquire(t0, s) // T0 learns T1's time
	if got := d.ThreadClock(t0).Get(t1); got != 1 {
		t.Fatalf("T0[1] = %d after acquiring s, want 1", got)
	}
	d.Write(t0, x, 4, 0) // ordered: no race
	if len(d.Races()) != 0 {
		t.Fatalf("ordered write raced: %v", d.Races())
	}
	if got := d.WriteClock(x).Get(t0); got != 1 {
		t.Fatalf("W_x[0] = %d, want 1", got)
	}

	d.Write(t1, x, 4, 0) // T1 never synchronized with T0: race
	races := d.Races()
	if len(races) != 1 {
		t.Fatalf("races = %v, want exactly the Figure 1 race", races)
	}
	r := races[0]
	if r.Kind != fasttrack.WriteWrite || r.Tid != t1 || r.Other != t0 || r.Addr != x {
		t.Errorf("race = %+v", r)
	}
}

func TestWriteReadRace(t *testing.T) {
	d := New(Options{Granule: 4})
	d.Write(t0, x, 4, 0)
	d.Read(t1, x, 4, 0)
	if len(d.Races()) != 1 || d.Races()[0].Kind != fasttrack.WriteRead {
		t.Errorf("races = %v", d.Races())
	}
}

func TestReadWriteRace(t *testing.T) {
	d := New(Options{Granule: 4})
	d.Read(t0, x, 4, 0)
	d.Write(t1, x, 4, 0)
	if len(d.Races()) != 1 || d.Races()[0].Kind != fasttrack.ReadWrite {
		t.Errorf("races = %v", d.Races())
	}
}

func TestReadReadIsNoRace(t *testing.T) {
	d := New(Options{Granule: 4})
	d.Read(t0, x, 4, 0)
	d.Read(t1, x, 4, 0)
	if len(d.Races()) != 0 {
		t.Errorf("read-read flagged: %v", d.Races())
	}
}

func TestFirstRacePerLocationOnly(t *testing.T) {
	d := New(Options{Granule: 4})
	d.Write(t0, x, 4, 0)
	d.Write(t1, x, 4, 0)
	d.Write(t0, x, 4, 0)
	d.Write(t1, x, 4, 0)
	if len(d.Races()) != 1 {
		t.Errorf("got %d races, want 1 (first per location)", len(d.Races()))
	}
	all := New(Options{Granule: 4, AllRaces: true})
	all.Write(t0, x, 4, 0)
	all.Write(t1, x, 4, 0)
	all.Write(t0, x, 4, 0)
	if len(all.Races()) < 2 {
		t.Errorf("AllRaces got %d", len(all.Races()))
	}
}

func TestGranuleSplitsAccesses(t *testing.T) {
	d := New(Options{Granule: 4})
	d.Write(t0, 0x100, 8, 0) // two granules
	d.Write(t1, 0x100, 8, 0)
	if len(d.Races()) != 2 {
		t.Errorf("8-byte access over 4-byte granules: %d races, want 2", len(d.Races()))
	}
	if m := d.RacyAddrs(); !m[0x100] || !m[0x104] {
		t.Errorf("racy addrs = %v", m)
	}
}

func TestForkJoinOrders(t *testing.T) {
	d := New(Options{Granule: 4})
	d.Write(t0, x, 4, 0)
	d.Fork(t0, t1)
	d.Write(t1, x, 4, 0) // ordered by fork
	d.Join(t0, t1)
	d.Write(t0, x, 4, 0) // ordered by join
	if len(d.Races()) != 0 {
		t.Errorf("fork/join ordering missed: %v", d.Races())
	}
}

func TestBarrierOrders(t *testing.T) {
	d := New(Options{Granule: 4})
	d.Write(t0, x, 4, 0)
	d.BarrierArrive(t0, 1)
	d.BarrierArrive(t1, 1)
	d.BarrierDepart(t0, 1)
	d.BarrierDepart(t1, 1)
	d.Write(t1, x, 4, 0)
	if len(d.Races()) != 0 {
		t.Errorf("barrier ordering missed: %v", d.Races())
	}
}

func TestFreeForgets(t *testing.T) {
	d := New(Options{Granule: 4})
	d.Write(t0, x, 4, 0)
	d.Free(t0, x, 4)
	d.Write(t1, x, 4, 0) // fresh allocation: no relation
	if len(d.Races()) != 0 {
		t.Errorf("stale state after free: %v", d.Races())
	}
}
