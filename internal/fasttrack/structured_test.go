package fasttrack

import (
	"testing"

	"repro/internal/event"
)

// TestStructuredFastPathZeroAlloc is the CI gate on the compact layer's
// steady state: once tables, freelists, and queue backing arrays are warm,
// a structured channel-handoff plus WaitGroup round must not allocate.
// Publications recycle through the arena freelists, queue pops compact in
// place, and absorbs either swap bases or write into existing overlay
// storage — an allocation here means one of those reuse paths regressed.
func TestStructuredFastPathZeroAlloc(t *testing.T) {
	ts := NewThreads()
	ts.SetClockMode(ClockCompact)
	const ch = event.ChanID(0)
	const wg = event.WGID(0)
	cycle := func() {
		ts.ChanSend(1, ch, 4)
		ts.ChanRecv(2, ch, 4)
		ts.WGDone(1, wg)
		ts.WGWait(2, wg)
	}
	for i := 0; i < 64; i++ {
		cycle()
	}
	if n := testing.AllocsPerRun(200, cycle); n != 0 {
		t.Errorf("structured sync fast path allocates %.1f times per cycle, want 0", n)
	}
	if got, want := ts.StructuredThreads(), 2; got != want {
		t.Fatalf("structured threads = %d, want %d (the fast path must not demote)", got, want)
	}
}

// TestJoinRetiresStructuredChild pins the retirement bookkeeping: joining a
// structured child frees its task, keeps it counted as structured, and a
// duplicate join is a no-op rather than a resurrection at epoch one.
func TestJoinRetiresStructuredChild(t *testing.T) {
	ts := NewThreads()
	ts.SetClockMode(ClockCompact)
	ts.Fork(0, 1)
	ts.ChanSend(1, 0, 1) // child publishes so the parent has time to absorb
	ts.ChanRecv(0, 0, 1)
	before := ts.View(0).Get(1)
	ts.Join(0, 1)
	if got := ts.View(0).Get(1); got < before {
		t.Fatalf("join lost child time: %d < %d", got, before)
	}
	if got, want := ts.StructuredThreads(), 2; got != want {
		t.Errorf("structured threads after join = %d, want %d", got, want)
	}
	after := ts.View(0).Get(1)
	ts.Join(0, 1) // duplicate join: must not fabricate a fresh child clock
	if got := ts.View(0).Get(1); got != after {
		t.Errorf("duplicate join changed parent's view of child: %d -> %d", after, got)
	}
	if got, want := ts.StructuredThreads(), 2; got != want {
		t.Errorf("structured threads after duplicate join = %d, want %d", got, want)
	}
}
