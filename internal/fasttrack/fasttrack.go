// Package fasttrack implements the FastTrack algorithm core (Flanagan &
// Freund, PLDI 2009) as summarized in Section II.C of the paper: thread and
// lock vector-clock management for the happens-before relation, the packed
// epoch representation of last writes, and the adaptive epoch-or-vector
// representation of reads.
//
// The package is deliberately independent of shadow-memory layout and
// detection granularity: it answers "given this access history and this
// thread's clock, is the next access racy, and what is the new history?".
// internal/detector binds it to locations; internal/dyngran decides how many
// locations share one history.
package fasttrack

import (
	"repro/internal/event"
	"repro/internal/vc"
)

// RaceKind classifies a detected race by the two conflicting accesses.
type RaceKind uint8

const (
	NoRace RaceKind = iota
	WriteWrite
	ReadWrite // earlier read, racing write
	WriteRead // earlier write, racing read
)

func (k RaceKind) String() string {
	switch k {
	case WriteWrite:
		return "write-write"
	case ReadWrite:
		return "read-write"
	case WriteRead:
		return "write-read"
	default:
		return "none"
	}
}

// Threads tracks every thread's vector clock and epoch, and the vector
// clocks of locks and barriers. It implements the clock updates of Section
// II.A/II.B: release joins the thread clock into the lock clock and starts a
// new epoch; acquire joins the lock clock into the thread clock; fork and
// join do the same through the child thread.
type Threads struct {
	clocks   []*vc.VC
	locks    map[event.LockID]*vc.VC
	readers  map[event.LockID]*vc.VC // rwlock reader-release clocks
	barriers map[event.BarrierID]*vc.VC
	epochs   uint64 // total epochs started, for statistics
	pool     *vc.Pool

	// Structure-aware clock mode (see structured.go). In ClockCompact
	// mode tasks[t] holds t's compact clock until its first unstructured
	// edge demotes it to clocks[t]; demoted[t] records the one-way fall.
	mode    ClockMode
	arena   *vc.Arena
	tasks   []*vc.Task
	demoted []bool
	// retired[t] records a structured thread whose task was freed when its
	// joiner absorbed the terminal snapshot; retiredTasks counts them for
	// StructuredThreads. Retirement keeps a finished subtree from pinning
	// the live chains (series–parallel joins have a single joiner, so the
	// task is unreachable afterwards).
	retired      []bool
	retiredTasks int
	demotions    [NumDemoteReasons]uint64
	// OnDemote, when set, observes each demotion (telemetry hook).
	OnDemote func(DemoteReason)

	// Go-native sync-object clocks, used in both modes.
	chans map[event.ChanID]*chanClock
	wgs   map[event.WGID]*wgClock

	// generalPeak is the high-water mark of GeneralClockBytes, sampled at
	// the sync operations that change the general-representation footprint.
	generalPeak int64
}

// SetPool binds every thread/lock/barrier clock created from now on to p,
// so their growth reallocation recycles through the pool. A nil pool (the
// default) keeps plain heap allocation.
func (ts *Threads) SetPool(p *vc.Pool) { ts.pool = p }

// NewThreads returns an empty thread-clock registry.
func NewThreads() *Threads {
	return &Threads{
		locks:    make(map[event.LockID]*vc.VC),
		readers:  make(map[event.LockID]*vc.VC),
		barriers: make(map[event.BarrierID]*vc.VC),
		chans:    make(map[event.ChanID]*chanClock),
		wgs:      make(map[event.WGID]*wgClock),
	}
}

// ensure returns thread t's clock, creating it at epoch 1 on first sight
// (threads begin in their first epoch with their own component at 1).
func (ts *Threads) ensure(t vc.TID) *vc.VC {
	for int(t) >= len(ts.clocks) {
		ts.clocks = append(ts.clocks, nil)
	}
	if ts.clocks[t] == nil {
		c := ts.pool.Get(int(t) + 1)
		c.Set(t, 1)
		ts.clocks[t] = c
		ts.epochs++
	}
	return ts.clocks[t]
}

// Clock returns thread t's current vector clock.
func (ts *Threads) Clock(t vc.TID) *vc.VC { return ts.ensure(t) }

// Epoch returns thread t's current epoch c@t.
func (ts *Threads) Epoch(t vc.TID) vc.Epoch {
	if k := ts.task(t); k != nil {
		return vc.MakeEpoch(t, k.Self())
	}
	c := ts.ensure(t)
	return vc.MakeEpoch(t, c.Get(t))
}

// Epochs returns the total number of epochs started across all threads.
func (ts *Threads) Epochs() uint64 { return ts.epochs }

// Acquire applies exclusive lock acquisition (mutex lock or rwlock
// write-lock): the thread observes every prior write release and — for
// rwlocks — every prior read release of l.
func (ts *Threads) Acquire(t vc.TID, l event.LockID) {
	tc := ts.demote(t, DemoteLock)
	if lc := ts.locks[l]; lc != nil {
		tc.Join(lc)
	}
	if rc := ts.readers[l]; rc != nil {
		tc.Join(rc)
	}
}

// Release applies lock release: L_l ⊔= T_t, then T_t[t]++ (a release starts
// the thread's next epoch, per DJIT+).
func (ts *Threads) Release(t vc.TID, l event.LockID) {
	tc := ts.demote(t, DemoteLock)
	lc := ts.locks[l]
	if lc == nil {
		lc = ts.pool.Get(tc.Len())
		ts.locks[l] = lc
	}
	lc.Join(tc)
	tc.Inc(t)
	ts.epochs++
}

// AcquireShared applies a rwlock read-lock: the reader observes everything
// published by prior write-releases (T_t ⊔= L_l) but, unlike Acquire, does
// not later need readers to be mutually ordered.
func (ts *Threads) AcquireShared(t vc.TID, l event.LockID) {
	tc := ts.demote(t, DemoteRWLock)
	if lc := ts.locks[l]; lc != nil {
		tc.Join(lc)
	}
}

// ReleaseShared applies a rwlock read-unlock: the reader's time joins the
// lock's *reader* clock, which only the next write acquirer absorbs —
// concurrent readers stay unordered with each other, which is what lets a
// rwlock-protected read-mostly structure still exhibit read sharing in the
// FastTrack representation. The release starts the reader's next epoch.
func (ts *Threads) ReleaseShared(t vc.TID, l event.LockID) {
	tc := ts.demote(t, DemoteRWLock)
	rc := ts.readers[l]
	if rc == nil {
		rc = ts.pool.Get(tc.Len())
		ts.readers[l] = rc
	}
	rc.Join(tc)
	tc.Inc(t)
	ts.epochs++
}

// Fork makes the child inherit the parent's time and advances the parent's
// epoch so later parent events are not ordered before the child's. In
// compact mode a fresh child's clock is just the parent's fork snapshot —
// the structured fast path: O(1) regardless of thread count.
func (ts *Threads) Fork(parent, child vc.TID) {
	if ts.mode == ClockCompact {
		if pt := ts.task(parent); pt != nil && ts.freshThread(child) {
			snap := pt.Publish()
			ts.growTask(child)
			ts.tasks[child] = ts.arena.NewTask(child, snap)
			ts.epochs += 2 // parent's new epoch + child's first
			return
		}
		// Demoted parent or re-forked child: express the edge as a
		// publish/absorb pair in whatever representations the two use.
		cv := ts.publishVal(parent)
		ts.absorbVal(child, cv)
		ts.releaseVal(cv)
		return
	}
	pc := ts.ensure(parent)
	cc := ts.ensure(child)
	cc.Join(pc)
	pc.Inc(parent)
	ts.epochs++
	ts.noteGeneralPeak()
}

// Join absorbs the finished child's time into the parent. Join does not
// start a new epoch for either side. In compact mode the joiner absorbs the
// child's terminal snapshot and then retires the child's task: a joined
// series–parallel subtree is unreachable (single joiner), and freeing it
// unpins the chains its base and publication history held onto — this is
// what keeps the finished-thread footprint O(1) where the general
// representation keeps a dense clock per dead thread forever.
func (ts *Threads) Join(parent, child vc.TID) {
	if ts.mode == ClockCompact {
		if int(child) < len(ts.retired) && ts.retired[child] {
			return // already joined and retired; nothing left to absorb
		}
		if ct := ts.task(child); ct != nil {
			f := ct.Final()
			if pt := ts.task(parent); pt != nil {
				pt.Absorb(f)
			} else {
				vc.SnapJoinInto(ts.arena, f, ts.ensure(parent))
				ts.noteGeneralPeak()
			}
			ts.arena.Release(f)
			ts.arena.FreeTask(ct)
			ts.tasks[child] = nil
			ts.retired[child] = true
			ts.retiredTasks++
			return
		}
		// Demoted child: the parent leaves the structured regime too.
		cc := ts.ensure(child)
		ts.demote(parent, DemotePeer).Join(cc)
		return
	}
	ts.ensure(parent).Join(ts.ensure(child))
	ts.noteGeneralPeak()
}

// BarrierArrive contributes t's time to the barrier clock and starts t's
// next epoch; BarrierDepart (called once all parties arrived) absorbs the
// joined clock, ordering everything before the barrier ahead of everything
// after it.
func (ts *Threads) BarrierArrive(t vc.TID, b event.BarrierID) {
	tc := ts.demote(t, DemoteBarrier)
	bc := ts.barriers[b]
	if bc == nil {
		bc = ts.pool.Get(tc.Len())
		ts.barriers[b] = bc
	}
	bc.Join(tc)
	tc.Inc(t)
	ts.epochs++
}

// BarrierDepart absorbs the barrier clock into t.
func (ts *Threads) BarrierDepart(t vc.TID, b event.BarrierID) {
	tc := ts.demote(t, DemoteBarrier)
	if bc := ts.barriers[b]; bc != nil {
		tc.Join(bc)
	}
}

// LockClockBytes returns the accounting size of all lock and barrier clocks.
func (ts *Threads) LockClockBytes() int64 {
	var n int64
	for _, c := range ts.locks {
		n += int64(c.Bytes()) + 16
	}
	for _, c := range ts.readers {
		n += int64(c.Bytes()) + 16
	}
	for _, c := range ts.barriers {
		n += int64(c.Bytes()) + 16
	}
	return n
}

// Read is FastTrack's adaptive read representation: a single epoch while
// reads of the location are totally ordered, inflated to a full vector clock
// once concurrent ("read-shared") reads appear. The zero Read means "never
// read".
type Read struct {
	E vc.Epoch // valid while V == nil
	V *vc.VC   // non-nil once read-shared
}

// IsNone reports whether no read has been recorded.
func (r *Read) IsNone() bool { return r.V == nil && r.E.IsNone() }

// Shared reports whether the representation has inflated to a full vector.
func (r *Read) Shared() bool { return r.V != nil }

// LEQ reports whether every recorded read happens before the time v.
func (r *Read) LEQ(v vc.View) bool {
	if r.V != nil {
		return r.V.LEQ(v)
	}
	return r.E.LEQ(v)
}

// RacingTID names a thread whose recorded read is not ordered before v.
func (r *Read) RacingTID(v vc.View) vc.TID {
	if r.V != nil {
		return r.V.AnyGT(v)
	}
	return r.E.TID()
}

// Equal reports representation equality — the paper's "same vector clock"
// test for read locations (two clocks are the same when they are the same
// size and of equal value; an epoch only equals an epoch).
func (r *Read) Equal(o *Read) bool {
	if (r.V == nil) != (o.V == nil) {
		return false
	}
	if r.V != nil {
		return r.V.Equal(o.V)
	}
	return r.E == o.E
}

// Clone returns an independent copy. A pool-bound inflated vector clones
// copy-on-write through its own pool.
func (r *Read) Clone() Read {
	n := Read{E: r.E}
	if r.V != nil {
		n.V = r.V.Clone()
	}
	return n
}

// CloneIn returns a copy whose inflated vector (if any) shares storage
// copy-on-write and serves its future growth from pool p (nil = heap).
func (r *Read) CloneIn(p *vc.Pool) Read {
	n := Read{E: r.E}
	if r.V != nil {
		n.V = r.V.CloneIn(p)
	}
	return n
}

// Release returns the inflated vector (if any) to its pool and resets the
// representation to "never read". Safe on the zero Read.
func (r *Read) Release() {
	if r.V != nil {
		r.V.Release()
		r.V = nil
	}
	r.E = vc.EpochNone
}

// Bytes returns the accounting size of the representation beyond its
// embedding struct (the inflated vector, if any).
func (r *Read) Bytes() int {
	if r.V == nil {
		return 0
	}
	return r.V.Bytes() + 16
}

// Update records a read at epoch e of thread clock tc: while the previous
// read happens-before this one the epoch form suffices; otherwise the
// representation inflates to a vector clock. It reports whether the
// representation changed from epoch to vector (for accounting).
func (r *Read) Update(t vc.TID, e vc.Epoch, tc vc.View) (inflated bool) {
	return r.UpdateIn(nil, t, e, tc)
}

// UpdateIn is Update with the inflation vector (when one is created) served
// by pool p; a nil pool falls back to plain heap allocation.
func (r *Read) UpdateIn(p *vc.Pool, t vc.TID, e vc.Epoch, tc vc.View) (inflated bool) {
	if r.V != nil {
		r.V.Set(t, e.Clock())
		return false
	}
	if r.E.IsNone() || r.E.LEQ(tc) || r.E.TID() == t {
		r.E = e
		return false
	}
	// Concurrent reads: inflate to a full vector holding both.
	v := p.Get(int(t) + 1)
	v.Set(r.E.TID(), r.E.Clock())
	v.Set(t, e.Clock())
	r.V = v
	r.E = vc.EpochNone
	return true
}

// CheckWrite applies FastTrack's write checks against a location's write
// epoch w and read representation r, for a thread with clock tc (general or
// compact — any clock View). It returns the race found (NoRace if none) and
// the id of the other thread involved.
func CheckWrite(w vc.Epoch, r *Read, tc vc.View) (RaceKind, vc.TID) {
	if !w.LEQ(tc) {
		return WriteWrite, w.TID()
	}
	if r != nil && !r.LEQ(tc) {
		return ReadWrite, r.RacingTID(tc)
	}
	return NoRace, vc.NoTID
}

// CheckRead applies FastTrack's read check: a read races with the last
// write unless that write happens before the reader.
func CheckRead(w vc.Epoch, tc vc.View) (RaceKind, vc.TID) {
	if !w.LEQ(tc) {
		return WriteRead, w.TID()
	}
	return NoRace, vc.NoTID
}
