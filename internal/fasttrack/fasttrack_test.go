package fasttrack

import (
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/vc"
)

func TestThreadsStartAtClockOne(t *testing.T) {
	ts := NewThreads()
	if got := ts.Epoch(0); got.Clock() != 1 || got.TID() != 0 {
		t.Errorf("initial epoch = %v", got)
	}
	if got := ts.Clock(3).Get(3); got != 1 {
		t.Errorf("own component = %d, want 1", got)
	}
}

func TestReleaseStartsNewEpoch(t *testing.T) {
	ts := NewThreads()
	e1 := ts.Epoch(0)
	ts.Release(0, 1)
	e2 := ts.Epoch(0)
	if e2.Clock() != e1.Clock()+1 {
		t.Errorf("release did not advance the epoch: %v -> %v", e1, e2)
	}
}

func TestLockTransfersTime(t *testing.T) {
	ts := NewThreads()
	// Thread 0 releases lock 5 at clock 1; thread 1 acquires it.
	ts.Release(0, 5)
	ts.Acquire(1, 5)
	if got := ts.Clock(1).Get(0); got != 1 {
		t.Errorf("thread 1 did not observe thread 0's clock: %d", got)
	}
	// Acquire of an untouched lock is a no-op.
	before := ts.Clock(1).Clone()
	ts.Acquire(1, 99)
	if !ts.Clock(1).Equal(before) {
		t.Error("acquire of a fresh lock must not change the clock")
	}
}

func TestForkJoinOrdering(t *testing.T) {
	ts := NewThreads()
	parentBefore := ts.Epoch(0)
	ts.Fork(0, 1)
	if got := ts.Clock(1).Get(0); got != parentBefore.Clock() {
		t.Errorf("child did not inherit parent time: %d", got)
	}
	if ts.Epoch(0).Clock() != parentBefore.Clock()+1 {
		t.Error("fork must advance the parent's epoch")
	}
	ts.Release(1, 7) // child moves on
	ts.Join(0, 1)
	if got := ts.Clock(0).Get(1); got != ts.Clock(1).Get(1) {
		t.Errorf("join did not absorb child time: %d", got)
	}
}

func TestBarrierAllToAll(t *testing.T) {
	ts := NewThreads()
	const b = event.BarrierID(2)
	for tid := vc.TID(0); tid < 3; tid++ {
		ts.BarrierArrive(tid, b)
	}
	for tid := vc.TID(0); tid < 3; tid++ {
		ts.BarrierDepart(tid, b)
	}
	// After departing, every thread has seen every other thread's
	// pre-barrier clock (which was 1).
	for tid := vc.TID(0); tid < 3; tid++ {
		for other := vc.TID(0); other < 3; other++ {
			if ts.Clock(tid).Get(other) < 1 {
				t.Errorf("thread %d missed thread %d's pre-barrier time", tid, other)
			}
		}
	}
}

func TestEpochsCounter(t *testing.T) {
	ts := NewThreads()
	ts.Epoch(0) // creates thread 0: 1 epoch
	ts.Release(0, 1)
	ts.Release(0, 1)
	if got := ts.Epochs(); got != 3 {
		t.Errorf("epochs = %d, want 3", got)
	}
}

func TestLockClockBytes(t *testing.T) {
	ts := NewThreads()
	if ts.LockClockBytes() != 0 {
		t.Error("no lock clocks yet")
	}
	ts.Release(0, 1)
	ts.BarrierArrive(0, 2)
	if ts.LockClockBytes() <= 0 {
		t.Error("lock/barrier clocks must be accounted")
	}
}

// ---- Read representation ----

func TestReadStartsNone(t *testing.T) {
	var r Read
	if !r.IsNone() || r.Shared() {
		t.Error("zero Read must be none and unshared")
	}
	if r.Bytes() != 0 {
		t.Error("epoch form accounts no extra bytes")
	}
}

func TestReadStaysEpochWhenOrdered(t *testing.T) {
	ts := NewThreads()
	var r Read
	r.Update(0, ts.Epoch(0), ts.Clock(0))
	if r.Shared() {
		t.Fatal("single reader must stay in epoch form")
	}
	// The read is published via a lock release; a second thread that
	// acquires the lock reads happens-after: still epoch form.
	ts.Release(0, 1)
	ts.Acquire(1, 1)
	if inflated := r.Update(1, ts.Epoch(1), ts.Clock(1)); inflated || r.Shared() {
		t.Error("happens-after read must stay in epoch form")
	}
	// Same thread reads again in a later epoch: still ordered.
	ts.Release(1, 2)
	if inflated := r.Update(1, ts.Epoch(1), ts.Clock(1)); inflated || r.Shared() {
		t.Error("ordered re-read must stay in epoch form")
	}
}

func TestReadInflatesOnConcurrentReads(t *testing.T) {
	ts := NewThreads()
	var r Read
	r.Update(0, ts.Epoch(0), ts.Clock(0))
	// Thread 1 never synchronized with thread 0: concurrent reads.
	if inflated := r.Update(1, ts.Epoch(1), ts.Clock(1)); !inflated || !r.Shared() {
		t.Fatal("concurrent reads must inflate to a vector")
	}
	if r.Bytes() <= 0 {
		t.Error("inflated vector must be accounted")
	}
	// Both reads must be remembered.
	v := vc.New(2)
	if r.LEQ(v) {
		t.Error("neither read is ordered before the empty clock")
	}
	v.Set(0, 1)
	v.Set(1, 1)
	if !r.LEQ(v) {
		t.Error("both reads are ordered before <1,1>")
	}
}

func TestReadEqual(t *testing.T) {
	a := Read{E: vc.MakeEpoch(0, 1)}
	b := Read{E: vc.MakeEpoch(0, 1)}
	c := Read{E: vc.MakeEpoch(1, 1)}
	if !a.Equal(&b) || a.Equal(&c) {
		t.Error("epoch-form equality broken")
	}
	d := Read{V: vc.FromSlice(1, 2)}
	e := Read{V: vc.FromSlice(1, 2)}
	if !d.Equal(&e) || d.Equal(&a) {
		t.Error("vector-form equality broken")
	}
}

func TestReadClone(t *testing.T) {
	r := Read{V: vc.FromSlice(1, 2)}
	c := r.Clone()
	c.V.Set(0, 9)
	if r.V.Get(0) != 1 {
		t.Error("clone must be independent")
	}
}

// ---- Race checks ----

func TestCheckWriteWriteRace(t *testing.T) {
	ts := NewThreads()
	w := ts.Epoch(0) // thread 0 wrote at 1@0
	// Thread 1 writes without synchronizing.
	kind, other := CheckWrite(w, nil, ts.Clock(1))
	if kind != WriteWrite || other != 0 {
		t.Errorf("got %v/%d, want write-write/0", kind, other)
	}
	// After synchronizing, no race.
	ts.Release(0, 1)
	ts.Acquire(1, 1)
	if kind, _ := CheckWrite(w, nil, ts.Clock(1)); kind != NoRace {
		t.Errorf("ordered write flagged: %v", kind)
	}
}

func TestCheckReadWriteRace(t *testing.T) {
	ts := NewThreads()
	var r Read
	r.Update(0, ts.Epoch(0), ts.Clock(0))
	kind, other := CheckWrite(vc.EpochNone, &r, ts.Clock(1))
	if kind != ReadWrite || other != 0 {
		t.Errorf("got %v/%d, want read-write/0", kind, other)
	}
}

func TestCheckWriteReadRace(t *testing.T) {
	ts := NewThreads()
	w := ts.Epoch(0)
	kind, other := CheckRead(w, ts.Clock(1))
	if kind != WriteRead || other != 0 {
		t.Errorf("got %v/%d, want write-read/0", kind, other)
	}
	if kind, _ := CheckRead(vc.EpochNone, ts.Clock(1)); kind != NoRace {
		t.Error("never-written location cannot race a read")
	}
}

func TestRaceKindStrings(t *testing.T) {
	for kind, want := range map[RaceKind]string{
		NoRace: "none", WriteWrite: "write-write",
		ReadWrite: "read-write", WriteRead: "write-read",
	} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q", kind, kind.String())
		}
	}
}

// Property: the adaptive Read representation never forgets a read — for any
// sequence of reads, LEQ against a clock agrees with a full set of (tid,
// clock) pairs.
func TestQuickReadRepresentationComplete(t *testing.T) {
	f := func(ops []uint8) bool {
		ts := NewThreads()
		var r Read
		type rd struct {
			tid vc.TID
			c   vc.Clock
		}
		var all []rd
		for _, op := range ops {
			tid := vc.TID(op % 4)
			if op%8 < 2 {
				ts.Release(tid, event.LockID(op%3)) // advance epochs sometimes
				continue
			}
			e := ts.Epoch(tid)
			r.Update(tid, e, ts.Clock(tid))
			all = append(all, rd{tid, e.Clock()})
		}
		// The representation may be coarser (epoch form proves all reads
		// ordered), but must never claim ordering a recorded read violates.
		probe := vc.New(4)
		for i := 0; i < 4; i++ {
			probe.Set(vc.TID(i), 2)
		}
		refLEQ := true
		for _, x := range all {
			if x.c > probe.Get(x.tid) {
				refLEQ = false
			}
		}
		got := r.LEQ(probe)
		if refLEQ && len(all) > 0 && r.Shared() && !got {
			return false // vector form must be exact
		}
		if !refLEQ && got {
			return false // must never forget an unordered read
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
