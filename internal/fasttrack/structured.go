// Structure-aware clock mode: when the analyzed program synchronizes
// through series–parallel constructs (fork/join, channel handoff,
// WaitGroup), thread clocks are kept as compact vc.Task encodings with O(1)
// publication and dominance-pruned absorption. A thread falls back
// ("demotes") to a general pooled vector clock on its first unstructured
// edge — mutex, rwlock, barrier, or absorbing time from an already-demoted
// peer. Demotion is one-way, per-thread, and verdict-preserving: a Task's
// Get is pointwise equal to the general clock the same operation sequence
// builds, and both modes advance epochs at exactly the same operations, so
// detectors comparing through vc.View report byte-identical races.
//
// This file also carries the Go-native synchronization semantics (channel
// send/recv/ack, WaitGroup Done/Wait) for *both* clock modes, since the
// per-object clock bookkeeping is identical — only the representation of
// published and absorbed times differs.
package fasttrack

import (
	"repro/internal/event"
	"repro/internal/vc"
)

// ClockMode selects the thread-clock representation.
type ClockMode uint8

const (
	// ClockGeneral uses pooled vector clocks for every thread (default).
	ClockGeneral ClockMode = iota
	// ClockCompact uses task-tree compact clocks with per-thread demotion.
	ClockCompact
)

func (m ClockMode) String() string {
	switch m {
	case ClockCompact:
		return "compact"
	default:
		return "general"
	}
}

// DemoteReason says which unstructured edge demoted a thread.
type DemoteReason uint8

const (
	// DemoteLock: the thread used a mutex.
	DemoteLock DemoteReason = iota
	// DemoteRWLock: the thread used a reader-writer lock.
	DemoteRWLock
	// DemoteBarrier: the thread used a barrier.
	DemoteBarrier
	// DemotePeer: the thread absorbed time from an already-demoted peer
	// (general-representation publication, or joining a demoted child).
	DemotePeer
)

// NumDemoteReasons is the number of distinct demotion reasons.
const NumDemoteReasons = 4

func (r DemoteReason) String() string {
	switch r {
	case DemoteLock:
		return "lock"
	case DemoteRWLock:
		return "rwlock"
	case DemoteBarrier:
		return "barrier"
	case DemotePeer:
		return "peer"
	default:
		return "?"
	}
}

// clockVal is one published time: a compact snapshot from a structured
// publisher, or a cloned vector clock from a demoted one.
type clockVal struct {
	s   *vc.Snap
	v   *vc.VC
	tid vc.TID
}

// fifo is a head-compacting queue of published times. Popping advances a
// head index instead of re-slicing, so the backing array is reused and the
// steady state allocates nothing.
type fifo struct {
	vals []clockVal
	head int
}

func (f *fifo) push(cv clockVal) {
	if f.head == len(f.vals) {
		f.vals = f.vals[:0]
		f.head = 0
	}
	f.vals = append(f.vals, cv)
}

func (f *fifo) pop() (clockVal, bool) {
	if f.head >= len(f.vals) {
		return clockVal{}, false
	}
	cv := f.vals[f.head]
	f.vals[f.head] = clockVal{}
	f.head++
	return cv, true
}

// chanClock is the per-channel clock state realizing the Go memory model's
// channel edges. sendq holds publications awaiting their matching receive
// (send k happens before receive k); recvq holds receiver publications
// awaiting the slot-reuse back edge (receive k happens before send k+C for
// capacity C; for C == 0 the ChanAck event pops it instead). Both queues
// are bounded: sendq by the queued elements plus blocked senders, recvq by
// the capacity (receives cannot outrun sends).
type chanClock struct {
	capacity     int
	sends, recvs uint64
	sendq        fifo
	recvq        fifo
}

// wgClock keeps, per WaitGroup, the latest Done publication of each owner
// thread; Wait absorbs them all. Replacing per owner is sound because a
// later publication of the same thread dominates its earlier ones, and the
// engine emits Wait immediately after the Done that releases it, so no
// later-round Done can slip in front.
type wgClock struct {
	done []clockVal
}

// SetClockMode selects the thread-clock representation. Must be called
// before the first event.
func (ts *Threads) SetClockMode(m ClockMode) {
	ts.mode = m
	if m == ClockCompact && ts.arena == nil {
		ts.arena = vc.NewArena()
	}
}

// Mode returns the active clock mode.
func (ts *Threads) Mode() ClockMode { return ts.mode }

// growTask extends the per-thread task/demotion tables to cover t.
func (ts *Threads) growTask(t vc.TID) {
	for int(t) >= len(ts.tasks) {
		ts.tasks = append(ts.tasks, nil)
		ts.demoted = append(ts.demoted, false)
		ts.retired = append(ts.retired, false)
	}
}

// task returns thread t's compact clock, creating it on first sight (the
// compact analogue of ensure, starting at epoch 1). It returns nil in
// general mode and for demoted threads.
func (ts *Threads) task(t vc.TID) *vc.Task {
	if ts.mode != ClockCompact {
		return nil
	}
	ts.growTask(t)
	if ts.tasks[t] == nil && !ts.demoted[t] && !ts.retired[t] {
		ts.tasks[t] = ts.arena.NewTask(t, nil)
		ts.epochs++
	}
	return ts.tasks[t]
}

// freshThread reports whether t has no clock state yet in any
// representation (so a fork can hand it a snapshot base directly).
func (ts *Threads) freshThread(t vc.TID) bool {
	if int(t) < len(ts.tasks) && ts.tasks[t] != nil {
		return false
	}
	if int(t) < len(ts.demoted) && (ts.demoted[t] || ts.retired[t]) {
		return false
	}
	return int(t) >= len(ts.clocks) || ts.clocks[t] == nil
}

// View returns thread t's clock for happens-before comparisons: the
// compact task while structured, the general vector clock otherwise.
func (ts *Threads) View(t vc.TID) vc.View {
	if k := ts.task(t); k != nil {
		return k
	}
	return ts.ensure(t)
}

// demote moves thread t from the compact to the general representation
// (one-way) and returns its general clock. In general mode, and for
// already-demoted threads, it is just ensure.
func (ts *Threads) demote(t vc.TID, r DemoteReason) *vc.VC {
	k := ts.task(t)
	if k == nil {
		tc := ts.ensure(t)
		ts.noteGeneralPeak()
		return tc
	}
	for int(t) >= len(ts.clocks) {
		ts.clocks = append(ts.clocks, nil)
	}
	cvc := ts.clocks[t]
	if cvc == nil {
		// The thread's first epoch was counted when the task was created,
		// so build the clock directly rather than through ensure.
		cvc = ts.pool.Get(int(t) + 1)
		ts.clocks[t] = cvc
	}
	k.MaterializeInto(cvc)
	ts.arena.FreeTask(k)
	ts.tasks[t] = nil
	ts.demoted[t] = true
	ts.demotions[r]++
	if ts.OnDemote != nil {
		ts.OnDemote(r)
	}
	ts.noteGeneralPeak()
	return cvc
}

// publishVal snapshots t's time for a release-style edge and advances t to
// a new epoch, in whichever representation t currently uses.
func (ts *Threads) publishVal(t vc.TID) clockVal {
	if k := ts.task(t); k != nil {
		s := k.Publish()
		ts.epochs++
		return clockVal{s: s, tid: t}
	}
	tc := ts.ensure(t)
	cv := clockVal{v: tc.CloneIn(ts.pool), tid: t}
	tc.Inc(t)
	ts.epochs++
	ts.noteGeneralPeak()
	return cv
}

// absorbVal joins a published time into t's clock (the acquire side).
// A structured thread absorbing a general publication demotes first: its
// peer has left the series–parallel regime.
func (ts *Threads) absorbVal(t vc.TID, cv clockVal) {
	if k := ts.task(t); k != nil {
		if cv.s != nil {
			k.Absorb(cv.s)
			return
		}
		ts.demote(t, DemotePeer).Join(cv.v)
		return
	}
	tc := ts.ensure(t)
	if cv.s != nil {
		vc.SnapJoinInto(ts.arena, cv.s, tc)
		ts.noteGeneralPeak()
		return
	}
	tc.Join(cv.v)
	ts.noteGeneralPeak()
}

// releaseVal returns a popped publication's storage to its arena or pool.
func (ts *Threads) releaseVal(cv clockVal) {
	if cv.s != nil {
		ts.arena.Release(cv.s)
	} else if cv.v != nil {
		cv.v.Release()
	}
}

// chanFor returns the clock state of channel ch, creating it on first use
// (channel creation itself is not an event; the capacity rides on each op).
func (ts *Threads) chanFor(ch event.ChanID, capacity int) *chanClock {
	c := ts.chans[ch]
	if c == nil {
		c = &chanClock{capacity: capacity}
		ts.chans[ch] = c
	}
	return c
}

// ChanSend applies the k-th send on ch: absorb the slot-reuse back edge
// (receive k−C happens before send k, for buffered channels past their
// capacity), then publish for the matching receive.
func (ts *Threads) ChanSend(t vc.TID, ch event.ChanID, capacity int) {
	c := ts.chanFor(ch, capacity)
	c.sends++
	if c.capacity > 0 && c.sends > uint64(c.capacity) {
		if cv, ok := c.recvq.pop(); ok {
			ts.absorbVal(t, cv)
			ts.releaseVal(cv)
		}
	}
	c.sendq.push(ts.publishVal(t))
}

// ChanRecv applies the k-th receive on ch: absorb the k-th send's
// publication, then publish for the back edge (slot reuse or ack).
func (ts *Threads) ChanRecv(t vc.TID, ch event.ChanID, capacity int) {
	c := ts.chanFor(ch, capacity)
	c.recvs++
	if cv, ok := c.sendq.pop(); ok {
		ts.absorbVal(t, cv)
		ts.releaseVal(cv)
	}
	c.recvq.push(ts.publishVal(t))
}

// ChanAck applies the unbuffered rendezvous back edge: the sender absorbs
// the matching receiver's publication. No new epoch (it is an acquire).
func (ts *Threads) ChanAck(t vc.TID, ch event.ChanID, capacity int) {
	c := ts.chanFor(ch, capacity)
	if cv, ok := c.recvq.pop(); ok {
		ts.absorbVal(t, cv)
		ts.releaseVal(cv)
	}
}

// wgFor returns the clock state of WaitGroup wg.
func (ts *Threads) wgFor(wg event.WGID) *wgClock {
	w := ts.wgs[wg]
	if w == nil {
		w = &wgClock{}
		ts.wgs[wg] = w
	}
	return w
}

// WGDone publishes t's time into the group, replacing t's previous
// publication (dominated by the new one).
func (ts *Threads) WGDone(t vc.TID, wg event.WGID) {
	w := ts.wgFor(wg)
	cv := ts.publishVal(t)
	for i := range w.done {
		if w.done[i].tid == t {
			ts.releaseVal(w.done[i])
			w.done[i] = cv
			return
		}
	}
	w.done = append(w.done, cv)
}

// WGWait absorbs every Done publication of the group. Entries persist (a
// group may be reused for further rounds); the absorb side is dominance-
// pruned, so repeated waits over unchanged entries are O(1) each.
func (ts *Threads) WGWait(t vc.TID, wg event.WGID) {
	w := ts.wgFor(wg)
	for _, cv := range w.done {
		ts.absorbVal(t, cv)
	}
}

// StructuredThreads returns how many threads use (or, for joined-and-
// retired threads, finished their run on) the compact representation.
func (ts *Threads) StructuredThreads() int {
	n := ts.retiredTasks
	for _, k := range ts.tasks {
		if k != nil {
			n++
		}
	}
	return n
}

// Demotions returns the total number of demotions and the per-reason
// breakdown.
func (ts *Threads) Demotions() (total uint64, byReason [NumDemoteReasons]uint64) {
	for _, n := range ts.demotions {
		total += n
	}
	return total, ts.demotions
}

// CompactClockBytes returns the live and peak bytes of compact clock state
// (tasks, snapshots, and queued snapshot publications).
func (ts *Threads) CompactClockBytes() (live, peak int64) {
	if ts.arena == nil {
		return 0, 0
	}
	return ts.arena.LiveBytes(), ts.arena.PeakBytes()
}

// noteGeneralPeak records the current general-representation footprint in
// the high-water mark. Called at the sync operations that grow general
// clocks or queue publications; access-path code never recomputes it.
func (ts *Threads) noteGeneralPeak() {
	if n := ts.GeneralClockBytes(); n > ts.generalPeak {
		ts.generalPeak = n
	}
}

// GeneralClockPeakBytes returns the high-water mark of GeneralClockBytes,
// the peak-to-peak counterpart of CompactClockBytes' second return.
func (ts *Threads) GeneralClockPeakBytes() int64 {
	if n := ts.GeneralClockBytes(); n > ts.generalPeak {
		ts.generalPeak = n
	}
	return ts.generalPeak
}

// GeneralClockBytes returns the accounting size of all general-representation
// thread clocks plus queued vector-clock publications (channel queues and
// WaitGroup entries). Lock, reader and barrier clocks are reported
// separately by LockClockBytes.
func (ts *Threads) GeneralClockBytes() int64 {
	var n int64
	for _, c := range ts.clocks {
		if c != nil {
			n += int64(c.Bytes()) + 16
		}
	}
	val := func(cv clockVal) int64 {
		if cv.v != nil {
			return int64(cv.v.Bytes()) + 16
		}
		return 0
	}
	for _, c := range ts.chans {
		for i := c.sendq.head; i < len(c.sendq.vals); i++ {
			n += val(c.sendq.vals[i])
		}
		for i := c.recvq.head; i < len(c.recvq.vals); i++ {
			n += val(c.recvq.vals[i])
		}
	}
	for _, w := range ts.wgs {
		for _, cv := range w.done {
			n += val(cv)
		}
	}
	return n
}
