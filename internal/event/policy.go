// Adaptive batch sizing: the transport producer (pipeline router, remote
// client) picks its flush threshold from observed back-pressure instead
// of a fixed constant. Small batches when the consumer is starved — a
// waiting detection worker gets work after ~Min records instead of a full
// batch, cutting delivery latency — and large batches when the consumer
// is behind, amortizing per-batch transport cost (ring slot hand-off,
// frame header + CRC, ack round trip) over more records exactly when
// throughput is what matters.
package event

import (
	"sync"
	"sync/atomic"
	"time"
)

// Batch sizing bounds. MinBatchTarget is small enough that a starved
// consumer waits microseconds for work; the maximum is the fixed batch
// capacity, so adaptive batches always fit a pooled batch without
// reallocation.
const (
	MinBatchTarget     = 64
	DefaultBatchTarget = 512
)

// BackpressureObserver consumes the transport back-pressure signals the
// producers already measure: the consumer-queue occupancy seen at ship
// time and the acknowledgement round trip of the remote path. BatchPolicy
// implements it to size batches; sampling.Controller implements it to
// steer the budgeted sampling rate. The pipeline router, the remote
// client and the cluster members feed every configured observer the same
// observation stream.
type BackpressureObserver interface {
	// ObserveQueue reports the consumer queue's occupancy (queued of
	// capacity) as seen by the producer at ship time.
	ObserveQueue(queued, capacity int)
	// ObserveRTT reports one acknowledgement round trip.
	ObserveRTT(rtt time.Duration)
}

// BatchPolicy adapts a producer's batch flush threshold between
// MinBatchTarget and DefaultBatchSize from two back-pressure signals:
//
//   - ObserveQueue(queued, capacity): the producer's view of the consumer
//     queue at ship time. An empty queue means the consumer drained
//     everything we sent — it is starved, so halve the target for
//     latency. A queue at or past half capacity means the consumer is
//     behind — double the target for throughput.
//   - ObserveRTT(rtt): the remote path's acknowledgement round trip. The
//     policy tracks the fastest RTT seen (the uncongested floor); an RTT
//     beyond 4× the floor means the server is queueing — grow batches; an
//     RTT within 2× of the floor means the pipe is clear — shrink.
//
// Both signals move the target by powers of two, so the trajectory is a
// deterministic function of the observation sequence (unit-tested as
// such). The zero value is ready to use and starts at DefaultBatchTarget.
//
// Target is safe to read concurrently with observations (the remote
// client observes RTTs on its receiver goroutine while the event thread
// reads the target); the Observe methods themselves are serialized
// internally.
type BatchPolicy struct {
	mu     sync.Mutex
	target atomic.Int64
	minRTT time.Duration
}

var _ BackpressureObserver = (*BatchPolicy)(nil)

// Target returns the current flush threshold in records.
func (p *BatchPolicy) Target() int {
	if p == nil {
		return DefaultBatchSize
	}
	if t := p.target.Load(); t != 0 {
		return int(t)
	}
	return DefaultBatchTarget
}

func (p *BatchPolicy) load() int64 {
	if t := p.target.Load(); t != 0 {
		return t
	}
	return DefaultBatchTarget
}

// grow doubles the target toward the batch capacity.
func (p *BatchPolicy) grow() {
	t := p.load() * 2
	if t > DefaultBatchSize {
		t = DefaultBatchSize
	}
	p.target.Store(t)
}

// shrink halves the target toward the latency floor.
func (p *BatchPolicy) shrink() {
	t := p.load() / 2
	if t < MinBatchTarget {
		t = MinBatchTarget
	}
	p.target.Store(t)
}

// ObserveQueue feeds the producer's view of the consumer queue (in
// batches) at ship time.
func (p *BatchPolicy) ObserveQueue(queued, capacity int) {
	if p == nil || capacity <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case queued == 0:
		p.shrink() // consumer starved: favor latency
	case 2*queued >= capacity:
		p.grow() // consumer behind: favor throughput
	}
}

// ObserveRTT feeds one acknowledgement round trip (remote path).
func (p *BatchPolicy) ObserveRTT(rtt time.Duration) {
	if p == nil || rtt <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.minRTT == 0 || rtt < p.minRTT {
		p.minRTT = rtt
	}
	switch {
	case rtt > 4*p.minRTT:
		p.grow() // acks queueing behind detection: favor throughput
	case rtt <= 2*p.minRTT:
		p.shrink() // pipe clear: favor latency
	}
}
