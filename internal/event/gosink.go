// Go-native synchronization events: channel send/receive and WaitGroup
// operations. These extend the pthread-shaped Sink vocabulary with the
// primitives Go programs actually synchronize through, so the
// structure-aware clock layer can see fork–join and handoff edges directly
// instead of through mutex over-approximations.
//
// To avoid breaking the many existing Sink implementations, the Go surface
// is the *optional* GoSink interface plus package-level Dispatch helpers:
// a sink that implements GoSink receives the native event; any other sink
// receives a sound lowering onto synthetic per-object locks (a channel
// operation behaves like acquire+release of the channel's lock, likewise
// WaitGroup.Done/Wait). The lowering over-synchronizes — it orders
// operations the Go memory model leaves concurrent — so it can mask races
// but never invent them, which is the safe direction for a fallback.
package event

import "repro/internal/vc"

// ChanID identifies a channel in the analyzed program.
type ChanID int32

// WGID identifies a WaitGroup in the analyzed program.
type WGID int32

// Synthetic lock-id ranges for the lowering fallback. Real locks are small
// dense ids from sim.NewLock, so the high ranges cannot collide.
const (
	chanLockBase LockID = 1 << 30
	wgLockBase   LockID = 1<<30 | 1<<29
)

// ChanLock returns the synthetic lock the lowering uses for channel ch.
func ChanLock(ch ChanID) LockID { return chanLockBase + LockID(ch) }

// WGLock returns the synthetic lock the lowering uses for WaitGroup wg.
func WGLock(wg WGID) LockID { return wgLockBase + LockID(wg) }

// GoSink is the optional extension of Sink for Go-native synchronization.
// The Go memory model edges it encodes:
//
//   - The k-th send on a channel happens before the k-th receive completes
//     (ChanSend publishes, ChanRecv absorbs).
//   - For a channel with capacity C, the k-th receive happens before the
//     (k+C)-th send completes (ChanSend absorbs the matching receive's
//     publication when it reuses the slot).
//   - For an unbuffered channel, the receive happens before the send
//     completes; ChanAck is emitted for the *sender* after the matching
//     receive and absorbs the receiver's publication. It is only emitted
//     when cap == 0.
//   - The n-th WaitGroup.Done happens before the Wait that it releases
//     (WGDone publishes, WGWait absorbs all publications). WGAdd carries
//     the counter delta but creates no edge.
type GoSink interface {
	Sink

	// ChanSend reports that tid completed a send on ch (capacity cap).
	ChanSend(tid vc.TID, ch ChanID, cap int)
	// ChanRecv reports that tid completed a receive on ch.
	ChanRecv(tid vc.TID, ch ChanID, cap int)
	// ChanAck reports the unbuffered-rendezvous back edge: the sender tid
	// observes the matching receiver's publication.
	ChanAck(tid vc.TID, ch ChanID, cap int)

	// WGAdd reports WaitGroup.Add(delta) by tid.
	WGAdd(tid vc.TID, wg WGID, delta int)
	// WGDone reports WaitGroup.Done by tid.
	WGDone(tid vc.TID, wg WGID)
	// WGWait reports that tid's Wait returned (emitted after the releasing
	// Done, so it follows every publication it must absorb).
	WGWait(tid vc.TID, wg WGID)
}

// DispatchChanSend delivers a channel send to s, lowering to the channel's
// synthetic lock when s does not implement GoSink.
func DispatchChanSend(s Sink, tid vc.TID, ch ChanID, cap int) {
	if gs, ok := s.(GoSink); ok {
		gs.ChanSend(tid, ch, cap)
		return
	}
	l := ChanLock(ch)
	s.Acquire(tid, l)
	s.Release(tid, l)
}

// DispatchChanRecv delivers a channel receive, with the same lowering.
func DispatchChanRecv(s Sink, tid vc.TID, ch ChanID, cap int) {
	if gs, ok := s.(GoSink); ok {
		gs.ChanRecv(tid, ch, cap)
		return
	}
	l := ChanLock(ch)
	s.Acquire(tid, l)
	s.Release(tid, l)
}

// DispatchChanAck delivers the unbuffered back edge. The lowering needs no
// extra operation: the lock round-trips of send and receive already order
// the rendezvous both ways.
func DispatchChanAck(s Sink, tid vc.TID, ch ChanID, cap int) {
	if gs, ok := s.(GoSink); ok {
		gs.ChanAck(tid, ch, cap)
	}
}

// DispatchWGAdd delivers WaitGroup.Add. No edge, so no lowering needed.
func DispatchWGAdd(s Sink, tid vc.TID, wg WGID, delta int) {
	if gs, ok := s.(GoSink); ok {
		gs.WGAdd(tid, wg, delta)
	}
}

// DispatchWGDone delivers WaitGroup.Done, lowering to the group's lock.
func DispatchWGDone(s Sink, tid vc.TID, wg WGID) {
	if gs, ok := s.(GoSink); ok {
		gs.WGDone(tid, wg)
		return
	}
	l := WGLock(wg)
	s.Acquire(tid, l)
	s.Release(tid, l)
}

// DispatchWGWait delivers WaitGroup.Wait, lowering to the group's lock.
func DispatchWGWait(s Sink, tid vc.TID, wg WGID) {
	if gs, ok := s.(GoSink); ok {
		gs.WGWait(tid, wg)
		return
	}
	l := WGLock(wg)
	s.Acquire(tid, l)
	s.Release(tid, l)
}

// Nop ignores the Go-native events too.

func (Nop) ChanSend(vc.TID, ChanID, int) {}
func (Nop) ChanRecv(vc.TID, ChanID, int) {}
func (Nop) ChanAck(vc.TID, ChanID, int)  {}
func (Nop) WGAdd(vc.TID, WGID, int)      {}
func (Nop) WGDone(vc.TID, WGID)          {}
func (Nop) WGWait(vc.TID, WGID)          {}

// Counter tallies the Go-native events.

func (c *Counter) ChanSend(vc.TID, ChanID, int) { c.ChanSends++ }
func (c *Counter) ChanRecv(vc.TID, ChanID, int) { c.ChanRecvs++ }
func (c *Counter) ChanAck(vc.TID, ChanID, int)  { c.ChanAcks++ }
func (c *Counter) WGAdd(vc.TID, WGID, int)      { c.WGAdds++ }
func (c *Counter) WGDone(vc.TID, WGID)          { c.WGDones++ }
func (c *Counter) WGWait(vc.TID, WGID)          { c.WGWaits++ }

// Tee forwards through the dispatch helpers so each member gets the native
// event or its lowering according to what it implements.

func (t Tee) ChanSend(tid vc.TID, ch ChanID, cap int) {
	for _, s := range t {
		DispatchChanSend(s, tid, ch, cap)
	}
}
func (t Tee) ChanRecv(tid vc.TID, ch ChanID, cap int) {
	for _, s := range t {
		DispatchChanRecv(s, tid, ch, cap)
	}
}
func (t Tee) ChanAck(tid vc.TID, ch ChanID, cap int) {
	for _, s := range t {
		DispatchChanAck(s, tid, ch, cap)
	}
}
func (t Tee) WGAdd(tid vc.TID, wg WGID, delta int) {
	for _, s := range t {
		DispatchWGAdd(s, tid, wg, delta)
	}
}
func (t Tee) WGDone(tid vc.TID, wg WGID) {
	for _, s := range t {
		DispatchWGDone(s, tid, wg)
	}
}
func (t Tee) WGWait(tid vc.TID, wg WGID) {
	for _, s := range t {
		DispatchWGWait(s, tid, wg)
	}
}

// Encoder records the Go-native events; see Rec for the field conventions.

func (e *Encoder) ChanSend(tid vc.TID, ch ChanID, cap int) {
	e.push(Rec{Op: OpChanSend, Tid: tid, Aux: uint64(uint32(ch)), Size: uint32(cap)})
}
func (e *Encoder) ChanRecv(tid vc.TID, ch ChanID, cap int) {
	e.push(Rec{Op: OpChanRecv, Tid: tid, Aux: uint64(uint32(ch)), Size: uint32(cap)})
}
func (e *Encoder) ChanAck(tid vc.TID, ch ChanID, cap int) {
	e.push(Rec{Op: OpChanAck, Tid: tid, Aux: uint64(uint32(ch)), Size: uint32(cap)})
}
func (e *Encoder) WGAdd(tid vc.TID, wg WGID, delta int) {
	e.push(Rec{Op: OpWGAdd, Tid: tid, Aux: uint64(uint32(wg)), Size: uint32(delta)})
}
func (e *Encoder) WGDone(tid vc.TID, wg WGID) {
	e.push(Rec{Op: OpWGDone, Tid: tid, Aux: uint64(uint32(wg))})
}
func (e *Encoder) WGWait(tid vc.TID, wg WGID) {
	e.push(Rec{Op: OpWGWait, Tid: tid, Aux: uint64(uint32(wg))})
}
