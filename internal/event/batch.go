// Batch transport: a fixed-size, allocation-recycled encoding of the
// instrumentation event stream. The sharded detection pipeline
// (internal/pipeline) encodes events into Batches on the execution thread
// and ships them to detection workers over channels; sync.Pool reuse keeps
// the steady-state transport allocation-free. The encoding is also usable
// on its own (Batch.Apply replays a batch into any Sink).
package event

import (
	"sync"

	"repro/internal/vc"
)

// Op identifies the kind of one encoded instrumentation event.
type Op uint8

// Operation codes, one per Sink method.
const (
	OpRead Op = iota
	OpWrite
	OpAcquire
	OpRelease
	OpAcquireShared
	OpReleaseShared
	OpFork
	OpJoin
	OpBarrierArrive
	OpBarrierDepart
	OpMalloc
	OpFree
	OpChanSend
	OpChanRecv
	OpChanAck
	OpWGAdd
	OpWGDone
	OpWGWait
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAcquire:
		return "acquire"
	case OpRelease:
		return "release"
	case OpAcquireShared:
		return "acquire-shared"
	case OpReleaseShared:
		return "release-shared"
	case OpFork:
		return "fork"
	case OpJoin:
		return "join"
	case OpBarrierArrive:
		return "barrier-arrive"
	case OpBarrierDepart:
		return "barrier-depart"
	case OpMalloc:
		return "malloc"
	case OpFree:
		return "free"
	case OpChanSend:
		return "chan-send"
	case OpChanRecv:
		return "chan-recv"
	case OpChanAck:
		return "chan-ack"
	case OpWGAdd:
		return "wg-add"
	case OpWGDone:
		return "wg-done"
	case OpWGWait:
		return "wg-wait"
	default:
		return "?"
	}
}

// Rec is one fixed-size encoded event. Field use by Op:
//
//	OpRead/OpWrite:             Tid, Addr, Size, PC
//	OpAcquire(.Shared)/OpRelease(.Shared): Tid, Aux = LockID
//	OpFork/OpJoin:              Tid = parent, Aux = child TID
//	OpBarrierArrive/Depart:     Tid, Aux = BarrierID
//	OpMalloc/OpFree:            Tid, Addr, Aux = byte size
//	OpChanSend/Recv/Ack:        Tid, Aux = ChanID, Size = channel capacity
//	OpWGAdd:                    Tid, Aux = WGID, Size = delta
//	OpWGDone/OpWGWait:          Tid, Aux = WGID
//
// Seq is the event's global sequence number in the original stream; the
// pipeline uses it to merge per-worker race reports deterministically and
// to prove that every worker observed the same happens-before order.
type Rec struct {
	Addr uint64
	Aux  uint64
	Seq  uint64
	Tid  vc.TID
	PC   PC
	Size uint32
	Op   Op
}

// DefaultBatchSize is the number of records one Batch holds before the
// encoder ships it. 2048 records ≈ 80 KiB: large enough to amortize channel
// transfer to well under a nanosecond per event, small enough to keep
// worker latency and pool footprint bounded.
const DefaultBatchSize = 2048

// Batch is a fixed-capacity run of encoded events.
type Batch struct {
	Recs []Rec
	// Trace and Span carry the distributed-trace context of the client
	// batch these records came from (0 = unsampled/untraced). They ride the
	// batch through queues so a pipeline worker can parent its apply span
	// under the router's dispatch span; they never affect detection.
	Trace uint64
	Span  uint64
}

var batchPool = sync.Pool{
	New: func() any { return &Batch{Recs: make([]Rec, 0, DefaultBatchSize)} },
}

// GetBatch returns an empty batch from the reuse pool.
func GetBatch() *Batch {
	batchGets.Add(1)
	b := batchPool.Get().(*Batch)
	b.Recs = b.Recs[:0]
	b.Trace, b.Span = 0, 0
	return b
}

// PutBatch returns a batch to the reuse pool. The caller must not touch the
// batch afterwards.
func PutBatch(b *Batch) {
	batchPuts.Add(1)
	batchPool.Put(b)
}

// Full reports whether the batch reached its transport capacity.
func (b *Batch) Full() bool { return len(b.Recs) >= DefaultBatchSize }

// Append adds one record.
func (b *Batch) Append(r Rec) { b.Recs = append(b.Recs, r) }

// Apply replays the batch into s in record order and returns the sequence
// number of the last record applied (0 when the batch is empty).
func (b *Batch) Apply(s Sink) uint64 {
	var seq uint64
	for i := range b.Recs {
		r := &b.Recs[i]
		ApplyRec(s, r)
		seq = r.Seq
	}
	return seq
}

// ApplyRec dispatches one decoded record to the matching Sink method.
func ApplyRec(s Sink, r *Rec) {
	switch r.Op {
	case OpRead:
		s.Read(r.Tid, r.Addr, r.Size, r.PC)
	case OpWrite:
		s.Write(r.Tid, r.Addr, r.Size, r.PC)
	case OpAcquire:
		s.Acquire(r.Tid, LockID(r.Aux))
	case OpRelease:
		s.Release(r.Tid, LockID(r.Aux))
	case OpAcquireShared:
		s.AcquireShared(r.Tid, LockID(r.Aux))
	case OpReleaseShared:
		s.ReleaseShared(r.Tid, LockID(r.Aux))
	case OpFork:
		s.Fork(r.Tid, vc.TID(r.Aux))
	case OpJoin:
		s.Join(r.Tid, vc.TID(r.Aux))
	case OpBarrierArrive:
		s.BarrierArrive(r.Tid, BarrierID(r.Aux))
	case OpBarrierDepart:
		s.BarrierDepart(r.Tid, BarrierID(r.Aux))
	case OpMalloc:
		s.Malloc(r.Tid, r.Addr, r.Aux)
	case OpFree:
		s.Free(r.Tid, r.Addr, r.Aux)
	case OpChanSend:
		DispatchChanSend(s, r.Tid, ChanID(r.Aux), int(r.Size))
	case OpChanRecv:
		DispatchChanRecv(s, r.Tid, ChanID(r.Aux), int(r.Size))
	case OpChanAck:
		DispatchChanAck(s, r.Tid, ChanID(r.Aux), int(r.Size))
	case OpWGAdd:
		DispatchWGAdd(s, r.Tid, WGID(r.Aux), int(r.Size))
	case OpWGDone:
		DispatchWGDone(s, r.Tid, WGID(r.Aux))
	case OpWGWait:
		DispatchWGWait(s, r.Tid, WGID(r.Aux))
	}
}

// Encode translates one Sink call into a Rec (the inverse of ApplyRec for
// access events; sync events use the Aux field). It exists so tests and
// tools can build batches without duplicating the field conventions.
type Encoder struct {
	// Flush receives each full batch; the Encoder then starts a fresh one
	// from the pool. Must be non-nil.
	Flush func(*Batch)

	// Target, when positive, is the flush threshold in records. It is
	// clamped to [1, DefaultBatchSize] so an adaptive policy can never
	// outgrow the pooled batch capacity; zero means the fixed
	// DefaultBatchSize. The Flush callback is the natural place to update
	// it (e.g. from BatchPolicy.Target) — the Encoder reads it on the
	// event thread only.
	Target int

	cur *Batch
	seq uint64
}

// threshold returns the effective flush threshold.
func (e *Encoder) threshold() int {
	t := e.Target
	if t <= 0 || t > DefaultBatchSize {
		return DefaultBatchSize
	}
	return t
}

// push appends a record, stamping the next sequence number, and flushes
// when the batch reaches the flush threshold.
func (e *Encoder) push(r Rec) {
	if e.cur == nil {
		e.cur = GetBatch()
	}
	e.seq++
	r.Seq = e.seq
	e.cur.Append(r)
	if len(e.cur.Recs) >= e.threshold() {
		e.Flush(e.cur)
		e.cur = nil
	}
}

// Close flushes any partial batch.
func (e *Encoder) Close() {
	if e.cur != nil && len(e.cur.Recs) > 0 {
		e.Flush(e.cur)
	}
	e.cur = nil
}

// Seq returns the number of events encoded so far.
func (e *Encoder) Seq() uint64 { return e.seq }

// Sink implementation: every event becomes one record.

func (e *Encoder) Read(tid vc.TID, addr uint64, size uint32, pc PC) {
	e.push(Rec{Op: OpRead, Tid: tid, Addr: addr, Size: size, PC: pc})
}
func (e *Encoder) Write(tid vc.TID, addr uint64, size uint32, pc PC) {
	e.push(Rec{Op: OpWrite, Tid: tid, Addr: addr, Size: size, PC: pc})
}
func (e *Encoder) Acquire(tid vc.TID, l LockID) {
	e.push(Rec{Op: OpAcquire, Tid: tid, Aux: uint64(l)})
}
func (e *Encoder) Release(tid vc.TID, l LockID) {
	e.push(Rec{Op: OpRelease, Tid: tid, Aux: uint64(l)})
}
func (e *Encoder) AcquireShared(tid vc.TID, l LockID) {
	e.push(Rec{Op: OpAcquireShared, Tid: tid, Aux: uint64(l)})
}
func (e *Encoder) ReleaseShared(tid vc.TID, l LockID) {
	e.push(Rec{Op: OpReleaseShared, Tid: tid, Aux: uint64(l)})
}
func (e *Encoder) Fork(parent, child vc.TID) {
	e.push(Rec{Op: OpFork, Tid: parent, Aux: uint64(child)})
}
func (e *Encoder) Join(parent, child vc.TID) {
	e.push(Rec{Op: OpJoin, Tid: parent, Aux: uint64(child)})
}
func (e *Encoder) BarrierArrive(tid vc.TID, b BarrierID) {
	e.push(Rec{Op: OpBarrierArrive, Tid: tid, Aux: uint64(b)})
}
func (e *Encoder) BarrierDepart(tid vc.TID, b BarrierID) {
	e.push(Rec{Op: OpBarrierDepart, Tid: tid, Aux: uint64(b)})
}
func (e *Encoder) Malloc(tid vc.TID, addr, size uint64) {
	e.push(Rec{Op: OpMalloc, Tid: tid, Addr: addr, Aux: size})
}
func (e *Encoder) Free(tid vc.TID, addr, size uint64) {
	e.push(Rec{Op: OpFree, Tid: tid, Addr: addr, Aux: size})
}
