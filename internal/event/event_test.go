package event

import "testing"

func TestPCModulePacking(t *testing.T) {
	cases := []struct {
		m    Module
		site uint32
	}{
		{ModuleApp, 0}, {ModuleApp, 12345}, {ModuleLibc, 1},
		{ModuleLd, 0xffffff}, {ModulePthread, 77},
	}
	for _, c := range cases {
		pc := MakePC(c.m, c.site)
		if pc.Module() != c.m {
			t.Errorf("MakePC(%d,%d).Module() = %d", c.m, c.site, pc.Module())
		}
		if got := uint32(pc) & 0xffffff; got != c.site&0xffffff {
			t.Errorf("site bits lost: %d vs %d", got, c.site)
		}
	}
}

func TestSiteOverflowTruncates(t *testing.T) {
	pc := MakePC(ModuleApp, 0x1ffffff) // 25 bits: must not leak into module
	if pc.Module() != ModuleApp {
		t.Errorf("overflowed site corrupted the module: %d", pc.Module())
	}
}

func TestCounterTallies(t *testing.T) {
	c := &Counter{}
	c.Read(0, 0x10, 4, 0)
	c.Read(1, 0x20, 8, 0)
	c.Write(0, 0x10, 2, 0)
	c.Acquire(0, 1)
	c.Release(0, 1)
	c.Fork(0, 1)
	c.Join(0, 1)
	c.BarrierArrive(0, 1)
	c.BarrierDepart(0, 1)
	c.Malloc(0, 0x100, 64)
	c.Free(0, 0x100, 64)
	if c.Reads != 2 || c.Writes != 1 || c.ReadBytes != 12 || c.WriteBytes != 2 {
		t.Errorf("access tallies: %+v", c)
	}
	if c.Accesses() != 3 {
		t.Errorf("accesses = %d", c.Accesses())
	}
	if c.Acquires != 1 || c.Releases != 1 || c.Forks != 1 || c.Joins != 1 ||
		c.Barriers != 1 || c.Mallocs != 1 || c.Frees != 1 || c.MallocBytes != 64 {
		t.Errorf("sync tallies: %+v", c)
	}
	if c.SizeHistogram[4] != 1 || c.SizeHistogram[8] != 1 || c.SizeHistogram[2] != 1 {
		t.Errorf("histogram: %v", c.SizeHistogram)
	}
	c.Read(0, 0, 100, 0) // oversized accesses bucket at 0
	if c.SizeHistogram[0] != 1 {
		t.Errorf("oversize bucket: %v", c.SizeHistogram)
	}
}

func TestNopIsSilent(t *testing.T) {
	var n Nop
	// Must simply not panic; Nop has no observable state.
	n.Read(0, 0, 4, 0)
	n.Write(0, 0, 4, 0)
	n.Acquire(0, 0)
	n.Release(0, 0)
	n.Fork(0, 1)
	n.Join(0, 1)
	n.BarrierArrive(0, 0)
	n.BarrierDepart(0, 0)
	n.Malloc(0, 0, 0)
	n.Free(0, 0, 0)
}

func TestTeeDeliversToAllInOrder(t *testing.T) {
	a, b := &Counter{}, &Counter{}
	tee := Tee{a, b}
	tee.Read(0, 0x10, 4, 0)
	tee.Write(0, 0x10, 4, 0)
	tee.Acquire(0, 1)
	tee.Release(0, 1)
	tee.Fork(0, 1)
	tee.Join(0, 1)
	tee.BarrierArrive(0, 2)
	tee.BarrierDepart(0, 2)
	tee.Malloc(0, 1, 2)
	tee.Free(0, 1, 2)
	for i, c := range []*Counter{a, b} {
		if c.Accesses() != 2 || c.Acquires != 1 || c.Barriers != 1 || c.Mallocs != 1 {
			t.Errorf("sink %d under-delivered: %+v", i, c)
		}
	}
}
