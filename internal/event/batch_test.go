package event

import (
	"fmt"
	"testing"

	"repro/internal/vc"
)

// drive sends one of every event through s.
func drive(s Sink) {
	s.Read(1, 0x100, 4, MakePC(ModuleApp, 7))
	s.Write(2, 0x108, 8, MakePC(ModuleLibc, 9))
	s.Acquire(1, 3)
	s.Release(1, 3)
	s.AcquireShared(2, 4)
	s.ReleaseShared(2, 4)
	s.Fork(0, 5)
	s.Join(0, 5)
	s.BarrierArrive(1, 2)
	s.BarrierDepart(1, 2)
	s.Malloc(2, 0x2000, 64)
	s.Free(2, 0x2000, 64)
}

// TestEncoderRoundTrip checks that encoding an event stream into batches and
// replaying the batches reproduces the stream exactly (observed through the
// Counter sink).
func TestEncoderRoundTrip(t *testing.T) {
	var direct Counter
	drive(&direct)

	var replayed Counter
	var batches []*Batch
	enc := &Encoder{Flush: func(b *Batch) { batches = append(batches, b) }}
	drive(enc)
	enc.Close()

	var total int
	for _, b := range batches {
		total += len(b.Recs)
		b.Apply(&replayed)
	}
	if total != 12 {
		t.Fatalf("encoded %d records, want 12", total)
	}
	if direct != replayed {
		t.Fatalf("replayed counters differ:\n direct  %+v\n replayed %+v", direct, replayed)
	}
	if enc.Seq() != 12 {
		t.Fatalf("Seq() = %d, want 12", enc.Seq())
	}
}

// TestEncoderSequenceNumbers checks that records carry strictly increasing
// global sequence numbers across batch boundaries.
func TestEncoderSequenceNumbers(t *testing.T) {
	var recs []Rec
	enc := &Encoder{Flush: func(b *Batch) {
		recs = append(recs, b.Recs...)
		PutBatch(b)
	}}
	n := DefaultBatchSize*2 + 17 // force several flushes
	for i := 0; i < n; i++ {
		enc.Read(0, uint64(i), 1, 0)
	}
	enc.Close()
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("rec %d has seq %d, want %d", i, r.Seq, i+1)
		}
		if r.Addr != uint64(i) {
			t.Fatalf("rec %d has addr %d, want %d (pool reuse corrupted a batch?)", i, r.Addr, i)
		}
	}
}

// TestBatchPoolReuse checks that a recycled batch starts empty and at full
// capacity.
func TestBatchPoolReuse(t *testing.T) {
	b := GetBatch()
	for i := 0; i < DefaultBatchSize; i++ {
		b.Append(Rec{Op: OpRead, Addr: uint64(i)})
	}
	if !b.Full() {
		t.Fatal("batch at capacity should report Full")
	}
	PutBatch(b)
	b2 := GetBatch()
	if len(b2.Recs) != 0 {
		t.Fatalf("recycled batch has %d records, want 0", len(b2.Recs))
	}
	if b2.Full() {
		t.Fatal("recycled batch reports Full")
	}
}

// TestApplyRecFieldConventions spot-checks the Op field conventions through
// a recording sink.
func TestApplyRecFieldConventions(t *testing.T) {
	var got []string
	s := recSink{log: &got}
	for _, r := range []Rec{
		{Op: OpFork, Tid: 3, Aux: 9},
		{Op: OpJoin, Tid: 3, Aux: 9},
		{Op: OpFree, Tid: 1, Addr: 0x40, Aux: 16},
	} {
		r := r
		ApplyRec(s, &r)
	}
	want := []string{"fork 3->9", "join 3<-9", "free 1 0x40+16"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %q, want %q", i, got[i], want[i])
		}
	}
}

type recSink struct {
	Nop
	log *[]string
}

func (r recSink) Fork(p, c vc.TID) { *r.log = append(*r.log, fmt.Sprintf("fork %d->%d", p, c)) }
func (r recSink) Join(p, c vc.TID) { *r.log = append(*r.log, fmt.Sprintf("join %d<-%d", p, c)) }
func (r recSink) Free(tid vc.TID, addr, size uint64) {
	*r.log = append(*r.log, fmt.Sprintf("free %d %#x+%d", tid, addr, size))
}
