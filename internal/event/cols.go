// Columnar batch transport: a structure-of-arrays view of one event
// batch. The wire codec's v2 payloads are already columnar on the wire
// (internal/wire AppendColumnar); Cols lets a decoded batch stay columnar
// all the way to the detector — the server routes over the addr column
// and ships column segments through the pipeline ring without ever
// materializing per-record Rec structs. Column-major apply also exposes
// run structure (consecutive identical accesses) that the detector's
// batch apply collapses into one shadow lookup plus a repeat count.
package event

import (
	"sync"
	"sync/atomic"

	"repro/internal/vc"
)

// Cols is a structure-of-arrays batch: column i across all slices is the
// record Rec(i). All columns always have equal length. Field use per Op
// matches Rec exactly.
type Cols struct {
	Ops   []Op
	Tids  []vc.TID
	Sizes []uint32
	PCs   []PC
	Addrs []uint64
	Auxs  []uint64
	Seqs  []uint64

	// Trace and Span carry the distributed-trace context of the client
	// batch these records came from (0 = untraced), exactly like
	// Batch.Trace/Span.
	Trace uint64
	Span  uint64
}

// Len returns the number of records in the batch.
func (c *Cols) Len() int { return len(c.Ops) }

// Full reports whether the batch reached the transport capacity.
func (c *Cols) Full() bool { return len(c.Ops) >= DefaultBatchSize }

// Reset truncates every column to length zero, keeping capacity.
func (c *Cols) Reset() {
	c.Ops = c.Ops[:0]
	c.Tids = c.Tids[:0]
	c.Sizes = c.Sizes[:0]
	c.PCs = c.PCs[:0]
	c.Addrs = c.Addrs[:0]
	c.Auxs = c.Auxs[:0]
	c.Seqs = c.Seqs[:0]
	c.Trace, c.Span = 0, 0
}

// Truncate cuts every column back to n records (error-path rewind for
// decoders that appended a partial batch).
func (c *Cols) Truncate(n int) {
	c.Ops = c.Ops[:n]
	c.Tids = c.Tids[:n]
	c.Sizes = c.Sizes[:n]
	c.PCs = c.PCs[:n]
	c.Addrs = c.Addrs[:n]
	c.Auxs = c.Auxs[:n]
	c.Seqs = c.Seqs[:n]
}

// Append adds one record to every column.
func (c *Cols) Append(r Rec) {
	c.Ops = append(c.Ops, r.Op)
	c.Tids = append(c.Tids, r.Tid)
	c.Sizes = append(c.Sizes, r.Size)
	c.PCs = append(c.PCs, r.PC)
	c.Addrs = append(c.Addrs, r.Addr)
	c.Auxs = append(c.Auxs, r.Aux)
	c.Seqs = append(c.Seqs, r.Seq)
}

// Rec materializes record i (the row-major view of column i).
func (c *Cols) Rec(i int) Rec {
	return Rec{
		Op:   c.Ops[i],
		Tid:  c.Tids[i],
		Size: c.Sizes[i],
		PC:   c.PCs[i],
		Addr: c.Addrs[i],
		Aux:  c.Auxs[i],
		Seq:  c.Seqs[i],
	}
}

// Apply replays the batch into s in record order, using the columnar fast
// path when s provides one, and returns the sequence number of the last
// record applied (0 when the batch is empty).
func (c *Cols) Apply(s Sink) uint64 {
	n := c.Len()
	if n == 0 {
		return 0
	}
	if bs, ok := s.(BatchSink); ok {
		bs.ApplyCols(c)
		return c.Seqs[n-1]
	}
	for i := 0; i < n; i++ {
		r := c.Rec(i)
		ApplyRec(s, &r)
	}
	return c.Seqs[n-1]
}

// BatchSink is the columnar apply seam: a Sink that can consume a whole
// column batch at once (vectorized routing in the pipeline, run-collapsed
// shadow lookups in the detector) instead of one ApplyRec dispatch per
// record. The records must be applied exactly as Cols.Apply's record-major
// fallback would — BatchSink is a performance seam, never a semantic one.
type BatchSink interface {
	ApplyCols(c *Cols)
}

// colsPool recycles Cols like batchPool recycles Batches; gets/puts are
// counted so leak audits can assert decoder error paths return what they
// took (see PoolCounts).
var colsPool = sync.Pool{
	New: func() any {
		return &Cols{
			Ops:   make([]Op, 0, DefaultBatchSize),
			Tids:  make([]vc.TID, 0, DefaultBatchSize),
			Sizes: make([]uint32, 0, DefaultBatchSize),
			PCs:   make([]PC, 0, DefaultBatchSize),
			Addrs: make([]uint64, 0, DefaultBatchSize),
			Auxs:  make([]uint64, 0, DefaultBatchSize),
			Seqs:  make([]uint64, 0, DefaultBatchSize),
		}
	},
}

var (
	batchGets atomic.Uint64
	batchPuts atomic.Uint64
	colsGets  atomic.Uint64
	colsPuts  atomic.Uint64
)

// GetCols returns an empty columnar batch from the reuse pool.
func GetCols() *Cols {
	colsGets.Add(1)
	c := colsPool.Get().(*Cols)
	c.Reset()
	return c
}

// PutCols returns a columnar batch to the reuse pool. The caller must not
// touch it afterwards.
func PutCols(c *Cols) {
	colsPuts.Add(1)
	colsPool.Put(c)
}

// PoolCounts returns the lifetime get/put traffic of the batch and cols
// pools. A code path that takes pooled batches and returns them on every
// exit — including every decode error — keeps gets-puts constant across
// its failures; the leak regression tests pin that.
func PoolCounts() (batchGet, batchPut, colsGet, colsPut uint64) {
	return batchGets.Load(), batchPuts.Load(), colsGets.Load(), colsPuts.Load()
}
