package event

import (
	"sync"
	"testing"
	"time"
)

// TestBatchPolicyQueueTrajectory pins the exact target trajectory for a
// fixed queue-observation sequence: the policy is a deterministic function
// of its inputs, so the whole path is asserted, not just endpoints.
func TestBatchPolicyQueueTrajectory(t *testing.T) {
	var p BatchPolicy
	if got := p.Target(); got != DefaultBatchTarget {
		t.Fatalf("zero value target = %d, want %d", got, DefaultBatchTarget)
	}
	const capacity = 8
	steps := []struct {
		queued int
		want   int
	}{
		{0, 256},                // starved: shrink
		{0, 128},                // starved: shrink
		{0, 64},                 // starved: shrink
		{0, MinBatchTarget},     // clamped at the floor
		{3, MinBatchTarget},     // mid-queue: hold
		{4, 128},                // half full: grow
		{7, 256},                // nearly full: grow
		{8, 512},                // full: grow
		{8, 1024},               // full: grow
		{8, DefaultBatchSize},   // grow
		{100, DefaultBatchSize}, // clamped at batch capacity
		{1, DefaultBatchSize},   // below half: hold
		{0, 1024},               // starved again: shrink
	}
	for i, s := range steps {
		p.ObserveQueue(s.queued, capacity)
		if got := p.Target(); got != s.want {
			t.Fatalf("step %d: ObserveQueue(%d, %d) -> target %d, want %d",
				i, s.queued, capacity, got, s.want)
		}
	}
}

// TestBatchPolicyRTTTrajectory pins the RTT-driven trajectory: the first
// observation sets the floor (and, being within 2x of itself, shrinks);
// congested RTTs beyond 4x the floor grow; a new faster floor re-bases
// the thresholds.
func TestBatchPolicyRTTTrajectory(t *testing.T) {
	var p BatchPolicy
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	steps := []struct {
		rtt  time.Duration
		want int
	}{
		{ms(10), 256},              // floor=10ms; 10 <= 2*10: shrink
		{ms(25), 256},              // 25 in (2x, 4x]: hold
		{ms(50), 512},              // 50 > 4*10: grow
		{ms(50), 1024},             // still congested: grow
		{ms(50), DefaultBatchSize}, // grow
		{ms(50), DefaultBatchSize}, // clamped
		{ms(12), 1024},             // 12 <= 2*10: pipe clear, shrink
		{ms(2), 512},               // new floor=2ms and 2 <= 4: shrink
		{ms(9), 1024},              // 9 > 4*2: the re-based floor bites
	}
	for i, s := range steps {
		p.ObserveRTT(s.rtt)
		if got := p.Target(); got != s.want {
			t.Fatalf("step %d: ObserveRTT(%v) -> target %d, want %d", i, s.rtt, got, s.want)
		}
	}
}

// TestBatchPolicyIgnoresDegenerateInputs pins that nil policies and
// nonsense observations are inert: callers never need to guard.
func TestBatchPolicyIgnoresDegenerateInputs(t *testing.T) {
	var nilPolicy *BatchPolicy
	nilPolicy.ObserveQueue(3, 8)
	nilPolicy.ObserveRTT(time.Millisecond)
	if got := nilPolicy.Target(); got != DefaultBatchSize {
		t.Fatalf("nil policy target = %d, want %d", got, DefaultBatchSize)
	}

	var p BatchPolicy
	p.ObserveQueue(0, 0)  // zero capacity: ignored
	p.ObserveQueue(5, -1) // negative capacity: ignored
	p.ObserveRTT(0)       // zero RTT: ignored
	p.ObserveRTT(-time.Second)
	if got := p.Target(); got != DefaultBatchTarget {
		t.Fatalf("degenerate observations moved target to %d", got)
	}
}

// TestBatchPolicyConcurrentReads exercises the documented concurrency
// contract under the race detector: observations on two goroutines while a
// third reads the target.
func TestBatchPolicyConcurrentReads(t *testing.T) {
	var p BatchPolicy
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			p.ObserveQueue(i%9, 8)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 1; i <= 1000; i++ {
			p.ObserveRTT(time.Duration(i%20+1) * time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			if tgt := p.Target(); tgt < MinBatchTarget || tgt > DefaultBatchSize {
				t.Errorf("target %d out of [%d, %d]", tgt, MinBatchTarget, DefaultBatchSize)
				return
			}
		}
	}()
	wg.Wait()
}

// TestEncoderTarget pins that the encoder flushes at the adaptive target,
// re-reads it between batches, and clamps nonsense values to the batch
// capacity.
func TestEncoderTarget(t *testing.T) {
	var sizes []int
	e := &Encoder{Flush: func(b *Batch) {
		sizes = append(sizes, len(b.Recs))
		PutBatch(b)
	}}
	e.Target = MinBatchTarget
	for i := 0; i < MinBatchTarget; i++ {
		e.Read(1, uint64(i), 8, 0)
	}
	e.Target = 2 * MinBatchTarget // grow mid-stream, as flushBatch would
	for i := 0; i < 2*MinBatchTarget; i++ {
		e.Read(1, uint64(i), 8, 0)
	}
	e.Target = DefaultBatchSize + 1 // out of range: treated as capacity
	for i := 0; i < 3; i++ {
		e.Read(1, uint64(i), 8, 0)
	}
	e.Close()
	want := []int{MinBatchTarget, 2 * MinBatchTarget, 3}
	if len(sizes) != len(want) {
		t.Fatalf("flushed %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("flushed %v, want %v", sizes, want)
		}
	}
}
