// Package event defines the instrumentation vocabulary connecting the
// execution engine (internal/sim) to the race detectors. It plays the role
// Intel PIN's analysis-callback interface plays for the paper's tool: every
// memory access and synchronization operation of the analyzed program is
// delivered, in execution order, to an event Sink.
package event

import "repro/internal/vc"

// LockID identifies a mutex (or the lock-like clock of a barrier) in the
// analyzed program.
type LockID int32

// BarrierID identifies a barrier in the analyzed program.
type BarrierID int32

// PC is a synthetic program-counter / source-site identifier carried on
// every access. The high byte identifies the "module" the site belongs to,
// which supports the suppression rules the paper applies (races from libc
// and ld are suppressed).
type PC uint32

// Module extracts the module tag of a PC.
func (p PC) Module() Module { return Module(p >> 24) }

// Module tags the origin of a code site.
type Module uint8

// Module tags. ModuleApp is ordinary benchmark code; ModuleLibc and ModuleLd
// mark accesses attributed to the C library and the dynamic loader, which
// the paper's suppression rules hide from reports.
const (
	ModuleApp Module = iota
	ModuleLibc
	ModuleLd
	ModulePthread
)

// MakePC builds a PC from a module tag and a site number.
func MakePC(m Module, site uint32) PC { return PC(uint32(m)<<24 | site&0xffffff) }

// StackBase is the start of the per-thread stack address region. The
// engine places thread-local (stack) data at and above this address, and
// detectors return immediately for accesses there — the
// `nonsharedread(addr)` filter on the first line of the paper's Figure 3
// instrumentation pseudocode.
const StackBase = uint64(1) << 40

// NonShared reports whether addr lies in the non-shared (stack) region.
func NonShared(addr uint64) bool { return addr >= StackBase }

// Sink receives the instrumented event stream of one program execution.
// Exactly one event is in flight at a time (the engine runs one virtual
// thread at a time), so implementations need no internal locking.
//
// Access-path methods are split by kind so the hot path stays monomorphic.
type Sink interface {
	// Read reports a shared-memory read of size bytes at addr by tid,
	// issued from code site pc.
	Read(tid vc.TID, addr uint64, size uint32, pc PC)
	// Write reports a shared-memory write.
	Write(tid vc.TID, addr uint64, size uint32, pc PC)

	// Acquire reports that tid acquired lock l (exclusively — a mutex
	// lock or a rwlock write-lock).
	Acquire(tid vc.TID, l LockID)
	// Release reports that tid released lock l. In DJIT+/FastTrack terms a
	// release starts a new epoch for tid.
	Release(tid vc.TID, l LockID)

	// AcquireShared reports a rwlock read-lock: the reader observes
	// everything published by prior write-releases of l, but concurrent
	// readers are not ordered with each other.
	AcquireShared(tid vc.TID, l LockID)
	// ReleaseShared reports a rwlock read-unlock: the reader's time is
	// published to the *next write acquirer* of l (not to other readers).
	ReleaseShared(tid vc.TID, l LockID)

	// Fork reports that parent spawned child (before the child's first
	// event). The child inherits the parent's logical time.
	Fork(parent, child vc.TID)
	// Join reports that parent joined child (after the child's last event).
	Join(parent, child vc.TID)

	// BarrierArrive reports that tid reached barrier b (the last event of
	// tid's pre-barrier epoch). BarrierDepart reports that tid resumed
	// after everyone arrived; it observes the joined time of all arrivals.
	BarrierArrive(tid vc.TID, b BarrierID)
	BarrierDepart(tid vc.TID, b BarrierID)

	// Malloc and Free report heap management in the analyzed program. Free
	// lets detectors discard shadow state for dead locations, which the
	// paper's indexing structure supports with sequential range processing.
	Malloc(tid vc.TID, addr uint64, size uint64)
	Free(tid vc.TID, addr uint64, size uint64)
}

// Nop is a Sink that ignores every event. Running a workload against Nop
// measures the uninstrumented base execution that slowdown factors are
// computed against.
type Nop struct{}

func (Nop) Read(vc.TID, uint64, uint32, PC)  {}
func (Nop) Write(vc.TID, uint64, uint32, PC) {}
func (Nop) Acquire(vc.TID, LockID)           {}
func (Nop) Release(vc.TID, LockID)           {}
func (Nop) AcquireShared(vc.TID, LockID)     {}
func (Nop) ReleaseShared(vc.TID, LockID)     {}
func (Nop) Fork(vc.TID, vc.TID)              {}
func (Nop) Join(vc.TID, vc.TID)              {}
func (Nop) BarrierArrive(vc.TID, BarrierID)  {}
func (Nop) BarrierDepart(vc.TID, BarrierID)  {}
func (Nop) Malloc(vc.TID, uint64, uint64)    {}
func (Nop) Free(vc.TID, uint64, uint64)      {}

// Counter is a Sink that tallies event volumes; tables use it to report the
// "Total shared accesses" column and event mixes.
type Counter struct {
	Reads, Writes  uint64
	ReadBytes      uint64
	WriteBytes     uint64
	Acquires       uint64
	Releases       uint64
	SharedAcquires uint64
	SharedReleases uint64
	Forks, Joins   uint64
	Barriers       uint64
	Mallocs, Frees uint64
	MallocBytes    uint64
	ChanSends      uint64
	ChanRecvs      uint64
	ChanAcks       uint64
	WGAdds         uint64
	WGDones        uint64
	WGWaits        uint64
	SizeHistogram  [17]uint64 // index = access size (1,2,4,8,16), others bucket 0
}

func (c *Counter) bucket(size uint32) int {
	if size <= 16 {
		return int(size)
	}
	return 0
}

func (c *Counter) Read(_ vc.TID, _ uint64, size uint32, _ PC) {
	c.Reads++
	c.ReadBytes += uint64(size)
	c.SizeHistogram[c.bucket(size)]++
}

func (c *Counter) Write(_ vc.TID, _ uint64, size uint32, _ PC) {
	c.Writes++
	c.WriteBytes += uint64(size)
	c.SizeHistogram[c.bucket(size)]++
}

func (c *Counter) Acquire(vc.TID, LockID)          { c.Acquires++ }
func (c *Counter) Release(vc.TID, LockID)          { c.Releases++ }
func (c *Counter) AcquireShared(vc.TID, LockID)    { c.SharedAcquires++ }
func (c *Counter) ReleaseShared(vc.TID, LockID)    { c.SharedReleases++ }
func (c *Counter) Fork(vc.TID, vc.TID)             { c.Forks++ }
func (c *Counter) Join(vc.TID, vc.TID)             { c.Joins++ }
func (c *Counter) BarrierArrive(vc.TID, BarrierID) { c.Barriers++ }
func (c *Counter) BarrierDepart(vc.TID, BarrierID) {}
func (c *Counter) Malloc(_ vc.TID, _ uint64, size uint64) {
	c.Mallocs++
	c.MallocBytes += size
}
func (c *Counter) Free(vc.TID, uint64, uint64) { c.Frees++ }

// Accesses returns the total number of shared reads and writes seen.
func (c *Counter) Accesses() uint64 { return c.Reads + c.Writes }

// Tee fans one event stream out to several sinks in order.
type Tee []Sink

func (t Tee) Read(tid vc.TID, addr uint64, size uint32, pc PC) {
	for _, s := range t {
		s.Read(tid, addr, size, pc)
	}
}
func (t Tee) Write(tid vc.TID, addr uint64, size uint32, pc PC) {
	for _, s := range t {
		s.Write(tid, addr, size, pc)
	}
}
func (t Tee) Acquire(tid vc.TID, l LockID) {
	for _, s := range t {
		s.Acquire(tid, l)
	}
}
func (t Tee) Release(tid vc.TID, l LockID) {
	for _, s := range t {
		s.Release(tid, l)
	}
}
func (t Tee) AcquireShared(tid vc.TID, l LockID) {
	for _, s := range t {
		s.AcquireShared(tid, l)
	}
}
func (t Tee) ReleaseShared(tid vc.TID, l LockID) {
	for _, s := range t {
		s.ReleaseShared(tid, l)
	}
}
func (t Tee) Fork(p, c vc.TID) {
	for _, s := range t {
		s.Fork(p, c)
	}
}
func (t Tee) Join(p, c vc.TID) {
	for _, s := range t {
		s.Join(p, c)
	}
}
func (t Tee) BarrierArrive(tid vc.TID, b BarrierID) {
	for _, s := range t {
		s.BarrierArrive(tid, b)
	}
}
func (t Tee) BarrierDepart(tid vc.TID, b BarrierID) {
	for _, s := range t {
		s.BarrierDepart(tid, b)
	}
}
func (t Tee) Malloc(tid vc.TID, addr, size uint64) {
	for _, s := range t {
		s.Malloc(tid, addr, size)
	}
}
func (t Tee) Free(tid vc.TID, addr, size uint64) {
	for _, s := range t {
		s.Free(tid, addr, size)
	}
}
