package event

import (
	"fmt"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/vc"
)

// logSink records every forwarded access so tests can see exactly what
// survived the elider.
type logSink struct {
	Nop
	log []string
}

func (l *logSink) Read(tid vc.TID, addr uint64, size uint32, _ PC) {
	l.log = append(l.log, fmt.Sprintf("r %d %#x+%d", tid, addr, size))
}

func (l *logSink) Write(tid vc.TID, addr uint64, size uint32, _ PC) {
	l.log = append(l.log, fmt.Sprintf("w %d %#x+%d", tid, addr, size))
}

func TestEliderReadWriteRules(t *testing.T) {
	under := &logSink{}
	e := NewElider(under, EliderOptions{})
	// A forwarded write covers later reads and writes of the same granule.
	e.Write(1, 0x100, 4, 1)
	e.Write(1, 0x100, 4, 2)
	e.Read(1, 0x100, 4, 3)
	e.Read(1, 0x100, 4, 4)
	// A forwarded read covers later reads only: the first write after it
	// must still be forwarded (the detector's bitmap makes the same
	// distinction with its need masks).
	e.Read(1, 0x200, 4, 5)
	e.Read(1, 0x200, 4, 6)
	e.Write(1, 0x200, 4, 7)
	e.Write(1, 0x200, 4, 8)
	want := []string{"w 1 0x100+4", "r 1 0x200+4", "w 1 0x200+4"}
	if fmt.Sprint(under.log) != fmt.Sprint(want) {
		t.Fatalf("forwarded %v, want %v", under.log, want)
	}
	if e.Elided() != 5 {
		t.Fatalf("Elided() = %d, want 5", e.Elided())
	}
}

func TestEliderSizeAndThreadMiss(t *testing.T) {
	under := &logSink{}
	e := NewElider(under, EliderOptions{})
	e.Write(1, 0x100, 4, 1)
	e.Write(1, 0x100, 8, 2) // different size: its own granule, forwarded
	e.Write(2, 0x100, 4, 3) // different thread: caches are per-thread
	if len(under.log) != 3 || e.Elided() != 0 {
		t.Fatalf("forwarded %v (elided %d), want all 3 forwarded", under.log, e.Elided())
	}
}

// TestEliderFlushOnEverySync drives each sync/heap/Go-native event through
// the elider and checks it invalidates the thread's cache: the repeat that
// was elidable before the event must be forwarded after it. This pins the
// conservative flush rule the soundness argument rests on.
func TestEliderFlushOnEverySync(t *testing.T) {
	events := []struct {
		name string
		fire func(e *Elider)
	}{
		{"acquire", func(e *Elider) { e.Acquire(1, 7) }},
		{"release", func(e *Elider) { e.Release(1, 7) }},
		{"acquire-shared", func(e *Elider) { e.AcquireShared(1, 7) }},
		{"release-shared", func(e *Elider) { e.ReleaseShared(1, 7) }},
		{"barrier-arrive", func(e *Elider) { e.BarrierArrive(1, 3) }},
		{"barrier-depart", func(e *Elider) { e.BarrierDepart(1, 3) }},
		{"malloc", func(e *Elider) { e.Malloc(1, 0x4000, 64) }},
		{"free", func(e *Elider) { e.Free(1, 0x4000, 64) }},
		{"chan-send", func(e *Elider) { e.ChanSend(1, 5, 1) }},
		{"chan-recv", func(e *Elider) { e.ChanRecv(1, 5, 1) }},
		{"chan-ack", func(e *Elider) { e.ChanAck(1, 5, 1) }},
		{"wg-add", func(e *Elider) { e.WGAdd(1, 2, 1) }},
		{"wg-done", func(e *Elider) { e.WGDone(1, 2) }},
		{"wg-wait", func(e *Elider) { e.WGWait(1, 2) }},
	}
	for _, ev := range events {
		under := &logSink{}
		e := NewElider(under, EliderOptions{})
		e.Write(1, 0x100, 4, 1)
		e.Write(1, 0x100, 4, 2) // elided: same epoch
		ev.fire(e)
		e.Write(1, 0x100, 4, 3) // must be forwarded: new epoch
		writes := 0
		for _, l := range under.log {
			if l == "w 1 0x100+4" {
				writes++
			}
		}
		if writes != 2 {
			t.Errorf("%s: %d writes forwarded, want 2 (event must flush the cache)", ev.name, writes)
		}
		if e.Elided() != 1 {
			t.Errorf("%s: Elided() = %d, want 1", ev.name, e.Elided())
		}
	}
}

// TestEliderForkJoinFlushBoth checks fork and join flush both endpoints:
// the parent's epoch restarts, and the child TID may be recycled.
func TestEliderForkJoinFlushBoth(t *testing.T) {
	for _, ev := range []struct {
		name string
		fire func(e *Elider)
	}{
		{"fork", func(e *Elider) { e.Fork(1, 2) }},
		{"join", func(e *Elider) { e.Join(1, 2) }},
	} {
		under := &logSink{}
		e := NewElider(under, EliderOptions{})
		e.Write(1, 0x100, 4, 1)
		e.Write(2, 0x200, 4, 2)
		ev.fire(e)
		e.Write(1, 0x100, 4, 3)
		e.Write(2, 0x200, 4, 4)
		if len(under.log) != 4 {
			t.Errorf("%s: forwarded %v, want all 4 (both threads flushed)", ev.name, under.log)
		}
	}
}

func TestEliderNonSharedPassthrough(t *testing.T) {
	under := &logSink{}
	e := NewElider(under, EliderOptions{})
	for i := 0; i < 3; i++ {
		e.Read(1, StackBase+0x10, 8, PC(i))
		e.Write(1, StackBase+0x10, 8, PC(i))
	}
	if len(under.log) != 6 {
		t.Fatalf("forwarded %d non-shared accesses, want all 6", len(under.log))
	}
	if e.Elided() != 0 {
		t.Fatalf("Elided() = %d for non-shared traffic, want 0", e.Elided())
	}
}

func TestEliderTelemetry(t *testing.T) {
	reg := telemetry.New()
	e := NewElider(&logSink{}, EliderOptions{Telemetry: reg})
	e.Write(1, 0x100, 4, 1)
	e.Write(1, 0x100, 4, 2)
	e.Read(1, 0x100, 4, 3)
	if got := reg.CounterValue("detector_elided_total"); got != 2 || got != e.Elided() {
		t.Fatalf("detector_elided_total = %d, Elided() = %d, want both 2", got, e.Elided())
	}
}

// TestEliderSteadyStateZeroAlloc pins the filter's hot path: once a
// thread's cache exists, elided and forwarded accesses allocate nothing.
func TestEliderSteadyStateZeroAlloc(t *testing.T) {
	e := NewElider(Nop{}, EliderOptions{})
	e.Write(1, 0x100, 4, 1) // warm the thread table
	if avg := testing.AllocsPerRun(100, func() {
		e.Write(1, 0x100, 4, 2) // elided
		e.Write(1, 0x180, 4, 3) // forwarded (slot overwrite)
	}); avg != 0 {
		t.Fatalf("elider steady state allocates %.1f per op, want 0", avg)
	}
}
