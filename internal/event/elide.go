// Front-line same-epoch elision: a lossless redundancy filter that drops
// exact repeats of recently checked accesses before they reach the
// transport. The detector already short-circuits same-epoch repeats with
// its per-thread epoch bitmaps (Stats.SameEpoch) — but only after the
// repeat has paid serialization, dispatch and a shadow-block routing.
// Elider moves that check to the source: once an access (tid, addr, size,
// op) has been forwarded, an exact repeat in the same epoch is provably
// verdict-neutral, so serial, remote and cluster lanes can all skip it.
//
// # Soundness
//
// The detector's access fast path tests the thread's epoch bitmap over
// footprint(addr, size) and returns — touching no shadow, clock or report
// state — when every byte is already marked; the marks are set by the
// first (forwarded) access and cleared only by the thread's own
// epoch-starting events (release, fork, barrier-arrive, channel
// send/receive, WaitGroup done). Because footprint is a pure function of
// (addr, size) at every granularity, an exact repeat of a forwarded
// access with no intervening synchronization for that thread would take
// the fast path in every topology. Elider caches exactly that: per-thread
// direct-mapped entries keyed on (addr, size) with read/write check bits
// (a read is elidable after a forwarded read or write of the same
// granule, a write only after a forwarded write — the same need masks the
// epoch bitmap uses), flushed wholesale on *every* sync, heap or
// Go-native event of the thread. The flush set is a strict superset of
// the events that reset the detector's bitmaps, so the filter is
// conservative: it can only elide accesses the detector would have
// ignored. Non-shared (stack) accesses pass through uncached and
// uncounted, keeping Stats.NonShared exact.
//
// Accounting stays reconcilable: every elided access is counted
// (Elided(), detector_elided_total), so
//
//	accesses observed = Stats.Accesses (detector) + Stats.Elided
//
// holds exactly, and each elided access corresponds 1:1 to a
// Stats.SameEpoch hit the detector no longer pays for.
package event

import (
	"repro/internal/telemetry"
	"repro/internal/vc"
)

// elideSlots is the per-thread direct-mapped cache size. 256 entries
// (6 KiB/thread) cover a tight loop's working set of distinct granules;
// collisions only forfeit elision, never correctness.
const elideSlots = 256

// Check bits per cached granule, mirroring the epoch bitmap's need masks.
const (
	elideRead  uint8 = 1 << iota // a read of this granule was forwarded
	elideWrite                   // a write of this granule was forwarded
)

// elideEntry is one cached granule check. gen ties the entry to the
// thread's current flush generation: bumping the generation invalidates
// the whole cache in O(1).
type elideEntry struct {
	addr uint64
	gen  uint64
	size uint32
	ops  uint8
}

// elideCache is one thread's direct-mapped filter state.
type elideCache struct {
	gen     uint64
	entries [elideSlots]elideEntry
}

// EliderOptions configure an Elider.
type EliderOptions struct {
	// Telemetry, when non-nil, receives the detector_elided_total counter.
	Telemetry *telemetry.Registry
}

// Elider is the front-line filter. It implements Sink and GoSink, wrapping
// any under sink (detector, pipeline, remote client, cluster fan-out).
// Like every Sink it is driven from a single goroutine.
type Elider struct {
	under   Sink
	threads []*elideCache // indexed by TID, grown on demand
	elided  uint64
	met     *telemetry.Counter
}

// NewElider returns a filter forwarding to under.
func NewElider(under Sink, opts EliderOptions) *Elider {
	e := &Elider{under: under}
	if opts.Telemetry != nil {
		e.met = opts.Telemetry.Counter("detector_elided_total",
			"Accesses elided at the source as exact same-epoch repeats (never reached the detector).")
	}
	return e
}

// Elided returns the number of accesses dropped so far.
func (e *Elider) Elided() uint64 { return e.elided }

// cache returns tid's filter state, growing the thread table as needed.
func (e *Elider) cache(tid vc.TID) *elideCache {
	for int(tid) >= len(e.threads) {
		e.threads = append(e.threads, nil)
	}
	c := e.threads[tid]
	if c == nil {
		c = &elideCache{gen: 1}
		e.threads[tid] = c
	}
	return c
}

// flush invalidates tid's cached checks (O(1) generation bump). Called on
// every sync/heap/Go-native event of the thread — a superset of the
// detector's epoch-bitmap resets, so strictly conservative.
func (e *Elider) flush(tid vc.TID) {
	if int(tid) < len(e.threads) {
		if c := e.threads[tid]; c != nil {
			c.gen++
		}
	}
}

// access runs the filter for one access; it reports true when the access
// was elided (already checked this epoch with a covering op).
func (e *Elider) access(tid vc.TID, addr uint64, size uint32, need, set uint8) bool {
	c := e.cache(tid)
	// Multiplicative hash spreads nearby granule addresses across slots.
	idx := (addr * 0x9e3779b97f4a7c15) >> 56 % elideSlots
	ent := &c.entries[idx]
	if ent.gen == c.gen && ent.addr == addr && ent.size == size {
		if ent.ops&need != 0 {
			e.elided++
			e.met.Inc()
			return true
		}
		ent.ops |= set
		return false
	}
	*ent = elideEntry{addr: addr, gen: c.gen, size: size, ops: set}
	return false
}

// ---- Sink ----

// Read forwards a shared read unless an identical read (or a covering
// write) of the granule was already forwarded this epoch.
func (e *Elider) Read(tid vc.TID, addr uint64, size uint32, pc PC) {
	if NonShared(addr) {
		e.under.Read(tid, addr, size, pc)
		return
	}
	if e.access(tid, addr, size, elideRead|elideWrite, elideRead) {
		return
	}
	e.under.Read(tid, addr, size, pc)
}

// Write forwards a shared write unless an identical write of the granule
// was already forwarded this epoch.
func (e *Elider) Write(tid vc.TID, addr uint64, size uint32, pc PC) {
	if NonShared(addr) {
		e.under.Write(tid, addr, size, pc)
		return
	}
	if e.access(tid, addr, size, elideWrite, elideWrite) {
		return
	}
	e.under.Write(tid, addr, size, pc)
}

// Acquire forwards; acquires never reset the epoch bitmap, but flushing is
// cheap and keeps the rule uniform: any sync event flushes the thread.
func (e *Elider) Acquire(tid vc.TID, l LockID) {
	e.flush(tid)
	e.under.Acquire(tid, l)
}

// Release forwards and flushes (the release starts tid's next epoch).
func (e *Elider) Release(tid vc.TID, l LockID) {
	e.flush(tid)
	e.under.Release(tid, l)
}

// AcquireShared forwards and flushes.
func (e *Elider) AcquireShared(tid vc.TID, l LockID) {
	e.flush(tid)
	e.under.AcquireShared(tid, l)
}

// ReleaseShared forwards and flushes.
func (e *Elider) ReleaseShared(tid vc.TID, l LockID) {
	e.flush(tid)
	e.under.ReleaseShared(tid, l)
}

// Fork forwards and flushes both threads (the parent's epoch restarts; the
// child may reuse a table slot).
func (e *Elider) Fork(parent, child vc.TID) {
	e.flush(parent)
	e.flush(child)
	e.under.Fork(parent, child)
}

// Join forwards and flushes both threads.
func (e *Elider) Join(parent, child vc.TID) {
	e.flush(parent)
	e.flush(child)
	e.under.Join(parent, child)
}

// BarrierArrive forwards and flushes.
func (e *Elider) BarrierArrive(tid vc.TID, b BarrierID) {
	e.flush(tid)
	e.under.BarrierArrive(tid, b)
}

// BarrierDepart forwards and flushes.
func (e *Elider) BarrierDepart(tid vc.TID, b BarrierID) {
	e.flush(tid)
	e.under.BarrierDepart(tid, b)
}

// Malloc forwards and flushes (heap events are never elided).
func (e *Elider) Malloc(tid vc.TID, addr, size uint64) {
	e.flush(tid)
	e.under.Malloc(tid, addr, size)
}

// Free forwards and flushes.
func (e *Elider) Free(tid vc.TID, addr, size uint64) {
	e.flush(tid)
	e.under.Free(tid, addr, size)
}

// ---- GoSink ----

// ChanSend forwards and flushes (a send starts tid's next epoch).
func (e *Elider) ChanSend(tid vc.TID, ch ChanID, cap int) {
	e.flush(tid)
	DispatchChanSend(e.under, tid, ch, cap)
}

// ChanRecv forwards and flushes.
func (e *Elider) ChanRecv(tid vc.TID, ch ChanID, cap int) {
	e.flush(tid)
	DispatchChanRecv(e.under, tid, ch, cap)
}

// ChanAck forwards and flushes.
func (e *Elider) ChanAck(tid vc.TID, ch ChanID, cap int) {
	e.flush(tid)
	DispatchChanAck(e.under, tid, ch, cap)
}

// WGAdd forwards and flushes.
func (e *Elider) WGAdd(tid vc.TID, wg WGID, delta int) {
	e.flush(tid)
	DispatchWGAdd(e.under, tid, wg, delta)
}

// WGDone forwards and flushes.
func (e *Elider) WGDone(tid vc.TID, wg WGID) {
	e.flush(tid)
	DispatchWGDone(e.under, tid, wg)
}

// WGWait forwards and flushes.
func (e *Elider) WGWait(tid vc.TID, wg WGID) {
	e.flush(tid)
	DispatchWGWait(e.under, tid, wg)
}
