package event

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/vc"
)

// randRecs builds a deterministic mixed stream of accesses and sync events
// with runs of repeated accesses (the shape the columnar lane optimizes).
func randRecs(n int, seed int64) []Rec {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Rec, 0, n)
	seq := uint64(0)
	for len(recs) < n {
		seq++
		switch rng.Intn(10) {
		case 0:
			recs = append(recs, Rec{Op: OpAcquire, Tid: vc.TID(rng.Intn(4)), Aux: uint64(rng.Intn(3)), Seq: seq})
		case 1:
			recs = append(recs, Rec{Op: OpRelease, Tid: vc.TID(rng.Intn(4)), Aux: uint64(rng.Intn(3)), Seq: seq})
		case 2:
			recs = append(recs, Rec{Op: OpFork, Tid: 0, Aux: uint64(1 + rng.Intn(3)), Seq: seq})
		default:
			r := Rec{
				Op:   OpRead + Op(rng.Intn(2)),
				Tid:  vc.TID(rng.Intn(4)),
				Addr: uint64(0x1000 + 8*rng.Intn(64)),
				Size: []uint32{1, 4, 8}[rng.Intn(3)],
				PC:   PC(rng.Intn(16)),
				Seq:  seq,
			}
			// Emit a run of identical accesses half the time.
			for k := rng.Intn(4); k >= 0 && len(recs) < n; k-- {
				r.Seq = seq
				recs = append(recs, r)
				if k > 0 {
					seq++
				}
			}
		}
	}
	return recs
}

func TestColsAppendRecRoundTrip(t *testing.T) {
	recs := randRecs(300, 1)
	c := &Cols{}
	for _, r := range recs {
		c.Append(r)
	}
	if c.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(recs))
	}
	for i, want := range recs {
		if got := c.Rec(i); got != want {
			t.Fatalf("Rec(%d) = %+v, want %+v", i, got, want)
		}
	}
	c.Truncate(10)
	if c.Len() != 10 || c.Rec(9) != recs[9] {
		t.Fatalf("Truncate(10): Len = %d, Rec(9) = %+v", c.Len(), c.Rec(9))
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Reset: Len = %d, want 0", c.Len())
	}
}

// opLog records the full call sequence of a Sink so the columnar apply can
// be compared call-for-call against the record-major one.
type opLog struct {
	Nop
	log []string
}

func (l *opLog) add(f string, a ...any) { l.log = append(l.log, fmt.Sprintf(f, a...)) }

func (l *opLog) Read(tid vc.TID, addr uint64, size uint32, pc PC) {
	l.add("r %d %#x+%d@%d", tid, addr, size, pc)
}
func (l *opLog) Write(tid vc.TID, addr uint64, size uint32, pc PC) {
	l.add("w %d %#x+%d@%d", tid, addr, size, pc)
}
func (l *opLog) Acquire(tid vc.TID, lk LockID) { l.add("acq %d %d", tid, lk) }
func (l *opLog) Release(tid vc.TID, lk LockID) { l.add("rel %d %d", tid, lk) }
func (l *opLog) Fork(p, c vc.TID)              { l.add("fork %d->%d", p, c) }

// TestColsApplyMatchesRecordApply pins the fallback path of Cols.Apply:
// for a sink without a columnar fast path it must produce the identical
// call sequence as applying each materialized Rec in order.
func TestColsApplyMatchesRecordApply(t *testing.T) {
	recs := randRecs(500, 2)
	c := &Cols{}
	for _, r := range recs {
		c.Append(r)
	}
	var want opLog
	for i := range recs {
		ApplyRec(&want, &recs[i])
	}
	var got opLog
	if last := c.Apply(&got); last != recs[len(recs)-1].Seq {
		t.Fatalf("Apply returned seq %d, want %d", last, recs[len(recs)-1].Seq)
	}
	if !reflect.DeepEqual(want.log, got.log) {
		t.Fatalf("columnar apply diverged from record apply:\nwant %v\ngot  %v", want.log, got.log)
	}
}

// colsSink proves Cols.Apply prefers the BatchSink seam when offered one.
type colsSink struct {
	opLog
	batches int
}

func (s *colsSink) ApplyCols(c *Cols) {
	s.batches++
	n := c.Len()
	for i := 0; i < n; i++ {
		r := c.Rec(i)
		ApplyRec(&s.opLog, &r)
	}
}

func TestColsApplyUsesBatchSink(t *testing.T) {
	recs := randRecs(100, 3)
	c := &Cols{}
	for _, r := range recs {
		c.Append(r)
	}
	s := &colsSink{}
	c.Apply(s)
	if s.batches != 1 {
		t.Fatalf("BatchSink.ApplyCols called %d times, want 1", s.batches)
	}
	var want opLog
	for i := range recs {
		ApplyRec(&want, &recs[i])
	}
	if !reflect.DeepEqual(want.log, s.opLog.log) {
		t.Fatal("BatchSink path applied different records than record-major apply")
	}
}

func TestColsPoolCounts(t *testing.T) {
	g0, p0, cg0, cp0 := PoolCounts()
	c := GetCols()
	c.Append(Rec{Op: OpRead, Addr: 0x10, Size: 4})
	PutCols(c)
	b := GetBatch()
	PutBatch(b)
	g1, p1, cg1, cp1 := PoolCounts()
	if g1-g0 != 1 || p1-p0 != 1 || cg1-cg0 != 1 || cp1-cp0 != 1 {
		t.Fatalf("pool deltas = batch %d/%d cols %d/%d, want 1/1 1/1",
			g1-g0, p1-p0, cg1-cg0, cp1-cp0)
	}
	if c2 := GetCols(); c2.Len() != 0 {
		t.Fatalf("pooled Cols not reset: Len = %d", c2.Len())
	}
}

// TestColsAppendZeroAlloc pins the pooled append path: within the default
// capacity, building a columnar batch allocates nothing.
func TestColsAppendZeroAlloc(t *testing.T) {
	c := GetCols()
	defer PutCols(c)
	r := Rec{Op: OpWrite, Tid: 1, Addr: 0x1000, Size: 8, Seq: 1}
	if avg := testing.AllocsPerRun(100, func() {
		c.Reset()
		for i := 0; i < DefaultBatchSize; i++ {
			c.Append(r)
		}
	}); avg != 0 {
		t.Fatalf("Cols.Append allocates %.1f per batch within capacity, want 0", avg)
	}
}
