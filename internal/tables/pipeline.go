package tables

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/telemetry"
	"repro/race"
	"repro/workloads"
)

// DefaultPipelineWorkers is the worker sweep the pipeline bench covers:
// serial (0), single background worker (transport cost in isolation), then
// powers of two.
var DefaultPipelineWorkers = []int{0, 1, 2, 4, 8}

// PipelineRow is one (benchmark, worker count, dispatch) cell of the
// sharded-pipeline throughput sweep.
type PipelineRow struct {
	Program string `json:"program"`
	// Workers is the detection worker count (0 = serial detector on the
	// execution thread).
	Workers int `json:"workers"`
	// Dispatch is the router→worker transport: "ring" (lock-free SPSC)
	// or "chan" (buffered-channel baseline); empty for serial rows.
	Dispatch string `json:"dispatch,omitempty"`
	// Seconds is the best wall time of the instrumented run, including
	// draining the workers.
	Seconds float64 `json:"seconds"`
	// EventsPerSec is total engine events divided by Seconds.
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is EventsPerSec relative to the same benchmark's serial
	// (Workers = 0) row.
	Speedup float64 `json:"speedup"`
	// DispatchWaitP50Ns / DispatchWaitP99Ns are quantile upper bounds of
	// the router's per-batch blocking time in the transport send — the
	// number the SPSC ring exists to shrink versus the channel baseline.
	DispatchWaitP50Ns uint64 `json:"dispatch_wait_p50_ns,omitempty"`
	DispatchWaitP99Ns uint64 `json:"dispatch_wait_p99_ns,omitempty"`
	// RingParks counts producer+consumer park events (0 for chan rows:
	// the baseline transport parks inside the runtime where we cannot
	// count it).
	RingParks uint64 `json:"ring_parks,omitempty"`
	// Races is the merged race count — equal across the sweep by the
	// pipeline's equivalence guarantee, recorded so regressions are visible
	// in the JSON diff.
	Races int `json:"races"`
}

// pipelineDispatches is the transport sweep for Workers > 0 rows.
var pipelineDispatches = []string{"ring", "chan"}

// pipelineCell measures one (benchmark, workers, dispatch) cell: best
// wall time over the configured timing runs, with the dispatch-wait
// histogram of the final run (the distribution is stable across runs of a
// deterministic workload; the final run avoids mixing warm-up noise in).
func (r *Runner) pipelineCell(s workloads.Spec, w int, dispatch string) PipelineRow {
	prog := s.Build(r.cfg.Scale)
	opts := race.Options{
		Tool:        race.FastTrack,
		Granularity: race.Dynamic,
		Seed:        r.cfg.Seed,
		Workers:     w,
		Dispatch:    dispatch,
	}
	var (
		rep race.Report
		reg *telemetry.Registry
	)
	times := make([]time.Duration, 0, r.cfg.TimingRuns)
	for i := 0; i < r.cfg.TimingRuns; i++ {
		runtime.GC() // isolate timed runs from each other's garbage
		if w > 0 {
			reg = telemetry.New()
			opts.Telemetry = reg
		}
		rep = race.Run(prog, opts)
		times = append(times, rep.Elapsed)
	}
	row := PipelineRow{
		Program:  s.Name,
		Workers:  w,
		Dispatch: dispatch,
		Seconds:  bestDuration(times).Seconds(),
		Races:    len(rep.Races),
	}
	if row.Seconds > 0 {
		row.EventsPerSec = float64(rep.Run.Events) / row.Seconds
	}
	if w > 0 {
		snap := reg.HistogramValue("pipeline_dispatch_wait_ns")
		row.DispatchWaitP50Ns = snap.Quantile(0.50)
		row.DispatchWaitP99Ns = snap.Quantile(0.99)
		row.RingParks = reg.CounterValue("pipeline_ring_parks_total")
	}
	return row
}

// PipelineBench sweeps worker counts and dispatch transports over the
// runner's benchmarks at dynamic granularity. Rows are grouped per
// benchmark in sweep order: the serial row first, then ring and chan rows
// for each worker count.
func (r *Runner) PipelineBench(workerCounts []int) []PipelineRow {
	if len(workerCounts) == 0 {
		workerCounts = DefaultPipelineWorkers
	}
	var rows []PipelineRow
	for _, s := range r.specs {
		serialEPS := 0.0
		for _, w := range workerCounts {
			dispatches := pipelineDispatches
			if w == 0 {
				dispatches = []string{""}
			}
			for _, d := range dispatches {
				row := r.pipelineCell(s, w, d)
				if w == 0 {
					serialEPS = row.EventsPerSec
				}
				if serialEPS > 0 {
					row.Speedup = row.EventsPerSec / serialEPS
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// PipelineBenchJSON is the machine-readable BENCH_pipeline.json document.
type PipelineBenchJSON struct {
	Config struct {
		Scale      int   `json:"scale"`
		Seed       int64 `json:"seed"`
		GOMAXPROCS int   `json:"gomaxprocs"`
	} `json:"config"`
	Rows []PipelineRow `json:"rows"`
}

// WritePipelineJSON runs the worker sweep and writes BENCH_pipeline.json.
// GOMAXPROCS is recorded because the sweep's speedups are only meaningful
// relative to the cores available: with GOMAXPROCS=1 the rows measure
// transport overhead, not parallel speedup.
func (r *Runner) WritePipelineJSON(w io.Writer, workerCounts []int) error {
	var out PipelineBenchJSON
	out.Config.Scale = r.cfg.Scale
	out.Config.Seed = r.cfg.Seed
	out.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	out.Rows = r.PipelineBench(workerCounts)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
