package tables

import (
	"encoding/json"
	"io"
	"runtime"

	"repro/race"
)

// DefaultPipelineWorkers is the worker sweep the pipeline bench covers:
// serial (0), single background worker (transport cost in isolation), then
// powers of two.
var DefaultPipelineWorkers = []int{0, 1, 2, 4, 8}

// PipelineRow is one (benchmark, worker count) cell of the sharded-pipeline
// throughput sweep.
type PipelineRow struct {
	Program string `json:"program"`
	// Workers is the detection worker count (0 = serial detector on the
	// execution thread).
	Workers int `json:"workers"`
	// Seconds is the best wall time of the instrumented run, including
	// draining the workers.
	Seconds float64 `json:"seconds"`
	// EventsPerSec is total engine events divided by Seconds.
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is EventsPerSec relative to the same benchmark's serial
	// (Workers = 0) row.
	Speedup float64 `json:"speedup"`
	// Races is the merged race count — equal across the sweep by the
	// pipeline's equivalence guarantee, recorded so regressions are visible
	// in the JSON diff.
	Races int `json:"races"`
}

// PipelineBench sweeps the pipeline worker counts over the runner's
// benchmarks at dynamic granularity. Rows are grouped per benchmark in
// sweep order, serial first.
func (r *Runner) PipelineBench(workerCounts []int) []PipelineRow {
	if len(workerCounts) == 0 {
		workerCounts = DefaultPipelineWorkers
	}
	var rows []PipelineRow
	for _, s := range r.specs {
		serialEPS := 0.0
		for _, w := range workerCounts {
			opts := race.Options{
				Tool:        race.FastTrack,
				Granularity: race.Dynamic,
				Workers:     w,
			}
			rep := r.Report(s, opts)
			row := PipelineRow{
				Program: s.Name,
				Workers: w,
				Seconds: rep.Elapsed.Seconds(),
				Races:   len(rep.Races),
			}
			if row.Seconds > 0 {
				row.EventsPerSec = float64(rep.Run.Events) / row.Seconds
			}
			if w == 0 {
				serialEPS = row.EventsPerSec
			}
			if serialEPS > 0 {
				row.Speedup = row.EventsPerSec / serialEPS
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// PipelineBenchJSON is the machine-readable BENCH_pipeline.json document.
type PipelineBenchJSON struct {
	Config struct {
		Scale      int   `json:"scale"`
		Seed       int64 `json:"seed"`
		GOMAXPROCS int   `json:"gomaxprocs"`
	} `json:"config"`
	Rows []PipelineRow `json:"rows"`
}

// WritePipelineJSON runs the worker sweep and writes BENCH_pipeline.json.
// GOMAXPROCS is recorded because the sweep's speedups are only meaningful
// relative to the cores available: with GOMAXPROCS=1 the rows measure
// transport overhead, not parallel speedup.
func (r *Runner) WritePipelineJSON(w io.Writer, workerCounts []int) error {
	var out PipelineBenchJSON
	out.Config.Scale = r.cfg.Scale
	out.Config.Seed = r.cfg.Seed
	out.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	out.Rows = r.PipelineBench(workerCounts)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
