package tables

import (
	"bytes"
	"strings"
	"testing"

	"repro/race"
)

// quickRunner uses a benchmark subset and single timing runs so the table
// machinery is exercised quickly.
func quickRunner() *Runner {
	return NewRunner(Config{
		Seed:       42,
		TimingRuns: 1,
		Benchmarks: []string{"hmmsearch", "ffmpeg", "pbzip2"},
	})
}

func TestTable1ShapesOnSubset(t *testing.T) {
	r := quickRunner()
	rows := r.Table1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.SharedAccesses == 0 || row.MaxVectorsByte == 0 || row.Threads < 2 {
			t.Errorf("%s: degenerate row %+v", row.Program, row)
		}
		// Dynamic granularity must never use more clock memory than byte.
		if row.MemOverhead[2] > row.MemOverhead[0]+1e-9 {
			t.Errorf("%s: dynamic memory overhead above byte: %v", row.Program, row.MemOverhead)
		}
		for _, s := range row.Slowdown {
			if s <= 0 {
				t.Errorf("%s: missing slowdown %v", row.Program, row.Slowdown)
			}
		}
	}
	// ffmpeg's precision row: byte 1, word 4 (false alarms), dynamic 1.
	for _, row := range rows {
		if row.Program == "ffmpeg" {
			if row.Races != [3]int{1, 4, 1} {
				t.Errorf("ffmpeg races = %v", row.Races)
			}
		}
	}
}

func TestTable2ComponentsSumBelowTotal(t *testing.T) {
	r := quickRunner()
	for _, row := range r.Table2() {
		for g := 0; g < 3; g++ {
			if row.Hash[g] <= 0 || row.VC[g] < 0 || row.Bitmap[g] < 0 {
				t.Errorf("%s: empty components %+v", row.Program, row)
			}
			if row.Total[g] > row.Hash[g]+row.VC[g]+row.Bitmap[g] {
				t.Errorf("%s: total above the sum of component peaks", row.Program)
			}
		}
		// Dynamic granularity saves clock memory on these benchmarks.
		if row.VC[2] > row.VC[0] {
			t.Errorf("%s: dynamic clock bytes above byte: %v", row.Program, row.VC)
		}
	}
}

func TestTable3SharingShapes(t *testing.T) {
	r := quickRunner()
	for _, row := range r.Table3() {
		if row.MaxVCs[2] > row.MaxVCs[0] {
			t.Errorf("%s: dynamic kept more clocks than byte: %v", row.Program, row.MaxVCs)
		}
		if row.AvgSharing < 1 {
			t.Errorf("%s: sharing below 1: %v", row.Program, row.AvgSharing)
		}
		if row.Program == "pbzip2" && row.AvgSharing < 8 {
			t.Errorf("pbzip2 sharing should be large: %v", row.AvgSharing)
		}
	}
}

func TestTable4SameEpochShapes(t *testing.T) {
	r := quickRunner()
	for _, row := range r.Table4() {
		for g := 0; g < 3; g++ {
			if row.SameEpochPct[g] < 0 || row.SameEpochPct[g] > 100 {
				t.Errorf("%s: pct out of range %v", row.Program, row.SameEpochPct)
			}
		}
		// Dynamic granularity never lowers the same-epoch rate.
		if row.SameEpochPct[2]+1e-9 < row.SameEpochPct[0] {
			t.Errorf("%s: dynamic same-epoch below byte: %v", row.Program, row.SameEpochPct)
		}
	}
}

func TestTable5AblationShapes(t *testing.T) {
	r := quickRunner()
	for _, row := range r.Table5() {
		if row.MemInitShare > row.MemNoInitShare {
			t.Errorf("%s: init sharing increased memory: %+v", row.Program, row)
		}
		if row.RacesInitState > row.RacesNoInitState {
			t.Errorf("%s: the Init state should only remove false alarms: %+v", row.Program, row)
		}
	}
}

func TestTable6ComparatorShapes(t *testing.T) {
	r := quickRunner()
	for _, row := range r.Table6() {
		if row.DRD.DNF() || row.Dynamic.DNF() {
			t.Errorf("%s: unexpected DNF on the subset", row.Program)
		}
		// DRD is the slowest tool on every benchmark (Table 6's shape).
		if !row.Inspector.DNF() && row.DRD.Slowdown < row.Dynamic.Slowdown {
			t.Errorf("%s: DRD faster than dynamic (%.2f vs %.2f)",
				row.Program, row.DRD.Slowdown, row.Dynamic.Slowdown)
		}
		// DRD uses less memory than the dynamic detector.
		if row.DRD.MemOverhead > row.Dynamic.MemOverhead {
			t.Errorf("%s: DRD memory above dynamic", row.Program)
		}
	}
}

func TestRendersMentionEveryBenchmark(t *testing.T) {
	r := quickRunner()
	var buf bytes.Buffer
	r.RenderTable1(&buf)
	r.RenderTable2(&buf)
	r.RenderTable3(&buf)
	r.RenderTable4(&buf)
	r.RenderTable5(&buf)
	r.RenderTable6(&buf)
	out := buf.String()
	for _, name := range []string{"hmmsearch", "ffmpeg", "pbzip2"} {
		if n := strings.Count(out, name); n < 6 {
			t.Errorf("%s appears %d times, want one per table", name, n)
		}
	}
	for i := 1; i <= 6; i++ {
		if !strings.Contains(out, "Table "+string(rune('0'+i))) {
			t.Errorf("missing Table %d header", i)
		}
	}
}

func TestFigureDemos(t *testing.T) {
	f1 := Figure1()
	if !strings.Contains(f1, "RACE") || !strings.Contains(f1, "W_x") {
		t.Errorf("figure 1 demo incomplete:\n%s", f1)
	}
	if !strings.Contains(f1, "reported 1 race") {
		t.Errorf("figure 1 must find exactly the one race:\n%s", f1)
	}
	f2 := Figure2()
	if !strings.Contains(f2, "races reported: 1") {
		t.Errorf("figure 2 demo: %s", f2)
	}
	f4 := Figure4()
	if !strings.Contains(f4, "dense=false") || !strings.Contains(f4, "dense=true") {
		t.Errorf("figure 4 demo must show the expansion:\n%s", f4)
	}
	if !strings.Contains(f4, "true") {
		t.Errorf("figure 4 replication check failed:\n%s", f4)
	}
}

func TestRunnerCaching(t *testing.T) {
	r := quickRunner()
	s := r.Specs()[0]
	a := r.Report(s, race.Options{Tool: race.FastTrack, Granularity: race.Dynamic})
	b := r.Report(s, race.Options{Tool: race.FastTrack, Granularity: race.Dynamic})
	if a.Elapsed != b.Elapsed {
		t.Error("second lookup should be served from cache")
	}
}

func TestAverageSlowdownOrdering(t *testing.T) {
	r := quickRunner()
	avg := r.AverageSlowdown()
	if avg[0] <= 0 || avg[1] <= 0 || avg[2] <= 0 {
		t.Fatalf("avg = %v", avg)
	}
	// The headline claim on this subset: dynamic is the fastest average.
	if avg[2] > avg[0] {
		t.Errorf("dynamic (%.2f) slower than byte (%.2f) on average", avg[2], avg[0])
	}
}

func TestTable7ExtensionsKeepVerdicts(t *testing.T) {
	r := NewRunner(Config{
		Seed:       42,
		TimingRuns: 1,
		Benchmarks: []string{"canneal", "hmmsearch"},
	})
	for _, row := range r.Table7() {
		for _, races := range row.Races[1:] {
			if races != row.Races[0] {
				t.Errorf("%s: extension changed the verdict: %v", row.Program, row.Races)
			}
		}
		if row.CmpGuided > row.CmpPlain {
			t.Errorf("%s: guided reads compared more: %d vs %d",
				row.Program, row.CmpGuided, row.CmpPlain)
		}
		if row.Program == "canneal" && row.CmpGuided >= row.CmpPlain {
			t.Error("canneal should show the guided-reads saving")
		}
	}
}
