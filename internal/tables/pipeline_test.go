package tables

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestPipelineBenchRows checks the sweep produces one serial row plus one
// row per (worker count, dispatch) pair per benchmark, serial rows have
// speedup 1, and the race count is constant across the sweep (the
// pipeline's equivalence guarantee).
func TestPipelineBenchRows(t *testing.T) {
	r := NewRunner(Config{Benchmarks: []string{"streamcluster", "pbzip2"}, TimingRuns: 1, Seed: 42})
	sweep := []int{0, 2, 4}
	rows := r.PipelineBench(sweep)
	// One serial row, then ring+chan rows for each non-zero worker count.
	perSpec := 1 + 2*(len(sweep)-1)
	if want := len(r.Specs()) * perSpec; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	races := map[string]int{}
	for _, row := range rows {
		if row.Workers == 0 {
			if row.Speedup != 1 {
				t.Errorf("%s serial row speedup = %v, want 1", row.Program, row.Speedup)
			}
			if row.Dispatch != "" {
				t.Errorf("%s serial row dispatch = %q, want empty", row.Program, row.Dispatch)
			}
			races[row.Program] = row.Races
		} else {
			if row.Races != races[row.Program] {
				t.Errorf("%s workers=%d/%s races = %d, serial found %d",
					row.Program, row.Workers, row.Dispatch, row.Races, races[row.Program])
			}
			if row.Dispatch != "ring" && row.Dispatch != "chan" {
				t.Errorf("%s workers=%d has dispatch %q", row.Program, row.Workers, row.Dispatch)
			}
			if row.DispatchWaitP50Ns == 0 || row.DispatchWaitP99Ns < row.DispatchWaitP50Ns {
				t.Errorf("%s workers=%d/%s dispatch-wait quantiles p50=%d p99=%d",
					row.Program, row.Workers, row.Dispatch,
					row.DispatchWaitP50Ns, row.DispatchWaitP99Ns)
			}
		}
		if row.Seconds <= 0 || row.EventsPerSec <= 0 {
			t.Errorf("%s workers=%d has non-positive timing (%v s, %v ev/s)",
				row.Program, row.Workers, row.Seconds, row.EventsPerSec)
		}
	}
}

// TestWritePipelineJSON checks the emitted document round-trips and carries
// the config header.
func TestWritePipelineJSON(t *testing.T) {
	r := NewRunner(Config{Benchmarks: []string{"streamcluster"}, TimingRuns: 1, Seed: 42})
	var buf bytes.Buffer
	if err := r.WritePipelineJSON(&buf, []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	var doc PipelineBenchJSON
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Config.Seed != 42 || doc.Config.GOMAXPROCS < 1 {
		t.Fatalf("bad config header: %+v", doc.Config)
	}
	if len(doc.Rows) != 3 { // serial + workers=2 ring + workers=2 chan
		t.Fatalf("got %d rows, want 3", len(doc.Rows))
	}
}

// TestWireCodecBenchCompression is the bench-smoke regression gate for the
// columnar codec: on the realistic locality stream at the default batch
// size, the v2 frame must be at least 4x smaller than the packed v1 frame
// of the same batch (the tentpole's acceptance bar), and every row's
// throughputs must be populated.
func TestWireCodecBenchCompression(t *testing.T) {
	rows := WireCodecBench([]int{2048})
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want v1 and v2", len(rows))
	}
	byCodec := map[string]WireCodecRow{}
	for _, row := range rows {
		byCodec[row.Codec] = row
		if row.EncodeEventsPerSec <= 0 || row.DecodeEventsPerSec <= 0 {
			t.Errorf("%s: non-positive throughput %+v", row.Codec, row)
		}
	}
	v1, v2 := byCodec["v1"], byCodec["v2"]
	if v1.BatchRecs != 2048 || v2.BatchRecs != 2048 {
		t.Fatalf("rows not keyed by codec: %+v", rows)
	}
	if v1.VsPacked != 1 {
		t.Errorf("v1 vs_packed = %v, want 1", v1.VsPacked)
	}
	if 4*v2.FrameBytes > v1.FrameBytes {
		t.Errorf("columnar frame %d B vs packed %d B: less than the promised 4x (%.2f B/event)",
			v2.FrameBytes, v1.FrameBytes, v2.BytesPerEvent)
	}
}
