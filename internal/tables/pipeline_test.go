package tables

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestPipelineBenchRows checks the worker sweep produces one row per
// (benchmark, worker count), serial rows have speedup 1, and the race count
// is constant across the sweep (the pipeline's equivalence guarantee).
func TestPipelineBenchRows(t *testing.T) {
	r := NewRunner(Config{Benchmarks: []string{"streamcluster", "pbzip2"}, TimingRuns: 1, Seed: 42})
	sweep := []int{0, 2, 4}
	rows := r.PipelineBench(sweep)
	if want := len(r.Specs()) * len(sweep); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	races := map[string]int{}
	for _, row := range rows {
		if row.Workers == 0 {
			if row.Speedup != 1 {
				t.Errorf("%s serial row speedup = %v, want 1", row.Program, row.Speedup)
			}
			races[row.Program] = row.Races
		} else if row.Races != races[row.Program] {
			t.Errorf("%s workers=%d races = %d, serial found %d",
				row.Program, row.Workers, row.Races, races[row.Program])
		}
		if row.Seconds <= 0 || row.EventsPerSec <= 0 {
			t.Errorf("%s workers=%d has non-positive timing (%v s, %v ev/s)",
				row.Program, row.Workers, row.Seconds, row.EventsPerSec)
		}
	}
}

// TestWritePipelineJSON checks the emitted document round-trips and carries
// the config header.
func TestWritePipelineJSON(t *testing.T) {
	r := NewRunner(Config{Benchmarks: []string{"streamcluster"}, TimingRuns: 1, Seed: 42})
	var buf bytes.Buffer
	if err := r.WritePipelineJSON(&buf, []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	var doc PipelineBenchJSON
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Config.Seed != 42 || doc.Config.GOMAXPROCS < 1 {
		t.Fatalf("bad config header: %+v", doc.Config)
	}
	if len(doc.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(doc.Rows))
	}
}
