package tables

import (
	"fmt"
	"io"
)

// Row2 is one benchmark's row of Table 2: the detector memory overhead
// split into its three components, per granularity ([byte, word, dynamic]).
type Row2 struct {
	Program string
	Hash    [3]int64
	VC      [3]int64
	Bitmap  [3]int64
	Total   [3]int64
}

// Table2 computes Table 2's rows.
func (r *Runner) Table2() []Row2 {
	rows := make([]Row2, 0, len(r.specs))
	for _, s := range r.specs {
		row := Row2{Program: s.Name}
		for gi, g := range granularities {
			st := r.Report(s, r.ftOpts(g)).Detector
			row.Hash[gi] = st.HashPeakBytes
			row.VC[gi] = st.VCPeakBytes
			row.Bitmap[gi] = st.BitmapPeakBytes
			row.Total[gi] = st.TotalPeakBytes
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable2 prints Table 2 in the paper's layout (MB per component).
func (r *Runner) RenderTable2(w io.Writer) {
	rows := r.Table2()
	header := []string{"Program"}
	for _, g := range []string{"byte", "word", "dyn"} {
		header = append(header,
			g+" Hash", g+" VC", g+" Bitmap", g+" Total")
	}
	var out [][]string
	var sums [12]float64
	for _, row := range rows {
		rec := []string{row.Program}
		cols := []int64{}
		for gi := 0; gi < 3; gi++ {
			cols = append(cols, row.Hash[gi], row.VC[gi], row.Bitmap[gi], row.Total[gi])
		}
		for ci, v := range cols {
			rec = append(rec, mb(v))
			sums[ci] += float64(v)
		}
		out = append(out, rec)
	}
	if n := float64(len(rows)); n > 0 {
		rec := []string{"Average"}
		for _, sum := range sums {
			rec = append(rec, fmt.Sprintf("%.2f", sum/n/(1<<20)))
		}
		out = append(out, rec)
	}
	writeTable(w, "Table 2. Memory overhead of FastTrack detection with different granularities", header, out)
}
