package tables

import (
	"fmt"
	"strings"

	"repro/internal/djit"
	"repro/internal/event"
	"repro/internal/shadow"
	"repro/race"
)

// Figure1 reproduces the paper's Figure 1: an example DJIT+ execution over
// two threads, a lock s and a variable x, showing the vector-clock updates
// at every step and the write-write race DJIT+ detects when an access is
// not ordered by the happens-before relation. It returns the rendered
// trace.
func Figure1() string {
	const (
		t0 = 0
		t1 = 1
		s  = event.LockID(0)
		x  = uint64(0x100)
	)
	d := djit.New(djit.Options{Granule: 4, AllRaces: true})
	var b strings.Builder
	step := func(desc string) {
		fmt.Fprintf(&b, "%-22s T0=%v T1=%v W_x=%v races=%d\n",
			desc, d.ThreadClock(t0), d.ThreadClock(t1), wclock(d, x), len(d.Races()))
	}

	step("start")
	d.Write(t1, x, 4, 0)
	step("T1: write(x)")
	d.Acquire(t1, s)
	d.Release(t1, s)
	step("T1: lock/unlock(s)")
	d.Acquire(t0, s)
	step("T0: lock(s)")
	d.Write(t0, x, 4, 0)
	step("T0: write(x)  [ordered: no race]")
	d.Release(t0, s)
	step("T0: unlock(s)")
	d.Write(t1, x, 4, 0)
	step("T1: write(x)  [W_x[0] > T1[0]: RACE]")

	fmt.Fprintf(&b, "\nDJIT+ reported %d race(s):\n", len(d.Races()))
	for _, r := range d.Races() {
		fmt.Fprintf(&b, "  %s race on x by thread %d (conflicting thread %d)\n",
			r.Kind, r.Tid, r.Other)
	}
	return b.String()
}

func wclock(d *djit.Detector, addr uint64) string {
	if c := d.WriteClock(addr); c != nil {
		return c.String()
	}
	return "<>"
}

// Figure4 demonstrates the indexing structure of Figure 4: a hash entry
// starts with an m/4-pointer (word-granular) indexing array and expands to
// m pointers when a non-word-aligned access begins in its block. It
// returns the rendered demonstration.
func Figure4() string {
	type node struct{ tag int }
	t := shadow.New[*node]()
	var b strings.Builder

	fmt.Fprintf(&b, "m = %d addresses per hash entry\n\n", shadow.BlockSize)
	// Word-aligned accesses: the entry stays sparse (m/4 pointers).
	n1 := &node{1}
	for a := uint64(0x1000); a < 0x1000+64; a += 4 {
		t.SetRange(a, a+4, n1)
	}
	_, dense := t.EntryDense(0x1000)
	fmt.Fprintf(&b, "after 16 word-aligned word accesses: dense=%v (indexing array has %d pointers), table bytes=%d\n",
		dense, shadow.BlockSize/4, t.Bytes())

	// One unaligned byte access: the array expands to m pointers and the
	// existing word pointers are replicated into byte slots.
	n2 := &node{2}
	t.SetRange(0x1000+65, 0x1000+66, n2)
	_, dense = t.EntryDense(0x1000)
	fmt.Fprintf(&b, "after one unaligned byte access:   dense=%v (indexing array has %d pointers), table bytes=%d\n",
		dense, shadow.BlockSize, t.Bytes())
	fmt.Fprintf(&b, "lookup of 0x1002 still resolves through the replicated pointer: %v\n",
		t.Get(0x1002) == n1)
	return b.String()
}

// Figure2 exercises the Figure 2 vector-clock state machine on a small
// three-phase program (initialize together → access together → race) and
// reports the sharing statistics as observable evidence of the Init →
// Shared → Race path. The full transition coverage lives in the dyngran
// unit tests.
func Figure2() string {
	prog := race.Program{Name: "fig2", Main: func(m *race.Thread) {
		l := m.NewLock()
		arr := m.Malloc(64)
		m.WriteBlock(arr, 4, 16) // Init: one temporarily shared clock
		m.Lock(l)
		m.Unlock(l)              // epoch boundary
		m.WriteBlock(arr, 4, 16) // second epoch: final decision → Shared
		// Two unsynchronized children write the array: a race, which
		// dissolves the shared clock (Shared → Race).
		a := m.Go(func(t *race.Thread) { t.Write(arr, 4) })
		b := m.Go(func(t *race.Thread) { t.Write(arr, 4) })
		m.Join(a)
		m.Join(b)
	}}
	rep := race.Run(prog, race.Options{Tool: race.FastTrack, Granularity: race.Dynamic})
	var b strings.Builder
	fmt.Fprintf(&b, "16 word locations, three phases (Init / Shared / Race):\n")
	fmt.Fprintf(&b, "  locations folded: %d, clock nodes allocated: %d (avg sharing %.1f)\n",
		rep.Detector.LocCreations, rep.Detector.NodeAllocs, rep.Detector.AvgSharing)
	fmt.Fprintf(&b, "  merges: %d, splits: %d\n", rep.Detector.Merges, rep.Detector.Splits)
	fmt.Fprintf(&b, "  races reported: %d (the race split the shared clock)\n", len(rep.Races))
	return b.String()
}
