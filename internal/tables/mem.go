// Memory benchmark lane: the BENCH_mem.json generator — the repo's
// Table-2-style trajectory of shadow-memory and allocator behaviour that
// future PRs are measured against.
//
// For each benchmark × granularity (byte / word / dynamic) the harness runs
// the FastTrack detector serially and records two independent views of the
// memory cost:
//
//   - the detector's own object-size accounting (peak shadow bytes, peak
//     live clock nodes, average sharing) — the paper's Table 2/3 measure,
//     deterministic per seed;
//   - the Go allocator's view (heap allocations and bytes per routed event,
//     GC cycles and pause totals during the run), measured as the
//     runtime.MemStats delta across the run minus the same delta for an
//     uninstrumented baseline run, so the numbers isolate the detector from
//     the execution engine.
//
// The allocator rows are the regression surface for the allocation-lean
// memory layer (per-plane node freelists, the size-classed vector-clock
// pool, read-vector interning): NodeRecycles / VCPoolHits / VCInterns report
// how much of the churn the pools absorbed, and AllocsPerOp is the headline
// number CI guards.
package tables

import (
	"encoding/json"
	"io"
	"runtime"

	"repro/race"
)

// MemRow is one (benchmark, granularity) cell of the memory lane.
type MemRow struct {
	Program     string `json:"program"`
	Granularity string `json:"granularity"`

	// Events is the number of instrumentation events routed; Accesses the
	// shared memory accesses among them (the "op" of the per-op rates).
	Events   uint64 `json:"events"`
	Accesses uint64 `json:"accesses"`

	// Detector-side accounting (object sizes, Table 2/3).
	PeakShadowBytes int64   `json:"peak_shadow_bytes"`
	HashPeakBytes   int64   `json:"hash_peak_bytes"`
	VCPeakBytes     int64   `json:"vc_peak_bytes"`
	BitmapPeakBytes int64   `json:"bitmap_peak_bytes"`
	LiveNodesPeak   int64   `json:"live_nodes_peak"`
	AvgSharing      float64 `json:"avg_sharing"`

	// Shadow churn and pool effectiveness.
	NodeAllocs   uint64 `json:"node_allocs"`
	NodeRecycles uint64 `json:"node_recycles"`
	VCPoolHits   uint64 `json:"vc_pool_hits"`
	VCPoolMisses uint64 `json:"vc_pool_misses"`
	VCInterns    uint64 `json:"vc_interns"`

	// Go-allocator view: heap allocation count/bytes attributable to the
	// detector (run delta minus engine-baseline delta; clamped at 0), and
	// the per-event rates derived from them.
	HeapAllocs  uint64  `json:"heap_allocs"`
	HeapBytes   uint64  `json:"heap_bytes"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`

	// GC behaviour during the instrumented run (raw deltas, not
	// baseline-subtracted: pauses are a property of the whole process).
	GCCycles  uint32 `json:"gc_cycles"`
	GCPauseNs uint64 `json:"gc_pause_ns"`

	// Races pins that the measured run detected what it should (the lane
	// must never trade precision for allocation counts).
	Races int `json:"races"`
}

// memDelta runs f between two runtime.MemStats reads (with a GC fence
// before the first so prior garbage is not charged to f) and returns the
// Mallocs / TotalAlloc / NumGC / PauseTotalNs deltas.
func memDelta(f func()) (mallocs, bytes uint64, gc uint32, pauseNs uint64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs,
		after.TotalAlloc - before.TotalAlloc,
		after.NumGC - before.NumGC,
		after.PauseTotalNs - before.PauseTotalNs
}

// MemBench sweeps the memory lane over the runner's benchmarks at every
// FastTrack granularity. Rows are grouped per benchmark in byte, word,
// dynamic order.
func (r *Runner) MemBench() []MemRow {
	var rows []MemRow
	for _, s := range r.specs {
		prog := s.Build(r.cfg.Scale)
		// Engine baseline: the same execution with a no-op sink. Its
		// allocation delta is subtracted from every instrumented run so the
		// per-op rates charge only the detector. One warm-up run first so
		// one-time engine setup (scheduler tables, goroutine stacks) is not
		// charged to the baseline either.
		race.Baseline(prog, r.cfg.Seed)
		baseMallocs, baseBytes, _, _ := memDelta(func() {
			race.Baseline(prog, r.cfg.Seed)
		})
		for _, g := range []race.Granularity{race.Byte, race.Word, race.Dynamic} {
			opts := race.Options{
				Tool:        race.FastTrack,
				Granularity: g,
				Seed:        r.cfg.Seed,
			}
			var rep race.Report
			mallocs, bytes, gc, pauseNs := memDelta(func() {
				rep = race.Run(prog, opts)
			})
			d := rep.Detector
			row := MemRow{
				Program:         s.Name,
				Granularity:     g.String(),
				Events:          rep.Run.Events,
				Accesses:        d.Accesses,
				PeakShadowBytes: d.TotalPeakBytes,
				HashPeakBytes:   d.HashPeakBytes,
				VCPeakBytes:     d.VCPeakBytes,
				BitmapPeakBytes: d.BitmapPeakBytes,
				LiveNodesPeak:   d.MaxVectorClocks,
				AvgSharing:      d.AvgSharing,
				NodeAllocs:      d.NodeAllocs,
				NodeRecycles:    d.NodeRecycles,
				VCPoolHits:      d.VCPoolHits,
				VCPoolMisses:    d.VCPoolMisses,
				VCInterns:       d.VCInterns,
				GCCycles:        gc,
				GCPauseNs:       pauseNs,
				Races:           len(rep.Races),
			}
			if mallocs > baseMallocs {
				row.HeapAllocs = mallocs - baseMallocs
			}
			if bytes > baseBytes {
				row.HeapBytes = bytes - baseBytes
			}
			if rep.Run.Events > 0 {
				row.AllocsPerOp = float64(row.HeapAllocs) / float64(rep.Run.Events)
				row.BytesPerOp = float64(row.HeapBytes) / float64(rep.Run.Events)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// MemBenchJSON is the machine-readable BENCH_mem.json document.
type MemBenchJSON struct {
	Config struct {
		Scale      int   `json:"scale"`
		Seed       int64 `json:"seed"`
		GOMAXPROCS int   `json:"gomaxprocs"`
	} `json:"config"`
	Rows []MemRow `json:"rows"`
}

// WriteMemJSON runs the memory lane and writes BENCH_mem.json.
func (r *Runner) WriteMemJSON(w io.Writer) error {
	var out MemBenchJSON
	out.Config.Scale = r.cfg.Scale
	out.Config.Seed = r.cfg.Seed
	out.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	out.Rows = r.MemBench()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
