package tables

import (
	"encoding/json"
	"io"
	"runtime"

	"repro/race"
)

// DefaultSamplingBudgets is the rate sweep of the budgeted sampling lane:
// the exhaustive anchor (1.0, byte-identical to no sampler by the
// pass-through pin), then decreasing budgets down to 1%. The interesting
// region for always-on production deployment is 1–10%.
var DefaultSamplingBudgets = []float64{1.0, 0.5, 0.2, 0.1, 0.05, 0.02, 0.01}

// SamplingRow is one (program, budget) cell of the races-found-vs-rate
// curve: the serial in-process detector behind the budgeted sampler,
// scored against the same program's exhaustive run.
type SamplingRow struct {
	Program string  `json:"program"`
	Budget  float64 `json:"budget"`
	// SampledFraction is the fraction of accesses actually forwarded to
	// the detector (Stats.SampledFraction): the achieved rate, which sits
	// at or below the budget plus cold-burst slack.
	SampledFraction float64 `json:"sampled_fraction"`
	Forwarded       uint64  `json:"forwarded"`
	Skipped         uint64  `json:"skipped"`
	// Races is how many of the exhaustive run's races the budgeted run
	// still found (sampling can only shrink the set — the sync skeleton
	// stays exact, so any race it reports is in the exhaustive set too).
	Races           int     `json:"races"`
	ExhaustiveRaces int     `json:"exhaustive_races"`
	Recall          float64 `json:"recall"`
	DetectSeconds   float64 `json:"detect_seconds"`
	// SpeedupVsExhaustive is exhaustive wall time over this row's: the
	// overhead the budget buys back.
	SpeedupVsExhaustive float64 `json:"speedup_vs_exhaustive"`
}

// SamplingCurvePoint aggregates one budget across every workload: the
// committed races-found-vs-rate curve is this slice.
type SamplingCurvePoint struct {
	Budget              float64 `json:"budget"`
	MeanSampledFraction float64 `json:"mean_sampled_fraction"`
	TotalRaces          int     `json:"total_races"`
	TotalExhaustive     int     `json:"total_exhaustive"`
	// Recall is total races found over total exhaustive races across the
	// suite — the headline budget-vs-recall trade-off number.
	Recall float64 `json:"recall"`
}

// SamplingBench sweeps the budget over every workload on the serial
// in-process path (Workers 0, so the sampler's rate stays statically at
// the budget and rows are deterministic) and scores recall against the
// exhaustive dynamic-granularity run.
func (r *Runner) SamplingBench(budgets []float64) ([]SamplingRow, []SamplingCurvePoint) {
	if len(budgets) == 0 {
		budgets = DefaultSamplingBudgets
	}
	var rows []SamplingRow
	agg := make([]SamplingCurvePoint, len(budgets))
	for i, b := range budgets {
		agg[i].Budget = b
	}
	for _, spec := range r.specs {
		full := r.Report(spec, race.Options{Granularity: race.Dynamic})
		fullRaces := sortedRaceStrings(full.Races)
		fullSet := make(map[string]bool, len(fullRaces))
		for _, s := range fullRaces {
			fullSet[s] = true
		}
		for i, b := range budgets {
			rep := r.Report(spec, race.Options{Granularity: race.Dynamic, Budget: b})
			found := 0
			for _, s := range sortedRaceStrings(rep.Races) {
				if fullSet[s] {
					found++
				}
			}
			row := SamplingRow{
				Program:         spec.Name,
				Budget:          b,
				SampledFraction: rep.Detector.SampledFraction(),
				Forwarded:       rep.Detector.SampledForwarded,
				Skipped:         rep.Detector.SampledSkipped,
				Races:           found,
				ExhaustiveRaces: len(full.Races),
				Recall:          1,
				DetectSeconds:   rep.Elapsed.Seconds(),
			}
			if len(full.Races) > 0 {
				row.Recall = float64(found) / float64(len(full.Races))
			}
			if rep.Elapsed > 0 {
				row.SpeedupVsExhaustive = float64(full.Elapsed) / float64(rep.Elapsed)
			}
			rows = append(rows, row)
			agg[i].MeanSampledFraction += row.SampledFraction
			agg[i].TotalRaces += found
			agg[i].TotalExhaustive += len(full.Races)
		}
	}
	if n := len(r.specs); n > 0 {
		for i := range agg {
			agg[i].MeanSampledFraction /= float64(n)
			agg[i].Recall = 1
			if agg[i].TotalExhaustive > 0 {
				agg[i].Recall = float64(agg[i].TotalRaces) / float64(agg[i].TotalExhaustive)
			}
		}
	}
	return rows, agg
}

// SamplingBenchJSON is the machine-readable BENCH_sampling.json document:
// the per-cell sweep plus the aggregated races-found-vs-rate curve.
type SamplingBenchJSON struct {
	Config struct {
		Scale      int   `json:"scale"`
		Seed       int64 `json:"seed"`
		GOMAXPROCS int   `json:"gomaxprocs"`
		TimingRuns int   `json:"timing_runs"`
	} `json:"config"`
	Curve []SamplingCurvePoint `json:"curve"`
	Rows  []SamplingRow        `json:"rows"`
}

// WriteSamplingJSON runs the budgeted sampling lane and writes
// BENCH_sampling.json.
func (r *Runner) WriteSamplingJSON(w io.Writer, budgets []float64) error {
	var out SamplingBenchJSON
	out.Config.Scale = r.cfg.Scale
	out.Config.Seed = r.cfg.Seed
	out.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	out.Config.TimingRuns = r.cfg.TimingRuns
	out.Rows, out.Curve = r.SamplingBench(budgets)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
