package tables

import (
	"fmt"
	"io"

	"repro/race"
)

// Row7 is one benchmark's row of the extensions ablation — not a table
// from the paper, but the measurement of its Section VII future-work items
// as implemented here, plus FastTrack's write-exclusive read reset:
//
//   - write-guided reads: sharing comparisons saved on the read plane;
//   - adaptive resharing (interval 4): peak clock nodes after patterns
//     stabilize;
//   - read reset: peak clock bytes with inflated read vectors reclaimed.
//
// Race counts are asserted unchanged: the extensions are performance
// knobs, not precision knobs.
type Row7 struct {
	Program string

	// Comparisons without/with write-guided reads.
	CmpPlain, CmpGuided uint64
	// Peak clock nodes without/with adaptive resharing.
	NodesPlain, NodesReshare int64
	// Peak clock bytes without/with the read reset.
	VCBytesPlain, VCBytesReset int64
	// Races under every variant (must all be equal).
	Races [4]int
}

// Table7 computes the extensions-ablation rows.
func (r *Runner) Table7() []Row7 {
	rows := make([]Row7, 0, len(r.specs))
	base := race.Options{Tool: race.FastTrack, Granularity: race.Dynamic}
	for _, s := range r.specs {
		guided := base
		guided.WriteGuidedReads = true
		reshare := base
		reshare.ReshareInterval = 4
		reset := base
		reset.ReadReset = true

		plain := r.Report(s, base)
		g := r.Report(s, guided)
		rs := r.Report(s, reshare)
		rr := r.Report(s, reset)

		rows = append(rows, Row7{
			Program:      s.Name,
			CmpPlain:     plain.Detector.SharingComparisons,
			CmpGuided:    g.Detector.SharingComparisons,
			NodesPlain:   plain.Detector.MaxVectorClocks,
			NodesReshare: rs.Detector.MaxVectorClocks,
			VCBytesPlain: plain.Detector.VCPeakBytes,
			VCBytesReset: rr.Detector.VCPeakBytes,
			Races: [4]int{
				len(plain.Races), len(g.Races), len(rs.Races), len(rr.Races),
			},
		})
	}
	return rows
}

// RenderTable7 prints the extensions ablation.
func (r *Runner) RenderTable7(w io.Writer) {
	rows := r.Table7()
	header := []string{
		"Program", "Cmp plain", "guided", "Nodes plain", "reshare",
		"VC-KB plain", "read-reset", "Races (all variants)",
	}
	var out [][]string
	for _, row := range rows {
		races := fmt.Sprintf("%d", row.Races[0])
		for _, x := range row.Races[1:] {
			if x != row.Races[0] {
				races = fmt.Sprintf("%v MISMATCH", row.Races)
				break
			}
		}
		out = append(out, []string{
			row.Program,
			fmt.Sprintf("%d", row.CmpPlain),
			fmt.Sprintf("%d", row.CmpGuided),
			fmt.Sprintf("%d", row.NodesPlain),
			fmt.Sprintf("%d", row.NodesReshare),
			fmt.Sprintf("%.1f", float64(row.VCBytesPlain)/1024),
			fmt.Sprintf("%.1f", float64(row.VCBytesReset)/1024),
			races,
		})
	}
	writeTable(w, "Table 7 (this repo). Section VII extensions ablation under dynamic granularity", header, out)
}
