package tables

import "testing"

// TestHotpathBenchGates runs the hot-path lane on its locality anchor and
// one honest negative and pins the properties BENCH_hotpath.json claims:
//
//   - losslessness: HotpathBench itself fails if any cell's race count
//     diverges, so a clean return is the verdict-identity gate;
//   - the deterministic wins: on streamcluster the elider must drop a
//     meaningful fraction of the stream and shrink the wire payload
//     accordingly (both are exact, replay-stable numbers);
//   - elision only ever shrinks the wire: elide-on bytes <= elide-off
//     bytes on every workload, including the negatives;
//   - a coarse timing sanity bound with wide noise headroom: the fully
//     optimized cell (elide + columnar apply) must not be slower than the
//     fully unoptimized one (record apply, no elision) on the locality
//     anchor, where it measures ~0.6x locally.
func TestHotpathBenchGates(t *testing.T) {
	r := NewRunner(Config{Seed: 42, TimingRuns: 3})
	rows, err := r.HotpathBench([]string{"streamcluster", "canneal"})
	if err != nil {
		t.Fatal(err)
	}
	cell := func(prog string, elide bool, apply string) HotpathRow {
		for _, row := range rows {
			if row.Program == prog && row.Elide == elide && row.Apply == apply {
				return row
			}
		}
		t.Fatalf("missing cell %s/elide=%v/%s", prog, elide, apply)
		return HotpathRow{}
	}
	for _, prog := range []string{"streamcluster", "canneal"} {
		off := cell(prog, false, "record")
		on := cell(prog, true, "record")
		if on.WireBytes > off.WireBytes {
			t.Errorf("%s: elision grew the wire payload: %d > %d bytes", prog, on.WireBytes, off.WireBytes)
		}
		if on.AppliedRecords+on.Elided != on.Events {
			t.Errorf("%s: stream accounting broken: applied %d + elided %d != %d events",
				prog, on.AppliedRecords, on.Elided, on.Events)
		}
	}
	// The locality anchor's deterministic wins (exact at Seed 42, Scale 1;
	// measured 29% elided, 20% fewer wire bytes).
	off := cell("streamcluster", false, "record")
	on := cell("streamcluster", true, "record")
	if frac := float64(on.Elided) / float64(on.Events); frac < 0.20 {
		t.Errorf("streamcluster: elided fraction %.3f, want >= 0.20", frac)
	}
	if ratio := float64(on.WireBytes) / float64(off.WireBytes); ratio > 0.90 {
		t.Errorf("streamcluster: elided wire bytes at %.3f of baseline, want <= 0.90", ratio)
	}
	if raceDetectorOn {
		return // timing under -race measures the instrumentation, not the code
	}
	best := cell("streamcluster", true, "columnar")
	if best.NsPerEvent > off.NsPerEvent {
		t.Errorf("streamcluster: optimized hot path slower than baseline: %.1f vs %.1f ns/event",
			best.NsPerEvent, off.NsPerEvent)
	}
}
