package tables

import (
	"fmt"
	"io"

	"repro/race"
)

// Cell6 is one tool's measurement in Table 6.
type Cell6 struct {
	Slowdown    float64
	MemOverhead float64
	Races       int
	OOM         bool
	TimedOut    bool
}

// DNF reports whether the run did not finish.
func (c Cell6) DNF() bool { return c.OOM || c.TimedOut }

func (c Cell6) raceCell() string {
	switch {
	case c.OOM:
		return "OOM"
	case c.TimedOut:
		return ">t/o"
	default:
		return fmt.Sprintf("%d", c.Races)
	}
}

func (c Cell6) numCell(v float64) string {
	if c.DNF() {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// Row6 is one benchmark's row of Table 6: the comparison of the DRD
// stand-in, the Inspector XE stand-in, and FastTrack with dynamic
// granularity.
type Row6 struct {
	Program   string
	DRD       Cell6
	Inspector Cell6
	Dynamic   Cell6
}

// Table6 computes Table 6's rows.
func (r *Runner) Table6() []Row6 {
	rows := make([]Row6, 0, len(r.specs))
	for _, s := range r.specs {
		row := Row6{Program: s.Name}
		for _, entry := range []struct {
			cell *Cell6
			opts race.Options
		}{
			{&row.DRD, r.comparatorOpts(race.DRD)},
			{&row.Inspector, r.comparatorOpts(race.InspectorXE)},
			{&row.Dynamic, r.ftOpts(race.Dynamic)},
		} {
			rep := r.Report(s, entry.opts)
			*entry.cell = Cell6{
				Slowdown:    r.Slowdown(s, rep),
				MemOverhead: r.MemOverhead(s, rep),
				Races:       len(rep.Races),
				OOM:         rep.OOM,
				TimedOut:    rep.TimedOut,
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable6 prints Table 6 in the paper's layout.
func (r *Runner) RenderTable6(w io.Writer) {
	rows := r.Table6()
	header := []string{
		"Program",
		"DRD slow", "mem", "races",
		"Insp slow", "mem", "races",
		"Dyn slow", "mem", "races",
	}
	var out [][]string
	for _, row := range rows {
		rec := []string{row.Program}
		for _, c := range []Cell6{row.DRD, row.Inspector, row.Dynamic} {
			rec = append(rec, c.numCell(c.Slowdown), c.numCell(c.MemOverhead), c.raceCell())
		}
		out = append(out, rec)
	}
	writeTable(w, "Table 6. Performance comparison of Valgrind-DRD-like, Inspector-XE-like and FastTrack with dynamic granularity", header, out)
}
