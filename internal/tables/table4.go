package tables

import (
	"fmt"
	"io"
)

// Row4 is one benchmark's row of Table 4: slowdown next to the percentage
// of same-epoch accesses per granularity — the paper's evidence that the
// speedup of a larger granularity tracks the same-epoch rate.
type Row4 struct {
	Program      string
	Slowdown     [3]float64
	SameEpochPct [3]float64
}

// Table4 computes Table 4's rows.
func (r *Runner) Table4() []Row4 {
	rows := make([]Row4, 0, len(r.specs))
	for _, s := range r.specs {
		row := Row4{Program: s.Name}
		for gi, g := range granularities {
			rep := r.Report(s, r.ftOpts(g))
			row.Slowdown[gi] = r.Slowdown(s, rep)
			row.SameEpochPct[gi] = rep.Detector.SameEpochPct()
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable4 prints Table 4 in the paper's layout.
func (r *Runner) RenderTable4(w io.Writer) {
	rows := r.Table4()
	header := []string{
		"Program", "Slow byte", "word", "dyn",
		"SameEp byte", "word", "dyn",
	}
	var out [][]string
	var avg [6]float64
	for _, row := range rows {
		rec := []string{row.Program}
		for i := 0; i < 3; i++ {
			rec = append(rec, fmt.Sprintf("%.2f", row.Slowdown[i]))
			avg[i] += row.Slowdown[i]
		}
		for i := 0; i < 3; i++ {
			rec = append(rec, fmt.Sprintf("%.0f%%", row.SameEpochPct[i]))
			avg[3+i] += row.SameEpochPct[i]
		}
		out = append(out, rec)
	}
	if n := float64(len(rows)); n > 0 {
		rec := []string{"Average"}
		for i := 0; i < 3; i++ {
			rec = append(rec, fmt.Sprintf("%.2f", avg[i]/n))
		}
		for i := 3; i < 6; i++ {
			rec = append(rec, fmt.Sprintf("%.0f%%", avg[i]/n))
		}
		out = append(out, rec)
	}
	writeTable(w, "Table 4. Measures of same epoch accesses", header, out)
}
