package tables

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"reflect"
	"runtime"
	"sort"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/race"
	"repro/workloads"
)

// DefaultClusterMembers is the member-count sweep of the cluster scaling
// lane: a single-member cluster (pure wire overhead vs -remote), then the
// fan-out doublings.
var DefaultClusterMembers = []int{1, 2, 4}

// clusterBenchPrograms is the workload trio the scaling lane measures:
// facesim is almost pure fan-out (broadcast share ~0, so sharding the
// shadow space across members helps most), canneal is access-heavy but
// allocation-churny (its Malloc/Free broadcasts are replicated to every
// member), and pipedag's channel mesh is sync-heavy (every sync event is
// broadcast, so added members cost more wire than they save). Together
// they bracket where broadcast overhead crosses fan-out gains.
var clusterBenchPrograms = []string{"facesim", "canneal", "pipedag"}

// ClusterRow is one (program, member count) cell of the scaling lane,
// measured against a fleet of loopback racedetectd servers.
type ClusterRow struct {
	Program string `json:"program"`
	Members int    `json:"members"`
	// LocalSeconds is the in-process serial detector on the same stream —
	// the no-wire reference shared by every member count.
	LocalSeconds   float64 `json:"local_seconds"`
	ClusterSeconds float64 `json:"cluster_seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	// SpeedupVsOne is this row's events/s over the same program's
	// single-member row (1.0 for N=1 by construction): the horizontal
	// scaling factor net of broadcast overhead.
	SpeedupVsOne float64 `json:"speedup_vs_one"`
	// FanoutP50Ns is the median send-to-ack round trip of a fanned-out
	// batch frame across all members.
	FanoutP50Ns     uint64 `json:"fanout_p50_ns"`
	FanoutEvents    uint64 `json:"fanout_events"`
	BroadcastEvents uint64 `json:"broadcast_events"`
	// BroadcastShare is broadcast wire events over all wire events: the
	// replication tax, which grows with member count on sync-heavy
	// programs.
	BroadcastShare float64 `json:"broadcast_share"`
	Races          int     `json:"races"`
	// RacesIdentical records that the merged cluster verdicts matched the
	// in-process run byte-for-byte (the lane doubles as an equivalence
	// check on real fleet sizes).
	RacesIdentical bool `json:"races_identical"`
}

// ClusterBench runs the scaling-lane workloads through fleets of 1, 2 and
// 4 loopback detection servers and reports events/s, fan-out latency and
// the broadcast tax per member count. All servers are started up front
// and shared across rows.
func (r *Runner) ClusterBench(memberCounts []int) ([]ClusterRow, error) {
	if len(memberCounts) == 0 {
		memberCounts = DefaultClusterMembers
	}
	maxN := 0
	for _, n := range memberCounts {
		if n > maxN {
			maxN = n
		}
	}

	addrs := make([]string, 0, maxN)
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < maxN; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := server.New(server.Options{})
		done := make(chan error, 1)
		go func() { done <- srv.Serve(l) }()
		stops = append(stops, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			<-done
		})
		addrs = append(addrs, l.Addr().String())
	}

	var rows []ClusterRow
	for _, name := range clusterBenchPrograms {
		var spec *workloads.Spec
		for i := range r.specs {
			if r.specs[i].Name == name {
				spec = &r.specs[i]
				break
			}
		}
		if spec == nil {
			continue // runner restricted to a subset without this program
		}
		local := r.Report(*spec, race.Options{Granularity: race.Dynamic})
		localRaces := sortedRaceStrings(local.Races)
		prog := spec.Build(r.cfg.Scale)
		var onePerSec float64
		for _, n := range memberCounts {
			var (
				rep race.Report
				reg *telemetry.Registry
				err error
			)
			times := make([]time.Duration, 0, r.cfg.TimingRuns)
			for i := 0; i < r.cfg.TimingRuns; i++ {
				runtime.GC()
				reg = telemetry.New()
				// Workers 0: each member runs the serial detector, so the
				// sweep isolates the fleet dimension — per-member worker
				// pipelines would only add dispatch overhead on top.
				rep, err = race.RunE(prog, race.Options{
					Granularity: race.Dynamic, Seed: r.cfg.Seed,
					Workers: 0, Cluster: addrs[:n], Telemetry: reg,
				})
				if err != nil {
					return nil, fmt.Errorf("%s/n=%d: cluster run: %w", name, n, err)
				}
				times = append(times, rep.Elapsed)
			}
			row := ClusterRow{
				Program:         name,
				Members:         n,
				LocalSeconds:    local.Elapsed.Seconds(),
				ClusterSeconds:  bestDuration(times).Seconds(),
				FanoutP50Ns:     reg.HistogramValue("client_ack_rtt_ns").Quantile(0.5),
				FanoutEvents:    reg.CounterValue("cluster_fanout_events_total"),
				BroadcastEvents: reg.CounterValue("cluster_broadcast_events_total"),
				Races:           len(rep.Races),
				RacesIdentical:  reflect.DeepEqual(localRaces, sortedRaceStrings(rep.Races)),
			}
			if row.ClusterSeconds > 0 {
				row.EventsPerSec = float64(rep.Run.Events) / row.ClusterSeconds
			}
			if onePerSec == 0 {
				onePerSec = row.EventsPerSec
			}
			if onePerSec > 0 {
				row.SpeedupVsOne = row.EventsPerSec / onePerSec
			}
			if wireEvents := row.FanoutEvents + row.BroadcastEvents; wireEvents > 0 {
				row.BroadcastShare = float64(row.BroadcastEvents) / float64(wireEvents)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// sortedRaceStrings canonicalizes a race list for set comparison across
// processes (the race package keeps its sort unexported).
func sortedRaceStrings(rs []race.Race) []string {
	out := make([]string, len(rs))
	for i, x := range rs {
		out[i] = fmt.Sprintf("%+v", x)
	}
	sort.Strings(out)
	return out
}

// ClusterBenchJSON is the machine-readable BENCH_cluster.json document:
// the member-count scaling sweep per workload.
type ClusterBenchJSON struct {
	Config struct {
		Scale      int   `json:"scale"`
		Seed       int64 `json:"seed"`
		GOMAXPROCS int   `json:"gomaxprocs"`
		TimingRuns int   `json:"timing_runs"`
	} `json:"config"`
	Scaling []ClusterRow `json:"scaling"`
}

// WriteClusterJSON runs the cluster scaling lane and writes
// BENCH_cluster.json.
func (r *Runner) WriteClusterJSON(w io.Writer, memberCounts []int) error {
	var out ClusterBenchJSON
	out.Config.Scale = r.cfg.Scale
	out.Config.Seed = r.cfg.Seed
	out.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	out.Config.TimingRuns = r.cfg.TimingRuns
	rows, err := r.ClusterBench(memberCounts)
	if err != nil {
		return err
	}
	out.Scaling = rows
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
