package tables

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestClockBenchCompactWins is the regression gate on the structure-aware
// clock lane: on every Go-native workload the compact representation must
// stay fully structured, report the exact general-mode race set, and beat
// the general representation on peak thread-clock bytes. Wall time gets
// noise headroom — the committed BENCH_clock.json records the real margins;
// this gate only catches gross slowdowns.
func TestClockBenchCompactWins(t *testing.T) {
	r := NewRunner(Config{Seed: 42, TimingRuns: 3, Benchmarks: clockWorkloads})
	rows := r.ClockBench()
	if want := 2 * len(clockWorkloads); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for i := 0; i < len(rows); i += 2 {
		gen, cmp := rows[i], rows[i+1]
		if gen.Clock != "general" || cmp.Clock != "compact" || gen.Program != cmp.Program {
			t.Fatalf("row pairing broken: %+v / %+v", gen, cmp)
		}
		name := gen.Program
		if gen.Events == 0 || gen.Events != cmp.Events {
			t.Errorf("%s: event counts diverge: %d vs %d", name, gen.Events, cmp.Events)
		}
		if !cmp.RacesIdentical || cmp.Races != gen.Races {
			t.Errorf("%s: compact races (%d) not identical to general (%d)", name, cmp.Races, gen.Races)
		}
		if cmp.Demotions != 0 {
			t.Errorf("%s: %d demotions on a Go-native workload", name, cmp.Demotions)
		}
		if int(cmp.StructuredThreads) != cmp.Threads {
			t.Errorf("%s: %d structured threads, want %d", name, cmp.StructuredThreads, cmp.Threads)
		}
		if gen.PeakClockBytes <= 0 || cmp.PeakClockBytes >= gen.PeakClockBytes {
			t.Errorf("%s: compact peak %dB not below general peak %dB",
				name, cmp.PeakClockBytes, gen.PeakClockBytes)
		}
		// Generous bound: CI hosts are noisy; the lane's JSON is the record.
		if cmp.NsPerEvent > 1.25*gen.NsPerEvent {
			t.Errorf("%s: compact %.1f ns/event more than 25%% over general %.1f",
				name, cmp.NsPerEvent, gen.NsPerEvent)
		}
	}
}

// TestWriteClockJSONShape checks the document round-trips with the config
// block CI consumes.
func TestWriteClockJSONShape(t *testing.T) {
	r := NewRunner(Config{Seed: 42, TimingRuns: 1, Benchmarks: []string{"workerpool"}})
	var buf bytes.Buffer
	if err := r.WriteClockJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc ClockBenchJSON
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Config.Seed != 42 || doc.Config.GOMAXPROCS <= 0 {
		t.Errorf("config block incomplete: %+v", doc.Config)
	}
	if len(doc.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(doc.Rows))
	}
}
