package tables

import (
	"fmt"
	"io"

	"repro/race"
	"repro/workloads"
)

// Row1 is one benchmark's row of Table 1: overall results of FastTrack
// with byte, word and dynamic granularity. Array indexes are [byte, word,
// dynamic] throughout.
type Row1 struct {
	Program        string
	SharedAccesses uint64 // total shared reads+writes
	MaxVectorsByte int64  // max # of vector clocks at byte granularity
	Threads        int
	BaseTime       float64 // seconds, uninstrumented
	BaseMemMB      float64 // peak application heap, MB
	Slowdown       [3]float64
	MemOverhead    [3]float64
	Races          [3]int
}

// granularities in table order.
var granularities = [3]race.Granularity{race.Byte, race.Word, race.Dynamic}

// Table1 computes Table 1's rows.
func (r *Runner) Table1() []Row1 {
	rows := make([]Row1, 0, len(r.specs))
	for _, s := range r.specs {
		b := r.Baseline(s)
		row := Row1{
			Program:   s.Name,
			Threads:   s.Threads,
			BaseTime:  b.elapsed.Seconds(),
			BaseMemMB: float64(b.stats.PeakHeapBytes) / (1 << 20),
		}
		for gi, g := range granularities {
			rep := r.Report(s, r.ftOpts(g))
			row.Slowdown[gi] = r.Slowdown(s, rep)
			row.MemOverhead[gi] = r.MemOverhead(s, rep)
			row.Races[gi] = len(rep.Races)
			if g == race.Byte {
				row.SharedAccesses = rep.Detector.Accesses
				row.MaxVectorsByte = rep.Detector.MaxVectorClocks
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable1 prints Table 1 in the paper's layout, with the averages row.
func (r *Runner) RenderTable1(w io.Writer) {
	rows := r.Table1()
	header := []string{
		"Program", "Accesses(M)", "MaxVCs(byte)", "Thr", "Base t(s)", "Base MB",
		"Slow byte", "word", "dyn", "MemOvh byte", "word", "dyn",
		"Races byte", "word", "dyn",
	}
	var out [][]string
	var avg struct{ slow, mem [3]float64 }
	for _, row := range rows {
		rec := []string{
			row.Program,
			fmt.Sprintf("%.2f", float64(row.SharedAccesses)/1e6),
			fmt.Sprintf("%d", row.MaxVectorsByte),
			fmt.Sprintf("%d", row.Threads),
			fmt.Sprintf("%.3f", row.BaseTime),
			fmt.Sprintf("%.2f", row.BaseMemMB),
		}
		for i := 0; i < 3; i++ {
			rec = append(rec, fmt.Sprintf("%.2f", row.Slowdown[i]))
			avg.slow[i] += row.Slowdown[i]
		}
		for i := 0; i < 3; i++ {
			rec = append(rec, fmt.Sprintf("%.2f", row.MemOverhead[i]))
			avg.mem[i] += row.MemOverhead[i]
		}
		for i := 0; i < 3; i++ {
			rec = append(rec, fmt.Sprintf("%d", row.Races[i]))
		}
		out = append(out, rec)
	}
	if n := float64(len(rows)); n > 0 {
		rec := []string{"Average", "", "", "", "", ""}
		for i := 0; i < 3; i++ {
			rec = append(rec, fmt.Sprintf("%.2f", avg.slow[i]/n))
		}
		for i := 0; i < 3; i++ {
			rec = append(rec, fmt.Sprintf("%.2f", avg.mem[i]/n))
		}
		rec = append(rec, "", "", "")
		out = append(out, rec)
	}
	writeTable(w, "Table 1. Overall experimental results", header, out)
}

// AverageSlowdown returns the mean slowdown per granularity — the numbers
// behind the paper's headline "43% faster than byte granularity".
func (r *Runner) AverageSlowdown() [3]float64 {
	rows := r.Table1()
	var avg [3]float64
	for _, row := range rows {
		for i := 0; i < 3; i++ {
			avg[i] += row.Slowdown[i]
		}
	}
	for i := range avg {
		avg[i] /= float64(len(rows))
	}
	return avg
}

var _ = workloads.All // keep the import stable across edits
