package tables

import (
	"encoding/json"
	"io"
)

// AllTables bundles every table's structured rows for machine-readable
// output (benchtables -json), so CI jobs can diff reproduction runs.
type AllTables struct {
	Config struct {
		Scale int   `json:"scale"`
		Seed  int64 `json:"seed"`
	} `json:"config"`
	Table1 []Row1 `json:"table1"`
	Table2 []Row2 `json:"table2"`
	Table3 []Row3 `json:"table3"`
	Table4 []Row4 `json:"table4"`
	Table5 []Row5 `json:"table5"`
	Table6 []Row6 `json:"table6"`
	Table7 []Row7 `json:"table7"`
}

// All computes every table once (runs are shared through the cache).
func (r *Runner) All() AllTables {
	var a AllTables
	a.Config.Scale = r.cfg.Scale
	a.Config.Seed = r.cfg.Seed
	a.Table1 = r.Table1()
	a.Table2 = r.Table2()
	a.Table3 = r.Table3()
	a.Table4 = r.Table4()
	a.Table5 = r.Table5()
	a.Table6 = r.Table6()
	a.Table7 = r.Table7()
	return a
}

// WriteJSON renders every table as indented JSON.
func (r *Runner) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.All())
}
