//go:build !race

package tables

// raceDetectorOn reports whether the test binary runs under the Go race
// detector (timing gates are skipped there — they would measure the
// instrumentation, not the code).
const raceDetectorOn = false
