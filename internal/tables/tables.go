// Package tables regenerates the paper's evaluation tables (Tables 1–6)
// from live runs of the fourteen benchmark workloads under every detector
// configuration, plus demonstrations of Figures 1 and 4. Each table
// function returns structured rows (used by tests and benches) and can be
// rendered in the paper's layout.
//
// Runs are cached per (benchmark, configuration), so printing all six
// tables executes each configuration once. Timing rows use the median of
// several baseline runs to stabilize slowdown factors.
package tables

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/race"
	"repro/workloads"
)

// Config configures the harness.
type Config struct {
	// Scale multiplies every workload's size (default 1, the tables'
	// reference scale).
	Scale int
	// Seed drives the deterministic scheduler.
	Seed int64
	// TimingRuns is how many times timed configurations are run; the
	// minimum wall time is used, since host interference only ever adds
	// time to a deterministic run (default 5).
	TimingRuns int
	// ComparatorMemLimit is the accounted-memory budget for the DRD and
	// Inspector stand-ins; runs exceeding it abort with OOM, reproducing
	// the paper's dedup rows. 0 picks the default calibrated in
	// EXPERIMENTS.md.
	ComparatorMemLimit int64
	// ComparatorTimeout bounds comparator runs in wall time (the paper's
	// ">24h" rows); 0 means no timeout.
	ComparatorTimeout time.Duration
	// Benchmarks restricts the set of benchmarks (nil = all).
	Benchmarks []string
}

// DefaultComparatorMemLimit is the comparator memory budget: scaled from
// the paper's 4 GB machine to the simulation's footprint (the workloads
// are roughly three orders of magnitude smaller than the originals) so
// that — as on the paper's machine — only dedup's startup footprint
// exceeds it. See EXPERIMENTS.md for the calibration.
const DefaultComparatorMemLimit = 4 << 20

// Runner executes and caches detection runs.
type Runner struct {
	cfg   Config
	specs []workloads.Spec
	cache map[string]race.Report
	bases map[string]baseline
}

type baseline struct {
	stats   race.RunStats
	elapsed time.Duration
}

// NewRunner returns a runner for cfg.
func NewRunner(cfg Config) *Runner {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.TimingRuns <= 0 {
		cfg.TimingRuns = 5
	}
	if cfg.ComparatorMemLimit == 0 {
		cfg.ComparatorMemLimit = DefaultComparatorMemLimit
	}
	specs := workloads.All()
	if cfg.Benchmarks != nil {
		var sel []workloads.Spec
		for _, name := range cfg.Benchmarks {
			for _, s := range specs {
				if s.Name == name {
					sel = append(sel, s)
				}
			}
		}
		specs = sel
	}
	return &Runner{
		cfg:   cfg,
		specs: specs,
		cache: make(map[string]race.Report),
		bases: make(map[string]baseline),
	}
}

// Specs returns the benchmarks the runner covers.
func (r *Runner) Specs() []workloads.Spec { return r.specs }

func optsKey(o race.Options) string {
	return fmt.Sprintf("%v/%v/nis=%v/nish=%v/wgr=%v/rs=%d/mem=%d/to=%v/w=%d/me=%d/rem=%s/rsync=%v",
		o.Tool, o.Granularity, o.NoInitState, o.NoInitSharing,
		o.WriteGuidedReads, o.ReshareInterval, o.MemLimitBytes, o.Timeout,
		o.Workers, o.MaxEvents, o.Remote, o.RemoteSync) +
		fmt.Sprintf("/cod=%s/disp=%s/bp=%s/clk=%d/clus=%s/bud=%g/el=%v",
			o.Codec, o.Dispatch, o.BatchPolicy, o.Clock, strings.Join(o.Cluster, ","),
			o.Budget, o.Elide)
}

// bestDuration returns the minimum of ds: for a deterministic CPU-bound
// run, the fastest observation is the one least disturbed by the host
// (scheduler interference only ever adds time), so ratios of minima are
// the noise-robust slowdown estimate.
func bestDuration(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[0]
}

// Baseline returns the uninstrumented run of the benchmark (median timing).
func (r *Runner) Baseline(s workloads.Spec) baseline {
	if b, ok := r.bases[s.Name]; ok {
		return b
	}
	prog := s.Build(r.cfg.Scale)
	var stats race.RunStats
	times := make([]time.Duration, 0, r.cfg.TimingRuns)
	for i := 0; i < r.cfg.TimingRuns; i++ {
		runtime.GC() // isolate timed runs from each other's garbage
		st, d := race.Baseline(prog, r.cfg.Seed)
		stats = st
		times = append(times, d)
	}
	b := baseline{stats: stats, elapsed: bestDuration(times)}
	r.bases[s.Name] = b
	return b
}

// Report runs (or retrieves) the benchmark under opts. Timing is the
// median over TimingRuns runs; all other fields come from the last run
// (identical across runs by determinism).
func (r *Runner) Report(s workloads.Spec, opts race.Options) race.Report {
	opts.Seed = r.cfg.Seed
	key := s.Name + "|" + optsKey(opts)
	if rep, ok := r.cache[key]; ok {
		return rep
	}
	prog := s.Build(r.cfg.Scale)
	var rep race.Report
	times := make([]time.Duration, 0, r.cfg.TimingRuns)
	for i := 0; i < r.cfg.TimingRuns; i++ {
		runtime.GC() // isolate timed runs from each other's garbage
		rep = race.Run(prog, opts)
		times = append(times, rep.Elapsed)
		if rep.TimedOut || rep.OOM {
			break // a DNF run's timing is already its answer
		}
	}
	rep.Elapsed = bestDuration(times)
	r.cache[key] = rep
	return rep
}

func (r *Runner) ftOpts(g race.Granularity) race.Options {
	return race.Options{Tool: race.FastTrack, Granularity: g}
}

func (r *Runner) comparatorOpts(tool race.Tool) race.Options {
	return race.Options{
		Tool:          tool,
		MemLimitBytes: r.cfg.ComparatorMemLimit,
		Timeout:       r.cfg.ComparatorTimeout,
	}
}

// Slowdown computes instrumented / baseline wall time.
func (r *Runner) Slowdown(s workloads.Spec, rep race.Report) float64 {
	b := r.Baseline(s)
	if b.elapsed <= 0 {
		return 0
	}
	return float64(rep.Elapsed) / float64(b.elapsed)
}

// MemOverhead computes the paper's memory-overhead factor: peak memory of
// the instrumented process over the uninstrumented one. The instrumented
// process holds the application's peak plus the detector's.
func (r *Runner) MemOverhead(s workloads.Spec, rep race.Report) float64 {
	b := r.Baseline(s)
	base := float64(b.stats.PeakHeapBytes)
	if base <= 0 {
		return 0
	}
	return (base + float64(rep.Detector.TotalPeakBytes)) / base
}

// mb renders bytes as MB with one decimal.
func mb(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }

func writeTable(w io.Writer, title string, header []string, rows [][]string) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, row := range rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}
